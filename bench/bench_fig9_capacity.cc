/**
 * @file
 * Reproduces paper Figure 9: total servers deployable in the Table 4
 * data center under each policy, for typical-case conditions and for a
 * worst-case power emergency (every server at 100 % utilization, one
 * feed failed), with 30 % of servers high priority and a <= 1 % average
 * cap-ratio criterion.
 *
 * Paper values: typical 6318 for all policies; worst case 3888 (No
 * Priority), 4860 (Local Priority), 5832 (Global Priority).
 *
 * One electrical phase is simulated (phases are independent and
 * statistically identical); counts are whole-center values.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "sim/capacity.hh"
#include "util/table.hh"

using namespace capmaestro;
using namespace capmaestro::sim;

int
main(int argc, char **argv)
{
    bench::banner("Figure 9",
                  "Total servers deployable (30% high priority, <=1% "
                  "average cap ratio)");
    const int worst_trials = bench::intFlag(argc, argv, "trials", 30);
    const int typical_trials =
        bench::intFlag(argc, argv, "typical-trials", 150);

    util::TextTable table("Figure 9 -- deployable servers");
    table.setHeader({"policy", "typical case", "worst case",
                     "paper typical", "paper worst"});

    const char *paper_worst[] = {"3888", "4860", "5832"};
    std::size_t worst_counts[3] = {0, 0, 0};
    int row = 0;
    for (const auto kind : policy::kAllPolicies) {
        CapacityConfig typical;
        typical.policy = kind;
        typical.worstCase = false;
        typical.trials = typical_trials;
        const auto t = findMaxDeployable(typical, 6, 15);

        CapacityConfig worst;
        worst.policy = kind;
        worst.worstCase = true;
        worst.trials = worst_trials;
        const auto w = findMaxDeployable(worst, 6, 15);
        worst_counts[row] = w.totalServers;

        table.addRow({policy::policyName(kind),
                      std::to_string(t.totalServers),
                      std::to_string(w.totalServers), "6318",
                      paper_worst[row]});
        ++row;
    }
    table.print(std::cout);

    if (worst_counts[0] > 0) {
        std::printf("\nGlobal vs No Priority: +%.0f%% (paper: +50%%); "
                    "Global vs Local: +%.0f%% (paper: +20%%)\n",
                    100.0 * (static_cast<double>(worst_counts[2])
                                 / worst_counts[0]
                             - 1.0),
                    100.0 * (static_cast<double>(worst_counts[2])
                                 / worst_counts[1]
                             - 1.0));
    }
    std::printf("Global Priority retains %.1f%% of the failure-free "
                "(typical) capacity (paper: 92.3%%).\n",
                100.0 * static_cast<double>(worst_counts[2]) / 6318.0);
    return 0;
}
