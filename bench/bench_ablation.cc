/**
 * @file
 * Ablation studies for CapMaestro's design choices (DESIGN.md):
 *
 *   A1 — stranded-power optimization vs. intrinsic supply-split
 *        mismatch (typical-case Table 4 center, dense deployment):
 *        how much budget SPO reclaims and what it buys in cap ratio.
 *   A2 — PI loop gain: settle time of the Figure 5 budget step.
 *   A3 — control period vs. the UL 489 30 s @ 160 % breaker window:
 *        after a feed failure that overloads a surviving breaker, how
 *        long until the load is back within its limit.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "sim/capacity.hh"
#include "sim/scenario.hh"
#include "util/table.hh"

using namespace capmaestro;
using sim::ClosedLoopSim;

namespace {

void
ablationSpoMismatch(int trials)
{
    util::TextTable t("A1 -- SPO vs. supply-split mismatch "
                      "(typical case, 15 servers/rack/phase)");
    t.setHeader({"mismatch", "cap ratio w/o SPO", "cap ratio w/ SPO",
                 "reclaimed, 2 passes (W)", "reclaimed, fixpoint (W)"});
    for (double mismatch : {0.0, 0.05, 0.10, 0.15}) {
        sim::CapacityConfig cfg;
        cfg.policy = policy::PolicyKind::GlobalPriority;
        cfg.worstCase = false;
        cfg.trials = trials;
        cfg.seed = 11;
        cfg.dc.supplyMismatch = mismatch;
        cfg.enableSpo = false;
        const auto without = sim::evaluateCapacity(cfg, 15);
        cfg.enableSpo = true;
        const auto with = sim::evaluateCapacity(cfg, 15);
        cfg.spoPasses = 8;
        const auto fixpoint = sim::evaluateCapacity(cfg, 15);
        t.addRow({util::formatFixed(mismatch, 2),
                  util::formatFixed(without.avgCapRatioAll, 6),
                  util::formatFixed(with.avgCapRatioAll, 6),
                  util::formatFixed(with.meanStrandedReclaimed, 0),
                  util::formatFixed(fixpoint.meanStrandedReclaimed, 0)});
    }
    t.print(std::cout);
    std::printf("Expected shape: zero mismatch strands nothing; larger "
                "mismatch strands more budget for\nSPO to reclaim, "
                "keeping the cap ratio lower than without SPO.\n\n");
}

void
ablationPiGain()
{
    util::TextTable t("A2 -- PI gain vs. settle time (Fig. 5 step, "
                      "PS2 -> 200 W at t=30)");
    t.setHeader({"gain", "settle time (s)", "undershoot (W)"});
    for (double gain : {0.25, 0.5, 1.0, 1.5}) {
        core::ServiceConfig cfg;
        cfg.capping.gain = gain;

        std::vector<sim::ServerSetup> servers;
        sim::ServerSetup s;
        s.spec = sim::testbedServerSpec("S0");
        s.workload = std::make_unique<dev::ConstantWorkload>(1.0);
        servers.push_back(std::move(s));
        auto sys = std::make_unique<topo::PowerSystem>(2);
        for (int feed = 0; feed < 2; ++feed) {
            auto tree = std::make_unique<topo::PowerTree>(
                feed, 0, feed == 0 ? "X" : "Y");
            const auto root =
                tree->makeRoot(topo::NodeKind::Breaker, "cb", 1000.0);
            tree->addSupplyPort(root, "S0", {0, feed});
            sys->addTree(std::move(tree));
        }
        ClosedLoopSim rig(std::move(sys), std::move(servers), cfg);
        rig.setManualMode(true);
        rig.setManualBudgets(0, {450.0, 450.0});
        rig.at(30, [&rig] { rig.setManualBudgets(0, {450.0, 200.0}); });
        rig.run(160);
        const auto ps2 = ClosedLoopSim::supplySeries(0, 1, "power");
        const Seconds settle =
            rig.recorder().settleTime(ps2, 32, 200.0, 0.05 * 200.0);
        double min_power = 1e9;
        for (const auto &p : rig.recorder().series(ps2)) {
            if (p.time >= 32)
                min_power = std::min(min_power, p.value);
        }
        t.addRow({util::formatFixed(gain, 2), std::to_string(settle),
                  util::formatFixed(std::max(0.0, 200.0 - min_power),
                                    1)});
    }
    t.print(std::cout);
    std::printf("Expected shape: low gain settles slowly; gain ~1 "
                "(paper) settles within two periods;\nhigher gain "
                "settles fast but undershoots more.\n\n");
}

void
ablationControlPeriod()
{
    util::TextTable t("A3 -- control period vs. breaker-overload "
                      "recovery (feed X fails at t=60)");
    t.setHeader({"period (s)", "overload cleared in (s)",
                 "UL489 window", "breaker tripped"});
    for (int variant = 0; variant < 5; ++variant) {
        // Variants: periods 4/8/16/24 s, plus 16 s with the emergency
        // fast path (out-of-cycle period on observed overload).
        const Seconds periods[5] = {4, 8, 16, 24, 16};
        const bool fast_path = variant == 4;
        const Seconds period = periods[variant];
        core::ServiceConfig cfg;
        cfg.controlPeriod = period;
        cfg.emergencyFastPath = fast_path;
        cfg.enableSpo = false;

        std::vector<sim::ServerSetup> servers;
        const Watts demands[4] = {414.0, 415.0, 433.0, 439.0};
        const Fraction share_x[4] = {0.5, 0.5, 0.53, 0.46};
        for (int i = 0; i < 4; ++i) {
            sim::ServerSetup s;
            s.spec = sim::testbedServerSpec("S" + std::to_string(i),
                                            i == 0 ? 1 : 0, share_x[i]);
            s.workload = std::make_unique<dev::ConstantWorkload>(
                sim::utilizationForDemand(160.0, 490.0, demands[i]));
            servers.push_back(std::move(s));
        }
        // Both feeds serve all four servers; left CBs carry servers 0-1.
        auto sys = std::make_unique<topo::PowerSystem>(2);
        for (int feed = 0; feed < 2; ++feed) {
            auto tree = std::make_unique<topo::PowerTree>(
                feed, 0, feed == 0 ? "X" : "Y");
            const auto top = tree->makeRoot(topo::NodeKind::Breaker,
                                            "topCB", 1400.0);
            const auto left = tree->addChild(
                top, topo::NodeKind::Breaker, "leftCB", 750.0);
            const auto right = tree->addChild(
                top, topo::NodeKind::Breaker, "rightCB", 750.0);
            tree->addSupplyPort(left, "s0", {0, feed});
            tree->addSupplyPort(left, "s1", {1, feed});
            tree->addSupplyPort(right, "s2", {2, feed});
            tree->addSupplyPort(right, "s3", {3, feed});
            sys->addTree(std::move(tree));
        }

        ClosedLoopSim rig(std::move(sys), std::move(servers), cfg);
        rig.service().refreshRootBudgets(1400.0);
        rig.failFeedAt(60, 0, 1400.0);
        rig.run(200);

        // After the failure the Y left CB carries s0+s1 (~830 W > 750):
        // find when the load is back inside the regulated band for good.
        Seconds cleared = -1;
        for (const auto &p : rig.recorder().series("Y.leftCB.power")) {
            if (p.time < 60)
                continue;
            if (p.value > 750.0 * 1.01) {
                cleared = -1;
            } else if (cleared < 0) {
                cleared = p.time;
            }
        }
        t.addRow({std::to_string(period)
                      + (fast_path ? " + fast path" : ""),
                  cleared >= 0 ? std::to_string(cleared - 60) : "never",
                  "30 s @ 160%",
                  rig.anyBreakerTripped() ? "YES" : "no"});
    }
    t.print(std::cout);
    std::printf("Expected shape: the paper's 8 s period clears the "
                "overload in ~2 periods, well inside\nthe 30 s UL 489 "
                "window; very long periods erode the margin.\n");
}

void
ablationPriorityLevels(int trials)
{
    util::TextTable t("A4 -- priority granularity (worst case, 13 "
                      "servers/rack/phase, Global Priority)");
    t.setHeader({"levels", "ratio: lowest", "ratio: median level",
                 "ratio: highest", "all servers"});
    for (int levels : {2, 4, 8}) {
        sim::CapacityConfig cfg;
        cfg.policy = policy::PolicyKind::GlobalPriority;
        cfg.worstCase = true;
        cfg.trials = trials;
        cfg.seed = 21;
        cfg.priorityFractions.assign(
            static_cast<std::size_t>(levels), 1.0 / levels);
        const auto p = sim::evaluateCapacity(cfg, 13);
        const auto &by = p.avgCapRatioByPriority;
        t.addRow({std::to_string(levels),
                  util::formatFixed(by.front(), 3),
                  util::formatFixed(by[by.size() / 2], 3),
                  util::formatFixed(by.back(), 3),
                  util::formatFixed(p.avgCapRatioAll, 3)});
    }
    t.print(std::cout);
    std::printf("Expected shape: the all-servers ratio is granularity-"
                "independent; finer levels shield a\nlarger top tier "
                "while concentrating throttling on the bottom tier.\n");
}

void
ablationAdaptiveFeedBalance()
{
    util::TextTable t("A5 -- static vs. adaptive per-feed budget split "
                      "(PSU failure on the high-priority server)");
    t.setHeader({"root-budget policy", "S0 throughput after failure",
                 "Y-feed budget (W)"});
    for (const bool adaptive : {false, true}) {
        core::ServiceConfig cfg;
        cfg.adaptiveFeedBalance = adaptive;
        cfg.totalPerPhaseBudget = 1400.0;

        std::vector<sim::ServerSetup> servers;
        for (int i = 0; i < 4; ++i) {
            sim::ServerSetup s;
            s.spec = sim::testbedServerSpec("S" + std::to_string(i),
                                            i == 0 ? 1 : 0);
            s.workload = std::make_unique<dev::ConstantWorkload>(
                sim::utilizationForDemand(160.0, 490.0, 430.0));
            servers.push_back(std::move(s));
        }
        auto sys = std::make_unique<topo::PowerSystem>(2);
        for (int feed = 0; feed < 2; ++feed) {
            auto tree = std::make_unique<topo::PowerTree>(
                feed, 0, feed == 0 ? "X" : "Y");
            const auto top = tree->makeRoot(topo::NodeKind::Breaker,
                                            "topCB", 1400.0);
            for (int i = 0; i < 4; ++i) {
                tree->addSupplyPort(top, "s" + std::to_string(i),
                                    {i, feed});
            }
            sys->addTree(std::move(tree));
        }
        ClosedLoopSim rig(std::move(sys), std::move(servers), cfg);
        rig.service().refreshRootBudgets(1400.0);
        rig.failSupplyAt(60, 0, 0);
        rig.run(240);
        t.addRow({adaptive ? "adaptive (extension)" : "even split "
                                                      "(paper)",
                  util::formatFixed(
                      rig.recorder().mean(
                          ClosedLoopSim::serverSeries(0, "throughput"),
                          180, 239),
                      2),
                  util::formatFixed(rig.service().rootBudgets()[1], 0)});
    }
    t.print(std::cout);
    std::printf("Expected shape: the even split strands headroom on the "
                "lightly-loaded feed after the\nfailure; adaptive "
                "balancing moves it to where the high-priority load "
                "went.\n");
}

void
ablationSensorBias()
{
    util::TextTable t("A6 -- sensor bias vs. breaker-limit margin "
                      "(Fig. 2 rig, left CB 750 W)");
    t.setHeader({"power-sensor bias", "left CB max load (W)",
                 "margin vs. rating"});
    for (double bias_w : {-10.0, -5.0, 0.0, 5.0, 10.0}) {
        // Bias is injected as a constant sensor offset: the controller
        // believes servers draw (true + bias), so negative bias (under-
        // reading meters) erodes the physical margin.
        std::vector<sim::ServerSetup> servers;
        for (int i = 0; i < 4; ++i) {
            sim::ServerSetup s;
            s.spec = sim::testbedServerSpec("S" + std::to_string(i),
                                            i == 0 ? 1 : 0, 1.0, 1);
            s.workload = std::make_unique<dev::ConstantWorkload>(
                sim::utilizationForDemand(160.0, 490.0, 420.0));
            servers.push_back(std::move(s));
        }
        core::ServiceConfig cfg;
        cfg.enableSpo = false;
        dev::SensorConfig sensors;
        sensors.powerNoiseStddev = 0.0;
        // Emulate bias via quantization-free constant offset: reuse the
        // noise hook by shifting the budget instead (equivalent loop
        // effect): give the controller budgets shifted by -bias.
        sim::ClosedLoopSim rig(sim::fig2System(), std::move(servers),
                               cfg, 1, sensors);
        rig.setRootBudgets({1240.0 - 4.0 * bias_w});
        rig.run(160);
        const double max_left =
            rig.recorder().max("feed.leftCB.power", 24, 159);
        t.addRow({util::formatFixed(bias_w, 0) + " W",
                  util::formatFixed(max_left, 0),
                  util::formatFixed(100.0 * (1.0 - max_left / 750.0), 1)
                      + " %"});
    }
    t.print(std::cout);
    std::printf("Expected shape: under-reading sensors push real loads "
                "toward the rating; the paper\nreserves a 5%% "
                "contractual margin to absorb exactly this class of "
                "error.\n");
}

void
ablationEstimatorMode()
{
    util::TextTable t("A7 -- demand estimator: regression (paper) vs. "
                      "last-measured baseline");
    t.setHeader({"estimator", "SA throughput after emergency",
                 "SA budget (W)"});
    for (const bool naive : {false, true}) {
        core::ServiceConfig cfg;
        cfg.enableSpo = false;
        cfg.capping.estimator.mode =
            naive ? ctrl::DemandEstimatorMode::LastMeasured
                  : ctrl::DemandEstimatorMode::Regression;

        std::vector<sim::ServerSetup> servers;
        for (int i = 0; i < 4; ++i) {
            sim::ServerSetup s;
            s.spec = sim::testbedServerSpec("S" + std::to_string(i),
                                            i == 0 ? 1 : 0, 1.0, 1);
            s.workload = std::make_unique<dev::ConstantWorkload>(
                sim::utilizationForDemand(160.0, 490.0, 420.0));
            servers.push_back(std::move(s));
        }
        sim::ClosedLoopSim rig(sim::fig2System(), std::move(servers),
                               cfg);
        // Deep emergency (floors only), then partial relief.
        rig.setRootBudgets({1080.0});
        rig.at(96, [&rig] { rig.setRootBudgets({1240.0}); });
        rig.run(320);

        t.addRow({naive ? "last-measured" : "regression (paper)",
                  util::formatFixed(
                      rig.recorder().mean(
                          sim::ClosedLoopSim::serverSeries(
                              0, "throughput"),
                          240, 319),
                      2),
                  util::formatFixed(
                      rig.recorder().mean(
                          sim::ClosedLoopSim::supplySeries(0, 0,
                                                           "budget"),
                          240, 319),
                      0)});
    }
    t.print(std::cout);
    std::printf("Expected shape: the naive estimator collapses to the "
                "capped power during the\nemergency, so the high-"
                "priority server never re-requests its true demand -- a "
                "lasting\npriority inversion the paper's regression "
                "method avoids.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Ablations",
                  "Design-choice studies: SPO, PI gain, control period, "
                  "priority granularity, feed balancing");
    const int trials = bench::intFlag(argc, argv, "trials", 8);
    ablationSpoMismatch(trials);
    ablationPiGain();
    ablationControlPeriod();
    std::printf("\n");
    ablationPriorityLevels(trials);
    std::printf("\n");
    ablationAdaptiveFeedBalance();
    std::printf("\n");
    ablationSensorBias();
    std::printf("\n");
    ablationEstimatorMode();
    return 0;
}
