/**
 * @file
 * Reproduces paper Table 1: power budget assignments for the Figure 2
 * conceptual example under local per-CB priorities vs. global priorities
 * (plus the No-Priority baseline for reference).
 *
 * Setup: four servers, 430 W demand each, Pcap_min 270 W; SA high
 * priority; 1240 W total budget; CBs rated 1400/750/750 W.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "control/allocator.hh"
#include "policy/policy.hh"
#include "sim/scenario.hh"
#include "util/table.hh"

using namespace capmaestro;

int
main(int argc, char **argv)
{
    bench::banner("Table 1",
                  "Budget assignment: local per-CB vs. global priorities "
                  "(Fig. 2 tree, 1240 W budget)");

    std::vector<ctrl::ServerAllocInput> fleet(4);
    for (auto &s : fleet) {
        s.capMin = 270.0;
        s.capMax = 490.0;
        s.demand = 430.0;
        s.supplies = {{1.0, true}};
    }
    fleet[0].priority = 1; // SA high priority

    util::TextTable table("Table 1 -- budgets (W)");
    table.setHeader({"policy", "SA (high)", "SB", "SC", "SD", "paper"});

    const char *paper_rows[] = {
        "n/a",
        "350/270/310/310",
        "430/270/270/270",
    };

    int row = 0;
    for (const auto kind : policy::kAllPolicies) {
        auto sys = sim::fig2System();
        ctrl::FleetAllocator alloc(*sys, policy::treePolicy(kind));
        const auto result = alloc.allocate(fleet, {1240.0}, false);
        std::vector<std::string> cells{policy::policyName(kind)};
        for (int i = 0; i < 4; ++i) {
            cells.push_back(util::formatFixed(
                result.servers[static_cast<std::size_t>(i)]
                    .supplyBudget[0],
                0));
        }
        cells.push_back(paper_rows[row++]);
        table.addRow(std::move(cells));
    }
    table.print(std::cout);

    std::printf("\nExpected shape: Global gives SA its full 430 W demand "
                "by throttling SC/SD to their floors;\nLocal can only "
                "borrow from SB (same CB) and strands SA at 350 W.\n");
    (void)argc;
    (void)argv;
    return 0;
}
