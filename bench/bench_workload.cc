/**
 * @file
 * Workload-layer experiment: SLO attainment vs. budget tightness per
 * placement policy.
 *
 * A fleet of testbed servers on one feed runs the two-class tenant mix
 * (batch priority 0, online priority 1, Max priority inheritance) while
 * the root budget sweeps from uncapped down to deep capping. For every
 * (policy, budget) cell the bench reports per-class SLO attainment, p99
 * slowdown, drops, and detected priority-inversion periods — the
 * closed-loop counterpart of the paper's priority ordering claims, now
 * measured at job granularity.
 *
 * Expected shape: attainment degrades as the budget tightens, but the
 * online (high-priority) class keeps the lower p99 slowdown at every
 * tightness. Inversion counts stay small but non-zero under capping:
 * job churn between control-period boundaries briefly leaves a
 * low-priority job on a well-funded server until the next boundary
 * re-derives priorities.
 *
 * Flags:
 *   --servers=N     fleet size (default 12)
 *   --duration=S    simulated seconds per cell (default 900; the CI
 *                   smoke run uses 200 to stay well under a minute)
 *   --csv           machine-readable output
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "sim/scenario.hh"
#include "util/table.hh"
#include "workload/engine.hh"

using namespace capmaestro;

namespace {

workload::Params
mixParams(workload::PlacementPolicy policy, std::size_t servers)
{
    workload::Params params;
    params.seed = 17;
    // ~70 % offered CPU load at the mean duration mix.
    params.arrivalRate = 0.035 * static_cast<double>(servers);
    params.diurnalAmplitude = 0.2;
    params.diurnalPeriod = 600; // a full swing per cell
    params.policy = policy;
    params.priorityMode = workload::PriorityMode::Max;
    params.backgroundUtilization = 0.1;
    params.backgroundJitter = 0.02;

    // Equal durations so per-class slowdowns compare apples-to-apples
    // (queueing delay inflates short jobs' slowdown far more than long
    // ones', which would mask the priority effect).
    workload::TenantSpec batch;
    batch.name = "batch";
    batch.priority = 0;
    batch.weight = 0.7;
    batch.cpuDemand = 0.5;
    batch.meanDuration = 40;
    batch.durationSpread = 0.4;
    batch.sloSlowdown = 3.0;
    workload::TenantSpec online;
    online.name = "online";
    online.priority = 1;
    online.weight = 0.3;
    online.cpuDemand = 0.5;
    online.meanDuration = 40;
    online.durationSpread = 0.4;
    online.sloSlowdown = 1.5;
    params.tenants = {batch, online};
    return params;
}

std::string
attainment(const workload::ClassReport *cls)
{
    if (cls == nullptr || cls->completed == 0)
        return "-";
    return util::formatFixed(100.0 * static_cast<double>(cls->sloMet)
                                 / static_cast<double>(cls->completed),
                             1)
           + "%";
}

} // namespace

int
main(int argc, char **argv)
{
    const auto servers = static_cast<std::size_t>(
        bench::intFlag(argc, argv, "servers", 12));
    const auto duration = static_cast<Seconds>(
        bench::intFlag(argc, argv, "duration", 900));
    const bool csv = bench::boolFlag(argc, argv, "csv");

    if (!csv) {
        bench::banner("workload",
                      "Job-level SLO attainment vs. budget tightness "
                      "per placement policy");
    }

    // Budget as a fraction of the fleet's nameplate (capMax) draw:
    // 1.0 never caps, 0.55 is deep in the capping regime (capMin is
    // ~0.55 of capMax on the testbed spec).
    const std::vector<double> tightness{1.0, 0.85, 0.70, 0.60};
    const Watts nameplate = 490.0 * static_cast<double>(servers);

    for (const auto policy : workload::allPlacementPolicies()) {
        util::TextTable t(std::string("policy: ")
                          + workload::placementPolicyName(policy));
        t.setHeader({"budget", "online SLO", "batch SLO", "online p99",
                     "batch p99", "dropped", "inversions"});
        for (const double frac : tightness) {
            auto rig = sim::makeContentionRig(
                std::vector<Priority>(servers, 0), frac * nameplate);
            rig.attachTraffic(std::make_unique<workload::WorkloadEngine>(
                mixParams(policy, servers)));
            rig.run(duration);
            const auto *engine =
                dynamic_cast<workload::WorkloadEngine *>(rig.traffic());
            const auto report = engine->report(duration);
            const auto *online = report.byPriority(1);
            const auto *batch = report.byPriority(0);
            t.addRow({util::formatFixed(frac, 2),
                      attainment(online), attainment(batch),
                      online != nullptr
                          ? util::formatFixed(online->p99Slowdown, 2)
                          : "-",
                      batch != nullptr
                          ? util::formatFixed(batch->p99Slowdown, 2)
                          : "-",
                      std::to_string(report.dropped),
                      std::to_string(report.inversionPeriods)});
        }
        if (csv)
            t.printCsv(std::cout);
        else
            t.print(std::cout);
    }

    if (!csv) {
        std::printf(
            "Expected shape: attainment falls as the budget tightens; "
            "the online class keeps the\nlower p99 slowdown under "
            "every policy (Max priority inheritance). Small non-zero\n"
            "inversion counts under capping are churn transients "
            "corrected at the next boundary.\n");
    }
    return 0;
}
