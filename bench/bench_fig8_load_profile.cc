/**
 * @file
 * Reproduces paper Figure 8: the distribution of average CPU utilization
 * used as typical-case load (digitized from the Google profile of
 * Barroso et al. [27]; see the substitution note in DESIGN.md).
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "device/server.hh"
#include "sim/utilization.hh"
#include "util/table.hh"

using namespace capmaestro;
using sim::GoogleUtilizationProfile;

int
main(int argc, char **argv)
{
    bench::banner("Figure 8",
                  "Distribution of average CPU utilization (typical-case "
                  "load profile)");
    const int samples = bench::intFlag(argc, argv, "samples", 100000);

    util::Rng rng(2026);
    const auto hist = GoogleUtilizationProfile::histogram(
        rng, static_cast<std::size_t>(samples));

    std::printf("%d samples; distribution (bin center, frequency):\n\n",
                samples);
    std::printf("%s\n", hist.render(48).c_str());

    util::TextTable table("Figure 8 -- bin weights");
    table.setHeader({"utilization bin", "target weight",
                     "sampled frequency", "server demand (W)"});
    const auto &weights = GoogleUtilizationProfile::binWeights();
    for (std::size_t i = 0; i < GoogleUtilizationProfile::kBins; ++i) {
        const double center = hist.binCenter(i);
        table.addRow({util::formatFixed(hist.binLow(i), 1) + "-"
                          + util::formatFixed(hist.binLow(i) + 0.1, 1),
                      util::formatFixed(weights[i], 4),
                      util::formatFixed(hist.binFraction(i), 4),
                      util::formatFixed(
                          dev::fanPower(160.0, 490.0, center), 0)});
    }
    table.print(std::cout);

    std::printf("\nmean utilization = %.3f -> mean server demand "
                "~%.0f W (Fan et al. curve, Table 4 server)\n",
                GoogleUtilizationProfile::mean(),
                dev::fanPower(160.0, 490.0,
                              GoogleUtilizationProfile::mean()));
    return 0;
}
