/**
 * @file
 * Reproduces the sensitivity studies the paper defers to its technical
 * report (§6.4 "Sensitivity Studies"): worst-case deployable capacity as
 * a function of (1) the fraction of high-priority servers, (2) Pcap_min,
 * and (3) the contractual budget, for all three policies.
 *
 * Expected shape: Global Priority dominates the other policies across
 * the sweeps; its advantage shrinks as the high-priority fraction grows
 * (less low-priority power to borrow) and as Pcap_min rises (less
 * throttling range).
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "sim/capacity.hh"
#include "util/table.hh"

using namespace capmaestro;
using namespace capmaestro::sim;

namespace {

std::size_t
maxServers(policy::PolicyKind kind, int trials,
           const std::function<void(CapacityConfig &)> &tweak)
{
    CapacityConfig cfg;
    cfg.policy = kind;
    cfg.worstCase = true;
    cfg.trials = trials;
    tweak(cfg);
    return findMaxDeployable(cfg, 2, 15).totalServers;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Sensitivity (tech report)",
                  "Worst-case deployable servers vs. key parameters");
    const int trials = bench::intFlag(argc, argv, "trials", 10);

    {
        util::TextTable t("Sweep 1 -- fraction of high-priority servers");
        t.setHeader({"high-priority %", "No Priority", "Local Priority",
                     "Global Priority"});
        for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9}) {
            auto tweak = [frac](CapacityConfig &cfg) {
                cfg.dc.highPriorityFraction = frac;
            };
            t.addRow({util::formatFixed(100.0 * frac, 0),
                      std::to_string(maxServers(
                          policy::PolicyKind::NoPriority, trials, tweak)),
                      std::to_string(maxServers(
                          policy::PolicyKind::LocalPriority, 3 * trials,
                          tweak)),
                      std::to_string(maxServers(
                          policy::PolicyKind::GlobalPriority, trials,
                          tweak))});
        }
        t.print(std::cout);
        std::printf("\n");
    }

    {
        util::TextTable t("Sweep 2 -- Pcap_min (W)");
        t.setHeader({"Pcap_min", "No Priority", "Local Priority",
                     "Global Priority"});
        for (double cap_min : {200.0, 240.0, 270.0, 310.0, 350.0}) {
            auto tweak = [cap_min](CapacityConfig &cfg) {
                cfg.dc.serverCapMin = cap_min;
            };
            t.addRow({util::formatFixed(cap_min, 0),
                      std::to_string(maxServers(
                          policy::PolicyKind::NoPriority, trials, tweak)),
                      std::to_string(maxServers(
                          policy::PolicyKind::LocalPriority, 3 * trials,
                          tweak)),
                      std::to_string(maxServers(
                          policy::PolicyKind::GlobalPriority, trials,
                          tweak))});
        }
        t.print(std::cout);
        std::printf("\n");
    }

    {
        util::TextTable t("Sweep 3 -- contractual budget (kW per phase)");
        t.setHeader({"budget", "No Priority", "Local Priority",
                     "Global Priority"});
        for (double kw : {500.0, 600.0, 700.0, 800.0, 900.0}) {
            auto tweak = [kw](CapacityConfig &cfg) {
                cfg.dc.contractualPerPhase = kw * 1000.0;
            };
            t.addRow({util::formatFixed(kw, 0),
                      std::to_string(maxServers(
                          policy::PolicyKind::NoPriority, trials, tweak)),
                      std::to_string(maxServers(
                          policy::PolicyKind::LocalPriority, 3 * trials,
                          tweak)),
                      std::to_string(maxServers(
                          policy::PolicyKind::GlobalPriority, trials,
                          tweak))});
        }
        t.print(std::cout);
    }

    std::printf("\nExpected shape: Global >= Local >= No Priority "
                "everywhere; the Global advantage shrinks\nas the "
                "high-priority fraction approaches 100%% and as "
                "Pcap_min approaches Pcap_max.\n");
    return 0;
}
