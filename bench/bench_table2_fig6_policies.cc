/**
 * @file
 * Reproduces paper Table 2 and Figure 6: the four-server policy
 * comparison on the Figure 2 hierarchy (single feed emulating a failed
 * redundant feed, 1240 W budget).
 *
 *   Table 2   — steady-state per-server budgets under No/Local/Global
 *               priority.
 *   Figure 6a — normalized throughput per server per policy.
 *   Figure 6b — power at the top/left/right CBs under Global Priority.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "sim/scenario.hh"
#include "util/table.hh"

using namespace capmaestro;
using sim::ClosedLoopSim;

int
main(int argc, char **argv)
{
    bench::banner("Table 2 / Figure 6",
                  "Power capping policies on 4 servers (SA high "
                  "priority), demands 420/413/417/423 W, 1240 W budget");
    const bool csv = bench::boolFlag(argc, argv, "csv");
    const Seconds horizon = 160;
    const Seconds tail_from = 100;

    util::TextTable budgets("Table 2 -- steady-state budgets (W)");
    budgets.setHeader({"policy", "SA (high)", "SB", "SC", "SD", "paper"});
    util::TextTable throughput(
        "Figure 6a -- normalized throughput (vs. uncapped)");
    throughput.setHeader({"policy", "SA (high)", "SB", "SC", "SD",
                          "paper SA"});

    const char *paper_budget_rows[] = {
        "314/306/311/316",
        "344/274/314/317",
        "419/276/275/275",
    };
    const char *paper_sa_tp[] = {"0.82", "0.87", "1.00"};

    int row = 0;
    for (const auto kind : policy::kAllPolicies) {
        auto rig = sim::makeFig6Rig(kind);
        rig.run(horizon);
        const auto &rec = rig.recorder();

        std::vector<std::string> bcells{policy::policyName(kind)};
        std::vector<std::string> tcells{policy::policyName(kind)};
        for (std::size_t i = 0; i < 4; ++i) {
            bcells.push_back(util::formatFixed(
                rec.mean(ClosedLoopSim::supplySeries(i, 0, "budget"),
                         tail_from, horizon),
                0));
            tcells.push_back(util::formatFixed(
                rec.mean(ClosedLoopSim::serverSeries(i, "throughput"),
                         tail_from, horizon),
                2));
        }
        bcells.push_back(paper_budget_rows[row]);
        tcells.push_back(paper_sa_tp[row]);
        ++row;
        budgets.addRow(std::move(bcells));
        throughput.addRow(std::move(tcells));

        if (kind == policy::PolicyKind::GlobalPriority) {
            if (csv) {
                rec.printCsv(std::cout);
            } else {
                util::TextTable cb(
                    "Figure 6b -- CB power under Global Priority (W)");
                cb.setHeader({"t(s)", "top CB (<=1240)",
                              "left CB (<=750)", "right CB (<=750)"});
                for (Seconds t = 0; t < horizon; t += 16) {
                    cb.addNumericRow(
                        std::to_string(t),
                        {rec.mean("feed.topCB.power", t, t + 15),
                         rec.mean("feed.leftCB.power", t, t + 15),
                         rec.mean("feed.rightCB.power", t, t + 15)},
                        0);
                }
                cb.print(std::cout);
                std::printf("max top/left/right after settling: "
                            "%.0f / %.0f / %.0f W\n\n",
                            rec.max("feed.topCB.power", 24, horizon),
                            rec.max("feed.leftCB.power", 24, horizon),
                            rec.max("feed.rightCB.power", 24, horizon));
            }
        }
    }

    budgets.print(std::cout);
    std::printf("\n");
    throughput.print(std::cout);
    std::printf("\nExpected shape: Global Priority gives SA its demand "
                "(throughput 1.0) by capping SB/SC/SD\ntoward their "
                "floors; Local only borrows from SB; No Priority caps "
                "everyone evenly.\n");
    (void)argc;
    (void)argv;
    return 0;
}
