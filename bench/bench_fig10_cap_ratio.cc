/**
 * @file
 * Reproduces paper Figure 10: average cap ratio vs. number of deployed
 * servers during a worst-case power emergency, for (a) all servers and
 * (b) high-priority servers, under the three policies.
 *
 * Expected shape: ratios grow with density; the all-servers curves are
 * nearly policy-independent; the high-priority curves stay near zero
 * under Global Priority far beyond the point where Local Priority (and
 * then No Priority) start throttling high-priority work.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "sim/capacity.hh"
#include "util/table.hh"

using namespace capmaestro;
using namespace capmaestro::sim;

int
main(int argc, char **argv)
{
    bench::banner("Figure 10",
                  "Average cap ratio vs. server count (worst-case "
                  "power emergency)");
    const int trials = bench::intFlag(argc, argv, "trials", 20);

    std::vector<std::vector<CapacityPoint>> sweeps;
    for (const auto kind : policy::kAllPolicies) {
        CapacityConfig cfg;
        cfg.policy = kind;
        cfg.worstCase = true;
        cfg.trials = trials;
        sweeps.push_back(sweepCapacity(cfg, 6, 15));
    }

    util::TextTable all("Figure 10a -- cap ratio, all servers");
    all.setHeader({"servers", "No Priority", "Local Priority",
                   "Global Priority"});
    util::TextTable high("Figure 10b -- cap ratio, high-priority "
                         "servers");
    high.setHeader({"servers", "No Priority", "Local Priority",
                    "Global Priority"});

    for (std::size_t i = 0; i < sweeps[0].size(); ++i) {
        const auto servers = std::to_string(sweeps[0][i].totalServers);
        all.addNumericRow(servers,
                          {sweeps[0][i].avgCapRatioAll,
                           sweeps[1][i].avgCapRatioAll,
                           sweeps[2][i].avgCapRatioAll},
                          3);
        high.addNumericRow(servers,
                           {sweeps[0][i].avgCapRatioHigh,
                            sweeps[1][i].avgCapRatioHigh,
                            sweeps[2][i].avgCapRatioHigh},
                           3);
    }
    all.print(std::cout);
    std::printf("\n");
    high.print(std::cout);
    std::printf("\nExpected shape: (a) nearly identical growth across "
                "policies; (b) Global holds ~0 up to 5832\nservers, "
                "Local departs around 4860, No Priority tracks (a).\n");
    (void)argc;
    (void)argv;
    return 0;
}
