/**
 * @file
 * Reproduces the paper's §5 overhead & scalability analysis with
 * google-benchmark microbenchmarks plus the worker-layout model:
 *
 *   - metrics gathering / budgeting cost per controller, vs. fan-out
 *   - full-tree allocation cost for rack- and room-scale trees
 *   - closed-loop control-period cost per server
 *
 * After the microbenchmarks run, main() feeds the measured per-child
 * costs into the worker model and prints the §5 claims (rack budgeting
 * ~10 ms; 500-rack room worker < 300 ms; < 0.1 % core overhead).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "control/allocator.hh"
#include "core/distributed.hh"
#include "core/worker.hh"
#include "sim/capacity.hh"
#include "sim/datacenter.hh"
#include "sim/scenario.hh"
#include "util/random.hh"

using namespace capmaestro;

namespace {

std::vector<ctrl::NodeMetrics>
makeChildren(std::size_t n)
{
    util::Rng rng(7);
    std::vector<ctrl::NodeMetrics> children;
    children.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        ctrl::NodeMetrics m;
        const Priority p = static_cast<Priority>(rng.uniformInt(0, 3));
        const Watts lo = rng.uniform(100.0, 300.0);
        const Watts d = lo + rng.uniform(0.0, 200.0);
        m.accumulate(p, lo, d, d);
        m.setConstraint(d + 50.0);
        children.push_back(std::move(m));
    }
    return children;
}

void
BM_GatherMetrics(benchmark::State &state)
{
    const auto children =
        makeChildren(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ctrl::gatherMetrics(children, 50000.0, true));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GatherMetrics)->Arg(9)->Arg(45)->Arg(162)->Arg(500);

void
BM_BudgetChildren(benchmark::State &state)
{
    const auto children =
        makeChildren(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ctrl::budgetChildren(30000.0, children, true));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BudgetChildren)->Arg(9)->Arg(45)->Arg(162)->Arg(500);

/** Full allocation over the Table 4 data center, one phase. */
void
BM_FleetAllocation(benchmark::State &state)
{
    sim::DataCenterParams params;
    params.phases = 1;
    params.serversPerRackPerPhase = static_cast<int>(state.range(0));
    auto dc = sim::buildDataCenter(params);
    ctrl::FleetAllocator alloc(*dc.system,
                               ctrl::TreePolicy::globalPriority());
    util::Rng rng(3);
    std::vector<ctrl::ServerAllocInput> fleet(dc.servers.size());
    for (auto &s : fleet) {
        s.priority = rng.chance(0.3) ? 1 : 0;
        s.capMin = 270.0;
        s.capMax = 490.0;
        s.demand = rng.uniform(270.0, 490.0);
        s.supplies = {{0.5, true}, {0.5, true}};
    }
    const std::vector<Watts> budgets(dc.system->trees().size(),
                                     332500.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(alloc.allocate(fleet, budgets, false));
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(fleet.size()));
}
BENCHMARK(BM_FleetAllocation)->Arg(5)->Arg(13)->Arg(15)
    ->Unit(benchmark::kMillisecond);

/** Distributed (rack/room worker) iteration over the Table 4 center. */
void
BM_DistributedIteration(benchmark::State &state)
{
    sim::DataCenterParams params;
    params.phases = 1;
    params.serversPerRackPerPhase = static_cast<int>(state.range(0));
    auto dc = sim::buildDataCenter(params);
    core::DistributedControlPlane plane(
        *dc.system, ctrl::TreePolicy::globalPriority());

    util::Rng rng(5);
    for (const auto &tree : dc.system->trees()) {
        for (const auto &ref : tree->suppliesUnder(tree->root())) {
            ctrl::LeafInput in;
            in.live = true;
            in.priority = rng.chance(0.3) ? 1 : 0;
            in.capMin = 135.0;
            in.demand = rng.uniform(135.0, 245.0);
            in.constraint = 245.0;
            plane.setLeafInput(ref, in);
        }
    }
    const std::vector<Watts> budgets(dc.system->trees().size(),
                                     332500.0);
    std::size_t messages = 0;
    for (auto _ : state) {
        const auto stats = plane.iterate(budgets);
        messages = stats.metricsMessages + stats.budgetMessages;
    }
    state.counters["messages"] = static_cast<double>(messages);
}
BENCHMARK(BM_DistributedIteration)->Arg(5)->Arg(13)
    ->Unit(benchmark::kMillisecond);

/**
 * Message-plane iteration over the Table 4 center: the same exchange as
 * BM_DistributedIteration but with every metric/budget frame encoded
 * (net/wire) and carried by a lossless SimTransport, measuring the
 * serialization + transport overhead and the real bytes on the wire.
 */
void
BM_MessagePlaneIteration(benchmark::State &state)
{
    sim::DataCenterParams params;
    params.phases = 1;
    params.serversPerRackPerPhase = static_cast<int>(state.range(0));
    auto dc = sim::buildDataCenter(params);
    net::SimTransport transport;
    core::DistributedControlPlane plane(
        *dc.system, ctrl::TreePolicy::globalPriority(), transport);

    util::Rng rng(5);
    for (const auto &tree : dc.system->trees()) {
        for (const auto &ref : tree->suppliesUnder(tree->root())) {
            ctrl::LeafInput in;
            in.live = true;
            in.priority = rng.chance(0.3) ? 1 : 0;
            in.capMin = 135.0;
            in.demand = rng.uniform(135.0, 245.0);
            in.constraint = 245.0;
            plane.setLeafInput(ref, in);
        }
    }
    const std::vector<Watts> budgets(dc.system->trees().size(),
                                     332500.0);
    std::size_t messages = 0;
    std::size_t bytes = 0;
    for (auto _ : state) {
        const auto stats = plane.iterate(budgets);
        messages = stats.metricsMessages + stats.budgetMessages
                   + stats.heartbeatMessages;
        bytes = stats.bytesOnWire;
    }
    state.counters["msgs/period"] = static_cast<double>(messages);
    state.counters["bytes/period"] = static_cast<double>(bytes);
}
BENCHMARK(BM_MessagePlaneIteration)->Arg(5)->Arg(13)
    ->Unit(benchmark::kMillisecond);

/** One closed-loop control period on the Fig. 6 testbed, per server. */
void
BM_ControlPeriod(benchmark::State &state)
{
    auto rig = sim::makeFig6Rig(policy::PolicyKind::GlobalPriority);
    rig.run(16); // prime
    for (auto _ : state)
        rig.run(8);
    state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_ControlPeriod)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // §5 worker-model summary using conservative measured-scale costs.
    core::WorkerCosts costs;
    costs.gatherPerChildUs = 2.0;
    costs.budgetPerChildUs = 2.0;

    std::printf("\n== §5 worker deployment model ==\n");
    for (std::size_t racks : {162u, 500u, 1000u}) {
        core::DeploymentShape shape;
        shape.racks = racks;
        const auto layout = core::planWorkers(shape, costs);
        std::printf("racks=%4zu rack-workers=%zu room compute=%.1f ms "
                    "rack compute=%.2f ms messages/period=%zu core "
                    "overhead=%.4f%%\n",
                    racks, layout.rackWorkers, layout.roomComputeMs,
                    layout.rackComputeMs, layout.messagesPerPeriod,
                    100.0 * layout.coreOverheadFraction);
    }
    std::printf("Paper claims: room-level worker < 300 ms at 500 racks; "
                "< 0.1%% of cores reserved.\n");
    return 0;
}
