/**
 * @file
 * Reproduces the paper's §5 overhead & scalability analysis in two
 * halves:
 *
 *   1. google-benchmark microbenchmarks — metrics gathering /
 *      budgeting cost per controller vs. fan-out, full-tree
 *      allocation, message-plane iteration, closed-loop period —
 *      each tagged with fleet / tiers / processes counters so
 *      BENCH_scalability.json entries stay comparable PR-over-PR.
 *
 *   2. a multi-process deep-tree sweep (--sweep-out=FILE): for each
 *      configuration the bench forks N host processes, each running
 *      an rt::WorkerHost event loop over real loopback UDP sockets,
 *      and measures tree-wide periods/sec and bytes/period while the
 *      whole control tree free-runs flow-controlled by its own
 *      frames. The largest configuration runs >= 10k leaf workers on
 *      one box across depth-3 and depth-4 trees — the ROADMAP's
 *      event-loop scalability claim, measured instead of asserted.
 *
 * After the microbenchmarks run, main() also feeds measured per-child
 * costs into the worker-layout model and prints the §5 claims (rack
 * budgeting ~10 ms; 500-rack room worker < 300 ms; < 0.1 % core
 * overhead).
 *
 * The sweep binds real sockets: it is skipped under CAPMAESTRO_NO_NET=1
 * and only runs when --sweep-out is given (the ctest smoke runs the
 * microbenchmarks only). --sweep-max-leaves=N trims the sweep for
 * quick runs; CAPMAESTRO_BENCH_PORT_BASE overrides the first UDP port
 * (default 22000).
 */

#include <benchmark/benchmark.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "config/loader.hh"
#include "control/allocator.hh"
#include "core/distributed.hh"
#include "core/tree_plan.hh"
#include "core/worker.hh"
#include "device/workload.hh"
#include "rt/host.hh"
#include "sim/capacity.hh"
#include "sim/datacenter.hh"
#include "sim/scenario.hh"
#include "util/json.hh"
#include "util/random.hh"

using namespace capmaestro;

namespace {

// ---------------------------------------------------------------------
// §5 microbenchmarks (single process). Every benchmark reports fleet /
// tiers / processes counters so its JSON entry is self-describing.
// ---------------------------------------------------------------------

void
tagScale(benchmark::State &state, double fleet, double tiers,
         double processes)
{
    state.counters["fleet"] = fleet;
    state.counters["tiers"] = tiers;
    state.counters["processes"] = processes;
}

std::vector<ctrl::NodeMetrics>
makeChildren(std::size_t n)
{
    util::Rng rng(7);
    std::vector<ctrl::NodeMetrics> children;
    children.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        ctrl::NodeMetrics m;
        const Priority p = static_cast<Priority>(rng.uniformInt(0, 3));
        const Watts lo = rng.uniform(100.0, 300.0);
        const Watts d = lo + rng.uniform(0.0, 200.0);
        m.accumulate(p, lo, d, d);
        m.setConstraint(d + 50.0);
        children.push_back(std::move(m));
    }
    return children;
}

void
BM_GatherMetrics(benchmark::State &state)
{
    const auto children =
        makeChildren(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ctrl::gatherMetrics(children, 50000.0, true));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    tagScale(state, static_cast<double>(state.range(0)), 1, 1);
}
BENCHMARK(BM_GatherMetrics)->Arg(9)->Arg(45)->Arg(162)->Arg(500);

void
BM_BudgetChildren(benchmark::State &state)
{
    const auto children =
        makeChildren(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ctrl::budgetChildren(30000.0, children, true));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    tagScale(state, static_cast<double>(state.range(0)), 1, 1);
}
BENCHMARK(BM_BudgetChildren)->Arg(9)->Arg(45)->Arg(162)->Arg(500);

/** Full allocation over the Table 4 data center, one phase. */
void
BM_FleetAllocation(benchmark::State &state)
{
    sim::DataCenterParams params;
    params.phases = 1;
    params.serversPerRackPerPhase = static_cast<int>(state.range(0));
    auto dc = sim::buildDataCenter(params);
    ctrl::FleetAllocator alloc(*dc.system,
                               ctrl::TreePolicy::globalPriority());
    util::Rng rng(3);
    std::vector<ctrl::ServerAllocInput> fleet(dc.servers.size());
    for (auto &s : fleet) {
        s.priority = rng.chance(0.3) ? 1 : 0;
        s.capMin = 270.0;
        s.capMax = 490.0;
        s.demand = rng.uniform(270.0, 490.0);
        s.supplies = {{0.5, true}, {0.5, true}};
    }
    const std::vector<Watts> budgets(dc.system->trees().size(),
                                     332500.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(alloc.allocate(fleet, budgets, false));
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(fleet.size()));
    tagScale(state, static_cast<double>(fleet.size()), 2, 1);
}
BENCHMARK(BM_FleetAllocation)->Arg(5)->Arg(13)->Arg(15)
    ->Unit(benchmark::kMillisecond);

/** Distributed (rack/room worker) iteration over the Table 4 center. */
void
BM_DistributedIteration(benchmark::State &state)
{
    sim::DataCenterParams params;
    params.phases = 1;
    params.serversPerRackPerPhase = static_cast<int>(state.range(0));
    auto dc = sim::buildDataCenter(params);
    core::DistributedControlPlane plane(
        *dc.system, ctrl::TreePolicy::globalPriority());

    util::Rng rng(5);
    std::size_t servers = 0;
    for (const auto &tree : dc.system->trees()) {
        for (const auto &ref : tree->suppliesUnder(tree->root())) {
            ctrl::LeafInput in;
            in.live = true;
            in.priority = rng.chance(0.3) ? 1 : 0;
            in.capMin = 135.0;
            in.demand = rng.uniform(135.0, 245.0);
            in.constraint = 245.0;
            plane.setLeafInput(ref, in);
            ++servers;
        }
    }
    const std::vector<Watts> budgets(dc.system->trees().size(),
                                     332500.0);
    std::size_t messages = 0;
    for (auto _ : state) {
        const auto stats = plane.iterate(budgets);
        messages = stats.metricsMessages + stats.budgetMessages;
    }
    state.counters["messages"] = static_cast<double>(messages);
    tagScale(state, static_cast<double>(servers), 2, 1);
}
BENCHMARK(BM_DistributedIteration)->Arg(5)->Arg(13)
    ->Unit(benchmark::kMillisecond);

/**
 * Message-plane iteration over the Table 4 center: the same exchange as
 * BM_DistributedIteration but with every metric/budget frame encoded
 * (net/wire) and carried by a lossless SimTransport, measuring the
 * serialization + transport overhead and the real bytes on the wire.
 */
void
BM_MessagePlaneIteration(benchmark::State &state)
{
    sim::DataCenterParams params;
    params.phases = 1;
    params.serversPerRackPerPhase = static_cast<int>(state.range(0));
    auto dc = sim::buildDataCenter(params);
    net::SimTransport transport;
    core::DistributedControlPlane plane(
        *dc.system, ctrl::TreePolicy::globalPriority(), transport);

    util::Rng rng(5);
    std::size_t servers = 0;
    for (const auto &tree : dc.system->trees()) {
        for (const auto &ref : tree->suppliesUnder(tree->root())) {
            ctrl::LeafInput in;
            in.live = true;
            in.priority = rng.chance(0.3) ? 1 : 0;
            in.capMin = 135.0;
            in.demand = rng.uniform(135.0, 245.0);
            in.constraint = 245.0;
            plane.setLeafInput(ref, in);
            ++servers;
        }
    }
    const std::vector<Watts> budgets(dc.system->trees().size(),
                                     332500.0);
    std::size_t messages = 0;
    std::size_t bytes = 0;
    for (auto _ : state) {
        const auto stats = plane.iterate(budgets);
        messages = stats.metricsMessages + stats.budgetMessages
                   + stats.heartbeatMessages;
        bytes = stats.bytesOnWire;
    }
    state.counters["msgs/period"] = static_cast<double>(messages);
    state.counters["bytes/period"] = static_cast<double>(bytes);
    tagScale(state, static_cast<double>(servers), 2, 1);
}
BENCHMARK(BM_MessagePlaneIteration)->Arg(5)->Arg(13)
    ->Unit(benchmark::kMillisecond);

/** One closed-loop control period on the Fig. 6 testbed, per server. */
void
BM_ControlPeriod(benchmark::State &state)
{
    auto rig = sim::makeFig6Rig(policy::PolicyKind::GlobalPriority);
    rig.run(16); // prime
    for (auto _ : state)
        rig.run(8);
    state.SetItemsProcessed(state.iterations() * 4);
    tagScale(state, 4, 2, 1);
}
BENCHMARK(BM_ControlPeriod)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------
// Multi-process deep-tree sweep.
// ---------------------------------------------------------------------

/** One configuration of the fork-based host sweep. */
struct SweepConfig
{
    const char *name;
    /** Leaf workers (one rack breaker + one server each). */
    std::size_t leaves;
    /** Fan-out chain below the root; tiers = interior.size() + 2. */
    std::vector<std::size_t> interior;
    /** Host processes forked for this configuration. */
    std::uint32_t processes;
    /** Control periods every host free-runs. */
    std::size_t periods;
};

std::vector<std::uint32_t>
aggLevelsOf(const SweepConfig &cfg)
{
    // Interior nodes sit at heights interior.size()..1 above the edge
    // level; every one of them is an aggregation cut.
    std::vector<std::uint32_t> levels;
    for (std::size_t h = 1; h <= cfg.interior.size(); ++h)
        levels.push_back(static_cast<std::uint32_t>(h));
    return levels;
}

/**
 * Synthetic deep scenario: one feed, one tree, cfg.interior fan-outs
 * below the root, then the leaves split evenly over the bottom row —
 * one rack breaker + one single-supply server per leaf worker. The
 * root budget binds (~2/3 of aggregate capMax) so every period runs a
 * real priority-aware allocation, and the protocol deadlines are left
 * generous: pacing is completeness-driven, so on a lossless loopback
 * they never fire and the measured rate is pure protocol throughput.
 */
config::LoadedScenario
makeDeepScenario(const SweepConfig &cfg)
{
    config::LoadedScenario out;
    out.system = std::make_unique<topo::PowerSystem>(1);

    auto tree = std::make_unique<topo::PowerTree>(0, 0, "F0");
    const auto leaves_d = static_cast<double>(cfg.leaves);
    const auto root = tree->makeRoot(topo::NodeKind::Breaker, "root",
                                     leaves_d * 500.0);
    std::vector<topo::NodeId> frontier{root};
    std::size_t rows = 1;
    for (std::size_t level = 0; level < cfg.interior.size(); ++level) {
        rows *= cfg.interior[level];
        std::vector<topo::NodeId> next;
        const Watts rating =
            leaves_d * 500.0 / static_cast<double>(rows);
        for (const auto parent : frontier) {
            for (std::size_t c = 0; c < cfg.interior[level]; ++c) {
                next.push_back(tree->addChild(
                    parent, topo::NodeKind::Breaker,
                    "i" + std::to_string(level) + "_"
                        + std::to_string(next.size()),
                    rating));
            }
        }
        frontier = std::move(next);
    }
    if (cfg.leaves % frontier.size() != 0) {
        std::fprintf(stderr,
                     "sweep %s: %zu leaves not divisible by %zu rows\n",
                     cfg.name, cfg.leaves, frontier.size());
        std::exit(1);
    }
    const std::size_t per_row = cfg.leaves / frontier.size();
    std::size_t sid = 0;
    for (const auto row : frontier) {
        for (std::size_t r = 0; r < per_row; ++r, ++sid) {
            const auto edge = tree->addChild(
                row, topo::NodeKind::Breaker,
                "rack" + std::to_string(sid), 600.0);
            tree->addSupplyPort(edge, "s" + std::to_string(sid),
                                {static_cast<int>(sid), 0});
        }
    }
    out.system->addTree(std::move(tree));

    out.servers.reserve(cfg.leaves);
    for (std::size_t s = 0; s < cfg.leaves; ++s) {
        sim::ServerSetup setup;
        setup.spec.name = "S" + std::to_string(s);
        setup.spec.idle = 160.0;
        setup.spec.capMin = 270.0;
        setup.spec.capMax = 490.0;
        setup.spec.priority = s % 3 == 0 ? 1 : 0;
        setup.spec.supplies = {{1.0, 0.94}};
        setup.workload = std::make_unique<dev::ConstantWorkload>(
            0.5 + 0.4 * static_cast<double>(s % 7) / 7.0);
        out.servers.push_back(std::move(setup));
    }

    out.service.controlPeriod = 1;
    out.service.policy = policy::PolicyKind::GlobalPriority;
    out.service.enableSpo = false;
    out.service.protocol.gatherDeadlineMs = 10000.0;
    out.service.protocol.budgetDeadlineMs = 10000.0;
    out.rootBudgets = {leaves_d * 330.0};
    out.totalPerPhase = out.rootBudgets[0];
    return out;
}

/**
 * Peer table for the sweep: fixed loopback ports (base + endpoint),
 * leaves chunked contiguously over the processes, every interior
 * worker co-located with its first child — the same layout
 * capmaestro_worker --print-peers-template --processes=K emits.
 */
config::WorkerPeers
makeSweepPeers(const core::TreePlan &plan,
               const std::vector<std::uint32_t> &agg_levels,
               int port_base, std::uint32_t processes)
{
    config::WorkerPeers peers;
    peers.periodMs = 1000.0;
    peers.aggLevels = agg_levels;
    for (std::size_t e = 0; e < plan.workers.size(); ++e) {
        net::UdpPeer peer;
        peer.host = "127.0.0.1";
        peer.port =
            static_cast<std::uint16_t>(port_base + static_cast<int>(e));
        peers.peers[static_cast<net::Transport::Endpoint>(e)] = peer;
    }
    if (processes > 1) {
        const std::size_t racks = plan.leafWorkers;
        for (std::size_t e = 0; e < plan.workers.size(); ++e) {
            const auto ep = static_cast<net::Transport::Endpoint>(e);
            if (e < racks) {
                peers.processOf[ep] =
                    static_cast<std::uint32_t>(e * processes / racks);
            } else {
                const auto first_child =
                    static_cast<net::Transport::Endpoint>(
                        plan.workers[e].children.front());
                peers.processOf[ep] = peers.processOf.count(first_child)
                                          ? peers.processOf[first_child]
                                          : 0;
            }
        }
    }
    return peers;
}

/** What each forked host reports back over its result pipe. */
struct HostResult
{
    std::uint64_t periods = 0;
    std::uint64_t frames = 0;
    std::uint64_t bytes = 0;
    std::uint64_t budgetsApplied = 0;
    std::uint64_t defaults = 0;
    std::uint64_t stale = 0;
    std::uint64_t lost = 0;
};

struct SweepRow
{
    const SweepConfig *cfg = nullptr;
    std::size_t workers = 0;
    std::uint32_t tiers = 0;
    double wallMs = 0.0;
    HostResult total;
    bool ok = false;
};

[[noreturn]] void
runSweepChild(const SweepConfig &cfg, config::WorkerPeers peers,
              std::uint32_t process, int ready_fd, int go_fd,
              int result_fd)
{
    auto scenario = makeDeepScenario(cfg);
    rt::WorkerHost host(std::move(scenario), std::move(peers), process,
                        1);
    char byte = 1;
    (void)!::write(ready_fd, &byte, 1);
    // The barrier: the parent closes the go pipe once every host is
    // bound, so no frame is ever sent at an unbound socket.
    (void)!::read(go_fd, &byte, 1);
    host.runPeriods(cfg.periods);

    HostResult r;
    r.periods = host.stats().periodsRun;
    r.frames = host.transport().stats().framesSent;
    r.bytes = host.transport().stats().bytesSent;
    r.budgetsApplied = host.stats().budgetsApplied;
    r.defaults = host.stats().defaultBudgets;
    r.stale = host.stats().staleReuses;
    r.lost = host.stats().metricsLost;
    (void)!::write(result_fd, &r, sizeof(r));
    ::_exit(0);
}

SweepRow
runSweepConfig(const SweepConfig &cfg, int port_base)
{
    SweepRow row;
    row.cfg = &cfg;

    const auto agg_levels = aggLevelsOf(cfg);
    auto scenario = makeDeepScenario(cfg);
    const auto plan =
        core::TreePlan::build(*scenario.system, agg_levels);
    row.workers = plan.workers.size();
    row.tiers = plan.tiers();
    const auto peers =
        makeSweepPeers(plan, agg_levels, port_base, cfg.processes);

    int ready[2], go[2];
    if (::pipe(ready) != 0 || ::pipe(go) != 0) {
        std::perror("pipe");
        return row;
    }
    std::vector<pid_t> pids;
    std::vector<int> results;
    std::fflush(stdout);
    std::fflush(stderr);
    for (std::uint32_t p = 0; p < cfg.processes; ++p) {
        int res[2];
        if (::pipe(res) != 0) {
            std::perror("pipe");
            return row;
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            std::perror("fork");
            return row;
        }
        if (pid == 0) {
            ::close(ready[0]);
            ::close(go[1]);
            ::close(res[0]);
            runSweepChild(cfg, peers, p, ready[1], go[0], res[1]);
        }
        ::close(res[1]);
        pids.push_back(pid);
        results.push_back(res[0]);
    }
    ::close(ready[1]);
    ::close(go[0]);

    // Wait for every host to finish binding (one ready byte each).
    std::size_t got = 0;
    while (got < cfg.processes) {
        char buf[64];
        const ssize_t n = ::read(ready[0], buf, sizeof(buf));
        if (n <= 0)
            break; // a child died before binding
        got += static_cast<std::size_t>(n);
    }
    ::close(ready[0]);

    const auto t0 = std::chrono::steady_clock::now();
    ::close(go[1]); // EOF releases every host at once

    bool all_exited_clean = got == cfg.processes;
    for (const pid_t pid : pids) {
        int status = 0;
        if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status)
            || WEXITSTATUS(status) != 0)
            all_exited_clean = false;
    }
    const auto t1 = std::chrono::steady_clock::now();
    row.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    bool results_ok = true;
    for (const int fd : results) {
        HostResult r;
        const ssize_t n = ::read(fd, &r, sizeof(r));
        ::close(fd);
        if (n != static_cast<ssize_t>(sizeof(r))) {
            results_ok = false;
            continue;
        }
        row.total.periods += r.periods;
        row.total.frames += r.frames;
        row.total.bytes += r.bytes;
        row.total.budgetsApplied += r.budgetsApplied;
        row.total.defaults += r.defaults;
        row.total.stale += r.stale;
        row.total.lost += r.lost;
    }
    row.ok = all_exited_clean && results_ok
             && row.total.periods
                    == cfg.periods
                           * static_cast<std::size_t>(cfg.processes);
    return row;
}

// ---------------------------------------------------------------------
// BENCH_scalability.json trajectory.
// ---------------------------------------------------------------------

/** One captured microbenchmark run (name + per-op time + counters). */
struct MicroRun
{
    std::string name;
    double realTime = 0.0;
    std::string timeUnit;
    std::map<std::string, double> counters;
};

/** Console output plus an in-memory capture for the trajectory file. */
class CaptureReporter : public benchmark::ConsoleReporter
{
  public:
    std::vector<MicroRun> runs;

    void ReportRuns(const std::vector<Run> &report) override
    {
        for (const auto &run : report) {
            MicroRun m;
            m.name = run.benchmark_name();
            m.realTime = run.GetAdjustedRealTime();
            m.timeUnit = benchmark::GetTimeUnitString(run.time_unit);
            for (const auto &[key, counter] : run.counters)
                m.counters[key] = counter.value;
            runs.push_back(std::move(m));
        }
        ConsoleReporter::ReportRuns(report);
    }
};

std::string
utcDate()
{
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

/**
 * One-line drift summary against the trajectory's baseline (first)
 * entry: the geometric mean of per-op time ratios over the micro
 * benchmarks both entries share. Printed on every append so a PR's
 * bench run shows its regression (or win) at a glance without diffing
 * the JSON by hand.
 */
void
printBaselineDelta(const util::Json::Array &entries,
                   const std::vector<MicroRun> &micro)
{
    if (entries.empty() || micro.empty())
        return;
    const auto &base = entries.front();
    if (!base.isObject() || base.find("micro") == nullptr)
        return;
    std::map<std::string, double> baseline;
    for (const auto &run : base.at("micro").asArray()) {
        if (run.isObject() && run.find("name") != nullptr
            && run.find("real_time") != nullptr)
            baseline[run.at("name").asString()] =
                run.at("real_time").asNumber();
    }
    double log_sum = 0.0;
    std::size_t shared = 0;
    for (const auto &run : micro) {
        const auto it = baseline.find(run.name);
        if (it == baseline.end() || it->second <= 0.0
            || run.realTime <= 0.0)
            continue;
        log_sum += std::log(run.realTime / it->second);
        ++shared;
    }
    if (shared == 0)
        return;
    const double pct =
        (std::exp(log_sum / static_cast<double>(shared)) - 1.0) * 100.0;
    std::fprintf(stderr,
                 "trajectory: %+.1f%% geomean micro per-op time vs "
                 "baseline %s (%zu shared benchmarks)\n",
                 pct, base.at("date").asString().c_str(), shared);
}

/**
 * Append one entry to the trajectory document at @p path. The file is
 * { "benchmark": "scalability", "entries": [ ... ] }; a missing file
 * (or one in the old raw google-benchmark format, which has no
 * "entries") starts a fresh trajectory.
 */
void
appendTrajectory(const std::string &path,
                 const std::vector<SweepRow> &rows,
                 const std::vector<MicroRun> &micro)
{
    util::Json::Array entries;
    {
        std::ifstream in(path);
        if (in) {
            const std::string text(
                (std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
            if (!text.empty()) {
                const auto doc = util::parseJson(text, path);
                if (doc.isObject() && doc.find("entries") != nullptr
                    && doc.at("entries").isArray())
                    entries = doc.at("entries").asArray();
            }
        }
    }

    util::Json::Object entry;
    entry["date"] = util::Json(utcDate());
    entry["num_cpus"] = util::Json(
        static_cast<double>(std::thread::hardware_concurrency()));

    util::Json::Array sweep;
    for (const auto &row : rows) {
        util::Json::Object o;
        o["name"] = util::Json(std::string(row.cfg->name));
        o["leaves"] = util::Json(static_cast<double>(row.cfg->leaves));
        o["tiers"] = util::Json(static_cast<double>(row.tiers));
        o["processes"] =
            util::Json(static_cast<double>(row.cfg->processes));
        o["workers"] = util::Json(static_cast<double>(row.workers));
        o["periods"] =
            util::Json(static_cast<double>(row.cfg->periods));
        o["ok"] = util::Json(row.ok);
        o["wall_ms"] = util::Json(row.wallMs);
        const double periods = static_cast<double>(row.cfg->periods);
        o["periods_per_sec"] = util::Json(
            row.wallMs > 0.0 ? periods / (row.wallMs / 1000.0) : 0.0);
        o["frames_per_period"] = util::Json(
            static_cast<double>(row.total.frames) / periods);
        o["bytes_per_period"] = util::Json(
            static_cast<double>(row.total.bytes) / periods);
        o["budgets_applied"] = util::Json(
            static_cast<double>(row.total.budgetsApplied));
        o["default_budgets"] =
            util::Json(static_cast<double>(row.total.defaults));
        o["stale_reuses"] =
            util::Json(static_cast<double>(row.total.stale));
        o["metrics_lost"] =
            util::Json(static_cast<double>(row.total.lost));
        sweep.push_back(util::Json(std::move(o)));
    }
    entry["sweep"] = util::Json(std::move(sweep));

    util::Json::Array micro_arr;
    for (const auto &run : micro) {
        util::Json::Object o;
        o["name"] = util::Json(run.name);
        o["real_time"] = util::Json(run.realTime);
        o["time_unit"] = util::Json(run.timeUnit);
        for (const auto &[key, value] : run.counters)
            o[key] = util::Json(value);
        micro_arr.push_back(util::Json(std::move(o)));
    }
    entry["micro"] = util::Json(std::move(micro_arr));

    printBaselineDelta(entries, micro);
    entries.push_back(util::Json(std::move(entry)));
    const std::size_t count = entries.size();
    util::Json::Object doc;
    doc["benchmark"] = util::Json(std::string("scalability"));
    doc["entries"] = util::Json(std::move(entries));

    std::ofstream out(path);
    out << util::serializeJson(util::Json(std::move(doc)), 2) << "\n";
    std::fprintf(stderr, "trajectory: appended entry %zu to %s\n",
                 count, path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip our flags before google-benchmark sees the command line.
    std::string sweep_out;
    std::size_t sweep_max_leaves = static_cast<std::size_t>(-1);
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::strncmp(argv[i], "--sweep-out=", 12) == 0)
            sweep_out = argv[i] + 12;
        else if (std::strncmp(argv[i], "--sweep-max-leaves=", 19) == 0)
            sweep_max_leaves = static_cast<std::size_t>(
                std::strtoull(argv[i] + 19, nullptr, 10));
        else
            args.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(args.size());

    CaptureReporter reporter;
    benchmark::Initialize(&bench_argc, args.data());
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    // §5 worker-model summary using conservative measured-scale costs.
    core::WorkerCosts costs;
    costs.gatherPerChildUs = 2.0;
    costs.budgetPerChildUs = 2.0;

    std::printf("\n== §5 worker deployment model ==\n");
    for (std::size_t racks : {162u, 500u, 1000u}) {
        core::DeploymentShape shape;
        shape.racks = racks;
        const auto layout = core::planWorkers(shape, costs);
        std::printf("racks=%4zu rack-workers=%zu room compute=%.1f ms "
                    "rack compute=%.2f ms messages/period=%zu core "
                    "overhead=%.4f%%\n",
                    racks, layout.rackWorkers, layout.roomComputeMs,
                    layout.rackComputeMs, layout.messagesPerPeriod,
                    100.0 * layout.coreOverheadFraction);
    }
    std::printf("Paper claims: room-level worker < 300 ms at 500 racks; "
                "< 0.1%% of cores reserved.\n");

    if (sweep_out.empty())
        return 0;
    if (std::getenv("CAPMAESTRO_NO_NET") != nullptr) {
        std::printf("\nsweep skipped: CAPMAESTRO_NO_NET is set\n");
        return 0;
    }

    const char *base_env = std::getenv("CAPMAESTRO_BENCH_PORT_BASE");
    const int port_base = base_env ? std::atoi(base_env) : 22000;

    // The sweep grid: fleet size x depth x processes. The depth-4
    // 10240-leaf row is the ROADMAP's "10k+ leaves on one box" claim;
    // the two 4096 rows isolate depth at a fixed fleet.
    const std::vector<SweepConfig> grid = {
        {"flat-256x1", 256, {}, 1, 8},
        {"flat-256x4", 256, {}, 4, 8},
        {"depth3-1024x4", 1024, {32}, 4, 6},
        {"depth3-4096x8", 4096, {64}, 8, 4},
        {"depth4-4096x8", 4096, {8, 16}, 8, 4},
        {"depth4-10240x8", 10240, {16, 16}, 8, 4},
    };

    std::printf("\n== multi-process deep-tree sweep (loopback UDP, "
                "ports %d+) ==\n",
                port_base);
    std::vector<SweepRow> rows;
    for (const auto &cfg : grid) {
        if (cfg.leaves > sweep_max_leaves) {
            std::printf("%-16s skipped (--sweep-max-leaves)\n",
                        cfg.name);
            continue;
        }
        const auto row = runSweepConfig(cfg, port_base);
        std::printf("%-16s leaves=%6zu tiers=%u procs=%u workers=%zu "
                    "wall=%8.1f ms  periods/s=%7.2f  bytes/period=%9.0f "
                    "defaults=%zu stale=%zu%s\n",
                    cfg.name, cfg.leaves, row.tiers, cfg.processes,
                    row.workers, row.wallMs,
                    row.wallMs > 0.0
                        ? static_cast<double>(cfg.periods)
                              / (row.wallMs / 1000.0)
                        : 0.0,
                    static_cast<double>(row.total.bytes)
                        / static_cast<double>(cfg.periods),
                    static_cast<std::size_t>(row.total.defaults),
                    static_cast<std::size_t>(row.total.stale),
                    row.ok ? "" : "  [FAILED]");
        rows.push_back(row);
        std::fflush(stdout);
    }

    appendTrajectory(sweep_out, rows, reporter.runs);

    for (const auto &row : rows) {
        if (!row.ok)
            return 1;
    }
    return 0;
}
