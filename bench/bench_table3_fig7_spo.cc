/**
 * @file
 * Reproduces paper Table 3 and Figure 7: the stranded-power optimization
 * on the dual-feed testbed of Figure 7a (SA X-only high priority, SB
 * Y-only, SC/SD dual-corded with intrinsic split mismatch; 700 W per
 * feed).
 *
 *   Table 3   — per-supply budgets and consumption (X/Y), with stranded
 *               power highlighted, without and with SPO.
 *   Figure 7b — normalized throughput per server, without/with SPO.
 *   Figure 7c — Y-side feed power over time, without/with SPO.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "sim/scenario.hh"
#include "util/table.hh"

using namespace capmaestro;
using sim::ClosedLoopSim;

namespace {

constexpr Seconds kHorizon = 200;
constexpr Seconds kTail = 120;
const char *kNames[] = {"SA(H)", "SB", "SC", "SD"};

void
printTable3Block(const char *label, sim::ClosedLoopSim &rig)
{
    const auto &rec = rig.recorder();
    util::TextTable t(std::string("Table 3 -- ") + label
                      + " (X-side/Y-side, W)");
    t.setHeader({"server", "budget X/Y", "consumption X/Y",
                 "stranded Y"});
    for (std::size_t i = 0; i < 4; ++i) {
        const double bx = rec.mean(
            ClosedLoopSim::supplySeries(i, 0, "budget"), kTail, kHorizon);
        const double by = rec.mean(
            ClosedLoopSim::supplySeries(i, 1, "budget"), kTail, kHorizon);
        const double cx = rec.mean(
            ClosedLoopSim::supplySeries(i, 0, "power"), kTail, kHorizon);
        const double cy = rec.mean(
            ClosedLoopSim::supplySeries(i, 1, "power"), kTail, kHorizon);
        t.addRow({kNames[i],
                  util::formatFixed(bx, 0) + "/" + util::formatFixed(by, 0),
                  util::formatFixed(cx, 0) + "/" + util::formatFixed(cy, 0),
                  util::formatFixed(std::max(0.0, by - cy), 0)});
    }
    t.print(std::cout);
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Table 3 / Figure 7",
                  "Stranded power optimization on redundant feeds "
                  "(700 W budget per feed)");
    const bool csv = bench::boolFlag(argc, argv, "csv");

    auto without = sim::makeFig7Rig(/*enable_spo=*/false);
    without.run(kHorizon);
    auto with = sim::makeFig7Rig(/*enable_spo=*/true);
    with.run(kHorizon);

    if (csv) {
        with.recorder().printCsv(std::cout);
        return 0;
    }

    printTable3Block("Global Priority w/o SPO", without);
    printTable3Block("Global Priority w/ SPO", with);

    util::TextTable tp("Figure 7b -- normalized throughput");
    tp.setHeader({"server", "w/o SPO", "w/ SPO", "paper"});
    const char *paper_tp[] = {">0.99 / >0.99", "0.88 / >0.99",
                              "equal / equal", "equal / equal"};
    for (std::size_t i = 0; i < 4; ++i) {
        tp.addRow({kNames[i],
                   util::formatFixed(
                       without.recorder().mean(
                           ClosedLoopSim::serverSeries(i, "throughput"),
                           kTail, kHorizon),
                       3),
                   util::formatFixed(
                       with.recorder().mean(
                           ClosedLoopSim::serverSeries(i, "throughput"),
                           kTail, kHorizon),
                       3),
                   paper_tp[i]});
    }
    tp.print(std::cout);

    util::TextTable feed("Figure 7c -- Y-side feed power (W)");
    feed.setHeader({"t(s)", "w/o SPO", "w/ SPO (budget 700)"});
    for (Seconds t = 0; t < kHorizon; t += 16) {
        feed.addNumericRow(
            std::to_string(t),
            {without.recorder().mean("Y.topCB.power", t, t + 15),
             with.recorder().mean("Y.topCB.power", t, t + 15)},
            0);
    }
    std::printf("\n");
    feed.print(std::cout);

    std::printf("\nSPO reclaimed %.0f W of stranded Y-side budget "
                "(paper: ~67 W to SB).\n",
                with.service().lastStats().allocation.strandedReclaimed);
    std::printf("Expected shape: SB's throughput rises from ~0.88 to "
                "~1.0; SC/SD unchanged; Y feed\nruns at its full budget "
                "with SPO.\n");
    (void)argc;
    (void)argv;
    return 0;
}
