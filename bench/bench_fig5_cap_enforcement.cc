/**
 * @file
 * Reproduces paper Figure 5: closed-loop enforcement of independent
 * per-supply AC budgets on one dual-supply server.
 *
 * Timeline (as in the paper): ample budgets at t=0; at t=30 s PS2's
 * budget drops to 200 W; at t=110 s PS1's budget drops to 150 W (PS1
 * becomes the more constrained supply). The controller must settle each
 * step to within 5 % of the binding budget within two 8 s control
 * periods, and the DC cap / throttle traces follow.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "sim/scenario.hh"
#include "util/table.hh"

using namespace capmaestro;
using sim::ClosedLoopSim;

int
main(int argc, char **argv)
{
    bench::banner("Figure 5",
                  "Per-supply power cap enforcement (PS2 -> 200 W at "
                  "t=30; PS1 -> 150 W at t=110)");
    const bool csv = bench::boolFlag(argc, argv, "csv");

    auto rig = sim::makeFig5Rig();
    rig.setManualBudgets(0, {450.0, 450.0});
    rig.at(30, [&rig] { rig.setManualBudgets(0, {450.0, 200.0}); });
    rig.at(110, [&rig] { rig.setManualBudgets(0, {150.0, 200.0}); });
    rig.run(200);

    const auto &rec = rig.recorder();
    const auto ps1p = ClosedLoopSim::supplySeries(0, 0, "power");
    const auto ps2p = ClosedLoopSim::supplySeries(0, 1, "power");
    const auto ps1b = ClosedLoopSim::supplySeries(0, 0, "budget");
    const auto ps2b = ClosedLoopSim::supplySeries(0, 1, "budget");
    const auto dc = ClosedLoopSim::serverSeries(0, "dcCap");
    const auto thr = ClosedLoopSim::serverSeries(0, "throttle");

    if (csv) {
        rec.printCsv(std::cout);
        return 0;
    }

    util::TextTable series("Figure 5 -- series (10 s samples)");
    series.setHeader({"t(s)", "PS1 budget", "PS1 power", "PS2 budget",
                      "PS2 power", "DC cap", "throttle %"});
    for (Seconds t = 0; t < 200; t += 10) {
        series.addNumericRow(
            std::to_string(t),
            {rec.mean(ps1b, t, t + 9), rec.mean(ps1p, t, t + 9),
             rec.mean(ps2b, t, t + 9), rec.mean(ps2p, t, t + 9),
             rec.mean(dc, t, t + 9),
             100.0 * rec.mean(thr, t, t + 9)},
            0);
    }
    series.print(std::cout);

    // Paper claims: settles within 5 % of budget within 2 control
    // periods (16 s).
    const Seconds s2 =
        rec.settleTime(ps2p, 32, 200.0, 0.05 * 200.0, /*to=*/109);
    const Seconds s1 = rec.settleTime(ps1p, 112, 150.0, 0.05 * 150.0);
    std::printf("\nPS2 settled within 5%% of 200 W by t=%lld "
                "(budget step at t=30/32; paper: <= 2 periods)\n",
                static_cast<long long>(s2));
    std::printf("PS1 settled within 5%% of 150 W by t=%lld "
                "(budget step at t=110/112)\n",
                static_cast<long long>(s1));
    std::printf("Most-constrained supply governs the DC cap: PS2 phase "
                "power %.0f W, PS1 phase power %.0f W\n",
                rec.mean(ps2p, 60, 105), rec.mean(ps1p, 150, 199));
    std::printf("Breakers tripped: %s\n",
                rig.anyBreakerTripped() ? "YES (bug!)" : "no");
    return 0;
}
