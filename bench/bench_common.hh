/**
 * @file
 * Shared helpers for the experiment-reproduction benches: tiny CLI flag
 * parsing and uniform headers, so every bench prints the paper rows the
 * same way and supports --trials / --full / --csv overrides.
 */

#ifndef CAPMAESTRO_BENCH_COMMON_HH
#define CAPMAESTRO_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace capmaestro::bench {

/** Parse "--name=value" integer flag; returns fallback when absent. */
inline int
intFlag(int argc, char **argv, const char *name, int fallback)
{
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return std::atoi(argv[i] + prefix.size());
    }
    return fallback;
}

/** True when "--name" appears. */
inline bool
boolFlag(int argc, char **argv, const char *name)
{
    const std::string flag = std::string("--") + name;
    for (int i = 1; i < argc; ++i) {
        if (flag == argv[i])
            return true;
    }
    return false;
}

/** Print the uniform experiment banner. */
inline void
banner(const char *experiment_id, const char *description)
{
    std::printf("================================================="
                "=============================\n");
    std::printf("CapMaestro reproduction -- %s\n", experiment_id);
    std::printf("%s\n", description);
    std::printf("================================================="
                "=============================\n");
}

} // namespace capmaestro::bench

#endif // CAPMAESTRO_BENCH_COMMON_HH
