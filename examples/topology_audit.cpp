/**
 * @file
 * Topology auditing walkthrough: detecting a mis-wired server from the
 * power telemetry CapMaestro already collects (paper §7 calls out the
 * lack of tooling for exactly this).
 *
 * A technician plugs rack server 7 into the neighboring CDU. The claimed
 * topology and the branch-circuit meters disagree; the auditor flags the
 * affected breakers and pinpoints the moved outlet — no cable tracing.
 */

#include <cstdio>

#include "topology/audit.hh"
#include "topology/power_tree.hh"
#include "util/random.hh"

using namespace capmaestro;

int
main()
{
    std::printf("CapMaestro topology audit\n");
    std::printf("=========================\n\n");

    // Claimed topology: one transformer, 2 RPPs, 2 CDUs each, 3 servers
    // per CDU.
    topo::PowerTree tree(0, 0, "audit-demo");
    const auto root =
        tree.makeRoot(topo::NodeKind::Transformer, "xfmr", 50000.0);
    std::vector<topo::NodeId> cdus;
    topo::SupplyLoadMap supply_loads;
    util::Rng rng(42);
    std::int32_t server = 0;
    for (int r = 0; r < 2; ++r) {
        const auto rpp =
            tree.addChild(root, topo::NodeKind::Rpp,
                          "rpp" + std::to_string(r), 20000.0);
        for (int c = 0; c < 2; ++c) {
            const auto cdu = tree.addChild(
                rpp, topo::NodeKind::Cdu,
                "cdu" + std::to_string(2 * r + c), 7000.0);
            cdus.push_back(cdu);
            for (int s = 0; s < 3; ++s, ++server) {
                tree.addSupplyPort(cdu, "outlet" + std::to_string(server),
                                   {server, 0});
                supply_loads[{server, 0}] = rng.uniform(180.0, 420.0);
            }
        }
    }

    topo::TopologyAuditor auditor(tree, /*tolerance=*/5.0);

    // Reality: server 7 (claimed cdu2) is actually wired into cdu0.
    const double moved = supply_loads.at({7, 0});
    auto measured = auditor.predictLoads(supply_loads);
    topo::NodeLoadMap meters;
    for (const auto cdu : cdus)
        meters[cdu] = measured.at(cdu);
    meters[cdus[2]] -= moved;
    meters[cdus[0]] += moved;
    const auto rpp0 = tree.node(cdus[0]).parent;
    const auto rpp1 = tree.node(cdus[2]).parent;
    meters[rpp0] = measured.at(rpp0) + moved;
    meters[rpp1] = measured.at(rpp1) - moved;

    std::printf("branch meters vs. claimed topology:\n");
    const auto report = auditor.audit(supply_loads, meters);
    for (const auto &d : report.discrepancies) {
        std::printf("  %-6s predicted %6.0f W, measured %6.0f W "
                    "(error %+5.0f W)\n",
                    tree.node(d.node).name.c_str(), d.predicted,
                    d.measured, d.error());
    }

    if (report.hypothesis) {
        const auto &h = *report.hypothesis;
        std::printf("\ndiagnosis: supply of server %d is wired into %s, "
                    "not %s (residual %.1f W)\n",
                    h.supply.server,
                    tree.node(h.actualParent).name.c_str(),
                    tree.node(h.claimedParent).name.c_str(), h.residual);
        std::printf("-> fix the topology database or move the cable; "
                    "until then, budgets computed for\n   %s would be "
                    "enforced against the wrong breaker.\n",
                    tree.node(h.claimedParent).name.c_str());
    } else {
        std::printf("\nno single-move explanation found.\n");
    }
    return 0;
}
