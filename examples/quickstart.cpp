/**
 * @file
 * Quickstart: build a small power topology, attach servers, run the
 * CapMaestro control loop, and watch a high-priority workload keep its
 * power while low-priority neighbors are capped.
 *
 * This walks the core public API end to end:
 *   1. describe the power-delivery tree (PowerTree / PowerSystem)
 *   2. describe the servers (ServerSpec) and their workloads
 *   3. run a ClosedLoopSim with a CapMaestro service configuration
 *   4. read budgets and throughput from the recorded time series
 */

#include <cstdio>
#include <memory>

#include "sim/closed_loop.hh"
#include "sim/scenario.hh"

using namespace capmaestro;

int
main()
{
    std::printf("CapMaestro quickstart\n");
    std::printf("=====================\n\n");

    // 1. Power topology: one feed with a 1400 W top breaker over two
    //    750 W branch breakers, two servers per branch (Figure 2 of the
    //    paper). Server 0 hosts the high-priority workload.
    auto system = sim::fig2System();

    // 2. Servers: the paper's testbed class (idle 160 W, cap range
    //    270-490 W), each running a steady workload demanding ~420 W.
    std::vector<sim::ServerSetup> servers;
    for (int i = 0; i < 4; ++i) {
        sim::ServerSetup s;
        s.spec = sim::testbedServerSpec("server" + std::to_string(i),
                                        /*priority=*/i == 0 ? 1 : 0,
                                        /*share0=*/1.0, /*supplies=*/1);
        s.workload = std::make_unique<dev::ConstantWorkload>(
            sim::utilizationForDemand(160.0, 490.0, 420.0));
        servers.push_back(std::move(s));
    }

    // 3. Control plane: global priority-aware capping, 8 s periods.
    core::ServiceConfig config;
    config.policy = policy::PolicyKind::GlobalPriority;

    sim::ClosedLoopSim simulator(std::move(system), std::move(servers),
                                 config);
    // The feed can only deliver 1240 W of the 1680 W total demand.
    simulator.setRootBudgets({1240.0});

    std::printf("running 2 simulated minutes (demand 4 x 420 W, budget "
                "1240 W)...\n\n");
    simulator.run(120);

    // 4. Results: the high-priority server keeps its full demand; the
    //    three low-priority servers are throttled toward their floors.
    const auto &rec = simulator.recorder();
    std::printf("%-10s %10s %12s %12s\n", "server", "priority",
                "budget (W)", "throughput");
    for (std::size_t i = 0; i < 4; ++i) {
        std::printf("%-10zu %10s %12.0f %12.2f\n", i,
                    i == 0 ? "high" : "low",
                    rec.mean(sim::ClosedLoopSim::supplySeries(i, 0,
                                                              "budget"),
                             80, 119),
                    rec.mean(sim::ClosedLoopSim::serverSeries(
                                 i, "throughput"),
                             80, 119));
    }
    std::printf("\nno breaker tripped: %s\n",
                simulator.anyBreakerTripped() ? "false" : "true");
    std::printf("\nNext: see examples/datacenter_emergency.cpp for a "
                "feed-failure scenario and\nexamples/capacity_planning."
                "cpp for sizing a whole data center.\n");
    return 0;
}
