/**
 * @file
 * Capacity planning: how many servers can a given power infrastructure
 * host safely? Uses the paper's Table 4 production data center and the
 * Monte-Carlo capacity study to answer it for each policy, then shows a
 * what-if (raising the high-priority fraction).
 */

#include <cstdio>

#include "sim/capacity.hh"

using namespace capmaestro;
using namespace capmaestro::sim;

namespace {

void
plan(const char *label, double hp_fraction)
{
    std::printf("%s (%.0f%% high priority)\n", label,
                100.0 * hp_fraction);
    std::printf("  %-16s %14s %14s\n", "policy", "typical", "worst case");
    for (const auto kind : policy::kAllPolicies) {
        CapacityConfig typical;
        typical.policy = kind;
        typical.worstCase = false;
        typical.trials = 60;
        typical.dc.highPriorityFraction = hp_fraction;
        const auto t = findMaxDeployable(typical, 6, 15);

        CapacityConfig worst = typical;
        worst.worstCase = true;
        worst.trials = 20;
        const auto w = findMaxDeployable(worst, 6, 15);

        std::printf("  %-16s %14zu %14zu\n", policy::policyName(kind),
                    t.totalServers, w.totalServers);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("CapMaestro capacity planning\n");
    std::printf("============================\n\n");
    std::printf("Infrastructure: Table 4 -- 2 feeds x 3 phases, "
                "700 kW/phase contractual budget,\n162 racks; servers "
                "idle 160 W, cap range 270-490 W. Criterion: <= 1%% "
                "average cap\nratio (all servers in typical operation; "
                "high-priority servers during a worst-case\nfeed "
                "failure).\n\n");

    plan("Baseline (the paper's configuration)", 0.30);
    plan("What-if: more premium tenants", 0.50);

    std::printf("Reading: without power capping this infrastructure "
                "hosts 3888 servers. Global\npriority-aware capping "
                "lifts the worst-case-safe count by ~50%%, and the gap "
                "to the\nfailure-free ceiling is the price of N+N "
                "availability.\n");
    return 0;
}
