/**
 * @file
 * Stranded-power walkthrough: why per-supply budgets strand power on
 * redundant feeds, and how CapMaestro's stranded-power optimization
 * (SPO) reclaims it for capped servers.
 *
 * Uses the paper's Figure 7a testbed: SA draws only from the X feed, SB
 * only from the Y feed, SC/SD from both with intrinsic split mismatches.
 */

#include <cstdio>

#include "sim/scenario.hh"

using namespace capmaestro;
using sim::ClosedLoopSim;

namespace {

void
report(const char *label, ClosedLoopSim &rig)
{
    const auto &rec = rig.recorder();
    std::printf("%s\n", label);
    std::printf("  %-6s %14s %14s %12s\n", "server", "Y budget (W)",
                "Y power (W)", "throughput");
    const char *names[] = {"SA(H)", "SB", "SC", "SD"};
    for (std::size_t i = 0; i < 4; ++i) {
        const double by = rec.mean(
            ClosedLoopSim::supplySeries(i, 1, "budget"), 120, 199);
        const double cy = rec.mean(
            ClosedLoopSim::supplySeries(i, 1, "power"), 120, 199);
        const double tp = rec.mean(
            ClosedLoopSim::serverSeries(i, "throughput"), 120, 199);
        std::printf("  %-6s %14.0f %14.0f %12.2f", names[i], by, cy, tp);
        if (by - cy > 10.0)
            std::printf("   <- %.0f W stranded", by - cy);
        std::printf("\n");
    }
    std::printf("  Y-feed draw: %.0f W of the 700 W budget\n\n",
                rec.mean("Y.topCB.power", 120, 199));
}

} // namespace

int
main()
{
    std::printf("CapMaestro stranded power optimization\n");
    std::printf("======================================\n\n");
    std::printf("Setup: 700 W per feed; SA is X-only (high priority), "
                "SB is Y-only, SC/SD are\ndual-corded with ~53/47 and "
                "~46/54 intrinsic splits.\n\n");

    auto without = sim::makeFig7Rig(/*enable_spo=*/false);
    without.run(200);
    report("Without SPO -- SC/SD cannot consume their Y-side budgets "
           "(their X-side binds):",
           without);

    auto with = sim::makeFig7Rig(/*enable_spo=*/true);
    with.run(200);
    report("With SPO -- the stranded Y-side watts move to SB:", with);

    std::printf("SPO reclaimed %.0f W; SB rose from %.2f to %.2f "
                "normalized throughput while SC/SD\nwere untouched -- "
                "the reclaimed power was truly unusable where it was.\n",
                with.service().lastStats().allocation.strandedReclaimed,
                without.recorder().mean(
                    ClosedLoopSim::serverSeries(1, "throughput"), 120,
                    199),
                with.recorder().mean(
                    ClosedLoopSim::serverSeries(1, "throughput"), 120,
                    199));
    return 0;
}
