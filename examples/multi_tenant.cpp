/**
 * @file
 * Multi-tenant walkthrough: trace-driven load on a shared server whose
 * tenants (VMs) have different priorities. Shows two §7 extensions
 * working together:
 *
 *   - the server's CapMaestro priority is derived from its VM mix, and
 *   - when the server is capped, the VM partitioner sheds low-priority
 *     tenant throughput first, keeping the premium tenant whole.
 */

#include <cstdio>
#include <memory>

#include "device/vm.hh"
#include "sim/closed_loop.hh"
#include "sim/scenario.hh"

using namespace capmaestro;

int
main()
{
    std::printf("CapMaestro multi-tenant partitions\n");
    std::printf("==================================\n\n");

    // The shared host runs a premium web tenant (40 %), an internal
    // analytics tenant (25 %), and two batch tenants.
    dev::VmPartitioner tenants({
        {"web-prod", 2, 0.40},
        {"analytics", 1, 0.25},
        {"batch-a", 0, 0.20},
        {"batch-b", 0, 0.15},
    });
    const Priority host_priority = tenants.derivedServerPriority(0.4);
    std::printf("derived host priority from the VM mix: %d "
                "(premium tenant covers 40%% of capacity)\n\n",
                host_priority);

    // The host and three neighbors share an 1100 W breaker; the host
    // replays a bursty utilization trace (e.g., captured telemetry).
    std::vector<sim::ServerSetup> servers;
    {
        sim::ServerSetup host;
        host.spec = sim::testbedServerSpec("host", host_priority, 1.0, 1);
        host.workload = std::make_unique<dev::TraceWorkload>(
            std::vector<Fraction>{0.5, 0.9, 1.0, 0.95, 0.6, 0.4},
            /*sample_period=*/40);
        servers.push_back(std::move(host));
    }
    for (int i = 1; i < 4; ++i) {
        sim::ServerSetup s;
        s.spec = sim::testbedServerSpec("n" + std::to_string(i), 0, 1.0,
                                        1);
        s.workload = std::make_unique<dev::ConstantWorkload>(0.8);
        servers.push_back(std::move(s));
    }

    auto sys = std::make_unique<topo::PowerSystem>(1);
    auto tree = std::make_unique<topo::PowerTree>(0, 0, "feed");
    const auto root =
        tree->makeRoot(topo::NodeKind::Breaker, "cb", 1600.0);
    for (int i = 0; i < 4; ++i)
        tree->addSupplyPort(root, "s" + std::to_string(i), {i, 0});
    sys->addTree(std::move(tree));

    sim::ClosedLoopSim rig(std::move(sys), std::move(servers), {});
    rig.setRootBudgets({1100.0});
    rig.run(240);

    std::printf("%6s %12s %12s | per-tenant normalized throughput\n",
                "t(s)", "host power", "host perf");
    std::printf("%33s", "");
    for (const auto &vm : tenants.vms())
        std::printf("  %-10s", vm.name.c_str());
    std::printf("\n");
    for (Seconds t = 40; t < 240; t += 40) {
        const double perf = rig.recorder().mean(
            sim::ClosedLoopSim::serverSeries(0, "throughput"), t,
            t + 39);
        std::printf("%6lld %12.0f %12.2f |",
                    static_cast<long long>(t),
                    rig.recorder().mean(
                        sim::ClosedLoopSim::serverSeries(0, "power"), t,
                        t + 39),
                    perf);
        for (const auto &alloc : tenants.allocate(perf))
            std::printf("  %-10.2f", alloc.normalizedThroughput);
        std::printf("\n");
    }

    std::printf("\nReading: when the shared breaker forces the host "
                "below full performance, the batch\ntenants absorb the "
                "entire cut; web-prod (and analytics, next in line) "
                "stay at 1.00\nuntil the throttle digs deeper than "
                "their combined share.\n");
    return 0;
}
