/**
 * @file
 * Power-emergency walkthrough: a dual-feed (N+N) testbed loses an entire
 * feed at t=60 s. CapMaestro reroutes the contractual budget to the
 * surviving feed and throttles low-priority servers within the UL 489
 * 30-second breaker window, keeping the high-priority workload whole and
 * every breaker un-tripped.
 */

#include <cstdio>
#include <memory>

#include "sim/closed_loop.hh"
#include "sim/scenario.hh"

using namespace capmaestro;
using sim::ClosedLoopSim;

int
main()
{
    std::printf("CapMaestro feed-failure emergency\n");
    std::printf("=================================\n\n");

    // Four dual-corded servers on two feeds; branch breakers at 750 W.
    // Servers 0 and 1 share the left breakers, 2 and 3 the right.
    std::vector<sim::ServerSetup> servers;
    const Watts demands[4] = {414.0, 415.0, 433.0, 439.0};
    for (int i = 0; i < 4; ++i) {
        sim::ServerSetup s;
        s.spec = sim::testbedServerSpec("S" + std::to_string(i),
                                        i == 0 ? 1 : 0);
        s.workload = std::make_unique<dev::ConstantWorkload>(
            sim::utilizationForDemand(160.0, 490.0, demands[i]));
        servers.push_back(std::move(s));
    }

    auto system = std::make_unique<topo::PowerSystem>(2);
    for (int feed = 0; feed < 2; ++feed) {
        auto tree = std::make_unique<topo::PowerTree>(
            feed, 0, feed == 0 ? "X" : "Y");
        const auto top =
            tree->makeRoot(topo::NodeKind::Breaker, "topCB", 1400.0);
        const auto left =
            tree->addChild(top, topo::NodeKind::Breaker, "leftCB",
                           750.0);
        const auto right =
            tree->addChild(top, topo::NodeKind::Breaker, "rightCB",
                           750.0);
        tree->addSupplyPort(left, "s0", {0, feed});
        tree->addSupplyPort(left, "s1", {1, feed});
        tree->addSupplyPort(right, "s2", {2, feed});
        tree->addSupplyPort(right, "s3", {3, feed});
        system->addTree(std::move(tree));
    }

    core::ServiceConfig config;
    config.policy = policy::PolicyKind::GlobalPriority;

    ClosedLoopSim simulator(std::move(system), std::move(servers),
                            config);
    simulator.service().refreshRootBudgets(/*total_per_phase=*/1400.0);

    // Feed X dies at t=60; the service re-derives budgets so the
    // surviving Y feed receives the full 1400 W.
    simulator.failFeedAt(60, /*feed=*/0, /*total_per_phase=*/1400.0);
    simulator.run(180);

    const auto &rec = simulator.recorder();
    std::printf("timeline (Y-side left breaker carries servers 0+1; "
                "limit 750 W):\n\n");
    std::printf("%6s %16s %16s %14s\n", "t(s)", "Y.leftCB (W)",
                "S0 throughput", "S1 throughput");
    for (Seconds t = 40; t < 180; t += 10) {
        std::printf("%6lld %16.0f %16.2f %14.2f\n",
                    static_cast<long long>(t),
                    rec.mean("Y.leftCB.power", t, t + 9),
                    rec.mean(ClosedLoopSim::serverSeries(0, "throughput"),
                             t, t + 9),
                    rec.mean(ClosedLoopSim::serverSeries(1, "throughput"),
                             t, t + 9));
    }

    // How long was the breaker overloaded?
    Seconds cleared = -1;
    for (const auto &p : rec.series("Y.leftCB.power")) {
        if (p.time < 60)
            continue;
        if (p.value > 750.0)
            cleared = -1;
        else if (cleared < 0)
            cleared = p.time;
    }
    std::printf("\noverload cleared %lld s after the failure "
                "(UL 489 allows 30 s at 160%%)\n",
                static_cast<long long>(cleared - 60));
    std::printf("high-priority S0 throughput after failure: %.2f "
                "(uncapped = 1.00)\n",
                rec.mean(ClosedLoopSim::serverSeries(0, "throughput"),
                         120, 179));
    std::printf("any breaker tripped: %s\n",
                simulator.anyBreakerTripped() ? "YES" : "no");
    return 0;
}
