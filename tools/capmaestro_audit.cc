/**
 * @file
 * capmaestro_audit — validate a claimed power topology against live
 * telemetry and locate mis-wired outlets (paper §7's open challenge).
 *
 * Usage:
 *   capmaestro_audit <audit.json> [--tolerance=W]
 *   capmaestro_audit --events-json=FILE [--kind=K]
 *
 * Input format:
 * {
 *   "tree": { "feed": 0, "root": { ... } },     // config tree schema
 *   "supplyLoads": [ { "server": 0, "supply": 0, "watts": 231 }, ... ],
 *   "meters": [ { "node": "cdu0", "watts": 712 }, ... ]   // by name
 * }
 *
 * The second form inspects an events.jsonl file written by
 * `capmaestro_run --telemetry-out` instead: it prints the events it
 * contains (optionally only those of kind K, e.g. --kind=spo-fallback)
 * and a per-kind tally. Sequence numbers let the operator confirm no
 * events were dropped between the control plane and the file.
 *
 * Exit status: 0 clean, 1 discrepancies found, 2 usage/config error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "config/loader.hh"
#include "core/events.hh"
#include "topology/audit.hh"
#include "util/json.hh"

using namespace capmaestro;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: capmaestro_audit <audit.json> [--tolerance=W]\n"
                 "       capmaestro_audit --events-json=FILE "
                 "[--kind=K]\n");
    std::exit(2);
}

const char *
flagValue(int argc, char **argv, const char *name)
{
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return argv[i] + prefix.size();
    }
    return nullptr;
}

/** The --events-json mode: print and tally an events.jsonl file. */
int
inspectEvents(const char *path, const char *kind_name)
{
    if (kind_name != nullptr
        && !core::eventKindFromName(kind_name).has_value()) {
        std::fprintf(stderr, "--kind=%s: unknown event kind\n",
                     kind_name);
        return 2;
    }

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n", path);
        return 2;
    }

    std::map<std::string, std::size_t> tally;
    std::size_t shown = 0, total = 0;
    std::string line;
    for (std::size_t lineno = 1; std::getline(in, line); ++lineno) {
        if (line.empty())
            continue;
        const util::Json event = util::parseJson(
            line, std::string(path) + ":" + std::to_string(lineno));
        const std::string kind = event.stringOr("kind", "?");
        ++tally[kind];
        ++total;
        if (kind_name != nullptr && kind != kind_name)
            continue;
        std::printf("#%-5lld t=%-6lld %-22s %s",
                    static_cast<long long>(event.numberOr("seq", -1)),
                    static_cast<long long>(event.numberOr("time", -1)),
                    kind.c_str(),
                    event.stringOr("subject", "").c_str());
        if (const util::Json *value = event.find("value"))
            std::printf("  value=%.6g", value->asNumber());
        std::printf("\n");
        ++shown;
    }

    std::printf("\n%zu event(s) shown of %zu in %s\n", shown, total,
                path);
    for (const auto &[kind, count] : tally)
        std::printf("  %-22s %zu\n", kind.c_str(), count);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (const char *events = flagValue(argc, argv, "events-json"))
        return inspectEvents(events, flagValue(argc, argv, "kind"));

    if (argc < 2 || argv[1][0] == '-')
        usage();

    double tolerance = 5.0;
    for (int i = 2; i < argc; ++i) {
        if (std::strncmp(argv[i], "--tolerance=", 12) == 0)
            tolerance = std::atof(argv[i] + 12);
    }

    const util::Json doc = util::parseJsonFile(argv[1]);
    const auto tree = config::loadPowerTree(doc.at("tree"));
    tree->validate();

    // Name -> node id for meter lookup.
    std::map<std::string, topo::NodeId> by_name;
    tree->forEach([&by_name](const topo::TopoNode &n) {
        by_name[n.name] = n.id;
    });

    topo::SupplyLoadMap loads;
    for (const auto &entry : doc.at("supplyLoads").asArray()) {
        loads[{static_cast<std::int32_t>(entry.at("server").asNumber()),
               static_cast<std::int32_t>(entry.numberOr("supply", 0.0))}]
            = entry.at("watts").asNumber();
    }

    topo::NodeLoadMap meters;
    for (const auto &entry : doc.at("meters").asArray()) {
        const std::string name = entry.at("node").asString();
        const auto it = by_name.find(name);
        if (it == by_name.end()) {
            std::fprintf(stderr, "meter references unknown node %s\n",
                         name.c_str());
            return 2;
        }
        meters[it->second] = entry.at("watts").asNumber();
    }

    topo::TopologyAuditor auditor(*tree, tolerance);
    const auto report = auditor.audit(loads, meters);

    if (report.clean()) {
        std::printf("topology consistent: %zu meters agree with the "
                    "claimed wiring (tolerance %.1f W)\n",
                    meters.size(), tolerance);
        return 0;
    }

    std::printf("%zu metered node(s) disagree with the claimed "
                "topology:\n",
                report.discrepancies.size());
    for (const auto &d : report.discrepancies) {
        std::printf("  %-20s predicted %8.1f W  measured %8.1f W  "
                    "(error %+7.1f W)\n",
                    tree->node(d.node).name.c_str(), d.predicted,
                    d.measured, d.error());
    }
    if (report.hypothesis) {
        const auto &h = *report.hypothesis;
        std::printf("\nbest single-move explanation: the supply of "
                    "server %d (claimed under %s)\nis actually wired "
                    "under %s (residual %.1f W)\n",
                    h.supply.server,
                    tree->node(h.claimedParent).name.c_str(),
                    tree->node(h.actualParent).name.c_str(), h.residual);
    } else {
        std::printf("\nno single-move rewiring explains the readings; "
                    "check meters or multiple errors.\n");
    }
    return 1;
}
