/**
 * @file
 * capmaestro_run — run a CapMaestro scenario from a JSON config.
 *
 * Usage:
 *   capmaestro_run <config.json> [options]
 *
 * Options:
 *   --duration=SECONDS    simulated time to run (default 200)
 *   --fail-feed=F@T       fail feed F at simulated time T seconds
 *   --fail-supply=S.P@T   fail supply P of server S at time T
 *   --csv                 dump all recorded time series as CSV to stdout
 *   --seed=N              sensor-noise seed (default 1)
 *   --transport=JSON      run the control exchange over the message
 *                         plane; JSON is a transport block, e.g.
 *                         '{"dropRate":0.2,"latencyMs":5}'. A bare
 *                         backend name is shorthand: --transport=udp
 *                         runs every worker in-process over real
 *                         127.0.0.1 UDP sockets (wall-clock paced)
 *   --drop-rate=P         shorthand: message plane with drop rate P
 *   --latency-ms=MS       shorthand: message plane with mean latency MS
 *   --telemetry-out=DIR   enable telemetry and write DIR/metrics.prom
 *                         (Prometheus text format 0.0.4),
 *                         DIR/metrics.jsonl, DIR/trace.jsonl (one line
 *                         per control period), and DIR/events.jsonl
 *   --workload=SPEC       attach the job/tenant traffic layer
 *                         (docs/workload.md). SPEC is a workload JSON
 *                         block, a bare placement-policy name as
 *                         shorthand (--workload=loadBalanced), or
 *                         "off" to ignore the config's workload block
 *
 * Without --csv the tool prints a per-server summary (budget, power,
 * throughput over the final quarter of the run) plus breaker status;
 * in message-plane mode it adds message accounting and the §4.5
 * degraded-mode decisions from the event log; with a workload layer it
 * adds per-priority-class SLO attainment and slowdown percentiles.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "config/loader.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workload/engine.hh"

using namespace capmaestro;

namespace {

const char *
flagValue(int argc, char **argv, const char *name)
{
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 2; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return argv[i] + prefix.size();
    }
    return nullptr;
}

bool
hasFlag(int argc, char **argv, const char *name)
{
    const std::string flag = std::string("--") + name;
    for (int i = 2; i < argc; ++i) {
        if (flag == argv[i])
            return true;
    }
    return false;
}

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: capmaestro_run <config.json> [--duration=N] "
                 "[--fail-feed=F@T]\n"
                 "                      [--fail-supply=S.P@T] [--csv] "
                 "[--seed=N]\n"
                 "                      [--transport=JSON] "
                 "[--drop-rate=P] [--latency-ms=MS]\n"
                 "                      [--telemetry-out=DIR] "
                 "[--workload=SPEC]\n");
    std::exit(2);
}

std::ofstream
openOutput(const std::filesystem::path &path)
{
    std::ofstream os(path);
    if (!os)
        util::fatal("cannot write %s", path.string().c_str());
    return os;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || argv[1][0] == '-')
        usage();

    auto scenario = config::loadScenarioFile(argv[1]);

    // Transport overrides: a full JSON block, a bare backend name
    // (--transport=udp runs the whole tree over 127.0.0.1 sockets), or
    // the shorthands that enable the plane with a single fault knob.
    if (const char *spec = flagValue(argc, argv, "transport")) {
        const std::string text =
            spec[0] == '{' ? spec
                           : "{\"backend\":\"" + std::string(spec) + "\"}";
        config::applyTransportJson(scenario.service,
                                   util::parseJson(text));
    }
    if (const char *rate = flagValue(argc, argv, "drop-rate")) {
        const double p = std::atof(rate);
        if (p < 0.0 || p >= 1.0)
            util::fatal("--drop-rate=%s: must be in [0, 1)", rate);
        scenario.service.useMessagePlane = true;
        scenario.service.transport.dropRate = p;
    }
    if (const char *lat = flagValue(argc, argv, "latency-ms")) {
        const double ms = std::atof(lat);
        if (ms < 0.0)
            util::fatal("--latency-ms=%s: must be >= 0", lat);
        scenario.service.useMessagePlane = true;
        scenario.service.transport.latencyMeanMs = ms;
    }
    // Workload override: a full workload JSON block, a bare placement
    // policy name, or "off" to drop the config's block.
    if (const char *spec = flagValue(argc, argv, "workload")) {
        if (std::strcmp(spec, "off") == 0) {
            scenario.workload.reset();
        } else {
            const std::string text =
                spec[0] == '{'
                    ? spec
                    : "{\"placement\":\"" + std::string(spec) + "\"}";
            scenario.workload =
                config::workloadParamsFromJson(util::parseJson(text));
        }
    }

    const bool message_plane = scenario.service.useMessagePlane;

    const auto server_count = scenario.servers.size();
    const auto total_per_phase = scenario.totalPerPhase;

    const char *duration_arg = flagValue(argc, argv, "duration");
    const Seconds duration =
        duration_arg ? std::atoll(duration_arg) : 200;
    const char *seed_arg = flagValue(argc, argv, "seed");
    const std::uint64_t seed =
        seed_arg ? std::strtoull(seed_arg, nullptr, 10) : 1;

    auto simulation = config::makeSimulation(std::move(scenario), seed);

    if (const char *spec = flagValue(argc, argv, "fail-feed")) {
        int feed = 0;
        long long when = 0;
        if (std::sscanf(spec, "%d@%lld", &feed, &when) != 2)
            usage();
        simulation.failFeedAt(when, feed,
                              total_per_phase.value_or(0.0));
    }
    if (const char *spec = flagValue(argc, argv, "fail-supply")) {
        int server = 0, supply = 0;
        long long when = 0;
        if (std::sscanf(spec, "%d.%d@%lld", &server, &supply, &when)
            != 3) {
            usage();
        }
        simulation.failSupplyAt(when,
                                static_cast<std::size_t>(server),
                                static_cast<std::size_t>(supply));
    }

    auto *engine = dynamic_cast<workload::WorkloadEngine *>(
        simulation.traffic());

    telemetry::Registry registry;
    telemetry::PeriodTracer tracer;
    const char *telemetry_dir = flagValue(argc, argv, "telemetry-out");
    if (telemetry_dir != nullptr) {
        simulation.enableTelemetry(&registry, &tracer);
        if (engine != nullptr)
            engine->bindTelemetry(&registry);
    }

    simulation.run(duration);

    if (telemetry_dir != nullptr) {
        const std::filesystem::path dir(telemetry_dir);
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        if (ec)
            util::fatal("cannot create %s: %s", telemetry_dir,
                        ec.message().c_str());
        openOutput(dir / "metrics.prom") << registry.renderPrometheus();
        auto metrics_jsonl = openOutput(dir / "metrics.jsonl");
        registry.writeJsonl(metrics_jsonl);
        auto trace_jsonl = openOutput(dir / "trace.jsonl");
        tracer.writeJsonl(trace_jsonl);
        auto events_jsonl = openOutput(dir / "events.jsonl");
        simulation.eventLog().printJsonl(events_jsonl);
        std::fprintf(stderr,
                     "telemetry: wrote metrics.prom, metrics.jsonl, "
                     "trace.jsonl (%zu periods), events.jsonl to %s\n",
                     tracer.periods().size(), telemetry_dir);
    }

    if (hasFlag(argc, argv, "csv")) {
        simulation.recorder().printCsv(std::cout);
        return 0;
    }

    const Seconds tail_from = duration - std::max<Seconds>(duration / 4,
                                                           1);
    util::TextTable table("capmaestro_run summary (tail of the run)");
    table.setHeader({"server", "priority", "demand est (W)",
                     "budget (W)", "power (W)", "throughput"});
    const auto &rec = simulation.recorder();
    for (std::size_t i = 0; i < server_count; ++i) {
        double budget = 0.0;
        for (std::size_t s = 0;
             s < simulation.server(i).supplyCount(); ++s) {
            budget += rec.mean(
                sim::ClosedLoopSim::supplySeries(i, s, "budget"),
                tail_from, duration);
        }
        const auto &report =
            simulation.service().controller(i).lastReport();
        table.addRow(
            {simulation.server(i).spec().name,
             std::to_string(simulation.server(i).spec().priority),
             util::formatFixed(report.demandEstimate, 0),
             util::formatFixed(budget, 0),
             util::formatFixed(
                 rec.mean(sim::ClosedLoopSim::serverSeries(i, "power"),
                          tail_from, duration),
                 0),
             util::formatFixed(
                 rec.mean(
                     sim::ClosedLoopSim::serverSeries(i, "throughput"),
                     tail_from, duration),
                 2)});
    }
    table.print(std::cout);
    std::printf("\nsimulated %lld s; control periods run: %zu; breakers "
                "tripped: %s\n",
                static_cast<long long>(duration),
                simulation.service().lastStats().periodsRun,
                simulation.anyBreakerTripped() ? "YES" : "no");
    if (message_plane) {
        const auto &msgs = simulation.service().lastStats().messages;
        const auto &log = simulation.eventLog();
        std::printf(
            "\nmessage plane (last period): %zu metrics + %zu budget + "
            "%zu heartbeat msgs, %zu retries, %zu bytes on wire\n"
            "spo round (last period): %zu summary + %zu budget msgs, "
            "%zu retries, %zu/%zu trees committed, %zu bytes on wire\n"
            "degraded decisions over the run: %zu stale-metrics, "
            "%zu metrics-lost, %zu default-budget, %zu worker-failover, "
            "%zu spo-fallback\n",
            msgs.metricsMessages, msgs.budgetMessages,
            msgs.heartbeatMessages, msgs.retries, msgs.bytesOnWire,
            msgs.spoSummaryMessages, msgs.spoBudgetMessages,
            msgs.spoRetries, msgs.spoCommittedTrees,
            msgs.spoTreesAttempted, msgs.spoBytesOnWire,
            log.count(core::EventKind::StaleMetricsReused),
            log.count(core::EventKind::MetricsLost),
            log.count(core::EventKind::DefaultBudgetApplied),
            log.count(core::EventKind::WorkerFailover),
            log.count(core::EventKind::SpoFallback));
    }
    if (engine != nullptr) {
        const auto report = engine->report(duration);
        util::TextTable slo("workload SLO summary");
        slo.setHeader({"priority", "arrived", "completed", "dropped",
                       "SLO met", "p50 slowdown", "p99 slowdown",
                       "jobs/s"});
        for (const auto &cls : report.classes) {
            const double attainment =
                cls.completed > 0
                    ? static_cast<double>(cls.sloMet)
                          / static_cast<double>(cls.completed)
                    : 0.0;
            slo.addRow({std::to_string(cls.priority),
                        std::to_string(cls.arrived),
                        std::to_string(cls.completed),
                        std::to_string(cls.dropped),
                        util::formatFixed(100.0 * attainment, 1) + "%",
                        util::formatFixed(cls.p50Slowdown, 2),
                        util::formatFixed(cls.p99Slowdown, 2),
                        util::formatFixed(cls.throughput, 3)});
        }
        std::printf("\n");
        slo.print(std::cout);
        std::printf("workload: %llu arrived, %llu completed, %llu "
                    "dropped, %zu queued, %zu running; priority "
                    "inversions in %llu/%llu control periods\n",
                    static_cast<unsigned long long>(report.arrived),
                    static_cast<unsigned long long>(report.completed),
                    static_cast<unsigned long long>(report.dropped),
                    engine->queuedJobs(), engine->runningJobs(),
                    static_cast<unsigned long long>(
                        report.inversionPeriods),
                    static_cast<unsigned long long>(report.periods));
    }
    if (!simulation.eventLog().events().empty()) {
        std::printf("\nevents:\n");
        simulation.eventLog().print(std::cout);
    }
    return 0;
}
