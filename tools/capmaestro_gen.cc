/**
 * @file
 * capmaestro_gen — emit a runnable JSON scenario for the paper's
 * Table 4 data center, so the full-scale center can be driven through
 * `capmaestro_run` without writing C++.
 *
 * Usage:
 *   capmaestro_gen [options] > datacenter.json
 *
 * Options:
 *   --per-phase=N     servers per rack per phase (default 12)
 *   --phases=N        phases to instantiate (default 1)
 *   --hp=F            high-priority fraction (default 0.3)
 *   --utilization=U   constant utilization for every server (default:
 *                     per-server uniform in [0.85, 1.0])
 *   --mismatch=F      supply split mismatch (default 0)
 *   --seed=N          RNG seed for priorities/splits (default 1)
 *   --workload=P      emit a workload traffic block using placement
 *                     policy P (firstFit/loadBalanced/phaseAware/
 *                     powerHeadroom); "off" (the default) omits the
 *                     block entirely, leaving the output identical to
 *                     a run without the flag
 *   --workload-rate=R fleet arrival rate, jobs/s (default 0.02 per
 *                     server); only meaningful with --workload
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "config/loader.hh"
#include "sim/datacenter.hh"
#include "util/json.hh"
#include "util/random.hh"

using namespace capmaestro;

namespace {

double
doubleFlag(int argc, char **argv, const char *name, double fallback)
{
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return std::atof(argv[i] + prefix.size());
    }
    return fallback;
}

std::string
stringFlag(int argc, char **argv, const char *name,
           const std::string &fallback)
{
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return argv[i] + prefix.size();
    }
    return fallback;
}

/** The canonical two-tenant mix the generator emits. */
workload::Params
generatedWorkload(const std::string &policy, double rate,
                  std::uint64_t seed)
{
    workload::Params params;
    params.seed = seed;
    params.arrivalRate = rate;
    params.policy = workload::placementPolicyFromString(policy);
    params.priorityMode = workload::PriorityMode::Max;
    workload::TenantSpec batch;
    batch.name = "batch";
    batch.priority = 0;
    batch.weight = 0.7;
    batch.cpuDemand = 0.25;
    batch.meanDuration = 120;
    batch.sloSlowdown = 3.0;
    workload::TenantSpec online;
    online.name = "online";
    online.priority = 1;
    online.weight = 0.3;
    online.cpuDemand = 0.15;
    online.meanDuration = 30;
    online.sloSlowdown = 1.5;
    params.tenants = {batch, online};
    return params;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::DataCenterParams params;
    params.phases =
        static_cast<int>(doubleFlag(argc, argv, "phases", 1.0));
    params.serversPerRackPerPhase =
        static_cast<int>(doubleFlag(argc, argv, "per-phase", 12.0));
    params.highPriorityFraction = doubleFlag(argc, argv, "hp", 0.3);
    params.supplyMismatch = doubleFlag(argc, argv, "mismatch", 0.0);
    const double fixed_u = doubleFlag(argc, argv, "utilization", -1.0);
    util::Rng rng(static_cast<std::uint64_t>(
        doubleFlag(argc, argv, "seed", 1.0)));

    const auto dc = sim::buildDataCenter(params);

    util::Json::Object doc;
    doc.emplace("feeds",
                util::Json(static_cast<double>(params.feeds)));

    util::Json::Array trees;
    for (const auto &tree : dc.system->trees())
        trees.push_back(config::powerTreeToJson(*tree));
    doc.emplace("trees", util::Json(std::move(trees)));

    util::Json::Array servers;
    for (std::size_t i = 0; i < dc.servers.size(); ++i) {
        util::Json::Object server;
        server.emplace("name",
                       util::Json("s" + std::to_string(i)));
        server.emplace(
            "priority",
            util::Json(rng.chance(params.highPriorityFraction) ? 1.0
                                                               : 0.0));
        server.emplace("idle", util::Json(params.serverIdle));
        server.emplace("capMin", util::Json(params.serverCapMin));
        server.emplace("capMax", util::Json(params.serverCapMax));

        const double mismatch =
            params.supplyMismatch > 0.0
                ? rng.uniform(-params.supplyMismatch,
                              params.supplyMismatch)
                : 0.0;
        util::Json::Array supplies;
        for (const double share : {0.5 + mismatch, 0.5 - mismatch}) {
            util::Json::Object supply;
            supply.emplace("share", util::Json(share));
            supplies.push_back(util::Json(std::move(supply)));
        }
        server.emplace("supplies", util::Json(std::move(supplies)));

        util::Json::Object workload;
        workload.emplace("type",
                         util::Json(std::string("constant")));
        workload.emplace("utilization",
                         util::Json(fixed_u >= 0.0
                                        ? fixed_u
                                        : rng.uniform(0.85, 1.0)));
        server.emplace("workload", util::Json(std::move(workload)));
        servers.push_back(util::Json(std::move(server)));
    }
    doc.emplace("servers", util::Json(std::move(servers)));

    util::Json::Object service;
    service.emplace("policy", util::Json(std::string("global")));
    service.emplace("spo",
                    util::Json(params.supplyMismatch > 0.0));
    doc.emplace("service", util::Json(std::move(service)));

    util::Json::Object budgets;
    budgets.emplace("totalPerPhase",
                    util::Json(params.usableBudgetPerPhase()));
    doc.emplace("budgets", util::Json(std::move(budgets)));

    // --workload=off (the default) must not touch the document at all:
    // the no-workload output stays byte-for-byte what it always was.
    const std::string workload_policy =
        stringFlag(argc, argv, "workload", "off");
    if (workload_policy != "off") {
        const double rate = doubleFlag(
            argc, argv, "workload-rate",
            0.02 * static_cast<double>(dc.servers.size()));
        doc.emplace("workload",
                    config::workloadParamsToJson(generatedWorkload(
                        workload_policy, rate,
                        static_cast<std::uint64_t>(
                            doubleFlag(argc, argv, "seed", 1.0)))));
    }

    std::cout << util::serializeJson(util::Json(std::move(doc)), 2)
              << "\n";
    return 0;
}
