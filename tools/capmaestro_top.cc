/**
 * @file
 * capmaestro_top — live fleet view over the per-process scrape
 * endpoints (docs/observability.md).
 *
 * Polls /healthz and /metrics on every listed port each interval and
 * renders one ANSI screen: per-process control progress (epoch,
 * periods/sec, catch-ups), the root's fleet health rollup
 * (live/stale/lost/rehoming and the degraded fraction), the online
 * safety auditor's verdict, and per-hop latency quantiles aggregated
 * from every process's capmaestro_hop_latency_ms histograms.
 *
 * Usage:
 *   capmaestro_top --ports=P1,P2,..        explicit scrape ports
 *   capmaestro_top --port-base=B --count=N ports B..B+N-1
 *
 * Options:
 *   --host=H          scrape host (default 127.0.0.1)
 *   --interval-ms=MS  poll interval (default 1000)
 *   --iterations=N    stop after N screens (default: until SIGINT;
 *                     with N=1 prints a single plain snapshot)
 *   --plain           never emit ANSI clear/home (scripts, logs)
 *
 * Exit status 0; an unreachable or half-up endpoint (no /healthz, or
 * an answer that does not parse — mid-restart, mid-upgrade) renders as
 * an explicit DOWN row rather than failing the whole view or omitting
 * the process: during a join, drain, or rolling restart that gap is
 * exactly what an operator is watching for. The gen column shows each
 * process's membership generation ("-" on a pre-elasticity build).
 * Needs nothing but the endpoints: run it next to a deployment
 * started with --http-port / observability.httpPortBase.
 */

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <netinet/in.h>
#include <optional>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "util/json.hh"

using capmaestro::util::Json;
using capmaestro::util::parseJson;

namespace {

volatile std::sig_atomic_t g_stop = 0;

extern "C" void
onSignal(int)
{
    g_stop = 1;
}

const char *
flagValue(int argc, char **argv, const char *name)
{
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return argv[i] + prefix.size();
    }
    return nullptr;
}

bool
hasFlag(int argc, char **argv, const char *name)
{
    const std::string flag = std::string("--") + name;
    for (int i = 1; i < argc; ++i) {
        if (flag == argv[i])
            return true;
    }
    return false;
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: capmaestro_top --ports=P1,P2,.. [options]\n"
        "       capmaestro_top --port-base=B --count=N [options]\n"
        "options: --host=H --interval-ms=MS --iterations=N --plain\n");
    std::exit(2);
}

/**
 * One blocking HTTP/1.0 GET with a short timeout. The scrape plane is
 * loopback HTTP with Connection: close, so "read to EOF, split at the
 * blank line" is the whole client.
 */
std::optional<std::string>
httpGet(const std::string &host, std::uint16_t port,
        const std::string &path, int timeout_ms)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return std::nullopt;
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1
        || ::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                     sizeof(addr)) != 0) {
        ::close(fd);
        return std::nullopt;
    }
    const std::string request =
        "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
    if (::send(fd, request.data(), request.size(), 0)
        != static_cast<ssize_t>(request.size())) {
        ::close(fd);
        return std::nullopt;
    }
    std::string response;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    const std::size_t split = response.find("\r\n\r\n");
    if (split == std::string::npos
        || response.compare(0, 9, "HTTP/1.0 ") != 0
        || response.compare(9, 3, "200") != 0) {
        return std::nullopt;
    }
    return response.substr(split + 4);
}

/** One parsed Prometheus sample: name, labels, value. */
struct Sample
{
    std::string name;
    std::map<std::string, std::string> labels;
    double value = 0.0;
};

/** Parse the exposition text (enough for our own renderer's output). */
std::vector<Sample>
parseMetrics(const std::string &text)
{
    std::vector<Sample> out;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty() || line[0] == '#')
            continue;
        Sample s;
        std::size_t cursor = line.find_first_of("{ ");
        if (cursor == std::string::npos)
            continue;
        s.name = line.substr(0, cursor);
        if (line[cursor] == '{') {
            const std::size_t close = line.find('}', cursor);
            if (close == std::string::npos)
                continue;
            std::size_t lp = cursor + 1;
            while (lp < close) {
                const std::size_t eq = line.find('=', lp);
                if (eq == std::string::npos || eq >= close)
                    break;
                const std::string key = line.substr(lp, eq - lp);
                const std::size_t q1 = eq + 1;
                if (q1 >= close || line[q1] != '"')
                    break;
                const std::size_t q2 = line.find('"', q1 + 1);
                if (q2 == std::string::npos || q2 > close)
                    break;
                s.labels[key] = line.substr(q1 + 1, q2 - q1 - 1);
                lp = q2 + 1;
                if (lp < close && line[lp] == ',')
                    ++lp;
            }
            cursor = close + 1;
        }
        while (cursor < line.size() && line[cursor] == ' ')
            ++cursor;
        if (cursor >= line.size())
            continue;
        s.value = std::strtod(line.c_str() + cursor, nullptr);
        out.push_back(std::move(s));
    }
    return out;
}

/** Cumulative-bucket histogram reassembled from _bucket samples. */
struct HopHistogram
{
    /** (upper edge, cumulative count), ascending; +Inf edge last. */
    std::vector<std::pair<double, double>> buckets;
    double count = 0.0;

    double quantile(double q) const
    {
        if (count <= 0.0)
            return 0.0;
        const double target = q * count;
        double prev_edge = 0.0;
        double prev_cum = 0.0;
        for (const auto &[edge, cum] : buckets) {
            if (cum >= target) {
                if (std::isinf(edge))
                    return prev_edge;
                const double in_bin = cum - prev_cum;
                const double frac =
                    in_bin > 0.0 ? (target - prev_cum) / in_bin : 1.0;
                return prev_edge + frac * (edge - prev_edge);
            }
            prev_edge = std::isinf(edge) ? prev_edge : edge;
            prev_cum = cum;
        }
        return prev_edge;
    }
};

struct ProcessRow
{
    std::uint16_t port = 0;
    bool up = false;
    /** /healthz answered but was unusable (bad JSON): the endpoint is
     *  half-up — mid-restart or mid-upgrade — and renders as DOWN. */
    bool halfUp = false;
    bool ok = true;
    std::string name;
    /** Membership generation the process reports (0 = pre-elasticity
     *  build or no /healthz field). */
    double generation = 0.0;
    double lastEpoch = 0.0;
    double periods = 0.0;
    double periodsPerSec = 0.0;
    double catchUps = 0.0;
    double violations = 0.0;
    /** Fleet counts when this process exposes a rollup. */
    double live = 0.0, stale = 0.0, lost = 0.0, rehoming = 0.0;
    double degradedFraction = 0.0;
    bool hasFleet = false;
};

std::vector<std::uint16_t>
parsePorts(int argc, char **argv)
{
    std::vector<std::uint16_t> ports;
    if (const char *list = flagValue(argc, argv, "ports")) {
        const std::string text(list);
        std::size_t pos = 0;
        while (pos < text.size()) {
            std::size_t comma = text.find(',', pos);
            if (comma == std::string::npos)
                comma = text.size();
            ports.push_back(static_cast<std::uint16_t>(std::strtoul(
                text.substr(pos, comma - pos).c_str(), nullptr, 10)));
            pos = comma + 1;
        }
    } else if (const char *base_arg =
                   flagValue(argc, argv, "port-base")) {
        const int base = std::atoi(base_arg);
        const char *count_arg = flagValue(argc, argv, "count");
        const int count = count_arg ? std::atoi(count_arg) : 0;
        if (count <= 0)
            usage();
        for (int i = 0; i < count; ++i)
            ports.push_back(static_cast<std::uint16_t>(base + i));
    }
    if (ports.empty())
        usage();
    return ports;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto ports = parsePorts(argc, argv);
    const char *host_arg = flagValue(argc, argv, "host");
    const std::string host = host_arg ? host_arg : "127.0.0.1";
    const char *interval_arg = flagValue(argc, argv, "interval-ms");
    const int interval_ms =
        interval_arg ? std::atoi(interval_arg) : 1000;
    const char *iters_arg = flagValue(argc, argv, "iterations");
    const long iterations = iters_arg ? std::atol(iters_arg) : 0;
    const bool ansi = !hasFlag(argc, argv, "plain")
                      && iterations != 1 && ::isatty(1) != 0;

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::map<std::uint16_t, double> last_periods;
    for (long iter = 0; (iterations == 0 || iter < iterations)
                        && g_stop == 0;
         ++iter) {
        std::vector<ProcessRow> rows;
        // (kind, from_tier, to_tier) -> merged histogram across
        // processes; every process uses identical bucket edges, so
        // cumulative counts simply add.
        std::map<std::string, HopHistogram> hops;
        for (const std::uint16_t port : ports) {
            ProcessRow row;
            row.port = port;
            const auto health =
                httpGet(host, port, "/healthz", 500);
            if (!health) {
                rows.push_back(row);
                continue;
            }
            row.up = true;
            try {
                const Json doc = parseJson(*health);
                row.ok = doc.find("ok") != nullptr
                         && doc.at("ok").isBool()
                         && doc.at("ok").asBool();
                if (const Json *process = doc.find("process")) {
                    row.name =
                        "host" + std::to_string(static_cast<long>(
                                     process->asNumber()));
                } else {
                    row.name = doc.stringOr("role", "?");
                }
                row.lastEpoch = doc.numberOr("lastEpoch", 0.0);
                row.periods = doc.numberOr("periods", 0.0);
                row.generation = doc.numberOr("generation", 0.0);
                if (const Json *fleet = doc.find("fleet")) {
                    row.hasFleet = true;
                    if (const Json *counts = fleet->find("counts")) {
                        row.live = counts->numberOr("live", 0.0);
                        row.stale = counts->numberOr("stale", 0.0);
                        row.lost = counts->numberOr("lost", 0.0);
                        row.rehoming =
                            counts->numberOr("rehoming", 0.0);
                    }
                    row.degradedFraction =
                        fleet->numberOr("degradedFraction", 0.0);
                }
                if (const Json *safety = doc.find("safety")) {
                    row.violations =
                        safety->numberOr("violations", 0.0);
                }
            } catch (...) {
                // Answered but unusable: mid-restart/mid-upgrade.
                row.halfUp = true;
                row.ok = false;
            }
            const auto prev = last_periods.find(port);
            if (prev != last_periods.end() && interval_ms > 0) {
                row.periodsPerSec =
                    std::max(0.0, row.periods - prev->second) * 1000.0
                    / static_cast<double>(interval_ms);
            }
            last_periods[port] = row.periods;

            if (const auto metrics =
                    httpGet(host, port, "/metrics", 500)) {
                for (const Sample &s : parseMetrics(*metrics)) {
                    if (s.name == "capmaestro_hop_latency_ms_bucket") {
                        const auto kind = s.labels.find("kind");
                        const auto from = s.labels.find("from_tier");
                        const auto to = s.labels.find("to_tier");
                        const auto le = s.labels.find("le");
                        if (kind == s.labels.end()
                            || le == s.labels.end())
                            continue;
                        const std::string key =
                            kind->second + " "
                            + (from != s.labels.end() ? from->second
                                                      : "?")
                            + "\xE2\x86\x92"
                            + (to != s.labels.end() ? to->second
                                                    : "?");
                        const double edge =
                            le->second == "+Inf"
                                ? HUGE_VAL
                                : std::strtod(le->second.c_str(),
                                              nullptr);
                        // Merge: same edges across processes, so the
                        // cumulative counts for one edge add up.
                        auto &hist = hops[key];
                        bool merged = false;
                        for (auto &[e, c] : hist.buckets) {
                            if (e == edge
                                || (std::isinf(e)
                                    && std::isinf(edge))) {
                                c += s.value;
                                merged = true;
                                break;
                            }
                        }
                        if (!merged)
                            hist.buckets.emplace_back(edge, s.value);
                        if (std::isinf(edge))
                            hist.count += s.value;
                    } else if (s.name
                                   == "capmaestro_host_catch_up_"
                                      "periods_total"
                               || s.name
                                      == "capmaestro_rt_clamped_"
                                         "periods_total") {
                        row.catchUps += s.value;
                    }
                }
            }
            rows.push_back(row);
        }
        for (auto &[key, hist] : hops) {
            std::sort(hist.buckets.begin(), hist.buckets.end(),
                      [](const auto &a, const auto &b) {
                          if (std::isinf(a.first))
                              return false;
                          if (std::isinf(b.first))
                              return true;
                          return a.first < b.first;
                      });
        }

        if (ansi)
            std::printf("\x1b[H\x1b[2J");
        std::printf("capmaestro_top — %zu endpoints on %s  (sample "
                    "%ld)\n\n",
                    ports.size(), host.c_str(), iter + 1);
        std::printf("  %-6s %-8s %-6s %-4s %-9s %-9s %-8s %-6s\n",
                    "port", "who", "epoch", "gen", "periods", "per/s",
                    "catchup", "ok");
        for (const ProcessRow &row : rows) {
            // An unreachable or half-up endpoint is an explicit DOWN
            // row, never an omission: during a join, drain, or rolling
            // restart the gap in the fleet is exactly what an operator
            // is watching for.
            if (!row.up || row.halfUp) {
                std::printf("  %-6u %-8s %-6s %-4s %-9s %-9s %-8s "
                            "DOWN%s\n",
                            row.port,
                            row.name.empty() ? "-" : row.name.c_str(),
                            "-", "-", "-", "-", "-",
                            row.up ? " (bad /healthz)"
                                   : " (no /healthz)");
                continue;
            }
            char gen[16];
            if (row.generation > 0.0) {
                std::snprintf(gen, sizeof(gen), "%.0f",
                              row.generation);
            } else {
                std::snprintf(gen, sizeof(gen), "-");
            }
            std::printf("  %-6u %-8s %-6.0f %-4s %-9.0f %-9.2f %-8.0f "
                        "%-6s\n",
                        row.port, row.name.c_str(), row.lastEpoch, gen,
                        row.periods, row.periodsPerSec, row.catchUps,
                        row.ok ? "yes" : "NO");
        }

        double live = 0.0, stale = 0.0, lost = 0.0, rehoming = 0.0;
        double worst_degraded = 0.0, violations = 0.0;
        bool any_fleet = false;
        for (const ProcessRow &row : rows) {
            violations += row.violations;
            if (!row.hasFleet)
                continue;
            any_fleet = true;
            live += row.live;
            stale += row.stale;
            lost += row.lost;
            rehoming += row.rehoming;
            worst_degraded =
                std::max(worst_degraded, row.degradedFraction);
        }
        if (any_fleet) {
            std::printf("\n  fleet: %.0f live, %.0f stale, %.0f lost, "
                        "%.0f rehoming  (degraded %.1f%%)\n",
                        live, stale, lost, rehoming,
                        100.0 * worst_degraded);
        }
        std::printf("  safety: %s (%.0f violations)\n",
                    violations == 0.0 ? "clean" : "VIOLATED",
                    violations);

        if (!hops.empty()) {
            std::printf("\n  hop latency (ms)      %8s %8s %8s %10s\n",
                        "p50", "p95", "p99", "samples");
            for (const auto &[key, hist] : hops) {
                std::printf("  %-20s  %8.3f %8.3f %8.3f %10.0f\n",
                            key.c_str(), hist.quantile(0.50),
                            hist.quantile(0.95), hist.quantile(0.99),
                            hist.count);
            }
        }
        std::fflush(stdout);

        if ((iterations != 0 && iter + 1 >= iterations) || g_stop)
            break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }
    return 0;
}
