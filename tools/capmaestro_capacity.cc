/**
 * @file
 * capmaestro_capacity — capacity planning for the Table 4-style data
 * center from the command line.
 *
 * Usage:
 *   capmaestro_capacity [options]
 *
 * Options:
 *   --policy=global|local|none|all   capping policy (default all)
 *   --worst                          worst-case (one feed down, 100 %
 *                                    utilization); default typical case
 *   --trials=N                       Monte-Carlo trials (default 30)
 *   --sweep=LO:HI                    servers/rack/phase range (default
 *                                    6:15); prints the full sweep
 *   --max                            print only the deployable maximum
 *   --hp=F                           high-priority fraction (default 0.3)
 *   --capmin=W                       server Pcap_min (default 270)
 *   --budget-kw=K                    contractual kW per phase (default
 *                                    700)
 *   --mismatch=F                     supply split mismatch (default 0)
 *   --spo                            enable stranded-power optimization
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "sim/capacity.hh"
#include "util/table.hh"

using namespace capmaestro;
using namespace capmaestro::sim;

namespace {

const char *
flagValue(int argc, char **argv, const char *name)
{
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return argv[i] + prefix.size();
    }
    return nullptr;
}

bool
hasFlag(int argc, char **argv, const char *name)
{
    const std::string flag = std::string("--") + name;
    for (int i = 1; i < argc; ++i) {
        if (flag == argv[i])
            return true;
    }
    return false;
}

double
doubleFlag(int argc, char **argv, const char *name, double fallback)
{
    const char *v = flagValue(argc, argv, name);
    return v ? std::atof(v) : fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    CapacityConfig base;
    base.worstCase = hasFlag(argc, argv, "worst");
    base.trials = static_cast<int>(
        doubleFlag(argc, argv, "trials", 30.0));
    base.enableSpo = hasFlag(argc, argv, "spo");
    base.dc.highPriorityFraction = doubleFlag(argc, argv, "hp", 0.3);
    base.dc.serverCapMin = doubleFlag(argc, argv, "capmin", 270.0);
    base.dc.contractualPerPhase =
        1000.0 * doubleFlag(argc, argv, "budget-kw", 700.0);
    base.dc.supplyMismatch = doubleFlag(argc, argv, "mismatch", 0.0);

    int lo = 6, hi = 15;
    if (const char *sweep = flagValue(argc, argv, "sweep")) {
        if (std::sscanf(sweep, "%d:%d", &lo, &hi) != 2 || lo < 1
            || hi < lo) {
            std::fprintf(stderr, "bad --sweep=LO:HI\n");
            return 2;
        }
    }

    std::vector<policy::PolicyKind> kinds;
    const std::string policy_arg =
        flagValue(argc, argv, "policy")
            ? flagValue(argc, argv, "policy")
            : "all";
    if (policy_arg == "all") {
        kinds.assign(policy::kAllPolicies.begin(),
                     policy::kAllPolicies.end());
    } else if (policy_arg == "global") {
        kinds = {policy::PolicyKind::GlobalPriority};
    } else if (policy_arg == "local") {
        kinds = {policy::PolicyKind::LocalPriority};
    } else if (policy_arg == "none") {
        kinds = {policy::PolicyKind::NoPriority};
    } else {
        std::fprintf(stderr, "unknown --policy=%s\n",
                     policy_arg.c_str());
        return 2;
    }

    std::printf("capacity study: %s case, %.0f%% high priority, "
                "Pcap_min %.0f W, %.0f kW/phase, %d trials\n\n",
                base.worstCase ? "worst" : "typical",
                100.0 * base.dc.highPriorityFraction,
                base.dc.serverCapMin,
                base.dc.contractualPerPhase / 1000.0, base.trials);

    if (hasFlag(argc, argv, "max")) {
        util::TextTable t("deployable maximum (<= 1% avg cap ratio)");
        t.setHeader({"policy", "servers/rack/phase", "total servers"});
        for (const auto kind : kinds) {
            CapacityConfig cfg = base;
            cfg.policy = kind;
            const auto best = findMaxDeployable(cfg, lo, hi);
            t.addRow({policy::policyName(kind),
                      std::to_string(best.serversPerRackPerPhase),
                      std::to_string(best.totalServers)});
        }
        t.print(std::cout);
        return 0;
    }

    for (const auto kind : kinds) {
        CapacityConfig cfg = base;
        cfg.policy = kind;
        util::TextTable t(std::string(policy::policyName(kind))
                          + " -- cap ratio sweep");
        t.setHeader({"servers/rack/phase", "total servers",
                     "cap ratio (all)", "p99", "cap ratio (high)",
                     "feasible"});
        for (const auto &point : sweepCapacity(cfg, lo, hi)) {
            t.addRow({std::to_string(point.serversPerRackPerPhase),
                      std::to_string(point.totalServers),
                      util::formatFixed(point.avgCapRatioAll, 4),
                      util::formatFixed(point.p99CapRatioAll, 4),
                      util::formatFixed(point.avgCapRatioHigh, 4),
                      util::formatFixed(point.feasibleFraction, 2)});
        }
        t.print(std::cout);
        std::printf("\n");
    }
    return 0;
}
