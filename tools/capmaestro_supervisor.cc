/**
 * @file
 * capmaestro_supervisor — keeps a whole worker deployment alive on one
 * host (docs/distributed.md failover quickstart). The supervisor
 * fork/execs one capmaestro_worker per endpoint (every rack plus the
 * room), then sits in a waitpid loop: a child that exits is restarted
 * with per-child exponential backoff, and the §4.5/checkpoint
 * machinery inside the workers re-homes the restarted process within a
 * few control periods. The room child automatically gets --state-dir
 * so its checkpoint store survives its own restarts.
 *
 * Usage:
 *   capmaestro_supervisor <config.json> --peers=peers.json [options]
 *
 * Options:
 *   --periods=N        pass --periods=N to every worker; the
 *                      supervisor exits when all children have
 *                      completed normally (exit 0) instead of
 *                      restarting them
 *   --seed=N           sensor-noise seed forwarded to workers
 *   --log-dir=DIR      per-child stdout/stderr under DIR (default: a
 *                      mktemp directory, printed at startup)
 *   --worker-bin=PATH  worker binary (default: capmaestro_worker next
 *                      to this executable)
 *
 * Backoff and restart limits come from the optional "supervisor"
 * object in peers.json (config::SupervisorConfig): the first restart
 * waits backoffInitialMs, each subsequent crash doubles the wait up to
 * backoffMaxMs, and a child that stays up for backoffResetAfterMs gets
 * its backoff reset. maxRestarts > 0 caps restarts per child; a child
 * over the cap is abandoned (logged, not respawned).
 *
 * Every spawn is logged as "spawn role=R pid=P restarts=K" on stderr —
 * chaos scripts (scripts/failover_smoke.sh) parse these lines to pick
 * a victim. SIGTERM/SIGINT is forwarded to all children and the
 * supervisor exits after reaping them.
 *
 * The supervisor also drives the elasticity plane (docs/distributed.md,
 * "Online elasticity"). The peers file's "membership" block decides the
 * initial fleet: "absent" slots get no process, "join" slots spawn with
 * --shadow (the worker boots clamped until the root commits it Live).
 * On SIGHUP the supervisor re-reads the peers file, spawns a shadowed
 * worker for every newly joining slot, marks every "drain" slot
 * retiring (its child exits on its own after acking the committed Left
 * state and is never respawned), and forwards the SIGHUP to the root
 * worker, which re-reads the same file and announces the transitions —
 * one file edit plus one signal is a complete join or drain.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "config/loader.hh"
#include "core/distributed.hh"
#include "util/json.hh"
#include "util/logging.hh"

using namespace capmaestro;

namespace {

volatile sig_atomic_t g_terminate = 0;
volatile sig_atomic_t g_reload = 0;

extern "C" void
onSignal(int)
{
    g_terminate = 1;
}

extern "C" void
onReload(int)
{
    g_reload = 1;
}

const char *
flagValue(int argc, char **argv, const char *name)
{
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 2; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return argv[i] + prefix.size();
    }
    return nullptr;
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: capmaestro_supervisor <config.json> --peers=FILE\n"
        "                             [--periods=N] [--seed=N]\n"
        "                             [--log-dir=DIR] "
        "[--worker-bin=PATH]\n");
    std::exit(2);
}

std::uint64_t
monotonicMs()
{
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000u
           + static_cast<std::uint64_t>(ts.tv_nsec) / 1000000u;
}

/** Worker binary living next to this executable. */
std::string
siblingWorkerPath()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "capmaestro_worker"; // fall back to PATH lookup
    buf[n] = '\0';
    return (std::filesystem::path(buf).parent_path()
            / "capmaestro_worker")
        .string();
}

/** One supervised child process. */
struct Child
{
    std::uint32_t role = 0;
    pid_t pid = -1;
    /** Completed its --periods run; never restarted. */
    bool finished = false;
    /** Over maxRestarts; never restarted. */
    bool abandoned = false;
    /** Slot not deployed (membership "absent"); no process exists
     *  until a reload moves the slot to "join". */
    bool absent = false;
    /** Next spawn passes --shadow (first boot of a joining slot);
     *  cleared after the spawn so a crash-restart boots normally. */
    bool shadow = false;
    /** Draining: the child exits on its own once it acked Left and is
     *  treated as finished on any exit, never respawned. */
    bool retiring = false;
    int restarts = 0;
    double backoffMs = 0.0;
    std::uint64_t startedAtMs = 0;
    /** 0 = not waiting; else monotonic ms of the next respawn. */
    std::uint64_t respawnAtMs = 0;
};

struct SpawnArgs
{
    std::string workerBin;
    std::string configPath;
    std::string peersPath;
    std::string logDir;
    std::string stateDir;
    const char *periods = nullptr;
    const char *seed = nullptr;
    std::uint32_t roomRole = 0;
};

void
spawn(Child &child, const SpawnArgs &args)
{
    const pid_t pid = ::fork();
    if (pid < 0)
        util::fatal("supervisor: fork failed: %s", std::strerror(errno));
    if (pid == 0) {
        // Child: redirect stdout/stderr to per-role logs, exec worker.
        const std::string base =
            args.logDir + "/role" + std::to_string(child.role);
        const int out = ::open((base + ".out").c_str(),
                               O_WRONLY | O_CREAT | O_APPEND, 0644);
        const int err = ::open((base + ".err").c_str(),
                               O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (out >= 0)
            ::dup2(out, STDOUT_FILENO);
        if (err >= 0)
            ::dup2(err, STDERR_FILENO);

        std::vector<std::string> argstrs;
        argstrs.push_back(args.workerBin);
        argstrs.push_back(args.configPath);
        argstrs.push_back("--peers=" + args.peersPath);
        argstrs.push_back("--role=" + std::to_string(child.role));
        if (args.periods != nullptr)
            argstrs.push_back(std::string("--periods=") + args.periods);
        if (args.seed != nullptr)
            argstrs.push_back(std::string("--seed=") + args.seed);
        if (child.role == args.roomRole && !args.stateDir.empty())
            argstrs.push_back("--state-dir=" + args.stateDir);
        if (child.shadow)
            argstrs.push_back("--shadow");

        std::vector<char *> argv;
        for (std::string &s : argstrs)
            argv.push_back(s.data());
        argv.push_back(nullptr);
        ::execv(argv[0], argv.data());
        std::fprintf(stderr, "supervisor: execv %s failed: %s\n",
                     argv[0], std::strerror(errno));
        std::_Exit(127);
    }
    child.pid = pid;
    child.startedAtMs = monotonicMs();
    child.respawnAtMs = 0;
    std::fprintf(stderr, "spawn role=%u pid=%d restarts=%d%s\n",
                 child.role, static_cast<int>(pid), child.restarts,
                 child.shadow ? " shadow" : "");
    std::fflush(stderr);
    // One shadowed boot per join: a later crash-restart boots with the
    // static all-Live replica — already correct once the join
    // committed, and superseded by the root's ongoing re-broadcast
    // while the adopt is still in flight.
    child.shadow = false;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || argv[1][0] == '-')
        usage();
    const char *peers_path = flagValue(argc, argv, "peers");
    if (peers_path == nullptr)
        usage();

    auto scenario = config::loadScenarioFile(argv[1]);
    std::ifstream peers_in(peers_path);
    if (!peers_in)
        util::fatal("cannot read %s", peers_path);
    const std::string peers_text(
        (std::istreambuf_iterator<char>(peers_in)),
        std::istreambuf_iterator<char>());
    const auto peers =
        config::loadWorkerPeers(util::parseJson(peers_text));
    const config::SupervisorConfig &cfg = peers.supervisor;

    const std::size_t racks =
        core::DistributedControlPlane::rackWorkerCountFor(
            *scenario.system);
    if (peers.peers.size() != racks + 1) {
        util::fatal("supervisor: peer table has %zu endpoints; "
                    "topology needs %zu",
                    peers.peers.size(), racks + 1);
    }

    SpawnArgs args;
    const char *worker_bin = flagValue(argc, argv, "worker-bin");
    args.workerBin = worker_bin ? worker_bin : siblingWorkerPath();
    args.configPath = argv[1];
    args.peersPath = peers_path;
    args.periods = flagValue(argc, argv, "periods");
    args.seed = flagValue(argc, argv, "seed");
    args.roomRole = static_cast<std::uint32_t>(racks);

    const char *log_dir = flagValue(argc, argv, "log-dir");
    if (log_dir != nullptr) {
        args.logDir = log_dir;
        std::error_code ec;
        std::filesystem::create_directories(args.logDir, ec);
        if (ec) {
            util::fatal("cannot create %s: %s", log_dir,
                        ec.message().c_str());
        }
    } else {
        char tmpl[] = "/tmp/capmaestro_supervisor.XXXXXX";
        const char *dir = ::mkdtemp(tmpl);
        if (dir == nullptr)
            util::fatal("mkdtemp failed: %s", std::strerror(errno));
        args.logDir = dir;
    }
    args.stateDir =
        cfg.stateDir.empty() ? args.logDir + "/state" : cfg.stateDir;

    std::fprintf(stderr,
                 "supervisor: %zu rack workers + room, logs in %s, "
                 "room state in %s\n",
                 racks, args.logDir.c_str(), args.stateDir.c_str());

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    std::signal(SIGHUP, onReload);

    const auto in_list = [](const std::vector<std::uint32_t> &list,
                            std::uint32_t role) {
        for (const std::uint32_t ep : list)
            if (ep == role)
                return true;
        return false;
    };

    std::vector<Child> children(racks + 1);
    for (std::size_t r = 0; r <= racks; ++r) {
        Child &child = children[r];
        child.role = static_cast<std::uint32_t>(r);
        child.backoffMs = cfg.backoffInitialMs;
        if (in_list(peers.membership.absent, child.role)) {
            child.absent = true;
            continue; // slot not deployed yet; a reload brings it in
        }
        // Boot-time join: shadowed first spawn; the root announces the
        // adopt from the same peers file.
        child.shadow = in_list(peers.membership.join, child.role);
        child.retiring = in_list(peers.membership.drain, child.role);
        spawn(child, args);
    }

    int exit_code = 0;
    for (;;) {
        if (g_reload) {
            g_reload = 0;
            // Re-read the peers file; its membership block is the
            // desired fleet. Spawn newly joining slots (shadowed),
            // mark draining ones retiring, and forward the SIGHUP to
            // the root worker so it announces the transitions.
            std::ifstream reload_in(peers_path);
            if (!reload_in) {
                std::fprintf(stderr, "supervisor: reload: cannot "
                             "read %s\n", peers_path);
            } else {
                const std::string text(
                    (std::istreambuf_iterator<char>(reload_in)),
                    std::istreambuf_iterator<char>());
                const auto reloaded =
                    config::loadWorkerPeers(util::parseJson(text));
                for (Child &child : children) {
                    if (in_list(reloaded.membership.join, child.role)
                        && child.pid < 0 && !child.retiring) {
                        child.absent = false;
                        child.finished = false;
                        child.abandoned = false;
                        child.shadow = true;
                        child.restarts = 0;
                        child.backoffMs = cfg.backoffInitialMs;
                        spawn(child, args);
                    }
                    if (in_list(reloaded.membership.drain, child.role)
                        && !child.retiring) {
                        child.retiring = true;
                        std::fprintf(stderr,
                                     "supervisor: role %u retiring\n",
                                     child.role);
                    }
                }
                Child &room = children[racks];
                if (room.pid > 0)
                    ::kill(room.pid, SIGHUP);
                std::fprintf(stderr, "supervisor: reloaded %s\n",
                             peers_path);
            }
        }
        if (g_terminate) {
            for (Child &child : children) {
                if (child.pid > 0)
                    ::kill(child.pid, SIGTERM);
            }
            for (Child &child : children) {
                if (child.pid > 0) {
                    ::waitpid(child.pid, nullptr, 0);
                    child.pid = -1;
                }
            }
            std::fprintf(stderr, "supervisor: terminated\n");
            break;
        }

        // Reap any exited children.
        int status = 0;
        pid_t reaped;
        while ((reaped = ::waitpid(-1, &status, WNOHANG)) > 0) {
            for (Child &child : children) {
                if (child.pid != reaped)
                    continue;
                child.pid = -1;
                const bool clean = WIFEXITED(status)
                                   && WEXITSTATUS(status) == 0;
                const std::uint64_t uptime =
                    monotonicMs() - child.startedAtMs;
                if (child.retiring) {
                    // A drained worker exits on its own after acking
                    // the committed Left state; either way the slot is
                    // done — never respawn it.
                    child.finished = true;
                    std::fprintf(stderr,
                                 "supervisor: role %u drained "
                                 "(status %d)\n",
                                 child.role, status);
                    break;
                }
                if (clean && args.periods != nullptr) {
                    child.finished = true;
                    std::fprintf(stderr,
                                 "supervisor: role %u completed\n",
                                 child.role);
                    break;
                }
                // Crash (or an unexpected exit in daemon mode): plan a
                // restart with exponential backoff. A long, healthy
                // uptime resets the backoff first.
                if (uptime
                    >= static_cast<std::uint64_t>(
                           cfg.backoffResetAfterMs)) {
                    child.backoffMs = cfg.backoffInitialMs;
                }
                ++child.restarts;
                if (cfg.maxRestarts > 0
                    && child.restarts > cfg.maxRestarts) {
                    child.abandoned = true;
                    std::fprintf(stderr,
                                 "supervisor: role %u exceeded %d "
                                 "restarts; abandoned\n",
                                 child.role, cfg.maxRestarts);
                    exit_code = 1;
                    break;
                }
                child.respawnAtMs =
                    monotonicMs()
                    + static_cast<std::uint64_t>(child.backoffMs);
                std::fprintf(stderr,
                             "supervisor: role %u exited (status %d) "
                             "after %llu ms; restart in %.0f ms\n",
                             child.role, status,
                             static_cast<unsigned long long>(uptime),
                             child.backoffMs);
                child.backoffMs = std::min(child.backoffMs * 2.0,
                                           cfg.backoffMaxMs);
                break;
            }
        }

        // Respawn children whose backoff has elapsed.
        const std::uint64_t now = monotonicMs();
        for (Child &child : children) {
            if (child.pid < 0 && !child.finished && !child.abandoned
                && child.respawnAtMs != 0 && now >= child.respawnAtMs) {
                spawn(child, args);
            }
        }

        // Done when nobody is left to supervise. Absent slots do not
        // count — they have no process until a reload brings them in.
        bool anything_left = false;
        for (const Child &child : children) {
            if (child.pid > 0
                || (!child.finished && !child.abandoned
                    && !child.absent))
                anything_left = true;
        }
        if (!anything_left) {
            std::fprintf(stderr, "supervisor: all workers done\n");
            break;
        }

        ::usleep(20 * 1000);
    }
    return exit_code;
}
