/**
 * @file
 * capmaestro_trace — inspect control-period traces written by
 * `capmaestro_run --telemetry-out` (trace.jsonl).
 *
 * Usage:
 *   capmaestro_trace <trace.jsonl> [options]
 *
 * Options:
 *   --period=N     only the trace of control period N
 *   --name=SUBSTR  only spans whose name contains SUBSTR
 *   --min-us=X     only spans that lasted at least X microseconds
 *   --summary      one line per period (no spans)
 *
 * Output is one block per period: the period header (index, simulated
 * time, wall-clock milliseconds, period attributes), then the span tree
 * indented by parentage, each span with its duration and attributes.
 * Filters drop spans but keep period headers, so `--name=spo` shows at
 * a glance which periods ran an SPO round.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "util/json.hh"
#include "util/logging.hh"

using namespace capmaestro;

namespace {

const char *
flagValue(int argc, char **argv, const char *name)
{
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 2; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return argv[i] + prefix.size();
    }
    return nullptr;
}

bool
hasFlag(int argc, char **argv, const char *name)
{
    const std::string flag = std::string("--") + name;
    for (int i = 2; i < argc; ++i) {
        if (flag == argv[i])
            return true;
    }
    return false;
}

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: capmaestro_trace <trace.jsonl> [--period=N] "
                 "[--name=SUBSTR]\n"
                 "                        [--min-us=X] [--summary]\n");
    std::exit(2);
}

/** One span as decoded from a trace line. */
struct Span
{
    std::int64_t id = 0;
    std::int64_t parent = -1;
    std::string name;
    double t0us = 0.0;
    double t1us = 0.0;
    std::string attrs; // pre-rendered "k=v k=v" suffix
};

std::string
renderAttrs(const util::Json *attrs)
{
    if (attrs == nullptr || !attrs->isObject())
        return "";
    std::string out;
    char buf[64];
    for (const auto &[key, value] : attrs->asObject()) {
        out += "  ";
        out += key;
        out += '=';
        if (value.isNumber()) {
            std::snprintf(buf, sizeof(buf), "%.6g", value.asNumber());
            out += buf;
        } else if (value.isString()) {
            out += value.asString();
        } else {
            out += util::serializeJson(value, 0);
        }
    }
    return out;
}

void
printSpanTree(const std::vector<Span> &spans, std::int64_t parent,
              int depth, const std::string &name_filter, double min_us)
{
    for (const Span &span : spans) {
        if (span.parent != parent)
            continue;
        const double dur = span.t1us - span.t0us;
        const bool keep =
            (name_filter.empty()
             || span.name.find(name_filter) != std::string::npos)
            && dur >= min_us;
        if (keep) {
            std::printf("  %*s%-*s %9.1f us%s\n", depth * 2, "",
                        24 - depth * 2, span.name.c_str(), dur,
                        span.attrs.c_str());
        }
        // Children stay visible even when the parent is filtered out:
        // the tree is for orientation, the filter for relevance.
        printSpanTree(spans, span.id, depth + 1, name_filter, min_us);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || argv[1][0] == '-')
        usage();

    std::ifstream in(argv[1]);
    if (!in)
        util::fatal("cannot read %s", argv[1]);

    const char *period_arg = flagValue(argc, argv, "period");
    const long long only_period =
        period_arg ? std::atoll(period_arg) : -1;
    const char *name_arg = flagValue(argc, argv, "name");
    const std::string name_filter = name_arg ? name_arg : "";
    const char *min_arg = flagValue(argc, argv, "min-us");
    const double min_us = min_arg ? std::atof(min_arg) : 0.0;
    const bool summary = hasFlag(argc, argv, "summary");

    std::size_t shown = 0;
    std::string line;
    for (std::size_t lineno = 1; std::getline(in, line); ++lineno) {
        if (line.empty())
            continue;
        const util::Json trace = util::parseJson(
            line, std::string(argv[1]) + ":" + std::to_string(lineno));
        const auto period =
            static_cast<long long>(trace.numberOr("period", -1));
        if (only_period >= 0 && period != only_period)
            continue;

        const double wall_ms = trace.numberOr("wallMs", 0.0);
        const util::Json *sim_time = trace.find("simTime");
        const util::Json *spans_json = trace.find("spans");
        const std::size_t span_count =
            spans_json && spans_json->isArray()
                ? spans_json->asArray().size()
                : 0;
        if (sim_time != nullptr) {
            std::printf("period %lld  t=%.0fs  wall=%.3fms  spans=%zu%s\n",
                        period, sim_time->asNumber(), wall_ms, span_count,
                        renderAttrs(trace.find("attrs")).c_str());
        } else {
            std::printf("period %lld  wall=%.3fms  spans=%zu%s\n", period,
                        wall_ms, span_count,
                        renderAttrs(trace.find("attrs")).c_str());
        }
        ++shown;
        if (summary)
            continue;

        std::vector<Span> spans;
        if (spans_json != nullptr && spans_json->isArray()) {
            for (const util::Json &js : spans_json->asArray()) {
                Span span;
                span.id =
                    static_cast<std::int64_t>(js.numberOr("id", -1));
                span.parent =
                    static_cast<std::int64_t>(js.numberOr("parent", -1));
                span.name = js.stringOr("name", "?");
                span.t0us = js.numberOr("t0us", 0.0);
                span.t1us = js.numberOr("t1us", 0.0);
                span.attrs = renderAttrs(js.find("attrs"));
                spans.push_back(std::move(span));
            }
        }
        printSpanTree(spans, -1, 0, name_filter, min_us);
    }

    if (shown == 0 && only_period >= 0)
        util::fatal("no trace for period %lld in %s", only_period,
                    argv[1]);
    return 0;
}
