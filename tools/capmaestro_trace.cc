/**
 * @file
 * capmaestro_trace — inspect control-period traces written by
 * `capmaestro_run --telemetry-out` or `capmaestro_worker
 * --telemetry-out` (trace.jsonl).
 *
 * Usage:
 *   capmaestro_trace <trace.jsonl> [options]
 *   capmaestro_trace --stitch <a/trace.jsonl> <b/trace.jsonl>.. [opts]
 *
 * Options:
 *   --period=N     only the trace of control period N (stitch: epoch N)
 *   --name=SUBSTR  only spans whose name contains SUBSTR
 *   --min-us=X     only spans that lasted at least X microseconds
 *   --summary      one line per period (no spans)
 *
 * Single-file output is one block per period: the period header (index,
 * simulated time, wall-clock milliseconds, period attributes), then the
 * span tree indented by parentage, each span with its duration and
 * attributes — including the PR 7/8 distributed spans (gather, down,
 * leaf_budget_wait, hop) and the catchUp period attribute stamped by
 * fast-forwarding hosts. Filters drop spans but keep period headers, so
 * `--name=spo` shows at a glance which periods ran an SPO round.
 *
 * --stitch joins the trace files of a multi-process deployment into
 * one cross-process view per control period: period records from every
 * file are matched on their epoch/traceId period attributes (stamped
 * when the deployment runs with telemetry attached; the same 16-bit
 * traceId travels in the wire-v5 frame headers), processes are listed
 * bottom-up (racks/leaves, aggregator tiers, root), and each process's
 * received hops — Metrics, Summary, Budget, SubBudget, heartbeats —
 * are shown with their measured wire latency so a period's end-to-end
 * path can be read top to bottom. With --summary, one line per epoch.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "util/json.hh"
#include "util/logging.hh"

using namespace capmaestro;

namespace {

const char *
flagValue(int argc, char **argv, const char *name)
{
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return argv[i] + prefix.size();
    }
    return nullptr;
}

bool
hasFlag(int argc, char **argv, const char *name)
{
    const std::string flag = std::string("--") + name;
    for (int i = 1; i < argc; ++i) {
        if (flag == argv[i])
            return true;
    }
    return false;
}

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: capmaestro_trace <trace.jsonl> [--period=N] "
                 "[--name=SUBSTR]\n"
                 "                        [--min-us=X] [--summary]\n"
                 "       capmaestro_trace --stitch <trace.jsonl>... "
                 "[--period=N] [--summary]\n");
    std::exit(2);
}

/** One span as decoded from a trace line. */
struct Span
{
    std::int64_t id = 0;
    std::int64_t parent = -1;
    std::string name;
    double t0us = 0.0;
    double t1us = 0.0;
    std::string attrs; // pre-rendered "k=v k=v" suffix
};

std::string
renderAttrs(const util::Json *attrs)
{
    if (attrs == nullptr || !attrs->isObject())
        return "";
    std::string out;
    char buf[64];
    for (const auto &[key, value] : attrs->asObject()) {
        out += "  ";
        out += key;
        out += '=';
        if (value.isNumber()) {
            std::snprintf(buf, sizeof(buf), "%.6g", value.asNumber());
            out += buf;
        } else if (value.isString()) {
            out += value.asString();
        } else {
            out += util::serializeJson(value, 0);
        }
    }
    return out;
}

void
printSpanTree(const std::vector<Span> &spans, std::int64_t parent,
              int depth, const std::string &name_filter, double min_us)
{
    for (const Span &span : spans) {
        if (span.parent != parent)
            continue;
        const double dur = span.t1us - span.t0us;
        const bool keep =
            (name_filter.empty()
             || span.name.find(name_filter) != std::string::npos)
            && dur >= min_us;
        if (keep) {
            std::printf("  %*s%-*s %9.1f us%s\n", depth * 2, "",
                        24 - depth * 2, span.name.c_str(), dur,
                        span.attrs.c_str());
        }
        // Children stay visible even when the parent is filtered out:
        // the tree is for orientation, the filter for relevance.
        printSpanTree(spans, span.id, depth + 1, name_filter, min_us);
    }
}

/** One received hop group inside a process's period: same wire kind
 *  and sending tier, latencies aggregated. */
struct HopGroup
{
    std::size_t count = 0;
    double minMs = 0.0;
    double maxMs = 0.0;
    double sumMs = 0.0;
};

/** One process's view of one control period, as read for --stitch. */
struct StitchPeriod
{
    std::string role;
    std::string file;
    long long traceId = -1;
    double wallMs = 0.0;
    std::size_t spanCount = 0;
    bool catchUp = false;
    /** (hop kind, from_tier) -> latency aggregate. */
    std::map<std::pair<std::string, std::string>, HopGroup> hops;
};

/**
 * Bottom-up ordering for the stitched view: leaves first, aggregator
 * tiers in ascending height, the root/room last — so a block reads in
 * the direction the control period flows upward.
 */
int
roleRank(const std::string &role)
{
    if (role.rfind("rack", 0) == 0)
        return 0;
    if (role.rfind("agg", 0) == 0)
        return 1 + std::atoi(role.c_str() + 3);
    return 1000000; // room / root / host rollups
}

int
runStitch(const std::vector<std::string> &files, long long only_epoch,
          bool summary)
{
    // epoch -> every process's record of that period, in file order.
    std::map<long long, std::vector<StitchPeriod>> epochs;
    for (const std::string &file : files) {
        std::ifstream in(file);
        if (!in)
            util::fatal("cannot read %s", file.c_str());
        std::string line;
        for (std::size_t lineno = 1; std::getline(in, line);
             ++lineno) {
            if (line.empty())
                continue;
            const util::Json trace = util::parseJson(
                line, file + ":" + std::to_string(lineno));
            const util::Json *attrs = trace.find("attrs");
            // The epoch attribute is what lines processes up; without
            // it (single-process sim traces) fall back to the period
            // index so stitch still works on one file.
            const long long epoch = static_cast<long long>(
                attrs ? attrs->numberOr(
                            "epoch", trace.numberOr("period", -1))
                      : trace.numberOr("period", -1));
            if (only_epoch >= 0 && epoch != only_epoch)
                continue;
            StitchPeriod period;
            period.file = file;
            period.role = attrs ? attrs->stringOr("role", "?") : "?";
            period.traceId = static_cast<long long>(
                attrs ? attrs->numberOr("traceId", -1) : -1);
            period.catchUp =
                attrs && attrs->numberOr("catchUp", 0.0) != 0.0;
            period.wallMs = trace.numberOr("wallMs", 0.0);
            const util::Json *spans = trace.find("spans");
            if (spans != nullptr && spans->isArray()) {
                period.spanCount = spans->asArray().size();
                for (const util::Json &js : spans->asArray()) {
                    if (js.stringOr("name", "") != "hop")
                        continue;
                    const util::Json *sa = js.find("attrs");
                    if (sa == nullptr)
                        continue;
                    const double ms = sa->numberOr("latencyMs", 0.0);
                    auto &group =
                        period.hops[{sa->stringOr("kind", "?"),
                                     sa->stringOr("from_tier", "?")}];
                    if (group.count == 0) {
                        group.minMs = ms;
                        group.maxMs = ms;
                    }
                    ++group.count;
                    group.minMs = std::min(group.minMs, ms);
                    group.maxMs = std::max(group.maxMs, ms);
                    group.sumMs += ms;
                }
            }
            epochs[epoch].push_back(std::move(period));
        }
    }
    if (epochs.empty()) {
        if (only_epoch >= 0)
            util::fatal("no trace for epoch %lld in any input",
                        only_epoch);
        std::fprintf(stderr, "capmaestro_trace: no periods found\n");
        return 1;
    }

    for (auto &[epoch, records] : epochs) {
        std::stable_sort(records.begin(), records.end(),
                         [](const StitchPeriod &a,
                            const StitchPeriod &b) {
                             return roleRank(a.role)
                                    < roleRank(b.role);
                         });
        long long trace_id = -1;
        std::size_t hop_count = 0;
        double worst_hop = 0.0;
        bool catch_up = false;
        for (const StitchPeriod &record : records) {
            if (record.traceId >= 0)
                trace_id = record.traceId;
            catch_up = catch_up || record.catchUp;
            for (const auto &[key, group] : record.hops) {
                hop_count += group.count;
                worst_hop = std::max(worst_hop, group.maxMs);
            }
        }
        if (summary) {
            std::printf("epoch %lld  trace=0x%04llx  processes=%zu  "
                        "hops=%zu  worst-hop=%.3fms%s\n",
                        epoch,
                        static_cast<unsigned long long>(
                            trace_id >= 0 ? trace_id : 0),
                        records.size(), hop_count, worst_hop,
                        catch_up ? "  [catch-up]" : "");
            continue;
        }
        std::printf("epoch %lld  trace=0x%04llx  processes=%zu%s\n",
                    epoch,
                    static_cast<unsigned long long>(
                        trace_id >= 0 ? trace_id : 0),
                    records.size(),
                    catch_up ? "  [catch-up]" : "");
        for (const StitchPeriod &record : records) {
            std::printf("  %-8s wall=%.3fms  spans=%zu%s\n",
                        record.role.c_str(), record.wallMs,
                        record.spanCount,
                        record.catchUp ? "  [catch-up]" : "");
            for (const auto &[key, group] : record.hops) {
                const auto &[kind, from_tier] = key;
                std::printf("    recv %-10s from tier %-4s x%-3zu  "
                            "%.3f/%.3f/%.3f ms (min/mean/max)\n",
                            kind.c_str(), from_tier.c_str(),
                            group.count, group.minMs,
                            group.sumMs
                                / static_cast<double>(group.count),
                            group.maxMs);
            }
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--", 2) != 0)
            files.emplace_back(argv[i]);
    }
    if (files.empty())
        usage();

    const char *period_arg_early = flagValue(argc, argv, "period");
    if (hasFlag(argc, argv, "stitch")) {
        return runStitch(
            files,
            period_arg_early ? std::atoll(period_arg_early) : -1,
            hasFlag(argc, argv, "summary"));
    }
    if (files.size() != 1)
        usage();

    std::ifstream in(files[0]);
    if (!in)
        util::fatal("cannot read %s", files[0].c_str());

    const char *period_arg = flagValue(argc, argv, "period");
    const long long only_period =
        period_arg ? std::atoll(period_arg) : -1;
    const char *name_arg = flagValue(argc, argv, "name");
    const std::string name_filter = name_arg ? name_arg : "";
    const char *min_arg = flagValue(argc, argv, "min-us");
    const double min_us = min_arg ? std::atof(min_arg) : 0.0;
    const bool summary = hasFlag(argc, argv, "summary");

    std::size_t shown = 0;
    std::string line;
    for (std::size_t lineno = 1; std::getline(in, line); ++lineno) {
        if (line.empty())
            continue;
        const util::Json trace = util::parseJson(
            line, files[0] + ":" + std::to_string(lineno));
        const auto period =
            static_cast<long long>(trace.numberOr("period", -1));
        if (only_period >= 0 && period != only_period)
            continue;

        const double wall_ms = trace.numberOr("wallMs", 0.0);
        const util::Json *sim_time = trace.find("simTime");
        const util::Json *spans_json = trace.find("spans");
        const std::size_t span_count =
            spans_json && spans_json->isArray()
                ? spans_json->asArray().size()
                : 0;
        if (sim_time != nullptr) {
            std::printf("period %lld  t=%.0fs  wall=%.3fms  spans=%zu%s\n",
                        period, sim_time->asNumber(), wall_ms, span_count,
                        renderAttrs(trace.find("attrs")).c_str());
        } else {
            std::printf("period %lld  wall=%.3fms  spans=%zu%s\n", period,
                        wall_ms, span_count,
                        renderAttrs(trace.find("attrs")).c_str());
        }
        ++shown;
        if (summary)
            continue;

        std::vector<Span> spans;
        if (spans_json != nullptr && spans_json->isArray()) {
            for (const util::Json &js : spans_json->asArray()) {
                Span span;
                span.id =
                    static_cast<std::int64_t>(js.numberOr("id", -1));
                span.parent =
                    static_cast<std::int64_t>(js.numberOr("parent", -1));
                span.name = js.stringOr("name", "?");
                span.t0us = js.numberOr("t0us", 0.0);
                span.t1us = js.numberOr("t1us", 0.0);
                span.attrs = renderAttrs(js.find("attrs"));
                spans.push_back(std::move(span));
            }
        }
        printSpanTree(spans, -1, 0, name_filter, min_us);
    }

    if (shown == 0 && only_period >= 0)
        util::fatal("no trace for period %lld in %s", only_period,
                    files[0].c_str());
    return 0;
}
