/**
 * @file
 * capmaestro_worker — one process of the multi-process control plane
 * (docs/distributed.md quickstart). Every worker loads the same
 * scenario and peer table; the role selects which endpoint this
 * process drives: rack index 0..N-1, then any aggregator tiers
 * bottom-up, the root (room) last (see core::TreePlan). Alternatively
 * --process=K hosts *every* endpoint the peer table's "processes" map
 * assigns to process K inside one rt::WorkerHost event loop — the
 * deployment shape for deep trees, where one box serves hundreds of
 * subtrees off a single epoll sweep.
 *
 * Usage:
 *   capmaestro_worker <config.json> --peers=peers.json --role=N
 *                     [options]
 *   capmaestro_worker <config.json> --peers=peers.json --process=K
 *                     [options]
 *   capmaestro_worker <config.json> --print-peers-template
 *                     [--port-base=P] [--period-ms=MS]
 *                     [--agg-levels=H1,H2,..] [--processes=K]
 *
 * Options:
 *   --peers=FILE          shared peer table (see config::WorkerPeers)
 *   --role=N              endpoint to drive (rack index, aggregator
 *                         endpoint, or the root endpoint for the room)
 *   --process=K           host every endpoint the peer table assigns
 *                         to process K (mutually exclusive with
 *                         --role; requires a peers file whose
 *                         "processes" map covers the plan)
 *   --periods=N           stop after N control periods (default: run
 *                         until SIGTERM/SIGINT)
 *   --seed=N              sensor-noise seed (default 1; give every
 *                         worker the same seed)
 *   --telemetry-out=DIR   write DIR/metrics.prom + DIR/metrics.jsonl,
 *                         DIR/trace.jsonl (per-period span traces,
 *                         stitchable across processes with
 *                         capmaestro_trace --stitch), and
 *                         DIR/events.jsonl (degraded-mode decisions,
 *                         timestamps are epochs) on exit
 *   --http-port=P         serve live /metrics, /healthz, and /tracez
 *                         on 127.0.0.1:P (0 = ephemeral; the bound
 *                         port is printed on stderr). Defaults to the
 *                         peers file's observability.httpPortBase +
 *                         role (or + process) when that is set
 *   --shadow              non-root roles: boot as a late joiner with
 *                         an empty membership replica — every period
 *                         rides the Pcap_min clamp until the root's
 *                         MembershipDelta broadcast shows this worker
 *                         Live (see docs/distributed.md, "Online
 *                         elasticity")
 *   --state-dir=DIR       room only: persist the latest checkpoint
 *                         per rack under DIR (and reload any left by
 *                         a previous room instance), so a
 *                         supervisor-restarted room can still re-home
 *                         racks that died while it was down
 *   --print-peers-template  print a ready-to-use peers.json for this
 *                         scenario (originMs = now) and exit
 *   --port-base=P         first UDP port for the template (default
 *                         19870; endpoint e gets port P+e). P=0 probes
 *                         a free ephemeral port per endpoint instead —
 *                         the collision-proof choice for test scripts
 *   --period-ms=MS        wall-clock control period for the template
 *                         (default 1000)
 *   --agg-levels=H1,H2    aggregation levels for the template: cut
 *                         heights above the edge level, ascending
 *                         (e.g. --agg-levels=1 for a depth-3 tree);
 *                         the template then covers every plan worker
 *                         and records the levels in "aggLevels"
 *   --processes=K         spread the template's workers over K host
 *                         processes: leaves in contiguous chunks,
 *                         each aggregator co-located with its first
 *                         child (subtree locality), written to the
 *                         "processes" map for --process=K hosting
 *   --http-port-base=B    record observability.httpPortBase=B in the
 *                         template, turning on the per-process scrape
 *                         endpoints for every worker started from it
 *
 * On SIGTERM/SIGINT the worker finishes nothing: it exits its period
 * loop at the next stop check (≤ ~25 ms) and reports. Exit status 0
 * when the requested periods ran (or a signal stopped the loop).
 *
 * On SIGHUP the root worker re-reads the peers file at the next period
 * boundary and applies its "membership" block (join/drain
 * announcements); non-root --role workers ignore the signal and
 * --process hosts explicitly discard it (host mode has no reload
 * plane). A drained worker exits its loop on its own once it has
 * acked the committed Left state.
 */

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

#include "config/loader.hh"
#include "core/tree_plan.hh"
#include "rt/host.hh"
#include "rt/worker_runtime.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace.hh"
#include "util/logging.hh"

using namespace capmaestro;

namespace {

rt::WorkerRuntime *g_runtime = nullptr;
rt::WorkerHost *g_host = nullptr;

extern "C" void
onSignal(int)
{
    // async-signal-safe: one atomic store either way
    if (g_runtime != nullptr)
        g_runtime->requestStop();
    if (g_host != nullptr)
        g_host->requestStop();
}

extern "C" void
onReload(int)
{
    // async-signal-safe: one atomic store; the period loop runs the
    // reload handler at its next top-of-period check
    if (g_runtime != nullptr)
        g_runtime->requestReload();
}

const char *
flagValue(int argc, char **argv, const char *name)
{
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 2; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return argv[i] + prefix.size();
    }
    return nullptr;
}

bool
hasFlag(int argc, char **argv, const char *name)
{
    const std::string flag = std::string("--") + name;
    for (int i = 2; i < argc; ++i) {
        if (flag == argv[i])
            return true;
    }
    return false;
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: capmaestro_worker <config.json> --peers=FILE --role=N\n"
        "                         [--periods=N] [--seed=N] [--shadow]\n"
        "                         [--telemetry-out=DIR] [--state-dir=DIR]\n"
        "                         [--http-port=P]\n"
        "       capmaestro_worker <config.json> --peers=FILE --process=K\n"
        "                         [--periods=N] [--seed=N]\n"
        "                         [--telemetry-out=DIR] [--http-port=P]\n"
        "       capmaestro_worker <config.json> --print-peers-template\n"
        "                         [--port-base=P] [--period-ms=MS]\n"
        "                         [--agg-levels=H1,H2,..] "
        "[--processes=K]\n"
        "                         [--http-port-base=B]\n");
    std::exit(2);
}

std::uint64_t
unixNowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

/**
 * Probe @p count free ephemeral UDP ports on 127.0.0.1. All probe
 * sockets stay open until every port is allocated, so the kernel
 * cannot hand the same port out twice within one probe; the ports are
 * only *likely* free afterwards (another process may grab one before
 * the workers bind), which is exactly the collision risk a fixed
 * port-base scheme has constantly and this one has for a few
 * milliseconds.
 */
std::vector<std::uint16_t>
probeFreePorts(std::size_t count)
{
    std::vector<int> fds;
    std::vector<std::uint16_t> ports;
    for (std::size_t i = 0; i < count; ++i) {
        const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
        if (fd < 0)
            util::fatal("port probe: socket() failed: %s",
                        std::strerror(errno));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = 0;
        if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            util::fatal("port probe: bind failed: %s",
                        std::strerror(errno));
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                          &len) < 0) {
            util::fatal("port probe: getsockname failed: %s",
                        std::strerror(errno));
        }
        fds.push_back(fd);
        ports.push_back(ntohs(bound.sin_port));
    }
    for (const int fd : fds)
        ::close(fd);
    return ports;
}

/** Parse "1,2,3" into ascending aggregation levels. */
std::vector<std::uint32_t>
parseAggLevels(const char *arg)
{
    std::vector<std::uint32_t> levels;
    if (arg == nullptr)
        return levels;
    const std::string text(arg);
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string part = text.substr(pos, comma - pos);
        if (part.empty())
            util::fatal("--agg-levels: empty entry in '%s'", arg);
        levels.push_back(static_cast<std::uint32_t>(
            std::strtoul(part.c_str(), nullptr, 10)));
        pos = comma + 1;
    }
    return levels;
}

int
printPeersTemplate(const config::LoadedScenario &scenario, int argc,
                   char **argv)
{
    const char *base_arg = flagValue(argc, argv, "port-base");
    const int port_base = base_arg ? std::atoi(base_arg) : 19870;
    const char *period_arg = flagValue(argc, argv, "period-ms");
    const double period_ms =
        period_arg ? std::atof(period_arg) : 1000.0;
    const auto agg_levels =
        parseAggLevels(flagValue(argc, argv, "agg-levels"));
    const char *procs_arg = flagValue(argc, argv, "processes");
    const auto processes = static_cast<std::uint32_t>(
        procs_arg ? std::strtoul(procs_arg, nullptr, 10) : 0);
    const char *http_arg = flagValue(argc, argv, "http-port-base");
    const int http_base = http_arg ? std::atoi(http_arg) : 0;

    const auto plan =
        core::TreePlan::build(*scenario.system, agg_levels);
    const std::size_t workers = plan.workers.size();
    const std::size_t racks = plan.leafWorkers;
    const auto probed = port_base == 0
                            ? probeFreePorts(workers)
                            : std::vector<std::uint16_t>{};
    config::WorkerPeers peers;
    peers.periodMs = period_ms;
    peers.originMs = unixNowMs();
    peers.aggLevels = agg_levels;
    if (http_base > 0) {
        peers.observability.httpPortBase =
            static_cast<std::uint16_t>(http_base);
    }
    for (std::size_t e = 0; e < workers; ++e) {
        net::UdpPeer peer;
        peer.host = "127.0.0.1";
        peer.port = port_base == 0
                        ? probed[e]
                        : static_cast<std::uint16_t>(
                              port_base + static_cast<int>(e));
        peers.peers[static_cast<net::Transport::Endpoint>(e)] = peer;
    }
    if (processes > 1) {
        // Leaves in contiguous chunks; every internal worker lands in
        // its first child's process (children have lower endpoints, so
        // a single ascending pass resolves), keeping each aggregator
        // co-located with part of its own subtree.
        for (std::size_t e = 0; e < workers; ++e) {
            const auto ep =
                static_cast<net::Transport::Endpoint>(e);
            if (e < racks) {
                peers.processOf[ep] = static_cast<std::uint32_t>(
                    e * processes / racks);
            } else {
                const auto first_child =
                    static_cast<net::Transport::Endpoint>(
                        plan.workers[e].children.front());
                peers.processOf[ep] = peers.processOf.count(first_child)
                                          ? peers.processOf[first_child]
                                          : 0;
            }
        }
    }
    std::printf("%s\n",
                util::serializeJson(config::workerPeersToJson(peers),
                                    2)
                    .c_str());
    std::fprintf(stderr,
                 "peers template: %zu leaf workers (roles 0..%zu), %zu "
                 "aggregators, room (role %zu), %u tiers",
                 racks, racks - 1, workers - racks - 1,
                 workers - 1, plan.tiers());
    if (port_base == 0)
        std::fprintf(stderr, ", probed ephemeral ports");
    else
        std::fprintf(stderr, ", ports %d..%d", port_base,
                     port_base + static_cast<int>(workers) - 1);
    if (processes > 1)
        std::fprintf(stderr, ", %u host processes", processes);
    std::fprintf(stderr, "\n");
    return 0;
}

/**
 * Resolve the scrape port for one role/process slot: the explicit
 * --http-port flag wins; otherwise the peer table's
 * observability.httpPortBase + slot (when the base is set). Returns
 * -1 when the endpoint stays off.
 */
int
resolveHttpPort(int argc, char **argv,
                const config::WorkerPeers &peers, std::uint32_t slot)
{
    const char *arg = flagValue(argc, argv, "http-port");
    if (arg != nullptr)
        return std::atoi(arg);
    if (peers.observability.httpPortBase != 0)
        return peers.observability.httpPortBase + static_cast<int>(slot);
    return -1;
}

/** Write the on-exit telemetry bundle (--telemetry-out=DIR). */
void
writeTelemetryDir(const char *dir_arg,
                  const telemetry::Registry &registry,
                  const telemetry::PeriodTracer &tracer,
                  const core::EventLog &events_log)
{
    const std::filesystem::path dir(dir_arg);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        util::fatal("cannot create %s: %s", dir_arg,
                    ec.message().c_str());
    std::ofstream prom(dir / "metrics.prom");
    prom << registry.renderPrometheus();
    std::ofstream jsonl(dir / "metrics.jsonl");
    registry.writeJsonl(jsonl);
    std::ofstream trace(dir / "trace.jsonl");
    tracer.writeJsonl(trace);
    std::ofstream events(dir / "events.jsonl");
    events_log.printJsonl(events);
    std::fprintf(stderr,
                 "telemetry: wrote metrics.prom, metrics.jsonl, "
                 "trace.jsonl, events.jsonl to %s\n",
                 dir_arg);
}

/** The --process=K path: host every endpoint assigned to process K. */
int
runHost(config::LoadedScenario scenario,
        const config::WorkerPeers &peers, std::uint32_t process,
        std::uint64_t seed, std::size_t max_periods, int argc,
        char **argv)
{
    rt::WorkerHost host(std::move(scenario), peers, process, seed);
    g_host = &host;
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    // Host mode is membership-replica-only (see rt/host.hh): no reload
    // plane, but the supervisor's broadcast SIGHUP must not kill us.
    std::signal(SIGHUP, SIG_IGN);

    const char *telemetry_dir = flagValue(argc, argv, "telemetry-out");
    const int http_port = resolveHttpPort(argc, argv, peers, process);
    telemetry::Registry registry;
    telemetry::PeriodTracer tracer;
    if (telemetry_dir != nullptr || http_port >= 0) {
        // Endless daemon scrapes ride a bounded trace window; an
        // on-exit export keeps every period.
        if (telemetry_dir == nullptr)
            tracer.setKeep(peers.observability.tracezKeep);
        host.setTelemetry(&registry, &tracer);
    }
    if (http_port >= 0) {
        const std::uint16_t bound = host.serveHttp(
            static_cast<std::uint16_t>(http_port));
        if (bound == 0) {
            util::fatal("cannot bind http port %d for process %u",
                        http_port, process);
        }
        std::fprintf(stderr,
                     "host process %u http: 127.0.0.1:%u "
                     "(/metrics /healthz /tracez)\n",
                     process, bound);
    }

    std::string eps;
    for (const auto ep : host.endpoints())
        eps += (eps.empty() ? "" : ",") + std::to_string(ep);
    std::fprintf(stderr,
                 "host process %u up: %zu endpoints [%s] of %zu "
                 "workers (%u tiers), period %.0f ms\n",
                 process, host.endpoints().size(), eps.c_str(),
                 host.plan().workers.size(), host.plan().tiers(),
                 peers.periodMs);

    const std::size_t ran = host.runPeriods(max_periods);

    const auto &stats = host.stats();
    const auto &net = host.transport().stats();
    std::fprintf(stderr,
                 "host process %u done: %zu periods, %zu budgets "
                 "applied, %zu defaults, %zu stale, %zu lost, %zu "
                 "summaries, %zu sub-budgets applied, %zu missed, "
                 "%zu catch-ups, %zu orphan + %zu corrupt frames, "
                 "%zu frames / %zu bytes sent\n",
                 process, ran, stats.budgetsApplied,
                 stats.defaultBudgets, stats.staleReuses,
                 stats.metricsLost, stats.summariesSent,
                 stats.subBudgetsApplied, stats.subBudgetsMissed,
                 stats.catchUpPeriods, stats.orphanFrames,
                 stats.corruptFrames, net.framesSent, net.bytesSent);
    host.eventLog().printJsonl(std::cout);

    if (telemetry_dir != nullptr)
        writeTelemetryDir(telemetry_dir, registry, tracer,
                          host.eventLog());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || argv[1][0] == '-')
        usage();

    auto scenario = config::loadScenarioFile(argv[1]);

    if (hasFlag(argc, argv, "print-peers-template"))
        return printPeersTemplate(scenario, argc, argv);

    const char *peers_path = flagValue(argc, argv, "peers");
    const char *role_arg = flagValue(argc, argv, "role");
    const char *process_arg = flagValue(argc, argv, "process");
    if (peers_path == nullptr
        || (role_arg == nullptr) == (process_arg == nullptr))
        usage();

    std::ifstream peers_in(peers_path);
    if (!peers_in)
        util::fatal("cannot read %s", peers_path);
    const std::string peers_text(
        (std::istreambuf_iterator<char>(peers_in)),
        std::istreambuf_iterator<char>());
    const auto peers =
        config::loadWorkerPeers(util::parseJson(peers_text));

    const char *seed_arg = flagValue(argc, argv, "seed");
    const std::uint64_t seed =
        seed_arg ? std::strtoull(seed_arg, nullptr, 10) : 1;
    const char *periods_arg = flagValue(argc, argv, "periods");
    const std::size_t max_periods =
        periods_arg
            ? static_cast<std::size_t>(
                  std::strtoull(periods_arg, nullptr, 10))
            : static_cast<std::size_t>(-1);

    if (process_arg != nullptr) {
        return runHost(std::move(scenario), peers,
                       static_cast<std::uint32_t>(
                           std::strtoul(process_arg, nullptr, 10)),
                       seed, max_periods, argc, argv);
    }

    const auto role =
        static_cast<std::uint32_t>(std::strtoul(role_arg, nullptr, 10));
    rt::WorkerRuntime runtime(std::move(scenario), peers, role, seed);
    g_runtime = &runtime;
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    std::signal(SIGHUP, onReload);

    if (hasFlag(argc, argv, "shadow")) {
        // Late joiner: boot with an empty membership replica so every
        // period rides the Pcap_min clamp until the root's broadcast
        // shows this worker Live (docs/distributed.md quickstart).
        runtime.beginShadow();
    }
    if (runtime.isRoom()) {
        // Boot-time elasticity directives, then the same application
        // again on every SIGHUP-triggered reload of the peers file.
        const std::string peers_file(peers_path);
        const auto apply_membership =
            [&runtime](const config::MembershipConfig &member,
                       bool boot) {
            if (boot) {
                for (const std::uint32_t ep : member.absent)
                    runtime.membershipMarkAbsent(ep);
                for (const std::uint32_t ep : member.join)
                    runtime.membershipMarkAbsent(ep);
            }
            std::size_t joins = 0;
            std::size_t drains = 0;
            for (const std::uint32_t ep : member.join)
                joins += runtime.membershipBeginJoin(ep) ? 1 : 0;
            for (const std::uint32_t ep : member.drain)
                drains += runtime.membershipBeginDrain(ep) ? 1 : 0;
            if (joins + drains > 0 || !boot) {
                std::fprintf(stderr,
                             "membership: %zu join, %zu drain "
                             "announced (generation %u)\n",
                             joins, drains,
                             runtime.membershipGeneration());
            }
        };
        apply_membership(peers.membership, true);
        runtime.setReloadHandler([&runtime, peers_file,
                                  apply_membership] {
            std::ifstream in(peers_file);
            if (!in) {
                std::fprintf(stderr, "reload: cannot read %s\n",
                             peers_file.c_str());
                return;
            }
            const std::string text(
                (std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
            const auto reloaded =
                config::loadWorkerPeers(util::parseJson(text));
            std::fprintf(stderr, "reload: %s\n", peers_file.c_str());
            apply_membership(reloaded.membership, false);
        });
    }

    const char *state_dir = flagValue(argc, argv, "state-dir");
    if (state_dir != nullptr) {
        if (!runtime.isRoom())
            util::fatal("--state-dir only applies to the room worker");
        std::error_code ec;
        std::filesystem::create_directories(state_dir, ec);
        if (ec) {
            util::fatal("cannot create %s: %s", state_dir,
                        ec.message().c_str());
        }
        runtime.setStateDir(state_dir);
    }

    telemetry::Registry registry;
    telemetry::PeriodTracer tracer;
    const char *telemetry_dir = flagValue(argc, argv, "telemetry-out");
    const int http_port = resolveHttpPort(argc, argv, peers, role);
    if (telemetry_dir != nullptr || http_port >= 0) {
        if (telemetry_dir == nullptr)
            tracer.setKeep(peers.observability.tracezKeep);
        runtime.setTelemetry(&registry, &tracer);
    }
    if (http_port >= 0) {
        const std::uint16_t bound = runtime.serveHttp(
            static_cast<std::uint16_t>(http_port));
        if (bound == 0) {
            util::fatal("cannot bind http port %d for role %u",
                        http_port, role);
        }
        std::fprintf(stderr,
                     "worker role %u http: 127.0.0.1:%u "
                     "(/metrics /healthz /tracez)\n",
                     role, bound);
    }

    std::fprintf(stderr,
                 "worker role %u (%s) up: %zu rack workers, %u tiers, "
                 "period %.0f ms, udp port %u\n",
                 role, runtime.roleName().c_str(),
                 runtime.rackCount(), runtime.plan().tiers(),
                 peers.periodMs, runtime.udp()->boundPort(role));

    const std::size_t ran = runtime.runPeriods(max_periods);

    const auto &stats = runtime.stats();
    std::fprintf(stderr,
                 "worker role %u done: %zu periods, %zu budgets "
                 "applied, %zu defaults, %zu stale, %zu lost, %zu "
                 "failovers, %zu retries, %zu orphan + %zu corrupt "
                 "frames, %zu checkpoints, %zu restarts detected, "
                 "%zu rehomes sent, %zu replayed, %zu declined, "
                 "%zu rehomed\n",
                 role, ran, stats.budgetsApplied, stats.defaultBudgets,
                 stats.staleReuses, stats.metricsLost, stats.failovers,
                 stats.retries, stats.orphanFrames,
                 stats.corruptFrames, stats.checkpointsSent,
                 stats.restartsDetected, stats.rehomesSent,
                 stats.rehomesApplied, stats.rehomesDeclined,
                 stats.rehomed);
    runtime.eventLog().printJsonl(std::cout);

    if (telemetry_dir != nullptr)
        writeTelemetryDir(telemetry_dir, registry, tracer,
                          runtime.eventLog());
    return 0;
}
