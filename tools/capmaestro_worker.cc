/**
 * @file
 * capmaestro_worker — one process of the multi-process control plane
 * (docs/distributed.md quickstart). Every worker loads the same
 * scenario and peer table; the role selects which endpoint this
 * process drives: rack index 0..N-1, or N for the room (N = the
 * partitioning rule's rack worker count).
 *
 * Usage:
 *   capmaestro_worker <config.json> --peers=peers.json --role=N
 *                     [options]
 *   capmaestro_worker <config.json> --print-peers-template
 *                     [--port-base=P] [--period-ms=MS]
 *
 * Options:
 *   --peers=FILE          shared peer table (see config::WorkerPeers)
 *   --role=N              endpoint to drive (rack index, or rack
 *                         count for the room worker)
 *   --periods=N           stop after N control periods (default: run
 *                         until SIGTERM/SIGINT)
 *   --seed=N              sensor-noise seed (default 1; give every
 *                         worker the same seed)
 *   --telemetry-out=DIR   write DIR/metrics.prom + DIR/metrics.jsonl
 *                         (transport counters) and DIR/events.jsonl
 *                         (degraded-mode decisions, timestamps are
 *                         epochs) on exit
 *   --state-dir=DIR       room only: persist the latest checkpoint
 *                         per rack under DIR (and reload any left by
 *                         a previous room instance), so a
 *                         supervisor-restarted room can still re-home
 *                         racks that died while it was down
 *   --print-peers-template  print a ready-to-use peers.json for this
 *                         scenario (originMs = now) and exit
 *   --port-base=P         first UDP port for the template (default
 *                         19870; endpoint e gets port P+e). P=0 probes
 *                         a free ephemeral port per endpoint instead —
 *                         the collision-proof choice for test scripts
 *   --period-ms=MS        wall-clock control period for the template
 *                         (default 1000)
 *
 * On SIGTERM/SIGINT the worker finishes nothing: it exits its period
 * loop at the next stop check (≤ ~25 ms) and reports. Exit status 0
 * when the requested periods ran (or a signal stopped the loop).
 */

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

#include "config/loader.hh"
#include "rt/worker_runtime.hh"
#include "telemetry/registry.hh"
#include "util/logging.hh"

using namespace capmaestro;

namespace {

rt::WorkerRuntime *g_runtime = nullptr;

extern "C" void
onSignal(int)
{
    if (g_runtime != nullptr)
        g_runtime->requestStop(); // async-signal-safe: one atomic store
}

const char *
flagValue(int argc, char **argv, const char *name)
{
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 2; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return argv[i] + prefix.size();
    }
    return nullptr;
}

bool
hasFlag(int argc, char **argv, const char *name)
{
    const std::string flag = std::string("--") + name;
    for (int i = 2; i < argc; ++i) {
        if (flag == argv[i])
            return true;
    }
    return false;
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: capmaestro_worker <config.json> --peers=FILE --role=N\n"
        "                         [--periods=N] [--seed=N]\n"
        "                         [--telemetry-out=DIR] [--state-dir=DIR]\n"
        "       capmaestro_worker <config.json> --print-peers-template\n"
        "                         [--port-base=P] [--period-ms=MS]\n");
    std::exit(2);
}

std::uint64_t
unixNowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

/**
 * Probe @p count free ephemeral UDP ports on 127.0.0.1. All probe
 * sockets stay open until every port is allocated, so the kernel
 * cannot hand the same port out twice within one probe; the ports are
 * only *likely* free afterwards (another process may grab one before
 * the workers bind), which is exactly the collision risk a fixed
 * port-base scheme has constantly and this one has for a few
 * milliseconds.
 */
std::vector<std::uint16_t>
probeFreePorts(std::size_t count)
{
    std::vector<int> fds;
    std::vector<std::uint16_t> ports;
    for (std::size_t i = 0; i < count; ++i) {
        const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
        if (fd < 0)
            util::fatal("port probe: socket() failed: %s",
                        std::strerror(errno));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = 0;
        if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            util::fatal("port probe: bind failed: %s",
                        std::strerror(errno));
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                          &len) < 0) {
            util::fatal("port probe: getsockname failed: %s",
                        std::strerror(errno));
        }
        fds.push_back(fd);
        ports.push_back(ntohs(bound.sin_port));
    }
    for (const int fd : fds)
        ::close(fd);
    return ports;
}

int
printPeersTemplate(const config::LoadedScenario &scenario, int argc,
                   char **argv)
{
    const char *base_arg = flagValue(argc, argv, "port-base");
    const int port_base = base_arg ? std::atoi(base_arg) : 19870;
    const char *period_arg = flagValue(argc, argv, "period-ms");
    const double period_ms =
        period_arg ? std::atof(period_arg) : 1000.0;

    const std::size_t racks =
        core::DistributedControlPlane::rackWorkerCountFor(
            *scenario.system);
    const auto probed =
        port_base == 0 ? probeFreePorts(racks + 1)
                       : std::vector<std::uint16_t>{};
    config::WorkerPeers peers;
    peers.periodMs = period_ms;
    peers.originMs = unixNowMs();
    for (std::size_t e = 0; e <= racks; ++e) {
        net::UdpPeer peer;
        peer.host = "127.0.0.1";
        peer.port = port_base == 0
                        ? probed[e]
                        : static_cast<std::uint16_t>(
                              port_base + static_cast<int>(e));
        peers.peers[static_cast<net::Transport::Endpoint>(e)] = peer;
    }
    std::printf("%s\n",
                util::serializeJson(config::workerPeersToJson(peers),
                                    2)
                    .c_str());
    if (port_base == 0) {
        std::fprintf(stderr,
                     "peers template: %zu rack workers (roles 0..%zu) "
                     "+ room (role %zu), probed ephemeral ports\n",
                     racks, racks - 1, racks);
    } else {
        std::fprintf(stderr,
                     "peers template: %zu rack workers (roles 0..%zu) "
                     "+ room (role %zu), ports %d..%d\n",
                     racks, racks - 1, racks, port_base,
                     port_base + static_cast<int>(racks));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || argv[1][0] == '-')
        usage();

    auto scenario = config::loadScenarioFile(argv[1]);

    if (hasFlag(argc, argv, "print-peers-template"))
        return printPeersTemplate(scenario, argc, argv);

    const char *peers_path = flagValue(argc, argv, "peers");
    const char *role_arg = flagValue(argc, argv, "role");
    if (peers_path == nullptr || role_arg == nullptr)
        usage();

    std::ifstream peers_in(peers_path);
    if (!peers_in)
        util::fatal("cannot read %s", peers_path);
    const std::string peers_text(
        (std::istreambuf_iterator<char>(peers_in)),
        std::istreambuf_iterator<char>());
    const auto peers =
        config::loadWorkerPeers(util::parseJson(peers_text));

    const auto role =
        static_cast<std::uint32_t>(std::strtoul(role_arg, nullptr, 10));
    const char *seed_arg = flagValue(argc, argv, "seed");
    const std::uint64_t seed =
        seed_arg ? std::strtoull(seed_arg, nullptr, 10) : 1;
    const char *periods_arg = flagValue(argc, argv, "periods");
    const std::size_t max_periods =
        periods_arg
            ? static_cast<std::size_t>(
                  std::strtoull(periods_arg, nullptr, 10))
            : static_cast<std::size_t>(-1);

    rt::WorkerRuntime runtime(std::move(scenario), peers, role, seed);
    g_runtime = &runtime;
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    const char *state_dir = flagValue(argc, argv, "state-dir");
    if (state_dir != nullptr) {
        if (!runtime.isRoom())
            util::fatal("--state-dir only applies to the room worker");
        std::error_code ec;
        std::filesystem::create_directories(state_dir, ec);
        if (ec) {
            util::fatal("cannot create %s: %s", state_dir,
                        ec.message().c_str());
        }
        runtime.setStateDir(state_dir);
    }

    telemetry::Registry registry;
    const char *telemetry_dir = flagValue(argc, argv, "telemetry-out");
    if (telemetry_dir != nullptr)
        runtime.setTelemetry(&registry);

    std::fprintf(stderr,
                 "worker role %u (%s) up: %zu rack workers, period "
                 "%.0f ms, udp port %u\n",
                 role, runtime.isRoom() ? "room" : "rack",
                 runtime.rackCount(), peers.periodMs,
                 runtime.udp()->boundPort(role));

    const std::size_t ran = runtime.runPeriods(max_periods);

    const auto &stats = runtime.stats();
    std::fprintf(stderr,
                 "worker role %u done: %zu periods, %zu budgets "
                 "applied, %zu defaults, %zu stale, %zu lost, %zu "
                 "failovers, %zu retries, %zu orphan + %zu corrupt "
                 "frames, %zu checkpoints, %zu restarts detected, "
                 "%zu rehomes sent, %zu replayed, %zu declined, "
                 "%zu rehomed\n",
                 role, ran, stats.budgetsApplied, stats.defaultBudgets,
                 stats.staleReuses, stats.metricsLost, stats.failovers,
                 stats.retries, stats.orphanFrames,
                 stats.corruptFrames, stats.checkpointsSent,
                 stats.restartsDetected, stats.rehomesSent,
                 stats.rehomesApplied, stats.rehomesDeclined,
                 stats.rehomed);
    runtime.eventLog().printJsonl(std::cout);

    if (telemetry_dir != nullptr) {
        const std::filesystem::path dir(telemetry_dir);
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        if (ec) {
            util::fatal("cannot create %s: %s", telemetry_dir,
                        ec.message().c_str());
        }
        std::ofstream prom(dir / "metrics.prom");
        prom << registry.renderPrometheus();
        std::ofstream jsonl(dir / "metrics.jsonl");
        registry.writeJsonl(jsonl);
        std::ofstream events(dir / "events.jsonl");
        runtime.eventLog().printJsonl(events);
        std::fprintf(stderr,
                     "telemetry: wrote metrics.prom, metrics.jsonl, "
                     "events.jsonl to %s\n",
                     telemetry_dir);
    }
    return 0;
}
