/**
 * @file
 * Parameterized sweeps (TEST_P) of the UL 489 breaker model: envelope
 * consistency at many overload levels, integrator agreement with the
 * envelope under constant load, and capping-window safety margins.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "topology/breaker.hh"

using namespace capmaestro;
using topo::minTripTimeSeconds;
using topo::TripIntegrator;

namespace {

class OverloadSweep : public testing::TestWithParam<double>
{
};

std::string
overloadName(const testing::TestParamInfo<double> &info)
{
    return "pct" + std::to_string(static_cast<int>(info.param * 100));
}

} // namespace

TEST_P(OverloadSweep, IntegratorMatchesEnvelopeUnderConstantLoad)
{
    // Under a constant overload the integrator must trip at (not
    // before) the envelope time, within one 1 s step.
    const double fraction = GetParam();
    const double envelope = minTripTimeSeconds(fraction);
    ASSERT_NE(envelope, topo::kNeverTrips);

    TripIntegrator ti(1000.0);
    double elapsed = 0.0;
    while (!ti.advance(1000.0 * fraction, 1.0)) {
        elapsed += 1.0;
        ASSERT_LT(elapsed, envelope + 2.0) << "never tripped";
    }
    elapsed += 1.0;
    EXPECT_GE(elapsed, envelope - 1e-9);
    EXPECT_LE(elapsed, envelope + 1.5);
}

TEST_P(OverloadSweep, CappingInsideEnvelopeIsSafe)
{
    // The CapMaestro contract: overload for min(14 s, half the envelope)
    // then fall back within rating — no trip, ever, and substantial
    // margin remains.
    const double fraction = GetParam();
    const double envelope = minTripTimeSeconds(fraction);
    const double overload_window = std::min(14.0, envelope / 2.0);

    TripIntegrator ti(1000.0);
    for (double remaining = overload_window; remaining > 0.0;) {
        const double dt = std::min(0.25, remaining);
        ti.advance(1000.0 * fraction, dt);
        remaining -= dt;
    }
    EXPECT_FALSE(ti.tripped()) << "fraction " << fraction;
    EXPECT_LE(ti.progress(), 0.75);
    for (int s = 0; s < 900; ++s)
        ti.advance(790.0, 1.0);
    EXPECT_FALSE(ti.tripped());
}

INSTANTIATE_TEST_SUITE_P(Envelope, OverloadSweep,
                         testing::Values(1.1, 1.2, 1.35, 1.5, 1.6, 1.8,
                                         2.0, 3.0, 5.0),
                         overloadName);

TEST(BreakerEnvelope, ContinuousAcrossAnchors)
{
    // The log-log interpolation must be continuous (no jumps at the
    // anchor points that could flip safety decisions).
    for (double f = 1.06; f < 11.9; f += 0.01) {
        const double here = minTripTimeSeconds(f);
        const double next = minTripTimeSeconds(f + 0.01);
        EXPECT_LT(std::fabs(std::log(next) - std::log(here)), 0.35)
            << "discontinuity near " << f;
    }
}
