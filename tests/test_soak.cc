/**
 * @file
 * Soak test: a mixed fleet under diurnal + bursty workloads runs for a
 * long simulated stretch with a feed failure, supply failures, and a
 * restoration. Safety invariants are asserted continuously:
 *
 *   - no breaker ever trips,
 *   - every interior breaker's time-averaged load respects its limit
 *     outside the UL 489 settling windows after each event,
 *   - the high-priority servers' throughput floor holds whenever the
 *     infrastructure can possibly honor it.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "sim/closed_loop.hh"
#include "sim/scenario.hh"
#include "util/random.hh"

using namespace capmaestro;
using sim::ClosedLoopSim;

namespace {

/** 2 feeds x 1 phase; 2 CDUs x 4 dual-corded servers. */
std::unique_ptr<topo::PowerSystem>
makeSoakSystem()
{
    auto sys = std::make_unique<topo::PowerSystem>(2);
    for (int feed = 0; feed < 2; ++feed) {
        auto tree = std::make_unique<topo::PowerTree>(
            feed, 0, feed == 0 ? "X" : "Y");
        const auto root = tree->makeRoot(topo::NodeKind::Contractual,
                                         "contract", topo::kUnlimited);
        for (int cdu = 0; cdu < 2; ++cdu) {
            const auto node = tree->addChild(
                root, topo::NodeKind::Cdu, "cdu" + std::to_string(cdu),
                2200.0, 0.8);
            for (int s = 0; s < 4; ++s) {
                const int id = 4 * cdu + s;
                tree->addSupplyPort(node, "s" + std::to_string(id),
                                    {id, feed});
            }
        }
        sys->addTree(std::move(tree));
    }
    return sys;
}

std::vector<sim::ServerSetup>
makeSoakFleet(util::Rng &rng)
{
    std::vector<sim::ServerSetup> servers;
    for (int i = 0; i < 8; ++i) {
        sim::ServerSetup s;
        // Servers 0 and 4 are high priority (one per CDU).
        s.spec = sim::testbedServerSpec(
            "S" + std::to_string(i), (i % 4 == 0) ? 1 : 0,
            rng.uniform(0.4, 0.6));
        switch (i % 3) {
          case 0:
            s.workload = std::make_unique<dev::SineWorkload>(
                0.6, 0.3, 600 + 40 * i);
            break;
          case 1:
            s.workload = std::make_unique<dev::RandomWalkWorkload>(
                0.5, 0.03, rng.fork());
            break;
          default:
            s.workload = std::make_unique<dev::StepWorkload>(
                std::vector<std::pair<Seconds, Fraction>>{
                    {0, 0.3}, {900, 0.95}, {1800, 0.45}});
        }
        servers.push_back(std::move(s));
    }
    return servers;
}

} // namespace

TEST(Soak, HourOfChaosStaysSafe)
{
    util::Rng rng(2030);
    core::ServiceConfig config;
    config.enableSpo = true;

    ClosedLoopSim rig(makeSoakSystem(), makeSoakFleet(rng), config);
    rig.service().refreshRootBudgets(3600.0);

    // Event schedule: PSU failure, feed failure, restoration.
    rig.failSupplyAt(400, 2, 0);
    rig.failFeedAt(1200, 0, 3600.0);
    rig.at(2400, [&rig] {
        rig.system().restoreFeed(0);
        for (std::size_t i = 0; i < 8; ++i) {
            if (i != 2) // server 2's PSU stays broken
                rig.server(i).setSupplyState(0, dev::SupplyState::Ok);
        }
        rig.service().refreshRootBudgets(3600.0);
    });

    rig.run(3600);

    // Invariant 1: no trips, ever.
    EXPECT_FALSE(rig.anyBreakerTripped());

    const auto &rec = rig.recorder();
    // Invariant 2: outside 60 s settling windows after each event, every
    // CDU stays within its derated limit (1760 W).
    const std::vector<std::pair<Seconds, Seconds>> steady{
        {60, 399}, {460, 1199}, {1260, 2399}, {2460, 3599}};
    for (const auto &tree_name : {std::string("X"), std::string("Y")}) {
        for (int cdu = 0; cdu < 2; ++cdu) {
            const std::string series =
                tree_name + ".cdu" + std::to_string(cdu) + ".power";
            for (const auto &[from, to] : steady) {
                EXPECT_LE(rec.max(series, from, to), 1760.0 * 1.02)
                    << series << " in [" << from << "," << to << "]";
            }
        }
    }

    // Invariant 3: the high-priority servers ran essentially uncapped
    // whenever both feeds were up (their CDU groups have low-priority
    // donors to squeeze first).
    for (const std::size_t hp : {0u, 4u}) {
        EXPECT_GT(rec.mean(ClosedLoopSim::serverSeries(hp, "throughput"),
                           100, 1199),
                  0.97)
            << "server " << hp << " (normal operation)";
        EXPECT_GT(rec.mean(ClosedLoopSim::serverSeries(hp, "throughput"),
                           2500, 3599),
                  0.97)
            << "server " << hp << " (after restoration)";
    }

    // Sanity: the run actually exercised capping at some point.
    bool any_throttle = false;
    for (std::size_t i = 0; i < 8; ++i) {
        if (rec.max(ClosedLoopSim::serverSeries(i, "throttle"), 0, 3599)
            > 0.05) {
            any_throttle = true;
        }
    }
    EXPECT_TRUE(any_throttle);
}

TEST(Soak, MessagePlaneHourWithSpoStaysConsistent)
{
    // An hour of message-plane control over a nasty link (drop + dup +
    // reorder + jitter) with SPO enabled and a PSU failure mid-run.
    // The SPO counter identity must hold every single period, both SPO
    // outcomes (commit and fallback) must actually occur, the
    // transport queue must stay bounded at every period boundary (no
    // monotonic growth), and no breaker ever trips.
    util::Rng rng(4097);
    core::ServiceConfig config;
    config.enableSpo = true;
    config.useMessagePlane = true;
    config.transport.dropRate = 0.25;
    config.transport.dupRate = 0.05;
    config.transport.reorderRate = 0.10;
    config.transport.latencyMeanMs = 2.0;
    config.transport.latencyJitterMs = 2.0;
    config.transport.seed = 13;

    ClosedLoopSim rig(makeSoakSystem(), makeSoakFleet(rng), config);
    rig.service().refreshRootBudgets(3600.0);
    rig.failSupplyAt(400, 2, 0);

    std::size_t rounds = 0, attempted = 0, committed = 0, fallbacks = 0;
    std::size_t max_in_flight = 0;
    for (int period = 0; period < 450; ++period) { // 450 x 8 s = 1 h
        rig.run(8);
        const auto &msgs = rig.service().lastStats().messages;
        ASSERT_EQ(msgs.spoTreesAttempted,
                  msgs.spoCommittedTrees + msgs.spoFallbackTrees)
            << "period " << period;
        rounds += msgs.spoRounds;
        attempted += msgs.spoTreesAttempted;
        committed += msgs.spoCommittedTrees;
        fallbacks += msgs.spoFallbackTrees;

        const std::size_t in_flight =
            rig.service().transport()->inFlight();
        max_in_flight = std::max(max_in_flight, in_flight);
        ASSERT_LT(in_flight, 64u) << "period " << period;
    }

    EXPECT_FALSE(rig.anyBreakerTripped());
    EXPECT_GT(rounds, 0u);
    EXPECT_EQ(attempted, committed + fallbacks);
    // Over hundreds of lossy rounds both outcomes are certain (the
    // transport is seeded, so this is deterministic, not flaky).
    EXPECT_GT(committed, 0u);
    EXPECT_GT(fallbacks, 0u);
    EXPECT_LT(max_in_flight, 64u);
}

TEST(Soak, DeterministicAcrossRuns)
{
    auto run_once = [] {
        util::Rng rng(77);
        core::ServiceConfig config;
        ClosedLoopSim rig(makeSoakSystem(), makeSoakFleet(rng), config,
                          /*seed=*/5);
        rig.service().refreshRootBudgets(3600.0);
        rig.failFeedAt(300, 0, 3600.0);
        rig.run(900);
        double checksum = 0.0;
        for (std::size_t i = 0; i < 8; ++i) {
            checksum += rig.recorder().mean(
                ClosedLoopSim::serverSeries(i, "power"), 0, 899);
        }
        return checksum;
    };
    EXPECT_DOUBLE_EQ(run_once(), run_once());
}
