/**
 * @file
 * P-squared streaming quantile tests: exactness on tiny streams,
 * accuracy against exact order statistics on known distributions, and
 * integration with the capacity study's tail reporting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/capacity.hh"
#include "stats/quantile.hh"
#include "util/random.hh"

using capmaestro::stats::P2Quantile;
namespace cm = capmaestro;

namespace {

/** Exact empirical quantile of a sample vector. */
double
exactQuantile(std::vector<double> v, double q)
{
    std::sort(v.begin(), v.end());
    const auto rank = static_cast<std::size_t>(
        std::max(0.0, std::ceil(q * static_cast<double>(v.size())) - 1));
    return v[std::min(rank, v.size() - 1)];
}

} // namespace

TEST(P2Quantile, ExactOnTinyStreams)
{
    P2Quantile q(0.5);
    q.add(10.0);
    EXPECT_DOUBLE_EQ(q.value(), 10.0);
    q.add(20.0);
    q.add(5.0);
    // Median of {5, 10, 20}.
    EXPECT_DOUBLE_EQ(q.value(), 10.0);
}

TEST(P2Quantile, MedianOfUniform)
{
    cm::util::Rng rng(31);
    P2Quantile q(0.5);
    std::vector<double> all;
    for (int i = 0; i < 20000; ++i) {
        const double x = rng.uniform(0.0, 100.0);
        q.add(x);
        all.push_back(x);
    }
    EXPECT_NEAR(q.value(), exactQuantile(all, 0.5), 1.5);
}

TEST(P2Quantile, P99OfExponentialLike)
{
    // Heavy-tailed stream: x = -ln(u) (exponential).
    cm::util::Rng rng(77);
    P2Quantile q(0.99);
    std::vector<double> all;
    for (int i = 0; i < 50000; ++i) {
        const double x = -std::log(rng.uniform(1e-12, 1.0));
        q.add(x);
        all.push_back(x);
    }
    const double exact = exactQuantile(all, 0.99); // ~4.6
    EXPECT_NEAR(q.value(), exact, 0.25);
}

TEST(P2Quantile, ConstantStream)
{
    P2Quantile q(0.95);
    for (int i = 0; i < 1000; ++i)
        q.add(7.0);
    EXPECT_DOUBLE_EQ(q.value(), 7.0);
}

TEST(P2Quantile, MonotoneWithQuantile)
{
    cm::util::Rng rng(5);
    P2Quantile q50(0.5), q90(0.9), q99(0.99);
    for (int i = 0; i < 20000; ++i) {
        const double x = rng.normal(100.0, 15.0);
        q50.add(x);
        q90.add(x);
        q99.add(x);
    }
    EXPECT_LT(q50.value(), q90.value());
    EXPECT_LT(q90.value(), q99.value());
    // Normal sanity: p50 ~ 100, p99 ~ 100 + 2.33 sigma.
    EXPECT_NEAR(q50.value(), 100.0, 1.0);
    EXPECT_NEAR(q99.value(), 134.9, 4.0);
}

TEST(P2Quantile, EmptyIsZero)
{
    P2Quantile q(0.9);
    EXPECT_DOUBLE_EQ(q.value(), 0.0);
    EXPECT_EQ(q.count(), 0u);
}

TEST(P2QuantileDeath, RejectsBadQuantile)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(P2Quantile{1.0}, testing::ExitedWithCode(1),
                "quantile");
    EXPECT_EXIT(P2Quantile{0.0}, testing::ExitedWithCode(1),
                "quantile");
}

TEST(CapacityTail, P99ExceedsMeanUnderPartialCapping)
{
    // Worst case at a density where only some servers are capped: the
    // tail cap ratio must sit well above the mean (the paper's mean
    // criterion hides this minority; we report it).
    cm::sim::CapacityConfig cfg;
    cfg.policy = cm::policy::PolicyKind::GlobalPriority;
    cfg.worstCase = true;
    cfg.trials = 6;
    const auto point = cm::sim::evaluateCapacity(cfg, 10);
    // Mean across all servers is moderate; the capped low-priority
    // servers form a distinctly worse tail.
    EXPECT_GT(point.p99CapRatioAll, point.avgCapRatioAll + 0.05);
    EXPECT_LE(point.p99CapRatioAll, 1.0);
}
