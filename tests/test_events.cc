/**
 * @file
 * Event-log tests: recording/filtering, and end-to-end emission from
 * the closed-loop simulator across a failure scenario.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/events.hh"
#include "sim/scenario.hh"

using namespace capmaestro;
using core::EventKind;
using core::EventLog;

TEST(EventLog, RecordAndFilter)
{
    EventLog log;
    log.record(10, EventKind::FeedFailed, "feed0");
    log.record(12, EventKind::BreakerOverloadBegan, "Y.leftCB", 860.0);
    log.record(25, EventKind::BreakerOverloadCleared, "Y.leftCB", 740.0);
    log.record(30, EventKind::SpoReclaimed, "fleet", 54.0);

    EXPECT_EQ(log.events().size(), 4u);
    EXPECT_EQ(log.count(EventKind::FeedFailed), 1u);
    EXPECT_EQ(log.count(EventKind::BreakerTripped), 0u);
    const auto overloads = log.ofKind(EventKind::BreakerOverloadBegan);
    ASSERT_EQ(overloads.size(), 1u);
    EXPECT_EQ(overloads[0].subject, "Y.leftCB");
    EXPECT_DOUBLE_EQ(overloads[0].value, 860.0);
}

TEST(EventLog, PrintFormat)
{
    EventLog log;
    log.record(42, EventKind::BreakerTripped, "X.cdu3", 990.0);
    std::ostringstream os;
    log.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("t=42"), std::string::npos);
    EXPECT_NE(out.find("breaker-tripped"), std::string::npos);
    EXPECT_NE(out.find("X.cdu3"), std::string::npos);
}

TEST(EventLog, ClearDropsAll)
{
    EventLog log;
    log.record(1, EventKind::SupplyFailed, "S0.ps1");
    log.clear();
    EXPECT_TRUE(log.events().empty());
}

TEST(EventLog, SequenceNumbersAreMonotonic)
{
    EventLog log;
    log.record(5, EventKind::FeedFailed, "feed0");
    log.record(5, EventKind::SupplyFailed, "S0.ps0");
    log.record(9, EventKind::SpoReclaimed, "fleet", 12.0);
    const auto &events = log.events();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].seq, 0u);
    EXPECT_EQ(events[1].seq, 1u);
    EXPECT_EQ(events[2].seq, 2u);
}

TEST(EventLog, SequenceContinuesAcrossClear)
{
    // Numbering survives clear() so a consumer that drains the log
    // periodically can still detect gaps.
    EventLog log;
    log.record(1, EventKind::FeedFailed, "feed0");
    log.record(2, EventKind::FeedRestored, "feed0");
    log.clear();
    log.record(3, EventKind::SupplyFailed, "S1.ps0");
    ASSERT_EQ(log.events().size(), 1u);
    EXPECT_EQ(log.events()[0].seq, 2u);
}

TEST(EventLog, JsonlRendering)
{
    EventLog log;
    log.record(42, EventKind::BreakerTripped, "X.cdu3", 990.0);
    log.record(43, EventKind::SpoReclaimed, "fleet", 54.5);
    std::ostringstream os;
    log.printJsonl(os);
    const std::string out = os.str();
    // One object per line, machine-parsable fields.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
    EXPECT_NE(out.find("\"seq\": 0"), std::string::npos);
    EXPECT_NE(out.find("\"seq\": 1"), std::string::npos);
    EXPECT_NE(out.find("\"kind\": \"breaker-tripped\""),
              std::string::npos);
    EXPECT_NE(out.find("\"subject\": \"X.cdu3\""), std::string::npos);
    EXPECT_NE(out.find("\"time\": 42"), std::string::npos);

    // Every line round-trips through the JSON parser.
    std::istringstream is(out);
    std::string line;
    while (std::getline(is, line)) {
        const auto parsed = util::parseJson(line, "events-test");
        EXPECT_TRUE(parsed.isObject());
        EXPECT_TRUE(parsed.at("kind").isString());
        EXPECT_TRUE(parsed.at("seq").isNumber());
    }
}

TEST(EventLog, KindFromNameRoundTrip)
{
    EXPECT_EQ(core::eventKindFromName("feed-failed"),
              EventKind::FeedFailed);
    EXPECT_EQ(core::eventKindFromName("spo-reclaimed"),
              EventKind::SpoReclaimed);
    EXPECT_EQ(core::eventKindFromName("no-such-kind"), std::nullopt);
}

TEST(EventLog, KindNamesDistinct)
{
    EXPECT_STREQ(core::eventKindName(EventKind::FeedFailed),
                 "feed-failed");
    EXPECT_STREQ(core::eventKindName(EventKind::SpoReclaimed),
                 "spo-reclaimed");
    EXPECT_STREQ(core::eventKindName(EventKind::BudgetInfeasible),
                 "budget-infeasible");
}

TEST(EventLog, EmittedByFeedFailureScenario)
{
    // Feed failure on the Fig. 7 rig: the log must show the failure,
    // an overload window that opens and closes (the surviving left CB
    // carries SB+SC at ~848 W > 750 W until capping bites), and no trip.
    auto rig = sim::makeFig7Rig(/*enable_spo=*/false);
    rig.failFeedAt(60, 0, 1400.0);
    rig.run(200);

    const auto &log = rig.eventLog();
    EXPECT_EQ(log.count(EventKind::FeedFailed), 1u);
    EXPECT_EQ(log.count(EventKind::BreakerTripped), 0u);
    ASSERT_GE(log.count(EventKind::BreakerOverloadBegan), 1u);
    ASSERT_GE(log.count(EventKind::BreakerOverloadCleared), 1u);

    const auto began = log.ofKind(EventKind::BreakerOverloadBegan);
    const auto cleared = log.ofKind(EventKind::BreakerOverloadCleared);
    // The overload window stayed well inside the UL 489 30 s limit.
    EXPECT_LE(cleared.front().time - began.front().time, 30);
    EXPECT_GE(began.front().time, 60);
}

TEST(EventLog, SpoEventsCarryReclaimedWatts)
{
    auto rig = sim::makeFig7Rig(/*enable_spo=*/true);
    rig.run(60);
    const auto spo = rig.eventLog().ofKind(EventKind::SpoReclaimed);
    ASSERT_GE(spo.size(), 1u);
    EXPECT_GT(spo.back().value, 10.0);
}

TEST(EventLog, SupplyFailureEmitted)
{
    auto rig = sim::makeFig7Rig(/*enable_spo=*/false);
    rig.failSupplyAt(40, 2, 0);
    rig.run(80);
    const auto events = rig.eventLog().ofKind(EventKind::SupplyFailed);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].subject, "SC.ps0");
    EXPECT_EQ(events[0].time, 40);
}
