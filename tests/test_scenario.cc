/**
 * @file
 * Closed-loop integration tests reproducing the paper's real-system
 * experiments: Figure 5 (per-supply enforcement), Table 2 / Figure 6
 * (policy comparison), and Table 3 / Figure 7 (stranded power).
 */

#include <gtest/gtest.h>

#include "sim/scenario.hh"

using namespace capmaestro;
using namespace capmaestro::sim;

TEST(Fig5Scenario, EnforcesSteppedSupplyBudgets)
{
    // Figure 5: ample budgets, then PS2 -> 200 W at t=30, then PS1 ->
    // 150 W at t=110. Power settles within 5 % of the binding budget
    // within two control periods.
    auto rig = makeFig5Rig();
    rig.setManualBudgets(0, {450.0, 450.0});
    rig.at(30, [&rig] { rig.setManualBudgets(0, {450.0, 200.0}); });
    rig.at(110, [&rig] { rig.setManualBudgets(0, {150.0, 200.0}); });
    rig.run(200);

    const auto &rec = rig.recorder();
    const auto ps1 = ClosedLoopSim::supplySeries(0, 0, "power");
    const auto ps2 = ClosedLoopSim::supplySeries(0, 1, "power");

    // Phase 1 (t<30): untouched, ~245 W per supply.
    EXPECT_NEAR(rec.mean(ps1, 20, 29), 245.0, 8.0);

    // Phase 2 (t in [62, 108]): PS2 settled at 200 W.
    EXPECT_NEAR(rec.mean(ps2, 62, 108), 200.0, 0.05 * 200.0);

    // Phase 3 (t > 142): PS1 settled at 150 W; PS2 follows downward.
    EXPECT_NEAR(rec.mean(ps1, 142, 199), 150.0, 0.05 * 150.0);
    EXPECT_LT(rec.mean(ps2, 142, 199), 180.0);

    EXPECT_FALSE(rig.anyBreakerTripped());
}

TEST(Fig5Scenario, SettleWithinTwoControlPeriods)
{
    auto rig = makeFig5Rig();
    rig.setManualBudgets(0, {450.0, 450.0});
    rig.at(30, [&rig] { rig.setManualBudgets(0, {450.0, 200.0}); });
    rig.run(120);
    // The budget lands at the t=32 control period; within two further
    // periods (t=48) PS2 stays within 5 % of 200 W.
    const auto ps2 = ClosedLoopSim::supplySeries(0, 1, "power");
    const Seconds settle =
        rig.recorder().settleTime(ps2, 32, 200.0, 0.05 * 200.0);
    ASSERT_GE(settle, 0);
    EXPECT_LE(settle, 48);
}

namespace {

/** Steady-state server budgets from a Fig-6 rig (mean over the tail). */
std::array<double, 4>
steadyBudgets(ClosedLoopSim &rig, Seconds from, Seconds to)
{
    std::array<double, 4> out{};
    for (std::size_t i = 0; i < 4; ++i) {
        out[i] = rig.recorder().mean(
            ClosedLoopSim::supplySeries(i, 0, "budget"), from, to);
    }
    return out;
}

} // namespace

TEST(Fig6Scenario, GlobalPriorityMatchesTable2)
{
    auto rig = makeFig6Rig(policy::PolicyKind::GlobalPriority);
    rig.run(160);
    const auto budgets = steadyBudgets(rig, 100, 159);

    // Paper Table 2 Global Priority: 419/276/275/275 W.
    EXPECT_NEAR(budgets[0], 420.0, 8.0);
    EXPECT_NEAR(budgets[1], 275.0, 8.0);
    EXPECT_NEAR(budgets[2], 275.0, 8.0);
    EXPECT_NEAR(budgets[3], 275.0, 8.0);

    // Figure 6a: SA runs at effectively uncapped throughput.
    EXPECT_GT(rig.recorder().mean(
                  ClosedLoopSim::serverSeries(0, "throughput"), 100, 159),
              0.99);
    EXPECT_FALSE(rig.anyBreakerTripped());
}

TEST(Fig6Scenario, LocalPriorityMatchesTable2)
{
    auto rig = makeFig6Rig(policy::PolicyKind::LocalPriority);
    rig.run(160);
    const auto budgets = steadyBudgets(rig, 100, 159);

    // Paper Table 2 Local Priority: 344/274/314/317 W. SA can only
    // borrow from SB (same CB); the top split stays blind.
    EXPECT_NEAR(budgets[0], 349.0, 9.0);
    EXPECT_NEAR(budgets[1], 270.0, 8.0);
    EXPECT_NEAR(budgets[2], 310.0, 9.0);
    EXPECT_NEAR(budgets[3], 311.0, 9.0);

    // Figure 6a: SA at ~0.87-0.89 of uncapped throughput.
    EXPECT_NEAR(rig.recorder().mean(
                    ClosedLoopSim::serverSeries(0, "throughput"), 100,
                    159),
                0.88, 0.03);
}

TEST(Fig6Scenario, NoPriorityMatchesTable2)
{
    auto rig = makeFig6Rig(policy::PolicyKind::NoPriority);
    rig.run(160);
    const auto budgets = steadyBudgets(rig, 100, 159);

    // Paper Table 2 No Priority: 314/306/311/316 W (proportional split).
    EXPECT_NEAR(budgets[0], 310.0, 9.0);
    EXPECT_NEAR(budgets[1], 308.0, 9.0);
    EXPECT_NEAR(budgets[2], 310.0, 9.0);
    EXPECT_NEAR(budgets[3], 311.0, 9.0);

    // Figure 6a: SA at ~0.82 of uncapped throughput.
    EXPECT_NEAR(rig.recorder().mean(
                    ClosedLoopSim::serverSeries(0, "throughput"), 100,
                    159),
                0.82, 0.03);
}

TEST(Fig6Scenario, BreakerLoadsRespectLimits)
{
    // Figure 6b: power at every CB stays below its limit/budget.
    auto rig = makeFig6Rig(policy::PolicyKind::GlobalPriority);
    rig.run(160);
    const auto &rec = rig.recorder();
    // Allow the pre-settling transient (first two control periods).
    EXPECT_LE(rec.max("feed.topCB.power", 24, 159), 1240.0 * 1.02);
    EXPECT_LE(rec.max("feed.leftCB.power", 24, 159), 750.0 + 1.0);
    EXPECT_LE(rec.max("feed.rightCB.power", 24, 159), 750.0 + 1.0);
    EXPECT_FALSE(rig.anyBreakerTripped());
}

TEST(Fig7Scenario, WithoutSpoStrandsPower)
{
    auto rig = makeFig7Rig(/*enable_spo=*/false);
    rig.run(200);
    const auto &rec = rig.recorder();

    // SB is capped well below demand (Table 3: 346 W budget, 415 W
    // demand) -> throughput ~0.88 (Figure 7b).
    EXPECT_NEAR(rec.mean(ClosedLoopSim::serverSeries(1, "throughput"),
                         120, 199),
                0.89, 0.035);

    // The Y-side feed underuses its 700 W budget (Figure 7c).
    const double y_power =
        rec.mean("Y.topCB.power", 120, 199);
    EXPECT_LT(y_power, 670.0);
    EXPECT_FALSE(rig.anyBreakerTripped());
}

TEST(Fig7Scenario, SpoRestoresSbThroughput)
{
    auto rig = makeFig7Rig(/*enable_spo=*/true);
    rig.run(200);
    const auto &rec = rig.recorder();

    // Figure 7b: with SPO, SB approaches uncapped throughput.
    EXPECT_GT(rec.mean(ClosedLoopSim::serverSeries(1, "throughput"),
                       120, 199),
              0.96);

    // Figure 7c: the Y-side feed consistently uses (nearly) its full
    // 700 W budget.
    EXPECT_GT(rec.mean("Y.topCB.power", 120, 199), 660.0);
    EXPECT_LE(rec.max("Y.topCB.power", 120, 199), 700.0 * 1.02);

    // SC/SD keep the same throughput as without SPO (their power was
    // truly stranded).
    auto rig2 = makeFig7Rig(/*enable_spo=*/false);
    rig2.run(200);
    for (std::size_t i : {2u, 3u}) {
        const double with_spo = rec.mean(
            ClosedLoopSim::serverSeries(i, "throughput"), 120, 199);
        const double without_spo = rig2.recorder().mean(
            ClosedLoopSim::serverSeries(i, "throughput"), 120, 199);
        EXPECT_NEAR(with_spo, without_spo, 0.02) << "server " << i;
    }
    EXPECT_FALSE(rig.anyBreakerTripped());
}

TEST(Fig7Scenario, SpoWorksUnderLocalPriorityToo)
{
    // The paper evaluates SPO under Global Priority; the mechanism is
    // policy-agnostic. Under Local Priority SPO must still move the
    // stranded Y-side watts to SB.
    auto without = sim::makeFig7Rig(false, 1,
                                    policy::PolicyKind::LocalPriority);
    without.run(200);
    auto with = sim::makeFig7Rig(true, 1,
                                 policy::PolicyKind::LocalPriority);
    with.run(200);

    const double before = without.recorder().mean(
        ClosedLoopSim::serverSeries(1, "throughput"), 120, 199);
    const double after = with.recorder().mean(
        ClosedLoopSim::serverSeries(1, "throughput"), 120, 199);
    EXPECT_GT(after, before + 0.03);
    EXPECT_GT(with.service().lastStats().allocation.strandedReclaimed,
              10.0);
    EXPECT_FALSE(with.anyBreakerTripped());
}

TEST(Fig7Scenario, HighPriorityUnaffectedThroughout)
{
    for (bool spo : {false, true}) {
        auto rig = makeFig7Rig(spo);
        rig.run(200);
        EXPECT_GT(rig.recorder().mean(
                      ClosedLoopSim::serverSeries(0, "throughput"), 120,
                      199),
                  0.99)
            << "spo=" << spo;
    }
}

TEST(DynamicShift, RisingHighPriorityDemandPreemptsLowPriority)
{
    // The paper's core promise, exercised dynamically: the high-priority
    // server idles at first (low-priority servers enjoy the slack), then
    // surges. Within a few control periods the budget shifts from the
    // low-priority servers to the high-priority one.
    std::vector<sim::ServerSetup> servers;
    for (int i = 0; i < 4; ++i) {
        sim::ServerSetup s;
        s.spec = sim::testbedServerSpec("S" + std::to_string(i),
                                        i == 0 ? 1 : 0, 1.0, 1);
        if (i == 0) {
            s.workload = std::make_unique<dev::StepWorkload>(
                std::vector<std::pair<Seconds, Fraction>>{{0, 0.1},
                                                          {100, 1.0}});
        } else {
            s.workload = std::make_unique<dev::ConstantWorkload>(
                sim::utilizationForDemand(160.0, 490.0, 430.0));
        }
        servers.push_back(std::move(s));
    }
    core::ServiceConfig config;
    config.enableSpo = false;
    ClosedLoopSim rig(sim::fig2System(), std::move(servers), config);
    rig.setRootBudgets({1240.0});
    rig.run(240);

    const auto &rec = rig.recorder();
    // Phase 1: SA idle, SB enjoys extra budget (well above floor).
    EXPECT_GT(rec.mean(ClosedLoopSim::supplySeries(1, 0, "budget"), 60,
                       99),
              300.0);
    // Phase 2: SA surges to a 490 W demand. The best the 1240 W budget
    // allows is 1240 - 3 x 270 (floors) = 430 W -> throughput ~0.93;
    // the policy must deliver exactly that optimum.
    EXPECT_NEAR(rec.mean(ClosedLoopSim::supplySeries(0, 0, "budget"),
                         160, 239),
                430.0, 8.0);
    EXPECT_GT(rec.mean(ClosedLoopSim::serverSeries(0, "throughput"),
                       160, 239),
              0.92);
    EXPECT_LT(rec.mean(ClosedLoopSim::supplySeries(1, 0, "budget"), 160,
                       239),
              290.0);
    EXPECT_FALSE(rig.anyBreakerTripped());
}

TEST(DynamicShift, RuntimePriorityPromotionShiftsBudget)
{
    // §7 scheduler integration: all four servers start low priority and
    // share the scarce budget evenly; at t=100 a scheduler promotes
    // server 2. Within a few control periods it holds (nearly) its full
    // demand while the others drop toward their floors.
    std::vector<sim::ServerSetup> servers;
    for (int i = 0; i < 4; ++i) {
        sim::ServerSetup s;
        s.spec = sim::testbedServerSpec("S" + std::to_string(i), 0, 1.0,
                                        1);
        s.workload = std::make_unique<dev::ConstantWorkload>(
            sim::utilizationForDemand(160.0, 490.0, 420.0));
        servers.push_back(std::move(s));
    }
    core::ServiceConfig config;
    config.enableSpo = false;
    ClosedLoopSim rig(sim::fig2System(), std::move(servers), config);
    rig.setRootBudgets({1240.0});
    rig.setPriorityAt(100, 2, 1);
    rig.run(240);

    const auto &rec = rig.recorder();
    // Before: even split (~310 W each).
    EXPECT_NEAR(rec.mean(ClosedLoopSim::supplySeries(2, 0, "budget"), 60,
                         99),
                310.0, 10.0);
    // After: the promoted server takes its demand; a CB-mate drops.
    EXPECT_NEAR(rec.mean(ClosedLoopSim::supplySeries(2, 0, "budget"),
                         160, 239),
                420.0, 10.0);
    EXPECT_GT(rec.mean(ClosedLoopSim::serverSeries(2, "throughput"), 160,
                       239),
              0.98);
    EXPECT_LT(rec.mean(ClosedLoopSim::supplySeries(3, 0, "budget"), 160,
                       239),
              290.0);
    EXPECT_FALSE(rig.anyBreakerTripped());
}

TEST(Scenario, UtilizationForDemandInvertsCurve)
{
    const double u = utilizationForDemand(160.0, 490.0, 420.0);
    EXPECT_NEAR(dev::fanPower(160.0, 490.0, u), 420.0, 0.01);
}

TEST(Scenario, TestbedSpecShapes)
{
    const auto single = testbedServerSpec("s", 1, 0.5, 1);
    EXPECT_EQ(single.supplies.size(), 1u);
    EXPECT_EQ(single.priority, 1);
    const auto dual = testbedServerSpec("d", 0, 0.65);
    ASSERT_EQ(dual.supplies.size(), 2u);
    EXPECT_DOUBLE_EQ(dual.supplies[0].loadShare, 0.65);
    EXPECT_DOUBLE_EQ(dual.supplies[1].loadShare, 0.35);
}
