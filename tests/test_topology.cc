/**
 * @file
 * Unit tests for the topology module: breaker trip envelope and integrator,
 * power-tree construction/validation, and the multi-tree power system.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "topology/breaker.hh"
#include "topology/power_system.hh"
#include "topology/power_tree.hh"

namespace ct = capmaestro::topo;

TEST(Breaker, NoTripAtOrBelowRating)
{
    EXPECT_EQ(ct::minTripTimeSeconds(0.5), ct::kNeverTrips);
    EXPECT_EQ(ct::minTripTimeSeconds(1.0), ct::kNeverTrips);
}

TEST(Breaker, PaperAnchor160Percent)
{
    // Paper §2.1 / UL 489: minimum 30 s before tripping at 160 % load.
    EXPECT_NEAR(ct::minTripTimeSeconds(1.60), 30.0, 1e-9);
}

TEST(Breaker, MonotoneDecreasing)
{
    double prev = ct::minTripTimeSeconds(1.01);
    for (double f = 1.05; f < 12.0; f += 0.05) {
        const double t = ct::minTripTimeSeconds(f);
        EXPECT_LE(t, prev + 1e-9) << "at load fraction " << f;
        prev = t;
    }
}

TEST(Breaker, DeepOverloadIsFast)
{
    EXPECT_LT(ct::minTripTimeSeconds(10.0), 1.0);
    EXPECT_GT(ct::minTripTimeSeconds(1.2), 1000.0);
}

TEST(TripIntegrator, TripsAfterEnvelopeTime)
{
    ct::TripIntegrator ti(1000.0);
    // 160 % load: must survive just under 30 s, trip at/after 30 s.
    bool tripped = false;
    for (int s = 0; s < 29; ++s)
        tripped = ti.advance(1600.0, 1.0);
    EXPECT_FALSE(tripped);
    for (int s = 0; s < 3 && !tripped; ++s)
        tripped = ti.advance(1600.0, 1.0);
    EXPECT_TRUE(tripped);
    EXPECT_TRUE(ti.tripped());
}

TEST(TripIntegrator, CapedLoadAvoidsTrip)
{
    // CapMaestro's scenario: 160 % for 14 s (cap settles), then within
    // rating forever; the breaker must never trip.
    ct::TripIntegrator ti(1000.0);
    for (int s = 0; s < 14; ++s)
        ti.advance(1600.0, 1.0);
    EXPECT_FALSE(ti.tripped());
    for (int s = 0; s < 600; ++s)
        ti.advance(800.0, 1.0);
    EXPECT_FALSE(ti.tripped());
    EXPECT_LT(ti.progress(), 0.5);
}

TEST(TripIntegrator, CoolsWhenWithinRating)
{
    ct::TripIntegrator ti(1000.0);
    for (int s = 0; s < 10; ++s)
        ti.advance(1600.0, 1.0);
    const double hot = ti.progress();
    for (int s = 0; s < 120; ++s)
        ti.advance(500.0, 1.0);
    EXPECT_LT(ti.progress(), hot);
}

TEST(TripIntegrator, ResetClearsLatch)
{
    ct::TripIntegrator ti(100.0);
    for (int s = 0; s < 40; ++s)
        ti.advance(160.0, 1.0);
    EXPECT_TRUE(ti.tripped());
    ti.reset();
    EXPECT_FALSE(ti.tripped());
    EXPECT_DOUBLE_EQ(ti.progress(), 0.0);
}

namespace {

/** Build the paper's Figure 2 single-feed tree: top CB over two CBs. */
std::unique_ptr<ct::PowerTree>
makeFig2Tree()
{
    auto tree = std::make_unique<ct::PowerTree>(0, 0, "fig2");
    const auto top =
        tree->makeRoot(ct::NodeKind::Breaker, "topCB", 1400.0);
    const auto left =
        tree->addChild(top, ct::NodeKind::Breaker, "leftCB", 750.0);
    const auto right =
        tree->addChild(top, ct::NodeKind::Breaker, "rightCB", 750.0);
    tree->addSupplyPort(left, "SA.0", {0, 0});
    tree->addSupplyPort(left, "SB.0", {1, 0});
    tree->addSupplyPort(right, "SC.0", {2, 0});
    tree->addSupplyPort(right, "SD.0", {3, 0});
    return tree;
}

} // namespace

TEST(PowerTree, BuildFig2)
{
    auto tree = makeFig2Tree();
    EXPECT_EQ(tree->size(), 7u);
    EXPECT_EQ(tree->validate(), 4u);
    EXPECT_EQ(tree->node(tree->root()).name, "topCB");
    EXPECT_EQ(tree->supplyPorts().size(), 4u);
}

TEST(PowerTree, LimitAppliesDerate)
{
    ct::PowerTree tree(0, 0, "t");
    const auto root =
        tree.makeRoot(ct::NodeKind::Cdu, "cdu", 6900.0, 0.8);
    EXPECT_DOUBLE_EQ(tree.node(root).limit(), 5520.0);
}

TEST(PowerTree, UnlimitedNodes)
{
    ct::PowerTree tree(0, 0, "t");
    const auto root =
        tree.makeRoot(ct::NodeKind::Ats, "ats", ct::kUnlimited);
    EXPECT_EQ(tree.node(root).limit(), ct::kUnlimited);
}

TEST(PowerTree, SuppliesUnderSubtree)
{
    auto tree = makeFig2Tree();
    const auto &top = tree->node(tree->root());
    ASSERT_EQ(top.children.size(), 2u);
    const auto left_supplies = tree->suppliesUnder(top.children[0]);
    ASSERT_EQ(left_supplies.size(), 2u);
    EXPECT_EQ(left_supplies[0].server, 0);
    EXPECT_EQ(left_supplies[1].server, 1);
}

TEST(PowerTree, ForEachVisitsPreorder)
{
    auto tree = makeFig2Tree();
    std::vector<std::string> names;
    tree->forEach([&names](const ct::TopoNode &n) {
        names.push_back(n.name);
    });
    ASSERT_EQ(names.size(), 7u);
    EXPECT_EQ(names[0], "topCB");
    EXPECT_EQ(names[1], "leftCB");
    EXPECT_EQ(names[2], "SA.0");
}

TEST(PowerTreeDeath, DuplicateSupplyRefFailsValidation)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    ct::PowerTree tree(0, 0, "dup");
    const auto root = tree.makeRoot(ct::NodeKind::Breaker, "cb", 100.0);
    tree.addSupplyPort(root, "a", {0, 0});
    tree.addSupplyPort(root, "b", {0, 0});
    EXPECT_EXIT(tree.validate(), testing::ExitedWithCode(1), "duplicate");
}

TEST(PowerTreeDeath, DoubleRoot)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    ct::PowerTree tree(0, 0, "t");
    tree.makeRoot(ct::NodeKind::Breaker, "r", 100.0);
    EXPECT_EXIT(tree.makeRoot(ct::NodeKind::Breaker, "r2", 100.0),
                testing::ExitedWithCode(1), "root already created");
}

TEST(PowerSystem, LivePortsAndFeedFailure)
{
    ct::PowerSystem sys(2);
    {
        auto a = std::make_unique<ct::PowerTree>(0, 0, "feedA");
        const auto root = a->makeRoot(ct::NodeKind::Breaker, "a", 1000.0);
        a->addSupplyPort(root, "s0.0", {0, 0});
        sys.addTree(std::move(a));
    }
    {
        auto b = std::make_unique<ct::PowerTree>(1, 0, "feedB");
        const auto root = b->makeRoot(ct::NodeKind::Breaker, "b", 1000.0);
        b->addSupplyPort(root, "s0.1", {0, 1});
        sys.addTree(std::move(b));
    }
    EXPECT_EQ(sys.validate(), 2u);
    EXPECT_EQ(sys.liveFeeds(), 2);

    auto ports = sys.livePortsOf(0);
    EXPECT_EQ(ports.size(), 2u);

    sys.failFeed(1);
    EXPECT_TRUE(sys.feedFailed(1));
    EXPECT_EQ(sys.liveFeeds(), 1);
    ports = sys.livePortsOf(0);
    ASSERT_EQ(ports.size(), 1u);
    EXPECT_EQ(ports.begin()->first, 0); // only supply 0 (feed A) remains

    sys.restoreFeed(1);
    EXPECT_EQ(sys.livePortsOf(0).size(), 2u);
}

TEST(PowerSystemDeath, CrossTreeDuplicateSupply)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    ct::PowerSystem sys(1);
    auto a = std::make_unique<ct::PowerTree>(0, 0, "t0");
    auto ra = a->makeRoot(ct::NodeKind::Breaker, "a", 100.0);
    a->addSupplyPort(ra, "x", {0, 0});
    sys.addTree(std::move(a));

    auto b = std::make_unique<ct::PowerTree>(0, 1, "t1");
    auto rb = b->makeRoot(ct::NodeKind::Breaker, "b", 100.0);
    b->addSupplyPort(rb, "y", {0, 0});
    EXPECT_EXIT(sys.addTree(std::move(b)), testing::ExitedWithCode(1),
                "multiple trees");
}

TEST(PowerSystem, UnknownServerHasNoPorts)
{
    ct::PowerSystem sys(1);
    auto a = std::make_unique<ct::PowerTree>(0, 0, "t0");
    auto ra = a->makeRoot(ct::NodeKind::Breaker, "a", 100.0);
    a->addSupplyPort(ra, "x", {0, 0});
    sys.addTree(std::move(a));
    EXPECT_TRUE(sys.livePortsOf(42).empty());
}

TEST(NodeKindNames, AllDistinct)
{
    EXPECT_STREQ(ct::nodeKindName(ct::NodeKind::Cdu), "cdu");
    EXPECT_STREQ(ct::nodeKindName(ct::NodeKind::Rpp), "rpp");
    EXPECT_STREQ(ct::nodeKindName(ct::NodeKind::Transformer),
                 "transformer");
    EXPECT_STREQ(ct::nodeKindName(ct::NodeKind::SupplyPort),
                 "supply-port");
}
