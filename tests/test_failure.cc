/**
 * @file
 * Failure-injection tests: power-supply failures mid-run, hot-spare
 * standby under the control loop, and the negative control — without
 * CapMaestro an overloaded breaker trips, with it the load is shed
 * inside the UL 489 window.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/closed_loop.hh"
#include "sim/scenario.hh"

using namespace capmaestro;
using sim::ClosedLoopSim;

namespace {

/** Dual-feed rig with 4 dual-corded servers; left CBs carry s0+s1. */
ClosedLoopSim
makeDualFeedRig(core::ServiceConfig config, double demand = 430.0,
                double branch_cb_rating = 750.0)
{
    std::vector<sim::ServerSetup> servers;
    for (int i = 0; i < 4; ++i) {
        sim::ServerSetup s;
        s.spec = sim::testbedServerSpec("S" + std::to_string(i),
                                        i == 0 ? 1 : 0);
        s.workload = std::make_unique<dev::ConstantWorkload>(
            sim::utilizationForDemand(160.0, 490.0, demand));
        servers.push_back(std::move(s));
    }
    auto sys = std::make_unique<topo::PowerSystem>(2);
    for (int feed = 0; feed < 2; ++feed) {
        auto tree = std::make_unique<topo::PowerTree>(
            feed, 0, feed == 0 ? "X" : "Y");
        const auto top =
            tree->makeRoot(topo::NodeKind::Breaker, "topCB", 1400.0);
        const auto left =
            tree->addChild(top, topo::NodeKind::Breaker, "leftCB",
                           branch_cb_rating);
        const auto right =
            tree->addChild(top, topo::NodeKind::Breaker, "rightCB",
                           branch_cb_rating);
        tree->addSupplyPort(left, "s0", {0, feed});
        tree->addSupplyPort(left, "s1", {1, feed});
        tree->addSupplyPort(right, "s2", {2, feed});
        tree->addSupplyPort(right, "s3", {3, feed});
        sys->addTree(std::move(tree));
    }
    return ClosedLoopSim(std::move(sys), std::move(servers), config);
}

} // namespace

TEST(FailureInjection, WithoutCappingFeedFailureTripsBreaker)
{
    // Negative control: manual mode with no budgets ever applied means
    // no capping. After feed X fails, the Y left CB carries ~980 W
    // (158 % of its 620 W rating) and trips within about a minute.
    core::ServiceConfig config;
    auto rig = makeDualFeedRig(config, /*demand=*/490.0,
                               /*branch_cb_rating=*/620.0);
    rig.setManualMode(true); // no budgets -> servers run uncapped
    rig.failSupplyAt(60, 0, 0);
    rig.failSupplyAt(60, 1, 0);
    rig.failSupplyAt(60, 2, 0);
    rig.failSupplyAt(60, 3, 0);
    rig.at(60, [&rig] { rig.system().failFeed(0); });
    rig.run(600);
    EXPECT_TRUE(rig.anyBreakerTripped());
}

TEST(FailureInjection, WithCappingFeedFailureIsSafe)
{
    // Same failure with CapMaestro active: the overload is shed within
    // the 30 s window and no breaker trips.
    core::ServiceConfig config;
    auto rig = makeDualFeedRig(config, /*demand=*/490.0,
                               /*branch_cb_rating=*/620.0);
    rig.service().refreshRootBudgets(1400.0);
    rig.failFeedAt(60, 0, 1400.0);
    rig.run(600);
    EXPECT_FALSE(rig.anyBreakerTripped());
    // Post-failure steady state respects the left CB limit (within the
    // 1 Hz sensor-noise band the PI loop regulates against).
    EXPECT_LE(rig.recorder().max("Y.leftCB.power", 120, 599),
              620.0 * 1.01);
}

TEST(FailureInjection, SingleSupplyFailureShiftsLoadSafely)
{
    // Only server 0's X-side supply dies; its whole load moves to its
    // Y-side supply. The controller re-learns r-hat and the Y budget
    // follows; nothing trips.
    core::ServiceConfig config;
    auto rig = makeDualFeedRig(config);
    rig.service().refreshRootBudgets(1400.0);
    rig.failSupplyAt(80, 0, 0);
    rig.run(240);

    EXPECT_FALSE(rig.anyBreakerTripped());
    const auto &rec = rig.recorder();
    // X-side supply reads zero after the failure...
    EXPECT_NEAR(rec.mean(ClosedLoopSim::supplySeries(0, 0, "power"),
                         200, 239),
                0.0, 1.0);
    // ...the Y-side supply carries the server's whole draw...
    const double y_power = rec.mean(
        ClosedLoopSim::supplySeries(0, 1, "power"), 200, 239);
    const double total = rec.mean(
        ClosedLoopSim::serverSeries(0, "power"), 200, 239);
    EXPECT_NEAR(y_power, total, 2.0);
    // ...and the Y-side budget follows the full load (r-hat ~ 1).
    EXPECT_GT(rec.mean(ClosedLoopSim::supplySeries(0, 1, "budget"),
                       200, 239),
              0.8 * total);
}

TEST(FailureInjection, StaticSplitStrandsContractualHeadroom)
{
    // With the paper's even per-feed budget split, a PSU failure piles
    // the high-priority server's whole load onto one feed whose 700 W
    // share is mostly consumed by low-priority floors: S0 gets capped
    // even though the *other* feed has ~55 W of unusable headroom.
    core::ServiceConfig config;
    auto rig = makeDualFeedRig(config);
    rig.service().refreshRootBudgets(1400.0);
    rig.failSupplyAt(80, 0, 0); // the high-priority server loses a PSU
    rig.run(240);
    EXPECT_LT(rig.recorder().mean(
                  ClosedLoopSim::serverSeries(0, "throughput"), 180,
                  239),
              0.85);
}

TEST(FailureInjection, AdaptiveFeedBalanceKeepsHighPriorityWhole)
{
    // Extension: re-splitting each phase's contractual budget across
    // feeds by demand moves the stranded headroom to the loaded feed,
    // and the high-priority server rides through the PSU failure.
    core::ServiceConfig config;
    config.adaptiveFeedBalance = true;
    config.totalPerPhaseBudget = 1400.0;
    auto rig = makeDualFeedRig(config);
    rig.service().refreshRootBudgets(1400.0);
    rig.failSupplyAt(80, 0, 0);
    rig.run(240);
    EXPECT_GT(rig.recorder().mean(
                  ClosedLoopSim::serverSeries(0, "throughput"), 180,
                  239),
              0.98);
    EXPECT_FALSE(rig.anyBreakerTripped());
}

TEST(FailureInjection, HotSpareStandbyUnderControlLoop)
{
    // A hot-spare server at light load parks one supply; when the
    // workload surges, the spare wakes and shares load again. The
    // control loop must stay stable across both transitions.
    core::ServiceConfig config;
    std::vector<sim::ServerSetup> servers;
    sim::ServerSetup s;
    s.spec = sim::testbedServerSpec("S0");
    s.spec.hotSpareEnabled = true;
    s.spec.standbyThreshold = 250.0;
    s.workload = std::make_unique<dev::StepWorkload>(
        std::vector<std::pair<Seconds, Fraction>>{
            {0, 0.05}, {100, 0.95}});
    servers.push_back(std::move(s));

    auto sys = std::make_unique<topo::PowerSystem>(2);
    for (int feed = 0; feed < 2; ++feed) {
        auto tree = std::make_unique<topo::PowerTree>(
            feed, 0, feed == 0 ? "X" : "Y");
        const auto root =
            tree->makeRoot(topo::NodeKind::Breaker, "cb", 1000.0);
        tree->addSupplyPort(root, "s0", {0, feed});
        sys->addTree(std::move(tree));
    }
    ClosedLoopSim rig(std::move(sys), std::move(servers), config);
    rig.service().refreshRootBudgets(1000.0);
    rig.run(200);

    // Light phase: one supply in standby carried everything.
    EXPECT_NEAR(rig.recorder().mean(
                    ClosedLoopSim::supplySeries(0, 0, "power"), 60, 99),
                0.0, 1.0);
    // Heavy phase: both supplies share again and throughput is full
    // (budgets are ample).
    EXPECT_GT(rig.recorder().mean(
                    ClosedLoopSim::supplySeries(0, 0, "power"), 160,
                    199),
              100.0);
    EXPECT_GT(rig.recorder().mean(
                    ClosedLoopSim::serverSeries(0, "throughput"), 160,
                    199),
              0.99);
    EXPECT_FALSE(rig.anyBreakerTripped());
}

TEST(FailureInjection, EmergencyFastPathReactsSooner)
{
    // Compare overload-clear latency with and without the fast path.
    auto clear_latency = [](bool fast_path) {
        core::ServiceConfig config;
        config.emergencyFastPath = fast_path;
        config.controlPeriod = 16; // long period magnifies the benefit
        auto rig = makeDualFeedRig(config);
        rig.service().refreshRootBudgets(2000.0);
        // Fail just after a period boundary so the next scheduled
        // period is a full 16 s away.
        rig.failFeedAt(65, 0, 2000.0);
        rig.run(200);
        // "Cleared" = first time the load falls into the regulated band
        // (the PI loop holds the CB at its budget, so steady state sits
        // just under the limit with ~1 % sensor wobble).
        Seconds cleared = -1;
        for (const auto &p : rig.recorder().series("Y.leftCB.power")) {
            if (p.time < 65)
                continue;
            if (p.value > 750.0 * 1.01)
                cleared = -1;
            else if (cleared < 0)
                cleared = p.time;
        }
        return cleared - 65;
    };

    const Seconds without = clear_latency(false);
    const Seconds with = clear_latency(true);
    EXPECT_LT(with, without);
    EXPECT_LE(with, 15);
    EXPECT_GE(without, 15); // the 16 s period alone cannot react sooner
}

TEST(FailureInjection, EmergencyFastPathEmitsEvents)
{
    core::ServiceConfig config;
    config.emergencyFastPath = true;
    config.controlPeriod = 16;
    auto rig = makeDualFeedRig(config);
    rig.service().refreshRootBudgets(2000.0);
    rig.failFeedAt(65, 0, 2000.0);
    rig.run(160);
    EXPECT_GE(rig.eventLog().count(core::EventKind::EmergencyPeriod),
              1u);
    EXPECT_FALSE(rig.anyBreakerTripped());
}

TEST(FailureInjection, ShortUtilityBlipBridgedByUps)
{
    // A 6 s utility disturbance with 10 s of UPS holdup: the servers
    // never see it — no failure events, full throughput throughout.
    core::ServiceConfig config;
    auto rig = makeDualFeedRig(config, /*demand=*/380.0);
    rig.service().refreshRootBudgets(2000.0);
    rig.utilityBlipAt(60, 0, /*duration=*/6, /*ups_holdup=*/10, 2000.0);
    rig.run(160);

    EXPECT_EQ(rig.eventLog().count(core::EventKind::UtilityDisturbance),
              1u);
    EXPECT_EQ(rig.eventLog().count(core::EventKind::UpsBridged), 1u);
    EXPECT_EQ(rig.eventLog().count(core::EventKind::FeedFailed), 0u);
    EXPECT_FALSE(rig.system().feedFailed(0));
    EXPECT_GT(rig.recorder().mean(
                  ClosedLoopSim::serverSeries(1, "throughput"), 50, 159),
              0.99);
}

TEST(FailureInjection, LongUtilityOutageFailsThenRecovers)
{
    // A 90 s outage exceeds the 10 s holdup: the feed goes down at
    // t=70, throttling kicks in, and everything recovers at t=150.
    core::ServiceConfig config;
    auto rig = makeDualFeedRig(config); // demand 430 x 4
    rig.service().refreshRootBudgets(2000.0);
    rig.utilityBlipAt(60, 0, /*duration=*/90, /*ups_holdup=*/10,
                      2000.0);
    rig.run(320);

    const auto &log = rig.eventLog();
    EXPECT_EQ(log.count(core::EventKind::UtilityDisturbance), 1u);
    EXPECT_EQ(log.count(core::EventKind::UpsBridged), 0u);
    ASSERT_EQ(log.count(core::EventKind::FeedFailed), 1u);
    EXPECT_EQ(log.ofKind(core::EventKind::FeedFailed)[0].time, 70);
    ASSERT_EQ(log.count(core::EventKind::FeedRestored), 1u);
    EXPECT_EQ(log.ofKind(core::EventKind::FeedRestored)[0].time, 150);

    // During the outage the surviving left CB capped servers 0/1...
    EXPECT_LT(rig.recorder().mean(
                  ClosedLoopSim::serverSeries(1, "throughput"), 100,
                  149),
              0.97);
    // ...and after recovery throughput returns.
    EXPECT_GT(rig.recorder().mean(
                  ClosedLoopSim::serverSeries(1, "throughput"), 260,
                  319),
              0.99);
    EXPECT_FALSE(rig.anyBreakerTripped());
    EXPECT_FALSE(rig.system().feedFailed(0));
}

TEST(FailureInjection, FeedRestoreRecoversCapacity)
{
    // Contractual budget 2000 W/phase: ample in normal operation, so
    // the outage constraint is the 750 W left CB alone.
    core::ServiceConfig config;
    auto rig = makeDualFeedRig(config);
    rig.service().refreshRootBudgets(2000.0);
    rig.failFeedAt(60, 0, 2000.0);
    rig.at(200, [&rig] {
        rig.system().restoreFeed(0);
        for (std::size_t i = 0; i < 4; ++i)
            rig.server(i).setSupplyState(0, dev::SupplyState::Ok);
        rig.service().refreshRootBudgets(2000.0);
    });
    rig.run(360);

    // During the outage servers 0/1 were capped by the 750 W left CB;
    // after restoration they regain full throughput.
    const auto &rec = rig.recorder();
    EXPECT_LT(rec.mean(ClosedLoopSim::serverSeries(1, "throughput"),
                       140, 199),
              0.97);
    EXPECT_GT(rec.mean(ClosedLoopSim::serverSeries(1, "throughput"),
                       300, 359),
              0.99);
    EXPECT_FALSE(rig.anyBreakerTripped());
}
