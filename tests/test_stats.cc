/**
 * @file
 * Unit tests for the stats module: Welford accumulator (including merge),
 * histograms, and the time-series recorder used by control-loop traces.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "stats/accumulator.hh"
#include "stats/histogram.hh"
#include "stats/timeseries.hh"

namespace cs = capmaestro::stats;

TEST(Accumulator, BasicMoments)
{
    cs::Accumulator acc;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(v);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
    EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, EmptyIsZero)
{
    cs::Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
    EXPECT_DOUBLE_EQ(acc.min(), 0.0);
    EXPECT_DOUBLE_EQ(acc.max(), 0.0);
}

TEST(Accumulator, MergeMatchesSequential)
{
    cs::Accumulator whole, left, right;
    for (int i = 0; i < 100; ++i) {
        const double v = 0.1 * i * i - 3.0 * i;
        whole.add(v);
        (i < 37 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty)
{
    cs::Accumulator a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b); // no-op
    EXPECT_EQ(a.count(), 2u);
    b.merge(a); // copies
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Accumulator, ClearResets)
{
    cs::Accumulator a;
    a.add(5.0);
    a.clear();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Histogram, BinningAndClamping)
{
    cs::Histogram h(0.0, 1.0, 10);
    h.add(0.05); // bin 0
    h.add(0.15); // bin 1
    h.add(0.95); // bin 9
    h.add(-5.0); // clamps to bin 0
    h.add(5.0);  // clamps to bin 9
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_DOUBLE_EQ(h.binFraction(0), 0.4);
    EXPECT_NEAR(h.binCenter(0), 0.05, 1e-12);
    EXPECT_NEAR(h.binLow(9), 0.9, 1e-12);
}

TEST(Histogram, UpperBoundIsExclusive)
{
    cs::Histogram h(0.0, 1.0, 10);
    h.add(1.0);    // exactly hi: clamps into the last bin
    h.add(0.9999); // just under hi: also the last bin, by binning
    h.add(1e300);  // far above: clamps, no overflow
    EXPECT_EQ(h.binCount(9), 3u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, NonFiniteSamplesClamp)
{
    cs::Histogram h(0.0, 1.0, 4);
    h.add(std::numeric_limits<double>::quiet_NaN());
    h.add(-std::numeric_limits<double>::infinity());
    h.add(std::numeric_limits<double>::infinity());
    EXPECT_EQ(h.binCount(0), 2u); // NaN and -inf
    EXPECT_EQ(h.binCount(3), 1u); // +inf
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, EdgeAccessors)
{
    cs::Histogram h(10.0, 20.0, 5);
    EXPECT_DOUBLE_EQ(h.lo(), 10.0);
    EXPECT_DOUBLE_EQ(h.hi(), 20.0);
    EXPECT_DOUBLE_EQ(h.binLow(0), 10.0);
    EXPECT_DOUBLE_EQ(h.binHigh(0), 12.0);
    EXPECT_DOUBLE_EQ(h.binHigh(4), 20.0);
}

TEST(Histogram, ZeroWidthRangeIsLegal)
{
    // Regression: a degenerate hi == lo range used to fatal() in the
    // constructor, which broke SLO histograms over a zero-width target
    // band (e.g. every tenant sharing one slowdown target). The
    // documented contract: samples <= lo land in bin 0, everything
    // above clamps into the last bin, and no division blows up.
    cs::Histogram h(2.0, 2.0, 4);
    h.add(2.0);  // == lo: bin 0
    h.add(1.0);  // below: bin 0
    h.add(3.0);  // above: last bin
    h.add(std::numeric_limits<double>::infinity()); // clamps, finite
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(3), 2u);
    EXPECT_DOUBLE_EQ(h.lo(), h.hi());
}

TEST(HistogramDeath, RejectsInvertedRange)
{
    // hi < lo is still a configuration error, not a degenerate range.
    EXPECT_DEATH(cs::Histogram(2.0, 1.0, 4), "hi >= lo");
}

TEST(Histogram, RenderContainsBars)
{
    cs::Histogram h(0.0, 1.0, 4);
    for (int i = 0; i < 10; ++i)
        h.add(0.3);
    const std::string out = h.render(20);
    EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(TimeSeries, RecordAndQuery)
{
    cs::TimeSeriesRecorder rec;
    for (int t = 0; t < 10; ++t)
        rec.record("power", t, 100.0 + t);
    EXPECT_EQ(rec.series("power").size(), 10u);
    EXPECT_DOUBLE_EQ(rec.last("power"), 109.0);
    EXPECT_DOUBLE_EQ(rec.mean("power", 0, 9), 104.5);
    EXPECT_DOUBLE_EQ(rec.max("power", 2, 5), 105.0);
    EXPECT_DOUBLE_EQ(rec.last("missing", -1.0), -1.0);
    EXPECT_TRUE(rec.series("missing").empty());
}

TEST(TimeSeries, SettleTime)
{
    cs::TimeSeriesRecorder rec;
    // Approaches 200 and stays there from t=5 onward.
    const double vals[] = {260, 240, 220, 210, 204, 200.5, 200.2, 200.1};
    for (int t = 0; t < 8; ++t)
        rec.record("ps", t, vals[t]);
    EXPECT_EQ(rec.settleTime("ps", 0, 200.0, 1.0), 5);
    // Tolerance too tight: never settles.
    EXPECT_EQ(rec.settleTime("ps", 0, 200.0, 0.05), -1);
}

TEST(TimeSeries, SettleTimeBoundedWindow)
{
    cs::TimeSeriesRecorder rec;
    rec.record("v", 0, 100.0);
    rec.record("v", 1, 100.0);
    rec.record("v", 2, 100.0);
    rec.record("v", 3, 500.0); // later excursion outside the window
    EXPECT_EQ(rec.settleTime("v", 0, 100.0, 1.0), -1);
    EXPECT_EQ(rec.settleTime("v", 0, 100.0, 1.0, /*to=*/2), 0);
}

TEST(TimeSeries, SettleTimeResetsOnExcursion)
{
    cs::TimeSeriesRecorder rec;
    rec.record("v", 0, 100.0);
    rec.record("v", 1, 100.0);
    rec.record("v", 2, 150.0); // excursion
    rec.record("v", 3, 100.0);
    EXPECT_EQ(rec.settleTime("v", 0, 100.0, 1.0), 3);
}

TEST(TimeSeries, CsvUnionOfTimestamps)
{
    cs::TimeSeriesRecorder rec;
    rec.record("a", 0, 1.0);
    rec.record("a", 2, 2.0);
    rec.record("b", 1, 5.0);
    std::ostringstream os;
    rec.printCsv(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("time,a,b"), std::string::npos);
    // t=1 line has an empty cell for 'a'.
    EXPECT_NE(s.find("1,,5"), std::string::npos);
}

TEST(TimeSeries, NamesSortedAndClear)
{
    cs::TimeSeriesRecorder rec;
    rec.record("z", 0, 1.0);
    rec.record("a", 0, 1.0);
    const auto names = rec.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "z");
    rec.clear();
    EXPECT_TRUE(rec.names().empty());
}
