/**
 * @file
 * Tests for the binary wire codec (net/wire): bit-exact round trips,
 * header validation, and robustness against truncated / bit-flipped /
 * random garbage frames (decodeFrame must reject them cleanly, never
 * crash).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <set>

#include "net/wire.hh"
#include "util/random.hh"

using namespace capmaestro;
using net::BudgetMsg;
using net::FrameMeta;
using net::MetricsMsg;
using net::MsgType;

namespace {

MetricsMsg
sampleMetrics()
{
    MetricsMsg msg;
    msg.tree = 3;
    msg.edgeNode = 17;
    // Awkward doubles: values that lose precision if anything rounds.
    msg.metrics.accumulate(7, 270.125, 0.1 + 0.2, 412.75);
    msg.metrics.accumulate(2, 135.0, 301.3333333333333, 305.5);
    msg.metrics.accumulate(0, 100.0, 123.456789, 130.0);
    msg.metrics.setConstraint(1234.000000001);
    return msg;
}

void
expectBitExact(const ctrl::NodeMetrics &a, const ctrl::NodeMetrics &b)
{
    ASSERT_EQ(a.classes().size(), b.classes().size());
    for (std::size_t i = 0; i < a.classes().size(); ++i) {
        const auto &ca = a.classes()[i];
        const auto &cb = b.classes()[i];
        EXPECT_EQ(ca.priority, cb.priority);
        EXPECT_EQ(std::bit_cast<std::uint64_t>(ca.capMin),
                  std::bit_cast<std::uint64_t>(cb.capMin));
        EXPECT_EQ(std::bit_cast<std::uint64_t>(ca.demand),
                  std::bit_cast<std::uint64_t>(cb.demand));
        EXPECT_EQ(std::bit_cast<std::uint64_t>(ca.request),
                  std::bit_cast<std::uint64_t>(cb.request));
    }
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.constraint()),
              std::bit_cast<std::uint64_t>(b.constraint()));
}

} // namespace

TEST(Wire, MetricsRoundTripIsBitExact)
{
    const auto msg = sampleMetrics();
    const FrameMeta meta{42, 1000, 77};
    const auto bytes = net::encodeMetrics(meta, msg);

    const auto frame = net::decodeFrame(bytes);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::Metrics);
    EXPECT_EQ(frame->sender, 42);
    EXPECT_EQ(frame->epoch, 1000u);
    EXPECT_EQ(frame->seq, 77u);
    EXPECT_EQ(frame->metrics.tree, 3);
    EXPECT_EQ(frame->metrics.edgeNode, 17u);
    expectBitExact(frame->metrics.metrics, msg.metrics);
}

TEST(Wire, BudgetRoundTripIsBitExact)
{
    BudgetMsg msg;
    msg.tree = 1;
    msg.edgeNode = 9;
    msg.budget = 98765.4321000001;
    const auto bytes =
        net::encodeBudget(FrameMeta{net::kRoomSender, 5, 12}, msg);

    const auto frame = net::decodeFrame(bytes);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::Budget);
    EXPECT_EQ(frame->sender, net::kRoomSender);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(frame->budget.budget),
              std::bit_cast<std::uint64_t>(msg.budget));
}

TEST(Wire, HeartbeatRoundTrip)
{
    const auto bytes = net::encodeHeartbeat(FrameMeta{7, 3, 1});
    EXPECT_EQ(bytes.size(), net::kHeaderSize + net::kCrcSize);
    const auto frame = net::decodeFrame(bytes);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::Heartbeat);
    EXPECT_EQ(frame->sender, 7);
    EXPECT_EQ(frame->epoch, 3u);
    EXPECT_EQ(frame->seq, 1u);
}

TEST(Wire, PinnedSummaryRoundTripIsBitExact)
{
    // The §4.4 second-round summary reuses the Metrics payload layout
    // but must come back under its own type code.
    const auto msg = sampleMetrics();
    const FrameMeta meta{11, 2000, 99};
    const auto bytes = net::encodePinnedSummary(meta, msg);

    const auto frame = net::decodeFrame(bytes);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::PinnedSummary);
    EXPECT_EQ(frame->sender, 11);
    EXPECT_EQ(frame->epoch, 2000u);
    EXPECT_EQ(frame->seq, 99u);
    EXPECT_EQ(frame->metrics.tree, 3);
    EXPECT_EQ(frame->metrics.edgeNode, 17u);
    expectBitExact(frame->metrics.metrics, msg.metrics);
}

TEST(Wire, SpoBudgetRoundTripIsBitExact)
{
    BudgetMsg msg;
    msg.tree = 2;
    msg.edgeNode = 14;
    msg.budget = 1350.0000000001;
    const auto bytes =
        net::encodeSpoBudget(FrameMeta{net::kRoomSender, 8, 21}, msg);

    const auto frame = net::decodeFrame(bytes);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::SpoBudget);
    EXPECT_EQ(frame->budget.tree, 2);
    EXPECT_EQ(frame->budget.edgeNode, 14u);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(frame->budget.budget),
              std::bit_cast<std::uint64_t>(msg.budget));
}

TEST(Wire, SpoTypesAreDistinctFromFirstPhaseTypes)
{
    // Identical payload, different phase: the only difference between
    // the frames is the type byte, so a retransmitted first-phase frame
    // can never decode as a second-phase one (or vice versa).
    const auto msg = sampleMetrics();
    const FrameMeta meta{1, 2, 3};
    const auto first = net::decodeFrame(net::encodeMetrics(meta, msg));
    const auto second =
        net::decodeFrame(net::encodePinnedSummary(meta, msg));
    ASSERT_TRUE(first.has_value());
    ASSERT_TRUE(second.has_value());
    EXPECT_NE(first->type, second->type);

    BudgetMsg b;
    b.tree = 1;
    b.edgeNode = 4;
    b.budget = 500.0;
    const auto down1 = net::decodeFrame(net::encodeBudget(meta, b));
    const auto down2 = net::decodeFrame(net::encodeSpoBudget(meta, b));
    ASSERT_TRUE(down1.has_value());
    ASSERT_TRUE(down2.has_value());
    EXPECT_NE(down1->type, down2->type);
}

TEST(Wire, EmptyMetricsRoundTrip)
{
    // A dead edge reports zero classes; the codec must carry that.
    MetricsMsg msg;
    msg.tree = 0;
    msg.edgeNode = 2;
    const auto bytes = net::encodeMetrics(FrameMeta{}, msg);
    const auto frame = net::decodeFrame(bytes);
    ASSERT_TRUE(frame.has_value());
    EXPECT_TRUE(frame->metrics.metrics.empty());
}

TEST(Wire, SpecialDoublesSurvive)
{
    BudgetMsg msg;
    msg.tree = 0;
    msg.edgeNode = 0;
    msg.budget = std::numeric_limits<double>::infinity();
    auto frame = net::decodeFrame(net::encodeBudget(FrameMeta{}, msg));
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->budget.budget,
              std::numeric_limits<double>::infinity());

    msg.budget = std::numeric_limits<double>::denorm_min();
    frame = net::decodeFrame(net::encodeBudget(FrameMeta{}, msg));
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(frame->budget.budget),
              std::bit_cast<std::uint64_t>(
                  std::numeric_limits<double>::denorm_min()));
}

TEST(Wire, EveryTruncationRejected)
{
    const auto bytes = net::encodeMetrics(FrameMeta{1, 2, 3},
                                          sampleMetrics());
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + len);
        EXPECT_FALSE(net::decodeFrame(prefix).has_value())
            << "prefix of " << len << " bytes decoded";
    }
}

TEST(Wire, EverySingleBitFlipRejected)
{
    // CRC-32 detects every single-bit error, so each of the frame's
    // bits flipped in isolation must fail decoding.
    const auto bytes = net::encodeMetrics(FrameMeta{1, 2, 3},
                                          sampleMetrics());
    for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
        auto corrupted = bytes;
        corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_FALSE(net::decodeFrame(corrupted).has_value())
            << "bit " << bit << " flip decoded";
    }
}

TEST(Wire, PinnedSummaryEveryTruncationRejected)
{
    const auto bytes = net::encodePinnedSummary(FrameMeta{1, 2, 3},
                                                sampleMetrics());
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + len);
        EXPECT_FALSE(net::decodeFrame(prefix).has_value())
            << "prefix of " << len << " bytes decoded";
    }
}

TEST(Wire, PinnedSummaryEverySingleBitFlipRejected)
{
    const auto bytes = net::encodePinnedSummary(FrameMeta{1, 2, 3},
                                                sampleMetrics());
    for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
        auto corrupted = bytes;
        corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_FALSE(net::decodeFrame(corrupted).has_value())
            << "bit " << bit << " flip decoded";
    }
}

TEST(Wire, PinnedSummaryRandomMultiBitCorruptionNeverCrashes)
{
    util::Rng rng(90210);
    const auto base = net::encodePinnedSummary(FrameMeta{1, 2, 3},
                                               sampleMetrics());
    for (int trial = 0; trial < 2000; ++trial) {
        auto corrupted = base;
        const int flips = rng.uniformInt(2, 64);
        for (int f = 0; f < flips; ++f) {
            const auto bit = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<int>(corrupted.size() * 8) - 1));
            corrupted[bit / 8] ^=
                static_cast<std::uint8_t>(1u << (bit % 8));
        }
        const auto frame = net::decodeFrame(corrupted);
        if (frame.has_value()
            && frame->type == MsgType::PinnedSummary) {
            const auto &classes = frame->metrics.metrics.classes();
            for (std::size_t i = 1; i < classes.size(); ++i)
                EXPECT_LT(classes[i].priority, classes[i - 1].priority);
        }
    }
}

TEST(Wire, SpoBudgetTruncationAndBitFlipsRejected)
{
    BudgetMsg msg;
    msg.tree = 7;
    msg.edgeNode = 3;
    msg.budget = 775.25;
    const auto bytes =
        net::encodeSpoBudget(FrameMeta{net::kRoomSender, 4, 6}, msg);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + len);
        EXPECT_FALSE(net::decodeFrame(prefix).has_value());
    }
    for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
        auto corrupted = bytes;
        corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_FALSE(net::decodeFrame(corrupted).has_value());
    }
}

TEST(Wire, TrailingGarbageRejected)
{
    auto bytes = net::encodeHeartbeat(FrameMeta{1, 2, 3});
    bytes.push_back(0x00);
    EXPECT_FALSE(net::decodeFrame(bytes).has_value());
}

TEST(Wire, RandomGarbageNeverCrashes)
{
    util::Rng rng(2026);
    for (int trial = 0; trial < 2000; ++trial) {
        const std::size_t len =
            static_cast<std::size_t>(rng.uniformInt(0, 256));
        std::vector<std::uint8_t> junk(len);
        for (auto &b : junk)
            b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
        (void)net::decodeFrame(junk); // must not crash or throw
    }
}

TEST(Wire, RandomMultiBitCorruptionNeverCrashes)
{
    // Start from valid frames and apply several random flips: the vast
    // majority must be rejected, and none may crash. (Multi-bit errors
    // can in principle alias the CRC, so we only assert no-crash plus
    // structural validity of anything that does decode.)
    util::Rng rng(31337);
    const auto base = net::encodeMetrics(FrameMeta{1, 2, 3},
                                         sampleMetrics());
    for (int trial = 0; trial < 2000; ++trial) {
        auto corrupted = base;
        const int flips = rng.uniformInt(2, 64);
        for (int f = 0; f < flips; ++f) {
            const auto bit = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<int>(corrupted.size() * 8) - 1));
            corrupted[bit / 8] ^=
                static_cast<std::uint8_t>(1u << (bit % 8));
        }
        const auto frame = net::decodeFrame(corrupted);
        if (frame.has_value() && frame->type == MsgType::Metrics) {
            // Anything that survives must still satisfy the invariants.
            const auto &classes = frame->metrics.metrics.classes();
            for (std::size_t i = 1; i < classes.size(); ++i)
                EXPECT_LT(classes[i].priority, classes[i - 1].priority);
        }
    }
}

TEST(Wire, VersionSkewRejected)
{
    auto bytes = net::encodeHeartbeat(FrameMeta{1, 2, 3});
    bytes[2] = net::kWireVersion + 1; // bump version
    // Refresh the CRC so only the version check can reject it.
    const std::uint32_t crc =
        net::crc32(bytes.data(), bytes.size() - net::kCrcSize);
    for (std::size_t i = 0; i < net::kCrcSize; ++i) {
        bytes[bytes.size() - net::kCrcSize + i] =
            static_cast<std::uint8_t>(crc >> (8 * i));
    }
    EXPECT_FALSE(net::decodeFrame(bytes).has_value());
}

TEST(Wire, Crc32MatchesKnownVector)
{
    // IEEE 802.3 check value for "123456789".
    const std::uint8_t data[] = {'1', '2', '3', '4', '5',
                                 '6', '7', '8', '9'};
    EXPECT_EQ(net::crc32(data, sizeof(data)), 0xCBF43926u);
}

namespace {

/** Overwrite the trailing CRC so later checks see a "valid" frame. */
void
refreshCrc(std::vector<std::uint8_t> &bytes)
{
    const std::uint32_t crc =
        net::crc32(bytes.data(), bytes.size() - net::kCrcSize);
    for (std::size_t i = 0; i < net::kCrcSize; ++i) {
        bytes[bytes.size() - net::kCrcSize + i] =
            static_cast<std::uint8_t>(crc >> (8 * i));
    }
}

/** Patch the header's declared payload-length field (offset 14). */
void
declarePayloadLength(std::vector<std::uint8_t> &bytes,
                     std::uint16_t length)
{
    bytes[14] = static_cast<std::uint8_t>(length & 0xFF);
    bytes[15] = static_cast<std::uint8_t>(length >> 8);
}

} // namespace

TEST(Wire, FrameOverHardCapRejected)
{
    // A buffer larger than kMaxFrameBytes is rejected up front, even
    // if everything inside it were to check out.
    auto bytes = net::encodeHeartbeat(FrameMeta{1, 2, 3});
    bytes.resize(net::kMaxFrameBytes + 1, 0);
    refreshCrc(bytes);
    EXPECT_FALSE(net::decodeFrame(bytes).has_value());
}

TEST(Wire, HostileDeclaredPayloadLengthRejected)
{
    // Declared payload length beyond kMaxPayloadBytes must be rejected
    // on the declared value alone — before any size-equality or CRC
    // work that would trust it. Keep the CRC honest so nothing else
    // can be the reason for rejection.
    for (const std::uint32_t hostile :
         {static_cast<std::uint32_t>(net::kMaxPayloadBytes) + 1,
          40000u, 65535u}) {
        auto bytes = net::encodeHeartbeat(FrameMeta{1, 2, 3});
        declarePayloadLength(bytes,
                             static_cast<std::uint16_t>(hostile));
        refreshCrc(bytes);
        EXPECT_FALSE(net::decodeFrame(bytes).has_value())
            << "declared length " << hostile;
    }
}

TEST(Wire, HostileMetricsCountRejectedBeforeAllocation)
{
    // A Metrics payload declaring more class records than the payload
    // holds must be rejected by arithmetic on the declared count, not
    // by faulting after a count-sized allocation. The frame below is
    // fully valid (magic, version, length, CRC) except that its count
    // field promises 1024 records while carrying none.
    std::vector<std::uint8_t> bytes;
    const std::uint8_t header[] = {
        0x9E, 0xCA,                  // magic, little-endian
        net::kWireVersion,
        static_cast<std::uint8_t>(MsgType::Metrics),
        0x01, 0x00,                  // sender
        0x02, 0x00, 0x00, 0x00,      // epoch
        0x03, 0x00, 0x00, 0x00,      // seq
        0x10, 0x00,                  // payload length: 16 bytes
        0x00,                        // no trace context
    };
    bytes.reserve(64);
    bytes.assign(header, header + sizeof(header));
    const std::uint8_t payload[] = {
        0x00, 0x00,                  // tree
        0x11, 0x00, 0x00, 0x00,      // edge node
        0, 0, 0, 0, 0, 0, 0, 0,      // constraint (0.0)
        0x00, 0x04,                  // count = 1024, but no records
    };
    bytes.insert(bytes.end(), payload, payload + sizeof(payload));
    bytes.resize(bytes.size() + net::kCrcSize, 0);
    refreshCrc(bytes);
    EXPECT_FALSE(net::decodeFrame(bytes).has_value());
}

namespace {

/** A checkpoint exercising every field with precision-hostile values. */
net::CheckpointMsg
sampleCheckpoint()
{
    net::CheckpointMsg msg;
    msg.simNow = 12345.000000000001;
    msg.rehomeAckEpoch = 0xDEADBEEF;
    net::CheckpointServer a;
    a.serverId = 7;
    a.integratorPrimed = true;
    a.spoPinned = false;
    a.integratorDc = 270.1 + 0.2;
    a.demandEstimate = 412.3333333333333;
    a.avgThrottle = 0.1 + 0.2;
    a.supplies.push_back({350.125, 0.5000000001, 348.875});
    a.supplies.push_back({349.875, 0.4999999999, 351.0625});
    msg.servers.push_back(a);
    net::CheckpointServer b;
    b.serverId = 2;
    b.integratorPrimed = false;
    b.spoPinned = true;
    b.avgThrottle = 1.0;
    b.supplies.push_back({0.0, 1.0, 0.0});
    msg.servers.push_back(b);
    // A server with no supplies at all (dead plant) must round-trip.
    net::CheckpointServer c;
    c.serverId = 9;
    msg.servers.push_back(c);
    return msg;
}

void
expectBitExact(const net::CheckpointMsg &a, const net::CheckpointMsg &b)
{
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.simNow),
              std::bit_cast<std::uint64_t>(b.simNow));
    EXPECT_EQ(a.rehomeAckEpoch, b.rehomeAckEpoch);
    ASSERT_EQ(a.servers.size(), b.servers.size());
    for (std::size_t i = 0; i < a.servers.size(); ++i) {
        const auto &sa = a.servers[i];
        const auto &sb = b.servers[i];
        EXPECT_EQ(sa.serverId, sb.serverId);
        EXPECT_EQ(sa.integratorPrimed, sb.integratorPrimed);
        EXPECT_EQ(sa.spoPinned, sb.spoPinned);
        EXPECT_EQ(std::bit_cast<std::uint64_t>(sa.integratorDc),
                  std::bit_cast<std::uint64_t>(sb.integratorDc));
        EXPECT_EQ(std::bit_cast<std::uint64_t>(sa.demandEstimate),
                  std::bit_cast<std::uint64_t>(sb.demandEstimate));
        EXPECT_EQ(std::bit_cast<std::uint64_t>(sa.avgThrottle),
                  std::bit_cast<std::uint64_t>(sb.avgThrottle));
        ASSERT_EQ(sa.supplies.size(), sb.supplies.size());
        for (std::size_t s = 0; s < sa.supplies.size(); ++s) {
            EXPECT_EQ(
                std::bit_cast<std::uint64_t>(sa.supplies[s].lastBudget),
                std::bit_cast<std::uint64_t>(sb.supplies[s].lastBudget));
            EXPECT_EQ(
                std::bit_cast<std::uint64_t>(sa.supplies[s].share),
                std::bit_cast<std::uint64_t>(sb.supplies[s].share));
            EXPECT_EQ(
                std::bit_cast<std::uint64_t>(sa.supplies[s].avgAc),
                std::bit_cast<std::uint64_t>(sb.supplies[s].avgAc));
        }
    }
}

} // namespace

TEST(Wire, CheckpointRoundTripIsBitExact)
{
    const auto msg = sampleCheckpoint();
    const FrameMeta meta{3, 4000, 123};
    const auto bytes = net::encodeCheckpoint(meta, msg);

    const auto frame = net::decodeFrame(bytes);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::Checkpoint);
    EXPECT_EQ(frame->sender, 3);
    EXPECT_EQ(frame->epoch, 4000u);
    EXPECT_EQ(frame->seq, 123u);
    expectBitExact(frame->checkpoint, msg);
}

TEST(Wire, RehomeReusesCheckpointLayoutUnderDistinctType)
{
    // A re-played checkpoint travels under its own type code, so a
    // retransmitted upstream Checkpoint can never masquerade as the
    // room's downstream Rehome (or vice versa).
    const auto msg = sampleCheckpoint();
    const FrameMeta meta{net::kRoomSender, 8, 44};
    const auto frame = net::decodeFrame(net::encodeRehome(meta, msg));
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::Rehome);
    EXPECT_EQ(frame->sender, net::kRoomSender);
    expectBitExact(frame->checkpoint, msg);

    const auto up = net::decodeFrame(net::encodeCheckpoint(meta, msg));
    ASSERT_TRUE(up.has_value());
    EXPECT_NE(up->type, frame->type);
}

TEST(Wire, EmptyCheckpointRoundTrip)
{
    // The room completes a re-homing handshake with an empty Rehome
    // when it never stored a checkpoint; the codec must carry it.
    net::CheckpointMsg msg;
    msg.simNow = 0.0;
    const auto frame =
        net::decodeFrame(net::encodeRehome(FrameMeta{}, msg));
    ASSERT_TRUE(frame.has_value());
    EXPECT_TRUE(frame->checkpoint.servers.empty());
}

TEST(Wire, CheckpointEveryTruncationRejected)
{
    const auto bytes =
        net::encodeCheckpoint(FrameMeta{1, 2, 3}, sampleCheckpoint());
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + len);
        EXPECT_FALSE(net::decodeFrame(prefix).has_value())
            << "prefix of " << len << " bytes decoded";
    }
}

TEST(Wire, CheckpointEverySingleBitFlipRejected)
{
    const auto bytes =
        net::encodeRehome(FrameMeta{1, 2, 3}, sampleCheckpoint());
    for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
        auto corrupted = bytes;
        corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_FALSE(net::decodeFrame(corrupted).has_value())
            << "bit " << bit << " flip decoded";
    }
}

TEST(Wire, CheckpointVersionSkewRejected)
{
    // A frame from outside the one-version rolling-upgrade window must
    // be rejected on its version byte alone; keep the CRC honest so
    // nothing else can be the reason.
    for (const std::uint8_t version :
         {static_cast<std::uint8_t>(net::kWireCompatVersion - 1),
          static_cast<std::uint8_t>(net::kWireVersion + 1),
          static_cast<std::uint8_t>(0), static_cast<std::uint8_t>(255)}) {
        auto bytes = net::encodeCheckpoint(FrameMeta{1, 2, 3},
                                           sampleCheckpoint());
        bytes[2] = version;
        refreshCrc(bytes);
        EXPECT_FALSE(net::decodeFrame(bytes).has_value())
            << "version " << static_cast<int>(version);
    }
    // The previous version is inside the window: a v5 checkpoint from a
    // not-yet-upgraded worker still decodes.
    auto compat = net::encodeCheckpoint(FrameMeta{1, 2, 3},
                                        sampleCheckpoint());
    compat[2] = net::kWireCompatVersion;
    refreshCrc(compat);
    const auto frame = net::decodeFrame(compat);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->wireVersion, net::kWireCompatVersion);
}

namespace {

/**
 * Hand-assemble a Checkpoint frame whose payload bytes are given
 * verbatim (valid magic/version/length/CRC), so only the payload
 * parser can reject it.
 */
std::vector<std::uint8_t>
rawCheckpointFrame(const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(net::kHeaderSize + payload.size() + net::kCrcSize);
    bytes = {
        0x9E, 0xCA,                  // magic, little-endian
        net::kWireVersion,
        static_cast<std::uint8_t>(MsgType::Checkpoint),
        0x01, 0x00,                  // sender
        0x02, 0x00, 0x00, 0x00,      // epoch
        0x03, 0x00, 0x00, 0x00,      // seq
        static_cast<std::uint8_t>(payload.size() & 0xFF),
        static_cast<std::uint8_t>(payload.size() >> 8),
        0x00,                        // no trace context
    };
    bytes.insert(bytes.end(), payload.begin(), payload.end());
    bytes.resize(bytes.size() + net::kCrcSize, 0);
    refreshCrc(bytes);
    return bytes;
}

} // namespace

TEST(Wire, HostileCheckpointServerCountRejectedBeforeAllocation)
{
    // Fixed prelude: simNow f64, rehomeAckEpoch u32, then a server
    // count promising far more records than the payload (or the
    // kMaxCheckpointServers bound) allows. The parser must reject on
    // the declared count, not fault after a count-sized allocation.
    for (const std::uint16_t hostile : {
             static_cast<std::uint16_t>(net::kMaxCheckpointServers + 1),
             static_cast<std::uint16_t>(1024),
             static_cast<std::uint16_t>(65535)}) {
        std::vector<std::uint8_t> payload(14, 0);
        payload[12] = static_cast<std::uint8_t>(hostile & 0xFF);
        payload[13] = static_cast<std::uint8_t>(hostile >> 8);
        EXPECT_FALSE(
            net::decodeFrame(rawCheckpointFrame(payload)).has_value())
            << "server count " << hostile;
    }
}

TEST(Wire, HostileCheckpointSupplyCountRejectedBeforeAllocation)
{
    // One well-formed server record whose supplyCount promises more
    // slices than the payload carries (and more than the
    // kMaxCheckpointSupplies bound).
    for (const std::uint16_t hostile : {
             static_cast<std::uint16_t>(net::kMaxCheckpointSupplies + 1),
             static_cast<std::uint16_t>(512),
             static_cast<std::uint16_t>(65535)}) {
        std::vector<std::uint8_t> payload(14, 0);
        payload[12] = 1; // one server
        std::vector<std::uint8_t> server(31, 0);
        server[29] = static_cast<std::uint8_t>(hostile & 0xFF);
        server[30] = static_cast<std::uint8_t>(hostile >> 8);
        payload.insert(payload.end(), server.begin(), server.end());
        EXPECT_FALSE(
            net::decodeFrame(rawCheckpointFrame(payload)).has_value())
            << "supply count " << hostile;
    }
}

TEST(Wire, CheckpointTrailingGarbageRejected)
{
    // Extra bytes after the last declared server record mean the
    // payload length and the structure disagree; reject.
    const auto msg = sampleCheckpoint();
    auto bytes = net::encodeCheckpoint(FrameMeta{1, 2, 3}, msg);
    const std::size_t payload_len =
        bytes.size() - net::kHeaderSize - net::kCrcSize;
    bytes.insert(bytes.end() - net::kCrcSize, 0x00);
    declarePayloadLength(
        bytes, static_cast<std::uint16_t>(payload_len + 1));
    refreshCrc(bytes);
    EXPECT_FALSE(net::decodeFrame(bytes).has_value());
}

TEST(Wire, CheckpointRandomMultiBitCorruptionNeverCrashes)
{
    // Multi-bit errors can in principle alias the CRC; anything that
    // does decode must still satisfy the structural sanity bounds.
    util::Rng rng(60188);
    const auto base =
        net::encodeCheckpoint(FrameMeta{1, 2, 3}, sampleCheckpoint());
    for (int trial = 0; trial < 2000; ++trial) {
        auto corrupted = base;
        const int flips = rng.uniformInt(2, 64);
        for (int f = 0; f < flips; ++f) {
            const auto bit = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<int>(corrupted.size() * 8) - 1));
            corrupted[bit / 8] ^=
                static_cast<std::uint8_t>(1u << (bit % 8));
        }
        const auto frame = net::decodeFrame(corrupted);
        if (frame.has_value()
            && (frame->type == MsgType::Checkpoint
                || frame->type == MsgType::Rehome)) {
            EXPECT_LE(frame->checkpoint.servers.size(),
                      net::kMaxCheckpointServers);
            for (const auto &server : frame->checkpoint.servers) {
                EXPECT_LE(server.supplies.size(),
                          net::kMaxCheckpointSupplies);
            }
        }
    }
}

TEST(Wire, FuzzedDeclaredLengthsNeverCrash)
{
    // Randomized declared-length hostility over every message type:
    // patch the length field to an arbitrary value, refresh the CRC,
    // and decode. Any declared length that differs from the real one
    // must be rejected; none may crash or over-allocate.
    util::Rng rng(40426);
    const auto metrics =
        net::encodeMetrics(FrameMeta{1, 2, 3}, sampleMetrics());
    BudgetMsg budget;
    budget.tree = 1;
    budget.edgeNode = 9;
    budget.budget = 512.25;
    const std::vector<std::vector<std::uint8_t>> bases = {
        metrics,
        net::encodeBudget(FrameMeta{1, 2, 4}, budget),
        net::encodeHeartbeat(FrameMeta{1, 2, 5}),
        net::encodePinnedSummary(FrameMeta{1, 2, 6}, sampleMetrics()),
        net::encodeSpoBudget(FrameMeta{1, 2, 7}, budget),
        net::encodeCheckpoint(FrameMeta{1, 2, 8}, sampleCheckpoint()),
        net::encodeRehome(FrameMeta{1, 2, 9}, sampleCheckpoint()),
    };
    for (int trial = 0; trial < 4000; ++trial) {
        auto bytes = bases[static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(bases.size()) - 1))];
        const auto declared =
            static_cast<std::uint16_t>(rng.uniformInt(0, 65535));
        const std::size_t real_length =
            bytes.size() - net::kHeaderSize - net::kCrcSize;
        declarePayloadLength(bytes, declared);
        refreshCrc(bytes);
        const auto frame = net::decodeFrame(bytes);
        if (declared != real_length) {
            EXPECT_FALSE(frame.has_value())
                << "declared " << declared << " real " << real_length;
        } else {
            EXPECT_TRUE(frame.has_value());
        }
    }
}

// ------------------------------------- deep-tree aggregator frames

TEST(Wire, SummaryRoundTripIsBitExact)
{
    // An aggregator's upstream Summary reuses the Metrics payload
    // layout (edgeNode = the aggregator's top station) but must come
    // back under its own type code.
    const auto msg = sampleMetrics();
    const FrameMeta meta{23, 4000, 55};
    const auto bytes = net::encodeSummary(meta, msg);

    const auto frame = net::decodeFrame(bytes);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::Summary);
    EXPECT_EQ(frame->sender, 23);
    EXPECT_EQ(frame->epoch, 4000u);
    EXPECT_EQ(frame->metrics.tree, 3);
    EXPECT_EQ(frame->metrics.edgeNode, 17u);
    expectBitExact(frame->metrics.metrics, msg.metrics);
}

TEST(Wire, SubBudgetRoundTripIsBitExact)
{
    // The downstream SubBudget reuses the Budget payload layout
    // (edgeNode = the receiving aggregator's top station).
    BudgetMsg msg;
    msg.tree = 2;
    msg.edgeNode = 31;
    msg.budget = 123456.789000001;
    const auto bytes =
        net::encodeSubBudget(FrameMeta{net::kRoomSender, 8, 21}, msg);

    const auto frame = net::decodeFrame(bytes);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::SubBudget);
    EXPECT_EQ(frame->sender, net::kRoomSender);
    EXPECT_EQ(frame->budget.tree, 2);
    EXPECT_EQ(frame->budget.edgeNode, 31u);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(frame->budget.budget),
              std::bit_cast<std::uint64_t>(msg.budget));
}

TEST(Wire, AggregatorTypesAreDistinctFromEveryOtherType)
{
    // A Summary must never decode as Metrics/PinnedSummary (identical
    // payload layouts) nor a SubBudget as Budget/SpoBudget: the period
    // state machines dispatch on the type byte alone.
    const auto metrics = sampleMetrics();
    BudgetMsg budget;
    budget.tree = 1;
    budget.edgeNode = 5;
    budget.budget = 640.5;
    const FrameMeta meta{3, 9, 1};
    const auto summary = net::decodeFrame(net::encodeSummary(meta, metrics));
    const auto sub = net::decodeFrame(net::encodeSubBudget(meta, budget));
    ASSERT_TRUE(summary.has_value());
    ASSERT_TRUE(sub.has_value());
    const std::set<MsgType> others = {
        MsgType::Metrics,    MsgType::Budget,
        MsgType::Heartbeat,  MsgType::PinnedSummary,
        MsgType::SpoBudget,  MsgType::Checkpoint,
        MsgType::Rehome,
    };
    EXPECT_EQ(others.count(summary->type), 0u);
    EXPECT_EQ(others.count(sub->type), 0u);
    EXPECT_NE(summary->type, sub->type);
}

TEST(Wire, SummaryEveryTruncationRejected)
{
    const auto bytes = net::encodeSummary(FrameMeta{1, 2, 3},
                                          sampleMetrics());
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + len);
        EXPECT_FALSE(net::decodeFrame(prefix).has_value())
            << "prefix of " << len << " bytes decoded";
    }
}

TEST(Wire, SummaryEverySingleBitFlipRejected)
{
    const auto bytes = net::encodeSummary(FrameMeta{1, 2, 3},
                                          sampleMetrics());
    for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
        auto corrupted = bytes;
        corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_FALSE(net::decodeFrame(corrupted).has_value())
            << "bit " << bit << " flip decoded";
    }
}

TEST(Wire, SubBudgetTruncationAndBitFlipsRejected)
{
    BudgetMsg msg;
    msg.tree = 4;
    msg.edgeNode = 12;
    msg.budget = 8201.125;
    const auto bytes =
        net::encodeSubBudget(FrameMeta{9, 40, 2}, msg);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + len);
        EXPECT_FALSE(net::decodeFrame(prefix).has_value());
    }
    for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
        auto corrupted = bytes;
        corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_FALSE(net::decodeFrame(corrupted).has_value());
    }
}

TEST(Wire, AggregatorFramesRejectOldWireVersions)
{
    // Deep-tree frame types were introduced at wire v4: a peer still
    // speaking v2/v3 (or a v5 future) must be rejected on the version
    // byte alone. The CRC is kept honest so nothing else can reject.
    BudgetMsg budget;
    budget.tree = 0;
    budget.edgeNode = 1;
    budget.budget = 100.0;
    for (auto bytes : {net::encodeSummary(FrameMeta{1, 2, 3},
                                          sampleMetrics()),
                       net::encodeSubBudget(FrameMeta{1, 2, 4},
                                            budget)}) {
        for (const std::uint8_t version :
             {std::uint8_t{2}, std::uint8_t{3},
              static_cast<std::uint8_t>(net::kWireVersion + 1)}) {
            auto skewed = bytes;
            skewed[2] = version;
            refreshCrc(skewed);
            EXPECT_FALSE(net::decodeFrame(skewed).has_value())
                << "version " << static_cast<int>(version);
        }
    }
}

TEST(Wire, SummaryHostileClassCountRejectedBeforeAllocation)
{
    // Patch the Summary's class-count field to a hostile value with a
    // refreshed CRC: the decoder must reject on the length/count
    // cross-check, never trust the count to size an allocation.
    auto bytes = net::encodeSummary(FrameMeta{1, 2, 3},
                                    sampleMetrics());
    // Count sits after tree (2) + edge node (4) + constraint (8) in
    // the Metrics payload layout.
    bytes[net::kHeaderSize + 14] = 0xFF;
    bytes[net::kHeaderSize + 15] = 0xFF;
    refreshCrc(bytes);
    EXPECT_FALSE(net::decodeFrame(bytes).has_value());
}

TEST(Wire, SummaryRandomMultiBitCorruptionNeverCrashes)
{
    util::Rng rng(60309);
    const auto base = net::encodeSummary(FrameMeta{1, 2, 3},
                                         sampleMetrics());
    for (int trial = 0; trial < 2000; ++trial) {
        auto corrupted = base;
        const int flips = rng.uniformInt(2, 64);
        for (int f = 0; f < flips; ++f) {
            const auto bit = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<int>(corrupted.size() * 8) - 1));
            corrupted[bit / 8] ^=
                static_cast<std::uint8_t>(1u << (bit % 8));
        }
        const auto frame = net::decodeFrame(corrupted);
        if (frame.has_value() && frame->type == MsgType::Summary) {
            const auto &classes = frame->metrics.metrics.classes();
            for (std::size_t i = 1; i < classes.size(); ++i)
                EXPECT_LT(classes[i].priority, classes[i - 1].priority);
        }
    }
}

TEST(Wire, AggregatorFramesFuzzedDeclaredLengthsNeverCrash)
{
    // The declared-length hostility sweep over the v4 aggregator
    // frames specifically (the generic sweep above covers the rest).
    util::Rng rng(48811);
    BudgetMsg budget;
    budget.tree = 3;
    budget.edgeNode = 2;
    budget.budget = 99.75;
    const std::vector<std::vector<std::uint8_t>> bases = {
        net::encodeSummary(FrameMeta{1, 2, 6}, sampleMetrics()),
        net::encodeSubBudget(FrameMeta{1, 2, 7}, budget),
    };
    for (int trial = 0; trial < 2000; ++trial) {
        auto bytes = bases[static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(bases.size()) - 1))];
        const auto declared =
            static_cast<std::uint16_t>(rng.uniformInt(0, 65535));
        const std::size_t real_length =
            bytes.size() - net::kHeaderSize - net::kCrcSize;
        declarePayloadLength(bytes, declared);
        refreshCrc(bytes);
        const auto frame = net::decodeFrame(bytes);
        if (declared != real_length) {
            EXPECT_FALSE(frame.has_value())
                << "declared " << declared << " real " << real_length;
        } else {
            EXPECT_TRUE(frame.has_value());
        }
    }
}

// ------------------------------------ wire v5 trace context

namespace {

/** A context exercising every field, with a precision-hostile clock. */
net::TraceContext
sampleContext()
{
    net::TraceContext ctx;
    ctx.traceId = 0xBEEF;
    ctx.originTier = 2;
    ctx.sendMs = 1723111845123.000244140625; // sub-ms unix epoch
    return ctx;
}

FrameMeta
metaWithContext(std::uint16_t sender, std::uint32_t epoch,
                std::uint32_t seq)
{
    FrameMeta meta{sender, epoch, seq};
    meta.trace = sampleContext();
    return meta;
}

} // namespace

TEST(Wire, TraceContextRoundTripIsBitExact)
{
    const auto bytes = net::encodeMetrics(metaWithContext(42, 1000, 77),
                                          sampleMetrics());
    const auto frame = net::decodeFrame(bytes);
    ASSERT_TRUE(frame.has_value());
    ASSERT_TRUE(frame->trace.has_value());
    EXPECT_EQ(frame->trace->traceId, 0xBEEF);
    EXPECT_EQ(frame->trace->originTier, 2);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(frame->trace->sendMs),
              std::bit_cast<std::uint64_t>(sampleContext().sendMs));
    // The payload decodes identically with the context in front of it.
    expectBitExact(frame->metrics.metrics, sampleMetrics().metrics);
}

TEST(Wire, TraceContextAbsentByDefault)
{
    const auto frame = net::decodeFrame(
        net::encodeHeartbeat(FrameMeta{7, 3, 1}));
    ASSERT_TRUE(frame.has_value());
    EXPECT_FALSE(frame->trace.has_value());
}

TEST(Wire, TraceContextOnEveryMessageType)
{
    // Stamping a context must not disturb any payload parser: every
    // type round-trips with the context present.
    BudgetMsg budget;
    budget.tree = 1;
    budget.edgeNode = 9;
    budget.budget = 512.25;
    const std::vector<std::vector<std::uint8_t>> bases = {
        net::encodeMetrics(metaWithContext(1, 2, 3), sampleMetrics()),
        net::encodeBudget(metaWithContext(1, 2, 4), budget),
        net::encodeHeartbeat(metaWithContext(1, 2, 5)),
        net::encodePinnedSummary(metaWithContext(1, 2, 6),
                                 sampleMetrics()),
        net::encodeSpoBudget(metaWithContext(1, 2, 7), budget),
        net::encodeCheckpoint(metaWithContext(1, 2, 8),
                              sampleCheckpoint()),
        net::encodeRehome(metaWithContext(1, 2, 9), sampleCheckpoint()),
        net::encodeSummary(metaWithContext(1, 2, 10), sampleMetrics()),
        net::encodeSubBudget(metaWithContext(1, 2, 11), budget),
    };
    for (const auto &bytes : bases) {
        const auto frame = net::decodeFrame(bytes);
        ASSERT_TRUE(frame.has_value());
        ASSERT_TRUE(frame->trace.has_value());
        EXPECT_EQ(frame->trace->traceId, 0xBEEF);
        EXPECT_EQ(frame->trace->originTier, 2);
    }
}

TEST(Wire, HostileTraceContextLengthRejected)
{
    // The context-length byte (header offset 16) may only hold 0 or
    // kTraceContextBytes. Every other value — shorter, longer, or
    // sentinel-looking — must be rejected on the declared value alone;
    // the CRC is kept honest so nothing else can be the reason.
    for (const std::uint8_t hostile :
         {std::uint8_t{1}, std::uint8_t{5}, std::uint8_t{10},
          std::uint8_t{12}, std::uint8_t{64}, std::uint8_t{255}}) {
        auto bytes = net::encodeHeartbeat(metaWithContext(1, 2, 3));
        bytes[16] = hostile;
        refreshCrc(bytes);
        EXPECT_FALSE(net::decodeFrame(bytes).has_value())
            << "context length " << static_cast<int>(hostile);
    }
}

TEST(Wire, TraceContextDeclaredButMissingRejected)
{
    // A header promising a context over a frame that carries none is a
    // length mismatch, not an out-of-bounds read.
    auto bytes = net::encodeHeartbeat(FrameMeta{1, 2, 3});
    bytes[16] = static_cast<std::uint8_t>(net::kTraceContextBytes);
    refreshCrc(bytes);
    EXPECT_FALSE(net::decodeFrame(bytes).has_value());
}

TEST(Wire, TraceContextPresentButUndeclaredRejected)
{
    // The mirror image: a stamped frame whose length byte is zeroed
    // makes the context bytes trailing garbage.
    auto bytes = net::encodeHeartbeat(metaWithContext(1, 2, 3));
    bytes[16] = 0;
    refreshCrc(bytes);
    EXPECT_FALSE(net::decodeFrame(bytes).has_value());
}

TEST(Wire, V4FramesRejectedByV5Decoder)
{
    // A v4 peer's frame has no context-length byte at all: its payload
    // (or CRC) begins at offset 16. Reconstruct that exact layout and
    // confirm the v5 decoder rejects it on the version byte — and
    // still rejects it if the version byte alone is forged to 5, since
    // the missing byte then shifts every remaining field.
    BudgetMsg msg;
    msg.tree = 1;
    msg.edgeNode = 4;
    msg.budget = 640.5;
    auto v5 = net::encodeBudget(FrameMeta{2, 9, 31}, msg);
    std::vector<std::uint8_t> v4(v5.begin(), v5.end());
    v4.erase(v4.begin() + 16); // drop the context-length byte
    v4[2] = 4;                 // claim wire v4
    refreshCrc(v4);
    EXPECT_FALSE(net::decodeFrame(v4).has_value());

    auto forged = v4;
    forged[2] = net::kWireVersion;
    refreshCrc(forged);
    EXPECT_FALSE(net::decodeFrame(forged).has_value());

    // And skew in the other direction: a well-formed v5 frame stamped
    // with the v4 version byte must be rejected by a v5 decoder.
    auto skewed = v5;
    skewed[2] = 4;
    refreshCrc(skewed);
    EXPECT_FALSE(net::decodeFrame(skewed).has_value());
}

TEST(Wire, FuzzedTraceContextLengthsNeverCrash)
{
    // Randomized context-length hostility over stamped and unstamped
    // frames of several types: patch the length byte to an arbitrary
    // value, refresh the CRC, and decode. Only the true length may
    // decode; nothing may crash or over-read.
    util::Rng rng(50915);
    BudgetMsg budget;
    budget.tree = 3;
    budget.edgeNode = 2;
    budget.budget = 99.75;
    const std::vector<std::vector<std::uint8_t>> bases = {
        net::encodeMetrics(metaWithContext(1, 2, 3), sampleMetrics()),
        net::encodeMetrics(FrameMeta{1, 2, 3}, sampleMetrics()),
        net::encodeSummary(metaWithContext(4, 5, 6), sampleMetrics()),
        net::encodeSubBudget(FrameMeta{7, 8, 9}, budget),
        net::encodeHeartbeat(metaWithContext(1, 2, 10)),
        net::encodeCheckpoint(FrameMeta{1, 2, 11}, sampleCheckpoint()),
    };
    for (int trial = 0; trial < 3000; ++trial) {
        auto bytes = bases[static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(bases.size()) - 1))];
        const auto real = bytes[16];
        const auto declared =
            static_cast<std::uint8_t>(rng.uniformInt(0, 255));
        bytes[16] = declared;
        refreshCrc(bytes);
        const auto frame = net::decodeFrame(bytes);
        if (declared != real) {
            EXPECT_FALSE(frame.has_value())
                << "declared " << static_cast<int>(declared) << " real "
                << static_cast<int>(real);
        } else {
            EXPECT_TRUE(frame.has_value());
        }
    }
}

// ===================================================================
// Membership plane (wire v6): MembershipDelta / MembershipAck carry
// the elasticity protocol, so they get the same hostile-input
// treatment as Checkpoint/Rehome — truncation, bit flips, version
// skew, and count/state hostility must all reject cleanly.
// ===================================================================

namespace {

/** A snapshot exercising every state and the generation fields. */
net::MembershipDeltaMsg
sampleMembershipDelta()
{
    net::MembershipDeltaMsg msg;
    msg.generation = 0xDEAD0007;
    msg.entries.push_back({0, net::WireUnitState::Live, 1});
    msg.entries.push_back({1, net::WireUnitState::Joining, 0xDEAD0006});
    msg.entries.push_back({2, net::WireUnitState::Draining, 42});
    msg.entries.push_back({5, net::WireUnitState::Left, 0});
    msg.entries.push_back({65535, net::WireUnitState::Live, 7});
    return msg;
}

/**
 * Hand-assemble a MembershipDelta frame whose payload bytes are given
 * verbatim (valid magic/version/length/CRC), so only the payload
 * parser can reject it.
 */
std::vector<std::uint8_t>
rawMembershipFrame(const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(net::kHeaderSize + payload.size() + net::kCrcSize);
    bytes = {
        0x9E, 0xCA,                  // magic, little-endian
        net::kWireVersion,
        static_cast<std::uint8_t>(MsgType::MembershipDelta),
        0xFF, 0xFF,                  // sender (the room)
        0x02, 0x00, 0x00, 0x00,      // epoch
        0x03, 0x00, 0x00, 0x00,      // seq
        static_cast<std::uint8_t>(payload.size() & 0xFF),
        static_cast<std::uint8_t>(payload.size() >> 8),
        0x00,                        // no trace context
    };
    bytes.insert(bytes.end(), payload.begin(), payload.end());
    bytes.resize(bytes.size() + net::kCrcSize, 0);
    refreshCrc(bytes);
    return bytes;
}

} // namespace

TEST(Wire, MembershipDeltaRoundTrip)
{
    const auto msg = sampleMembershipDelta();
    const FrameMeta meta{net::kRoomSender, 77, 900};
    const auto frame =
        net::decodeFrame(net::encodeMembershipDelta(meta, msg));
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::MembershipDelta);
    EXPECT_EQ(frame->sender, net::kRoomSender);
    EXPECT_EQ(frame->epoch, 77u);
    EXPECT_EQ(frame->wireVersion, net::kWireVersion);
    EXPECT_EQ(frame->membershipDelta.generation, msg.generation);
    ASSERT_EQ(frame->membershipDelta.entries.size(),
              msg.entries.size());
    for (std::size_t i = 0; i < msg.entries.size(); ++i) {
        EXPECT_EQ(frame->membershipDelta.entries[i].endpoint,
                  msg.entries[i].endpoint);
        EXPECT_EQ(frame->membershipDelta.entries[i].state,
                  msg.entries[i].state);
        EXPECT_EQ(frame->membershipDelta.entries[i].sinceGeneration,
                  msg.entries[i].sinceGeneration);
    }
}

TEST(Wire, MembershipAckRoundTrip)
{
    net::MembershipAckMsg ack;
    ack.generation = 0xCAFE0001;
    ack.endpoint = 513;
    ack.state = net::WireUnitState::Draining;
    const auto frame = net::decodeFrame(
        net::encodeMembershipAck(FrameMeta{513, 9, 10}, ack));
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::MembershipAck);
    EXPECT_EQ(frame->membershipAck.generation, ack.generation);
    EXPECT_EQ(frame->membershipAck.endpoint, ack.endpoint);
    EXPECT_EQ(frame->membershipAck.state, ack.state);
}

TEST(Wire, EmptyMembershipDeltaRoundTrip)
{
    // A table with no rows is legal on the wire (a deployment of one
    // root); the codec must carry it.
    net::MembershipDeltaMsg msg;
    msg.generation = 1;
    const auto frame = net::decodeFrame(
        net::encodeMembershipDelta(FrameMeta{}, msg));
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->membershipDelta.generation, 1u);
    EXPECT_TRUE(frame->membershipDelta.entries.empty());
}

TEST(Wire, MembershipDeltaEveryTruncationRejected)
{
    const auto bytes = net::encodeMembershipDelta(
        FrameMeta{net::kRoomSender, 2, 3}, sampleMembershipDelta());
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + len);
        EXPECT_FALSE(net::decodeFrame(prefix).has_value())
            << "prefix of " << len << " bytes decoded";
    }
}

TEST(Wire, MembershipAckEveryTruncationRejected)
{
    net::MembershipAckMsg ack;
    ack.generation = 9;
    ack.endpoint = 4;
    ack.state = net::WireUnitState::Left;
    const auto bytes =
        net::encodeMembershipAck(FrameMeta{4, 2, 3}, ack);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + len);
        EXPECT_FALSE(net::decodeFrame(prefix).has_value())
            << "prefix of " << len << " bytes decoded";
    }
}

TEST(Wire, MembershipDeltaEverySingleBitFlipRejected)
{
    const auto bytes = net::encodeMembershipDelta(
        FrameMeta{net::kRoomSender, 2, 3}, sampleMembershipDelta());
    for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
        auto corrupted = bytes;
        corrupted[bit / 8] ^=
            static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_FALSE(net::decodeFrame(corrupted).has_value())
            << "bit " << bit << " flip decoded";
    }
}

TEST(Wire, MembershipAckEverySingleBitFlipRejected)
{
    net::MembershipAckMsg ack;
    ack.generation = 0xCAFE0001;
    ack.endpoint = 513;
    ack.state = net::WireUnitState::Joining;
    const auto bytes =
        net::encodeMembershipAck(FrameMeta{513, 2, 3}, ack);
    for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
        auto corrupted = bytes;
        corrupted[bit / 8] ^=
            static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_FALSE(net::decodeFrame(corrupted).has_value())
            << "bit " << bit << " flip decoded";
    }
}

TEST(Wire, MembershipUnderCompatVersionRejected)
{
    // Membership is a v6-only plane: a delta or ack re-stamped with
    // the compat (v5) version byte must be rejected even with an
    // honest CRC — a not-yet-upgraded worker can neither originate
    // nor be asked to parse elasticity frames. Data-plane types under
    // v5 keep decoding (the rolling-upgrade steady state); that is
    // covered by CheckpointVersionSkewRejected.
    auto delta = net::encodeMembershipDelta(
        FrameMeta{net::kRoomSender, 2, 3}, sampleMembershipDelta());
    delta[2] = net::kWireCompatVersion;
    refreshCrc(delta);
    EXPECT_FALSE(net::decodeFrame(delta).has_value());

    net::MembershipAckMsg ack;
    ack.generation = 2;
    ack.endpoint = 1;
    auto ack_bytes = net::encodeMembershipAck(FrameMeta{1, 2, 3}, ack);
    ack_bytes[2] = net::kWireCompatVersion;
    refreshCrc(ack_bytes);
    EXPECT_FALSE(net::decodeFrame(ack_bytes).has_value());
}

TEST(Wire, MembershipVersionSkewOutsideWindowRejected)
{
    for (const std::uint8_t version :
         {static_cast<std::uint8_t>(net::kWireCompatVersion - 1),
          static_cast<std::uint8_t>(net::kWireVersion + 1),
          static_cast<std::uint8_t>(0),
          static_cast<std::uint8_t>(255)}) {
        auto bytes = net::encodeMembershipDelta(
            FrameMeta{net::kRoomSender, 2, 3},
            sampleMembershipDelta());
        bytes[2] = version;
        refreshCrc(bytes);
        EXPECT_FALSE(net::decodeFrame(bytes).has_value())
            << "version " << static_cast<int>(version);
    }
}

TEST(Wire, HostileMembershipEntryCountRejectedBeforeAllocation)
{
    // Prelude: generation u32, then a count promising more rows than
    // the payload (or the kMaxMembershipEntries bound) allows. The
    // parser must reject on the declared count, not fault after a
    // count-sized allocation.
    for (const std::uint16_t hostile : {
             static_cast<std::uint16_t>(net::kMaxMembershipEntries + 1),
             static_cast<std::uint16_t>(4097),
             static_cast<std::uint16_t>(65535)}) {
        std::vector<std::uint8_t> payload(6, 0);
        payload[4] = static_cast<std::uint8_t>(hostile & 0xFF);
        payload[5] = static_cast<std::uint8_t>(hostile >> 8);
        EXPECT_FALSE(
            net::decodeFrame(rawMembershipFrame(payload)).has_value())
            << "entry count " << hostile;
    }
}

TEST(Wire, MembershipNonAscendingEndpointsRejected)
{
    // The snapshot invariant is strictly ascending endpoints: a
    // duplicate (or out-of-order) row could shadow an earlier unit's
    // state, so the parser rejects it outright.
    for (const std::uint16_t second : {7, 3}) {
        std::vector<std::uint8_t> payload(6, 0);
        payload[0] = 2; // generation = 2
        payload[4] = 2; // two rows
        const std::uint8_t live =
            static_cast<std::uint8_t>(net::WireUnitState::Live);
        const std::uint8_t rows[] = {
            7, 0, live, 1, 0, 0, 0,  // endpoint 7
            static_cast<std::uint8_t>(second & 0xFF),
            static_cast<std::uint8_t>(second >> 8),
            live, 1, 0, 0, 0,
        };
        payload.insert(payload.end(), rows, rows + sizeof(rows));
        EXPECT_FALSE(
            net::decodeFrame(rawMembershipFrame(payload)).has_value())
            << "second endpoint " << second;
    }
}

TEST(Wire, MembershipHostileStateByteRejected)
{
    // State bytes beyond Left (3) are outside the enum; reject rather
    // than cast-and-hope.
    for (const std::uint8_t hostile : {4, 5, 127, 255}) {
        std::vector<std::uint8_t> payload(6, 0);
        payload[0] = 2; // generation
        payload[4] = 1; // one row
        const std::uint8_t row[] = {1, 0, hostile, 1, 0, 0, 0};
        payload.insert(payload.end(), row, row + sizeof(row));
        EXPECT_FALSE(
            net::decodeFrame(rawMembershipFrame(payload)).has_value())
            << "state " << static_cast<int>(hostile);
    }
}

TEST(Wire, MembershipDeltaTrailingGarbageRejected)
{
    // Extra bytes after the last declared row mean the payload length
    // and the structure disagree; reject.
    auto bytes = net::encodeMembershipDelta(
        FrameMeta{net::kRoomSender, 2, 3}, sampleMembershipDelta());
    const std::size_t payload_len =
        bytes.size() - net::kHeaderSize - net::kCrcSize;
    bytes.insert(bytes.end() - net::kCrcSize, 0x00);
    declarePayloadLength(
        bytes, static_cast<std::uint16_t>(payload_len + 1));
    refreshCrc(bytes);
    EXPECT_FALSE(net::decodeFrame(bytes).has_value());
}
