/**
 * @file
 * Tests for the Table 4 data-center builder: tree shape, ratings,
 * derating, server placement, and cross-feed port consistency.
 */

#include <gtest/gtest.h>

#include "sim/datacenter.hh"

using namespace capmaestro;
using sim::buildDataCenter;
using sim::DataCenterParams;

TEST(DataCenterBuilder, Table4Shape)
{
    DataCenterParams params;
    params.phases = 1;
    params.serversPerRackPerPhase = 12;
    const auto dc = buildDataCenter(params);

    EXPECT_EQ(params.racks(), 162);
    EXPECT_EQ(dc.system->trees().size(), 2u); // 2 feeds x 1 phase
    EXPECT_EQ(dc.servers.size(), 162u * 12u);
    // Whole-center count scales by the 3 physical phases.
    EXPECT_EQ(params.totalServersFullCenter(), 162u * 3u * 12u);

    // Per tree: 1 root + 2 transformers + 18 RPPs + 162 CDUs + leaves.
    const auto &tree = dc.system->tree(0);
    EXPECT_EQ(tree.size(), 1u + 2u + 18u + 162u + 162u * 12u);
}

TEST(DataCenterBuilder, ThreePhaseShape)
{
    DataCenterParams params;
    params.phases = 3;
    params.serversPerRackPerPhase = 2;
    const auto dc = buildDataCenter(params);
    EXPECT_EQ(dc.system->trees().size(), 6u);
    EXPECT_EQ(dc.servers.size(), 162u * 3u * 2u);
}

TEST(DataCenterBuilder, RatingsAndDerates)
{
    DataCenterParams params;
    params.phases = 1;
    params.serversPerRackPerPhase = 2;
    const auto dc = buildDataCenter(params);
    int cdus = 0, rpps = 0, xfmrs = 0;
    dc.system->tree(0).forEach([&](const topo::TopoNode &n) {
        switch (n.kind) {
          case topo::NodeKind::Cdu:
            ++cdus;
            EXPECT_DOUBLE_EQ(n.limit(), 6900.0 * 0.8);
            break;
          case topo::NodeKind::Rpp:
            ++rpps;
            EXPECT_DOUBLE_EQ(n.limit(), 52000.0 * 0.8);
            break;
          case topo::NodeKind::Transformer:
            ++xfmrs;
            EXPECT_DOUBLE_EQ(n.limit(), 420000.0 * 0.8);
            break;
          case topo::NodeKind::Contractual:
            EXPECT_EQ(n.limit(), topo::kUnlimited);
            break;
          default:
            break;
        }
    });
    EXPECT_EQ(cdus, 162);
    EXPECT_EQ(rpps, 18);
    EXPECT_EQ(xfmrs, 2);
}

TEST(DataCenterBuilder, DualFeedPortsForEveryServer)
{
    DataCenterParams params;
    params.phases = 1;
    params.serversPerRackPerPhase = 3;
    const auto dc = buildDataCenter(params);
    for (std::size_t id = 0; id < dc.servers.size(); ++id) {
        const auto ports =
            dc.system->livePortsOf(static_cast<std::int32_t>(id));
        ASSERT_EQ(ports.size(), 2u) << "server " << id;
        EXPECT_EQ(dc.system->tree(ports.at(0).tree).feed(), 0);
        EXPECT_EQ(dc.system->tree(ports.at(1).tree).feed(), 1);
    }
}

TEST(DataCenterBuilder, PlacementConsistency)
{
    DataCenterParams params;
    params.phases = 3;
    params.serversPerRackPerPhase = 4;
    const auto dc = buildDataCenter(params);
    for (std::size_t id = 0; id < dc.servers.size(); ++id) {
        const auto &p = dc.servers[id];
        const auto expect_id = static_cast<std::size_t>(
            (p.rack * params.phases + p.phase)
                * params.serversPerRackPerPhase
            + p.slot);
        EXPECT_EQ(expect_id, id);
        EXPECT_LT(p.rack, params.racks());
        EXPECT_LT(p.phase, params.phases);
    }
}

TEST(DataCenterBuilder, UsableBudget)
{
    DataCenterParams params;
    EXPECT_DOUBLE_EQ(params.usableBudgetPerPhase(), 700e3 * 0.95);
}

TEST(DataCenterBuilder, TreeIndexMapping)
{
    DataCenterParams params;
    params.phases = 3;
    params.serversPerRackPerPhase = 1;
    const auto dc = buildDataCenter(params);
    for (int feed = 0; feed < 2; ++feed) {
        for (int phase = 0; phase < 3; ++phase) {
            const auto &tree =
                dc.system->tree(dc.treeIndex(feed, phase));
            EXPECT_EQ(tree.feed(), feed);
            EXPECT_EQ(tree.phase(), phase);
        }
    }
}

TEST(DataCenterBuilderDeath, RejectsBadShape)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    DataCenterParams params;
    params.serversPerRackPerPhase = 0;
    EXPECT_EXIT(buildDataCenter(params), testing::ExitedWithCode(1),
                "bad shape");
}
