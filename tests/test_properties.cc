/**
 * @file
 * Parameterized property suites (TEST_P) sweeping the allocation
 * invariants of DESIGN.md across policies, budget scales, and randomly
 * generated power topologies:
 *
 *   1. Safety: no node's children ever receive more than its budget or
 *      its power limit.
 *   2. Feasibility floor: every live leaf gets at least its Pcap_min
 *      when the tree is feasible.
 *   3. No waste: no leaf is budgeted beyond its constraint.
 *   4. Priority dominance (Global Priority): a higher-priority leaf is
 *      throttled only when every lower-priority leaf sharing each of its
 *      binding ancestors is already at its floor.
 *   5. Budget monotonicity: growing the root budget never shrinks any
 *      leaf's budget.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>

#include "control/control_tree.hh"
#include "policy/policy.hh"
#include "topology/power_tree.hh"
#include "util/random.hh"

using namespace capmaestro;
using ctrl::ControlTree;
using ctrl::LeafInput;

namespace {

/** A randomly generated topology plus its leaf inputs. */
struct RandomCase
{
    std::unique_ptr<topo::PowerTree> tree;
    std::map<topo::NodeId, LeafInput> inputs; // keyed by leaf node id
};

/** Generate a random 2-4 level tree with plausible ratings. */
RandomCase
makeRandomCase(util::Rng &rng, int priorities)
{
    RandomCase rc;
    rc.tree = std::make_unique<topo::PowerTree>(0, 0, "fuzz");
    const auto root = rc.tree->makeRoot(topo::NodeKind::Breaker, "root",
                                        rng.uniform(2000.0, 8000.0));

    std::int32_t server = 0;
    const int branches = static_cast<int>(rng.uniformInt(1, 4));
    for (int b = 0; b < branches; ++b) {
        const auto mid = rc.tree->addChild(
            root, topo::NodeKind::Breaker, "b" + std::to_string(b),
            rng.uniform(600.0, 2500.0));
        // Half the branches get an extra level.
        topo::NodeId parent = mid;
        if (rng.chance(0.5)) {
            parent = rc.tree->addChild(mid, topo::NodeKind::Cdu,
                                       "c" + std::to_string(b),
                                       rng.uniform(500.0, 2000.0));
        }
        const int leaves = static_cast<int>(rng.uniformInt(1, 4));
        for (int l = 0; l < leaves; ++l, ++server) {
            const auto port = rc.tree->addSupplyPort(
                parent, "s" + std::to_string(server), {server, 0});
            LeafInput in;
            in.live = rng.chance(0.92);
            in.priority =
                static_cast<Priority>(rng.uniformInt(0, priorities - 1));
            in.capMin = rng.uniform(80.0, 300.0);
            in.demand = in.capMin + rng.uniform(0.0, 250.0);
            in.constraint = in.demand + rng.uniform(0.0, 100.0);
            rc.inputs[port] = in;
        }
    }
    return rc;
}

/** Sum of the floors of live leaves (for feasibility checks). */
Watts
floorSum(const RandomCase &rc)
{
    Watts sum = 0.0;
    for (const auto &[node, in] : rc.inputs)
        sum += in.live ? in.capMin : 0.0;
    return sum;
}

/** Apply inputs and allocate; returns leaf budgets keyed by node id. */
std::map<topo::NodeId, Watts>
allocate(ControlTree &ct, const RandomCase &rc, Watts budget,
         bool *feasible = nullptr)
{
    for (const auto &[node, in] : rc.inputs)
        ct.setLeafInput(*rc.tree->node(node).supplyRef, in);
    ct.gather();
    const auto outcome = ct.allocate(budget);
    if (feasible)
        *feasible = outcome.feasible;
    std::map<topo::NodeId, Watts> budgets;
    for (const auto &[node, in] : rc.inputs)
        budgets[node] = ct.nodeBudget(node);
    return budgets;
}

using PolicyBudgetParam = std::tuple<policy::PolicyKind, double>;

class AllocationInvariants
    : public testing::TestWithParam<PolicyBudgetParam>
{
};

std::string
policyBudgetName(const testing::TestParamInfo<PolicyBudgetParam> &info)
{
    std::string name = policy::policyName(std::get<0>(info.param));
    for (auto &c : name) {
        if (c == ' ')
            c = '_';
    }
    return name + "_x"
           + std::to_string(
               static_cast<int>(std::get<1>(info.param) * 100));
}

std::string
levelName(const testing::TestParamInfo<int> &info)
{
    return "levels" + std::to_string(info.param);
}

} // namespace

TEST_P(AllocationInvariants, SafetyFloorsAndNoWaste)
{
    const auto [kind, budget_scale] = GetParam();
    util::Rng rng(1234 + static_cast<int>(kind) * 17
                  + static_cast<int>(budget_scale * 100));

    for (int trial = 0; trial < 60; ++trial) {
        const auto rc = makeRandomCase(rng, 3);
        ControlTree ct(*rc.tree, policy::treePolicy(kind));
        const Watts budget = budget_scale * floorSum(rc) + 50.0;
        bool feasible = false;
        const auto budgets = allocate(ct, rc, budget, &feasible);

        // 1. Hierarchical safety at every interior node.
        rc.tree->forEach([&](const topo::TopoNode &n) {
            if (n.kind == topo::NodeKind::SupplyPort
                || n.children.empty()) {
                return;
            }
            Watts child_sum = 0.0;
            for (const auto c : n.children)
                child_sum += ct.nodeBudget(c);
            EXPECT_LE(child_sum, ct.nodeBudget(n.id) + 1e-6)
                << n.name << " trial " << trial;
            EXPECT_LE(child_sum, n.limit() + 1e-6)
                << n.name << " trial " << trial;
        });

        for (const auto &[node, in] : rc.inputs) {
            if (!in.live) {
                // Dead leaves receive nothing.
                EXPECT_DOUBLE_EQ(budgets.at(node), 0.0);
                continue;
            }
            // 3. No waste beyond the leaf constraint.
            EXPECT_LE(budgets.at(node), in.constraint + 1e-6);
            // 2. Floors when feasible.
            if (feasible) {
                EXPECT_GE(budgets.at(node), in.capMin - 1e-6)
                    << "trial " << trial;
            }
        }
    }
}

TEST_P(AllocationInvariants, BudgetMonotonicity)
{
    const auto [kind, budget_scale] = GetParam();
    util::Rng rng(777 + static_cast<int>(kind));

    for (int trial = 0; trial < 40; ++trial) {
        const auto rc = makeRandomCase(rng, 3);
        ControlTree ct(*rc.tree, policy::treePolicy(kind));
        const Watts base = budget_scale * floorSum(rc) + 50.0;
        const auto small = allocate(ct, rc, base);
        const auto large = allocate(ct, rc, base * 1.25);
        for (const auto &[node, in] : rc.inputs) {
            EXPECT_GE(large.at(node), small.at(node) - 1e-6)
                << "trial " << trial << " node " << node;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyBudgetSweep, AllocationInvariants,
    testing::Combine(testing::Values(policy::PolicyKind::NoPriority,
                                     policy::PolicyKind::LocalPriority,
                                     policy::PolicyKind::GlobalPriority),
                     testing::Values(0.8, 1.1, 1.5, 3.0)),
    policyBudgetName);

namespace {

class GlobalPriorityDominance : public testing::TestWithParam<int>
{
};

} // namespace

TEST_P(GlobalPriorityDominance, HigherNeverThrottledBeforeLower)
{
    // 4. Under Global Priority, if a higher-priority leaf is throttled,
    // then along the path to the root there is a binding constraint
    // under which every lower-priority leaf is already at its floor.
    // We verify the contrapositive pairwise on the (binding) root: if
    // some lower-priority leaf is above floor, every higher-priority
    // leaf sharing only the root must be unthrottled -- unless a tighter
    // intermediate breaker binds the higher leaf alone, which we detect
    // by checking that leaf's ancestor budgets.
    util::Rng rng(9000 + GetParam());
    for (int trial = 0; trial < 50; ++trial) {
        const auto rc = makeRandomCase(rng, GetParam());
        ControlTree ct(*rc.tree, ctrl::TreePolicy::globalPriority());
        const Watts budget = 1.2 * floorSum(rc);
        bool feasible = false;
        const auto budgets = allocate(ct, rc, budget, &feasible);
        if (!feasible)
            continue;

        // A leaf's "locally saturated" ancestors: those whose children
        // budgets consume the ancestor's budget (within epsilon).
        auto has_saturated_ancestor = [&](topo::NodeId leaf) {
            for (topo::NodeId a = rc.tree->node(leaf).parent;
                 a != topo::kNoNode; a = rc.tree->node(a).parent) {
                const auto &an = rc.tree->node(a);
                Watts child_sum = 0.0;
                for (const auto c : an.children)
                    child_sum += ct.nodeBudget(c);
                const Watts cap =
                    std::min(ct.nodeBudget(a), an.limit());
                if (a != rc.tree->root() && child_sum >= cap - 1e-3)
                    return true;
            }
            return false;
        };

        for (const auto &[hi_node, hi] : rc.inputs) {
            if (!hi.live)
                continue;
            const bool hi_throttled =
                budgets.at(hi_node)
                < std::max(hi.demand, hi.capMin) - 1e-3;
            if (!hi_throttled || has_saturated_ancestor(hi_node))
                continue;
            // hi is throttled by the root alone: every strictly lower
            // priority live leaf must be at its floor.
            for (const auto &[lo_node, lo] : rc.inputs) {
                if (!lo.live || lo.priority >= hi.priority)
                    continue;
                EXPECT_LE(budgets.at(lo_node), lo.capMin + 1e-3)
                    << "trial " << trial << ": leaf " << lo_node
                    << " (p" << lo.priority << ") above floor while "
                    << hi_node << " (p" << hi.priority
                    << ") is root-throttled";
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(PriorityLevels, GlobalPriorityDominance,
                         testing::Values(2, 3, 5, 8), levelName);
