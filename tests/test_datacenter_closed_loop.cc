/**
 * @file
 * Flagship integration test: the full Table 4 data center (162 racks,
 * both feeds, one phase) under end-to-end closed-loop control — real
 * sensing, estimation, allocation, SPO, and actuation for every server —
 * through normal operation and a feed failure.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/closed_loop.hh"
#include "sim/datacenter.hh"
#include "sim/scenario.hh"
#include "stats/accumulator.hh"
#include "util/random.hh"

using namespace capmaestro;
using sim::ClosedLoopSim;

namespace {

constexpr double kHighPriorityFraction = 0.3;

struct DcRig
{
    std::vector<Priority> priorities;
    std::unique_ptr<ClosedLoopSim> sim;
};

DcRig
makeDataCenterRig(core::ServiceConfig config, std::uint64_t seed,
                  int per_phase)
{
    sim::DataCenterParams params;
    params.phases = 1;
    params.serversPerRackPerPhase = per_phase;
    auto dc = sim::buildDataCenter(params);

    util::Rng rng(seed);
    DcRig rig;
    std::vector<sim::ServerSetup> servers;
    servers.reserve(dc.servers.size());
    for (std::size_t i = 0; i < dc.servers.size(); ++i) {
        const Priority priority =
            rng.chance(kHighPriorityFraction) ? 1 : 0;
        rig.priorities.push_back(priority);
        sim::ServerSetup s;
        s.spec = sim::testbedServerSpec("s" + std::to_string(i),
                                        priority,
                                        rng.uniform(0.45, 0.55));
        s.workload = std::make_unique<dev::ConstantWorkload>(
            rng.uniform(0.85, 1.0)); // heavy: the emergency must cap
        servers.push_back(std::move(s));
    }

    rig.sim = std::make_unique<ClosedLoopSim>(
        std::move(dc.system), std::move(servers), config, seed);
    rig.sim->service().refreshRootBudgets(
        params.usableBudgetPerPhase());
    return rig;
}

} // namespace

TEST(DataCenterClosedLoop, FeedFailureAtScale)
{
    // 1944 heavily loaded servers (~915 kW of demand against the
    // 665 kW usable budget): capping is active even before the failure;
    // after feed B dies the survivor carries everything while
    // protecting the high-priority 30 %.
    core::ServiceConfig config;
    config.enableSpo = false; // symmetric splits: nothing to strand
    auto rig = makeDataCenterRig(config, 99, /*per_phase=*/12);
    auto &simulator = *rig.sim;

    sim::DataCenterParams params;
    params.phases = 1;
    params.serversPerRackPerPhase = 12;

    simulator.failFeedAt(60, 1, params.usableBudgetPerPhase());
    simulator.run(180);

    EXPECT_FALSE(simulator.anyBreakerTripped());
    EXPECT_TRUE(
        simulator.service().lastStats().allocation.feasible);

    // Aggregate budgets respect the contractual budget at all times.
    const auto &stats = simulator.service().lastStats();
    EXPECT_LE(stats.budgetByTree[0],
              params.usableBudgetPerPhase() + 1.0);
    EXPECT_DOUBLE_EQ(stats.budgetByTree[1], 0.0);

    // Post-failure: every CDU load within its derated limit; spot-check
    // a sample of breaker series.
    const auto &rec = simulator.recorder();
    for (int rack : {0, 50, 100, 161}) {
        const std::string series =
            "feedA.phase0.feedA.phase0.cdu" + std::to_string(rack)
            + ".power";
        // Series name is tree.name() + "." + node name.
        const double max_load =
            rec.max("feedA.phase0.feedA.phase0.cdu" + std::to_string(rack)
                        + ".power",
                    100, 179);
        EXPECT_LE(max_load, 6900.0 * 0.8 * 1.02) << series;
    }

    // High-priority servers fare strictly better than low-priority ones.
    stats::Accumulator high, low;
    for (std::size_t i = 0; i < rig.priorities.size(); ++i) {
        const double tp = rec.mean(
            ClosedLoopSim::serverSeries(i, "throughput"), 140, 179);
        (rig.priorities[i] > 0 ? high : low).add(tp);
    }
    EXPECT_GT(high.mean(), 0.99); // protected through the emergency
    EXPECT_LT(low.mean(), 0.92);  // low priority absorbed the shortfall
    EXPECT_GT(low.mean(), 0.70);  // but kept its guaranteed minimum
}

TEST(DataCenterClosedLoop, NormalOperationUncapped)
{
    core::ServiceConfig config;
    auto rig = makeDataCenterRig(config, 7, /*per_phase=*/3);
    rig.sim->run(60);
    EXPECT_FALSE(rig.sim->anyBreakerTripped());
    // Ample budget: every server at full throughput.
    stats::Accumulator all;
    for (std::size_t i = 0; i < rig.priorities.size(); ++i) {
        all.add(rig.sim->recorder().mean(
            ClosedLoopSim::serverSeries(i, "throughput"), 40, 59));
    }
    EXPECT_GT(all.min(), 0.99);
}
