/**
 * @file
 * Telemetry tests: registry identity and label rules, histogram
 * snapshot merge, Prometheus/JSONL rendering, period-tracer span
 * semantics, and the end-to-end contract on a message-plane closed
 * loop — every control period emits exactly one trace whose phase
 * spans agree with the MessageStats counters, and enabling telemetry
 * never perturbs the control decisions.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "config/loader.hh"
#include "sim/closed_loop.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace.hh"
#include "util/json.hh"

using namespace capmaestro;
using telemetry::Labels;
using telemetry::PeriodTracer;
using telemetry::Registry;

namespace {

/** Scalar value of a named series in a registry snapshot (-1 absent). */
double
seriesValue(const Registry &registry, const std::string &name,
            const Labels &labels = {})
{
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    for (const auto &snap : registry.snapshot()) {
        if (snap.name == name && snap.labels == sorted)
            return snap.value;
    }
    return -1.0;
}

} // namespace

TEST(Registry, SameNameAndLabelsShareOneSeries)
{
    Registry registry;
    auto a = registry.counter("requests_total", {{"code", "200"}});
    auto b = registry.counter("requests_total", {{"code", "200"}});
    a.inc();
    b.inc(2.0);
    EXPECT_DOUBLE_EQ(a.value(), 3.0);
    EXPECT_DOUBLE_EQ(b.value(), 3.0);
    EXPECT_EQ(registry.seriesCount(), 1u);
}

TEST(Registry, LabelOrderDoesNotSplitSeries)
{
    Registry registry;
    auto a = registry.gauge("g", {{"a", "1"}, {"b", "2"}});
    auto b = registry.gauge("g", {{"b", "2"}, {"a", "1"}});
    a.set(7.0);
    EXPECT_DOUBLE_EQ(b.value(), 7.0);
    EXPECT_EQ(registry.seriesCount(), 1u);
}

TEST(Registry, DistinctLabelValuesAreDistinctSeries)
{
    Registry registry;
    auto a = registry.counter("c", {{"tree", "X"}});
    auto b = registry.counter("c", {{"tree", "Y"}});
    a.inc(5.0);
    b.inc(1.0);
    EXPECT_DOUBLE_EQ(a.value(), 5.0);
    EXPECT_DOUBLE_EQ(b.value(), 1.0);
    EXPECT_EQ(registry.seriesCount(), 2u);
    EXPECT_DOUBLE_EQ(seriesValue(registry, "c", {{"tree", "X"}}), 5.0);
    EXPECT_DOUBLE_EQ(seriesValue(registry, "c", {{"tree", "Y"}}), 1.0);
}

TEST(Registry, NullHandlesAreNoOps)
{
    telemetry::Counter counter;
    telemetry::Gauge gauge;
    telemetry::HistogramMetric histogram;
    counter.inc();
    gauge.set(3.0);
    gauge.add(1.0);
    histogram.observe(2.0);
    EXPECT_FALSE(counter.valid());
    EXPECT_FALSE(gauge.valid());
    EXPECT_FALSE(histogram.valid());
    EXPECT_DOUBLE_EQ(counter.value(), 0.0);
    EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
    EXPECT_EQ(histogram.count(), 0u);
}

TEST(Registry, CounterRejectsNegativeDeltas)
{
    Registry registry;
    auto c = registry.counter("c");
    c.inc(2.0);
    c.inc(-5.0); // ignored: counters are monotonic
    EXPECT_DOUBLE_EQ(c.value(), 2.0);
}

TEST(Registry, HistogramSnapshotCarriesBinsSumQuantiles)
{
    Registry registry;
    auto h = registry.histogram("latency_ms", 0.0, 10.0, 10);
    for (int i = 0; i < 100; ++i)
        h.observe(0.1 * i); // uniform over [0, 10)
    EXPECT_EQ(h.count(), 100u);

    const auto snaps = registry.snapshot();
    ASSERT_EQ(snaps.size(), 1u);
    ASSERT_TRUE(snaps[0].histogram.has_value());
    const auto &snap = *snaps[0].histogram;
    EXPECT_EQ(snap.count, 100u);
    EXPECT_DOUBLE_EQ(snap.lo, 0.0);
    EXPECT_DOUBLE_EQ(snap.hi, 10.0);
    ASSERT_EQ(snap.counts.size(), 10u);
    for (const auto c : snap.counts)
        EXPECT_EQ(c, 10u);
    EXPECT_NEAR(snap.sum, 495.0, 1e-9);
    EXPECT_NEAR(snap.p50, 5.0, 0.6);
    EXPECT_NEAR(snap.p95, 9.5, 0.6);
    EXPECT_NEAR(snap.quantile(0.5), 5.0, 1.0);
    EXPECT_DOUBLE_EQ(snap.upperEdge(0), 1.0);
    EXPECT_DOUBLE_EQ(snap.upperEdge(9), 10.0);
}

TEST(Registry, HistogramSnapshotMergeIsBinwise)
{
    Registry left, right;
    auto hl = left.histogram("h", 0.0, 4.0, 4);
    auto hr = right.histogram("h", 0.0, 4.0, 4);
    hl.observe(0.5);
    hl.observe(1.5);
    hr.observe(1.5);
    hr.observe(3.5);

    auto a = *left.snapshot()[0].histogram;
    const auto b = *right.snapshot()[0].histogram;
    a.merge(b);
    EXPECT_EQ(a.count, 4u);
    EXPECT_DOUBLE_EQ(a.sum, 7.0);
    EXPECT_EQ(a.counts[0], 1u);
    EXPECT_EQ(a.counts[1], 2u);
    EXPECT_EQ(a.counts[2], 0u);
    EXPECT_EQ(a.counts[3], 1u);
    // Post-merge quantiles are re-derived from the merged bins.
    EXPECT_GT(a.p95, a.p50);
    EXPECT_LE(a.p99, 4.0);
}

TEST(Registry, PrometheusRenderFollowsTextFormat)
{
    Registry registry;
    registry.counter("runs_total", {}, "completed runs").inc(3.0);
    registry.gauge("temp", {{"room", "a\"b"}}).set(21.5);
    auto h = registry.histogram("lat", 0.0, 2.0, 2);
    h.observe(0.5);
    h.observe(1.5);
    h.observe(99.0); // clamps into the last bucket

    const std::string out = registry.renderPrometheus();
    EXPECT_NE(out.find("# HELP runs_total completed runs\n"),
              std::string::npos);
    EXPECT_NE(out.find("# TYPE runs_total counter\n"), std::string::npos);
    EXPECT_NE(out.find("runs_total 3\n"), std::string::npos);
    // Label values are escaped.
    EXPECT_NE(out.find("temp{room=\"a\\\"b\"} 21.5\n"),
              std::string::npos);
    // Cumulative buckets plus the implicit +Inf, _sum, and _count.
    EXPECT_NE(out.find("lat_bucket{le=\"1\"} 1\n"), std::string::npos);
    EXPECT_NE(out.find("lat_bucket{le=\"2\"} 3\n"), std::string::npos);
    EXPECT_NE(out.find("lat_bucket{le=\"+Inf\"} 3\n"),
              std::string::npos);
    EXPECT_NE(out.find("lat_sum 101\n"), std::string::npos);
    EXPECT_NE(out.find("lat_count 3\n"), std::string::npos);
}

TEST(Registry, JsonlRoundTripsThroughTheParser)
{
    Registry registry;
    registry.counter("c", {{"k", "v"}}).inc();
    registry.histogram("h", 0.0, 1.0, 2).observe(0.3);
    std::ostringstream os;
    registry.writeJsonl(os);

    std::istringstream is(os.str());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(is, line)) {
        ++lines;
        const auto parsed = util::parseJson(line, "telemetry-test");
        EXPECT_TRUE(parsed.at("name").isString());
        EXPECT_TRUE(parsed.at("kind").isString());
        EXPECT_TRUE(parsed.at("labels").isObject());
        EXPECT_TRUE(parsed.find("value") != nullptr
                    || parsed.find("histogram") != nullptr);
    }
    EXPECT_EQ(lines, 2u);
}

TEST(Tracer, SpansOutsideAPeriodAreDropped)
{
    PeriodTracer tracer;
    const auto span = tracer.begin("orphan");
    EXPECT_EQ(span, PeriodTracer::kNoSpan);
    tracer.num(span, "k", 1.0); // all no-ops
    tracer.end(span);
    EXPECT_TRUE(tracer.periods().empty());
    EXPECT_FALSE(tracer.inPeriod());
}

TEST(Tracer, SpanNestingAndAttributes)
{
    PeriodTracer tracer;
    tracer.noteSimTime(64.0);
    tracer.beginPeriod(7);
    const auto outer = tracer.begin("gather");
    tracer.num(outer, "messages", 12.0);
    const auto inner = tracer.begin("tree", outer);
    tracer.str(inner, "name", "X");
    tracer.end(inner);
    tracer.end(outer);
    tracer.periodNum("demand_watts", 900.0);
    tracer.endPeriod();

    ASSERT_EQ(tracer.periods().size(), 1u);
    const auto &trace = tracer.periods()[0];
    EXPECT_EQ(trace.period, 7u);
    EXPECT_DOUBLE_EQ(trace.simTime, 64.0);
    EXPECT_DOUBLE_EQ(trace.num("demand_watts"), 900.0);
    ASSERT_EQ(trace.spans.size(), 2u);
    EXPECT_EQ(trace.spans[0].name, "gather");
    EXPECT_EQ(trace.spans[0].parent, telemetry::TraceSpan::kNoParent);
    EXPECT_EQ(trace.spans[1].name, "tree");
    EXPECT_EQ(trace.spans[1].parent, 0u);
    EXPECT_EQ(trace.spans[1].str("name"), "X");
    EXPECT_DOUBLE_EQ(trace.named("gather")[0]->num("messages"), 12.0);
    // Nested span closed within its parent's bounds.
    EXPECT_GE(trace.spans[1].beginUs, trace.spans[0].beginUs);
    EXPECT_LE(trace.spans[1].endUs, trace.spans[0].endUs + 1e-6);
}

TEST(Tracer, OpenSpansCloseWithThePeriod)
{
    PeriodTracer tracer;
    tracer.beginPeriod(0);
    tracer.begin("left-open");
    tracer.endPeriod();
    ASSERT_EQ(tracer.periods().size(), 1u);
    const auto &span = tracer.periods()[0].spans[0];
    EXPECT_GE(span.endUs, span.beginUs);
}

TEST(Tracer, SimTimeStampsOnlyTheNextPeriod)
{
    PeriodTracer tracer;
    tracer.noteSimTime(8.0);
    tracer.beginPeriod(0);
    tracer.endPeriod();
    tracer.beginPeriod(1);
    tracer.endPeriod();
    ASSERT_EQ(tracer.periods().size(), 2u);
    EXPECT_DOUBLE_EQ(tracer.periods()[0].simTime, 8.0);
    EXPECT_DOUBLE_EQ(tracer.periods()[1].simTime, -1.0);
}

TEST(Tracer, JsonlSchemaRoundTrips)
{
    PeriodTracer tracer;
    tracer.beginPeriod(3);
    const auto span = tracer.begin("phase");
    tracer.num(span, "n", 2.0);
    tracer.end(span);
    tracer.endPeriod();

    std::ostringstream os;
    tracer.writeJsonl(os);
    const auto parsed = util::parseJson(os.str(), "trace-test");
    EXPECT_DOUBLE_EQ(parsed.at("period").asNumber(), 3.0);
    EXPECT_TRUE(parsed.at("wallMs").isNumber());
    const auto &spans = parsed.at("spans").asArray();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].at("name").asString(), "phase");
    EXPECT_DOUBLE_EQ(spans[0].at("attrs").at("n").asNumber(), 2.0);
    EXPECT_LE(spans[0].at("t0us").asNumber(),
              spans[0].at("t1us").asNumber());
}

namespace {

/** The Figure 2 testbed, single feed, SPO off (see test_net_closed_loop). */
const char *kScenario = R"({
  "feeds": 1,
  "trees": [
    {
      "feed": 0, "phase": 0, "name": "feed",
      "root": {
        "kind": "breaker", "name": "topCB", "rating": 1400,
        "children": [
          {
            "kind": "breaker", "name": "leftCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 0, "supply": 0 },
              { "kind": "supply", "server": 1, "supply": 0 }
            ]
          },
          {
            "kind": "breaker", "name": "rightCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 2, "supply": 0 },
              { "kind": "supply", "server": 3, "supply": 0 }
            ]
          }
        ]
      }
    }
  ],
  "servers": [
    { "name": "SA", "priority": 1, "supplies": [ { "share": 1.0 } ],
      "workload": { "type": "constant", "utilization": 0.695 } },
    { "name": "SB", "supplies": [ { "share": 1.0 } ],
      "workload": { "type": "constant", "utilization": 0.676 } },
    { "name": "SC", "supplies": [ { "share": 1.0 } ],
      "workload": { "type": "constant", "utilization": 0.687 } },
    { "name": "SD", "supplies": [ { "share": 1.0 } ],
      "workload": { "type": "constant", "utilization": 0.703 } }
  ],
  "service": { "policy": "global", "controlPeriodSeconds": 8,
               "spo": false },
  "budgets": { "perTree": [ 1240 ] }
})";

sim::ClosedLoopSim
makeSim(const std::string &transport_json)
{
    auto scenario = config::loadScenario(util::parseJson(kScenario));
    if (!transport_json.empty()) {
        config::applyTransportJson(scenario.service,
                                   util::parseJson(transport_json));
    }
    return config::makeSimulation(std::move(scenario), 1);
}

} // namespace

TEST(TelemetryClosedLoop, OneTracePerPeriodWithMatchingPhaseCounters)
{
    auto sim = makeSim("{\"dropRate\": 0.2, \"seed\": 11}");
    Registry registry;
    PeriodTracer tracer;
    sim.enableTelemetry(&registry, &tracer);

    std::size_t total_metrics_msgs = 0, total_budget_msgs = 0;
    for (int period = 0; period < 20; ++period) {
        sim.run(8);
        const auto &stats = sim.service().lastStats();
        const auto &msgs = stats.messages;
        total_metrics_msgs += msgs.metricsMessages;
        total_budget_msgs += msgs.budgetMessages;

        // Exactly one trace per control period, in order.
        ASSERT_EQ(tracer.periods().size(), stats.periodsRun);
        if (stats.periodsRun == 0)
            continue; // the first period fires on the next 8 s window
        const auto &trace = tracer.periods().back();
        EXPECT_EQ(trace.period, stats.periodsRun - 1);
        // The simulator stamped the trace with the period's sim time,
        // which falls inside the 8 s window that just ran.
        EXPECT_GT(trace.simTime, static_cast<double>(sim.now()) - 9.0);
        EXPECT_LE(trace.simTime, static_cast<double>(sim.now()));

        // The phase spans narrate the same numbers MessageStats counts.
        const auto gathers = trace.named("gather");
        const auto budgets = trace.named("budget");
        ASSERT_EQ(gathers.size(), 1u);
        ASSERT_EQ(budgets.size(), 1u);
        EXPECT_DOUBLE_EQ(gathers[0]->num("messages"),
                         static_cast<double>(msgs.metricsMessages));
        EXPECT_DOUBLE_EQ(gathers[0]->num("stale"),
                         static_cast<double>(msgs.staleReuses));
        EXPECT_DOUBLE_EQ(gathers[0]->num("lost"),
                         static_cast<double>(msgs.metricsLost));
        EXPECT_DOUBLE_EQ(budgets[0]->num("messages"),
                         static_cast<double>(msgs.budgetMessages));
        EXPECT_DOUBLE_EQ(budgets[0]->num("defaults"),
                         static_cast<double>(msgs.defaultBudgets));
        EXPECT_DOUBLE_EQ(gathers[0]->num("retries")
                             + budgets[0]->num("retries"),
                         static_cast<double>(msgs.retries));
        // One degraded span per degraded decision.
        EXPECT_EQ(trace.named("degraded").size(), msgs.degraded.size());
        // Phases are ordered and bounded by the period.
        EXPECT_LE(gathers[0]->endUs, budgets[0]->beginUs + 1e-6);
    }

    // Registry counters accumulate exactly what the periods reported.
    EXPECT_DOUBLE_EQ(
        seriesValue(registry, "capmaestro_plane_metrics_messages_total"),
        static_cast<double>(total_metrics_msgs));
    EXPECT_DOUBLE_EQ(
        seriesValue(registry, "capmaestro_plane_budget_messages_total"),
        static_cast<double>(total_budget_msgs));
    EXPECT_DOUBLE_EQ(seriesValue(registry, "capmaestro_periods_total"),
                     static_cast<double>(
                         sim.service().lastStats().periodsRun));

    // The per-server families carry one series per server.
    std::size_t server_period_series = 0;
    for (const auto &snap : registry.snapshot()) {
        if (snap.name == "capmaestro_server_periods_total")
            ++server_period_series;
    }
    EXPECT_EQ(server_period_series, 4u);
}

TEST(TelemetryClosedLoop, EnablingTelemetryDoesNotPerturbControl)
{
    // Same lossy scenario, same seed, telemetry on vs off: every
    // per-supply budget of every control period must stay bit-identical
    // (instrumentation is pure observation — it draws no randomness).
    auto plain = makeSim("{\"dropRate\": 0.2, \"seed\": 7}");
    auto traced = makeSim("{\"dropRate\": 0.2, \"seed\": 7}");
    Registry registry;
    PeriodTracer tracer;
    traced.enableTelemetry(&registry, &tracer);

    for (int period = 0; period < 15; ++period) {
        plain.run(8);
        traced.run(8);
        const auto &a = plain.service().lastStats().allocation;
        const auto &b = traced.service().lastStats().allocation;
        ASSERT_EQ(a.servers.size(), b.servers.size());
        for (std::size_t i = 0; i < a.servers.size(); ++i) {
            const auto &ab = a.servers[i].supplyBudget;
            const auto &bb = b.servers[i].supplyBudget;
            ASSERT_EQ(ab.size(), bb.size());
            for (std::size_t s = 0; s < ab.size(); ++s) {
                EXPECT_EQ(std::bit_cast<std::uint64_t>(ab[s]),
                          std::bit_cast<std::uint64_t>(bb[s]))
                    << "period " << period << " server " << i
                    << " supply " << s;
            }
        }
    }
}

TEST(TelemetryClosedLoop, MonolithicPathTracesAllocateAndApply)
{
    auto sim = makeSim("");
    Registry registry;
    PeriodTracer tracer;
    sim.enableTelemetry(&registry, &tracer);
    sim.run(40);

    ASSERT_EQ(tracer.periods().size(),
              sim.service().lastStats().periodsRun);
    const auto &trace = tracer.periods().back();
    EXPECT_EQ(trace.named("close").size(), 1u);
    EXPECT_EQ(trace.named("allocate").size(), 1u);
    EXPECT_EQ(trace.named("apply").size(), 1u);
    EXPECT_GT(trace.num("demand_watts"), 0.0);
    EXPECT_EQ(trace.num("feasible"), 1.0);

    // Allocation telemetry shows up with per-priority labels.
    EXPECT_GT(
        seriesValue(registry, "capmaestro_alloc_granted_watts",
                    {{"priority", "1"}}),
        0.0);
    EXPECT_GT(seriesValue(registry, "capmaestro_fleet_demand_watts"),
              0.0);
    // Wall-clock cost was observed once per period.
    for (const auto &snap : registry.snapshot()) {
        if (snap.name == "capmaestro_period_wall_ms") {
            ASSERT_TRUE(snap.histogram.has_value());
            EXPECT_EQ(snap.histogram->count,
                      sim.service().lastStats().periodsRun);
        }
    }
}
