/**
 * @file
 * Randomized multi-feed allocator fuzzing (TEST_P over seed banks):
 * generates random dual-feed topologies and fleets, runs the full
 * allocation with and without SPO under every policy, and asserts the
 * DESIGN.md invariants — hierarchical safety after SPO, floor
 * guarantees, no-waste, SPO monotonicity, and stranded-power accounting.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "control/allocator.hh"
#include "policy/policy.hh"
#include "topology/power_system.hh"
#include "util/random.hh"

using namespace capmaestro;
using ctrl::FleetAllocator;
using ctrl::ServerAllocInput;

namespace {

struct FuzzSystem
{
    std::unique_ptr<topo::PowerSystem> system;
    std::vector<ServerAllocInput> fleet;
    std::vector<Watts> rootBudgets;
};

/**
 * Random dual-feed system: each feed has a root breaker over 1-4 CDUs;
 * every server is dual-corded with supply f under a random CDU of
 * feed f. Demands/budgets chosen so most cases are feasible but capped.
 */
FuzzSystem
makeFuzzSystem(util::Rng &rng)
{
    FuzzSystem fs;
    const int cdus = 1 + static_cast<int>(rng.uniformInt(0, 3));
    const int servers = 2 + static_cast<int>(rng.uniformInt(0, 8));

    // Server placement: per feed, each server lands under a random CDU.
    std::vector<std::vector<int>> cdu_of(
        2, std::vector<int>(static_cast<std::size_t>(servers), 0));
    for (int f = 0; f < 2; ++f) {
        for (int s = 0; s < servers; ++s) {
            cdu_of[static_cast<std::size_t>(f)]
                  [static_cast<std::size_t>(s)] =
                static_cast<int>(rng.uniformInt(0, cdus - 1));
        }
    }

    fs.system = std::make_unique<topo::PowerSystem>(2);
    for (int f = 0; f < 2; ++f) {
        auto tree = std::make_unique<topo::PowerTree>(
            f, 0, f == 0 ? "X" : "Y");
        const auto root = tree->makeRoot(topo::NodeKind::Breaker, "root",
                                         rng.uniform(1500.0, 4000.0));
        std::vector<topo::NodeId> cdu_nodes;
        for (int c = 0; c < cdus; ++c) {
            cdu_nodes.push_back(
                tree->addChild(root, topo::NodeKind::Cdu,
                               "cdu" + std::to_string(c),
                               rng.uniform(500.0, 1500.0)));
        }
        for (int s = 0; s < servers; ++s) {
            tree->addSupplyPort(
                cdu_nodes[static_cast<std::size_t>(
                    cdu_of[static_cast<std::size_t>(f)]
                          [static_cast<std::size_t>(s)])],
                "s" + std::to_string(s) + "." + std::to_string(f),
                {s, f});
        }
        fs.system->addTree(std::move(tree));
    }

    fs.fleet.resize(static_cast<std::size_t>(servers));
    for (auto &in : fs.fleet) {
        in.priority = static_cast<Priority>(rng.uniformInt(0, 2));
        in.capMin = rng.uniform(120.0, 280.0);
        in.capMax = in.capMin + rng.uniform(100.0, 250.0);
        in.demand = rng.uniform(in.capMin * 0.8, in.capMax);
        const double share0 = rng.uniform(0.3, 0.7);
        in.supplies = {{share0, true}, {1.0 - share0, true}};
        if (rng.chance(0.1))
            in.supplies[rng.uniformInt(0, 1)].live = false;
    }

    fs.rootBudgets = {rng.uniform(800.0, 3500.0),
                      rng.uniform(800.0, 3500.0)};
    return fs;
}

/** Assert hierarchical safety of the current tree budgets. */
void
assertTreeSafety(const FleetAllocator &alloc, const FuzzSystem &fs,
                 int trial)
{
    for (std::size_t t = 0; t < alloc.treeCount(); ++t) {
        const auto &ct = alloc.tree(t);
        const auto &tree = ct.topoTree();
        tree.forEach([&](const topo::TopoNode &n) {
            if (n.kind == topo::NodeKind::SupplyPort
                || n.children.empty()) {
                return;
            }
            Watts child_sum = 0.0;
            for (const auto c : n.children)
                child_sum += ct.nodeBudget(c);
            EXPECT_LE(child_sum, n.limit() + 1e-6)
                << "tree " << t << " node " << n.name << " trial "
                << trial;
            EXPECT_LE(child_sum,
                      std::min(ct.nodeBudget(n.id), n.limit()) + 1e-6)
                << "tree " << t << " node " << n.name << " trial "
                << trial;
        });
        // Root never exceeds its budget.
        Watts root_children = 0.0;
        for (const auto c : tree.node(tree.root()).children)
            root_children += ct.nodeBudget(c);
        EXPECT_LE(root_children, fs.rootBudgets[t] + 1e-6)
            << "tree " << t << " trial " << trial;
    }
}

class AllocatorFuzz : public testing::TestWithParam<int>
{
};

} // namespace

TEST_P(AllocatorFuzz, InvariantsAcrossPoliciesAndSpo)
{
    util::Rng rng(10007ULL * static_cast<unsigned>(GetParam()));
    for (int trial = 0; trial < 25; ++trial) {
        const auto fs = makeFuzzSystem(rng);
        for (const auto kind : policy::kAllPolicies) {
            FleetAllocator alloc(*fs.system, policy::treePolicy(kind));
            const auto before =
                alloc.allocate(fs.fleet, fs.rootBudgets, false);
            const auto after =
                alloc.allocate(fs.fleet, fs.rootBudgets, true);

            // Safety holds for the final (post-SPO) budgets.
            assertTreeSafety(alloc, fs, trial);

            for (std::size_t i = 0; i < fs.fleet.size(); ++i) {
                const auto &in = fs.fleet[i];
                const auto &a = after.servers[i];

                // Stranded accounting is non-negative.
                EXPECT_GE(a.strandedBeforeSpo, -1e-9);

                // No-waste: enforceable cap within the server range.
                if (a.enforceableCapAc > 0.0) {
                    EXPECT_LE(a.enforceableCapAc, in.capMax + 1e-6);
                    EXPECT_GE(a.enforceableCapAc, in.capMin - 1e-6);
                }

                // SPO monotonicity: nobody ends worse than pass 1.
                if (before.feasible) {
                    EXPECT_GE(a.enforceableCapAc,
                              before.servers[i].enforceableCapAc - 0.5)
                        << policy::policyName(kind) << " server " << i
                        << " trial " << trial;
                }
            }
            EXPECT_GE(after.strandedReclaimed, -1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(SeedBanks, AllocatorFuzz,
                         testing::Values(1, 2, 3, 4, 5, 6),
                         [](const testing::TestParamInfo<int> &info) {
                             return "seed" + std::to_string(info.param);
                         });
