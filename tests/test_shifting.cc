/**
 * @file
 * Unit tests for the shifting-controller algorithms (paper §4.3):
 * water-filling, metric aggregation with the allowable-request rule, and
 * the four-step budgeting phase, including priority-dominance properties.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "control/metrics.hh"
#include "control/shifting.hh"
#include "topology/power_tree.hh"
#include "util/random.hh"

using namespace capmaestro;
using ctrl::ClassMetrics;
using ctrl::NodeMetrics;

namespace {

/** Convenience: leaf-style metrics for one server class. */
NodeMetrics
leafMetrics(Priority priority, Watts cap_min, Watts demand,
            Watts constraint)
{
    NodeMetrics m;
    const Watts d = std::max(demand, cap_min);
    m.accumulate(priority, cap_min, d, d);
    m.setConstraint(constraint);
    return m;
}

} // namespace

// ---------------------------------------------------------------- waterfill

TEST(Waterfill, ProportionalWhenUncapped)
{
    const auto alloc = ctrl::waterfill(90.0, {100.0, 100.0, 100.0},
                                       {1.0, 2.0, 3.0});
    ASSERT_EQ(alloc.size(), 3u);
    EXPECT_NEAR(alloc[0], 15.0, 1e-9);
    EXPECT_NEAR(alloc[1], 30.0, 1e-9);
    EXPECT_NEAR(alloc[2], 45.0, 1e-9);
}

TEST(Waterfill, RedistributesClippedExcess)
{
    // Item 0 caps at 10; its surplus flows to the others by weight.
    const auto alloc =
        ctrl::waterfill(90.0, {10.0, 100.0, 100.0}, {1.0, 1.0, 1.0});
    EXPECT_NEAR(alloc[0], 10.0, 1e-9);
    EXPECT_NEAR(alloc[1], 40.0, 1e-9);
    EXPECT_NEAR(alloc[2], 40.0, 1e-9);
}

TEST(Waterfill, ZeroWeightsFallBackToHeadroom)
{
    const auto alloc =
        ctrl::waterfill(30.0, {20.0, 40.0}, {0.0, 0.0});
    EXPECT_NEAR(alloc[0], 10.0, 1e-9);
    EXPECT_NEAR(alloc[1], 20.0, 1e-9);
}

TEST(Waterfill, NeverExceedsCapsOrAmount)
{
    util::Rng rng(77);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t n = 1 + rng.uniformInt(0, 6);
        std::vector<Watts> caps(n), weights(n);
        for (std::size_t i = 0; i < n; ++i) {
            caps[i] = rng.uniform(0.0, 50.0);
            weights[i] = rng.uniform(0.0, 10.0);
        }
        const Watts amount = rng.uniform(0.0, 200.0);
        const auto alloc = ctrl::waterfill(amount, caps, weights);
        double sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_LE(alloc[i], caps[i] + 1e-6);
            EXPECT_GE(alloc[i], -1e-9);
            sum += alloc[i];
        }
        EXPECT_LE(sum, amount + 1e-6);
        // Exhaustive: either amount fully used or all caps hit.
        const double cap_sum =
            std::accumulate(caps.begin(), caps.end(), 0.0);
        EXPECT_NEAR(sum, std::min(amount, cap_sum), 1e-6);
    }
}

TEST(Waterfill, ZeroAmount)
{
    const auto alloc = ctrl::waterfill(0.0, {10.0, 20.0}, {1.0, 1.0});
    EXPECT_DOUBLE_EQ(alloc[0], 0.0);
    EXPECT_DOUBLE_EQ(alloc[1], 0.0);
}

// ------------------------------------------------------------ NodeMetrics

TEST(NodeMetrics, AccumulateKeepsDescendingOrder)
{
    NodeMetrics m;
    m.accumulate(1, 10, 20, 20);
    m.accumulate(3, 5, 8, 8);
    m.accumulate(2, 1, 2, 2);
    m.accumulate(3, 5, 8, 8); // merges with existing class 3
    ASSERT_EQ(m.classes().size(), 3u);
    EXPECT_EQ(m.classes()[0].priority, 3);
    EXPECT_EQ(m.classes()[1].priority, 2);
    EXPECT_EQ(m.classes()[2].priority, 1);
    EXPECT_DOUBLE_EQ(m.classes()[0].capMin, 10.0);
    EXPECT_DOUBLE_EQ(m.totalCapMin(), 21.0);
    EXPECT_DOUBLE_EQ(m.totalDemand(), 38.0);
}

TEST(NodeMetrics, CollapseMergesAndClips)
{
    NodeMetrics m;
    m.accumulate(2, 100, 400, 400);
    m.accumulate(1, 100, 400, 400);
    m.setConstraint(600.0);
    const NodeMetrics c = m.collapsed();
    ASSERT_EQ(c.classes().size(), 1u);
    EXPECT_DOUBLE_EQ(c.classes()[0].capMin, 200.0);
    EXPECT_DOUBLE_EQ(c.classes()[0].demand, 800.0);
    EXPECT_DOUBLE_EQ(c.classes()[0].request, 600.0); // clipped
    EXPECT_DOUBLE_EQ(c.constraint(), 600.0);
}

// ---------------------------------------------------------- gatherMetrics

TEST(GatherMetrics, SumsAndConstraint)
{
    const auto a = leafMetrics(0, 135, 215, 245);
    const auto b = leafMetrics(0, 135, 215, 245);
    const auto m = ctrl::gatherMetrics({a, b}, 750.0, true);
    ASSERT_EQ(m.classes().size(), 1u);
    EXPECT_DOUBLE_EQ(m.classes()[0].capMin, 270.0);
    EXPECT_DOUBLE_EQ(m.classes()[0].demand, 430.0);
    EXPECT_DOUBLE_EQ(m.classes()[0].request, 430.0);
    EXPECT_DOUBLE_EQ(m.constraint(), 490.0); // children bound, not limit
}

TEST(GatherMetrics, AllowableRequestRule)
{
    // Paper Fig. 2 Left CB: SA (high) and SB (low), each demand 430,
    // capMin 270, under a 750 W breaker. High priority may request its
    // full 430; low priority only 750 - 430 = 320.
    const auto sa = leafMetrics(1, 270, 430, 490);
    const auto sb = leafMetrics(0, 270, 430, 490);
    const auto m = ctrl::gatherMetrics({sa, sb}, 750.0, true);
    ASSERT_EQ(m.classes().size(), 2u);
    EXPECT_EQ(m.classes()[0].priority, 1);
    EXPECT_DOUBLE_EQ(m.classes()[0].request, 430.0);
    EXPECT_EQ(m.classes()[1].priority, 0);
    EXPECT_DOUBLE_EQ(m.classes()[1].request, 320.0);
}

TEST(GatherMetrics, HighPriorityLimitedByLowerFloors)
{
    // The high class may request at most limit - sum(lower floors).
    const auto hi = leafMetrics(1, 100, 900, 1000);
    const auto lo = leafMetrics(0, 200, 300, 1000);
    const auto m = ctrl::gatherMetrics({hi, lo}, 800.0, true);
    EXPECT_DOUBLE_EQ(m.findClass(1)->request, 600.0); // 800 - 200
    EXPECT_DOUBLE_EQ(m.findClass(0)->request, 200.0); // floor only
}

TEST(GatherMetrics, RequestNeverBelowFloor)
{
    // Even when the limit is tiny, the request holds the floor.
    const auto hi = leafMetrics(1, 300, 400, 500);
    const auto lo = leafMetrics(0, 300, 400, 500);
    const auto m = ctrl::gatherMetrics({hi, lo}, 500.0, true);
    EXPECT_GE(m.findClass(1)->request, 300.0);
    EXPECT_GE(m.findClass(0)->request, 300.0);
}

TEST(GatherMetrics, CollapsedReport)
{
    const auto sa = leafMetrics(1, 270, 430, 490);
    const auto sb = leafMetrics(0, 270, 430, 490);
    const auto m = ctrl::gatherMetrics({sa, sb}, 750.0, false);
    ASSERT_EQ(m.classes().size(), 1u);
    EXPECT_DOUBLE_EQ(m.classes()[0].capMin, 540.0);
    EXPECT_DOUBLE_EQ(m.classes()[0].request, 750.0); // clipped to limit
}

TEST(GatherMetrics, UnlimitedNode)
{
    const auto a = leafMetrics(0, 100, 200, 300);
    const auto m =
        ctrl::gatherMetrics({a}, capmaestro::topo::kUnlimited, true);
    EXPECT_DOUBLE_EQ(m.constraint(), 300.0);
    EXPECT_DOUBLE_EQ(m.classes()[0].request, 200.0);
}

TEST(GatherMetrics, EmptyChildren)
{
    const auto m = ctrl::gatherMetrics({}, 100.0, true);
    EXPECT_TRUE(m.empty());
    EXPECT_DOUBLE_EQ(m.constraint(), 0.0);
}

// --------------------------------------------------------- budgetChildren

TEST(BudgetChildren, FloorsFirst)
{
    const auto a = leafMetrics(0, 270, 430, 490);
    const auto b = leafMetrics(0, 270, 430, 490);
    const auto split = ctrl::budgetChildren(540.0, {a, b}, true);
    EXPECT_TRUE(split.feasible);
    EXPECT_DOUBLE_EQ(split.childBudgets[0], 270.0);
    EXPECT_DOUBLE_EQ(split.childBudgets[1], 270.0);
}

TEST(BudgetChildren, InfeasibleScalesFloors)
{
    const auto a = leafMetrics(0, 300, 400, 500);
    const auto b = leafMetrics(0, 100, 400, 500);
    const auto split = ctrl::budgetChildren(200.0, {a, b}, true);
    EXPECT_FALSE(split.feasible);
    EXPECT_NEAR(split.childBudgets[0], 150.0, 1e-9);
    EXPECT_NEAR(split.childBudgets[1], 50.0, 1e-9);
}

TEST(BudgetChildren, HighPriorityServedFirst)
{
    const auto hi = leafMetrics(1, 270, 430, 490);
    const auto lo = leafMetrics(0, 270, 430, 490);
    // 700 W: floors take 540, leaving 160 -- exactly the high extra need.
    const auto split = ctrl::budgetChildren(700.0, {hi, lo}, true);
    EXPECT_DOUBLE_EQ(split.childBudgets[0], 430.0);
    EXPECT_DOUBLE_EQ(split.childBudgets[1], 270.0);
}

TEST(BudgetChildren, ContestedLevelWaterfills)
{
    // Two low-priority servers with different dynamic ranges contest 60 W.
    const auto a = leafMetrics(0, 270, 390, 490); // weight 120
    const auto b = leafMetrics(0, 270, 330, 490); // weight 60
    const auto split = ctrl::budgetChildren(600.0, {a, b}, true);
    EXPECT_NEAR(split.childBudgets[0], 270.0 + 40.0, 1e-9);
    EXPECT_NEAR(split.childBudgets[1], 270.0 + 20.0, 1e-9);
}

TEST(BudgetChildren, LeftoverUpToConstraint)
{
    const auto a = leafMetrics(0, 270, 300, 490);
    const auto b = leafMetrics(0, 270, 300, 490);
    // Requests total 600; give 800: the extra 200 spreads to constraints.
    const auto split = ctrl::budgetChildren(800.0, {a, b}, true);
    EXPECT_NEAR(split.childBudgets[0], 400.0, 1e-9);
    EXPECT_NEAR(split.childBudgets[1], 400.0, 1e-9);
    EXPECT_NEAR(split.unallocated, 0.0, 1e-9);
}

TEST(BudgetChildren, UnallocatedWhenEveryoneSaturated)
{
    const auto a = leafMetrics(0, 270, 430, 490);
    const auto split = ctrl::budgetChildren(600.0, {a}, true);
    EXPECT_NEAR(split.childBudgets[0], 490.0, 1e-9);
    EXPECT_NEAR(split.unallocated, 110.0, 1e-9);
}

TEST(BudgetChildren, NoPriorityMergesClasses)
{
    const auto hi = leafMetrics(1, 270, 430, 490);
    const auto lo = leafMetrics(0, 270, 430, 490);
    // Priority-blind: the 160 W surplus splits evenly (equal weights).
    const auto split = ctrl::budgetChildren(700.0, {hi, lo}, false);
    EXPECT_NEAR(split.childBudgets[0], 350.0, 1e-9);
    EXPECT_NEAR(split.childBudgets[1], 350.0, 1e-9);
}

TEST(BudgetChildren, EmptyChildren)
{
    const auto split = ctrl::budgetChildren(500.0, {}, true);
    EXPECT_TRUE(split.childBudgets.empty());
    EXPECT_DOUBLE_EQ(split.unallocated, 500.0);
}

TEST(BudgetChildren, ThreePriorityLevelsStrictOrder)
{
    const auto p2 = leafMetrics(2, 100, 300, 400);
    const auto p1 = leafMetrics(1, 100, 300, 400);
    const auto p0 = leafMetrics(0, 100, 300, 400);
    // Floors 300; extra 250 serves p2 fully (200), then p1 partially (50).
    const auto split = ctrl::budgetChildren(550.0, {p2, p1, p0}, true);
    EXPECT_NEAR(split.childBudgets[0], 300.0, 1e-9);
    EXPECT_NEAR(split.childBudgets[1], 150.0, 1e-9);
    EXPECT_NEAR(split.childBudgets[2], 100.0, 1e-9);
}

// Property: total allocated never exceeds the budget, and every child
// gets at least its floor when feasible.
TEST(BudgetChildren, RandomizedSafetyProperties)
{
    util::Rng rng(2024);
    for (int trial = 0; trial < 300; ++trial) {
        const std::size_t n = 1 + rng.uniformInt(0, 5);
        std::vector<NodeMetrics> children;
        double floor_sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const Priority p = static_cast<Priority>(rng.uniformInt(0, 3));
            const Watts cap_min = rng.uniform(50.0, 300.0);
            const Watts demand = cap_min + rng.uniform(0.0, 300.0);
            const Watts constraint = demand + rng.uniform(0.0, 100.0);
            children.push_back(leafMetrics(p, cap_min, demand, constraint));
            floor_sum += cap_min;
        }
        const Watts budget = rng.uniform(0.0, 2000.0);
        const bool by_priority = rng.chance(0.5);
        const auto split =
            ctrl::budgetChildren(budget, children, by_priority);

        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            total += split.childBudgets[i];
            EXPECT_LE(split.childBudgets[i],
                      children[i].constraint() + 1e-6);
            if (split.feasible) {
                EXPECT_GE(split.childBudgets[i],
                          children[i].totalCapMin() - 1e-6);
            }
        }
        EXPECT_LE(total, budget + 1e-6);
        EXPECT_EQ(split.feasible, floor_sum <= budget + 1e-9);
    }
}

// Property: requests are honest promises -- when the budget equals the
// total request, every child receives exactly its request (the gather
// phase's allowable-request rule guarantees requests are satisfiable).
TEST(BudgetChildren, ExactRequestBudgetSatisfiesEveryone)
{
    util::Rng rng(314);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t n = 1 + rng.uniformInt(0, 5);
        std::vector<NodeMetrics> children;
        Watts total_request = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const Priority p = static_cast<Priority>(rng.uniformInt(0, 3));
            const Watts cap_min = rng.uniform(50.0, 250.0);
            const Watts demand = cap_min + rng.uniform(0.0, 300.0);
            children.push_back(
                leafMetrics(p, cap_min, demand, demand + 50.0));
            total_request += children.back().totalRequest();
        }
        const auto split =
            ctrl::budgetChildren(total_request, children, true);
        ASSERT_TRUE(split.feasible);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(split.childBudgets[i],
                        children[i].totalRequest(), 1e-6)
                << "trial " << trial;
        }
        EXPECT_NEAR(split.unallocated, 0.0, 1e-6);
    }
}

// Property: priority dominance -- with priorities on, a higher-priority
// child is never throttled below its request while a lower-priority child
// sits above its floor.
TEST(BudgetChildren, PriorityDominanceProperty)
{
    util::Rng rng(555);
    for (int trial = 0; trial < 300; ++trial) {
        const auto hi_min = rng.uniform(50.0, 200.0);
        const auto hi_dem = hi_min + rng.uniform(0.0, 300.0);
        const auto lo_min = rng.uniform(50.0, 200.0);
        const auto lo_dem = lo_min + rng.uniform(0.0, 300.0);
        const auto hi = leafMetrics(1, hi_min, hi_dem, hi_dem + 50);
        const auto lo = leafMetrics(0, lo_min, lo_dem, lo_dem + 50);
        const Watts budget = rng.uniform(hi_min + lo_min, 1200.0);
        const auto split = ctrl::budgetChildren(budget, {hi, lo}, true);
        if (!split.feasible)
            continue;
        const bool hi_throttled = split.childBudgets[0] < hi_dem - 1e-6;
        const bool lo_above_floor = split.childBudgets[1] > lo_min + 1e-6;
        EXPECT_FALSE(hi_throttled && lo_above_floor)
            << "hi got " << split.childBudgets[0] << "/" << hi_dem
            << ", lo got " << split.childBudgets[1] << " floor " << lo_min;
    }
}
