/**
 * @file
 * Tests for the live observability plane (PR 8): the poll-driven HTTP
 * scrape endpoint, the fleet health rollup and online safety auditor,
 * telemetry export from a deep-plan WorkerHost (hop latency
 * histograms + stitched period traces), and the acceptance invariant
 * that attaching the whole plane — wire-v5 trace contexts included —
 * changes not a single bit of any leaf budget on a lossless plane.
 *
 * Set CAPMAESTRO_NO_NET=1 to skip the socket-bound tests (the HTTP
 * endpoint and the UDP host run); the sim-transport tests always run.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "config/loader.hh"
#include "net/http_endpoint.hh"
#include "net/transport.hh"
#include "rt/host.hh"
#include "telemetry/health.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace.hh"
#include "util/json.hh"

using namespace capmaestro;

namespace {

#define SKIP_WITHOUT_NET()                                            \
    do {                                                              \
        if (std::getenv("CAPMAESTRO_NO_NET") != nullptr)              \
            GTEST_SKIP() << "CAPMAESTRO_NO_NET is set";               \
    } while (0)

/**
 * Blocking loopback GET against a polled HttpEndpoint: the client
 * runs on its own thread while the caller's thread drives poll(), the
 * same division of labor as a real scrape against the period loop.
 */
std::string
scrape(net::HttpEndpoint &endpoint, const std::string &path)
{
    std::string response;
    std::thread client([&endpoint, &path, &response] {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(endpoint.port());
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        ASSERT_EQ(::connect(fd,
                            reinterpret_cast<const sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
        const std::string request =
            "GET " + path + " HTTP/1.0\r\n\r\n";
        ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
                  static_cast<ssize_t>(request.size()));
        char buf[4096];
        for (;;) {
            const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
            if (n <= 0)
                break;
            response.append(buf, static_cast<std::size_t>(n));
        }
        ::close(fd);
    });
    // Drive the endpoint until the client saw the full exchange.
    while (true) {
        endpoint.poll();
        if (client.joinable()) {
            // joinable() stays true until join(); probe completion
            // via a short yield + retry bounded by the test timeout.
            std::this_thread::yield();
        }
        // The client closes after recv() returns 0, which only
        // happens once the endpoint wrote and closed — one extra
        // poll() pass after that is harmless.
        if (response.find("\r\n\r\n") != std::string::npos
            || !client.joinable())
            break;
    }
    client.join();
    endpoint.poll();
    return response;
}

/**
 * Depth-3 single-feed scenario: root -> 2 rows -> 2 racks each -> 2
 * supplies, 8 servers. With aggLevels = {1} the plan is 4 leaf
 * workers (0-3), 2 row aggregators (4-5), and the root (6).
 */
std::string
depth3Scenario()
{
    std::string rows;
    for (int row = 0; row < 2; ++row) {
        std::string racks;
        for (int rack = 0; rack < 2; ++rack) {
            const int base = row * 4 + rack * 2;
            racks += std::string(rack ? "," : "")
                     + R"({ "kind": "breaker", "name": "rk)"
                     + std::to_string(row) + std::to_string(rack)
                     + R"(", "rating": 900, "children": [)"
                     + R"({ "kind": "supply", "server": )"
                     + std::to_string(base) + R"(, "supply": 0 },)"
                     + R"({ "kind": "supply", "server": )"
                     + std::to_string(base + 1)
                     + R"(, "supply": 0 }]})";
        }
        rows += std::string(row ? "," : "")
                + R"({ "kind": "breaker", "name": "row)"
                + std::to_string(row)
                + R"(", "rating": 1700, "children": [)" + racks
                + "]}";
    }
    std::string servers;
    for (int s = 0; s < 8; ++s) {
        servers += std::string(s ? "," : "") + R"({ "name": "S)"
                   + std::to_string(s) + R"(", "priority": )"
                   + std::to_string(s % 3 == 0 ? 1 : 0)
                   + R"(, "supplies": [{ "share": 1 }], "workload": )"
                   + R"({ "type": "constant", "utilization": 0.6)"
                   + std::to_string(50 + s) + " }}";
    }
    return R"({ "feeds": 1, "trees": [{ "feed": 0, "phase": 0, )"
           + std::string(R"("name": "X", "root": { "kind": "breaker", )"
                         R"("name": "top", "rating": 3300, )"
                         R"("children": [)")
           + rows + R"(]}}], "servers": [)" + servers
           + R"(], "service": { "policy": "global", "spo": false }, )"
           + R"("budgets": { "totalPerPhase": 3300 }})";
}

config::WorkerPeers
depth3Peers()
{
    config::WorkerPeers peers;
    peers.periodMs = 200.0;
    peers.originMs = 0;
    peers.aggLevels = {1};
    for (std::uint32_t e = 0; e < 7; ++e)
        peers.peers[e] = net::UdpPeer{"127.0.0.1", 0};
    return peers;
}

/** Value of label @p key in a snapshot's label list ("" if absent). */
std::string
labelValue(const telemetry::Labels &labels, const std::string &key)
{
    for (const auto &[name, value] : labels) {
        if (name == key)
            return value;
    }
    return "";
}

config::LoadedScenario
loadDepth3(const char *transport_json)
{
    auto scenario =
        config::loadScenario(util::parseJson(depth3Scenario()));
    config::applyTransportJson(scenario.service,
                               util::parseJson(transport_json));
    return scenario;
}

} // namespace

// --------------------------------------------------- HTTP endpoint

TEST(HttpEndpoint, ServesRegisteredPathsFromThePollLoop)
{
    SKIP_WITHOUT_NET();
    net::HttpEndpoint endpoint;
    ASSERT_TRUE(endpoint.listen(0));
    ASSERT_NE(endpoint.port(), 0);
    int hits = 0;
    endpoint.handle("/metrics", [&hits] {
        ++hits;
        net::HttpResponse response;
        response.contentType = "text/plain; version=0.0.4";
        response.body = "capmaestro_up 1\n";
        return response;
    });

    const std::string reply = scrape(endpoint, "/metrics");
    EXPECT_NE(reply.find("200"), std::string::npos) << reply;
    EXPECT_NE(reply.find("capmaestro_up 1\n"), std::string::npos);
    EXPECT_NE(reply.find("text/plain; version=0.0.4"),
              std::string::npos);
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(endpoint.requestsServed(), 1u);

    // Sequential scrapes reuse the same listener.
    EXPECT_NE(scrape(endpoint, "/metrics").find("capmaestro_up"),
              std::string::npos);
    EXPECT_EQ(hits, 2);
    endpoint.close();
    EXPECT_FALSE(endpoint.listening());
}

TEST(HttpEndpoint, UnknownPathIs404AndHandlersAreGetOnly)
{
    SKIP_WITHOUT_NET();
    net::HttpEndpoint endpoint;
    ASSERT_TRUE(endpoint.listen(0));
    endpoint.handle("/healthz", [] {
        net::HttpResponse response;
        response.body = "{}";
        return response;
    });
    EXPECT_NE(scrape(endpoint, "/nope").find("404"),
              std::string::npos);
    EXPECT_NE(scrape(endpoint, "/healthz").find("200"),
              std::string::npos);
    endpoint.close();
}

// ------------------------------------------- fleet health registry

TEST(FleetHealth, RollupCountsStatesAndDegradedFraction)
{
    telemetry::Registry registry;
    telemetry::FleetHealthRegistry fleet;
    fleet.setTelemetry(&registry, {{"role", "room"}});

    fleet.report("rack0", telemetry::UnitHealth::Live, 1);
    fleet.report("rack1", telemetry::UnitHealth::Live, 1);
    fleet.report("rack2", telemetry::UnitHealth::Live, 1);
    fleet.report("rack3", telemetry::UnitHealth::Live, 1);
    EXPECT_EQ(fleet.countOf(telemetry::UnitHealth::Live), 4u);
    EXPECT_DOUBLE_EQ(fleet.degradedFraction(), 0.0);

    fleet.report("rack1", telemetry::UnitHealth::Stale, 2);
    fleet.report("rack2", telemetry::UnitHealth::Lost, 2);
    fleet.report("rack3", telemetry::UnitHealth::Rehoming, 2);
    EXPECT_EQ(fleet.countOf(telemetry::UnitHealth::Live), 1u);
    EXPECT_EQ(fleet.countOf(telemetry::UnitHealth::Stale), 1u);
    EXPECT_EQ(fleet.countOf(telemetry::UnitHealth::Lost), 1u);
    EXPECT_EQ(fleet.countOf(telemetry::UnitHealth::Rehoming), 1u);
    EXPECT_DOUBLE_EQ(fleet.degradedFraction(), 0.75);

    // Recovery flows back through the same unit slot.
    fleet.report("rack2", telemetry::UnitHealth::Live, 3);
    const auto &unit = fleet.units().at("rack2");
    EXPECT_EQ(unit.health, telemetry::UnitHealth::Live);
    EXPECT_EQ(unit.lastLiveEpoch, 3u);
    EXPECT_EQ(unit.degradedPeriods, 1u);

    // The JSON rollup (the /healthz "fleet" block) agrees.
    const util::Json doc = fleet.toJson();
    EXPECT_DOUBLE_EQ(doc.numberOr("unitCount", -1.0), 4.0);
    EXPECT_DOUBLE_EQ(doc.at("counts").numberOr("live", -1.0), 2.0);
    EXPECT_DOUBLE_EQ(doc.at("counts").numberOr("stale", -1.0), 1.0);
    EXPECT_DOUBLE_EQ(doc.numberOr("degradedFraction", -1.0), 0.5);
    EXPECT_EQ(
        doc.at("units").at("rack3").stringOr("state", ""),
        "rehoming");

    // And the gauges track report() without a manual publish step.
    bool saw_live = false;
    for (const auto &series : registry.snapshot()) {
        if (series.name == "capmaestro_fleet_units"
            && labelValue(series.labels, "state") == "live") {
            saw_live = true;
            EXPECT_DOUBLE_EQ(series.value, 2.0);
        }
        if (series.name == "capmaestro_fleet_degraded_fraction") {
            EXPECT_DOUBLE_EQ(series.value, 0.5);
        }
    }
    EXPECT_TRUE(saw_live);
}

// ------------------------------------------------- safety auditor

TEST(SafetyAuditor, FlagsOverdrawAndKeepsTheWorstSubject)
{
    telemetry::Registry registry;
    telemetry::SafetyAuditor auditor;
    auditor.setTelemetry(&registry, {{"role", "room"}});

    // committed + reserved within the grant: clean.
    EXPECT_TRUE(auditor.audit(1, "X@room", 1000.0, 800.0, 200.0));
    // Float accumulation inside the relative tolerance: still clean.
    EXPECT_TRUE(
        auditor.audit(2, "X@room", 1000.0, 1000.0 + 1e-8, 0.0));
    // A real overdraw is a violation.
    EXPECT_FALSE(auditor.audit(3, "X@room", 1000.0, 950.0, 100.0));
    // A worse one replaces the retained worst subject.
    EXPECT_FALSE(auditor.audit(4, "Y@agg4", 500.0, 700.0, 0.0));

    EXPECT_EQ(auditor.audits(), 4u);
    EXPECT_EQ(auditor.violations(), 2u);
    EXPECT_NEAR(auditor.worstOverdrawWatts(), 200.0, 1e-9);
    EXPECT_EQ(auditor.worstSubject(), "Y@agg4@epoch4");

    const util::Json doc = auditor.toJson();
    EXPECT_DOUBLE_EQ(doc.numberOr("violations", -1.0), 2.0);
    EXPECT_NEAR(doc.numberOr("worstOverdrawWatts", -1.0), 200.0,
                1e-9);

    double counted = -1.0;
    for (const auto &series : registry.snapshot()) {
        if (series.name == "capmaestro_safety_violations_total")
            counted = series.value;
    }
    EXPECT_DOUBLE_EQ(counted, 2.0);
}

// ------------------------------- host-mode telemetry export (UDP)

// One WorkerHost hosting the whole depth-3 plan over real loopback
// sockets, telemetry attached: every period must land in the tracer
// with cross-tier hop spans, the hop-latency histograms must fill,
// and /healthz must report the safety auditor clean.
TEST(HostObservability, DeepPlanExportsHopsTracesAndHealth)
{
    SKIP_WITHOUT_NET();
    telemetry::Registry registry;
    telemetry::PeriodTracer tracer;
    rt::WorkerHost host(
        loadDepth3(R"({"backend":"udp","gatherDeadlineMs":40,
            "budgetDeadlineMs":40,"retryTimeoutMs":10})"),
        depth3Peers(), /*process=*/0, /*seed=*/1);
    host.setTelemetry(&registry, &tracer);
    ASSERT_NE(host.serveHttp(0), 0);

    ASSERT_EQ(host.runPeriods(6), 6u);
    EXPECT_EQ(host.stats().periodsRun, 6u);
    EXPECT_GT(host.stats().budgetsApplied, 0u);
    EXPECT_EQ(host.safetyAuditor().violations(), 0u);
    EXPECT_GT(host.safetyAuditor().audits(), 0u);
    // Every observed child unit of the lossless run is live.
    EXPECT_GT(host.fleetHealth().unitCount(), 0u);
    EXPECT_DOUBLE_EQ(host.fleetHealth().degradedFraction(), 0.0);

    // Hop histograms cover the upstream and downstream wire kinds
    // across tiers (metrics tier0 -> tier1, summary tier1 -> tier2,
    // budget tier2 -> tier1, sub_budget tier1 -> tier0).
    std::set<std::string> kinds;
    std::uint64_t hop_samples = 0;
    for (const auto &series : registry.snapshot()) {
        if (series.name != "capmaestro_hop_latency_ms"
            || !series.histogram)
            continue;
        kinds.insert(labelValue(series.labels, "kind"));
        hop_samples += series.histogram->count;
    }
    EXPECT_TRUE(kinds.count("metrics")) << "kinds: " << kinds.size();
    EXPECT_TRUE(kinds.count("summary"));
    EXPECT_TRUE(kinds.count("budget"));
    EXPECT_TRUE(kinds.count("sub_budget"));
    EXPECT_GT(hop_samples, 0u);

    // The tracer stitched every period: epoch + traceId attrs, and
    // hop spans carrying the from_tier attribution.
    const util::Json periods = tracer.lastJson(6);
    ASSERT_TRUE(periods.isArray());
    ASSERT_EQ(periods.asArray().size(), 6u);
    const util::Json &last = periods.asArray().back();
    EXPECT_DOUBLE_EQ(last.at("attrs").numberOr("epoch", -1.0), 6.0);
    EXPECT_DOUBLE_EQ(last.at("attrs").numberOr("traceId", -1.0),
                     6.0);
    bool saw_hop = false;
    for (const util::Json &span : last.at("spans").asArray()) {
        if (span.stringOr("name", "") != "hop")
            continue;
        saw_hop = true;
        EXPECT_FALSE(
            span.at("attrs").stringOr("from_tier", "").empty());
    }
    EXPECT_TRUE(saw_hop);

    // /healthz carries the fleet and safety blocks end to end.
    const util::Json health = host.healthJson();
    EXPECT_TRUE(health.at("ok").asBool());
    EXPECT_DOUBLE_EQ(
        health.at("safety").numberOr("violations", -1.0), 0.0);
    EXPECT_DOUBLE_EQ(
        health.at("fleet").numberOr("degradedFraction", -1.0), 0.0);

    // The Prometheus render of the same registry parses as text with
    // the histogram exposition (obs_smoke.sh runs the full grammar
    // check against a live deployment).
    const std::string prom = registry.renderPrometheus();
    EXPECT_NE(prom.find("capmaestro_hop_latency_ms_bucket"),
              std::string::npos);
    EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
}

// ------------------------- bit-identity acceptance (sim, lossless)

// Attaching the whole observability plane — registry, tracer, wire-v5
// trace contexts in every frame — must not move a single leaf budget
// bit on a lossless plane. Two identical deployments over lossless
// SimTransports, one instrumented and one dark, must agree exactly.
TEST(HostObservability, TelemetryIsBitInvisibleOnALosslessPlane)
{
    const char *transport =
        R"({"backend":"sim","gatherDeadlineMs":40,
            "budgetDeadlineMs":40,"retryTimeoutMs":10})";

    net::SimTransport dark_net;
    rt::WorkerHost dark(loadDepth3(transport), depth3Peers(),
                        /*process=*/0, /*seed=*/7, dark_net);

    net::SimTransport lit_net;
    rt::WorkerHost lit(loadDepth3(transport), depth3Peers(),
                       /*process=*/0, /*seed=*/7, lit_net);
    telemetry::Registry registry;
    telemetry::PeriodTracer tracer;
    lit.setTelemetry(&registry, &tracer);

    ASSERT_EQ(dark.runPeriods(5), 5u);
    ASSERT_EQ(lit.runPeriods(5), 5u);

    // The instrumented run actually traced (the comparison would be
    // vacuous otherwise)...
    EXPECT_GT(lit.safetyAuditor().audits(), 0u);
    bool lit_hops = false;
    for (const auto &series : registry.snapshot()) {
        if (series.name == "capmaestro_hop_latency_ms"
            && series.histogram && series.histogram->count > 0)
            lit_hops = true;
    }
    EXPECT_TRUE(lit_hops);

    // ...and the allocations are identical to the last bit.
    const auto &a = dark.lastEdgeBudgets();
    const auto &b = lit.lastEdgeBudgets();
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    for (const auto &[edge, budget] : a) {
        const auto found = b.find(edge);
        ASSERT_NE(found, b.end());
        EXPECT_EQ(std::bit_cast<std::uint64_t>(budget),
                  std::bit_cast<std::uint64_t>(found->second))
            << "tree " << edge.first << " node " << edge.second;
    }
    EXPECT_EQ(dark.stats().budgetsApplied, lit.stats().budgetsApplied);
    EXPECT_EQ(dark.stats().defaultBudgets, lit.stats().defaultBudgets);
}
