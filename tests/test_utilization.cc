/**
 * @file
 * Tests for the digitized Figure 8 utilization profile.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <numeric>

#include "sim/utilization.hh"

using namespace capmaestro;
using sim::GoogleUtilizationProfile;

TEST(UtilizationProfile, WeightsSumToOne)
{
    const auto &w = GoogleUtilizationProfile::binWeights();
    const double sum = std::accumulate(w.begin(), w.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(UtilizationProfile, ShapeMatchesPaper)
{
    // Figure 8: mode in the 20-30 % band, thin tail above 50 %.
    const auto &w = GoogleUtilizationProfile::binWeights();
    const std::size_t mode =
        std::max_element(w.begin(), w.end()) - w.begin();
    EXPECT_EQ(mode, 2u);
    const double tail = w[5] + w[6] + w[7] + w[8] + w[9];
    EXPECT_LT(tail, 0.02);
}

TEST(UtilizationProfile, MeanInTypicalBand)
{
    const double m = GoogleUtilizationProfile::mean();
    EXPECT_GT(m, 0.15);
    EXPECT_LT(m, 0.35);
}

TEST(UtilizationProfile, SamplingMatchesWeights)
{
    util::Rng rng(17);
    const std::size_t n = 200000;
    auto h = GoogleUtilizationProfile::histogram(rng, n);
    EXPECT_EQ(h.count(), n);
    const auto &w = GoogleUtilizationProfile::binWeights();
    for (std::size_t i = 0; i < GoogleUtilizationProfile::kBins; ++i)
        EXPECT_NEAR(h.binFraction(i), w[i], 0.005) << "bin " << i;
}

TEST(UtilizationProfile, SamplesInRange)
{
    util::Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = GoogleUtilizationProfile::sample(rng);
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
}

TEST(UtilizationProfile, PerServerJitterClamped)
{
    util::Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const double u =
            GoogleUtilizationProfile::perServer(rng, 0.02, 0.05);
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
}

TEST(UtilizationProfile, SampleStreamBitDeterministic)
{
    // The workload layer derives its background utilization from this
    // stream, and its determinism suites compare job traces bit-exactly
    // — so the profile itself must reproduce bit-identical doubles from
    // the same seed.
    util::Rng a(23), b(23);
    for (int i = 0; i < 5000; ++i) {
        const double ua = GoogleUtilizationProfile::sample(a);
        const double ub = GoogleUtilizationProfile::sample(b);
        ASSERT_EQ(std::bit_cast<std::uint64_t>(ua),
                  std::bit_cast<std::uint64_t>(ub))
            << "draw " << i;
    }
    util::Rng c(23), d(23);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(
                      GoogleUtilizationProfile::perServer(c, 0.3, 0.05)),
                  std::bit_cast<std::uint64_t>(
                      GoogleUtilizationProfile::perServer(d, 0.3, 0.05)))
            << "draw " << i;
    }
}

TEST(UtilizationProfile, PerServerCentersOnFleetAverage)
{
    util::Rng rng(7);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += GoogleUtilizationProfile::perServer(rng, 0.4, 0.05);
    EXPECT_NEAR(sum / n, 0.4, 0.01);
}
