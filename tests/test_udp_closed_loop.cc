/**
 * @file
 * Closed-loop equivalence between the two transport backends: the same
 * scenario driven once over a lossless SimTransport and once over real
 * 127.0.0.1 UDP sockets (the single-process loopback mode behind
 * `capmaestro_run --transport=udp`) must produce bit-identical budget,
 * power, and throughput traces — the §4.5 protocol degenerates to the
 * direct exchange whenever every frame makes its deadline, and on
 * loopback every frame does. Also locks in the issue's acceptance
 * criterion directly: a UDP-backed run completes with zero
 * protocol-degraded periods.
 *
 * Wall-clock cost: each UDP control period really sleeps through the
 * protocol's deadline schedule, so the tests shrink the deadlines to
 * keep the whole suite under a few seconds.
 *
 * Set CAPMAESTRO_NO_NET=1 to skip the socket-bound tests.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>
#include <string>

#include "config/loader.hh"
#include "core/events.hh"
#include "sim/closed_loop.hh"
#include "util/json.hh"

using namespace capmaestro;

namespace {

#define SKIP_WITHOUT_NET()                                            \
    do {                                                              \
        if (std::getenv("CAPMAESTRO_NO_NET") != nullptr)              \
            GTEST_SKIP() << "CAPMAESTRO_NO_NET is set";               \
    } while (0)

/** Dual-feed SPO testbed (Figure 7a shape): share mismatches so the
 *  §4.4 second round fires once caps bite — the hardest protocol path
 *  to keep bit-identical across backends. */
const char *kScenario = R"({
  "feeds": 2,
  "trees": [
    {
      "feed": 0, "phase": 0, "name": "X",
      "root": {
        "kind": "breaker", "name": "topCB", "rating": 1400,
        "children": [
          { "kind": "breaker", "name": "leftCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 0, "supply": 0 },
              { "kind": "supply", "server": 2, "supply": 0 } ] },
          { "kind": "breaker", "name": "rightCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 1, "supply": 0 },
              { "kind": "supply", "server": 3, "supply": 0 } ] }
        ]
      }
    },
    {
      "feed": 1, "phase": 0, "name": "Y",
      "root": {
        "kind": "breaker", "name": "topCB", "rating": 1400,
        "children": [
          { "kind": "breaker", "name": "leftCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 0, "supply": 1 },
              { "kind": "supply", "server": 2, "supply": 1 } ] },
          { "kind": "breaker", "name": "rightCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 1, "supply": 1 },
              { "kind": "supply", "server": 3, "supply": 1 } ] }
        ]
      }
    }
  ],
  "servers": [
    { "name": "SA", "priority": 1,
      "supplies": [ { "share": 0.5 }, { "share": 0.5 } ],
      "workload": { "type": "constant", "utilization": 0.684 } },
    { "name": "SB",
      "supplies": [ { "share": 0.5 }, { "share": 0.5 } ],
      "workload": { "type": "constant", "utilization": 0.686 } },
    { "name": "SC",
      "supplies": [ { "share": 0.53 }, { "share": 0.47 } ],
      "workload": { "type": "constant", "utilization": 0.722 } },
    { "name": "SD",
      "supplies": [ { "share": 0.46 }, { "share": 0.54 } ],
      "workload": { "type": "constant", "utilization": 0.734 } }
  ],
  "service": { "policy": "global", "spo": true },
  "budgets": { "totalPerPhase": 1400 }
})";

/** Deadline schedule shared by both backends; small so the UDP run's
 *  real sleeps stay short, generous enough that loopback frames never
 *  miss (a loopback round trip is well under a millisecond). */
const char *kProtocol = R"(,"gatherDeadlineMs":40,"budgetDeadlineMs":40,
  "spoGatherDeadlineMs":40,"spoBudgetDeadlineMs":40,
  "retryTimeoutMs":10)";

sim::ClosedLoopSim
makeRun(const std::string &backend, Seconds duration)
{
    auto scenario = config::loadScenario(util::parseJson(kScenario));
    config::applyTransportJson(
        scenario.service,
        util::parseJson("{\"backend\":\"" + backend + "\""
                        + std::string(kProtocol) + "}"));
    auto simulation = config::makeSimulation(std::move(scenario), 1);
    simulation.run(duration);
    return simulation;
}

std::size_t
degradedEventCount(const core::EventLog &log)
{
    return log.count(core::EventKind::StaleMetricsReused)
           + log.count(core::EventKind::MetricsLost)
           + log.count(core::EventKind::DefaultBudgetApplied)
           + log.count(core::EventKind::WorkerFailover)
           + log.count(core::EventKind::SpoFallback);
}

} // namespace

TEST(UdpClosedLoop, LoopbackRunHasZeroDegradedPeriods)
{
    SKIP_WITHOUT_NET();
    auto udp = makeRun("udp", 48);
    EXPECT_EQ(udp.service().lastStats().periodsRun, 5u);
    EXPECT_EQ(degradedEventCount(udp.eventLog()), 0u)
        << "UDP loopback run took degraded-mode decisions";
    EXPECT_FALSE(udp.anyBreakerTripped());
    // Real sockets carried the exchange: bytes actually moved.
    EXPECT_GT(udp.service().lastStats().messages.bytesOnWire, 0u);
}

TEST(UdpClosedLoop, BudgetsBitIdenticalToLosslessSimBackend)
{
    SKIP_WITHOUT_NET();
    const Seconds duration = 48;
    auto sim_run = makeRun("sim", duration);
    auto udp_run = makeRun("udp", duration);

    // Neither backend may have degraded — otherwise the comparison
    // below tests the fault path, not backend equivalence.
    ASSERT_EQ(degradedEventCount(sim_run.eventLog()), 0u);
    ASSERT_EQ(degradedEventCount(udp_run.eventLog()), 0u);

    const auto &sim_rec = sim_run.recorder();
    const auto &udp_rec = udp_run.recorder();
    ASSERT_EQ(sim_rec.names(), udp_rec.names());
    for (const auto &name : sim_rec.names()) {
        const auto &a = sim_rec.series(name);
        const auto &b = udp_rec.series(name);
        ASSERT_EQ(a.size(), b.size()) << name;
        for (std::size_t i = 0; i < a.size(); ++i) {
            ASSERT_EQ(a[i].time, b[i].time) << name << "[" << i << "]";
            ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i].value),
                      std::bit_cast<std::uint64_t>(b[i].value))
                << name << "[" << i << "] sim=" << a[i].value
                << " udp=" << b[i].value;
        }
    }
}
