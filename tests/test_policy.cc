/**
 * @file
 * Policy-module tests: kind -> tree-flag mapping, naming, and the
 * cap-ratio metric of §6.4.
 */

#include <gtest/gtest.h>

#include "policy/policy.hh"

using namespace capmaestro;

TEST(Policy, Names)
{
    EXPECT_STREQ(policy::policyName(policy::PolicyKind::NoPriority),
                 "No Priority");
    EXPECT_STREQ(policy::policyName(policy::PolicyKind::LocalPriority),
                 "Local Priority");
    EXPECT_STREQ(policy::policyName(policy::PolicyKind::GlobalPriority),
                 "Global Priority");
}

TEST(Policy, TreeFlags)
{
    const auto np = policy::treePolicy(policy::PolicyKind::NoPriority);
    EXPECT_FALSE(np.leafPriorityAware);
    EXPECT_FALSE(np.upperPriorityAware);

    const auto lp = policy::treePolicy(policy::PolicyKind::LocalPriority);
    EXPECT_TRUE(lp.leafPriorityAware);
    EXPECT_FALSE(lp.upperPriorityAware);

    const auto gp = policy::treePolicy(policy::PolicyKind::GlobalPriority);
    EXPECT_TRUE(gp.leafPriorityAware);
    EXPECT_TRUE(gp.upperPriorityAware);
}

TEST(Policy, AllPoliciesOrdered)
{
    ASSERT_EQ(policy::kAllPolicies.size(), 3u);
    EXPECT_EQ(policy::kAllPolicies[0], policy::PolicyKind::NoPriority);
    EXPECT_EQ(policy::kAllPolicies[2], policy::PolicyKind::GlobalPriority);
}

TEST(CapRatio, Definition)
{
    // (demand - budget) / (demand - idle), per §6.4.
    EXPECT_DOUBLE_EQ(policy::capRatio(490.0, 325.0, 160.0), 0.5);
    EXPECT_DOUBLE_EQ(policy::capRatio(490.0, 490.0, 160.0), 0.0);
}

TEST(CapRatio, ClampsToUnitInterval)
{
    // Budget above demand: no capping, ratio 0 (not negative).
    EXPECT_DOUBLE_EQ(policy::capRatio(400.0, 450.0, 160.0), 0.0);
    // Budget below idle: fully capped, ratio 1.
    EXPECT_DOUBLE_EQ(policy::capRatio(400.0, 100.0, 160.0), 1.0);
}

TEST(CapRatio, IdleWorkloadIsZero)
{
    EXPECT_DOUBLE_EQ(policy::capRatio(160.0, 100.0, 160.0), 0.0);
}
