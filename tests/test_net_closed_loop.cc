/**
 * @file
 * Closed-loop tests for the message-plane control path: the full
 * sense -> gather -> budget -> actuate loop running over a faulty
 * SimTransport. Asserts (1) service-level equivalence with the
 * monolithic path under a lossless transport, (2) budget safety at 20%
 * frame loss (no breaker ever trips), and (3) degraded-mode decisions
 * surfacing in the structured event log.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>

#include "config/loader.hh"
#include "core/events.hh"
#include "sim/closed_loop.hh"
#include "util/json.hh"

using namespace capmaestro;

namespace {

/** The Figure 2 testbed as an inline scenario, SPO off. */
const char *kScenario = R"({
  "feeds": 1,
  "trees": [
    {
      "feed": 0, "phase": 0, "name": "feed",
      "root": {
        "kind": "breaker", "name": "topCB", "rating": 1400,
        "children": [
          {
            "kind": "breaker", "name": "leftCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 0, "supply": 0 },
              { "kind": "supply", "server": 1, "supply": 0 }
            ]
          },
          {
            "kind": "breaker", "name": "rightCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 2, "supply": 0 },
              { "kind": "supply", "server": 3, "supply": 0 }
            ]
          }
        ]
      }
    }
  ],
  "servers": [
    { "name": "SA", "priority": 1, "supplies": [ { "share": 1.0 } ],
      "workload": { "type": "constant", "utilization": 0.695 } },
    { "name": "SB", "supplies": [ { "share": 1.0 } ],
      "workload": { "type": "constant", "utilization": 0.676 } },
    { "name": "SC", "supplies": [ { "share": 1.0 } ],
      "workload": { "type": "constant", "utilization": 0.687 } },
    { "name": "SD", "supplies": [ { "share": 1.0 } ],
      "workload": { "type": "constant", "utilization": 0.703 } }
  ],
  "service": { "policy": "global", "controlPeriodSeconds": 8,
               "spo": false },
  "budgets": { "perTree": [ 1240 ] }
})";

config::LoadedScenario
loadWithTransport(const std::string &transport_json)
{
    auto scenario = config::loadScenario(util::parseJson(kScenario));
    if (!transport_json.empty()) {
        config::applyTransportJson(scenario.service,
                                   util::parseJson(transport_json));
    }
    return scenario;
}

} // namespace

TEST(NetClosedLoop, LosslessPlaneMatchesMonolithicService)
{
    // Same scenario, same seed: one service allocates through the
    // FleetAllocator, the other through the message plane over a
    // lossless transport. Every per-supply budget of every control
    // period must agree bit-for-bit.
    auto mono_sim = config::makeSimulation(loadWithTransport(""), 1);
    auto plane_sim = config::makeSimulation(
        loadWithTransport("{\"dropRate\": 0}"), 1);

    for (int period = 0; period < 20; ++period) {
        mono_sim.run(8);
        plane_sim.run(8);
        const auto &mono = mono_sim.service().lastStats().allocation;
        const auto &plane = plane_sim.service().lastStats().allocation;
        ASSERT_EQ(mono.servers.size(), plane.servers.size());
        for (std::size_t i = 0; i < mono.servers.size(); ++i) {
            const auto &mb = mono.servers[i].supplyBudget;
            const auto &pb = plane.servers[i].supplyBudget;
            ASSERT_EQ(mb.size(), pb.size());
            for (std::size_t s = 0; s < mb.size(); ++s) {
                EXPECT_EQ(std::bit_cast<std::uint64_t>(mb[s]),
                          std::bit_cast<std::uint64_t>(pb[s]))
                    << "period " << period << " server " << i
                    << " supply " << s;
            }
            EXPECT_EQ(std::bit_cast<std::uint64_t>(
                          mono.servers[i].enforceableCapAc),
                      std::bit_cast<std::uint64_t>(
                          plane.servers[i].enforceableCapAc));
        }
        // No degraded decisions under a lossless transport.
        EXPECT_TRUE(
            plane_sim.service().lastStats().messages.degraded.empty());
    }
}

TEST(NetClosedLoop, TwentyPercentLossStillEnforcesBudgets)
{
    // The §4.5 acceptance scenario: 20% frame drop for the whole run.
    // Retries, stale metrics, and Pcap_min defaults may all fire, but
    // every per-supply budget stays enforced: no breaker trips and no
    // breaker-overload window survives to trip territory.
    auto sim = config::makeSimulation(
        loadWithTransport("{\"dropRate\": 0.2, \"seed\": 11}"), 1);
    sim.run(400);

    EXPECT_FALSE(sim.anyBreakerTripped());
    EXPECT_EQ(sim.eventLog().count(core::EventKind::BreakerTripped), 0u);
    EXPECT_GE(sim.service().lastStats().periodsRun, 49u);
    // The plane really ran: bytes moved on the wire.
    EXPECT_GT(sim.service().lastStats().messages.bytesOnWire, 0u);
}

TEST(NetClosedLoop, HeavyLossDegradesIntoEventLog)
{
    // At 70% drop, degraded decisions are statistically certain over
    // 50 periods - and each one must surface as a structured event.
    auto sim = config::makeSimulation(
        loadWithTransport("{\"dropRate\": 0.7, \"seed\": 3}"), 1);
    sim.run(400);

    const auto &log = sim.eventLog();
    const std::size_t degraded =
        log.count(core::EventKind::StaleMetricsReused)
        + log.count(core::EventKind::MetricsLost)
        + log.count(core::EventKind::DefaultBudgetApplied);
    EXPECT_GT(degraded, 0u);
    EXPECT_FALSE(sim.anyBreakerTripped());

    // Degraded events carry the edge's topology name as the subject.
    bool named = false;
    for (const auto &e : log.events()) {
        if ((e.kind == core::EventKind::StaleMetricsReused
             || e.kind == core::EventKind::MetricsLost
             || e.kind == core::EventKind::DefaultBudgetApplied)
            && e.subject.find("feed.") == 0) {
            named = true;
        }
    }
    EXPECT_TRUE(named);
}

TEST(NetClosedLoop, LatencyAndJitterDoNotBreakTheLoop)
{
    // Latency inside the deadlines delays but never degrades.
    auto sim = config::makeSimulation(
        loadWithTransport(
            "{\"latencyMs\": 5, \"jitterMs\": 3, \"seed\": 9}"),
        1);
    sim.run(160);
    EXPECT_FALSE(sim.anyBreakerTripped());
    EXPECT_EQ(sim.eventLog().count(core::EventKind::DefaultBudgetApplied),
              0u);
    EXPECT_EQ(sim.eventLog().count(core::EventKind::MetricsLost), 0u);
}

TEST(NetClosedLoop, TransportJsonRoundTripIntoServiceConfig)
{
    auto scenario = loadWithTransport(
        "{\"dropRate\": 0.25, \"dupRate\": 0.05, \"latencyMs\": 2, "
        "\"jitterMs\": 1, \"reorderRate\": 0.1, \"maxAttempts\": 6, "
        "\"staleAgeCap\": 4, \"heartbeatFailAfter\": 5, "
        "\"gatherDeadlineMs\": 200, \"budgetDeadlineMs\": 150, "
        "\"retryTimeoutMs\": 40, \"seed\": 77}");
    const auto &svc = scenario.service;
    EXPECT_TRUE(svc.useMessagePlane);
    EXPECT_DOUBLE_EQ(svc.transport.dropRate, 0.25);
    EXPECT_DOUBLE_EQ(svc.transport.dupRate, 0.05);
    EXPECT_DOUBLE_EQ(svc.transport.latencyMeanMs, 2.0);
    EXPECT_DOUBLE_EQ(svc.transport.latencyJitterMs, 1.0);
    EXPECT_DOUBLE_EQ(svc.transport.reorderRate, 0.1);
    EXPECT_EQ(svc.transport.seed, 77u);
    EXPECT_EQ(svc.protocol.maxAttempts, 6);
    EXPECT_EQ(svc.protocol.staleAgeCapPeriods, 4);
    EXPECT_EQ(svc.protocol.heartbeatFailAfter, 5);
    EXPECT_DOUBLE_EQ(svc.protocol.gatherDeadlineMs, 200.0);
    EXPECT_DOUBLE_EQ(svc.protocol.budgetDeadlineMs, 150.0);
    EXPECT_DOUBLE_EQ(svc.protocol.retryTimeoutMs, 40.0);

    // "enabled": false declares the block without switching modes.
    auto off = loadWithTransport("{\"enabled\": false, \"dropRate\": 0.5}");
    EXPECT_FALSE(off.service.useMessagePlane);
}
