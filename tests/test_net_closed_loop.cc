/**
 * @file
 * Closed-loop tests for the message-plane control path: the full
 * sense -> gather -> budget -> actuate loop running over a faulty
 * SimTransport. Asserts (1) service-level equivalence with the
 * monolithic path under a lossless transport, (2) budget safety at 20%
 * frame loss (no breaker ever trips), (3) degraded-mode decisions
 * surfacing in the structured event log, and (4) §4.4 SPO degradation:
 * under loss or timeout a tree either commits its whole second-pass
 * budget set or keeps its first-pass budgets untouched - never a mix -
 * and every fallback shows up in MessageStats and the event log.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "control/allocator.hh"
#include "core/distributed.hh"
#include "net/transport.hh"
#include "policy/policy.hh"

#include "config/loader.hh"
#include "core/events.hh"
#include "sim/closed_loop.hh"
#include "util/json.hh"

using namespace capmaestro;

namespace {

/** The Figure 2 testbed as an inline scenario, SPO off. */
const char *kScenario = R"({
  "feeds": 1,
  "trees": [
    {
      "feed": 0, "phase": 0, "name": "feed",
      "root": {
        "kind": "breaker", "name": "topCB", "rating": 1400,
        "children": [
          {
            "kind": "breaker", "name": "leftCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 0, "supply": 0 },
              { "kind": "supply", "server": 1, "supply": 0 }
            ]
          },
          {
            "kind": "breaker", "name": "rightCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 2, "supply": 0 },
              { "kind": "supply", "server": 3, "supply": 0 }
            ]
          }
        ]
      }
    }
  ],
  "servers": [
    { "name": "SA", "priority": 1, "supplies": [ { "share": 1.0 } ],
      "workload": { "type": "constant", "utilization": 0.695 } },
    { "name": "SB", "supplies": [ { "share": 1.0 } ],
      "workload": { "type": "constant", "utilization": 0.676 } },
    { "name": "SC", "supplies": [ { "share": 1.0 } ],
      "workload": { "type": "constant", "utilization": 0.687 } },
    { "name": "SD", "supplies": [ { "share": 1.0 } ],
      "workload": { "type": "constant", "utilization": 0.703 } }
  ],
  "service": { "policy": "global", "controlPeriodSeconds": 8,
               "spo": false },
  "budgets": { "perTree": [ 1240 ] }
})";

/**
 * The Figure 7a dual-feed stranded-power testbed (SPO on): dual-corded
 * servers with intrinsic share mismatches, so the §4.4 second round
 * fires every period once caps bite.
 */
const char *kSpoScenario = R"({
  "feeds": 2,
  "trees": [
    {
      "feed": 0, "phase": 0, "name": "X",
      "root": {
        "kind": "breaker", "name": "topCB", "rating": 1400,
        "children": [
          { "kind": "breaker", "name": "leftCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 0, "supply": 0 },
              { "kind": "supply", "server": 2, "supply": 0 } ] },
          { "kind": "breaker", "name": "rightCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 3, "supply": 0 } ] }
        ]
      }
    },
    {
      "feed": 1, "phase": 0, "name": "Y",
      "root": {
        "kind": "breaker", "name": "topCB", "rating": 1400,
        "children": [
          { "kind": "breaker", "name": "leftCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 1, "supply": 1 },
              { "kind": "supply", "server": 2, "supply": 1 } ] },
          { "kind": "breaker", "name": "rightCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 3, "supply": 1 } ] }
        ]
      }
    }
  ],
  "servers": [
    { "name": "SA", "priority": 1,
      "supplies": [ { "share": 0.5 }, { "share": 0.5 } ],
      "workload": { "type": "constant", "utilization": 0.684 } },
    { "name": "SB",
      "supplies": [ { "share": 0.5 }, { "share": 0.5 } ],
      "workload": { "type": "constant", "utilization": 0.686 } },
    { "name": "SC",
      "supplies": [ { "share": 0.53 }, { "share": 0.47 } ],
      "workload": { "type": "constant", "utilization": 0.722 } },
    { "name": "SD",
      "supplies": [ { "share": 0.46 }, { "share": 0.54 } ],
      "workload": { "type": "constant", "utilization": 0.734 } }
  ],
  "service": { "policy": "global", "spo": true },
  "budgets": { "totalPerPhase": 1400 }
})";

config::LoadedScenario
loadWithTransport(const std::string &transport_json)
{
    auto scenario = config::loadScenario(util::parseJson(kScenario));
    if (!transport_json.empty()) {
        config::applyTransportJson(scenario.service,
                                   util::parseJson(transport_json));
    }
    return scenario;
}

config::LoadedScenario
loadSpoWithTransport(const std::string &transport_json)
{
    auto scenario = config::loadScenario(util::parseJson(kSpoScenario));
    config::applyTransportJson(scenario.service,
                               util::parseJson(transport_json));
    return scenario;
}

/** Fleet inputs for the SPO scenario's servers, demand near capMax. */
std::vector<ctrl::ServerAllocInput>
spoInputs(const config::LoadedScenario &scenario)
{
    std::vector<ctrl::ServerAllocInput> inputs;
    for (const auto &server : scenario.servers) {
        const auto &spec = server.spec;
        ctrl::ServerAllocInput in;
        in.priority = spec.priority;
        in.capMin = spec.capMin;
        in.capMax = spec.capMax;
        in.demand = spec.capMin + 0.8 * (spec.capMax - spec.capMin);
        in.supplies.resize(spec.supplies.size());
        for (std::size_t s = 0; s < spec.supplies.size(); ++s)
            in.supplies[s].share = spec.supplies[s].loadShare;
        inputs.push_back(std::move(in));
    }
    return inputs;
}

/** Per-leaf budget snapshot of the whole plane. */
std::map<std::pair<int, int>, std::uint64_t>
leafSnapshot(core::DistributedControlPlane &plane,
             const topo::PowerSystem &system)
{
    std::map<std::pair<int, int>, std::uint64_t> snap;
    for (const auto &tree : system.trees()) {
        for (const auto &ref : tree->suppliesUnder(tree->root())) {
            snap[{ref.server, ref.supply}] =
                std::bit_cast<std::uint64_t>(plane.leafBudget(ref));
        }
    }
    return snap;
}

/**
 * First-pass iterate + stranded detection + one SPO round on the given
 * plane. Returns the committed tree set; @p first_pass receives the
 * leaf budgets as of the end of the first pass and @p pins_found the
 * number of stranded supplies detected (0 means the SPO round was a
 * no-op, e.g. after heavy first-pass degradation).
 */
std::set<std::size_t>
runOneSpoRound(core::DistributedControlPlane &plane,
               const topo::PowerSystem &system,
               const std::vector<ctrl::ServerAllocInput> &inputs,
               const std::vector<Watts> &root_budgets,
               core::MessageStats &stats,
               std::map<std::pair<int, int>, std::uint64_t> &first_pass,
               std::size_t &pins_found)
{
    std::vector<std::vector<Fraction>> shares(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        shares[i] = ctrl::effectiveSupplyShares(
            system, inputs[i], static_cast<std::int32_t>(i));
    }
    for (const auto &tree : system.trees()) {
        for (const auto &ref : tree->suppliesUnder(tree->root())) {
            const auto sid = static_cast<std::size_t>(ref.server);
            const auto sup = static_cast<std::size_t>(ref.supply);
            const Fraction r =
                sup < shares[sid].size() ? shares[sid][sup] : 0.0;
            plane.setLeafInput(ref,
                               ctrl::scaledLeafInput(inputs[sid], r));
        }
    }
    stats = plane.iterate(root_budgets);
    first_pass = leafSnapshot(plane, system);

    ctrl::FleetAllocation alloc;
    ctrl::deriveServerCapsFrom(
        system, inputs, shares,
        [&](std::size_t, const topo::ServerSupplyRef &ref) {
            return plane.leafBudget(ref);
        },
        alloc);
    const auto pins =
        ctrl::detectStrandedSupplies(system, inputs, shares, alloc, 1.0);
    pins_found = pins.size();
    return plane.iterateSpo(root_budgets, pins, stats);
}

} // namespace

TEST(NetClosedLoop, LosslessPlaneMatchesMonolithicService)
{
    // Same scenario, same seed: one service allocates through the
    // FleetAllocator, the other through the message plane over a
    // lossless transport. Every per-supply budget of every control
    // period must agree bit-for-bit.
    auto mono_sim = config::makeSimulation(loadWithTransport(""), 1);
    auto plane_sim = config::makeSimulation(
        loadWithTransport("{\"dropRate\": 0}"), 1);

    for (int period = 0; period < 20; ++period) {
        mono_sim.run(8);
        plane_sim.run(8);
        const auto &mono = mono_sim.service().lastStats().allocation;
        const auto &plane = plane_sim.service().lastStats().allocation;
        ASSERT_EQ(mono.servers.size(), plane.servers.size());
        for (std::size_t i = 0; i < mono.servers.size(); ++i) {
            const auto &mb = mono.servers[i].supplyBudget;
            const auto &pb = plane.servers[i].supplyBudget;
            ASSERT_EQ(mb.size(), pb.size());
            for (std::size_t s = 0; s < mb.size(); ++s) {
                EXPECT_EQ(std::bit_cast<std::uint64_t>(mb[s]),
                          std::bit_cast<std::uint64_t>(pb[s]))
                    << "period " << period << " server " << i
                    << " supply " << s;
            }
            EXPECT_EQ(std::bit_cast<std::uint64_t>(
                          mono.servers[i].enforceableCapAc),
                      std::bit_cast<std::uint64_t>(
                          plane.servers[i].enforceableCapAc));
        }
        // No degraded decisions under a lossless transport.
        EXPECT_TRUE(
            plane_sim.service().lastStats().messages.degraded.empty());
    }
}

TEST(NetClosedLoop, TwentyPercentLossStillEnforcesBudgets)
{
    // The §4.5 acceptance scenario: 20% frame drop for the whole run.
    // Retries, stale metrics, and Pcap_min defaults may all fire, but
    // every per-supply budget stays enforced: no breaker trips and no
    // breaker-overload window survives to trip territory.
    auto sim = config::makeSimulation(
        loadWithTransport("{\"dropRate\": 0.2, \"seed\": 11}"), 1);
    sim.run(400);

    EXPECT_FALSE(sim.anyBreakerTripped());
    EXPECT_EQ(sim.eventLog().count(core::EventKind::BreakerTripped), 0u);
    EXPECT_GE(sim.service().lastStats().periodsRun, 49u);
    // The plane really ran: bytes moved on the wire.
    EXPECT_GT(sim.service().lastStats().messages.bytesOnWire, 0u);
}

TEST(NetClosedLoop, HeavyLossDegradesIntoEventLog)
{
    // At 70% drop, degraded decisions are statistically certain over
    // 50 periods - and each one must surface as a structured event.
    auto sim = config::makeSimulation(
        loadWithTransport("{\"dropRate\": 0.7, \"seed\": 3}"), 1);
    sim.run(400);

    const auto &log = sim.eventLog();
    const std::size_t degraded =
        log.count(core::EventKind::StaleMetricsReused)
        + log.count(core::EventKind::MetricsLost)
        + log.count(core::EventKind::DefaultBudgetApplied);
    EXPECT_GT(degraded, 0u);
    EXPECT_FALSE(sim.anyBreakerTripped());

    // Degraded events carry the edge's topology name as the subject.
    bool named = false;
    for (const auto &e : log.events()) {
        if ((e.kind == core::EventKind::StaleMetricsReused
             || e.kind == core::EventKind::MetricsLost
             || e.kind == core::EventKind::DefaultBudgetApplied)
            && e.subject.find("feed.") == 0) {
            named = true;
        }
    }
    EXPECT_TRUE(named);
}

TEST(NetClosedLoop, LatencyAndJitterDoNotBreakTheLoop)
{
    // Latency inside the deadlines delays but never degrades.
    auto sim = config::makeSimulation(
        loadWithTransport(
            "{\"latencyMs\": 5, \"jitterMs\": 3, \"seed\": 9}"),
        1);
    sim.run(160);
    EXPECT_FALSE(sim.anyBreakerTripped());
    EXPECT_EQ(sim.eventLog().count(core::EventKind::DefaultBudgetApplied),
              0u);
    EXPECT_EQ(sim.eventLog().count(core::EventKind::MetricsLost), 0u);
}

TEST(NetClosedLoop, TransportJsonRoundTripIntoServiceConfig)
{
    auto scenario = loadWithTransport(
        "{\"dropRate\": 0.25, \"dupRate\": 0.05, \"latencyMs\": 2, "
        "\"jitterMs\": 1, \"reorderRate\": 0.1, \"maxAttempts\": 6, "
        "\"staleAgeCap\": 4, \"heartbeatFailAfter\": 5, "
        "\"gatherDeadlineMs\": 200, \"budgetDeadlineMs\": 150, "
        "\"spoGatherDeadlineMs\": 120, \"spoBudgetDeadlineMs\": 80, "
        "\"retryTimeoutMs\": 40, \"seed\": 77}");
    const auto &svc = scenario.service;
    EXPECT_TRUE(svc.useMessagePlane);
    EXPECT_DOUBLE_EQ(svc.transport.dropRate, 0.25);
    EXPECT_DOUBLE_EQ(svc.transport.dupRate, 0.05);
    EXPECT_DOUBLE_EQ(svc.transport.latencyMeanMs, 2.0);
    EXPECT_DOUBLE_EQ(svc.transport.latencyJitterMs, 1.0);
    EXPECT_DOUBLE_EQ(svc.transport.reorderRate, 0.1);
    EXPECT_EQ(svc.transport.seed, 77u);
    EXPECT_EQ(svc.protocol.maxAttempts, 6);
    EXPECT_EQ(svc.protocol.staleAgeCapPeriods, 4);
    EXPECT_EQ(svc.protocol.heartbeatFailAfter, 5);
    EXPECT_DOUBLE_EQ(svc.protocol.gatherDeadlineMs, 200.0);
    EXPECT_DOUBLE_EQ(svc.protocol.budgetDeadlineMs, 150.0);
    EXPECT_DOUBLE_EQ(svc.protocol.spoGatherDeadlineMs, 120.0);
    EXPECT_DOUBLE_EQ(svc.protocol.spoBudgetDeadlineMs, 80.0);
    EXPECT_DOUBLE_EQ(svc.protocol.retryTimeoutMs, 40.0);

    // "enabled": false declares the block without switching modes.
    auto off = loadWithTransport("{\"enabled\": false, \"dropRate\": 0.5}");
    EXPECT_FALSE(off.service.useMessagePlane);
}

TEST(NetClosedLoop, SpoGatherTimeoutFallsBackToFirstPassBudgets)
{
    // 5 ms link latency against a 1 ms SPO gather deadline: no pinned
    // summary can arrive in time, so every attempted tree must fall
    // back wholesale to its first-pass budgets. The main round, under
    // the default 100 ms deadlines, is unaffected.
    auto scenario = loadSpoWithTransport("{\"latencyMs\": 5}");
    const topo::PowerSystem &system = *scenario.system;
    const auto policy = policy::treePolicy(scenario.service.policy);
    const auto inputs = spoInputs(scenario);

    net::SimTransport tp{scenario.service.transport};
    auto protocol = scenario.service.protocol;
    protocol.spoGatherDeadlineMs = 1.0;
    core::DistributedControlPlane plane(system, policy, tp, protocol);

    core::MessageStats stats;
    std::map<std::pair<int, int>, std::uint64_t> first_pass;
    std::size_t pins = 0;
    const auto committed =
        runOneSpoRound(plane, system, inputs, scenario.rootBudgets,
                       stats, first_pass, pins);

    ASSERT_GT(pins, 0u)
        << "scenario no longer strands power; the test lost its teeth";
    EXPECT_TRUE(committed.empty());
    EXPECT_GT(stats.spoTreesAttempted, 0u);
    EXPECT_EQ(stats.spoCommittedTrees, 0u);
    EXPECT_EQ(stats.spoFallbackTrees, stats.spoTreesAttempted);

    // Every fallback was taken in the gather phase (value 1.0) and is
    // tree-wide (no single edge node to blame).
    std::size_t fallbacks = 0;
    for (const auto &d : stats.degraded) {
        if (d.kind != core::DegradedKind::SpoFallback)
            continue;
        ++fallbacks;
        EXPECT_EQ(d.node, topo::kNoNode);
        EXPECT_DOUBLE_EQ(d.value, 1.0);
    }
    EXPECT_EQ(fallbacks, stats.spoFallbackTrees);

    // First-pass budgets stand untouched at every leaf.
    EXPECT_EQ(leafSnapshot(plane, system), first_pass);
}

TEST(NetClosedLoop, SpoBudgetTimeoutFallsBackToFirstPassBudgets)
{
    // Gather succeeds (default 100 ms deadline vs 5 ms latency) but the
    // 1 ms budget deadline expires with every SpoBudget frame still in
    // flight. Racks buffer rather than apply, so nothing may have
    // leaked through: first-pass budgets stand, and the fallback is
    // recorded as budget-phase (value 2.0).
    auto scenario = loadSpoWithTransport("{\"latencyMs\": 5}");
    const topo::PowerSystem &system = *scenario.system;
    const auto policy = policy::treePolicy(scenario.service.policy);
    const auto inputs = spoInputs(scenario);

    net::SimTransport tp{scenario.service.transport};
    auto protocol = scenario.service.protocol;
    protocol.spoBudgetDeadlineMs = 1.0;
    core::DistributedControlPlane plane(system, policy, tp, protocol);

    core::MessageStats stats;
    std::map<std::pair<int, int>, std::uint64_t> first_pass;
    std::size_t pins = 0;
    const auto committed =
        runOneSpoRound(plane, system, inputs, scenario.rootBudgets,
                       stats, first_pass, pins);

    ASSERT_GT(pins, 0u)
        << "scenario no longer strands power; the test lost its teeth";
    EXPECT_TRUE(committed.empty());
    EXPECT_GT(stats.spoSummaryMessages, 0u); // the gather did complete
    EXPECT_EQ(stats.spoCommittedTrees, 0u);
    EXPECT_EQ(stats.spoFallbackTrees, stats.spoTreesAttempted);
    for (const auto &d : stats.degraded) {
        if (d.kind == core::DegradedKind::SpoFallback) {
            EXPECT_DOUBLE_EQ(d.value, 2.0);
        }
    }
    EXPECT_EQ(leafSnapshot(plane, system), first_pass);
}

TEST(NetClosedLoop, SpoPartialBudgetDeliveryNeverAppliesAMix)
{
    // 50% loss with retries disabled: across seeds, some SPO rounds
    // lose only part of a tree's budget frames. A tree that misses any
    // edge must keep ALL of its first-pass budgets - including at the
    // edges whose frames did arrive (buffered, never applied).
    std::size_t budget_phase_fallbacks = 0;
    std::size_t commits = 0;
    for (std::uint32_t seed = 1; seed <= 60; ++seed) {
        auto scenario = loadSpoWithTransport("{\"dropRate\": 0.5}");
        auto transport_cfg = scenario.service.transport;
        transport_cfg.seed = seed;
        net::SimTransport tp{transport_cfg};
        auto protocol = scenario.service.protocol;
        protocol.maxAttempts = 1;
        const topo::PowerSystem &system = *scenario.system;
        const auto policy = policy::treePolicy(scenario.service.policy);
        const auto inputs = spoInputs(scenario);
        core::DistributedControlPlane plane(system, policy, tp,
                                            protocol);

        core::MessageStats stats;
        std::map<std::pair<int, int>, std::uint64_t> first_pass;
        std::size_t pins = 0;
        const auto committed =
            runOneSpoRound(plane, system, inputs, scenario.rootBudgets,
                           stats, first_pass, pins);

        ASSERT_EQ(stats.spoTreesAttempted,
                  stats.spoCommittedTrees + stats.spoFallbackTrees)
            << "seed " << seed;
        commits += stats.spoCommittedTrees;

        std::set<std::size_t> fallen;
        for (const auto &d : stats.degraded) {
            if (d.kind == core::DegradedKind::SpoFallback) {
                fallen.insert(d.tree);
                if (d.value == 2.0)
                    ++budget_phase_fallbacks;
            }
        }
        EXPECT_EQ(fallen.size(), stats.spoFallbackTrees)
            << "seed " << seed;

        const auto after = leafSnapshot(plane, system);
        for (const std::size_t t : fallen) {
            const auto &tree = system.tree(t);
            for (const auto &ref : tree.suppliesUnder(tree.root())) {
                const auto key =
                    std::make_pair(ref.server, ref.supply);
                EXPECT_EQ(after.at(key), first_pass.at(key))
                    << "seed " << seed << " tree " << t << " server "
                    << ref.server << " supply " << ref.supply
                    << ": fallen tree budget changed (stale mix)";
            }
        }
        for (const std::size_t t : committed)
            EXPECT_FALSE(fallen.count(t)) << "seed " << seed;
    }
    // The sweep must exercise both outcomes, or it proves nothing.
    EXPECT_GT(budget_phase_fallbacks, 0u);
    EXPECT_GT(commits, 0u);
}

TEST(NetClosedLoop, SpoAtTwentyPercentLossNeverTripsABreaker)
{
    // The §4.5 acceptance bar extended to the second round: at 20%
    // frame drop the SPO phase may retry or fall back, but budgets stay
    // enforced (no trips) and the counter identity holds every period.
    auto sim = config::makeSimulation(
        loadSpoWithTransport("{\"dropRate\": 0.2, \"seed\": 21}"), 1);

    std::size_t rounds = 0, committed = 0, fallbacks = 0;
    for (int period = 0; period < 50; ++period) {
        sim.run(8);
        const auto &msgs = sim.service().lastStats().messages;
        ASSERT_EQ(msgs.spoTreesAttempted,
                  msgs.spoCommittedTrees + msgs.spoFallbackTrees)
            << "period " << period;
        rounds += msgs.spoRounds;
        committed += msgs.spoCommittedTrees;
        fallbacks += msgs.spoFallbackTrees;
    }
    EXPECT_FALSE(sim.anyBreakerTripped());
    EXPECT_EQ(sim.eventLog().count(core::EventKind::BreakerTripped), 0u);
    EXPECT_GT(rounds, 0u);
    EXPECT_GT(committed, 0u);
    // Every fallback the plane counted surfaced as a structured event.
    EXPECT_EQ(sim.eventLog().count(core::EventKind::SpoFallback),
              fallbacks);
}

TEST(NetClosedLoop, SpoAtSeventyPercentLossFallsBackIntoEventLog)
{
    // At 70% drop, SPO fallbacks are statistically certain over 50
    // periods. Each one must appear in the event log, named after the
    // tree that kept its first-pass budgets, with the phase code as the
    // value - and the first-pass safety story still holds: no trips.
    auto sim = config::makeSimulation(
        loadSpoWithTransport("{\"dropRate\": 0.7, \"seed\": 5}"), 1);

    std::size_t fallbacks = 0;
    for (int period = 0; period < 50; ++period) {
        sim.run(8);
        const auto &msgs = sim.service().lastStats().messages;
        ASSERT_EQ(msgs.spoTreesAttempted,
                  msgs.spoCommittedTrees + msgs.spoFallbackTrees)
            << "period " << period;
        fallbacks += msgs.spoFallbackTrees;
    }
    EXPECT_FALSE(sim.anyBreakerTripped());
    EXPECT_GT(fallbacks, 0u);

    const auto &log = sim.eventLog();
    EXPECT_EQ(log.count(core::EventKind::SpoFallback), fallbacks);
    for (const auto &e : log.events()) {
        if (e.kind != core::EventKind::SpoFallback)
            continue;
        EXPECT_TRUE(e.subject == "X" || e.subject == "Y")
            << "subject: " << e.subject;
        EXPECT_TRUE(e.value == 1.0 || e.value == 2.0)
            << "value: " << e.value;
    }
}
