/**
 * @file
 * Unit tests for the device module: the Fan et al. power curve, the
 * gamma throughput model (calibrated against the paper's measurements),
 * supply load splitting and failure, node-manager actuation dynamics,
 * sensors, and workload profiles.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <memory>

#include "device/node_manager.hh"
#include "device/sensor.hh"
#include "device/server.hh"
#include "device/workload.hh"
#include "util/random.hh"

namespace cd = capmaestro::dev;

namespace {

/** The paper's testbed server: idle 160 W, Pcap_min 270 W, Pcap_max 490 W. */
cd::ServerSpec
testbedSpec()
{
    cd::ServerSpec spec;
    spec.name = "testbed";
    spec.idle = 160.0;
    spec.capMin = 270.0;
    spec.capMax = 490.0;
    spec.gamma = 2.7;
    spec.supplies = {{0.5, 0.94}, {0.5, 0.94}};
    return spec;
}

/** Find the utilization whose demand equals @p target (bisection). */
double
utilizationForDemand(const cd::ServerModel &server, double target)
{
    double lo = 0.0, hi = 1.0;
    for (int i = 0; i < 60; ++i) {
        const double mid = 0.5 * (lo + hi);
        (server.demandAcAt(mid) < target ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace

TEST(ServerModel, PowerCurveEndpoints)
{
    cd::ServerModel server(testbedSpec());
    EXPECT_DOUBLE_EQ(server.demandAcAt(0.0), 160.0);
    EXPECT_DOUBLE_EQ(server.demandAcAt(1.0), 490.0);
}

TEST(ServerModel, PowerCurveMonotone)
{
    cd::ServerModel server(testbedSpec());
    double prev = server.demandAcAt(0.0);
    for (double u = 0.01; u <= 1.0; u += 0.01) {
        const double p = server.demandAcAt(u);
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST(ServerModel, UncappedRunsAtDemand)
{
    cd::ServerModel server(testbedSpec());
    server.setUtilization(0.7);
    EXPECT_DOUBLE_EQ(server.actualAc(), server.demandAc());
    EXPECT_DOUBLE_EQ(server.performance(), 1.0);
    EXPECT_DOUBLE_EQ(server.throttleLevel(), 0.0);
}

TEST(ServerModel, PaperThroughputCalibration)
{
    // Paper §6.2: a 420 W-demand server capped at 314 W (No Priority)
    // measured 18 % lower throughput; capped at 344 W (Local Priority),
    // 13 % lower. Our gamma = 2.7 model must reproduce both.
    cd::ServerModel server(testbedSpec());
    server.setUtilization(utilizationForDemand(server, 420.0));
    ASSERT_NEAR(server.demandAc(), 420.0, 0.01);

    server.setEnforcedCapAc(314.0);
    EXPECT_NEAR(server.normalizedThroughput(), 0.82, 0.01);

    server.setEnforcedCapAc(344.0);
    EXPECT_NEAR(server.normalizedThroughput(), 0.88, 0.015);

    server.setEnforcedCapAc(419.0);
    EXPECT_NEAR(server.normalizedThroughput(), 1.0, 0.005);
}

TEST(ServerModel, CapAboveDemandDoesNothing)
{
    cd::ServerModel server(testbedSpec());
    server.setUtilization(0.5);
    const double demand = server.demandAc();
    server.setEnforcedCapAc(demand + 100.0);
    EXPECT_DOUBLE_EQ(server.actualAc(), demand);
    EXPECT_DOUBLE_EQ(server.performance(), 1.0);
}

TEST(ServerModel, CapBelowFloorClampsToFloor)
{
    cd::ServerModel server(testbedSpec());
    server.setUtilization(1.0);
    server.setEnforcedCapAc(100.0); // below Pcap_min = 270
    EXPECT_NEAR(server.actualAc(), 270.0, 1e-9);
}

TEST(ServerModel, FloorScalesWithUtilization)
{
    cd::ServerModel server(testbedSpec());
    server.setUtilization(1.0);
    EXPECT_NEAR(server.floorAc(), 270.0, 1e-9);
    server.setUtilization(0.3);
    EXPECT_LT(server.floorAc(), 270.0);
    EXPECT_GT(server.floorAc(), 160.0);
}

TEST(ServerModel, IdleWorkloadCappingIsFree)
{
    cd::ServerModel server(testbedSpec());
    server.setUtilization(0.0);
    server.setEnforcedCapAc(200.0);
    EXPECT_DOUBLE_EQ(server.performance(), 1.0);
}

TEST(ServerModel, SupplySplitEven)
{
    cd::ServerModel server(testbedSpec());
    server.setUtilization(1.0);
    EXPECT_DOUBLE_EQ(server.supplyAc(0), 245.0);
    EXPECT_DOUBLE_EQ(server.supplyAc(1), 245.0);
}

TEST(ServerModel, SupplySplitMismatch)
{
    // §3.1: up to 65/35 split observed in practice.
    cd::ServerSpec spec = testbedSpec();
    spec.supplies = {{0.35, 0.94}, {0.65, 0.94}};
    cd::ServerModel server(spec);
    server.setUtilization(1.0);
    EXPECT_NEAR(server.supplyAc(0), 0.35 * 490.0, 1e-9);
    EXPECT_NEAR(server.supplyAc(1), 0.65 * 490.0, 1e-9);
}

TEST(ServerModel, SupplyFailureShiftsLoad)
{
    cd::ServerModel server(testbedSpec());
    server.setUtilization(1.0);
    server.setSupplyState(0, cd::SupplyState::Failed);
    EXPECT_EQ(server.workingSupplies(), 1u);
    EXPECT_DOUBLE_EQ(server.supplyAc(0), 0.0);
    EXPECT_DOUBLE_EQ(server.supplyAc(1), 490.0);
    EXPECT_DOUBLE_EQ(server.effectiveShare(1), 1.0);
}

TEST(ServerModel, DarkWhenAllSuppliesFail)
{
    cd::ServerModel server(testbedSpec());
    server.setUtilization(1.0);
    server.setSupplyState(0, cd::SupplyState::Failed);
    server.setSupplyState(1, cd::SupplyState::Failed);
    EXPECT_DOUBLE_EQ(server.actualAc(), 0.0);
    EXPECT_DOUBLE_EQ(server.performance(), 0.0);
    EXPECT_DOUBLE_EQ(server.supplyAc(0) + server.supplyAc(1), 0.0);
    // Power restored: back to normal.
    server.setSupplyState(0, cd::SupplyState::Ok);
    EXPECT_DOUBLE_EQ(server.actualAc(), 490.0);
}

TEST(ServerModel, HotSpareStandby)
{
    cd::ServerSpec spec = testbedSpec();
    spec.hotSpareEnabled = true;
    spec.standbyThreshold = 250.0;
    cd::ServerModel server(spec);

    server.setUtilization(0.05); // light load, below threshold
    EXPECT_EQ(server.workingSupplies(), 1u);
    const double total =
        server.supplyAc(0) + server.supplyAc(1);
    EXPECT_NEAR(total, server.actualAc(), 1e-9);

    server.setUtilization(1.0); // heavy load wakes the spare
    EXPECT_EQ(server.workingSupplies(), 2u);
}

TEST(ServerModel, BlendedEfficiency)
{
    cd::ServerSpec spec = testbedSpec();
    spec.supplies = {{0.5, 0.90}, {0.5, 0.98}};
    cd::ServerModel server(spec);
    EXPECT_NEAR(server.blendedEfficiency(), 0.94, 1e-9);
    server.setSupplyState(0, cd::SupplyState::Failed);
    EXPECT_NEAR(server.blendedEfficiency(), 0.98, 1e-9);
}

TEST(SupplySpec, EfficiencyCurveInterpolation)
{
    cd::SupplySpec s;
    s.ratedPower = 800.0;
    s.efficiencyAt20 = 0.88;
    s.efficiencyAt50 = 0.94;
    s.efficiencyAt100 = 0.90;
    // Below/at 20 % of rating: the 20 % point.
    EXPECT_DOUBLE_EQ(s.efficiencyAtLoad(0.0), 0.88);
    EXPECT_DOUBLE_EQ(s.efficiencyAtLoad(160.0), 0.88);
    // Midpoints interpolate linearly.
    EXPECT_NEAR(s.efficiencyAtLoad(280.0), 0.91, 1e-12);  // 35 % load
    EXPECT_DOUBLE_EQ(s.efficiencyAtLoad(400.0), 0.94);    // 50 %
    EXPECT_NEAR(s.efficiencyAtLoad(600.0), 0.92, 1e-12);  // 75 %
    EXPECT_DOUBLE_EQ(s.efficiencyAtLoad(800.0), 0.90);    // 100 %
    EXPECT_DOUBLE_EQ(s.efficiencyAtLoad(1000.0), 0.90);   // overload
}

TEST(SupplySpec, FlatWhenNoRating)
{
    cd::SupplySpec s;
    s.efficiency = 0.93;
    EXPECT_DOUBLE_EQ(s.efficiencyAtLoad(100.0), 0.93);
    EXPECT_DOUBLE_EQ(s.efficiencyAtLoad(700.0), 0.93);
}

TEST(ServerModel, CurvedEfficiencyVariesWithLoad)
{
    cd::ServerSpec spec = testbedSpec();
    for (auto &s : spec.supplies) {
        s.ratedPower = 400.0;
        s.efficiencyAt20 = 0.88;
        s.efficiencyAt50 = 0.94;
        s.efficiencyAt100 = 0.91;
    }
    cd::ServerModel server(spec);
    server.setUtilization(0.1); // light: supplies near 20 % of rating
    const double light = server.blendedEfficiency();
    server.setUtilization(0.5); // mid-load: near the 0.94 peak
    const double mid = server.blendedEfficiency();
    EXPECT_GT(mid, light);
}

TEST(ServerModelDeath, BadSpecRejected)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    cd::ServerSpec spec = testbedSpec();
    spec.capMin = 500.0; // above capMax
    EXPECT_EXIT(cd::ServerModel{spec}, testing::ExitedWithCode(1),
                "idle < capMin < capMax");

    spec = testbedSpec();
    spec.supplies = {{0.5, 0.94}, {0.3, 0.94}}; // shares sum to 0.8
    EXPECT_EXIT(cd::ServerModel{spec}, testing::ExitedWithCode(1),
                "shares sum");
}

TEST(NodeManager, SettlesWithinSixSeconds)
{
    cd::ServerModel server(testbedSpec());
    cd::NodeManager nm(server);
    server.setUtilization(1.0); // demand 490, DC = 460.6

    // Cap to 300 W DC; after 6 one-second steps the applied cap must be
    // within 5 % of the target (paper: cap enforced within 6 s).
    nm.setDcCap(300.0);
    for (int s = 0; s < 6; ++s)
        nm.step(1.0);
    EXPECT_NEAR(nm.appliedDcCap(), 300.0, 15.0);
    EXPECT_NEAR(server.actualDc(), 300.0, 15.0);
}

TEST(NodeManager, ExactAfterDeadband)
{
    cd::ServerModel server(testbedSpec());
    cd::NodeManager nm(server);
    server.setUtilization(1.0);
    nm.setDcCap(300.0);
    for (int s = 0; s < 20; ++s)
        nm.step(1.0);
    EXPECT_DOUBLE_EQ(nm.appliedDcCap(), 300.0);
}

TEST(NodeManager, ClearCapRestoresFullPower)
{
    cd::ServerModel server(testbedSpec());
    cd::NodeManager nm(server);
    server.setUtilization(1.0);
    nm.setDcCap(300.0);
    for (int s = 0; s < 20; ++s)
        nm.step(1.0);
    EXPECT_LT(server.actualAc(), 489.0);
    nm.clearCap();
    nm.step(1.0);
    EXPECT_DOUBLE_EQ(server.actualAc(), 490.0);
}

TEST(NodeManager, RaisingCapRestoresPerformance)
{
    cd::ServerModel server(testbedSpec());
    cd::NodeManager nm(server);
    server.setUtilization(1.0);
    nm.setDcCap(280.0);
    for (int s = 0; s < 20; ++s)
        nm.step(1.0);
    const double throttled = server.performance();
    nm.setDcCap(450.0);
    for (int s = 0; s < 20; ++s)
        nm.step(1.0);
    EXPECT_GT(server.performance(), throttled);
}

TEST(Sensor, TrueReadingMatchesModel)
{
    cd::ServerModel server(testbedSpec());
    cd::NodeManager nm(server);
    cd::SensorEmulator sensors(server, nm, capmaestro::util::Rng(1));
    server.setUtilization(1.0);
    const auto r = sensors.readTrue();
    EXPECT_DOUBLE_EQ(r.totalAc, 490.0);
    EXPECT_DOUBLE_EQ(r.supplyAc[0], 245.0);
    EXPECT_DOUBLE_EQ(r.throttleLevel, 0.0);
}

TEST(Sensor, NoisyReadingNearTruth)
{
    cd::ServerModel server(testbedSpec());
    cd::NodeManager nm(server);
    cd::SensorConfig cfg;
    cfg.powerNoiseStddev = 2.0;
    cd::SensorEmulator sensors(server, nm, capmaestro::util::Rng(1), cfg);
    server.setUtilization(1.0);
    double sum = 0.0;
    for (int i = 0; i < 200; ++i)
        sum += sensors.read().totalAc;
    EXPECT_NEAR(sum / 200.0, 490.0, 2.0);
}

TEST(Sensor, DeterministicForSeed)
{
    cd::ServerModel server(testbedSpec());
    cd::NodeManager nm(server);
    server.setUtilization(0.6);
    cd::SensorEmulator a(server, nm, capmaestro::util::Rng(9));
    cd::SensorEmulator b(server, nm, capmaestro::util::Rng(9));
    for (int i = 0; i < 20; ++i)
        EXPECT_DOUBLE_EQ(a.read().totalAc, b.read().totalAc);
}

TEST(Workload, Constant)
{
    cd::ConstantWorkload w(0.4);
    EXPECT_DOUBLE_EQ(w.utilizationAt(0), 0.4);
    EXPECT_DOUBLE_EQ(w.utilizationAt(1000), 0.4);
}

TEST(Workload, Steps)
{
    cd::StepWorkload w({{0, 0.2}, {30, 0.8}, {110, 0.5}});
    EXPECT_DOUBLE_EQ(w.utilizationAt(0), 0.2);
    EXPECT_DOUBLE_EQ(w.utilizationAt(29), 0.2);
    EXPECT_DOUBLE_EQ(w.utilizationAt(30), 0.8);
    EXPECT_DOUBLE_EQ(w.utilizationAt(109), 0.8);
    EXPECT_DOUBLE_EQ(w.utilizationAt(500), 0.5);
}

TEST(Workload, SineBounded)
{
    cd::SineWorkload w(0.5, 0.9, 100); // amplitude overshoots: must clamp
    for (capmaestro::Seconds t = 0; t < 200; ++t) {
        const double u = w.utilizationAt(t);
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
}

TEST(Workload, RandomWalkStableWithinSecond)
{
    cd::RandomWalkWorkload w(0.5, 0.05, capmaestro::util::Rng(4));
    const double u10a = w.utilizationAt(10);
    const double u10b = w.utilizationAt(10);
    EXPECT_DOUBLE_EQ(u10a, u10b);
    for (capmaestro::Seconds t = 0; t < 500; t += 7) {
        const double u = w.utilizationAt(t);
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
}

TEST(Workload, TraceInterpolatesAndLoops)
{
    cd::TraceWorkload w({0.2, 0.8, 0.4}, /*sample_period=*/10);
    EXPECT_DOUBLE_EQ(w.utilizationAt(0), 0.2);
    EXPECT_DOUBLE_EQ(w.utilizationAt(10), 0.8);
    EXPECT_NEAR(w.utilizationAt(5), 0.5, 1e-12);  // midway 0.2 -> 0.8
    EXPECT_NEAR(w.utilizationAt(15), 0.6, 1e-12); // midway 0.8 -> 0.4
    // Wraps back toward the first sample, then repeats.
    EXPECT_NEAR(w.utilizationAt(25), 0.3, 1e-12); // midway 0.4 -> 0.2
    EXPECT_DOUBLE_EQ(w.utilizationAt(30), 0.2);
    EXPECT_DOUBLE_EQ(w.utilizationAt(40), 0.8);
}

TEST(Workload, TraceClampsSamples)
{
    cd::TraceWorkload w({-0.5, 1.5}, 10);
    EXPECT_DOUBLE_EQ(w.utilizationAt(0), 0.0);
    EXPECT_DOUBLE_EQ(w.utilizationAt(10), 1.0);
}

TEST(Workload, TraceFileParsing)
{
    const std::string path = testing::TempDir() + "/trace_test.txt";
    {
        std::ofstream out(path);
        out << "# a comment\n0.25\n  0.75\n\n0.5\n";
    }
    const auto samples = cd::TraceWorkload::loadTraceFile(path);
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_DOUBLE_EQ(samples[0], 0.25);
    EXPECT_DOUBLE_EQ(samples[1], 0.75);
    EXPECT_DOUBLE_EQ(samples[2], 0.5);
}

TEST(Workload, NoisyWrapsInner)
{
    auto inner = std::make_unique<cd::ConstantWorkload>(0.5);
    cd::NoisyWorkload w(std::move(inner), 0.05,
                        capmaestro::util::Rng(5));
    double sum = 0.0;
    for (capmaestro::Seconds t = 0; t < 400; ++t)
        sum += w.utilizationAt(t);
    EXPECT_NEAR(sum / 400.0, 0.5, 0.02);
}
