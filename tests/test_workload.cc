/**
 * @file
 * The workload traffic layer: deterministic arrivals, placement
 * policies, SLO accounting, and the closed-loop priority path — per-job
 * priorities flowing through server-priority inheritance into the
 * capping plane, demonstrated by strict per-class slowdown ordering
 * under a tight budget and by inversion detection when inheritance is
 * off. The Sim/UDP equivalence test binds real loopback sockets; set
 * CAPMAESTRO_NO_NET=1 to skip it.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>
#include <string>

#include "config/loader.hh"
#include "sim/scenario.hh"
#include "util/json.hh"
#include "workload/engine.hh"

using namespace capmaestro;

namespace {

#define SKIP_WITHOUT_NET()                                            \
    do {                                                              \
        if (std::getenv("CAPMAESTRO_NO_NET") != nullptr)              \
            GTEST_SKIP() << "CAPMAESTRO_NO_NET is set";               \
    } while (0)

workload::TenantSpec
tenant(const std::string &name, Priority priority, Fraction demand,
       Seconds duration)
{
    workload::TenantSpec t;
    t.name = name;
    t.priority = priority;
    t.cpuDemand = demand;
    t.meanDuration = duration;
    t.durationSpread = 0.0;
    return t;
}

/** Two-class params with a clean (no-jitter) background. */
workload::Params
twoClassParams(double rate, workload::PriorityMode mode)
{
    workload::Params params;
    params.seed = 7;
    params.arrivalRate = rate;
    params.diurnalAmplitude = 0.0;
    params.policy = workload::PlacementPolicy::LoadBalanced;
    params.priorityMode = mode;
    params.backgroundUtilization = 0.0;
    params.backgroundJitter = 0.0;
    params.tenants = {tenant("lo", 0, 0.9, 40),
                      tenant("hi", 1, 0.9, 40)};
    return params;
}

} // namespace

// --- traffic ---------------------------------------------------------

TEST(DiurnalCurve, SineShapeAndClamp)
{
    const workload::DiurnalCurve curve(86400, 0.3);
    EXPECT_NEAR(curve.factor(0), 1.0, 1e-12);
    EXPECT_NEAR(curve.factor(86400 / 4), 1.3, 1e-9);
    EXPECT_NEAR(curve.factor(3 * 86400 / 4), 0.7, 1e-9);
    // Amplitude above 1 clamps the trough at zero instead of going
    // negative.
    const workload::DiurnalCurve deep(86400, 2.0);
    EXPECT_DOUBLE_EQ(deep.factor(3 * 86400 / 4), 0.0);
}

TEST(ArrivalProcess, SameSeedSameSchedule)
{
    workload::FlashCrowdParams flash;
    flash.startChance = 0.01;
    auto make = [&] {
        return workload::ArrivalProcess(
            2.0, workload::DiurnalCurve(3600, 0.5), flash, util::Rng(42));
    };
    auto a = make();
    auto b = make();
    for (Seconds t = 0; t < 2000; ++t)
        ASSERT_EQ(a.arrivalsAt(t), b.arrivalsAt(t)) << "t=" << t;
}

TEST(ArrivalProcess, FlashCrowdMultipliesRate)
{
    workload::FlashCrowdParams flash;
    flash.startChance = 0.5; // starts quickly
    flash.duration = 10;
    flash.multiplier = 4.0;
    workload::ArrivalProcess proc(1.0, workload::DiurnalCurve(86400, 0.0),
                                  flash, util::Rng(1));
    bool saw_crowd = false;
    for (Seconds t = 0; t < 50; ++t) {
        proc.arrivalsAt(t);
        if (proc.inFlashCrowd()) {
            saw_crowd = true;
            EXPECT_DOUBLE_EQ(proc.currentRate(), 4.0);
        } else {
            EXPECT_DOUBLE_EQ(proc.currentRate(), 1.0);
        }
    }
    EXPECT_TRUE(saw_crowd);
}

// --- placement -------------------------------------------------------

namespace {

workload::ServerLoadView
view(Fraction load, Watts actual, Watts cap_max, Fraction throttle,
     int phase)
{
    return {load, actual, cap_max, throttle, phase};
}

} // namespace

TEST(Placement, FirstFitTakesLowestIndexWithRoom)
{
    const std::vector<workload::ServerLoadView> servers{
        view(0.9, 0, 490, 0, 0), view(0.3, 0, 490, 0, 0),
        view(0.0, 0, 490, 0, 0)};
    const auto chosen = workload::chooseServer(
        0.5, servers, workload::PlacementPolicy::FirstFit, 1);
    ASSERT_TRUE(chosen.has_value());
    EXPECT_EQ(*chosen, 1u);
}

TEST(Placement, LoadBalancedTakesLeastLoaded)
{
    const std::vector<workload::ServerLoadView> servers{
        view(0.5, 0, 490, 0, 0), view(0.2, 0, 490, 0, 0),
        view(0.4, 0, 490, 0, 0)};
    const auto chosen = workload::chooseServer(
        0.5, servers, workload::PlacementPolicy::LoadBalanced, 1);
    ASSERT_TRUE(chosen.has_value());
    EXPECT_EQ(*chosen, 1u);
}

TEST(Placement, PowerHeadroomPrefersUnthrottledHeadroom)
{
    // Server 0 has more raw watts free but is half throttled; server 1
    // wins on discounted headroom: 0.5*(490-400)=45 < 1.0*(490-430)=60.
    const std::vector<workload::ServerLoadView> servers{
        view(0.1, 400, 490, 0.5, 0), view(0.1, 430, 490, 0.0, 0)};
    const auto chosen = workload::chooseServer(
        0.2, servers, workload::PlacementPolicy::PowerHeadroom, 1);
    ASSERT_TRUE(chosen.has_value());
    EXPECT_EQ(*chosen, 1u);
}

TEST(Placement, PhaseAwareBalancesPhases)
{
    // Phase 0 carries 1.2 of demand, phase 1 only 0.1: the lightest
    // phase wins even though phase 0 also has a server with room.
    const std::vector<workload::ServerLoadView> servers{
        view(0.8, 0, 490, 0, 0), view(0.4, 0, 490, 0, 0),
        view(0.1, 0, 490, 0, 1), view(0.0, 0, 490, 0, 1)};
    const auto chosen = workload::chooseServer(
        0.3, servers, workload::PlacementPolicy::PhaseAware, 2);
    ASSERT_TRUE(chosen.has_value());
    EXPECT_EQ(*chosen, 3u); // least-loaded server of the light phase
}

TEST(Placement, ReturnsNulloptWhenNoCapacity)
{
    const std::vector<workload::ServerLoadView> servers{
        view(0.9, 0, 490, 0, 0), view(0.8, 0, 490, 0, 0)};
    for (const auto policy : workload::allPlacementPolicies()) {
        EXPECT_FALSE(
            workload::chooseServer(0.5, servers, policy, 1).has_value())
            << workload::placementPolicyName(policy);
    }
}

TEST(Placement, PolicyNamesRoundTrip)
{
    for (const auto policy : workload::allPlacementPolicies()) {
        EXPECT_EQ(workload::placementPolicyFromString(
                      workload::placementPolicyName(policy)),
                  policy);
    }
}

// --- SLO accounting --------------------------------------------------

TEST(SloAccounting, SlowdownOfHandlesInstantJobs)
{
    using workload::SloAccounting;
    // Ideal 0 (instant job): defined, and exactly 1.0 when it finishes
    // the second it arrives.
    EXPECT_DOUBLE_EQ(SloAccounting::slowdownOf(10, 10, 0), 1.0);
    // Ideal 1 finishing the same second: also 1.0 (response is one
    // whole tick).
    EXPECT_DOUBLE_EQ(SloAccounting::slowdownOf(10, 10, 1), 1.0);
    // A 10 s job taking 20 wall seconds: slowdown 2.
    EXPECT_DOUBLE_EQ(SloAccounting::slowdownOf(0, 19, 10), 2.0);
}

TEST(SloAccounting, PerClassCountsAndInversions)
{
    workload::SloAccounting slo;
    slo.noteArrival(0);
    slo.noteArrival(0);
    slo.noteArrival(1);

    workload::JobRecord rec;
    rec.priority = 0;
    rec.arrival = 0;
    rec.completion = 9;
    rec.ideal = 10;
    rec.slowdown = 1.0;
    slo.noteCompletion(rec, 2.0);

    rec.priority = 0;
    rec.slowdown = 3.0; // misses the 2.0 SLO
    slo.noteCompletion(rec, 2.0);

    rec.priority = 1;
    rec.dropped = true;
    slo.noteDrop(rec);

    slo.notePeriod(false);
    slo.notePeriod(true);

    const auto report = slo.report(100);
    EXPECT_EQ(report.arrived, 3u);
    EXPECT_EQ(report.completed, 2u);
    EXPECT_EQ(report.dropped, 1u);
    EXPECT_EQ(report.periods, 2u);
    EXPECT_EQ(report.inversionPeriods, 1u);
    ASSERT_EQ(report.classes.size(), 2u);
    const auto *lo = report.byPriority(0);
    ASSERT_NE(lo, nullptr);
    EXPECT_EQ(lo->completed, 2u);
    EXPECT_EQ(lo->sloMet, 1u);
    EXPECT_DOUBLE_EQ(lo->meanSlowdown, 2.0);
    EXPECT_DOUBLE_EQ(lo->throughput, 0.02);
    const auto *hi = report.byPriority(1);
    ASSERT_NE(hi, nullptr);
    EXPECT_EQ(hi->dropped, 1u);
    EXPECT_EQ(hi->completed, 0u);
}

// --- engine determinism ----------------------------------------------

namespace {

/** Run a 4-server contention rig with the given params. */
std::pair<std::vector<workload::JobRecord>, workload::SloReport>
runContention(const workload::Params &params, Watts budget,
              Seconds duration)
{
    auto rig = sim::makeContentionRig({0, 0, 0, 0}, budget);
    rig.attachTraffic(
        std::make_unique<workload::WorkloadEngine>(params));
    rig.run(duration);
    auto *engine =
        dynamic_cast<workload::WorkloadEngine *>(rig.traffic());
    return {engine->trace(), engine->report(duration)};
}

} // namespace

TEST(WorkloadEngine, SameSeedBitIdenticalTraceAndReport)
{
    const auto params =
        twoClassParams(0.06, workload::PriorityMode::Max);
    const auto [trace_a, report_a] = runContention(params, 1400.0, 600);
    const auto [trace_b, report_b] = runContention(params, 1400.0, 600);
    ASSERT_GT(trace_a.size(), 10u);
    EXPECT_EQ(trace_a, trace_b);
    EXPECT_EQ(report_a, report_b);
}

TEST(WorkloadEngine, DifferentSeedDifferentTrace)
{
    auto params = twoClassParams(0.06, workload::PriorityMode::Max);
    const auto [trace_a, report_a] = runContention(params, 1400.0, 600);
    params.seed = 8;
    const auto [trace_b, report_b] = runContention(params, 1400.0, 600);
    EXPECT_NE(trace_a, trace_b);
}

TEST(WorkloadEngine, JobsDriveUtilizationAndComplete)
{
    const auto params =
        twoClassParams(0.06, workload::PriorityMode::Max);
    // Generous budget: nothing throttles, so every completed job has
    // slowdown ~1 (modulo queueing) and meets its SLO.
    const auto [trace, report] = runContention(params, 4000.0, 600);
    EXPECT_GT(report.completed, 20u);
    EXPECT_EQ(report.inversionPeriods, 0u);
    for (const auto &cls : report.classes) {
        EXPECT_GE(cls.p99Slowdown, 1.0);
        EXPECT_EQ(cls.sloMet, cls.completed);
    }
}

// --- closed-loop priority path ---------------------------------------

TEST(WorkloadClosedLoop, TightBudgetPreservesPriorityOrdering)
{
    // Four equal servers, tight fleet budget: the allocator must fund
    // servers hosting priority-1 jobs first (via Max inheritance), so
    // the high class's tail slowdown stays strictly below the low
    // class's.
    const auto params =
        twoClassParams(0.06, workload::PriorityMode::Max);
    const auto [trace, report] = runContention(params, 1350.0, 1200);
    const auto *lo = report.byPriority(0);
    const auto *hi = report.byPriority(1);
    ASSERT_NE(lo, nullptr);
    ASSERT_NE(hi, nullptr);
    ASSERT_GT(lo->completed, 10u);
    ASSERT_GT(hi->completed, 10u);
    EXPECT_LT(hi->p99Slowdown, lo->p99Slowdown);
    EXPECT_LT(hi->meanSlowdown, lo->meanSlowdown);
}

TEST(WorkloadClosedLoop, InversionDetectedWhenInheritanceOff)
{
    // Two servers with *misleading* static priorities: server 1 is
    // marked high although jobs of either class land on both. With
    // inheritance off the allocator keeps funding server 1 regardless
    // of what runs there, so the SLO metrics must catch inverted
    // periods; with Max inheritance the budgets follow the jobs and
    // inversions (nearly) vanish.
    auto make = [](workload::PriorityMode mode) {
        workload::Params params;
        params.seed = 11;
        params.arrivalRate = 0.08;
        params.diurnalAmplitude = 0.0;
        params.policy = workload::PlacementPolicy::FirstFit;
        params.priorityMode = mode;
        params.backgroundUtilization = 0.0;
        params.backgroundJitter = 0.0;
        params.tenants = {tenant("lo", 0, 0.95, 50),
                          tenant("hi", 1, 0.95, 50)};
        return params;
    };
    auto run = [&](workload::PriorityMode mode) {
        auto rig = sim::makeContentionRig({0, 1}, 700.0);
        rig.attachTraffic(
            std::make_unique<workload::WorkloadEngine>(make(mode)));
        rig.run(1200);
        auto *engine =
            dynamic_cast<workload::WorkloadEngine *>(rig.traffic());
        return engine->report(1200);
    };

    const auto off = run(workload::PriorityMode::Off);
    const auto max = run(workload::PriorityMode::Max);

    EXPECT_GT(off.inversionPeriods, 0u);
    EXPECT_LT(max.inversionPeriods * 2, off.inversionPeriods);

    // Inheritance restores the ordering the static assignment broke.
    const auto *max_lo = max.byPriority(0);
    const auto *max_hi = max.byPriority(1);
    ASSERT_NE(max_lo, nullptr);
    ASSERT_NE(max_hi, nullptr);
    EXPECT_LT(max_hi->p99Slowdown, max_lo->p99Slowdown);

    // And the high class is strictly better off than under the
    // misleading static assignment.
    const auto *off_hi = off.byPriority(1);
    ASSERT_NE(off_hi, nullptr);
    EXPECT_LT(max_hi->p99Slowdown, off_hi->p99Slowdown);
}

// --- config plumbing -------------------------------------------------

TEST(WorkloadConfig, ParamsRoundTripThroughJson)
{
    workload::Params params;
    params.seed = 99;
    params.arrivalRate = 1.5;
    params.diurnalPeriod = 7200;
    params.diurnalAmplitude = 0.4;
    params.flash.startChance = 0.002;
    params.flash.duration = 45;
    params.flash.multiplier = 3.0;
    params.policy = workload::PlacementPolicy::PowerHeadroom;
    params.priorityMode = workload::PriorityMode::Weighted;
    params.queueTimeout = 60;
    params.backgroundUtilization = 0.25;
    params.backgroundJitter = 0.1;
    params.phaseCount = 3;
    params.tenants = {tenant("batch", 0, 0.3, 100),
                      tenant("online", 2, 0.1, 10)};

    const auto json = config::workloadParamsToJson(params);
    const auto parsed = config::workloadParamsFromJson(json);

    EXPECT_EQ(parsed.seed, params.seed);
    EXPECT_DOUBLE_EQ(parsed.arrivalRate, params.arrivalRate);
    EXPECT_EQ(parsed.diurnalPeriod, params.diurnalPeriod);
    EXPECT_DOUBLE_EQ(parsed.diurnalAmplitude, params.diurnalAmplitude);
    EXPECT_DOUBLE_EQ(parsed.flash.startChance, params.flash.startChance);
    EXPECT_EQ(parsed.flash.duration, params.flash.duration);
    EXPECT_DOUBLE_EQ(parsed.flash.multiplier, params.flash.multiplier);
    EXPECT_EQ(parsed.policy, params.policy);
    EXPECT_EQ(parsed.priorityMode, params.priorityMode);
    EXPECT_EQ(parsed.queueTimeout, params.queueTimeout);
    EXPECT_DOUBLE_EQ(parsed.backgroundUtilization,
                     params.backgroundUtilization);
    EXPECT_DOUBLE_EQ(parsed.backgroundJitter, params.backgroundJitter);
    EXPECT_EQ(parsed.phaseCount, params.phaseCount);
    ASSERT_EQ(parsed.tenants.size(), 2u);
    EXPECT_EQ(parsed.tenants[0].name, "batch");
    EXPECT_EQ(parsed.tenants[1].priority, 2);
    EXPECT_DOUBLE_EQ(parsed.tenants[1].cpuDemand, 0.1);
}

namespace {

const char *kSmallScenario = R"({
  "trees": [
    { "feed": 0, "phase": 0, "name": "feed",
      "root": { "kind": "breaker", "name": "topCB", "rating": 1960,
                "children": [
                  { "kind": "supply", "server": 0 },
                  { "kind": "supply", "server": 1 } ] } }
  ],
  "servers": [
    { "name": "S0", "supplies": [ { "share": 1.0 } ],
      "workload": { "type": "constant", "utilization": 0.7 } },
    { "name": "S1", "supplies": [ { "share": 1.0 } ],
      "workload": { "type": "constant", "utilization": 0.8 } }
  ],
  "service": { "policy": "global", "spo": false },
  "budgets": { "perTree": [800] }
})";

/** Insert a workload block (or nothing) into kSmallScenario. */
std::string
scenarioWith(const std::string &workload_block)
{
    std::string text = kSmallScenario;
    if (!workload_block.empty()) {
        const auto pos = text.rfind('}');
        text.insert(pos, ",\n  \"workload\": " + workload_block + "\n");
    }
    return text;
}

} // namespace

TEST(WorkloadConfig, DisabledBlockIsBitIdenticalToNoBlock)
{
    auto run = [](const std::string &text) {
        auto scenario = config::loadScenario(util::parseJson(text));
        auto simulation = config::makeSimulation(std::move(scenario), 1);
        simulation.run(100);
        return simulation;
    };
    auto plain = run(scenarioWith(""));
    auto disabled = run(scenarioWith("{ \"enabled\": false }"));
    EXPECT_EQ(plain.traffic(), nullptr);
    EXPECT_EQ(disabled.traffic(), nullptr);

    const auto &a = plain.recorder();
    const auto &b = disabled.recorder();
    ASSERT_EQ(a.names(), b.names());
    for (const auto &name : a.names()) {
        const auto &sa = a.series(name);
        const auto &sb = b.series(name);
        ASSERT_EQ(sa.size(), sb.size()) << name;
        for (std::size_t i = 0; i < sa.size(); ++i) {
            ASSERT_EQ(std::bit_cast<std::uint64_t>(sa[i].value),
                      std::bit_cast<std::uint64_t>(sb[i].value))
                << name << "[" << i << "]";
        }
    }
}

TEST(WorkloadConfig, EnabledBlockAttachesEngine)
{
    const auto text = scenarioWith(
        R"({ "enabled": true, "arrivalRate": 0.2, "seed": 3,
             "backgroundUtilization": 0.1, "backgroundJitter": 0,
             "tenants": [ { "name": "t", "cpuDemand": 0.5,
                            "meanDurationSeconds": 20,
                            "durationSpread": 0 } ] })");
    auto scenario = config::loadScenario(util::parseJson(text));
    ASSERT_TRUE(scenario.workload.has_value());
    auto simulation = config::makeSimulation(std::move(scenario), 1);
    auto *engine =
        dynamic_cast<workload::WorkloadEngine *>(simulation.traffic());
    ASSERT_NE(engine, nullptr);
    simulation.run(200);
    EXPECT_GT(engine->report(200).completed, 5u);
}

// --- transport-backend equivalence -----------------------------------

namespace {

/** Same rig, driven over a chosen transport backend. The lossless
 *  loopback exchange must not perturb the job trace by one bit. */
std::pair<std::vector<workload::JobRecord>, workload::SloReport>
runBackend(const std::string &backend, Seconds duration)
{
    const auto text = scenarioWith(
        R"({ "enabled": true, "arrivalRate": 0.15, "seed": 5,
             "backgroundUtilization": 0.2, "backgroundJitter": 0.02,
             "priorityMode": "max",
             "tenants": [
               { "name": "lo", "priority": 0, "cpuDemand": 0.6,
                 "meanDurationSeconds": 25, "durationSpread": 0.4 },
               { "name": "hi", "priority": 1, "cpuDemand": 0.4,
                 "meanDurationSeconds": 12, "durationSpread": 0.4 } ] })");
    auto scenario = config::loadScenario(util::parseJson(text));
    config::applyTransportJson(
        scenario.service,
        util::parseJson("{\"backend\":\"" + backend
                        + "\",\"gatherDeadlineMs\":40,"
                          "\"budgetDeadlineMs\":40,"
                          "\"retryTimeoutMs\":10}"));
    auto simulation = config::makeSimulation(std::move(scenario), 1);
    simulation.run(duration);
    auto *engine =
        dynamic_cast<workload::WorkloadEngine *>(simulation.traffic());
    return {engine->trace(), engine->report(duration)};
}

} // namespace

TEST(WorkloadClosedLoop, JobTraceBitIdenticalAcrossSimAndUdpBackends)
{
    SKIP_WITHOUT_NET();
    const Seconds duration = 48;
    const auto [sim_trace, sim_report] = runBackend("sim", duration);
    const auto [udp_trace, udp_report] = runBackend("udp", duration);
    ASSERT_GT(sim_trace.size(), 0u);
    EXPECT_EQ(sim_trace, udp_trace);
    EXPECT_EQ(sim_report, udp_report);
}
