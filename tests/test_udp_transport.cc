/**
 * @file
 * Tests for the real-socket transport backend (net/udp_transport):
 * loopback delivery, receive-buffer draining, the hard frame-size cap
 * on both sides of the socket, ephemeral-port plumbing, and the
 * bytesDelivered accounting shared with the sim backend.
 *
 * Every test binds 127.0.0.1 sockets; set CAPMAESTRO_NO_NET=1 to skip
 * the suite on machines where that is not allowed.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>

#include "net/udp_transport.hh"
#include "net/wire.hh"
#include "telemetry/registry.hh"

using namespace capmaestro;

namespace {

#define SKIP_WITHOUT_NET()                                            \
    do {                                                              \
        if (std::getenv("CAPMAESTRO_NO_NET") != nullptr)              \
            GTEST_SKIP() << "CAPMAESTRO_NO_NET is set";               \
    } while (0)

/** Poll until at least @p count frames arrive or ~1 s passes. */
std::vector<std::vector<std::uint8_t>>
pollFor(net::UdpTransport &tp, net::Transport::Endpoint ep,
        std::size_t count)
{
    std::vector<std::vector<std::uint8_t>> got;
    for (int spins = 0; spins < 500 && got.size() < count; ++spins) {
        for (auto &frame : tp.poll(ep))
            got.push_back(std::move(frame));
        if (got.size() < count)
            tp.advanceBy(2.0);
    }
    return got;
}

} // namespace

TEST(UdpTransport, LoopbackRoundTripDeliversIntactFrames)
{
    SKIP_WITHOUT_NET();
    net::UdpTransport tp(net::UdpConfig::loopback(3));

    const auto heartbeat = net::encodeHeartbeat({7, 42, 1});
    net::BudgetMsg msg;
    msg.tree = 1;
    msg.edgeNode = 5;
    msg.budget = 612.5;
    const auto budget = net::encodeBudget({net::kRoomSender, 42, 2}, msg);

    tp.send(0, 2, heartbeat);
    tp.send(2, 0, budget);

    const auto at_room = pollFor(tp, 2, 1);
    ASSERT_EQ(at_room.size(), 1u);
    EXPECT_EQ(at_room[0], heartbeat);

    const auto at_rack = pollFor(tp, 0, 1);
    ASSERT_EQ(at_rack.size(), 1u);
    EXPECT_EQ(at_rack[0], budget);
    const auto frame = net::decodeFrame(at_rack[0]);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->budget.budget, 612.5);
}

TEST(UdpTransport, PollDrainsBurstsCompletely)
{
    SKIP_WITHOUT_NET();
    net::UdpTransport tp(net::UdpConfig::loopback(2));

    constexpr std::size_t kBurst = 64;
    for (std::uint32_t i = 0; i < kBurst; ++i)
        tp.send(0, 1, net::encodeHeartbeat({0, 1, i}));

    const auto got = pollFor(tp, 1, kBurst);
    EXPECT_EQ(got.size(), kBurst);
    EXPECT_EQ(tp.stats().framesDelivered, kBurst);
}

TEST(UdpTransport, OversizedSendIsDroppedNotSent)
{
    SKIP_WITHOUT_NET();
    net::UdpTransport tp(net::UdpConfig::loopback(2));

    std::vector<std::uint8_t> giant(net::kMaxFrameBytes + 1, 0xAB);
    tp.send(0, 1, giant);
    EXPECT_EQ(tp.stats().framesDropped, 1u);
    EXPECT_EQ(tp.poll(1).size(), 0u);

    // At exactly the cap the frame goes through.
    std::vector<std::uint8_t> at_cap(net::kMaxFrameBytes, 0xCD);
    tp.send(0, 1, at_cap);
    const auto got = pollFor(tp, 1, 1);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].size(), net::kMaxFrameBytes);
}

TEST(UdpTransport, SendToUnknownOrUnresolvedPeerIsCountedDropped)
{
    SKIP_WITHOUT_NET();
    net::UdpConfig config = net::UdpConfig::loopback(2);
    config.peers[9] = net::UdpPeer{"127.0.0.1", 0}; // port never set
    net::UdpTransport tp(std::move(config));

    tp.send(0, 7, net::encodeHeartbeat({0, 1, 0})); // not in the table
    tp.send(0, 9, net::encodeHeartbeat({0, 1, 1})); // port 0
    EXPECT_EQ(tp.stats().framesDropped, 2u);
    EXPECT_EQ(tp.stats().framesDelivered, 0u);
}

TEST(UdpTransport, EphemeralPortsResolveAndRewireAcrossTransports)
{
    SKIP_WITHOUT_NET();
    // Two separate transports, as in two worker processes: each binds
    // its own endpoint on port 0, then learns the other's real port.
    net::UdpConfig ca;
    ca.peers[0] = net::UdpPeer{"127.0.0.1", 0};
    ca.peers[1] = net::UdpPeer{"127.0.0.1", 0};
    ca.local = {0};
    net::UdpConfig cb = ca;
    cb.local = {1};
    net::UdpTransport a(std::move(ca));
    net::UdpTransport b(std::move(cb));
    ASSERT_NE(a.boundPort(0), 0);
    ASSERT_NE(b.boundPort(1), 0);
    a.setPeer(1, net::UdpPeer{"127.0.0.1", b.boundPort(1)});
    b.setPeer(0, net::UdpPeer{"127.0.0.1", a.boundPort(0)});

    const auto frame = net::encodeHeartbeat({0, 3, 9});
    a.send(0, 1, frame);
    const auto got = pollFor(b, 1, 1);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], frame);
}

TEST(UdpTransport, MonotonicClockAdvances)
{
    SKIP_WITHOUT_NET();
    net::UdpTransport tp(net::UdpConfig::loopback(1));
    const double before = tp.nowMs();
    tp.advanceBy(15.0);
    EXPECT_GE(tp.nowMs(), before + 14.0);
    const double target = tp.nowMs() + 10.0;
    tp.advanceTo(target);
    EXPECT_GE(tp.nowMs(), target - 0.5);
    tp.advanceTo(0.0); // already past: returns immediately
}

TEST(UdpTransport, BytesDeliveredAccountingMatchesPayloads)
{
    SKIP_WITHOUT_NET();
    net::UdpTransport tp(net::UdpConfig::loopback(2));
    telemetry::Registry registry;
    tp.setTelemetry(&registry);

    std::vector<std::vector<std::uint8_t>> frames;
    frames.push_back(net::encodeHeartbeat({0, 1, 0}));
    net::MetricsMsg msg;
    msg.tree = 0;
    msg.edgeNode = 3;
    msg.metrics.accumulate(1, 250.0, 400.0, 410.0);
    frames.push_back(net::encodeMetrics({0, 1, 1}, msg));
    const std::size_t total = std::accumulate(
        frames.begin(), frames.end(), std::size_t{0},
        [](std::size_t n, const auto &f) { return n + f.size(); });

    for (const auto &frame : frames)
        tp.send(0, 1, frame);
    const auto got = pollFor(tp, 1, frames.size());
    ASSERT_EQ(got.size(), frames.size());

    EXPECT_EQ(tp.stats().bytesSent, total);
    EXPECT_EQ(tp.stats().bytesDelivered, total);
    const std::string prom = registry.renderPrometheus();
    EXPECT_NE(
        prom.find("capmaestro_transport_bytes_delivered_total"),
        std::string::npos);
}

TEST(SimTransportParity, BytesDeliveredMatchesUdpSemantics)
{
    // The sim backend reports the same statistic with the same
    // meaning: payload bytes handed to poll() callers. (No sockets —
    // runs even under CAPMAESTRO_NO_NET.)
    net::SimTransport tp;
    const auto frame = net::encodeHeartbeat({0, 1, 0});
    tp.send(0, 1, frame);
    tp.send(0, 1, frame);
    tp.advanceBy(1.0);
    const auto got = tp.poll(1);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(tp.stats().bytesDelivered, 2 * frame.size());
    EXPECT_EQ(tp.stats().bytesDelivered, tp.stats().bytesSent);
}
