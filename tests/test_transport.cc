/**
 * @file
 * Tests for the SimTransport (net/transport): lossless FIFO behavior
 * with the default config, latency gating on the clock, deterministic
 * fault streams per seed, and drop/duplication statistics.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/transport.hh"

using namespace capmaestro;
using net::SimTransport;
using net::TransportConfig;

namespace {

std::vector<std::uint8_t>
frame(std::uint8_t tag)
{
    return {tag, 0xCA, 0x9E};
}

} // namespace

TEST(Transport, DefaultConfigIsLosslessInstantFifo)
{
    SimTransport tp;
    for (std::uint8_t i = 0; i < 50; ++i)
        tp.send(0, 1, frame(i));

    const auto got = tp.poll(1);
    ASSERT_EQ(got.size(), 50u);
    for (std::uint8_t i = 0; i < 50; ++i)
        EXPECT_EQ(got[i][0], i) << "out of order at " << int(i);
    EXPECT_EQ(tp.inFlight(), 0u);
    EXPECT_EQ(tp.stats().framesDropped, 0u);
    EXPECT_EQ(tp.stats().framesDelivered, 50u);
}

TEST(Transport, DeliveryRespectsDestination)
{
    SimTransport tp;
    tp.send(0, 1, frame(1));
    tp.send(0, 2, frame(2));
    EXPECT_TRUE(tp.poll(3).empty());
    EXPECT_EQ(tp.poll(1).size(), 1u);
    EXPECT_EQ(tp.poll(2).size(), 1u);
}

TEST(Transport, LatencyGatesOnClock)
{
    TransportConfig cfg;
    cfg.latencyMeanMs = 10.0;
    SimTransport tp(cfg);
    tp.send(0, 1, frame(7));

    EXPECT_TRUE(tp.poll(1).empty()); // t=0: still in flight
    tp.advanceBy(5.0);
    EXPECT_TRUE(tp.poll(1).empty()); // t=5: still in flight
    tp.advanceBy(5.0);
    const auto got = tp.poll(1); // t=10: delivered
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0][0], 7);
}

TEST(Transport, BytesAccounted)
{
    SimTransport tp;
    tp.send(0, 1, frame(1)); // 3 bytes
    tp.send(0, 1, frame(2)); // 3 bytes
    EXPECT_EQ(tp.stats().bytesSent, 6u);
}

TEST(Transport, DropRateApproximatelyHonored)
{
    TransportConfig cfg;
    cfg.dropRate = 0.3;
    cfg.seed = 99;
    SimTransport tp(cfg);
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        tp.send(0, 1, frame(static_cast<std::uint8_t>(i)));
    const double dropped =
        static_cast<double>(tp.stats().framesDropped) / n;
    EXPECT_NEAR(dropped, 0.3, 0.03);
    EXPECT_EQ(tp.poll(1).size(), n - tp.stats().framesDropped);
}

TEST(Transport, DuplicationDeliversExtraCopies)
{
    TransportConfig cfg;
    cfg.dupRate = 0.5;
    cfg.seed = 5;
    SimTransport tp(cfg);
    const int n = 2000;
    for (int i = 0; i < n; ++i)
        tp.send(0, 1, frame(static_cast<std::uint8_t>(i)));
    const auto got = tp.poll(1);
    EXPECT_EQ(got.size(), n + tp.stats().framesDuplicated);
    EXPECT_GT(tp.stats().framesDuplicated, 0u);
}

TEST(Transport, SameSeedSameFaults)
{
    TransportConfig cfg;
    cfg.dropRate = 0.25;
    cfg.dupRate = 0.1;
    cfg.latencyMeanMs = 4.0;
    cfg.latencyJitterMs = 2.0;
    cfg.reorderRate = 0.2;
    cfg.seed = 1234;

    auto run = [&cfg](std::uint64_t seed) {
        TransportConfig seeded = cfg;
        seeded.seed = seed;
        SimTransport tp(seeded);
        std::vector<std::uint8_t> order;
        for (std::uint8_t i = 0; i < 100; ++i)
            tp.send(0, 1, frame(i));
        tp.advanceBy(1000.0);
        for (const auto &f : tp.poll(1))
            order.push_back(f[0]);
        return order;
    };
    EXPECT_EQ(run(1234), run(1234));
    // A different seed almost surely produces a different fault pattern.
    EXPECT_NE(run(1234), run(4321));
}

TEST(Transport, ReorderHoldsFramesBack)
{
    TransportConfig cfg;
    cfg.reorderRate = 0.5;
    cfg.reorderExtraMs = 10.0;
    cfg.seed = 77;
    SimTransport tp(cfg);
    for (std::uint8_t i = 0; i < 200; ++i)
        tp.send(0, 1, frame(i));

    const auto prompt = tp.poll(1);      // frames not held back
    EXPECT_LT(prompt.size(), 200u);
    tp.advanceBy(10.0);
    const auto held = tp.poll(1);        // the reordered remainder
    EXPECT_EQ(prompt.size() + held.size(), 200u);

    bool out_of_order = false;
    std::uint8_t last = 0;
    for (const auto &f : held) {
        if (f[0] < last)
            out_of_order = true;
        last = f[0];
    }
    // Held frames arrive after non-held later frames: global order broke.
    EXPECT_TRUE(!held.empty());
    (void)out_of_order; // per-batch order is still delivery-time order
}
