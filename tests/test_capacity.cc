/**
 * @file
 * Capacity-study tests reproducing the paper's §6.4 results (Figures 9
 * and 10) at reduced trial counts:
 *
 *   worst case:  No Priority 3888, Local Priority 4860, Global 5832
 *   typical:     all policies 6318
 */

#include <gtest/gtest.h>

#include "sim/capacity.hh"

using namespace capmaestro;
using namespace capmaestro::sim;

namespace {

CapacityConfig
worstCaseConfig(policy::PolicyKind kind, int trials = 12)
{
    CapacityConfig cfg;
    cfg.policy = kind;
    cfg.worstCase = true;
    cfg.trials = trials;
    cfg.seed = 99;
    return cfg;
}

} // namespace

TEST(Capacity, WorstCaseNoPriority3888)
{
    const auto best = findMaxDeployable(
        worstCaseConfig(policy::PolicyKind::NoPriority), 6, 15);
    EXPECT_EQ(best.totalServers, 3888u); // paper Figure 9
}

TEST(Capacity, WorstCaseLocalPriority4860)
{
    const auto best = findMaxDeployable(
        worstCaseConfig(policy::PolicyKind::LocalPriority, 30), 6, 15);
    EXPECT_EQ(best.totalServers, 4860u); // paper Figure 9
}

TEST(Capacity, WorstCaseGlobalPriority5832)
{
    const auto best = findMaxDeployable(
        worstCaseConfig(policy::PolicyKind::GlobalPriority), 6, 15);
    EXPECT_EQ(best.totalServers, 5832u); // paper Figure 9
}

TEST(Capacity, PaperHeadlineRatios)
{
    // Global supports 50 % more than No Priority and 20 % more than
    // Local Priority (paper abstract).
    const auto np = findMaxDeployable(
        worstCaseConfig(policy::PolicyKind::NoPriority), 6, 15);
    const auto lp = findMaxDeployable(
        worstCaseConfig(policy::PolicyKind::LocalPriority, 30), 6, 15);
    const auto gp = findMaxDeployable(
        worstCaseConfig(policy::PolicyKind::GlobalPriority), 6, 15);
    EXPECT_NEAR(static_cast<double>(gp.totalServers) / np.totalServers,
                1.5, 0.05);
    EXPECT_NEAR(static_cast<double>(gp.totalServers) / lp.totalServers,
                1.2, 0.05);
}

TEST(Capacity, TypicalCaseSupports6318)
{
    // All three policies support 13 servers/rack/phase (6318 total) in
    // the typical case; 14 violates the 1 % criterion.
    for (const auto kind : policy::kAllPolicies) {
        CapacityConfig cfg;
        cfg.policy = kind;
        cfg.worstCase = false;
        cfg.trials = 120;
        cfg.seed = 7;
        const auto at13 = evaluateCapacity(cfg, 13);
        EXPECT_LE(at13.avgCapRatioAll, 0.011)
            << policy::policyName(kind);
        const auto at14 = evaluateCapacity(cfg, 14);
        EXPECT_GT(at14.avgCapRatioAll, 0.011)
            << policy::policyName(kind);
    }
}

TEST(Capacity, CapRatioGrowsWithDensity)
{
    // Figure 10: cap ratios grow with the number of servers.
    const auto points = sweepCapacity(
        worstCaseConfig(policy::PolicyKind::GlobalPriority, 6), 8, 14);
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_GE(points[i].avgCapRatioAll,
                  points[i - 1].avgCapRatioAll - 1e-9);
        EXPECT_GE(points[i].avgCapRatioHigh,
                  points[i - 1].avgCapRatioHigh - 1e-9);
    }
}

TEST(Capacity, HighPriorityProtectedUnderPriorityPolicies)
{
    // Figure 10b: at every density, high-priority servers fare at least
    // as well under Global as under Local, and both beat No Priority.
    for (int n : {10, 12, 13}) {
        const auto np = evaluateCapacity(
            worstCaseConfig(policy::PolicyKind::NoPriority, 8), n);
        const auto lp = evaluateCapacity(
            worstCaseConfig(policy::PolicyKind::LocalPriority, 8), n);
        const auto gp = evaluateCapacity(
            worstCaseConfig(policy::PolicyKind::GlobalPriority, 8), n);
        EXPECT_LE(gp.avgCapRatioHigh, lp.avgCapRatioHigh + 1e-9)
            << "n=" << n;
        EXPECT_LE(lp.avgCapRatioHigh, np.avgCapRatioHigh + 1e-9)
            << "n=" << n;
    }
}

TEST(Capacity, PriorityObliviousToAllServersRatio)
{
    // The all-servers cap ratio is policy-independent in the worst case
    // (the same total power is shed either way).
    const auto np = evaluateCapacity(
        worstCaseConfig(policy::PolicyKind::NoPriority, 6), 12);
    const auto gp = evaluateCapacity(
        worstCaseConfig(policy::PolicyKind::GlobalPriority, 6), 12);
    EXPECT_NEAR(np.avgCapRatioAll, gp.avgCapRatioAll, 0.02);
}

TEST(Capacity, WorstCaseIsDeterministicAcrossSeeds)
{
    // With all servers at Pcap_max the only randomness is priority
    // placement; the all-servers ratio must be essentially seed-free.
    auto cfg_a = worstCaseConfig(policy::PolicyKind::GlobalPriority, 6);
    auto cfg_b = cfg_a;
    cfg_b.seed = 12345;
    const auto a = evaluateCapacity(cfg_a, 12);
    const auto b = evaluateCapacity(cfg_b, 12);
    EXPECT_NEAR(a.avgCapRatioAll, b.avgCapRatioAll, 0.005);
}

TEST(Capacity, InfeasibleDensityReported)
{
    // At 45 servers/rack (15/phase) with one feed down, floors alone are
    // 15 x 270 = 4050 W per CDU-phase < 5520 W, so CDUs hold; but the
    // contractual budget 665 kW < 162 x 4050 = 656 kW holds too -- so
    // push to a density where floors overflow the contractual budget.
    auto cfg = worstCaseConfig(policy::PolicyKind::GlobalPriority, 2);
    cfg.dc.contractualPerPhase = 500e3; // shrink budget to force overflow
    const auto point = evaluateCapacity(cfg, 12);
    // floors = 162 x 12 x 270 = 525 kW > 500 x 0.95 = 475 kW
    EXPECT_LT(point.feasibleFraction, 1.0);
}

TEST(Capacity, MultiLevelPrioritiesStrictlyOrdered)
{
    // Four priority levels: under Global Priority, higher levels must be
    // capped no harder than lower ones, with a strict separation at a
    // density where capping is substantial.
    CapacityConfig cfg = worstCaseConfig(
        policy::PolicyKind::GlobalPriority, 8);
    cfg.priorityFractions = {0.4, 0.3, 0.2, 0.1};
    const auto point = evaluateCapacity(cfg, 13);
    ASSERT_EQ(point.avgCapRatioByPriority.size(), 4u);
    for (std::size_t level = 1; level < 4; ++level) {
        EXPECT_LE(point.avgCapRatioByPriority[level],
                  point.avgCapRatioByPriority[level - 1] + 1e-9)
            << "level " << level;
    }
    // The bottom class absorbs the shortfall; the top class is spared.
    EXPECT_GT(point.avgCapRatioByPriority[0], 0.3);
    EXPECT_LT(point.avgCapRatioByPriority[3], 0.05);
    EXPECT_DOUBLE_EQ(point.avgCapRatioHigh,
                     point.avgCapRatioByPriority[3]);
}

TEST(Capacity, MultiLevelUnderNoPriorityIsUniform)
{
    CapacityConfig cfg = worstCaseConfig(
        policy::PolicyKind::NoPriority, 6);
    cfg.priorityFractions = {0.4, 0.3, 0.2, 0.1};
    const auto point = evaluateCapacity(cfg, 12);
    ASSERT_EQ(point.avgCapRatioByPriority.size(), 4u);
    for (std::size_t level = 1; level < 4; ++level) {
        EXPECT_NEAR(point.avgCapRatioByPriority[level],
                    point.avgCapRatioByPriority[0], 0.01);
    }
}

TEST(Capacity, TwoLevelDefaultMatchesExplicitFractions)
{
    auto implicit = worstCaseConfig(
        policy::PolicyKind::GlobalPriority, 6);
    auto explicit_cfg = implicit;
    explicit_cfg.priorityFractions = {0.7, 0.3};
    const auto a = evaluateCapacity(implicit, 12);
    const auto b = evaluateCapacity(explicit_cfg, 12);
    EXPECT_NEAR(a.avgCapRatioHigh, b.avgCapRatioHigh, 0.01);
    EXPECT_NEAR(a.avgCapRatioAll, b.avgCapRatioAll, 0.01);
}

TEST(Capacity, SupplyMismatchCreatesStrandedPowerForSpo)
{
    // Typical case, dual feed, 15 % split mismatch: without SPO some
    // budget is stranded; SPO reclaims a positive amount.
    CapacityConfig cfg;
    cfg.policy = policy::PolicyKind::GlobalPriority;
    cfg.worstCase = false;
    cfg.trials = 10;
    cfg.seed = 31;
    cfg.enableSpo = true;
    cfg.dc.supplyMismatch = 0.15;
    // Densify so the typical case actually caps (SPO needs capped peers).
    const auto point = evaluateCapacity(cfg, 15);
    EXPECT_GT(point.meanStrandedReclaimed, 0.0);
}
