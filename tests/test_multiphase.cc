/**
 * @file
 * Multi-phase tests (paper §4.1): control trees are replicated per phase
 * to protect each phase independently, since phase loading is not
 * uniform; and servers may plug into multiple phases of a feed (the
 * paper's capability (3)).
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/closed_loop.hh"
#include "sim/scenario.hh"

using namespace capmaestro;
using sim::ClosedLoopSim;

namespace {

/**
 * One feed, three phases. Phases 0 and 1 each host two single-corded
 * servers (ids 0-1 and 2-3). Server 4 is a three-phase server with one
 * supply on each phase. Each phase has a 900 W breaker.
 */
std::unique_ptr<topo::PowerSystem>
makeThreePhaseSystem()
{
    auto sys = std::make_unique<topo::PowerSystem>(1);
    for (int phase = 0; phase < 3; ++phase) {
        auto tree = std::make_unique<topo::PowerTree>(
            0, phase, "ph" + std::to_string(phase));
        const auto root = tree->makeRoot(topo::NodeKind::Breaker,
                                         "phaseCB", 900.0);
        if (phase < 2) {
            tree->addSupplyPort(root, "a", {2 * phase, 0});
            tree->addSupplyPort(root, "b", {2 * phase + 1, 0});
        }
        // The 3-phase server: supply index == phase.
        tree->addSupplyPort(root, "triphase", {4, phase});
        sys->addTree(std::move(tree));
    }
    return sys;
}

std::vector<sim::ServerSetup>
makeServers(double phase0_u, double phase1_u)
{
    std::vector<sim::ServerSetup> servers;
    for (int i = 0; i < 4; ++i) {
        sim::ServerSetup s;
        s.spec = sim::testbedServerSpec("S" + std::to_string(i), 0, 1.0,
                                        1);
        s.workload = std::make_unique<dev::ConstantWorkload>(
            i < 2 ? phase0_u : phase1_u);
        servers.push_back(std::move(s));
    }
    // The three-phase server: three equal-share supplies.
    sim::ServerSetup tri;
    tri.spec = sim::testbedServerSpec("tri", 0);
    tri.spec.supplies = {{1.0 / 3, 0.94}, {1.0 / 3, 0.94},
                         {1.0 / 3, 0.94}};
    tri.workload = std::make_unique<dev::ConstantWorkload>(0.6);
    servers.push_back(std::move(tri));
    return servers;
}

} // namespace

TEST(MultiPhase, PhasesProtectedIndependently)
{
    // Phase 0 is overloaded (2 x 490 W demand + a third of the
    // tri-phase server against its 900 W breaker); phase 1 is lightly
    // loaded. Phase 0's servers get capped; phase 1's do not.
    core::ServiceConfig config;
    config.enableSpo = false;
    ClosedLoopSim rig(makeThreePhaseSystem(),
                      makeServers(/*phase0_u=*/1.0, /*phase1_u=*/0.3),
                      config);
    rig.setRootBudgets({900.0, 900.0, 900.0});
    rig.run(120);

    const auto &rec = rig.recorder();
    // Phase-0 servers throttled...
    EXPECT_LT(rec.mean(ClosedLoopSim::serverSeries(0, "throughput"), 80,
                       119),
              0.95);
    // ...phase-1 servers untouched (their demand ~297 W each).
    EXPECT_GT(rec.mean(ClosedLoopSim::serverSeries(2, "throughput"), 80,
                       119),
              0.99);
    // Every phase breaker within limits.
    for (int phase = 0; phase < 3; ++phase) {
        EXPECT_LE(rec.max("ph" + std::to_string(phase)
                              + ".phaseCB.power",
                          24, 119),
                  900.0 * 1.02)
            << "phase " << phase;
    }
    EXPECT_FALSE(rig.anyBreakerTripped());
}

TEST(MultiPhase, ThreePhaseServerFollowsTightestPhase)
{
    // The tri-phase server draws a third of its power from each phase.
    // With phase 0 congested, its phase-0 budget binds the whole server
    // even though phases 1 and 2 have headroom.
    core::ServiceConfig config;
    config.enableSpo = false;
    ClosedLoopSim rig(makeThreePhaseSystem(),
                      makeServers(1.0, 0.3), config);
    rig.setRootBudgets({900.0, 900.0, 900.0});
    rig.run(120);

    auto &tri = rig.server(4);
    EXPECT_EQ(tri.supplyCount(), 3u);
    // Supplies split the actual draw ~evenly.
    const double total = tri.actualAc();
    for (std::size_t s = 0; s < 3; ++s)
        EXPECT_NEAR(tri.supplyAc(s), total / 3.0, 1.0);

    // The phase-0 supply budget is the binding one.
    const auto &rec = rig.recorder();
    const double b0 = rec.mean(ClosedLoopSim::supplySeries(4, 0,
                                                           "budget"),
                               80, 119);
    const double b1 = rec.mean(ClosedLoopSim::supplySeries(4, 1,
                                                           "budget"),
                               80, 119);
    EXPECT_LT(b0, b1);
}

TEST(MultiPhase, SpoReclaimsAcrossPhases)
{
    // With SPO on, the tri-phase server's unusable phase-1/2 budgets
    // are reclaimed for the lightly-loaded servers on those phases.
    core::ServiceConfig with_spo;
    with_spo.enableSpo = true;
    ClosedLoopSim rig(makeThreePhaseSystem(), makeServers(1.0, 0.85),
                      with_spo);
    rig.setRootBudgets({900.0, 900.0, 900.0});
    rig.run(160);
    EXPECT_EQ(rig.service().lastStats().allocation.passes, 2);
    EXPECT_GT(rig.service().lastStats().allocation.strandedReclaimed,
              5.0);
    EXPECT_FALSE(rig.anyBreakerTripped());
}

TEST(MultiPhase, PerPhaseBudgetsIndependentInService)
{
    auto sys = makeThreePhaseSystem();
    core::CapMaestroService service(*sys);
    service.refreshRootBudgets(750.0);
    // One feed: each phase tree receives the full per-phase budget.
    for (std::size_t t = 0; t < 3; ++t)
        EXPECT_DOUBLE_EQ(service.rootBudgets()[t], 750.0);
}
