/**
 * @file
 * Property tests for deep control trees (core::TreePlan depth 2-4):
 * on every seeded random topology, the distributed allocation — direct
 * exchange, lossless SimTransport message plane, and real 127.0.0.1
 * UDP sockets — must be bit-identical to the flat in-process
 * allocation (one monolithic ControlTree per power tree, the same
 * recursion FleetAllocator runs). This is the §4.3 associativity
 * claim: cutting the reduction at aggregator stations and chaining
 * fragments over a lossless exchange cannot change a single bit of
 * any leaf budget, at any depth, under any policy.
 *
 * Topologies are generated from the test seed: worker-plan depth 2-4
 * (0-2 aggregator tiers), per-level fan-out 1-64 (product bounded to
 * keep the suite fast), 1-2 feeds with structurally parallel trees.
 *
 * Set CAPMAESTRO_NO_NET=1 to skip the UDP test (binds real sockets).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "control/control_tree.hh"
#include "core/distributed.hh"
#include "core/tree_plan.hh"
#include "net/transport.hh"
#include "net/udp_transport.hh"
#include "topology/power_system.hh"
#include "util/random.hh"

using namespace capmaestro;
using core::DistributedControlPlane;

namespace {

#define SKIP_WITHOUT_NET()                                            \
    do {                                                              \
        if (std::getenv("CAPMAESTRO_NO_NET") != nullptr)              \
            GTEST_SKIP() << "CAPMAESTRO_NO_NET is set";               \
    } while (0)

/** A seeded random deep system and the plan levels that cut it. */
struct DeepCase
{
    std::unique_ptr<topo::PowerSystem> sys;
    std::vector<std::uint32_t> aggLevels;
    std::size_t servers = 0;
    std::size_t feeds = 1;
    /** Breaker fan-out per level, root first, then supplies/edge. */
    std::vector<std::size_t> shape;
};

/**
 * Random topology for a depth-@p tiers worker plan: a uniform tree of
 * tiers breaker levels (root at height tiers-1, edge nodes at height
 * 0), replicated structurally parallel across 1-2 feeds. Fan-outs are
 * drawn log-uniformly from [1, 64] with the running leaf count capped,
 * so a single level can be wide without the product exploding.
 */
DeepCase
randomDeepCase(util::Rng &rng, std::uint32_t tiers)
{
    DeepCase out;
    out.feeds = rng.chance(0.5) ? 2 : 1;
    const std::size_t breaker_levels = tiers; // root .. edge nodes
    std::size_t leaves = 1;
    for (std::size_t level = 0; level < breaker_levels; ++level) {
        const std::size_t cap = std::max<std::size_t>(
            1, 48 / std::max<std::size_t>(leaves, 1));
        const auto max_pow = static_cast<std::int64_t>(
            cap >= 64 ? 6 : cap >= 32 ? 5 : cap >= 16 ? 4
            : cap >= 8 ? 3 : cap >= 4 ? 2 : cap >= 2 ? 1 : 0);
        const std::size_t fan = static_cast<std::size_t>(1)
                                << rng.uniformInt(0, max_pow);
        out.shape.push_back(fan);
        leaves *= fan;
    }
    // Supplies per edge node (the servers of one "rack").
    const auto per_edge =
        static_cast<std::size_t>(rng.uniformInt(1, 3));
    out.shape.push_back(per_edge);
    out.servers = leaves * per_edge;

    out.sys = std::make_unique<topo::PowerSystem>(
        static_cast<int>(out.feeds));
    for (std::size_t feed = 0; feed < out.feeds; ++feed) {
        auto tree = std::make_unique<topo::PowerTree>(
            static_cast<int>(feed), 0, "F" + std::to_string(feed));
        const Watts rating =
            static_cast<double>(out.servers) * 400.0;
        const auto root =
            tree->makeRoot(topo::NodeKind::Breaker, "root", rating);
        std::vector<topo::NodeId> frontier{root};
        for (std::size_t level = 0; level < breaker_levels; ++level) {
            std::vector<topo::NodeId> next;
            for (std::size_t p = 0; p < frontier.size(); ++p) {
                for (std::size_t c = 0; c < out.shape[level]; ++c) {
                    // Ratings shrink down the tree and sometimes bind.
                    const Watts r =
                        rating / static_cast<double>(leaves)
                        * static_cast<double>(
                              leaves >> std::min<std::size_t>(level, 5))
                        * 1.5;
                    next.push_back(tree->addChild(
                        frontier[p], topo::NodeKind::Breaker,
                        "b" + std::to_string(level) + "_"
                            + std::to_string(next.size()),
                        r));
                }
            }
            frontier = std::move(next);
        }
        std::size_t sid = 0;
        for (const auto edge : frontier) {
            for (std::size_t s = 0; s < per_edge; ++s, ++sid) {
                tree->addSupplyPort(
                    edge,
                    "s" + std::to_string(sid) + "."
                        + std::to_string(feed),
                    {static_cast<int>(sid), static_cast<int>(feed)});
            }
        }
        out.sys->addTree(std::move(tree));
    }
    for (std::uint32_t h = 1; h + 1 < tiers; ++h)
        out.aggLevels.push_back(h);
    return out;
}

/** Random leaf inputs for every supply of @p system. */
std::vector<std::pair<topo::ServerSupplyRef, ctrl::LeafInput>>
randomInputs(const topo::PowerSystem &system, util::Rng &rng)
{
    std::vector<std::pair<topo::ServerSupplyRef, ctrl::LeafInput>> out;
    for (const auto &tree : system.trees()) {
        for (const auto &ref : tree->suppliesUnder(tree->root())) {
            ctrl::LeafInput in;
            in.live = rng.chance(0.95);
            in.priority = static_cast<Priority>(rng.uniformInt(0, 3));
            in.capMin = rng.uniform(100.0, 150.0);
            in.demand = in.capMin + rng.uniform(0.0, 120.0);
            in.constraint = in.demand + rng.uniform(0.0, 60.0);
            out.emplace_back(ref, in);
        }
    }
    return out;
}

/** Flat reference: one monolithic ControlTree per power tree. */
std::vector<std::unique_ptr<ctrl::ControlTree>>
flatReference(const topo::PowerSystem &system, ctrl::TreePolicy policy)
{
    std::vector<std::unique_ptr<ctrl::ControlTree>> monos;
    for (const auto &tree : system.trees())
        monos.push_back(
            std::make_unique<ctrl::ControlTree>(*tree, policy));
    return monos;
}

/** The tree each supply ref draws from, per feed ordering. */
std::size_t
treeOf(const topo::PowerSystem &system,
       const topo::ServerSupplyRef &ref)
{
    return system.livePortsOf(ref.server).at(ref.supply).tree;
}

ctrl::TreePolicy
policyFor(std::uint64_t seed)
{
    switch (seed % 3) {
    case 0:
        return ctrl::TreePolicy::globalPriority();
    case 1:
        return ctrl::TreePolicy::localPriority();
    default:
        return ctrl::TreePolicy::noPriority();
    }
}

void
expectBitIdentical(
    DistributedControlPlane &dist,
    const std::vector<std::unique_ptr<ctrl::ControlTree>> &monos,
    const topo::PowerSystem &system,
    const std::vector<std::pair<topo::ServerSupplyRef,
                                ctrl::LeafInput>> &inputs,
    const std::string &what)
{
    for (const auto &[ref, in] : inputs) {
        const auto tree = treeOf(system, ref);
        ASSERT_EQ(std::bit_cast<std::uint64_t>(dist.leafBudget(ref)),
                  std::bit_cast<std::uint64_t>(
                      monos[tree]->leafBudget(ref)))
            << what << ": supply " << ref.server << "." << ref.supply
            << " dist=" << dist.leafBudget(ref)
            << " flat=" << monos[tree]->leafBudget(ref);
    }
}

} // namespace

TEST(TreeDepth, DirectDeepPlaneBitIdenticalToFlatAllocator)
{
    // 18 seeded topologies, cycling worker-plan depth 2/3/4 and all
    // three policies; several input trials per topology.
    for (std::uint64_t seed = 0; seed < 18; ++seed) {
        util::Rng rng(1000 + seed * 7919);
        const auto tiers = static_cast<std::uint32_t>(2 + seed % 3);
        const auto c = randomDeepCase(rng, tiers);
        const auto policy = policyFor(seed);
        SCOPED_TRACE("seed " + std::to_string(seed) + " tiers "
                     + std::to_string(tiers) + " servers "
                     + std::to_string(c.servers));

        const auto plan = core::TreePlan::build(*c.sys, c.aggLevels);
        EXPECT_EQ(plan.tiers(), tiers);

        DistributedControlPlane dist(*c.sys, policy, c.aggLevels);
        auto monos = flatReference(*c.sys, policy);
        for (int trial = 0; trial < 4; ++trial) {
            const auto inputs = randomInputs(*c.sys, rng);
            std::vector<Watts> budgets;
            for (std::size_t t = 0; t < c.sys->trees().size(); ++t) {
                budgets.push_back(rng.uniform(
                    80.0 * static_cast<double>(c.servers),
                    260.0 * static_cast<double>(c.servers)));
            }
            for (const auto &[ref, in] : inputs) {
                dist.setLeafInput(ref, in);
                monos[treeOf(*c.sys, ref)]->setLeafInput(ref, in);
            }
            dist.iterate(budgets);
            for (std::size_t t = 0; t < monos.size(); ++t) {
                monos[t]->gather();
                monos[t]->allocate(budgets[t]);
            }
            expectBitIdentical(dist, monos, *c.sys, inputs,
                               "direct trial "
                                   + std::to_string(trial));
        }
    }
}

TEST(TreeDepth, LosslessSimPlaneBitIdenticalToFlatAllocator)
{
    // Same property through the §4.5 message plane: every hop a real
    // encoded frame over a lossless zero-latency SimTransport, with
    // zero degraded decisions expected at any depth.
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
        util::Rng rng(9000 + seed * 104729);
        const auto tiers = static_cast<std::uint32_t>(2 + seed % 3);
        const auto c = randomDeepCase(rng, tiers);
        const auto policy = policyFor(seed + 1);
        SCOPED_TRACE("seed " + std::to_string(seed) + " tiers "
                     + std::to_string(tiers) + " servers "
                     + std::to_string(c.servers));

        net::SimTransport transport; // lossless, instantaneous
        DistributedControlPlane dist(*c.sys, policy, transport, {},
                                     c.aggLevels);
        auto monos = flatReference(*c.sys, policy);
        for (int trial = 0; trial < 3; ++trial) {
            const auto inputs = randomInputs(*c.sys, rng);
            std::vector<Watts> budgets;
            for (std::size_t t = 0; t < c.sys->trees().size(); ++t) {
                budgets.push_back(rng.uniform(
                    80.0 * static_cast<double>(c.servers),
                    260.0 * static_cast<double>(c.servers)));
            }
            for (const auto &[ref, in] : inputs) {
                dist.setLeafInput(ref, in);
                monos[treeOf(*c.sys, ref)]->setLeafInput(ref, in);
            }
            const auto stats = dist.iterate(budgets);
            EXPECT_EQ(stats.degraded.size(), 0u);
            EXPECT_EQ(stats.defaultBudgets, 0u);
            EXPECT_EQ(stats.staleReuses, 0u);
            EXPECT_GT(stats.bytesOnWire, 0u);
            for (std::size_t t = 0; t < monos.size(); ++t) {
                monos[t]->gather();
                monos[t]->allocate(budgets[t]);
            }
            expectBitIdentical(dist, monos, *c.sys, inputs,
                               "sim trial " + std::to_string(trial));
        }
    }
}

TEST(TreeDepth, UdpLoopbackPlaneBitIdenticalToFlatAllocator)
{
    SKIP_WITHOUT_NET();
    // One seeded topology per depth over real loopback sockets. The
    // deadline schedule is shrunk so a degraded period (which would
    // break bit-identity legitimately) is effectively impossible on
    // loopback yet the test stays fast.
    net::ProtocolConfig proto;
    proto.gatherDeadlineMs = 60.0;
    proto.budgetDeadlineMs = 60.0;
    proto.retryTimeoutMs = 15.0;

    for (std::uint64_t seed = 0; seed < 3; ++seed) {
        util::Rng rng(42000 + seed * 31337);
        const auto tiers = static_cast<std::uint32_t>(2 + seed);
        const auto c = randomDeepCase(rng, tiers);
        const auto policy = policyFor(seed);
        SCOPED_TRACE("seed " + std::to_string(seed) + " tiers "
                     + std::to_string(tiers) + " servers "
                     + std::to_string(c.servers));

        const auto plan = core::TreePlan::build(*c.sys, c.aggLevels);
        net::UdpTransport transport(net::UdpConfig::loopback(
            static_cast<std::uint32_t>(plan.workers.size())));
        DistributedControlPlane dist(*c.sys, policy, transport, proto,
                                     c.aggLevels);
        auto monos = flatReference(*c.sys, policy);
        for (int trial = 0; trial < 2; ++trial) {
            const auto inputs = randomInputs(*c.sys, rng);
            std::vector<Watts> budgets;
            for (std::size_t t = 0; t < c.sys->trees().size(); ++t) {
                budgets.push_back(rng.uniform(
                    80.0 * static_cast<double>(c.servers),
                    260.0 * static_cast<double>(c.servers)));
            }
            for (const auto &[ref, in] : inputs) {
                dist.setLeafInput(ref, in);
                monos[treeOf(*c.sys, ref)]->setLeafInput(ref, in);
            }
            const auto stats = dist.iterate(budgets);
            ASSERT_EQ(stats.degraded.size(), 0u)
                << "UDP loopback run degraded; bit-identity does not "
                   "apply (rerun: seed "
                << seed << ")";
            for (std::size_t t = 0; t < monos.size(); ++t) {
                monos[t]->gather();
                monos[t]->allocate(budgets[t]);
            }
            expectBitIdentical(dist, monos, *c.sys, inputs,
                               "udp trial " + std::to_string(trial));
        }
    }
}

TEST(TreeDepth, PlanShapesAreSound)
{
    // Structural invariants of every generated plan: tier sizes
    // telescope, every non-root worker's parent sits exactly one tier
    // up (uniform trees), children partition the tier below, and leaf
    // workers match the 2-level partitioning rule.
    for (std::uint64_t seed = 0; seed < 24; ++seed) {
        util::Rng rng(500 + seed * 2477);
        const auto tiers = static_cast<std::uint32_t>(2 + seed % 3);
        const auto c = randomDeepCase(rng, tiers);
        const auto plan = core::TreePlan::build(*c.sys, c.aggLevels);
        SCOPED_TRACE("seed " + std::to_string(seed));

        EXPECT_EQ(plan.tiers(), tiers);
        EXPECT_EQ(plan.leafWorkers,
                  DistributedControlPlane::rackWorkerCountFor(*c.sys));
        std::size_t counted = 0;
        for (std::uint32_t t = 0; t < tiers; ++t)
            counted += plan.tierEndpoints(t).size();
        EXPECT_EQ(counted, plan.workers.size());
        EXPECT_EQ(plan.tierEndpoints(tiers - 1).size(), 1u);

        std::set<std::uint32_t> seen_children;
        for (const auto &w : plan.workers) {
            if (w.isRoot()) {
                EXPECT_EQ(w.tier, tiers - 1);
            } else {
                ASSERT_LT(w.parent, plan.workers.size());
                EXPECT_EQ(plan.workers[w.parent].tier, w.tier + 1);
            }
            for (const auto child : w.children) {
                EXPECT_TRUE(seen_children.insert(child).second)
                    << "worker " << child << " has two parents";
                EXPECT_EQ(plan.workers[child].parent, w.endpoint);
            }
        }
        EXPECT_EQ(seen_children.size(), plan.workers.size() - 1);
    }
}
