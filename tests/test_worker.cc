/**
 * @file
 * Worker-layout tests for the §5 deployment model: controller and message
 * counts, the < 0.1 % core-overhead claim, and scaling behavior.
 */

#include <gtest/gtest.h>

#include "core/worker.hh"

using namespace capmaestro::core;

TEST(WorkerLayout, PaperDeploymentCounts)
{
    DeploymentShape shape; // paper defaults: 162 racks, 45 servers, 2x3
    const auto layout = planWorkers(shape, WorkerCosts{});

    EXPECT_EQ(layout.rackWorkers, 162u);
    EXPECT_EQ(layout.roomWorkers, 1u);
    // Paper §5: one rack worker hosts 6 CDU-level shifting controllers
    // and 45 capping controllers.
    EXPECT_EQ(layout.cduControllersPerRack, 6u);
    EXPECT_EQ(layout.cappingControllersPerRack, 45u);
}

TEST(WorkerLayout, CoreOverheadBelowOneTenthPercent)
{
    DeploymentShape shape;
    const auto layout = planWorkers(shape, WorkerCosts{});
    // Paper §5: less than 0.1 % of the data center's cores.
    EXPECT_LT(layout.coreOverheadFraction, 0.001);
}

TEST(WorkerLayout, RoomWorkerScalesLinearlyWithRacks)
{
    WorkerCosts costs;
    DeploymentShape small;
    small.racks = 100;
    DeploymentShape large;
    large.racks = 500;
    const auto a = planWorkers(small, costs);
    const auto b = planWorkers(large, costs);
    // Linear in racks (the RPP->CDU fan-out dominates).
    EXPECT_NEAR(b.roomComputeMs / a.roomComputeMs, 5.0, 0.5);
}

TEST(WorkerLayout, FiveHundredRackRoomWorkerUnder300Ms)
{
    // Paper §5 estimates < 300 ms for a 500-rack room worker. Use
    // deliberately conservative per-op costs (10x our measured ones).
    WorkerCosts costs;
    costs.gatherPerChildUs = 10.0;
    costs.budgetPerChildUs = 10.0;
    DeploymentShape shape;
    shape.racks = 500;
    const auto layout = planWorkers(shape, costs);
    EXPECT_LT(layout.roomComputeMs, 300.0);
}

TEST(WorkerLayout, MessageCount)
{
    DeploymentShape shape;
    shape.racks = 10;
    const auto layout = planWorkers(shape, WorkerCosts{});
    // 2 messages per tree per rack per period: 2 x 6 x 10.
    EXPECT_EQ(layout.messagesPerPeriod, 120u);
}

TEST(WorkerLayout, RackComputeIndependentOfRackCount)
{
    WorkerCosts costs;
    DeploymentShape small;
    small.racks = 10;
    DeploymentShape large;
    large.racks = 1000;
    const auto a = planWorkers(small, costs);
    const auto b = planWorkers(large, costs);
    // Adding racks adds rack workers; each rack worker's load is flat
    // (the paper's horizontal-scalability claim).
    EXPECT_DOUBLE_EQ(a.rackComputeMs, b.rackComputeMs);
}
