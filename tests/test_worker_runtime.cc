/**
 * @file
 * Tests for the multi-process worker runtime (rt/worker_runtime), run
 * as threads sharing one address space but communicating only through
 * real 127.0.0.1 UDP sockets — the same code path capmaestro_worker
 * daemons execute, minus fork/exec. Covers the healthy steady state
 * (every edge budgeted, no degraded decisions) and the §4.5 failure
 * story: a killed rack worker is detected by heartbeat silence, the
 * room logs a WorkerFailover event, and the surviving rack keeps
 * receiving real budgets throughout.
 *
 * Set CAPMAESTRO_NO_NET=1 to skip (every test binds UDP sockets).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "config/loader.hh"
#include "core/events.hh"
#include "rt/chaos.hh"
#include "rt/host.hh"
#include "rt/worker_runtime.hh"
#include "util/json.hh"

using namespace capmaestro;

namespace {

#define SKIP_WITHOUT_NET()                                            \
    do {                                                              \
        if (std::getenv("CAPMAESTRO_NO_NET") != nullptr)              \
            GTEST_SKIP() << "CAPMAESTRO_NO_NET is set";               \
    } while (0)

/** Dual-feed testbed whose partitioning rule yields two rack workers:
 *  leftCB (servers 0, 2) is rack 0 and rightCB (servers 1, 3) is rack
 *  1 on both trees; the room is endpoint 2. */
const char *kScenario = R"({
  "feeds": 2,
  "trees": [
    {
      "feed": 0, "phase": 0, "name": "X",
      "root": {
        "kind": "breaker", "name": "topCB", "rating": 1400,
        "children": [
          { "kind": "breaker", "name": "leftCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 0, "supply": 0 },
              { "kind": "supply", "server": 2, "supply": 0 } ] },
          { "kind": "breaker", "name": "rightCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 1, "supply": 0 },
              { "kind": "supply", "server": 3, "supply": 0 } ] }
        ]
      }
    },
    {
      "feed": 1, "phase": 0, "name": "Y",
      "root": {
        "kind": "breaker", "name": "topCB", "rating": 1400,
        "children": [
          { "kind": "breaker", "name": "leftCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 0, "supply": 1 },
              { "kind": "supply", "server": 2, "supply": 1 } ] },
          { "kind": "breaker", "name": "rightCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 1, "supply": 1 },
              { "kind": "supply", "server": 3, "supply": 1 } ] }
        ]
      }
    }
  ],
  "servers": [
    { "name": "SA", "priority": 1,
      "supplies": [ { "share": 0.5 }, { "share": 0.5 } ],
      "workload": { "type": "constant", "utilization": 0.684 } },
    { "name": "SB",
      "supplies": [ { "share": 0.5 }, { "share": 0.5 } ],
      "workload": { "type": "constant", "utilization": 0.686 } },
    { "name": "SC",
      "supplies": [ { "share": 0.53 }, { "share": 0.47 } ],
      "workload": { "type": "constant", "utilization": 0.722 } },
    { "name": "SD",
      "supplies": [ { "share": 0.46 }, { "share": 0.54 } ],
      "workload": { "type": "constant", "utilization": 0.734 } }
  ],
  "service": { "policy": "global", "spo": false },
  "budgets": { "totalPerPhase": 1400 }
})";

constexpr double kPeriodMs = 300.0;
constexpr std::size_t kWorkers = 3; // rack 0, rack 1, room

std::uint64_t
unixNowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

config::LoadedScenario
loadScenarioForWorker()
{
    auto scenario = config::loadScenario(util::parseJson(kScenario));
    // Deadlines well under the period, generous for loopback: the
    // protocol phases consume 160 ms of each 300 ms window.
    config::applyTransportJson(
        scenario.service,
        util::parseJson(R"({"backend":"udp","gatherDeadlineMs":80,
            "budgetDeadlineMs":80,"retryTimeoutMs":20})"));
    return scenario;
}

/** Build all three runtimes on ephemeral ports and cross-wire them. */
std::vector<std::unique_ptr<rt::WorkerRuntime>>
makeDeployment()
{
    config::WorkerPeers peers;
    peers.periodMs = kPeriodMs;
    peers.originMs = unixNowMs() + 200; // epoch 1 starts shortly
    for (std::uint32_t e = 0; e < kWorkers; ++e)
        peers.peers[e] = net::UdpPeer{"127.0.0.1", 0};

    std::vector<std::unique_ptr<rt::WorkerRuntime>> workers;
    for (std::uint32_t role = 0; role < kWorkers; ++role) {
        workers.push_back(std::make_unique<rt::WorkerRuntime>(
            loadScenarioForWorker(), peers, role, /*seed=*/1));
    }
    for (std::uint32_t a = 0; a < kWorkers; ++a) {
        for (std::uint32_t b = 0; b < kWorkers; ++b) {
            if (a == b)
                continue;
            workers[a]->udp()->setPeer(
                b, net::UdpPeer{"127.0.0.1",
                                workers[b]->udp()->boundPort(b)});
        }
    }
    return workers;
}

/** Run every worker for its period count on its own thread. */
void
runAll(std::vector<std::unique_ptr<rt::WorkerRuntime>> &workers,
       const std::vector<std::size_t> &periods)
{
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < workers.size(); ++i) {
        threads.emplace_back([&workers, &periods, i] {
            workers[i]->runPeriods(periods[i]);
        });
    }
    for (auto &thread : threads)
        thread.join();
}

} // namespace

TEST(WorkerRuntime, RolesPartitionTheDeployment)
{
    SKIP_WITHOUT_NET();
    auto workers = makeDeployment();
    EXPECT_EQ(workers[0]->rackCount(), 2u);
    EXPECT_FALSE(workers[0]->isRoom());
    EXPECT_FALSE(workers[1]->isRoom());
    EXPECT_TRUE(workers[2]->isRoom());
}

TEST(WorkerRuntime, HealthyDeploymentBudgetsEveryEdgeEveryPeriod)
{
    SKIP_WITHOUT_NET();
    auto workers = makeDeployment();
    runAll(workers, {3, 3, 3});

    for (std::size_t rack = 0; rack < 2; ++rack) {
        const auto &stats = workers[rack]->stats();
        EXPECT_EQ(stats.periodsRun, 3u) << "rack " << rack;
        // Two trees -> two edges per rack, budgeted every period.
        EXPECT_EQ(stats.budgetsApplied, 6u) << "rack " << rack;
        EXPECT_EQ(stats.defaultBudgets, 0u) << "rack " << rack;
        EXPECT_EQ(stats.corruptFrames, 0u) << "rack " << rack;
        EXPECT_TRUE(workers[rack]->eventLog().events().empty())
            << "rack " << rack;
    }
    const auto &room = workers[2]->stats();
    EXPECT_EQ(room.periodsRun, 3u);
    EXPECT_EQ(room.staleReuses, 0u);
    EXPECT_EQ(room.metricsLost, 0u);
    EXPECT_EQ(room.failovers, 0u);
    EXPECT_TRUE(workers[2]->eventLog().events().empty());

    // Rack 0 homes servers 0 and 2 and actually capped them with the
    // budgets the room computed.
    const auto sa = workers[0]->lastServerBudgets(0);
    ASSERT_EQ(sa.size(), 2u);
    EXPECT_GT(sa[0] + sa[1], 0.0);
    EXPECT_TRUE(workers[0]->lastServerBudgets(1).empty());
    const auto sb = workers[1]->lastServerBudgets(1);
    ASSERT_EQ(sb.size(), 2u);
    EXPECT_GT(sb[0] + sb[1], 0.0);
}

TEST(WorkerRuntime, KilledRackIsDetectedAndSurvivorsKeepRunning)
{
    SKIP_WITHOUT_NET();
    auto workers = makeDeployment();
    // Rack 1 dies after 2 periods (its thread simply exits, as if the
    // process were killed); rack 0 and the room run 8. With
    // heartbeatFailAfter=3 the room must declare rack 1 dead around
    // epoch 5 and keep budgeting rack 0 throughout.
    runAll(workers, {8, 2, 8});

    const auto &room = workers[2]->stats();
    EXPECT_EQ(room.failovers, 1u);
    const auto failovers = workers[2]->eventLog().ofKind(
        core::EventKind::WorkerFailover);
    ASSERT_EQ(failovers.size(), 1u);
    EXPECT_EQ(failovers[0].subject, "worker1");
    EXPECT_EQ(failovers[0].value, -1.0);
    // Rack 1's edges rode the §4.5 degradation: stale reuse while the
    // cache was fresh enough, metrics-lost afterwards.
    EXPECT_GT(room.staleReuses, 0u);
    EXPECT_GT(room.metricsLost, 0u);

    // The survivor never degraded to default budgets.
    const auto &rack0 = workers[0]->stats();
    EXPECT_EQ(rack0.periodsRun, 8u);
    EXPECT_EQ(rack0.budgetsApplied, 16u);
    EXPECT_EQ(rack0.defaultBudgets, 0u);
    EXPECT_TRUE(workers[0]->eventLog().events().empty());
}

TEST(WorkerRuntime, RequestStopExitsPromptly)
{
    SKIP_WITHOUT_NET();
    auto workers = makeDeployment();
    auto &room = *workers[2];
    std::thread runner([&room] { room.runPeriods(1000); });
    std::this_thread::sleep_for(std::chrono::milliseconds(450));
    room.requestStop();
    const auto asked = std::chrono::steady_clock::now();
    runner.join();
    const auto took =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - asked)
            .count();
    // One period (300 ms) plus slack: the stop flag is honored at the
    // next boundary check, never after another full period.
    EXPECT_LT(took, 2000);
    EXPECT_LT(room.stats().periodsRun, 1000u);
}

// Regression: a rack worker that dies and is restarted *within the
// same epoch window* never misses a heartbeat, so the room's liveness
// counter alone cannot see the restart. The sequence-regression check
// must still catch it, and the new instance must be degraded to the
// stale-cache path — not double-counted as both the dead instance
// (stale) and a live one (fresh) in the same window. The fresh-plant
// numbers of a reincarnated process would otherwise poison the room's
// allocation. Runs in deterministic lockstep over SimTransport, so the
// exact counter values are asserted, not bounded.
TEST(WorkerRuntime, SameEpochRestartIsNotDoubleCounted)
{
    rt::LockstepDeployment dep(kScenario, rt::ChaosBackend::Sim,
                               net::TransportConfig{}, /*seed=*/42);
    ASSERT_EQ(dep.rackCount(), 2u);
    // Kill and restart rack 1 at the same epoch: the replacement steps
    // in epoch 5 as if the crash-and-respawn fit inside one window.
    dep.chaos().at(5, rt::ChaosEvent::Kind::Kill, 1);
    dep.chaos().at(5, rt::ChaosEvent::Kind::Restart, 1);
    const auto report = dep.run(10);

    EXPECT_EQ(report.violations, 0u) << report.firstViolation;
    EXPECT_EQ(report.recoveries, 1u);
    EXPECT_EQ(report.unrecovered, 0u);
    // Restart at 5, re-homed by 6: two periods end to end.
    EXPECT_EQ(report.maxRecoveryPeriods, 2u);

    const auto &room = dep.room().stats();
    // Never a heartbeat failover — the whole point of this scenario —
    // but exactly one restart detection (sequence regression).
    EXPECT_EQ(room.failovers, 0u);
    EXPECT_EQ(room.restartsDetected, 1u);
    EXPECT_EQ(room.rehomed, 1u);
    EXPECT_EQ(room.rehomesSent, 1u);
    // Epoch 5 is the only degraded period, and the new instance's two
    // edges ride the stale cache exactly once each. Double counting
    // would either budget them fresh (0 stale) or degrade them twice
    // (4 events).
    EXPECT_EQ(room.staleReuses, 2u);
    EXPECT_EQ(room.metricsLost, 0u);

    // The replacement replayed the checkpoint and spent exactly its
    // restart period clamped to defaults.
    ASSERT_NE(dep.rack(1), nullptr);
    const auto &rack1 = dep.rack(1)->stats();
    EXPECT_EQ(rack1.rehomesApplied, 1u);
    EXPECT_EQ(rack1.clampedPeriods, 1u);
    EXPECT_EQ(dep.rack(1)
                  ->eventLog()
                  .ofKind(core::EventKind::CheckpointReplayed)
                  .size(),
              1u);
    // The survivor never noticed.
    const auto &rack0 = dep.rack(0)->stats();
    EXPECT_EQ(rack0.defaultBudgets, 0u);
    EXPECT_EQ(rack0.clampedPeriods, 0u);
}

// §4.4/§4.5 soak: 50 seeded kill/restart cycles across both racks
// under 10 % frame loss, in deterministic lockstep over SimTransport.
// The safety audit runs after every epoch (no applied budget may ever
// exceed a device limit or a tree's root budget), every restart must
// re-home within a bounded number of periods, and the shared telemetry
// registry must agree with the harness's own accounting.
TEST(WorkerRuntime, SoakFiftyKillsUnderLossStaysSafe)
{
    net::TransportConfig faults;
    faults.dropRate = 0.1;
    faults.seed = 1234;
    rt::LockstepDeployment dep(kScenario, rt::ChaosBackend::Sim, faults,
                               /*seed=*/7);
    dep.chaos().randomKillRestarts(dep.rackCount(),
                                   /*first_epoch=*/5,
                                   /*last_epoch=*/600,
                                   /*kills=*/50,
                                   /*down_periods=*/4);
    // Busy-spacing can push events past last_epoch; run far enough
    // beyond the final restart for its re-homing to complete.
    std::uint32_t last_event = 0;
    for (const auto &event : dep.chaos().events())
        last_event = std::max(last_event, event.epoch);
    const auto report = dep.run(last_event + 20);

    EXPECT_EQ(report.violations, 0u) << report.firstViolation;
    EXPECT_EQ(report.recoveries, 50u);
    EXPECT_EQ(report.unrecovered, 0u);
    // Down for 4 periods, then the re-homing handshake; 10 % loss can
    // cost a few retries but recovery must stay bounded.
    EXPECT_GT(report.maxRecoveryPeriods, 0u);
    EXPECT_LE(report.maxRecoveryPeriods, 12u);

    // The room observed every kill (as failover or same-window restart
    // detection) and re-homed every replacement.
    const auto &room = dep.room().stats();
    EXPECT_EQ(room.rehomed, 50u);
    EXPECT_GE(room.rehomesSent, 50u);
    EXPECT_GE(room.failovers + room.restartsDetected, 50u);
    EXPECT_GT(room.checkpointsStored, 0u);

    // The telemetry counters are the external interface the ops story
    // rides on; they must match the in-process stats exactly.
    auto &reg = dep.registry();
    const telemetry::Labels room_labels{{"role", "room"},
                                        {"tier", "1"}};
    EXPECT_EQ(reg.counter("capmaestro_rt_rehomed_total", room_labels)
                  .value(),
              static_cast<double>(room.rehomed));
    EXPECT_EQ(reg.counter("capmaestro_rt_failovers_total", room_labels)
                  .value(),
              static_cast<double>(room.failovers));
    EXPECT_EQ(reg.counter("capmaestro_rt_restarts_detected_total",
                          room_labels)
                  .value(),
              static_cast<double>(room.restartsDetected));
    EXPECT_EQ(reg.counter("capmaestro_rt_rehomes_sent_total",
                          room_labels)
                  .value(),
              static_cast<double>(room.rehomesSent));
    // Replays are counted by whichever rack instance applied them; the
    // registry accumulates across instances, so it must cover every
    // re-homing the room completed.
    double replayed = 0.0;
    for (std::size_t r = 0; r < dep.rackCount(); ++r) {
        replayed += reg.counter("capmaestro_rt_rehomes_applied_total",
                                {{"role",
                                  "rack" + std::to_string(r)},
                                 {"tier", "0"}})
                        .value();
    }
    EXPECT_GE(replayed, static_cast<double>(room.rehomed));
}

TEST(WorkerRuntime, RejectsMalformedDeployments)
{
    SKIP_WITHOUT_NET();
    // Roles beyond the room and undersized peer tables are fatal; the
    // checks below only exercise the validating paths that return.
    config::WorkerPeers peers;
    peers.periodMs = kPeriodMs;
    peers.originMs = unixNowMs();
    for (std::uint32_t e = 0; e < kWorkers; ++e)
        peers.peers[e] = net::UdpPeer{"127.0.0.1", 0};
    EXPECT_DEATH(
        {
            rt::WorkerRuntime bad(
                config::loadScenario(util::parseJson(kScenario)), peers,
                /*role=*/7);
        },
        "out of range");

    config::WorkerPeers short_peers = peers;
    short_peers.peers.erase(2);
    EXPECT_DEATH(
        {
            rt::WorkerRuntime bad(
                config::loadScenario(util::parseJson(kScenario)),
                short_peers, /*role=*/0);
        },
        "peer table");
}

// ------------------------------------------- deep-tree lockstep soak

namespace {

/**
 * Depth-4 dual-feed scenario for agg_levels = {1, 2}: per tree,
 * root -> 2 pods -> 2 rows each -> 2 rack breakers each -> 2 supplies
 * each (16 servers, structurally parallel across both feeds). Worker
 * plan: 8 leaf workers (0-7), 4 row aggregators (8-11), 2 pod
 * aggregators (12-13), root (14).
 */
std::string
depth4Scenario()
{
    std::string trees;
    for (int feed = 0; feed < 2; ++feed) {
        std::string pods;
        for (int pod = 0; pod < 2; ++pod) {
            std::string rows;
            for (int row = 0; row < 2; ++row) {
                std::string racks;
                for (int rack = 0; rack < 2; ++rack) {
                    const int base =
                        pod * 8 + row * 4 + rack * 2;
                    racks += std::string(rack ? "," : "")
                             + R"({ "kind": "breaker", "name": "rk)"
                             + std::to_string(pod)
                             + std::to_string(row)
                             + std::to_string(rack)
                             + R"(", "rating": 900, "children": [)"
                             + R"({ "kind": "supply", "server": )"
                             + std::to_string(base)
                             + R"(, "supply": )"
                             + std::to_string(feed) + "},"
                             + R"({ "kind": "supply", "server": )"
                             + std::to_string(base + 1)
                             + R"(, "supply": )"
                             + std::to_string(feed) + "}]}";
                }
                rows += std::string(row ? "," : "")
                        + R"({ "kind": "breaker", "name": "row)"
                        + std::to_string(pod) + std::to_string(row)
                        + R"(", "rating": 1700, "children": [)"
                        + racks + "]}";
            }
            pods += std::string(pod ? "," : "")
                    + R"({ "kind": "breaker", "name": "pod)"
                    + std::to_string(pod)
                    + R"(", "rating": 3300, "children": [)" + rows
                    + "]}";
        }
        trees += std::string(feed ? "," : "") + R"({ "feed": )"
                 + std::to_string(feed) + R"(, "phase": 0, "name": ")"
                 + (feed == 0 ? "X" : "Y") + R"(", "root": { "kind": )"
                 + R"("breaker", "name": "top", "rating": 6400, )"
                 + R"("children": [)" + pods + "]}}";
    }
    std::string servers;
    for (int s = 0; s < 16; ++s) {
        servers += std::string(s ? "," : "") + R"({ "name": "S)"
                   + std::to_string(s) + R"(", "priority": )"
                   + std::to_string(s % 3 == 0 ? 1 : 0)
                   + R"(, "supplies": [{ "share": 0.5 }, )"
                   + R"({ "share": 0.5 }], "workload": { "type": )"
                   + R"("constant", "utilization": 0.6)"
                   + std::to_string(50 + s) + " }}";
    }
    return R"({ "feeds": 2, "trees": [)" + trees + R"(], "servers": [)"
           + servers + R"(], "service": { "policy": "global", )"
           + R"("spo": false }, "budgets": { "totalPerPhase": 6400 }})";
}

} // namespace

TEST(WorkerRuntime, Depth4LossySoakNeverOvershootsAndBoundsStaleReuse)
{
    // 200 control periods of a depth-4 lockstep deployment (15
    // workers, agg_levels = {1, 2}) under 10% seeded frame loss on
    // every hop. The §4.5 claim under sustained degradation:
    //   - no applied edge budget ever exceeds a device limit, and no
    //     tree's applied total ever exceeds its root budget (the
    //     harness audits every epoch);
    //   - stale-metric reuse stays bounded: each (hop, station, tree)
    //     may ride its cache at most staleAgeCapPeriods consecutive
    //     periods before the station is excluded and floors reserved,
    //     so total reuse cannot drift toward one-per-station-period.
    constexpr std::uint64_t kSoakSeed = 4242;
    constexpr std::uint64_t kFaultSeed = 999;
    const std::string repro =
        "reproduce: LockstepDeployment(depth4Scenario(), Sim, "
        "{dropRate=0.1, seed=" + std::to_string(kFaultSeed)
        + "}, seed=" + std::to_string(kSoakSeed)
        + ", agg_levels={1,2}); run(200)";

    net::TransportConfig faults;
    faults.dropRate = 0.10;
    faults.seed = kFaultSeed;
    rt::LockstepDeployment dep(depth4Scenario(), rt::ChaosBackend::Sim,
                               faults, kSoakSeed,
                               /*agg_levels=*/{1, 2});
    ASSERT_EQ(dep.plan().tiers(), 4u);
    ASSERT_EQ(dep.rackCount(), 8u);
    ASSERT_EQ(dep.plan().workers.size(), 15u);

    const auto report = dep.run(200);
    EXPECT_EQ(report.epochsRun, 200u);
    EXPECT_EQ(report.violations, 0u)
        << report.firstViolation << "\n" << repro;

    // Loss was actually exercised on the upstream path...
    std::size_t stale = dep.room().stats().staleReuses;
    for (std::uint32_t ep = 8; ep <= 13; ++ep) {
        ASSERT_NE(dep.aggregator(ep), nullptr);
        stale += dep.aggregator(ep)->stats().staleReuses;
    }
    EXPECT_GT(stale, 0u) << repro;
    // ...and stayed bounded: the receiving hops track 28 (tree,
    // station) links; 10% loss per frame makes one-in-ten periods
    // stale per link the drift-free expectation. 3x that expectation
    // over 200 periods flags any cache that stops expiring.
    EXPECT_LT(stale, 3u * 200u * 28u / 10u) << repro;

    // Downstream silence produced defaults, but budgets still flowed
    // most of the time on every leaf.
    for (std::size_t r = 0; r < dep.rackCount(); ++r) {
        const auto &stats = dep.rack(r)->stats();
        EXPECT_GT(stats.budgetsApplied, 200u) << "rack " << r << "\n"
                                              << repro;
    }
}

// ------------------------------------------------ host epoch resync

// Free-running WorkerHost epochs need a resync story: a process that
// starts after the fleet has already burned through its first deadline
// windows would otherwise stay behind forever — its frames orphaned by
// everyone, everyone's frames held or orphaned by it, zero budgets
// applied for the life of the deployment. The regression below drives
// exactly that: the fleet (every worker but one leaf) runs 8 epochs
// alone, then the late process starts. It must fast-forward through
// the missed epochs via the catch-up path (parent beacons + future
// frames), rejoin the live fleet, and receive real budgets again.
TEST(WorkerHost, LateStarterFastForwardsAndRejoinsTheFleet)
{
    SKIP_WITHOUT_NET();
    // Depth-3 cut of the depth-4 scenario (agg_levels = {1}): 8 leaf
    // workers (0-7), 4 row aggregators (8-11), root (12). Process 1
    // hosts only leaf 7; process 0 hosts everything else.
    const std::string scenario_json = depth4Scenario();
    auto load = [&scenario_json] {
        auto s = config::loadScenario(util::parseJson(scenario_json));
        config::applyTransportJson(
            s.service,
            util::parseJson(R"({"backend":"udp","gatherDeadlineMs":30,
                "budgetDeadlineMs":30,"retryTimeoutMs":10})"));
        return s;
    };
    config::WorkerPeers peers;
    peers.periodMs = kPeriodMs;
    peers.originMs = unixNowMs();
    peers.aggLevels = {1};
    for (std::uint32_t e = 0; e < 13; ++e)
        peers.peers[e] = net::UdpPeer{"127.0.0.1", 0};
    peers.processOf[7] = 1;

    rt::WorkerHost fleet(load(), peers, /*process=*/0, /*seed=*/1);
    rt::WorkerHost late(load(), peers, /*process=*/1, /*seed=*/1);
    // Both hosts bound ephemeral ports at construction (so frames
    // queue for the late starter from epoch 1); cross-wire them.
    auto wire = [](rt::WorkerHost &dst, rt::WorkerHost &src) {
        for (const auto ep : src.endpoints()) {
            dst.udp()->setPeer(
                ep,
                net::UdpPeer{"127.0.0.1", src.udp()->boundPort(ep)});
        }
    };
    wire(fleet, late);
    wire(late, fleet);

    // Phase 1: the fleet runs 8 epochs without leaf 7. Its row
    // aggregator deadline-closes every gather and beacons the silent
    // child each epoch.
    std::thread ahead([&fleet] { fleet.runPeriods(8); });
    ahead.join();
    EXPECT_EQ(fleet.lastEpoch(), 8u);
    EXPECT_GT(fleet.stats().staleReuses + fleet.stats().metricsLost,
              0u);

    // Phase 2: the late process starts 8 epochs behind and must burn
    // through the gap at CPU speed — every missed epoch closes as a
    // catch-up period (degraded, Pcap_min defaults), none waits out
    // the deadline cascade.
    const std::size_t caught = late.runPeriods(6);
    EXPECT_EQ(caught, 6u);
    EXPECT_EQ(late.lastEpoch(), 6u);
    EXPECT_EQ(late.stats().catchUpPeriods, 6u);
    EXPECT_EQ(late.stats().budgetsApplied, 0u);
    EXPECT_GT(late.stats().defaultBudgets, 0u);

    // Phase 3: both run live. The late host closes its last two
    // missed epochs, converges to within one epoch of the fleet, and
    // from then on the deployment is complete again — real budgets
    // must flow to leaf 7, and both hosts must finish every period.
    std::thread rest([&fleet] { fleet.runPeriods(12); });
    const std::size_t rejoined = late.runPeriods(14);
    rest.join();
    EXPECT_EQ(rejoined, 14u);
    EXPECT_EQ(fleet.lastEpoch(), 20u);
    EXPECT_EQ(late.lastEpoch(), 20u);
    EXPECT_GT(late.stats().budgetsApplied, 0u);
}

// ------------------------------------------- elasticity lockstep soak

TEST(WorkerRuntime, ElasticSoakJoinsDrainsAndAggKillStaySafe)
{
    // 200 control periods of the depth-4 deployment under 10% seeded
    // loss, with the membership plane fully exercised: racks 6 and 7
    // start scripted-absent and join online (two-phase adopt through
    // shadow periods), rack 2 drains and is reaped once its committed
    // Left state is acked, and the row aggregator over the joiners
    // (endpoint 11) is killed two epochs into the first join — the
    // adopt must ride out the dead hop via the root's re-broadcast.
    // The §4.5 safety audit must never fire through any of it.
    net::TransportConfig faults;
    faults.dropRate = 0.10;
    faults.seed = 1357;
    rt::LockstepDeployment dep(depth4Scenario(), rt::ChaosBackend::Sim,
                               faults, /*seed=*/2026,
                               /*agg_levels=*/{1, 2});
    ASSERT_EQ(dep.rackCount(), 8u);
    dep.scriptJoiner(6);
    dep.scriptJoiner(7);
    dep.chaos().at(20, rt::ChaosEvent::Kind::Join, 6);
    dep.chaos().at(22, rt::ChaosEvent::Kind::Kill, 11);
    dep.chaos().at(26, rt::ChaosEvent::Kind::Restart, 11);
    dep.chaos().at(50, rt::ChaosEvent::Kind::Join, 7);
    dep.chaos().at(90, rt::ChaosEvent::Kind::Drain, 2);

    const auto report = dep.run(200);
    EXPECT_EQ(report.epochsRun, 200u);
    EXPECT_EQ(report.violations, 0u) << report.firstViolation;
    EXPECT_EQ(report.drained, 1u);

    // End state at the root: the joiners committed Live, the drained
    // rack committed Left, and every announced transition resolved.
    const auto &table = dep.room().membership();
    EXPECT_EQ(table.state(6), membership::UnitState::Live);
    EXPECT_EQ(table.state(7), membership::UnitState::Live);
    EXPECT_EQ(table.state(2), membership::UnitState::Left);
    EXPECT_EQ(table.transitionsPending(), 0u);
    // Two marks-absent (no bump), then join announce + commit twice
    // and drain announce + commit once: generation 1 + 6.
    EXPECT_EQ(dep.room().membershipGeneration(), 7u);

    // The joiners are running and converged to the root's view...
    ASSERT_NE(dep.rack(6), nullptr);
    ASSERT_NE(dep.rack(7), nullptr);
    EXPECT_EQ(dep.rack(6)->membershipGeneration(),
              dep.room().membershipGeneration());
    EXPECT_TRUE(dep.rack(6)->membership().isLive(6));
    EXPECT_TRUE(dep.rack(7)->membership().isLive(7));
    // ...the drained rack was reaped, and the survivors kept getting
    // real budgets throughout.
    EXPECT_EQ(dep.rack(2), nullptr);
    for (const std::size_t r : {0u, 1u, 3u, 4u, 5u}) {
        EXPECT_GT(dep.rack(r)->stats().budgetsApplied, 190u)
            << "rack " << r;
    }

    // Protocol accounting: the root announced and committed three
    // transitions, broadcast deltas, and collected acks; the joiners
    // ran clamped shadow periods before their commits.
    const auto &room = dep.room().stats();
    EXPECT_EQ(room.membershipCommits, 3u);
    EXPECT_GT(room.membershipDeltasSent, 0u);
    EXPECT_GT(dep.rack(6)->stats().membershipAcksSent, 0u);
    EXPECT_GT(dep.rack(6)->stats().membershipDeltasApplied, 0u);
    EXPECT_GT(dep.rack(6)->stats().shadowPeriods, 0u);

    // Telemetry mirrors the in-process stats (the ops interface).
    const telemetry::Labels room_labels{{"role", "room"},
                                        {"tier", "3"}};
    EXPECT_EQ(dep.registry()
                  .counter("capmaestro_membership_commits_total",
                           room_labels)
                  .value(),
              static_cast<double>(room.membershipCommits));
    EXPECT_EQ(dep.registry()
                  .gauge("capmaestro_membership_generation",
                         room_labels)
                  .value(),
              7.0);
}
