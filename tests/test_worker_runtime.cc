/**
 * @file
 * Tests for the multi-process worker runtime (rt/worker_runtime), run
 * as threads sharing one address space but communicating only through
 * real 127.0.0.1 UDP sockets — the same code path capmaestro_worker
 * daemons execute, minus fork/exec. Covers the healthy steady state
 * (every edge budgeted, no degraded decisions) and the §4.5 failure
 * story: a killed rack worker is detected by heartbeat silence, the
 * room logs a WorkerFailover event, and the surviving rack keeps
 * receiving real budgets throughout.
 *
 * Set CAPMAESTRO_NO_NET=1 to skip (every test binds UDP sockets).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "config/loader.hh"
#include "core/events.hh"
#include "rt/chaos.hh"
#include "rt/worker_runtime.hh"
#include "util/json.hh"

using namespace capmaestro;

namespace {

#define SKIP_WITHOUT_NET()                                            \
    do {                                                              \
        if (std::getenv("CAPMAESTRO_NO_NET") != nullptr)              \
            GTEST_SKIP() << "CAPMAESTRO_NO_NET is set";               \
    } while (0)

/** Dual-feed testbed whose partitioning rule yields two rack workers:
 *  leftCB (servers 0, 2) is rack 0 and rightCB (servers 1, 3) is rack
 *  1 on both trees; the room is endpoint 2. */
const char *kScenario = R"({
  "feeds": 2,
  "trees": [
    {
      "feed": 0, "phase": 0, "name": "X",
      "root": {
        "kind": "breaker", "name": "topCB", "rating": 1400,
        "children": [
          { "kind": "breaker", "name": "leftCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 0, "supply": 0 },
              { "kind": "supply", "server": 2, "supply": 0 } ] },
          { "kind": "breaker", "name": "rightCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 1, "supply": 0 },
              { "kind": "supply", "server": 3, "supply": 0 } ] }
        ]
      }
    },
    {
      "feed": 1, "phase": 0, "name": "Y",
      "root": {
        "kind": "breaker", "name": "topCB", "rating": 1400,
        "children": [
          { "kind": "breaker", "name": "leftCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 0, "supply": 1 },
              { "kind": "supply", "server": 2, "supply": 1 } ] },
          { "kind": "breaker", "name": "rightCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 1, "supply": 1 },
              { "kind": "supply", "server": 3, "supply": 1 } ] }
        ]
      }
    }
  ],
  "servers": [
    { "name": "SA", "priority": 1,
      "supplies": [ { "share": 0.5 }, { "share": 0.5 } ],
      "workload": { "type": "constant", "utilization": 0.684 } },
    { "name": "SB",
      "supplies": [ { "share": 0.5 }, { "share": 0.5 } ],
      "workload": { "type": "constant", "utilization": 0.686 } },
    { "name": "SC",
      "supplies": [ { "share": 0.53 }, { "share": 0.47 } ],
      "workload": { "type": "constant", "utilization": 0.722 } },
    { "name": "SD",
      "supplies": [ { "share": 0.46 }, { "share": 0.54 } ],
      "workload": { "type": "constant", "utilization": 0.734 } }
  ],
  "service": { "policy": "global", "spo": false },
  "budgets": { "totalPerPhase": 1400 }
})";

constexpr double kPeriodMs = 300.0;
constexpr std::size_t kWorkers = 3; // rack 0, rack 1, room

std::uint64_t
unixNowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

config::LoadedScenario
loadScenarioForWorker()
{
    auto scenario = config::loadScenario(util::parseJson(kScenario));
    // Deadlines well under the period, generous for loopback: the
    // protocol phases consume 160 ms of each 300 ms window.
    config::applyTransportJson(
        scenario.service,
        util::parseJson(R"({"backend":"udp","gatherDeadlineMs":80,
            "budgetDeadlineMs":80,"retryTimeoutMs":20})"));
    return scenario;
}

/** Build all three runtimes on ephemeral ports and cross-wire them. */
std::vector<std::unique_ptr<rt::WorkerRuntime>>
makeDeployment()
{
    config::WorkerPeers peers;
    peers.periodMs = kPeriodMs;
    peers.originMs = unixNowMs() + 200; // epoch 1 starts shortly
    for (std::uint32_t e = 0; e < kWorkers; ++e)
        peers.peers[e] = net::UdpPeer{"127.0.0.1", 0};

    std::vector<std::unique_ptr<rt::WorkerRuntime>> workers;
    for (std::uint32_t role = 0; role < kWorkers; ++role) {
        workers.push_back(std::make_unique<rt::WorkerRuntime>(
            loadScenarioForWorker(), peers, role, /*seed=*/1));
    }
    for (std::uint32_t a = 0; a < kWorkers; ++a) {
        for (std::uint32_t b = 0; b < kWorkers; ++b) {
            if (a == b)
                continue;
            workers[a]->udp()->setPeer(
                b, net::UdpPeer{"127.0.0.1",
                                workers[b]->udp()->boundPort(b)});
        }
    }
    return workers;
}

/** Run every worker for its period count on its own thread. */
void
runAll(std::vector<std::unique_ptr<rt::WorkerRuntime>> &workers,
       const std::vector<std::size_t> &periods)
{
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < workers.size(); ++i) {
        threads.emplace_back([&workers, &periods, i] {
            workers[i]->runPeriods(periods[i]);
        });
    }
    for (auto &thread : threads)
        thread.join();
}

} // namespace

TEST(WorkerRuntime, RolesPartitionTheDeployment)
{
    SKIP_WITHOUT_NET();
    auto workers = makeDeployment();
    EXPECT_EQ(workers[0]->rackCount(), 2u);
    EXPECT_FALSE(workers[0]->isRoom());
    EXPECT_FALSE(workers[1]->isRoom());
    EXPECT_TRUE(workers[2]->isRoom());
}

TEST(WorkerRuntime, HealthyDeploymentBudgetsEveryEdgeEveryPeriod)
{
    SKIP_WITHOUT_NET();
    auto workers = makeDeployment();
    runAll(workers, {3, 3, 3});

    for (std::size_t rack = 0; rack < 2; ++rack) {
        const auto &stats = workers[rack]->stats();
        EXPECT_EQ(stats.periodsRun, 3u) << "rack " << rack;
        // Two trees -> two edges per rack, budgeted every period.
        EXPECT_EQ(stats.budgetsApplied, 6u) << "rack " << rack;
        EXPECT_EQ(stats.defaultBudgets, 0u) << "rack " << rack;
        EXPECT_EQ(stats.corruptFrames, 0u) << "rack " << rack;
        EXPECT_TRUE(workers[rack]->eventLog().events().empty())
            << "rack " << rack;
    }
    const auto &room = workers[2]->stats();
    EXPECT_EQ(room.periodsRun, 3u);
    EXPECT_EQ(room.staleReuses, 0u);
    EXPECT_EQ(room.metricsLost, 0u);
    EXPECT_EQ(room.failovers, 0u);
    EXPECT_TRUE(workers[2]->eventLog().events().empty());

    // Rack 0 homes servers 0 and 2 and actually capped them with the
    // budgets the room computed.
    const auto sa = workers[0]->lastServerBudgets(0);
    ASSERT_EQ(sa.size(), 2u);
    EXPECT_GT(sa[0] + sa[1], 0.0);
    EXPECT_TRUE(workers[0]->lastServerBudgets(1).empty());
    const auto sb = workers[1]->lastServerBudgets(1);
    ASSERT_EQ(sb.size(), 2u);
    EXPECT_GT(sb[0] + sb[1], 0.0);
}

TEST(WorkerRuntime, KilledRackIsDetectedAndSurvivorsKeepRunning)
{
    SKIP_WITHOUT_NET();
    auto workers = makeDeployment();
    // Rack 1 dies after 2 periods (its thread simply exits, as if the
    // process were killed); rack 0 and the room run 8. With
    // heartbeatFailAfter=3 the room must declare rack 1 dead around
    // epoch 5 and keep budgeting rack 0 throughout.
    runAll(workers, {8, 2, 8});

    const auto &room = workers[2]->stats();
    EXPECT_EQ(room.failovers, 1u);
    const auto failovers = workers[2]->eventLog().ofKind(
        core::EventKind::WorkerFailover);
    ASSERT_EQ(failovers.size(), 1u);
    EXPECT_EQ(failovers[0].subject, "worker1");
    EXPECT_EQ(failovers[0].value, -1.0);
    // Rack 1's edges rode the §4.5 degradation: stale reuse while the
    // cache was fresh enough, metrics-lost afterwards.
    EXPECT_GT(room.staleReuses, 0u);
    EXPECT_GT(room.metricsLost, 0u);

    // The survivor never degraded to default budgets.
    const auto &rack0 = workers[0]->stats();
    EXPECT_EQ(rack0.periodsRun, 8u);
    EXPECT_EQ(rack0.budgetsApplied, 16u);
    EXPECT_EQ(rack0.defaultBudgets, 0u);
    EXPECT_TRUE(workers[0]->eventLog().events().empty());
}

TEST(WorkerRuntime, RequestStopExitsPromptly)
{
    SKIP_WITHOUT_NET();
    auto workers = makeDeployment();
    auto &room = *workers[2];
    std::thread runner([&room] { room.runPeriods(1000); });
    std::this_thread::sleep_for(std::chrono::milliseconds(450));
    room.requestStop();
    const auto asked = std::chrono::steady_clock::now();
    runner.join();
    const auto took =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - asked)
            .count();
    // One period (300 ms) plus slack: the stop flag is honored at the
    // next boundary check, never after another full period.
    EXPECT_LT(took, 2000);
    EXPECT_LT(room.stats().periodsRun, 1000u);
}

// Regression: a rack worker that dies and is restarted *within the
// same epoch window* never misses a heartbeat, so the room's liveness
// counter alone cannot see the restart. The sequence-regression check
// must still catch it, and the new instance must be degraded to the
// stale-cache path — not double-counted as both the dead instance
// (stale) and a live one (fresh) in the same window. The fresh-plant
// numbers of a reincarnated process would otherwise poison the room's
// allocation. Runs in deterministic lockstep over SimTransport, so the
// exact counter values are asserted, not bounded.
TEST(WorkerRuntime, SameEpochRestartIsNotDoubleCounted)
{
    rt::LockstepDeployment dep(kScenario, rt::ChaosBackend::Sim,
                               net::TransportConfig{}, /*seed=*/42);
    ASSERT_EQ(dep.rackCount(), 2u);
    // Kill and restart rack 1 at the same epoch: the replacement steps
    // in epoch 5 as if the crash-and-respawn fit inside one window.
    dep.chaos().at(5, rt::ChaosEvent::Kind::Kill, 1);
    dep.chaos().at(5, rt::ChaosEvent::Kind::Restart, 1);
    const auto report = dep.run(10);

    EXPECT_EQ(report.violations, 0u) << report.firstViolation;
    EXPECT_EQ(report.recoveries, 1u);
    EXPECT_EQ(report.unrecovered, 0u);
    // Restart at 5, re-homed by 6: two periods end to end.
    EXPECT_EQ(report.maxRecoveryPeriods, 2u);

    const auto &room = dep.room().stats();
    // Never a heartbeat failover — the whole point of this scenario —
    // but exactly one restart detection (sequence regression).
    EXPECT_EQ(room.failovers, 0u);
    EXPECT_EQ(room.restartsDetected, 1u);
    EXPECT_EQ(room.rehomed, 1u);
    EXPECT_EQ(room.rehomesSent, 1u);
    // Epoch 5 is the only degraded period, and the new instance's two
    // edges ride the stale cache exactly once each. Double counting
    // would either budget them fresh (0 stale) or degrade them twice
    // (4 events).
    EXPECT_EQ(room.staleReuses, 2u);
    EXPECT_EQ(room.metricsLost, 0u);

    // The replacement replayed the checkpoint and spent exactly its
    // restart period clamped to defaults.
    ASSERT_NE(dep.rack(1), nullptr);
    const auto &rack1 = dep.rack(1)->stats();
    EXPECT_EQ(rack1.rehomesApplied, 1u);
    EXPECT_EQ(rack1.clampedPeriods, 1u);
    EXPECT_EQ(dep.rack(1)
                  ->eventLog()
                  .ofKind(core::EventKind::CheckpointReplayed)
                  .size(),
              1u);
    // The survivor never noticed.
    const auto &rack0 = dep.rack(0)->stats();
    EXPECT_EQ(rack0.defaultBudgets, 0u);
    EXPECT_EQ(rack0.clampedPeriods, 0u);
}

// §4.4/§4.5 soak: 50 seeded kill/restart cycles across both racks
// under 10 % frame loss, in deterministic lockstep over SimTransport.
// The safety audit runs after every epoch (no applied budget may ever
// exceed a device limit or a tree's root budget), every restart must
// re-home within a bounded number of periods, and the shared telemetry
// registry must agree with the harness's own accounting.
TEST(WorkerRuntime, SoakFiftyKillsUnderLossStaysSafe)
{
    net::TransportConfig faults;
    faults.dropRate = 0.1;
    faults.seed = 1234;
    rt::LockstepDeployment dep(kScenario, rt::ChaosBackend::Sim, faults,
                               /*seed=*/7);
    dep.chaos().randomKillRestarts(dep.rackCount(),
                                   /*first_epoch=*/5,
                                   /*last_epoch=*/600,
                                   /*kills=*/50,
                                   /*down_periods=*/4);
    // Busy-spacing can push events past last_epoch; run far enough
    // beyond the final restart for its re-homing to complete.
    std::uint32_t last_event = 0;
    for (const auto &event : dep.chaos().events())
        last_event = std::max(last_event, event.epoch);
    const auto report = dep.run(last_event + 20);

    EXPECT_EQ(report.violations, 0u) << report.firstViolation;
    EXPECT_EQ(report.recoveries, 50u);
    EXPECT_EQ(report.unrecovered, 0u);
    // Down for 4 periods, then the re-homing handshake; 10 % loss can
    // cost a few retries but recovery must stay bounded.
    EXPECT_GT(report.maxRecoveryPeriods, 0u);
    EXPECT_LE(report.maxRecoveryPeriods, 12u);

    // The room observed every kill (as failover or same-window restart
    // detection) and re-homed every replacement.
    const auto &room = dep.room().stats();
    EXPECT_EQ(room.rehomed, 50u);
    EXPECT_GE(room.rehomesSent, 50u);
    EXPECT_GE(room.failovers + room.restartsDetected, 50u);
    EXPECT_GT(room.checkpointsStored, 0u);

    // The telemetry counters are the external interface the ops story
    // rides on; they must match the in-process stats exactly.
    auto &reg = dep.registry();
    const telemetry::Labels room_labels{{"role", "room"}};
    EXPECT_EQ(reg.counter("capmaestro_rt_rehomed_total", room_labels)
                  .value(),
              static_cast<double>(room.rehomed));
    EXPECT_EQ(reg.counter("capmaestro_rt_failovers_total", room_labels)
                  .value(),
              static_cast<double>(room.failovers));
    EXPECT_EQ(reg.counter("capmaestro_rt_restarts_detected_total",
                          room_labels)
                  .value(),
              static_cast<double>(room.restartsDetected));
    EXPECT_EQ(reg.counter("capmaestro_rt_rehomes_sent_total",
                          room_labels)
                  .value(),
              static_cast<double>(room.rehomesSent));
    // Replays are counted by whichever rack instance applied them; the
    // registry accumulates across instances, so it must cover every
    // re-homing the room completed.
    double replayed = 0.0;
    for (std::size_t r = 0; r < dep.rackCount(); ++r) {
        replayed += reg.counter("capmaestro_rt_rehomes_applied_total",
                                {{"role",
                                  "rack" + std::to_string(r)}})
                        .value();
    }
    EXPECT_GE(replayed, static_cast<double>(room.rehomed));
}

TEST(WorkerRuntime, RejectsMalformedDeployments)
{
    SKIP_WITHOUT_NET();
    // Roles beyond the room and undersized peer tables are fatal; the
    // checks below only exercise the validating paths that return.
    config::WorkerPeers peers;
    peers.periodMs = kPeriodMs;
    peers.originMs = unixNowMs();
    for (std::uint32_t e = 0; e < kWorkers; ++e)
        peers.peers[e] = net::UdpPeer{"127.0.0.1", 0};
    EXPECT_DEATH(
        {
            rt::WorkerRuntime bad(
                config::loadScenario(util::parseJson(kScenario)), peers,
                /*role=*/7);
        },
        "out of range");

    config::WorkerPeers short_peers = peers;
    short_peers.peers.erase(2);
    EXPECT_DEATH(
        {
            rt::WorkerRuntime bad(
                config::loadScenario(util::parseJson(kScenario)),
                short_peers, /*role=*/0);
        },
        "peer table");
}
