/**
 * @file
 * Tests for the multi-process worker runtime (rt/worker_runtime), run
 * as threads sharing one address space but communicating only through
 * real 127.0.0.1 UDP sockets — the same code path capmaestro_worker
 * daemons execute, minus fork/exec. Covers the healthy steady state
 * (every edge budgeted, no degraded decisions) and the §4.5 failure
 * story: a killed rack worker is detected by heartbeat silence, the
 * room logs a WorkerFailover event, and the surviving rack keeps
 * receiving real budgets throughout.
 *
 * Set CAPMAESTRO_NO_NET=1 to skip (every test binds UDP sockets).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "config/loader.hh"
#include "core/events.hh"
#include "rt/worker_runtime.hh"
#include "util/json.hh"

using namespace capmaestro;

namespace {

#define SKIP_WITHOUT_NET()                                            \
    do {                                                              \
        if (std::getenv("CAPMAESTRO_NO_NET") != nullptr)              \
            GTEST_SKIP() << "CAPMAESTRO_NO_NET is set";               \
    } while (0)

/** Dual-feed testbed whose partitioning rule yields two rack workers:
 *  leftCB (servers 0, 2) is rack 0 and rightCB (servers 1, 3) is rack
 *  1 on both trees; the room is endpoint 2. */
const char *kScenario = R"({
  "feeds": 2,
  "trees": [
    {
      "feed": 0, "phase": 0, "name": "X",
      "root": {
        "kind": "breaker", "name": "topCB", "rating": 1400,
        "children": [
          { "kind": "breaker", "name": "leftCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 0, "supply": 0 },
              { "kind": "supply", "server": 2, "supply": 0 } ] },
          { "kind": "breaker", "name": "rightCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 1, "supply": 0 },
              { "kind": "supply", "server": 3, "supply": 0 } ] }
        ]
      }
    },
    {
      "feed": 1, "phase": 0, "name": "Y",
      "root": {
        "kind": "breaker", "name": "topCB", "rating": 1400,
        "children": [
          { "kind": "breaker", "name": "leftCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 0, "supply": 1 },
              { "kind": "supply", "server": 2, "supply": 1 } ] },
          { "kind": "breaker", "name": "rightCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 1, "supply": 1 },
              { "kind": "supply", "server": 3, "supply": 1 } ] }
        ]
      }
    }
  ],
  "servers": [
    { "name": "SA", "priority": 1,
      "supplies": [ { "share": 0.5 }, { "share": 0.5 } ],
      "workload": { "type": "constant", "utilization": 0.684 } },
    { "name": "SB",
      "supplies": [ { "share": 0.5 }, { "share": 0.5 } ],
      "workload": { "type": "constant", "utilization": 0.686 } },
    { "name": "SC",
      "supplies": [ { "share": 0.53 }, { "share": 0.47 } ],
      "workload": { "type": "constant", "utilization": 0.722 } },
    { "name": "SD",
      "supplies": [ { "share": 0.46 }, { "share": 0.54 } ],
      "workload": { "type": "constant", "utilization": 0.734 } }
  ],
  "service": { "policy": "global", "spo": false },
  "budgets": { "totalPerPhase": 1400 }
})";

constexpr double kPeriodMs = 300.0;
constexpr std::size_t kWorkers = 3; // rack 0, rack 1, room

std::uint64_t
unixNowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

config::LoadedScenario
loadScenarioForWorker()
{
    auto scenario = config::loadScenario(util::parseJson(kScenario));
    // Deadlines well under the period, generous for loopback: the
    // protocol phases consume 160 ms of each 300 ms window.
    config::applyTransportJson(
        scenario.service,
        util::parseJson(R"({"backend":"udp","gatherDeadlineMs":80,
            "budgetDeadlineMs":80,"retryTimeoutMs":20})"));
    return scenario;
}

/** Build all three runtimes on ephemeral ports and cross-wire them. */
std::vector<std::unique_ptr<rt::WorkerRuntime>>
makeDeployment()
{
    config::WorkerPeers peers;
    peers.periodMs = kPeriodMs;
    peers.originMs = unixNowMs() + 200; // epoch 1 starts shortly
    for (std::uint32_t e = 0; e < kWorkers; ++e)
        peers.peers[e] = net::UdpPeer{"127.0.0.1", 0};

    std::vector<std::unique_ptr<rt::WorkerRuntime>> workers;
    for (std::uint32_t role = 0; role < kWorkers; ++role) {
        workers.push_back(std::make_unique<rt::WorkerRuntime>(
            loadScenarioForWorker(), peers, role, /*seed=*/1));
    }
    for (std::uint32_t a = 0; a < kWorkers; ++a) {
        for (std::uint32_t b = 0; b < kWorkers; ++b) {
            if (a == b)
                continue;
            workers[a]->transport().setPeer(
                b, net::UdpPeer{"127.0.0.1",
                                workers[b]->transport().boundPort(b)});
        }
    }
    return workers;
}

/** Run every worker for its period count on its own thread. */
void
runAll(std::vector<std::unique_ptr<rt::WorkerRuntime>> &workers,
       const std::vector<std::size_t> &periods)
{
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < workers.size(); ++i) {
        threads.emplace_back([&workers, &periods, i] {
            workers[i]->runPeriods(periods[i]);
        });
    }
    for (auto &thread : threads)
        thread.join();
}

} // namespace

TEST(WorkerRuntime, RolesPartitionTheDeployment)
{
    SKIP_WITHOUT_NET();
    auto workers = makeDeployment();
    EXPECT_EQ(workers[0]->rackCount(), 2u);
    EXPECT_FALSE(workers[0]->isRoom());
    EXPECT_FALSE(workers[1]->isRoom());
    EXPECT_TRUE(workers[2]->isRoom());
}

TEST(WorkerRuntime, HealthyDeploymentBudgetsEveryEdgeEveryPeriod)
{
    SKIP_WITHOUT_NET();
    auto workers = makeDeployment();
    runAll(workers, {3, 3, 3});

    for (std::size_t rack = 0; rack < 2; ++rack) {
        const auto &stats = workers[rack]->stats();
        EXPECT_EQ(stats.periodsRun, 3u) << "rack " << rack;
        // Two trees -> two edges per rack, budgeted every period.
        EXPECT_EQ(stats.budgetsApplied, 6u) << "rack " << rack;
        EXPECT_EQ(stats.defaultBudgets, 0u) << "rack " << rack;
        EXPECT_EQ(stats.corruptFrames, 0u) << "rack " << rack;
        EXPECT_TRUE(workers[rack]->eventLog().events().empty())
            << "rack " << rack;
    }
    const auto &room = workers[2]->stats();
    EXPECT_EQ(room.periodsRun, 3u);
    EXPECT_EQ(room.staleReuses, 0u);
    EXPECT_EQ(room.metricsLost, 0u);
    EXPECT_EQ(room.failovers, 0u);
    EXPECT_TRUE(workers[2]->eventLog().events().empty());

    // Rack 0 homes servers 0 and 2 and actually capped them with the
    // budgets the room computed.
    const auto sa = workers[0]->lastServerBudgets(0);
    ASSERT_EQ(sa.size(), 2u);
    EXPECT_GT(sa[0] + sa[1], 0.0);
    EXPECT_TRUE(workers[0]->lastServerBudgets(1).empty());
    const auto sb = workers[1]->lastServerBudgets(1);
    ASSERT_EQ(sb.size(), 2u);
    EXPECT_GT(sb[0] + sb[1], 0.0);
}

TEST(WorkerRuntime, KilledRackIsDetectedAndSurvivorsKeepRunning)
{
    SKIP_WITHOUT_NET();
    auto workers = makeDeployment();
    // Rack 1 dies after 2 periods (its thread simply exits, as if the
    // process were killed); rack 0 and the room run 8. With
    // heartbeatFailAfter=3 the room must declare rack 1 dead around
    // epoch 5 and keep budgeting rack 0 throughout.
    runAll(workers, {8, 2, 8});

    const auto &room = workers[2]->stats();
    EXPECT_EQ(room.failovers, 1u);
    const auto failovers = workers[2]->eventLog().ofKind(
        core::EventKind::WorkerFailover);
    ASSERT_EQ(failovers.size(), 1u);
    EXPECT_EQ(failovers[0].subject, "worker1");
    EXPECT_EQ(failovers[0].value, -1.0);
    // Rack 1's edges rode the §4.5 degradation: stale reuse while the
    // cache was fresh enough, metrics-lost afterwards.
    EXPECT_GT(room.staleReuses, 0u);
    EXPECT_GT(room.metricsLost, 0u);

    // The survivor never degraded to default budgets.
    const auto &rack0 = workers[0]->stats();
    EXPECT_EQ(rack0.periodsRun, 8u);
    EXPECT_EQ(rack0.budgetsApplied, 16u);
    EXPECT_EQ(rack0.defaultBudgets, 0u);
    EXPECT_TRUE(workers[0]->eventLog().events().empty());
}

TEST(WorkerRuntime, RequestStopExitsPromptly)
{
    SKIP_WITHOUT_NET();
    auto workers = makeDeployment();
    auto &room = *workers[2];
    std::thread runner([&room] { room.runPeriods(1000); });
    std::this_thread::sleep_for(std::chrono::milliseconds(450));
    room.requestStop();
    const auto asked = std::chrono::steady_clock::now();
    runner.join();
    const auto took =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - asked)
            .count();
    // One period (300 ms) plus slack: the stop flag is honored at the
    // next boundary check, never after another full period.
    EXPECT_LT(took, 2000);
    EXPECT_LT(room.stats().periodsRun, 1000u);
}

TEST(WorkerRuntime, RejectsMalformedDeployments)
{
    SKIP_WITHOUT_NET();
    // Roles beyond the room and undersized peer tables are fatal; the
    // checks below only exercise the validating paths that return.
    config::WorkerPeers peers;
    peers.periodMs = kPeriodMs;
    peers.originMs = unixNowMs();
    for (std::uint32_t e = 0; e < kWorkers; ++e)
        peers.peers[e] = net::UdpPeer{"127.0.0.1", 0};
    EXPECT_DEATH(
        {
            rt::WorkerRuntime bad(
                config::loadScenario(util::parseJson(kScenario)), peers,
                /*role=*/7);
        },
        "out of range");

    config::WorkerPeers short_peers = peers;
    short_peers.peers.erase(2);
    EXPECT_DEATH(
        {
            rt::WorkerRuntime bad(
                config::loadScenario(util::parseJson(kScenario)),
                short_peers, /*role=*/0);
        },
        "peer table");
}
