/**
 * @file
 * Control-tree tests: the paper's Figure 2 / Table 1 worked example under
 * all three policies, hierarchical limit safety, dead leaves, and metric
 * propagation through multiple levels.
 */

#include <gtest/gtest.h>

#include <memory>

#include "control/control_tree.hh"
#include "topology/power_tree.hh"
#include "util/random.hh"

using namespace capmaestro;
using ctrl::ControlTree;
using ctrl::LeafInput;
using ctrl::TreePolicy;

namespace {

/** Figure 2: top CB (1400 W) over left/right CBs (750 W), 2 servers each. */
std::unique_ptr<topo::PowerTree>
makeFig2Tree()
{
    auto tree = std::make_unique<topo::PowerTree>(0, 0, "fig2");
    const auto top =
        tree->makeRoot(topo::NodeKind::Breaker, "topCB", 1400.0);
    const auto left =
        tree->addChild(top, topo::NodeKind::Breaker, "leftCB", 750.0);
    const auto right =
        tree->addChild(top, topo::NodeKind::Breaker, "rightCB", 750.0);
    tree->addSupplyPort(left, "SA.0", {0, 0});
    tree->addSupplyPort(left, "SB.0", {1, 0});
    tree->addSupplyPort(right, "SC.0", {2, 0});
    tree->addSupplyPort(right, "SD.0", {3, 0});
    return tree;
}

/** Table 1 server inputs: 430 W demand, 270 W floor, SA high priority. */
LeafInput
table1Input(bool high_priority)
{
    LeafInput in;
    in.priority = high_priority ? 1 : 0;
    in.capMin = 270.0;
    in.demand = 430.0;
    in.constraint = 490.0;
    in.live = true;
    return in;
}

void
setTable1Inputs(ControlTree &ct)
{
    ct.setLeafInput({0, 0}, table1Input(true));
    ct.setLeafInput({1, 0}, table1Input(false));
    ct.setLeafInput({2, 0}, table1Input(false));
    ct.setLeafInput({3, 0}, table1Input(false));
}

} // namespace

TEST(ControlTree, Table1GlobalPriority)
{
    auto topo_tree = makeFig2Tree();
    ControlTree ct(*topo_tree, TreePolicy::globalPriority());
    setTable1Inputs(ct);
    ct.gather();
    const auto outcome = ct.allocate(1240.0);
    EXPECT_TRUE(outcome.feasible);

    // Paper Table 1, "Budget with Global Priority": 430/270/270/270.
    EXPECT_NEAR(ct.leafBudget({0, 0}), 430.0, 0.5);
    EXPECT_NEAR(ct.leafBudget({1, 0}), 270.0, 0.5);
    EXPECT_NEAR(ct.leafBudget({2, 0}), 270.0, 0.5);
    EXPECT_NEAR(ct.leafBudget({3, 0}), 270.0, 0.5);
}

TEST(ControlTree, Table1LocalPriority)
{
    auto topo_tree = makeFig2Tree();
    ControlTree ct(*topo_tree, TreePolicy::localPriority());
    setTable1Inputs(ct);
    ct.gather();
    ct.allocate(1240.0);

    // Paper Table 1, "Budget with Local Priority": 350/270/310/310.
    // The top CB splits 620/620 because priorities are invisible to it;
    // the left CB can then only shift SB's surplus to SA.
    EXPECT_NEAR(ct.leafBudget({0, 0}), 350.0, 0.5);
    EXPECT_NEAR(ct.leafBudget({1, 0}), 270.0, 0.5);
    EXPECT_NEAR(ct.leafBudget({2, 0}), 310.0, 0.5);
    EXPECT_NEAR(ct.leafBudget({3, 0}), 310.0, 0.5);
}

TEST(ControlTree, Table1NoPriority)
{
    auto topo_tree = makeFig2Tree();
    ControlTree ct(*topo_tree, TreePolicy::noPriority());
    setTable1Inputs(ct);
    ct.gather();
    ct.allocate(1240.0);

    // Equal demands, priority-blind: everyone gets 310 W.
    for (std::int32_t s = 0; s < 4; ++s)
        EXPECT_NEAR(ct.leafBudget({s, 0}), 310.0, 0.5);
}

TEST(ControlTree, BreakerLimitsRespected)
{
    auto topo_tree = makeFig2Tree();
    ControlTree ct(*topo_tree, TreePolicy::globalPriority());
    // All four high priority: the left/right CB limits (750 W) bind.
    for (std::int32_t s = 0; s < 4; ++s)
        ct.setLeafInput({s, 0}, table1Input(true));
    ct.gather();
    ct.allocate(5000.0); // huge budget: limits must still hold

    const auto &top = topo_tree->node(topo_tree->root());
    const Watts left_budget = ct.nodeBudget(top.children[0]);
    const Watts right_budget = ct.nodeBudget(top.children[1]);
    EXPECT_LE(left_budget, 750.0 + 1e-6);
    EXPECT_LE(right_budget, 750.0 + 1e-6);
    // Root budget itself clips at the top CB limit.
    EXPECT_LE(left_budget + right_budget, 1400.0 + 1e-6);
}

TEST(ControlTree, ChildBudgetsNeverExceedParent)
{
    auto topo_tree = makeFig2Tree();
    ControlTree ct(*topo_tree, TreePolicy::globalPriority());
    util::Rng rng(31);
    for (int trial = 0; trial < 100; ++trial) {
        for (std::int32_t s = 0; s < 4; ++s) {
            LeafInput in;
            in.priority = static_cast<Priority>(rng.uniformInt(0, 2));
            in.capMin = rng.uniform(100.0, 280.0);
            in.demand = in.capMin + rng.uniform(0.0, 250.0);
            in.constraint = in.demand + rng.uniform(0.0, 80.0);
            ct.setLeafInput({s, 0}, in);
        }
        ct.gather();
        ct.allocate(rng.uniform(1000.0, 2000.0));

        const auto &top = topo_tree->node(topo_tree->root());
        for (const auto cb : top.children) {
            Watts child_sum = 0.0;
            for (const auto leaf : topo_tree->node(cb).children)
                child_sum += ct.nodeBudget(leaf);
            EXPECT_LE(child_sum, ct.nodeBudget(cb) + 1e-6);
            EXPECT_LE(child_sum, topo_tree->node(cb).limit() + 1e-6);
        }
    }
}

TEST(ControlTree, DeadLeafGetsNothing)
{
    auto topo_tree = makeFig2Tree();
    ControlTree ct(*topo_tree, TreePolicy::globalPriority());
    setTable1Inputs(ct);
    LeafInput dead;
    dead.live = false;
    ct.setLeafInput({1, 0}, dead);
    ct.gather();
    ct.allocate(1240.0);
    EXPECT_DOUBLE_EQ(ct.leafBudget({1, 0}), 0.0);
    // With SB gone there is surplus: SA's request (430) is met in full and
    // step 4 tops it up to its constraint (490) as headroom.
    EXPECT_NEAR(ct.leafBudget({0, 0}), 490.0, 0.5);
    // The leftover after SA contests between SC and SD equally.
    EXPECT_NEAR(ct.leafBudget({2, 0}), 375.0, 0.5);
    EXPECT_NEAR(ct.leafBudget({3, 0}), 375.0, 0.5);
}

TEST(ControlTree, UninitializedLeavesAreDead)
{
    auto topo_tree = makeFig2Tree();
    ControlTree ct(*topo_tree, TreePolicy::globalPriority());
    ct.gather(); // no inputs set at all
    const auto outcome = ct.allocate(1240.0);
    EXPECT_TRUE(outcome.feasible);
    for (std::int32_t s = 0; s < 4; ++s)
        EXPECT_DOUBLE_EQ(ct.leafBudget({s, 0}), 0.0);
    EXPECT_NEAR(outcome.unallocatedAtRoot, 1240.0, 1e-6);
}

TEST(ControlTree, ClearAllLeaves)
{
    auto topo_tree = makeFig2Tree();
    ControlTree ct(*topo_tree, TreePolicy::globalPriority());
    setTable1Inputs(ct);
    ct.clearAllLeaves();
    ct.gather();
    ct.allocate(1240.0);
    for (std::int32_t s = 0; s < 4; ++s)
        EXPECT_DOUBLE_EQ(ct.leafBudget({s, 0}), 0.0);
}

TEST(ControlTree, InfeasibleFloorsFlagged)
{
    auto topo_tree = makeFig2Tree();
    ControlTree ct(*topo_tree, TreePolicy::globalPriority());
    setTable1Inputs(ct); // floors total 1080
    ct.gather();
    const auto outcome = ct.allocate(900.0);
    EXPECT_FALSE(outcome.feasible);
}

TEST(ControlTree, RootMetricsSummarizeTree)
{
    auto topo_tree = makeFig2Tree();
    ControlTree ct(*topo_tree, TreePolicy::globalPriority());
    setTable1Inputs(ct);
    ct.gather();
    const auto &m = ct.rootMetrics();
    EXPECT_DOUBLE_EQ(m.totalCapMin(), 4 * 270.0);
    EXPECT_DOUBLE_EQ(m.totalDemand(), 4 * 430.0);
    // Constraint: min(1400, 2 x min(750, 980)) = 1400.
    EXPECT_DOUBLE_EQ(m.constraint(), 1400.0);
    ASSERT_EQ(m.classes().size(), 2u);
}

TEST(ControlTree, GatherIsIdempotent)
{
    auto topo_tree = makeFig2Tree();
    ControlTree ct(*topo_tree, TreePolicy::globalPriority());
    setTable1Inputs(ct);
    ct.gather();
    const auto first = ct.rootMetrics().toString();
    ct.gather();
    EXPECT_EQ(ct.rootMetrics().toString(), first);
    // Allocation is also stable across repeated runs on fixed inputs.
    ct.allocate(1240.0);
    const auto budget = ct.leafBudget({0, 0});
    ct.gather();
    ct.allocate(1240.0);
    EXPECT_DOUBLE_EQ(ct.leafBudget({0, 0}), budget);
}

TEST(ControlTree, MessagesPerIteration)
{
    auto topo_tree = makeFig2Tree();
    ControlTree ct(*topo_tree, TreePolicy::globalPriority());
    // 7 nodes -> 6 edges -> 12 messages per gather+budget iteration.
    EXPECT_EQ(ct.messagesPerIteration(), 12u);
}

TEST(ControlTree, LeafRefsComplete)
{
    auto topo_tree = makeFig2Tree();
    ControlTree ct(*topo_tree, TreePolicy::globalPriority());
    EXPECT_EQ(ct.leafRefs().size(), 4u);
}

TEST(ControlTree, DeepHierarchyPropagation)
{
    // Four-level chain: root(1000) -> mid(800) -> leafparent(600) -> leaf.
    topo::PowerTree tree(0, 0, "deep");
    const auto root = tree.makeRoot(topo::NodeKind::Breaker, "r", 1000.0);
    const auto mid =
        tree.addChild(root, topo::NodeKind::Breaker, "m", 800.0);
    const auto lp =
        tree.addChild(mid, topo::NodeKind::Breaker, "lp", 600.0);
    tree.addSupplyPort(lp, "s", {0, 0});

    ControlTree ct(tree, TreePolicy::globalPriority());
    LeafInput in;
    in.priority = 0;
    in.capMin = 100.0;
    in.demand = 900.0; // wants more than the leaf-parent allows
    in.constraint = 950.0;
    ct.setLeafInput({0, 0}, in);
    ct.gather();
    ct.allocate(1000.0);
    // The tightest ancestor limit (600) must bind.
    EXPECT_NEAR(ct.leafBudget({0, 0}), 600.0, 1e-6);
}
