/**
 * @file
 * Closed-loop capping-controller tests (paper §4.2 / Figure 4): the PI
 * loop must drive each supply's AC power to within 5 % of its budget in
 * two control periods, track the most-constrained supply, and respect the
 * controllable DC range.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "control/capping_controller.hh"
#include "device/node_manager.hh"
#include "device/workload.hh"
#include "device/sensor.hh"
#include "device/server.hh"
#include "util/random.hh"

using namespace capmaestro;

namespace {

constexpr int kControlPeriod = 8;

/** A closed-loop rig: server + node manager + sensors + controller. */
struct Rig
{
    dev::ServerModel server;
    dev::NodeManager nm;
    dev::SensorEmulator sensors;
    ctrl::CappingController controller;

    explicit Rig(dev::ServerSpec spec, std::uint64_t seed = 1,
                 dev::SensorConfig sensor_cfg = {})
        : server(std::move(spec)), nm(server),
          sensors(server, nm, util::Rng(seed), sensor_cfg),
          controller(server, nm, sensors)
    {
    }

    /** Run @p periods control periods with fixed per-supply budgets. */
    void
    run(const std::vector<Watts> &budgets, int periods)
    {
        for (int p = 0; p < periods; ++p) {
            for (int s = 0; s < kControlPeriod; ++s) {
                controller.senseTick();
                nm.step(1.0);
            }
            controller.closePeriod();
            controller.applyBudgets(budgets);
        }
    }
};

dev::ServerSpec
dualSupplySpec(double share0 = 0.5)
{
    dev::ServerSpec spec;
    spec.name = "rig";
    spec.idle = 160.0;
    spec.capMin = 270.0;
    spec.capMax = 490.0;
    spec.supplies = {{share0, 0.94}, {1.0 - share0, 0.94}};
    return spec;
}

} // namespace

TEST(CappingController, EnforcesSingleConstrainedSupply)
{
    // Figure 5 at t=30 s: PS2 budget drops to 200 W; both supplies carry
    // 50 % of the load, so total settles near 400 W.
    Rig rig(dualSupplySpec());
    rig.server.setUtilization(1.0); // demand 490 W
    rig.run({400.0, 200.0}, 4);

    EXPECT_LE(rig.server.supplyAc(1), 200.0 * 1.05);
    EXPECT_GT(rig.server.supplyAc(1), 200.0 * 0.90);
    EXPECT_LE(rig.server.supplyAc(0), 400.0);
}

TEST(CappingController, SettlesWithinTwoControlPeriods)
{
    // Paper §6.1: power settles within 5 % of budget within 16 s.
    Rig rig(dualSupplySpec());
    rig.server.setUtilization(1.0);
    // Period 1 runs uncapped (budgets above demand split), then the
    // constrained budget arrives.
    rig.run({300.0, 300.0}, 1);
    rig.run({300.0, 200.0}, 2); // two control periods at the new budget
    EXPECT_NEAR(rig.server.supplyAc(1), 200.0, 0.05 * 200.0);
}

TEST(CappingController, MostConstrainedSupplyWins)
{
    // Figure 5 at t=110 s: PS1 gets the smaller budget (150 W); the DC cap
    // must now track PS1 even though PS2 has headroom.
    Rig rig(dualSupplySpec());
    rig.server.setUtilization(1.0);
    rig.run({400.0, 200.0}, 3);
    rig.run({150.0, 200.0}, 3);
    EXPECT_LE(rig.server.supplyAc(0), 150.0 * 1.05);
    // PS2 drops well below its own budget as a side effect.
    EXPECT_LT(rig.server.supplyAc(1), 180.0);
}

TEST(CappingController, NoThrottleWhenBudgetsAmple)
{
    Rig rig(dualSupplySpec());
    rig.server.setUtilization(1.0);
    rig.run({300.0, 300.0}, 3); // 600 total > 490 demand
    EXPECT_NEAR(rig.server.actualAc(), 490.0, 5.0);
    EXPECT_LT(rig.server.throttleLevel(), 0.05);
}

TEST(CappingController, DcCapStaysInControllableRange)
{
    Rig rig(dualSupplySpec());
    rig.server.setUtilization(1.0);
    // Budgets far below Pcap_min: the integrator must clip at the DC
    // equivalent of Pcap_min rather than winding down forever.
    rig.run({50.0, 50.0}, 6);
    const double k = rig.server.blendedEfficiency();
    EXPECT_GE(rig.controller.desiredDcCap(), 270.0 * k - 1e-6);
    // And the server floor holds.
    EXPECT_NEAR(rig.server.actualAc(), 270.0, 3.0);
}

TEST(CappingController, RecoversWhenBudgetRestored)
{
    Rig rig(dualSupplySpec());
    rig.server.setUtilization(1.0);
    rig.run({150.0, 150.0}, 4);
    EXPECT_LT(rig.server.actualAc(), 320.0);
    rig.run({300.0, 300.0}, 4);
    EXPECT_GT(rig.server.actualAc(), 480.0);
}

TEST(CappingController, UnevenSplitBudgets)
{
    // 65/35 intrinsic split (§3.1): a budget matched to the split lets the
    // server draw its full demand; the controller must not over-throttle.
    Rig rig(dualSupplySpec(0.65));
    rig.server.setUtilization(1.0);
    rig.run({0.65 * 460.0, 0.35 * 460.0}, 4);
    EXPECT_NEAR(rig.server.actualAc(), 460.0, 10.0);
    EXPECT_LE(rig.server.supplyAc(0), 0.65 * 460.0 * 1.05);
}

TEST(CappingController, ReportsMeasuredShares)
{
    Rig rig(dualSupplySpec(0.65));
    rig.server.setUtilization(0.8);
    rig.run({400.0, 400.0}, 3);
    const auto &rep = rig.controller.lastReport();
    ASSERT_EQ(rep.shares.size(), 2u);
    EXPECT_NEAR(rep.shares[0], 0.65, 0.03);
    EXPECT_NEAR(rep.shares[1], 0.35, 0.03);
    EXPECT_EQ(rep.workingSupplies, 2u);
}

TEST(CappingController, DemandEstimateTracksWorkload)
{
    Rig rig(dualSupplySpec());
    rig.server.setUtilization(1.0);
    rig.run({300.0, 300.0}, 3); // uncapped: estimate = measurement
    EXPECT_NEAR(rig.controller.lastReport().demandEstimate, 490.0, 8.0);
}

TEST(CappingController, DemandEstimateSurvivesCapping)
{
    Rig rig(dualSupplySpec());
    rig.server.setUtilization(1.0);
    rig.run({300.0, 300.0}, 2);
    rig.run({175.0, 175.0}, 6); // long capped phase
    // The estimate must not collapse to the capped 350 W.
    EXPECT_GT(rig.controller.lastReport().demandEstimate, 380.0);
}

TEST(CappingController, LeafInputScaling)
{
    Rig rig(dualSupplySpec(0.6));
    rig.server.setUtilization(1.0);
    rig.run({500.0, 500.0}, 3);
    const auto leaf0 = rig.controller.leafInputFor(0);
    const auto leaf1 = rig.controller.leafInputFor(1);
    ASSERT_TRUE(leaf0.live);
    ASSERT_TRUE(leaf1.live);
    // capMin scales by r-hat; the two leaves partition the server totals.
    EXPECT_NEAR(leaf0.capMin + leaf1.capMin, 270.0, 1.0);
    EXPECT_NEAR(leaf0.constraint + leaf1.constraint, 490.0, 1.0);
    EXPECT_NEAR(leaf0.capMin / (leaf0.capMin + leaf1.capMin), 0.6, 0.03);
}

TEST(CappingController, SupplyFailureReflectsInReport)
{
    Rig rig(dualSupplySpec());
    rig.server.setUtilization(0.9);
    rig.run({400.0, 400.0}, 2);
    rig.server.setSupplyState(0, dev::SupplyState::Failed);
    rig.run({400.0, 400.0}, 2);
    const auto &rep = rig.controller.lastReport();
    EXPECT_EQ(rep.workingSupplies, 1u);
    EXPECT_DOUBLE_EQ(rep.shares[0], 0.0);
    EXPECT_NEAR(rep.shares[1], 1.0, 1e-9);
    EXPECT_FALSE(rig.controller.leafInputFor(0).live);
}

TEST(CappingController, DemandEstimateTracksSlowLoadSwings)
{
    // A slow sinusoidal workload under ample budgets: the estimator
    // must follow the true demand both up and down (each control period
    // it re-measures the unthrottled draw).
    Rig rig(dualSupplySpec());
    dev::SineWorkload workload(0.55, 0.3, 240);
    double worst_error = 0.0;
    for (int period = 0; period < 40; ++period) {
        for (int s = 0; s < kControlPeriod; ++s) {
            rig.server.setUtilization(workload.utilizationAt(
                period * kControlPeriod + s));
            rig.controller.senseTick();
            rig.nm.step(1.0);
        }
        rig.controller.closePeriod();
        rig.controller.applyBudgets({400.0, 400.0}); // never binding
        if (period >= 3) {
            const double error =
                std::fabs(rig.controller.lastReport().demandEstimate
                          - rig.server.demandAc());
            worst_error = std::max(worst_error, error);
        }
    }
    // The estimate may lag by up to one period of the sine's slope
    // (~15 W) plus sensor noise.
    EXPECT_LT(worst_error, 25.0);
}

TEST(CappingController, SensorDropoutHoldsLastState)
{
    // Establish a steady capped state, then close a period with NO
    // sensor ticks (telemetry outage): the controller must hold its
    // previous report and keep the cap where it was, not release it.
    Rig rig(dualSupplySpec());
    rig.server.setUtilization(1.0);
    rig.run({220.0, 220.0}, 4);
    const auto held = rig.controller.lastReport();
    const double cap_before = rig.controller.desiredDcCap();

    const auto report = rig.controller.closePeriod(); // zero samples
    EXPECT_NEAR(report.demandEstimate, held.demandEstimate, 1e-9);
    ASSERT_EQ(report.supplyAvgAc.size(), held.supplyAvgAc.size());
    EXPECT_NEAR(report.supplyAvgAc[0], held.supplyAvgAc[0], 1e-9);

    rig.controller.applyBudgets({220.0, 220.0});
    // The held measurements equal the budgets, so the cap stays put.
    EXPECT_NEAR(rig.controller.desiredDcCap(), cap_before, 10.0);
}

TEST(CappingController, ConvergesWithCurvedPsuEfficiency)
{
    // Load-dependent AC/DC conversion injects model error into the
    // cap translation; the PI loop must still regulate the AC budgets.
    dev::ServerSpec spec = dualSupplySpec();
    for (auto &s : spec.supplies) {
        s.ratedPower = 400.0;
        s.efficiencyAt20 = 0.87;
        s.efficiencyAt50 = 0.945;
        s.efficiencyAt100 = 0.90;
    }
    Rig rig(spec);
    rig.server.setUtilization(1.0);
    rig.run({220.0, 220.0}, 5);
    EXPECT_NEAR(rig.server.supplyAc(0), 220.0, 0.05 * 220.0);
    EXPECT_NEAR(rig.server.supplyAc(1), 220.0, 0.05 * 220.0);
}

TEST(CappingController, NoisySensorsStillConverge)
{
    dev::SensorConfig noisy;
    noisy.powerNoiseStddev = 4.0;
    Rig rig(dualSupplySpec(), 99, noisy);
    rig.server.setUtilization(1.0);
    rig.run({220.0, 220.0}, 5);
    EXPECT_NEAR(rig.server.supplyAc(0), 220.0, 0.07 * 220.0);
}
