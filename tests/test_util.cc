/**
 * @file
 * Unit tests for the util module: logging levels, deterministic RNG,
 * sliding regression, numeric helpers, and table formatting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/logging.hh"
#include "util/numeric.hh"
#include "util/random.hh"
#include "util/regression.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace cu = capmaestro::util;

TEST(Logging, LevelRoundTrip)
{
    const auto prev = cu::logLevel();
    cu::setLogLevel(cu::LogLevel::Debug);
    EXPECT_EQ(cu::logLevel(), cu::LogLevel::Debug);
    cu::setLogLevel(cu::LogLevel::Silent);
    EXPECT_EQ(cu::logLevel(), cu::LogLevel::Silent);
    cu::setLogLevel(prev);
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(capmaestro::kw(6.9), 6900.0);
    EXPECT_DOUBLE_EQ(capmaestro::ampsToWatts(30.0, 230.0), 6900.0);
}

TEST(Numeric, Clamp)
{
    EXPECT_DOUBLE_EQ(cu::clamp(5.0, 0.0, 10.0), 5.0);
    EXPECT_DOUBLE_EQ(cu::clamp(-1.0, 0.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(cu::clamp(11.0, 0.0, 10.0), 10.0);
    // Degenerate interval: returns lo rather than asserting.
    EXPECT_DOUBLE_EQ(cu::clamp(5.0, 10.0, 0.0), 10.0);
}

TEST(Numeric, ApproxEqual)
{
    EXPECT_TRUE(cu::approxEqual(1.0, 1.0 + 1e-9));
    EXPECT_FALSE(cu::approxEqual(1.0, 1.1));
    EXPECT_TRUE(cu::approxEqualRel(1e6, 1e6 * (1 + 1e-9)));
    EXPECT_FALSE(cu::approxEqualRel(1e6, 1.1e6));
}

TEST(Numeric, SnapNonNegative)
{
    EXPECT_DOUBLE_EQ(cu::snapNonNegative(-1e-12), 0.0);
    EXPECT_DOUBLE_EQ(cu::snapNonNegative(-1.0), -1.0);
    EXPECT_DOUBLE_EQ(cu::snapNonNegative(2.0), 2.0);
}

TEST(Rng, DeterministicForSeed)
{
    cu::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    cu::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.uniform() == b.uniform() ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformBounds)
{
    cu::Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, UniformIntInclusive)
{
    cu::Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformInt(0, 4);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 4);
        saw_lo |= v == 0;
        saw_hi |= v == 4;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalClampedStaysInRange)
{
    cu::Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.normalClamped(0.5, 0.4, 0.0, 1.0);
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
    // Far-away interval must still terminate and land inside.
    const double far = rng.normalClamped(100.0, 0.1, 0.0, 1.0);
    EXPECT_GE(far, 0.0);
    EXPECT_LE(far, 1.0);
}

TEST(Rng, ChanceExtremes)
{
    cu::Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ForkIndependence)
{
    cu::Rng parent(99);
    cu::Rng f1 = parent.fork();
    cu::Rng f2 = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += f1.uniform() == f2.uniform() ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(Rng, ForkReproducible)
{
    cu::Rng p1(123), p2(123);
    cu::Rng f1 = p1.fork();
    cu::Rng f2 = p2.fork();
    for (int i = 0; i < 50; ++i)
        EXPECT_DOUBLE_EQ(f1.uniform(), f2.uniform());
}

TEST(Regression, ExactLine)
{
    cu::SlidingRegression reg(16);
    for (int i = 0; i < 10; ++i)
        reg.add(i, 3.0 + 2.0 * i);
    const auto fit = reg.fit();
    ASSERT_TRUE(fit.has_value());
    EXPECT_NEAR(fit->slope, 2.0, 1e-9);
    EXPECT_NEAR(fit->intercept, 3.0, 1e-9);
    EXPECT_NEAR(fit->r2, 1.0, 1e-9);
}

TEST(Regression, WindowEviction)
{
    cu::SlidingRegression reg(4);
    // Old points on one line, recent points on another; only the recent
    // four should drive the fit.
    for (int i = 0; i < 10; ++i)
        reg.add(i, 100.0 - i);
    for (int i = 0; i < 4; ++i)
        reg.add(i, 5.0 + 1.0 * i);
    EXPECT_EQ(reg.size(), 4u);
    const auto fit = reg.fit();
    ASSERT_TRUE(fit.has_value());
    EXPECT_NEAR(fit->slope, 1.0, 1e-9);
    EXPECT_NEAR(fit->intercept, 5.0, 1e-9);
}

TEST(Regression, DegenerateXReturnsMean)
{
    cu::SlidingRegression reg(8);
    reg.add(0.5, 10.0);
    reg.add(0.5, 12.0);
    reg.add(0.5, 14.0);
    const auto fit = reg.fit();
    ASSERT_TRUE(fit.has_value());
    EXPECT_DOUBLE_EQ(fit->slope, 0.0);
    EXPECT_NEAR(fit->intercept, 12.0, 1e-9);
    EXPECT_DOUBLE_EQ(fit->r2, 0.0);
}

TEST(Regression, TooFewSamples)
{
    cu::SlidingRegression reg(8);
    EXPECT_FALSE(reg.fit().has_value());
    reg.add(1.0, 1.0);
    EXPECT_FALSE(reg.fit().has_value());
    reg.add(2.0, 2.0);
    EXPECT_TRUE(reg.fit().has_value());
}

TEST(Regression, Accessors)
{
    cu::SlidingRegression reg(8);
    reg.add(0.0, 10.0);
    reg.add(0.2, 20.0);
    reg.add(0.4, 15.0);
    EXPECT_NEAR(reg.meanX(), 0.2, 1e-12);
    EXPECT_NEAR(reg.meanY(), 15.0, 1e-12);
    EXPECT_NEAR(reg.maxY(), 20.0, 1e-12);
    EXPECT_NEAR(reg.stddevX(), std::sqrt(0.08 / 3.0), 1e-12);
}

TEST(Regression, ClearResets)
{
    cu::SlidingRegression reg(8);
    reg.add(1.0, 1.0);
    reg.add(2.0, 2.0);
    reg.clear();
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_FALSE(reg.fit().has_value());
}

TEST(Table, AlignedOutput)
{
    cu::TextTable t("demo");
    t.setHeader({"server", "budget"});
    t.addNumericRow("SA", {430.0});
    t.addNumericRow("SB", {270.0});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("430.0"), std::string::npos);
    EXPECT_NE(s.find("server"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput)
{
    cu::TextTable t;
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, FormatFixed)
{
    EXPECT_EQ(cu::formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(cu::formatFixed(2.0, 0), "2");
}
