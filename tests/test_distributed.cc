/**
 * @file
 * Tests for the distributed (rack-worker / room-worker) execution of the
 * capping algorithm (§5): equivalence with the monolithic ControlTree
 * under every policy, message accounting, and partition behavior.
 */

#include <gtest/gtest.h>

#include "control/control_tree.hh"
#include "core/distributed.hh"
#include "sim/datacenter.hh"
#include "sim/scenario.hh"
#include "util/random.hh"

using namespace capmaestro;
using core::DistributedControlPlane;

namespace {

/** Random leaf inputs for every supply of @p system. */
std::vector<std::pair<topo::ServerSupplyRef, ctrl::LeafInput>>
randomInputs(const topo::PowerSystem &system, util::Rng &rng)
{
    std::vector<std::pair<topo::ServerSupplyRef, ctrl::LeafInput>> out;
    for (const auto &tree : system.trees()) {
        for (const auto &ref : tree->suppliesUnder(tree->root())) {
            ctrl::LeafInput in;
            in.live = rng.chance(0.9);
            in.priority = static_cast<Priority>(rng.uniformInt(0, 3));
            in.capMin = rng.uniform(100.0, 150.0);
            in.demand = in.capMin + rng.uniform(0.0, 120.0);
            in.constraint = in.demand + rng.uniform(0.0, 60.0);
            out.emplace_back(ref, in);
        }
    }
    return out;
}

} // namespace

TEST(Distributed, EquivalentToMonolithicOnFig2)
{
    util::Rng rng(404);
    auto sys = sim::fig2System();
    for (const auto policy :
         {ctrl::TreePolicy::globalPriority(),
          ctrl::TreePolicy::localPriority(),
          ctrl::TreePolicy::noPriority()}) {
        ctrl::ControlTree mono(sys->tree(0), policy);
        DistributedControlPlane dist(*sys, policy);

        for (int trial = 0; trial < 20; ++trial) {
            const auto inputs = randomInputs(*sys, rng);
            for (const auto &[ref, in] : inputs) {
                mono.setLeafInput(ref, in);
                dist.setLeafInput(ref, in);
            }
            const Watts budget = rng.uniform(600.0, 1600.0);
            mono.gather();
            mono.allocate(budget);
            dist.iterate({budget});
            for (const auto &[ref, in] : inputs) {
                EXPECT_NEAR(dist.leafBudget(ref), mono.leafBudget(ref),
                            1e-9)
                    << "supply " << ref.server << "." << ref.supply;
            }
        }
    }
}

TEST(Distributed, EquivalentToMonolithicOnDataCenter)
{
    sim::DataCenterParams params;
    params.phases = 1;
    params.serversPerRackPerPhase = 4;
    const auto dc = sim::buildDataCenter(params);

    const auto policy = ctrl::TreePolicy::globalPriority();
    DistributedControlPlane dist(*dc.system, policy);
    std::vector<std::unique_ptr<ctrl::ControlTree>> monos;
    for (const auto &tree : dc.system->trees())
        monos.push_back(
            std::make_unique<ctrl::ControlTree>(*tree, policy));

    util::Rng rng(606);
    const auto inputs = randomInputs(*dc.system, rng);
    for (const auto &[ref, in] : inputs)
        dist.setLeafInput(ref, in);
    // Each supply ref appears in exactly one tree; set it on all (the
    // wrong tree simply doesn't have the leaf). Use the port index.
    for (const auto &[ref, in] : inputs) {
        const auto ports = dc.system->livePortsOf(ref.server);
        monos[ports.at(ref.supply).tree]->setLeafInput(ref, in);
    }

    const std::vector<Watts> budgets(dc.system->trees().size(),
                                     300000.0);
    dist.iterate(budgets);
    for (std::size_t t = 0; t < monos.size(); ++t) {
        monos[t]->gather();
        monos[t]->allocate(budgets[t]);
    }

    EXPECT_EQ(dist.rackWorkerCount(), 162u);
    for (const auto &[ref, in] : inputs) {
        const auto ports = dc.system->livePortsOf(ref.server);
        const auto tree = ports.at(ref.supply).tree;
        EXPECT_NEAR(dist.leafBudget(ref), monos[tree]->leafBudget(ref),
                    1e-9);
    }
}

TEST(Distributed, EquivalentOnDataCenterUnderEveryPolicy)
{
    // The partition must preserve semantics for Local and No Priority
    // too (their collapse points sit exactly at the rack/room boundary).
    sim::DataCenterParams params;
    params.phases = 1;
    params.serversPerRackPerPhase = 2;
    const auto dc = sim::buildDataCenter(params);
    util::Rng rng(321);
    const auto inputs = randomInputs(*dc.system, rng);

    for (const auto policy :
         {ctrl::TreePolicy::localPriority(),
          ctrl::TreePolicy::noPriority()}) {
        DistributedControlPlane dist(*dc.system, policy);
        std::vector<std::unique_ptr<ctrl::ControlTree>> monos;
        for (const auto &tree : dc.system->trees())
            monos.push_back(
                std::make_unique<ctrl::ControlTree>(*tree, policy));
        for (const auto &[ref, in] : inputs) {
            dist.setLeafInput(ref, in);
            const auto ports = dc.system->livePortsOf(ref.server);
            monos[ports.at(ref.supply).tree]->setLeafInput(ref, in);
        }
        const std::vector<Watts> budgets(dc.system->trees().size(),
                                         250000.0);
        dist.iterate(budgets);
        for (std::size_t t = 0; t < monos.size(); ++t) {
            monos[t]->gather();
            monos[t]->allocate(budgets[t]);
        }
        for (const auto &[ref, in] : inputs) {
            const auto ports = dc.system->livePortsOf(ref.server);
            EXPECT_NEAR(dist.leafBudget(ref),
                        monos[ports.at(ref.supply).tree]->leafBudget(ref),
                        1e-9);
        }
    }
}

TEST(Distributed, MessageAccounting)
{
    sim::DataCenterParams params;
    params.phases = 1;
    params.serversPerRackPerPhase = 2;
    const auto dc = sim::buildDataCenter(params);
    DistributedControlPlane dist(*dc.system,
                                 ctrl::TreePolicy::globalPriority());

    util::Rng rng(7);
    for (const auto &[ref, in] : randomInputs(*dc.system, rng))
        dist.setLeafInput(ref, in);

    const auto stats = dist.iterate({300000.0, 300000.0});
    // 162 racks x 2 trees, one metrics and one budget message each.
    EXPECT_EQ(stats.metricsMessages, 324u);
    EXPECT_EQ(stats.budgetMessages, 324u);
    // Compact summaries: at most #priority-levels classes per message.
    EXPECT_LE(stats.metricClassesSent, 324u * 4u);
}

TEST(Distributed, FailedFeedSkipped)
{
    sim::DataCenterParams params;
    params.phases = 1;
    params.serversPerRackPerPhase = 2;
    auto dc = sim::buildDataCenter(params);
    dc.system->failFeed(1);
    DistributedControlPlane dist(*dc.system,
                                 ctrl::TreePolicy::globalPriority());
    util::Rng rng(7);
    for (const auto &[ref, in] : randomInputs(*dc.system, rng))
        dist.setLeafInput(ref, in);
    const auto stats = dist.iterate({300000.0, 300000.0});
    EXPECT_EQ(stats.metricsMessages, 162u); // only feed A's tree
}

TEST(Distributed, CompactSummariesIndependentOfServerCount)
{
    // The paper's scalability insight: upstream messages carry per-
    // priority summaries, not per-server data. Growing the rack must
    // not grow the message payload.
    std::size_t classes_small = 0, classes_large = 0;
    for (const int per_phase : {3, 15}) {
        sim::DataCenterParams params;
        params.phases = 1;
        params.serversPerRackPerPhase = per_phase;
        const auto dc = sim::buildDataCenter(params);
        DistributedControlPlane dist(
            *dc.system, ctrl::TreePolicy::globalPriority());
        util::Rng rng(11);
        for (const auto &[ref, in] : randomInputs(*dc.system, rng))
            dist.setLeafInput(ref, in);
        const auto stats = dist.iterate({300000.0, 300000.0});
        (per_phase == 3 ? classes_small : classes_large) =
            stats.metricClassesSent;
    }
    EXPECT_EQ(classes_small > 0, true);
    // 5x the servers, same number of messages, payload within the
    // priority-level bound either way.
    EXPECT_LE(classes_large, classes_small * 2);
}
