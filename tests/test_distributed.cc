/**
 * @file
 * Tests for the distributed (rack-worker / room-worker) execution of the
 * capping algorithm (§5): equivalence with the monolithic ControlTree
 * under every policy, message accounting, partition behavior, and the
 * §4.5 fault-tolerant protocol over the simulated message plane
 * (lossless bit-equivalence, stale-metric reuse, default budgets,
 * worker failover, and safety under frame loss).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "control/control_tree.hh"
#include "core/distributed.hh"
#include "net/transport.hh"
#include "sim/datacenter.hh"
#include "sim/scenario.hh"
#include "util/random.hh"

using namespace capmaestro;
using core::DistributedControlPlane;

namespace {

/** Random leaf inputs for every supply of @p system. */
std::vector<std::pair<topo::ServerSupplyRef, ctrl::LeafInput>>
randomInputs(const topo::PowerSystem &system, util::Rng &rng)
{
    std::vector<std::pair<topo::ServerSupplyRef, ctrl::LeafInput>> out;
    for (const auto &tree : system.trees()) {
        for (const auto &ref : tree->suppliesUnder(tree->root())) {
            ctrl::LeafInput in;
            in.live = rng.chance(0.9);
            in.priority = static_cast<Priority>(rng.uniformInt(0, 3));
            in.capMin = rng.uniform(100.0, 150.0);
            in.demand = in.capMin + rng.uniform(0.0, 120.0);
            in.constraint = in.demand + rng.uniform(0.0, 60.0);
            out.emplace_back(ref, in);
        }
    }
    return out;
}

} // namespace

TEST(Distributed, EquivalentToMonolithicOnFig2)
{
    util::Rng rng(404);
    auto sys = sim::fig2System();
    for (const auto policy :
         {ctrl::TreePolicy::globalPriority(),
          ctrl::TreePolicy::localPriority(),
          ctrl::TreePolicy::noPriority()}) {
        ctrl::ControlTree mono(sys->tree(0), policy);
        DistributedControlPlane dist(*sys, policy);

        for (int trial = 0; trial < 20; ++trial) {
            const auto inputs = randomInputs(*sys, rng);
            for (const auto &[ref, in] : inputs) {
                mono.setLeafInput(ref, in);
                dist.setLeafInput(ref, in);
            }
            const Watts budget = rng.uniform(600.0, 1600.0);
            mono.gather();
            mono.allocate(budget);
            dist.iterate({budget});
            for (const auto &[ref, in] : inputs) {
                EXPECT_NEAR(dist.leafBudget(ref), mono.leafBudget(ref),
                            1e-9)
                    << "supply " << ref.server << "." << ref.supply;
            }
        }
    }
}

TEST(Distributed, EquivalentToMonolithicOnDataCenter)
{
    sim::DataCenterParams params;
    params.phases = 1;
    params.serversPerRackPerPhase = 4;
    const auto dc = sim::buildDataCenter(params);

    const auto policy = ctrl::TreePolicy::globalPriority();
    DistributedControlPlane dist(*dc.system, policy);
    std::vector<std::unique_ptr<ctrl::ControlTree>> monos;
    for (const auto &tree : dc.system->trees())
        monos.push_back(
            std::make_unique<ctrl::ControlTree>(*tree, policy));

    util::Rng rng(606);
    const auto inputs = randomInputs(*dc.system, rng);
    for (const auto &[ref, in] : inputs)
        dist.setLeafInput(ref, in);
    // Each supply ref appears in exactly one tree; set it on all (the
    // wrong tree simply doesn't have the leaf). Use the port index.
    for (const auto &[ref, in] : inputs) {
        const auto ports = dc.system->livePortsOf(ref.server);
        monos[ports.at(ref.supply).tree]->setLeafInput(ref, in);
    }

    const std::vector<Watts> budgets(dc.system->trees().size(),
                                     300000.0);
    dist.iterate(budgets);
    for (std::size_t t = 0; t < monos.size(); ++t) {
        monos[t]->gather();
        monos[t]->allocate(budgets[t]);
    }

    EXPECT_EQ(dist.rackWorkerCount(), 162u);
    for (const auto &[ref, in] : inputs) {
        const auto ports = dc.system->livePortsOf(ref.server);
        const auto tree = ports.at(ref.supply).tree;
        EXPECT_NEAR(dist.leafBudget(ref), monos[tree]->leafBudget(ref),
                    1e-9);
    }
}

TEST(Distributed, EquivalentOnDataCenterUnderEveryPolicy)
{
    // The partition must preserve semantics for Local and No Priority
    // too (their collapse points sit exactly at the rack/room boundary).
    sim::DataCenterParams params;
    params.phases = 1;
    params.serversPerRackPerPhase = 2;
    const auto dc = sim::buildDataCenter(params);
    util::Rng rng(321);
    const auto inputs = randomInputs(*dc.system, rng);

    for (const auto policy :
         {ctrl::TreePolicy::localPriority(),
          ctrl::TreePolicy::noPriority()}) {
        DistributedControlPlane dist(*dc.system, policy);
        std::vector<std::unique_ptr<ctrl::ControlTree>> monos;
        for (const auto &tree : dc.system->trees())
            monos.push_back(
                std::make_unique<ctrl::ControlTree>(*tree, policy));
        for (const auto &[ref, in] : inputs) {
            dist.setLeafInput(ref, in);
            const auto ports = dc.system->livePortsOf(ref.server);
            monos[ports.at(ref.supply).tree]->setLeafInput(ref, in);
        }
        const std::vector<Watts> budgets(dc.system->trees().size(),
                                         250000.0);
        dist.iterate(budgets);
        for (std::size_t t = 0; t < monos.size(); ++t) {
            monos[t]->gather();
            monos[t]->allocate(budgets[t]);
        }
        for (const auto &[ref, in] : inputs) {
            const auto ports = dc.system->livePortsOf(ref.server);
            EXPECT_NEAR(dist.leafBudget(ref),
                        monos[ports.at(ref.supply).tree]->leafBudget(ref),
                        1e-9);
        }
    }
}

TEST(Distributed, MessageAccounting)
{
    sim::DataCenterParams params;
    params.phases = 1;
    params.serversPerRackPerPhase = 2;
    const auto dc = sim::buildDataCenter(params);
    DistributedControlPlane dist(*dc.system,
                                 ctrl::TreePolicy::globalPriority());

    util::Rng rng(7);
    for (const auto &[ref, in] : randomInputs(*dc.system, rng))
        dist.setLeafInput(ref, in);

    const auto stats = dist.iterate({300000.0, 300000.0});
    // 162 racks x 2 trees, one metrics and one budget message each.
    EXPECT_EQ(stats.metricsMessages, 324u);
    EXPECT_EQ(stats.budgetMessages, 324u);
    // Compact summaries: at most #priority-levels classes per message.
    EXPECT_LE(stats.metricClassesSent, 324u * 4u);
}

TEST(Distributed, FailedFeedSkipped)
{
    sim::DataCenterParams params;
    params.phases = 1;
    params.serversPerRackPerPhase = 2;
    auto dc = sim::buildDataCenter(params);
    dc.system->failFeed(1);
    DistributedControlPlane dist(*dc.system,
                                 ctrl::TreePolicy::globalPriority());
    util::Rng rng(7);
    for (const auto &[ref, in] : randomInputs(*dc.system, rng))
        dist.setLeafInput(ref, in);
    const auto stats = dist.iterate({300000.0, 300000.0});
    EXPECT_EQ(stats.metricsMessages, 162u); // only feed A's tree
}

// ------------------------------------------------- §4.5 message plane

TEST(MessagePlane, LosslessTransportBitIdenticalToMonolithic)
{
    // Under a lossless zero-latency transport the §4.5 protocol must
    // degenerate to the direct exchange: every budget bit-identical to
    // the monolithic ControlTree, no degraded decisions.
    util::Rng rng(808);
    auto sys = sim::fig2System();
    for (const auto policy :
         {ctrl::TreePolicy::globalPriority(),
          ctrl::TreePolicy::localPriority(),
          ctrl::TreePolicy::noPriority()}) {
        ctrl::ControlTree mono(sys->tree(0), policy);
        net::SimTransport transport; // lossless, instantaneous
        DistributedControlPlane dist(*sys, policy, transport);

        for (int trial = 0; trial < 20; ++trial) {
            const auto inputs = randomInputs(*sys, rng);
            for (const auto &[ref, in] : inputs) {
                mono.setLeafInput(ref, in);
                dist.setLeafInput(ref, in);
            }
            const Watts budget = rng.uniform(600.0, 1600.0);
            mono.gather();
            mono.allocate(budget);
            const auto stats = dist.iterate({budget});

            EXPECT_EQ(stats.degraded.size(), 0u);
            EXPECT_EQ(stats.defaultBudgets, 0u);
            EXPECT_EQ(stats.staleReuses, 0u);
            EXPECT_GT(stats.bytesOnWire, 0u);
            for (const auto &[ref, in] : inputs) {
                EXPECT_EQ(
                    std::bit_cast<std::uint64_t>(dist.leafBudget(ref)),
                    std::bit_cast<std::uint64_t>(mono.leafBudget(ref)))
                    << "supply " << ref.server << "." << ref.supply;
            }
        }
    }
}

TEST(MessagePlane, TotalLossFallsBackToDefaultBudgets)
{
    // With every frame dropped, period 1 has no cache to fall back on:
    // all metrics are lost and every edge applies the conservative
    // Pcap_min default.
    net::TransportConfig cfg;
    cfg.dropRate = 1.0;
    net::SimTransport transport(cfg);
    auto sys = sim::fig2System();
    DistributedControlPlane dist(*sys, ctrl::TreePolicy::globalPriority(),
                                 transport);

    util::Rng rng(11);
    const auto inputs = randomInputs(*sys, rng);
    for (const auto &[ref, in] : inputs)
        dist.setLeafInput(ref, in);
    const auto stats = dist.iterate({1200.0});

    const std::size_t edges = dist.rackWorkerCount();
    EXPECT_EQ(stats.metricsLost, edges);
    EXPECT_EQ(stats.defaultBudgets, edges);
    EXPECT_EQ(stats.staleReuses, 0u);
    EXPECT_GT(stats.retries, 0u);

    // Default budgets equal the sum of live leaves' capMin (clamped to
    // the edge limit), split per the edge's own shifting controller —
    // every live leaf gets at least its floor covered in aggregate.
    for (const auto &[ref, in] : inputs) {
        if (in.live)
            EXPECT_GE(dist.leafBudget(ref), 0.0);
    }
    Watts total = 0.0, floor_total = 0.0;
    for (const auto &[ref, in] : inputs) {
        total += dist.leafBudget(ref);
        if (in.live)
            floor_total += in.capMin;
    }
    EXPECT_NEAR(total, floor_total, 1e-6);
}

TEST(MessagePlane, SilentWorkerUsesStaleMetricsThenFailsOver)
{
    net::ProtocolConfig proto;
    proto.staleAgeCapPeriods = 2;
    proto.heartbeatFailAfter = 3;
    net::SimTransport transport; // lossless: isolate the worker failure
    auto sys = sim::fig2System();
    DistributedControlPlane dist(*sys, ctrl::TreePolicy::globalPriority(),
                                 transport, proto);
    ASSERT_GE(dist.rackWorkerCount(), 2u);

    util::Rng rng(21);
    const auto inputs = randomInputs(*sys, rng);
    for (const auto &[ref, in] : inputs)
        dist.setLeafInput(ref, in);

    // Period 1: healthy; caches fill.
    auto stats = dist.iterate({1200.0});
    EXPECT_EQ(stats.staleReuses, 0u);

    // Kill worker 0. Its edges' metrics now miss every deadline.
    dist.failWorker(0);

    // Periods 2..3: within the stale-age cap the room reuses worker 0's
    // cached summary; the dead worker also misses its budget (default),
    // though the default applies to no live process.
    stats = dist.iterate({1200.0});
    EXPECT_GE(stats.staleReuses, 1u);
    EXPECT_FALSE(dist.workerDeclaredDead(0));
    stats = dist.iterate({1200.0});
    EXPECT_FALSE(dist.workerDeclaredDead(0));

    // Period 4: third consecutive silent period - declared dead,
    // edges re-homed to a live worker.
    stats = dist.iterate({1200.0});
    EXPECT_TRUE(dist.workerDeclaredDead(0));
    EXPECT_EQ(dist.liveWorkerCount(), dist.rackWorkerCount() - 1);
    bool saw_failover = false;
    for (const auto &d : stats.degraded) {
        if (d.kind == core::DegradedKind::WorkerFailover && d.rack == 0)
            saw_failover = true;
    }
    EXPECT_TRUE(saw_failover);

    // Period 5: the adopter now computes fresh metrics for the adopted
    // edges, so budgets flow again for every leaf - and match the
    // monolithic allocation exactly (the adopter owns identical state).
    stats = dist.iterate({1200.0});
    EXPECT_EQ(stats.staleReuses, 0u);
    EXPECT_EQ(stats.defaultBudgets, 0u);
    ctrl::ControlTree mono(sys->tree(0),
                           ctrl::TreePolicy::globalPriority());
    for (const auto &[ref, in] : inputs)
        mono.setLeafInput(ref, in);
    mono.gather();
    mono.allocate(1200.0);
    for (const auto &[ref, in] : inputs) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(dist.leafBudget(ref)),
                  std::bit_cast<std::uint64_t>(mono.leafBudget(ref)));
    }
}

TEST(MessagePlane, LossNeverInflatesTreeTotals)
{
    // Safety under drops: in a congested scenario (demand exceeds the
    // root budget) the lossless allocation hands out the entire root
    // budget, so no lossy run may ever exceed the lossless per-tree
    // total - whatever mix of fresh, stale, and default budgets the
    // protocol lands on.
    auto sys = sim::fig2System();
    util::Rng rng(99);
    std::vector<std::pair<topo::ServerSupplyRef, ctrl::LeafInput>> inputs;
    for (const auto &tree : sys->trees()) {
        for (const auto &ref : tree->suppliesUnder(tree->root())) {
            ctrl::LeafInput in;
            in.live = true;
            in.priority = static_cast<Priority>(rng.uniformInt(0, 3));
            in.capMin = rng.uniform(100.0, 140.0);
            in.demand = in.capMin + rng.uniform(100.0, 200.0);
            in.constraint = in.demand + 50.0;
            inputs.emplace_back(ref, in);
        }
    }
    const Watts budget = 900.0; // well under total demand, above floors

    // Lossless reference total.
    ctrl::ControlTree mono(sys->tree(0),
                           ctrl::TreePolicy::globalPriority());
    for (const auto &[ref, in] : inputs)
        mono.setLeafInput(ref, in);
    mono.gather();
    mono.allocate(budget);
    Watts lossless_total = 0.0;
    for (const auto &[ref, in] : inputs)
        lossless_total += mono.leafBudget(ref);

    for (const double drop : {0.1, 0.2, 0.4}) {
        net::TransportConfig cfg;
        cfg.dropRate = drop;
        cfg.seed = 42 + static_cast<std::uint64_t>(drop * 100);
        net::SimTransport transport(cfg);
        DistributedControlPlane dist(
            *sys, ctrl::TreePolicy::globalPriority(), transport);
        for (const auto &[ref, in] : inputs)
            dist.setLeafInput(ref, in);

        for (int period = 0; period < 12; ++period) {
            dist.iterate({budget});
            Watts total = 0.0;
            for (const auto &[ref, in] : inputs)
                total += dist.leafBudget(ref);
            EXPECT_LE(total, lossless_total + 1e-6)
                << "drop=" << drop << " period=" << period;
        }
    }
}

TEST(MessagePlane, RetriesRecoverFromModerateLoss)
{
    // At 20% drop with 4 attempts per message, the per-message loss
    // probability is 0.2^4 = 0.16%; a run of periods should complete
    // mostly clean, and every degraded period must still deliver a
    // budget (fresh, stale, or default) to every edge.
    net::TransportConfig cfg;
    cfg.dropRate = 0.2;
    cfg.seed = 7;
    net::SimTransport transport(cfg);
    auto sys = sim::fig2System();
    DistributedControlPlane dist(*sys, ctrl::TreePolicy::globalPriority(),
                                 transport);
    util::Rng rng(13);
    const auto inputs = randomInputs(*sys, rng);
    for (const auto &[ref, in] : inputs)
        dist.setLeafInput(ref, in);

    std::size_t clean = 0;
    const int periods = 50;
    for (int p = 0; p < periods; ++p) {
        const auto stats = dist.iterate({1200.0});
        if (stats.degraded.empty())
            ++clean;
        EXPECT_EQ(stats.metricsMessages, dist.rackWorkerCount());
        EXPECT_EQ(stats.budgetMessages, dist.rackWorkerCount());
    }
    EXPECT_GT(clean, static_cast<std::size_t>(periods * 3 / 5));
    // Nobody died: retries (not failover) absorbed the loss.
    EXPECT_EQ(dist.liveWorkerCount(), dist.rackWorkerCount());
}

TEST(MessagePlane, BytesOnWireScaleWithSummariesNotServers)
{
    // The compactness claim (§4.1) holds on the real wire encoding:
    // 5x the servers per rack must not change the per-period bytes,
    // because messages carry per-priority summaries.
    std::size_t bytes_small = 0, bytes_large = 0;
    for (const int per_phase : {3, 15}) {
        sim::DataCenterParams params;
        params.phases = 1;
        params.serversPerRackPerPhase = per_phase;
        const auto dc = sim::buildDataCenter(params);
        net::SimTransport transport;
        DistributedControlPlane dist(
            *dc.system, ctrl::TreePolicy::globalPriority(), transport);
        util::Rng rng(11);
        for (const auto &[ref, in] : randomInputs(*dc.system, rng))
            dist.setLeafInput(ref, in);
        const auto stats = dist.iterate({300000.0, 300000.0});
        (per_phase == 3 ? bytes_small : bytes_large) = stats.bytesOnWire;
    }
    EXPECT_GT(bytes_small, 0u);
    EXPECT_LE(bytes_large, bytes_small * 2);
}

TEST(Distributed, CompactSummariesIndependentOfServerCount)
{
    // The paper's scalability insight: upstream messages carry per-
    // priority summaries, not per-server data. Growing the rack must
    // not grow the message payload.
    std::size_t classes_small = 0, classes_large = 0;
    for (const int per_phase : {3, 15}) {
        sim::DataCenterParams params;
        params.phases = 1;
        params.serversPerRackPerPhase = per_phase;
        const auto dc = sim::buildDataCenter(params);
        DistributedControlPlane dist(
            *dc.system, ctrl::TreePolicy::globalPriority());
        util::Rng rng(11);
        for (const auto &[ref, in] : randomInputs(*dc.system, rng))
            dist.setLeafInput(ref, in);
        const auto stats = dist.iterate({300000.0, 300000.0});
        (per_phase == 3 ? classes_small : classes_large) =
            stats.metricClassesSent;
    }
    EXPECT_EQ(classes_small > 0, true);
    // 5x the servers, same number of messages, payload within the
    // priority-level bound either way.
    EXPECT_LE(classes_large, classes_small * 2);
}
