/**
 * @file
 * Demand-estimator tests (§5's regression method): direct measurement when
 * unthrottled, extrapolation to 0 % throttle when excited, and sticky
 * behavior in steady capped states.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "control/demand_estimator.hh"

using namespace capmaestro;
using ctrl::DemandEstimator;
using ctrl::DemandEstimatorConfig;

namespace {

/** Server power at throttle t for a gamma curve (idle 160, demand d). */
double
powerAt(double demand, double t, double gamma = 2.7)
{
    return 160.0 + (demand - 160.0) * std::pow(1.0 - t, gamma);
}

DemandEstimatorConfig
testConfig()
{
    DemandEstimatorConfig c;
    c.minEstimate = 160.0;
    c.maxEstimate = 490.0;
    return c;
}

} // namespace

TEST(DemandEstimator, UnprimedReturnsMinimum)
{
    DemandEstimator est(testConfig());
    EXPECT_FALSE(est.primed());
    EXPECT_DOUBLE_EQ(est.estimate(), 160.0);
}

TEST(DemandEstimator, UnthrottledUsesMeasurement)
{
    DemandEstimator est(testConfig());
    for (int i = 0; i < 16; ++i)
        est.addSample(0.0, 420.0);
    EXPECT_NEAR(est.estimate(), 420.0, 1e-9);
}

TEST(DemandEstimator, UnthrottledTracksDecreases)
{
    DemandEstimator est(testConfig());
    for (int i = 0; i < 16; ++i)
        est.addSample(0.0, 420.0);
    for (int i = 0; i < 16; ++i)
        est.addSample(0.0, 300.0); // workload got lighter
    EXPECT_NEAR(est.estimate(), 300.0, 1e-9);
}

TEST(DemandEstimator, ExtrapolatesThroughThrottleTransient)
{
    // A cap engages: throttle ramps 0 -> 25 % while power drops along the
    // gamma curve. The regression should recover roughly the original
    // demand from the transient.
    DemandEstimator est(testConfig());
    const double demand = 420.0;
    for (int i = 0; i < 8; ++i)
        est.addSample(0.0, demand);
    for (int i = 1; i <= 8; ++i) {
        const double t = 0.25 * i / 8.0;
        est.addSample(t, powerAt(demand, t));
    }
    // Linear extrapolation of a gamma curve slightly underestimates; the
    // paper tolerates this via the 5 % contractual margin.
    EXPECT_NEAR(est.estimate(), demand, 0.06 * demand);
}

TEST(DemandEstimator, SteadyCappedHoldsEstimate)
{
    DemandEstimator est(testConfig());
    const double demand = 420.0;
    for (int i = 0; i < 8; ++i)
        est.addSample(0.0, demand);
    // Long steady capped phase at 20 % throttle: no new information, so
    // the estimate must not collapse toward the capped power.
    const double capped_power = powerAt(demand, 0.2);
    for (int i = 0; i < 100; ++i)
        est.addSample(0.2, capped_power);
    EXPECT_GT(est.estimate(), capped_power + 20.0);
}

TEST(DemandEstimator, CappedDrawAboveEstimateRaisesIt)
{
    DemandEstimator est(testConfig());
    // Prime low, then observe higher power while throttled steadily.
    for (int i = 0; i < 16; ++i)
        est.addSample(0.0, 250.0);
    for (int i = 0; i < 20; ++i)
        est.addSample(0.2, 320.0);
    EXPECT_GE(est.estimate(), 320.0);
}

TEST(DemandEstimator, ClampsToConfiguredBounds)
{
    DemandEstimatorConfig cfg = testConfig();
    DemandEstimator est(cfg);
    // Wild regression (noise) cannot push the estimate past capMax.
    for (int i = 0; i < 8; ++i)
        est.addSample(0.01 * i, 480.0 - 40.0 * i);
    EXPECT_LE(est.estimate(), cfg.maxEstimate);
    EXPECT_GE(est.estimate(), cfg.minEstimate);
}

TEST(DemandEstimator, ResetClearsState)
{
    DemandEstimator est(testConfig());
    est.addSample(0.0, 400.0);
    est.reset();
    EXPECT_FALSE(est.primed());
    EXPECT_DOUBLE_EQ(est.estimate(), 160.0);
}

TEST(DemandEstimator, LastMeasuredModeCollapsesUnderCap)
{
    // The ablation baseline: under a steady cap the naive estimator
    // tracks the capped power instead of the demand — the failure mode
    // the paper's regression method exists to avoid.
    DemandEstimatorConfig cfg = testConfig();
    cfg.mode = ctrl::DemandEstimatorMode::LastMeasured;
    DemandEstimator est(cfg);
    for (int i = 0; i < 16; ++i)
        est.addSample(0.0, 420.0);
    EXPECT_NEAR(est.estimate(), 420.0, 1e-9);
    const double capped = powerAt(420.0, 0.2);
    for (int i = 0; i < 32; ++i)
        est.addSample(0.2, capped);
    EXPECT_NEAR(est.estimate(), capped, 1.0); // collapsed
}

TEST(DemandEstimator, RecoversAfterCapRelease)
{
    DemandEstimator est(testConfig());
    const double demand = 420.0;
    for (int i = 0; i < 8; ++i)
        est.addSample(0.0, demand);
    for (int i = 0; i < 30; ++i)
        est.addSample(0.2, powerAt(demand, 0.2));
    // Cap released; once the window is full of unthrottled samples the
    // estimate returns to direct measurement.
    for (int i = 0; i < 16; ++i)
        est.addSample(0.0, demand);
    EXPECT_NEAR(est.estimate(), demand, 1.0);
}
