/**
 * @file
 * Topology-auditor tests (§7 open challenge): consistent topologies pass,
 * load mismatches are flagged at the right nodes, and a single mis-wired
 * supply is located by the hypothesis search.
 */

#include <gtest/gtest.h>

#include <memory>

#include "topology/audit.hh"
#include "topology/power_tree.hh"
#include "util/random.hh"

using namespace capmaestro;
using topo::TopologyAuditor;

namespace {

/** Two-branch tree: top over left/right CDUs with two ports each. */
struct Rig
{
    topo::PowerTree tree{0, 0, "audit"};
    topo::NodeId top, left, right;
    topo::NodeId ports[4];

    Rig()
    {
        top = tree.makeRoot(topo::NodeKind::Breaker, "top", 4000.0);
        left = tree.addChild(top, topo::NodeKind::Cdu, "left", 2000.0);
        right = tree.addChild(top, topo::NodeKind::Cdu, "right", 2000.0);
        ports[0] = tree.addSupplyPort(left, "s0", {0, 0});
        ports[1] = tree.addSupplyPort(left, "s1", {1, 0});
        ports[2] = tree.addSupplyPort(right, "s2", {2, 0});
        ports[3] = tree.addSupplyPort(right, "s3", {3, 0});
    }
};

/** Supply loads: s0..s3 draw the given powers. */
topo::SupplyLoadMap
loadsOf(double s0, double s1, double s2, double s3)
{
    return {{{0, 0}, s0}, {{1, 0}, s1}, {{2, 0}, s2}, {{3, 0}, s3}};
}

} // namespace

TEST(TopologyAudit, PredictsSubtreeSums)
{
    Rig rig;
    TopologyAuditor auditor(rig.tree);
    const auto predicted =
        auditor.predictLoads(loadsOf(100, 200, 300, 400));
    EXPECT_DOUBLE_EQ(predicted.at(rig.left), 300.0);
    EXPECT_DOUBLE_EQ(predicted.at(rig.right), 700.0);
    EXPECT_DOUBLE_EQ(predicted.at(rig.top), 1000.0);
    EXPECT_DOUBLE_EQ(predicted.at(rig.ports[2]), 300.0);
}

TEST(TopologyAudit, ConsistentTopologyIsClean)
{
    Rig rig;
    TopologyAuditor auditor(rig.tree, 5.0);
    const auto loads = loadsOf(100, 200, 300, 400);
    // Meters agree with the wiring (within noise).
    topo::NodeLoadMap measured{{rig.left, 301.0},
                               {rig.right, 699.0},
                               {rig.top, 1002.0}};
    const auto report = auditor.audit(loads, measured);
    EXPECT_TRUE(report.clean());
    EXPECT_FALSE(report.hypothesis.has_value());
}

TEST(TopologyAudit, FlagsDisagreeingNodes)
{
    Rig rig;
    TopologyAuditor auditor(rig.tree, 5.0);
    const auto loads = loadsOf(100, 200, 300, 400);
    // Meters say the left branch carries 100 W more than claimed.
    topo::NodeLoadMap measured{{rig.left, 400.0}, {rig.right, 600.0}};
    const auto report = auditor.audit(loads, measured);
    ASSERT_EQ(report.discrepancies.size(), 2u);
    EXPECT_EQ(report.discrepancies[0].node, rig.left);
    EXPECT_NEAR(report.discrepancies[0].error(), 100.0, 1e-9);
}

TEST(TopologyAudit, LocatesSingleMiswiredSupply)
{
    Rig rig;
    TopologyAuditor auditor(rig.tree, 5.0);
    // Topology claims s2 (300 W) is on the right branch, but the meters
    // show it actually feeds from the left branch.
    const auto loads = loadsOf(100, 200, 300, 400);
    topo::NodeLoadMap measured{{rig.left, 600.0},
                               {rig.right, 400.0},
                               {rig.top, 1000.0}};
    const auto report = auditor.audit(loads, measured);
    ASSERT_FALSE(report.clean());
    ASSERT_TRUE(report.hypothesis.has_value());
    EXPECT_EQ(report.hypothesis->supply.server, 2);
    EXPECT_EQ(report.hypothesis->claimedParent, rig.right);
    EXPECT_EQ(report.hypothesis->actualParent, rig.left);
    EXPECT_NEAR(report.hypothesis->residual, 0.0, 1e-9);
}

TEST(TopologyAudit, AmbiguousWhenSupplyUnloaded)
{
    Rig rig;
    TopologyAuditor auditor(rig.tree, 5.0);
    // s2 is mis-wired but drawing ~nothing: electrically undetectable,
    // so no node disagrees and the report is clean.
    const auto loads = loadsOf(100, 200, 0, 400);
    topo::NodeLoadMap measured{{rig.left, 300.0}, {rig.right, 400.0}};
    const auto report = auditor.audit(loads, measured);
    EXPECT_TRUE(report.clean());
}

TEST(TopologyAudit, NoHypothesisWhenNothingExplains)
{
    Rig rig;
    TopologyAuditor auditor(rig.tree, 5.0);
    const auto loads = loadsOf(100, 200, 300, 400);
    // Meters report an extra 500 W on the top breaker only — no single
    // supply move between branches can explain a top-level excess.
    topo::NodeLoadMap measured{{rig.left, 300.0},
                               {rig.right, 700.0},
                               {rig.top, 1500.0}};
    const auto report = auditor.audit(loads, measured);
    ASSERT_FALSE(report.clean());
    EXPECT_FALSE(report.hypothesis.has_value());
}

TEST(TopologyAudit, DeepTreeLocatesAcrossRpps)
{
    // 2 RPPs x 2 CDUs x 3 ports; mis-wire one port across RPPs.
    topo::PowerTree tree(0, 0, "deep");
    const auto root =
        tree.makeRoot(topo::NodeKind::Transformer, "xfmr", 50000.0);
    std::vector<topo::NodeId> cdus;
    std::int32_t server = 0;
    topo::SupplyLoadMap loads;
    util::Rng rng(5);
    for (int r = 0; r < 2; ++r) {
        const auto rpp = tree.addChild(root, topo::NodeKind::Rpp,
                                       "rpp" + std::to_string(r),
                                       20000.0);
        for (int c = 0; c < 2; ++c) {
            const auto cdu = tree.addChild(
                rpp, topo::NodeKind::Cdu,
                "cdu" + std::to_string(r) + std::to_string(c), 7000.0);
            cdus.push_back(cdu);
            for (int s = 0; s < 3; ++s, ++server) {
                tree.addSupplyPort(cdu, "p" + std::to_string(server),
                                   {server, 0});
                loads[{server, 0}] = rng.uniform(150.0, 450.0);
            }
        }
    }

    TopologyAuditor auditor(tree, 5.0);
    // Ground truth: server 7 (claimed cdus[2]) actually sits on cdus[0].
    auto truth = auditor.predictLoads(loads);
    const double moved = loads.at({7, 0});
    topo::NodeLoadMap measured;
    for (const auto cdu : cdus)
        measured[cdu] = truth.at(cdu);
    measured[cdus[2]] -= moved;
    measured[cdus[0]] += moved;
    // RPP meters too.
    const auto rpp0 = tree.node(cdus[0]).parent;
    const auto rpp1 = tree.node(cdus[2]).parent;
    measured[rpp0] = truth.at(rpp0) + moved;
    measured[rpp1] = truth.at(rpp1) - moved;

    const auto report = auditor.audit(loads, measured);
    ASSERT_TRUE(report.hypothesis.has_value());
    EXPECT_EQ(report.hypothesis->supply.server, 7);
    EXPECT_EQ(report.hypothesis->actualParent, cdus[0]);
}
