/**
 * @file
 * Unit tests for the minimal JSON reader: full value grammar, escapes,
 * comments, trailing commas, accessors, and error reporting.
 */

#include <gtest/gtest.h>

#include <functional>

#include "util/json.hh"
#include "util/random.hh"

using capmaestro::util::Json;
using capmaestro::util::parseJson;

TEST(Json, Primitives)
{
    EXPECT_TRUE(parseJson("null").isNull());
    EXPECT_TRUE(parseJson("true").asBool());
    EXPECT_FALSE(parseJson("false").asBool());
    EXPECT_DOUBLE_EQ(parseJson("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(parseJson("-3.5e2").asNumber(), -350.0);
    EXPECT_EQ(parseJson("\"hello\"").asString(), "hello");
}

TEST(Json, NestedStructure)
{
    const Json doc = parseJson(R"({
        "name": "dc1",
        "feeds": 2,
        "trees": [ {"feed": 0}, {"feed": 1} ],
        "flags": { "spo": true }
    })");
    EXPECT_EQ(doc.at("name").asString(), "dc1");
    EXPECT_DOUBLE_EQ(doc.at("feeds").asNumber(), 2.0);
    ASSERT_EQ(doc.at("trees").asArray().size(), 2u);
    EXPECT_DOUBLE_EQ(
        doc.at("trees").asArray()[1].at("feed").asNumber(), 1.0);
    EXPECT_TRUE(doc.at("flags").at("spo").asBool());
}

TEST(Json, StringEscapes)
{
    EXPECT_EQ(parseJson(R"("a\"b\\c\n\t")").asString(), "a\"b\\c\n\t");
    EXPECT_EQ(parseJson(R"("Aé")").asString(), "A\xc3\xa9");
}

TEST(Json, CommentsAndTrailingCommas)
{
    const Json doc = parseJson(R"(// header comment
    {
        "a": 1, // inline comment
        "b": [1, 2, 3,],
    })");
    EXPECT_DOUBLE_EQ(doc.at("a").asNumber(), 1.0);
    EXPECT_EQ(doc.at("b").asArray().size(), 3u);
}

TEST(Json, DefaultAccessors)
{
    const Json doc = parseJson(R"({"x": 5, "s": "v", "f": false})");
    EXPECT_DOUBLE_EQ(doc.numberOr("x", 0.0), 5.0);
    EXPECT_DOUBLE_EQ(doc.numberOr("missing", 7.0), 7.0);
    EXPECT_EQ(doc.stringOr("s", "d"), "v");
    EXPECT_EQ(doc.stringOr("missing", "d"), "d");
    EXPECT_FALSE(doc.boolOr("f", true));
    EXPECT_TRUE(doc.boolOr("missing", true));
    EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, EmptyContainers)
{
    EXPECT_TRUE(parseJson("{}").asObject().empty());
    EXPECT_TRUE(parseJson("[]").asArray().empty());
}

TEST(Json, SerializeRoundTripFuzz)
{
    // Random nested documents must survive serialize -> parse ->
    // serialize byte-identically (a fixpoint after one round trip).
    capmaestro::util::Rng rng(99);
    std::function<Json(int)> gen = [&](int depth) -> Json {
        const int kind = depth > 2 ? (int)rng.uniformInt(0, 3)
                                   : (int)rng.uniformInt(0, 5);
        switch (kind) {
          case 0: return Json();
          case 1: return Json(rng.chance(0.5));
          case 2: return Json(rng.uniform(-1e6, 1e6));
          case 3: return Json("s" + std::to_string(rng.uniformInt(0, 999)));
          case 4: {
              Json::Array a;
              const int n = (int)rng.uniformInt(0, 4);
              for (int i = 0; i < n; ++i)
                  a.push_back(gen(depth + 1));
              return Json(std::move(a));
          }
          default: {
              Json::Object o;
              const int n = (int)rng.uniformInt(0, 4);
              for (int i = 0; i < n; ++i)
                  o.emplace("k" + std::to_string(i), gen(depth + 1));
              return Json(std::move(o));
          }
        }
    };
    for (int trial = 0; trial < 50; ++trial) {
        const Json doc = gen(0);
        const std::string once = capmaestro::util::serializeJson(doc);
        const std::string twice =
            capmaestro::util::serializeJson(parseJson(once));
        EXPECT_EQ(once, twice) << "trial " << trial;
    }
}

TEST(JsonDeath, Malformed)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(parseJson("{"), testing::ExitedWithCode(1),
                "expected a quoted key");
    EXPECT_EXIT(parseJson("[1,"), testing::ExitedWithCode(1),
                "expected a value");
    EXPECT_EXIT(parseJson("{\"a\" 1}"), testing::ExitedWithCode(1),
                "expected ':'");
    EXPECT_EXIT(parseJson("[1 2]"), testing::ExitedWithCode(1),
                "expected ',' or ']'");
    EXPECT_EXIT(parseJson("\"unterminated"), testing::ExitedWithCode(1),
                "unterminated string");
    EXPECT_EXIT(parseJson("{} extra"), testing::ExitedWithCode(1),
                "trailing content");
    EXPECT_EXIT(parseJson(R"({"a":1,"a":2})"), testing::ExitedWithCode(1),
                "duplicate key");
}

TEST(JsonDeath, TypeMismatch)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    const Json doc = parseJson(R"({"a": 1})");
    EXPECT_EXIT(doc.at("a").asString(), testing::ExitedWithCode(1),
                "expected string, got number");
    EXPECT_EXIT(doc.at("b"), testing::ExitedWithCode(1),
                "missing required key");
}

TEST(JsonDeath, ErrorPositionsReported)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    // The bad token is on line 3.
    EXPECT_EXIT(parseJson("{\n  \"a\": 1,\n  \"b\": @\n}", "test.json"),
                testing::ExitedWithCode(1), "test.json:3");
}
