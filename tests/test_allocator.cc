/**
 * @file
 * FleetAllocator tests: multi-feed budget allocation, enforceable-cap
 * derivation, the stranded-power optimization on the paper's Figure 7a
 * scenario (Table 3), feed failure, and fleet-level safety properties.
 */

#include <gtest/gtest.h>

#include <memory>

#include "control/allocator.hh"
#include "policy/policy.hh"
#include "topology/power_system.hh"
#include "util/random.hh"

using namespace capmaestro;
using ctrl::FleetAllocator;
using ctrl::ServerAllocInput;

namespace {

/**
 * Figure 7a: two feeds (X=0, Y=1), each with a 1400 W top CB and two
 * 750 W child CBs. SA is X-only, SB is Y-only, SC/SD are dual-corded.
 * Supply index 0 = X side, 1 = Y side.
 */
std::unique_ptr<topo::PowerSystem>
makeFig7System()
{
    auto sys = std::make_unique<topo::PowerSystem>(2);
    for (int feed = 0; feed < 2; ++feed) {
        auto tree = std::make_unique<topo::PowerTree>(
            feed, 0, feed == 0 ? "X" : "Y");
        const auto top = tree->makeRoot(topo::NodeKind::Breaker,
                                        "topCB", 1400.0);
        const auto left = tree->addChild(top, topo::NodeKind::Breaker,
                                         "leftCB", 750.0);
        const auto right = tree->addChild(top, topo::NodeKind::Breaker,
                                          "rightCB", 750.0);
        if (feed == 0) {
            tree->addSupplyPort(left, "SA.X", {0, 0});
            tree->addSupplyPort(left, "SC.X", {2, 0});
            tree->addSupplyPort(right, "SD.X", {3, 0});
        } else {
            tree->addSupplyPort(left, "SB.Y", {1, 1});
            tree->addSupplyPort(left, "SC.Y", {2, 1});
            tree->addSupplyPort(right, "SD.Y", {3, 1});
        }
        sys->addTree(std::move(tree));
    }
    return sys;
}

/** Table 3 fleet: SA high priority, measured demands and splits. */
std::vector<ServerAllocInput>
makeFig7Fleet()
{
    std::vector<ServerAllocInput> fleet(4);
    for (auto &s : fleet) {
        s.capMin = 270.0;
        s.capMax = 490.0;
        s.supplies.assign(2, {});
    }
    // SA: X-only, high priority.
    fleet[0].priority = 1;
    fleet[0].demand = 414.0;
    fleet[0].supplies[0] = {1.0, true};
    fleet[0].supplies[1] = {1e-9, false}; // disconnected Y supply
    // SB: Y-only.
    fleet[1].demand = 415.0;
    fleet[1].supplies[0] = {1e-9, false}; // disconnected X supply
    fleet[1].supplies[1] = {1.0, true};
    // SC: dual, 53/47 split.
    fleet[2].demand = 433.0;
    fleet[2].supplies[0] = {0.53, true};
    fleet[2].supplies[1] = {0.47, true};
    // SD: dual, 46/54 split.
    fleet[3].demand = 439.0;
    fleet[3].supplies[0] = {0.46, true};
    fleet[3].supplies[1] = {0.54, true};
    return fleet;
}

} // namespace

TEST(FleetAllocator, Fig7WithoutSpoMatchesTable3Shape)
{
    auto sys = makeFig7System();
    FleetAllocator alloc(*sys, ctrl::TreePolicy::globalPriority());
    const auto fleet = makeFig7Fleet();
    const auto result =
        alloc.allocate(fleet, {700.0, 700.0}, /*enable_spo=*/false);

    ASSERT_TRUE(result.feasible);
    EXPECT_EQ(result.passes, 1);

    // SA (high priority): full demand on the X side (Table 3: 415/0).
    EXPECT_NEAR(result.servers[0].supplyBudget[0], 414.0, 2.0);
    EXPECT_FALSE(result.servers[0].capped);

    // SB: Y-only, throttled to ~346 W (Table 3: 0/346).
    EXPECT_NEAR(result.servers[1].supplyBudget[1], 343.0, 8.0);
    EXPECT_TRUE(result.servers[1].capped);

    // SC/SD: X side binds (~152/132), Y side over-budgeted (~164/187).
    EXPECT_NEAR(result.servers[2].supplyBudget[0], 153.0, 6.0);
    EXPECT_NEAR(result.servers[2].supplyBudget[1], 165.0, 8.0);
    EXPECT_NEAR(result.servers[3].supplyBudget[0], 133.0, 6.0);
    EXPECT_NEAR(result.servers[3].supplyBudget[1], 191.0, 8.0);
    EXPECT_TRUE(result.servers[2].capped);
    EXPECT_TRUE(result.servers[3].capped);
}

TEST(FleetAllocator, Fig7SpoReclaimsStrandedPower)
{
    auto sys = makeFig7System();
    FleetAllocator alloc(*sys, ctrl::TreePolicy::globalPriority());
    const auto fleet = makeFig7Fleet();

    const auto before =
        alloc.allocate(fleet, {700.0, 700.0}, /*enable_spo=*/false);
    const auto after =
        alloc.allocate(fleet, {700.0, 700.0}, /*enable_spo=*/true);

    ASSERT_EQ(after.passes, 2);
    // SC and SD each strand ~25-36 W on the Y side (Table 3: 27/29 W).
    EXPECT_GT(after.servers[2].strandedBeforeSpo, 20.0);
    EXPECT_GT(after.servers[3].strandedBeforeSpo, 20.0);
    EXPECT_GT(after.strandedReclaimed, 45.0);

    // SB absorbs the reclaimed power: budget rises toward its demand and
    // its throughput approaches uncapped (Fig. 7b).
    EXPECT_GT(after.servers[1].supplyBudget[1],
              before.servers[1].supplyBudget[1] + 40.0);
    EXPECT_GT(after.servers[1].enforceableCapAc, 400.0);

    // SC/SD enforceable caps are unchanged: the power was truly stranded.
    EXPECT_NEAR(after.servers[2].enforceableCapAc,
                before.servers[2].enforceableCapAc, 1.5);
    EXPECT_NEAR(after.servers[3].enforceableCapAc,
                before.servers[3].enforceableCapAc, 1.5);

    // SA is untouched.
    EXPECT_NEAR(after.servers[0].enforceableCapAc,
                before.servers[0].enforceableCapAc, 1e-6);
}

TEST(FleetAllocator, Fig7SpoRaisesFeedUtilization)
{
    auto sys = makeFig7System();
    FleetAllocator alloc(*sys, ctrl::TreePolicy::globalPriority());
    const auto fleet = makeFig7Fleet();

    auto consumption_y = [&](const ctrl::FleetAllocation &r) {
        double total = 0.0;
        for (std::size_t i = 0; i < fleet.size(); ++i) {
            const auto &in = fleet[i];
            const auto &out = r.servers[i];
            const double used = std::min(out.enforceableCapAc,
                                         out.effectiveDemand);
            // Live Y-side share.
            double y_share = 0.0;
            if (in.supplies[1].live) {
                const double live_sum =
                    (in.supplies[0].live ? in.supplies[0].share : 0.0)
                    + in.supplies[1].share;
                y_share = in.supplies[1].share / live_sum;
            }
            total += used * y_share;
        }
        return total;
    };

    const auto before =
        alloc.allocate(fleet, {700.0, 700.0}, /*enable_spo=*/false);
    const auto after =
        alloc.allocate(fleet, {700.0, 700.0}, /*enable_spo=*/true);
    // Fig. 7c: the Y-side feed draws more (approaches its 700 W budget).
    EXPECT_GT(consumption_y(after), consumption_y(before) + 40.0);
    EXPECT_LE(consumption_y(after), 700.0 + 1e-6);
}

TEST(FleetAllocator, FeedFailureShiftsAllLoad)
{
    // One feed down: the surviving feed carries everything and, per the
    // N+N sizing rule, may use the full contractual budget.
    auto sys = makeFig7System();
    sys->failFeed(0);
    FleetAllocator alloc(*sys, ctrl::TreePolicy::globalPriority());
    auto fleet = makeFig7Fleet();

    const auto result =
        alloc.allocate(fleet, {1400.0, 1400.0}, /*enable_spo=*/false);
    EXPECT_TRUE(result.feasible);

    // SA has no live supply: dark.
    EXPECT_DOUBLE_EQ(result.servers[0].enforceableCapAc, 0.0);
    EXPECT_TRUE(result.servers[0].capped);

    // SC and SD now lean fully on the Y side (share 1.0). The Y-side left
    // CB (750 W) hosts SB + SC whose demands total 848 W, so it binds and
    // both stay capped; SD alone under the right CB is served in full.
    EXPECT_DOUBLE_EQ(result.servers[2].supplyBudget[0], 0.0);
    EXPECT_LE(result.servers[1].supplyBudget[1]
                  + result.servers[2].supplyBudget[1],
              750.0 + 1e-6);
    EXPECT_TRUE(result.servers[2].capped);
    EXPECT_GE(result.servers[3].supplyBudget[1], 439.0 - 1e-6);
    EXPECT_FALSE(result.servers[3].capped);

    // Y-side budgets stay within the root budget.
    const double y_total = result.servers[1].supplyBudget[1]
                           + result.servers[2].supplyBudget[1]
                           + result.servers[3].supplyBudget[1];
    EXPECT_LE(y_total, 1400.0 + 1e-6);
}

TEST(FleetAllocator, FeedFailureInfeasibleBudgetFlagged)
{
    // Same failure but the old 700 W budget cannot cover the 810 W of
    // floors: the allocator must flag infeasibility and scale floors.
    auto sys = makeFig7System();
    sys->failFeed(0);
    FleetAllocator alloc(*sys, ctrl::TreePolicy::globalPriority());
    const auto fleet = makeFig7Fleet();
    const auto result =
        alloc.allocate(fleet, {700.0, 700.0}, /*enable_spo=*/false);
    EXPECT_FALSE(result.feasible);
    const double y_total = result.servers[1].supplyBudget[1]
                           + result.servers[2].supplyBudget[1]
                           + result.servers[3].supplyBudget[1];
    EXPECT_LE(y_total, 700.0 + 1e-6);
}

TEST(FleetAllocator, UncappedWhenBudgetAmple)
{
    auto sys = makeFig7System();
    FleetAllocator alloc(*sys, ctrl::TreePolicy::globalPriority());
    const auto fleet = makeFig7Fleet();
    const auto result =
        alloc.allocate(fleet, {1400.0, 1400.0}, /*enable_spo=*/true);
    for (const auto &s : result.servers)
        EXPECT_FALSE(s.capped);
    // No stranded power when nobody is capped.
    EXPECT_EQ(result.passes, 1);
    EXPECT_DOUBLE_EQ(result.strandedReclaimed, 0.0);
}

TEST(FleetAllocator, SpoFixpointReclaimsCrossFeedChains)
{
    // Reclaiming stranded budget on one feed can flip another server's
    // binding supply and strand budget that only a further pass can
    // recover — a chain the paper's single re-run (2 passes) leaves on
    // the table. Sweep random dual-feed fleets: such chains must occur,
    // and iterating to the fixpoint must never make any server worse.
    util::Rng rng(42);
    int deep_chains = 0;
    for (int trial = 0; trial < 300; ++trial) {
        auto sys = std::make_unique<topo::PowerSystem>(2);
        const int servers = 3 + static_cast<int>(rng.uniformInt(0, 5));
        for (int f = 0; f < 2; ++f) {
            auto t = std::make_unique<topo::PowerTree>(f, 0,
                                                       f ? "Y" : "X");
            const auto root = t->makeRoot(topo::NodeKind::Breaker, "r",
                                          rng.uniform(400.0, 1500.0));
            for (int s = 0; s < servers; ++s)
                t->addSupplyPort(root, "p" + std::to_string(s), {s, f});
            sys->addTree(std::move(t));
        }
        std::vector<ServerAllocInput> fleet(
            static_cast<std::size_t>(servers));
        for (auto &s : fleet) {
            s.priority = static_cast<Priority>(rng.uniformInt(0, 2));
            s.capMin = rng.uniform(100.0, 200.0);
            s.capMax = s.capMin + rng.uniform(100.0, 300.0);
            s.demand = rng.uniform(s.capMin, s.capMax);
            const double share = rng.uniform(0.25, 0.75);
            s.supplies = {{share, true}, {1.0 - share, true}};
            if (rng.chance(0.25))
                s.supplies[rng.uniformInt(0, 1)].live = false;
        }
        const std::vector<Watts> budgets{rng.uniform(300.0, 1400.0),
                                         rng.uniform(300.0, 1400.0)};

        FleetAllocator alloc(*sys, ctrl::TreePolicy::globalPriority());
        const auto paper = alloc.allocate(fleet, budgets, true, 1.0, 2);
        const auto fixpoint =
            alloc.allocate(fleet, budgets, true, 1.0, 8);

        if (fixpoint.passes > 2)
            ++deep_chains;
        EXPECT_LE(fixpoint.passes, 8);
        EXPECT_GE(fixpoint.strandedReclaimed,
                  paper.strandedReclaimed - 1e-6);
        for (std::size_t i = 0; i < fleet.size(); ++i) {
            EXPECT_GE(fixpoint.servers[i].enforceableCapAc,
                      paper.servers[i].enforceableCapAc - 0.5)
                << "trial " << trial << " server " << i;
        }
    }
    // The chains the fixpoint exists for actually occur (~10 % of
    // random cases at these parameters).
    EXPECT_GE(deep_chains, 5);
}

TEST(FleetAllocator, SpoNeverReducesAnyEnforceableCap)
{
    // Property: across random dual-feed fleets, SPO must never make any
    // server worse than the first pass.
    util::Rng rng(808);
    for (int trial = 0; trial < 60; ++trial) {
        auto sys = makeFig7System();
        FleetAllocator alloc(*sys, ctrl::TreePolicy::globalPriority());
        std::vector<ServerAllocInput> fleet(4);
        for (std::size_t i = 0; i < fleet.size(); ++i) {
            auto &s = fleet[i];
            s.priority = static_cast<Priority>(rng.uniformInt(0, 1));
            s.capMin = 270.0;
            s.capMax = 490.0;
            s.demand = rng.uniform(280.0, 490.0);
            const double x_share = rng.uniform(0.3, 0.7);
            s.supplies = {{x_share, true}, {1.0 - x_share, true}};
        }
        // SA/SB single-corded as in the figure.
        fleet[0].supplies[1].live = false;
        fleet[1].supplies[0].live = false;

        const double budget = rng.uniform(550.0, 900.0);
        const auto before =
            alloc.allocate(fleet, {budget, budget}, false);
        const auto after =
            alloc.allocate(fleet, {budget, budget}, true);
        if (!before.feasible)
            continue;
        for (std::size_t i = 0; i < fleet.size(); ++i) {
            EXPECT_GE(after.servers[i].enforceableCapAc,
                      before.servers[i].enforceableCapAc - 0.5)
                << "trial " << trial << " server " << i;
        }
    }
}

TEST(FleetAllocator, BudgetsRespectEveryBreaker)
{
    util::Rng rng(4242);
    for (int trial = 0; trial < 40; ++trial) {
        auto sys = makeFig7System();
        FleetAllocator alloc(*sys, ctrl::TreePolicy::globalPriority());
        std::vector<ServerAllocInput> fleet(4);
        for (auto &s : fleet) {
            s.priority = static_cast<Priority>(rng.uniformInt(0, 2));
            s.capMin = 270.0;
            s.capMax = 490.0;
            s.demand = rng.uniform(160.0, 490.0);
            const double x_share = rng.uniform(0.35, 0.65);
            s.supplies = {{x_share, true}, {1.0 - x_share, true}};
        }
        const auto result =
            alloc.allocate(fleet, {1200.0, 1200.0}, rng.chance(0.5));

        // Per-tree: sum of leaf budgets under each CB <= its limit.
        for (std::size_t t = 0; t < alloc.treeCount(); ++t) {
            const auto &ct = alloc.tree(t);
            const auto &topo_tree = ct.topoTree();
            const auto &top = topo_tree.node(topo_tree.root());
            double top_sum = 0.0;
            for (const auto cb : top.children) {
                double cb_sum = 0.0;
                for (const auto leaf : topo_tree.node(cb).children)
                    cb_sum += ct.nodeBudget(leaf);
                EXPECT_LE(cb_sum, topo_tree.node(cb).limit() + 1e-6);
                top_sum += cb_sum;
            }
            EXPECT_LE(top_sum, 1200.0 + 1e-6);
        }
        (void)result;
    }
}

TEST(FleetAllocator, LocalVsGlobalOnFig2Style)
{
    // High-priority server under one CB, three low under both CBs: the
    // global policy must serve the high server strictly better than the
    // no-priority policy when power is scarce.
    auto make_inputs = [] {
        std::vector<ServerAllocInput> fleet(4);
        for (auto &s : fleet) {
            s.capMin = 270.0;
            s.capMax = 490.0;
            s.demand = 430.0;
            s.supplies = {{1.0, true}};
        }
        fleet[0].priority = 1;
        return fleet;
    };
    auto make_sys = [] {
        auto sys = std::make_unique<topo::PowerSystem>(1);
        auto tree = std::make_unique<topo::PowerTree>(0, 0, "f");
        const auto top =
            tree->makeRoot(topo::NodeKind::Breaker, "top", 1400.0);
        const auto l =
            tree->addChild(top, topo::NodeKind::Breaker, "l", 750.0);
        const auto r =
            tree->addChild(top, topo::NodeKind::Breaker, "r", 750.0);
        tree->addSupplyPort(l, "SA", {0, 0});
        tree->addSupplyPort(l, "SB", {1, 0});
        tree->addSupplyPort(r, "SC", {2, 0});
        tree->addSupplyPort(r, "SD", {3, 0});
        sys->addTree(std::move(tree));
        return sys;
    };

    const auto fleet = make_inputs();
    double got[3];
    int idx = 0;
    for (const auto kind : policy::kAllPolicies) {
        auto sys = make_sys();
        FleetAllocator alloc(*sys, policy::treePolicy(kind));
        const auto result = alloc.allocate(fleet, {1240.0}, false);
        got[idx++] = result.servers[0].enforceableCapAc;
    }
    // Table 1 ordering: No Priority < Local Priority < Global Priority.
    EXPECT_LT(got[0], got[1]);
    EXPECT_LT(got[1], got[2]);
    EXPECT_NEAR(got[2], 430.0, 0.5);
}
