/**
 * @file
 * Topology-analysis and placement-advisor tests: breaker selectivity,
 * oversubscription ratios on the Table 4 center, and phase balancing.
 */

#include <gtest/gtest.h>

#include "sim/datacenter.hh"
#include "sim/placement.hh"
#include "topology/analysis.hh"
#include "util/random.hh"

using namespace capmaestro;

TEST(Selectivity, WellCoordinatedTreeIsClean)
{
    topo::PowerTree tree(0, 0, "ok");
    const auto root = tree.makeRoot(topo::NodeKind::Breaker, "r", 1400.0);
    const auto mid = tree.addChild(root, topo::NodeKind::Breaker, "m",
                                   750.0);
    tree.addSupplyPort(mid, "s", {0, 0});
    EXPECT_TRUE(topo::checkSelectivity(tree).empty());
}

TEST(Selectivity, FlagsChildAtOrAboveParent)
{
    topo::PowerTree tree(0, 0, "bad");
    const auto root = tree.makeRoot(topo::NodeKind::Breaker, "r", 750.0);
    const auto mid = tree.addChild(root, topo::NodeKind::Breaker, "m",
                                   750.0); // equal: miscoordinated
    tree.addSupplyPort(mid, "s", {0, 0});
    const auto violations = topo::checkSelectivity(tree);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].parent, root);
    EXPECT_EQ(violations[0].child, mid);
    EXPECT_DOUBLE_EQ(violations[0].ratio, 1.0);
}

TEST(Selectivity, UnlimitedNodesSkipped)
{
    topo::PowerTree tree(0, 0, "mixed");
    const auto root = tree.makeRoot(topo::NodeKind::Contractual, "c",
                                    topo::kUnlimited);
    const auto mid = tree.addChild(root, topo::NodeKind::Breaker, "m",
                                   5000.0);
    tree.addSupplyPort(mid, "s", {0, 0});
    EXPECT_TRUE(topo::checkSelectivity(tree).empty());
}

TEST(Selectivity, Table4CenterIsCoordinated)
{
    sim::DataCenterParams params;
    params.phases = 1;
    params.serversPerRackPerPhase = 2;
    const auto dc = sim::buildDataCenter(params);
    for (const auto &tree : dc.system->trees())
        EXPECT_TRUE(topo::checkSelectivity(*tree).empty());
}

TEST(Oversubscription, Table4Ratios)
{
    sim::DataCenterParams params;
    params.phases = 1;
    params.serversPerRackPerPhase = 2;
    const auto dc = sim::buildDataCenter(params);
    const auto report =
        topo::oversubscriptionReport(dc.system->tree(0));

    // Transformers: 9 RPPs x 41.6 kW vs. 336 kW -> ratio ~1.114.
    // RPPs: 9 CDUs x 5.52 kW vs. 41.6 kW -> ratio ~1.194.
    bool saw_xfmr = false, saw_rpp = false;
    const auto &tree = dc.system->tree(0);
    for (const auto &o : report) {
        switch (tree.node(o.node).kind) {
          case topo::NodeKind::Transformer:
            EXPECT_NEAR(o.ratio, 9.0 * 41600.0 / 336000.0, 1e-9);
            saw_xfmr = true;
            break;
          case topo::NodeKind::Rpp:
            EXPECT_NEAR(o.ratio, 9.0 * 5520.0 / 41600.0, 1e-9);
            saw_rpp = true;
            break;
          default:
            break;
        }
    }
    EXPECT_TRUE(saw_xfmr);
    EXPECT_TRUE(saw_rpp);
}

TEST(Oversubscription, ProvisioningRatio)
{
    topo::PowerTree tree(0, 0, "p");
    const auto root = tree.makeRoot(topo::NodeKind::Breaker, "r", 1000.0);
    for (int i = 0; i < 3; ++i) {
        const auto cdu = tree.addChild(root, topo::NodeKind::Cdu,
                                       "c" + std::to_string(i), 600.0);
        tree.addSupplyPort(cdu, "s" + std::to_string(i), {i, 0});
    }
    // 3 x 600 of edge capacity over a 1000 W root.
    EXPECT_NEAR(topo::provisioningRatio(tree), 1.8, 1e-12);
}

// -------------------------------------------------------------- placement

TEST(Placement, RoundRobinShape)
{
    const auto rr = sim::roundRobinPhases(7, 3);
    ASSERT_EQ(rr.size(), 7u);
    EXPECT_EQ(rr[0], 0);
    EXPECT_EQ(rr[1], 1);
    EXPECT_EQ(rr[2], 2);
    EXPECT_EQ(rr[3], 0);
}

TEST(Placement, BalancedBeatsRoundRobinOnSkewedFleet)
{
    // Heavy servers first: round-robin piles them onto phase 0.
    std::vector<Watts> demands;
    for (int i = 0; i < 30; ++i)
        demands.push_back(i % 3 == 0 ? 490.0 : 200.0);
    const auto rr = sim::roundRobinPhases(demands.size(), 3);
    const auto lpt = sim::balancePhases(demands, 3);
    EXPECT_LT(sim::phaseImbalance(demands, lpt, 3),
              sim::phaseImbalance(demands, rr, 3));
    EXPECT_LT(sim::phaseImbalance(demands, lpt, 3), 0.05);
}

TEST(Placement, PhaseLoadsConserveDemand)
{
    util::Rng rng(12);
    std::vector<Watts> demands;
    double total = 0.0;
    for (int i = 0; i < 50; ++i) {
        demands.push_back(rng.uniform(160.0, 490.0));
        total += demands.back();
    }
    const auto assignment = sim::balancePhases(demands, 3);
    const auto loads = sim::phaseLoads(demands, assignment, 3);
    EXPECT_NEAR(loads[0] + loads[1] + loads[2], total, 1e-6);
}

TEST(Placement, GreedyListSchedulingBound)
{
    // Any greedy list schedule satisfies
    //   peak <= mean + (1 - 1/m) * max_demand
    // (Graham); LPT is a refinement of greedy, so the bound must hold.
    util::Rng rng(13);
    for (int trial = 0; trial < 100; ++trial) {
        const int phases = 2 + static_cast<int>(rng.uniformInt(0, 2));
        std::vector<Watts> demands;
        double total = 0.0, biggest = 0.0;
        const int n = 1 + static_cast<int>(rng.uniformInt(0, 40));
        for (int i = 0; i < n; ++i) {
            demands.push_back(rng.uniform(100.0, 500.0));
            total += demands.back();
            biggest = std::max(biggest, demands.back());
        }
        const auto assignment = sim::balancePhases(demands, phases);
        const auto loads = sim::phaseLoads(demands, assignment, phases);
        const double peak =
            *std::max_element(loads.begin(), loads.end());
        const double bound =
            total / phases + (1.0 - 1.0 / phases) * biggest;
        EXPECT_LE(peak, bound + 1e-6) << "trial " << trial;
    }
}

TEST(Placement, SinglePhaseTrivial)
{
    const std::vector<Watts> demands{100.0, 200.0};
    const auto assignment = sim::balancePhases(demands, 1);
    EXPECT_EQ(assignment[0], 0);
    EXPECT_EQ(assignment[1], 0);
    EXPECT_DOUBLE_EQ(sim::phaseImbalance(demands, assignment, 1), 0.0);
}

TEST(Placement, Deterministic)
{
    const std::vector<Watts> demands{300.0, 300.0, 300.0, 300.0};
    EXPECT_EQ(sim::balancePhases(demands, 2),
              sim::balancePhases(demands, 2));
}
