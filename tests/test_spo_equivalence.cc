/**
 * @file
 * Equivalence suite for the distributed §4.4 stranded-power
 * optimization: on a lossless SimTransport (and in direct mode) the
 * message-plane SPO second pass must produce budgets bit-identical to
 * the monolithic FleetAllocator path — per supply, per period — across
 * the multi-supply / load-split scenarios in configs/. Also pins the
 * SPO counter semantics for the lossless case (every attempted tree
 * commits, nothing falls back).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "config/loader.hh"
#include "control/allocator.hh"
#include "core/distributed.hh"
#include "net/transport.hh"
#include "policy/policy.hh"
#include "sim/closed_loop.hh"
#include "util/json.hh"

using namespace capmaestro;

namespace {

std::string
configPath(const char *rel)
{
    return std::string(CAPMAESTRO_SOURCE_DIR) + "/" + rel;
}

void
expectBudgetsBitIdentical(const ctrl::FleetAllocation &mono,
                          const ctrl::FleetAllocation &plane,
                          int period)
{
    ASSERT_EQ(mono.servers.size(), plane.servers.size());
    for (std::size_t i = 0; i < mono.servers.size(); ++i) {
        const auto &mb = mono.servers[i].supplyBudget;
        const auto &pb = plane.servers[i].supplyBudget;
        ASSERT_EQ(mb.size(), pb.size());
        for (std::size_t s = 0; s < mb.size(); ++s) {
            EXPECT_EQ(std::bit_cast<std::uint64_t>(mb[s]),
                      std::bit_cast<std::uint64_t>(pb[s]))
                << "period " << period << " server " << i << " supply "
                << s;
        }
        EXPECT_EQ(std::bit_cast<std::uint64_t>(
                      mono.servers[i].enforceableCapAc),
                  std::bit_cast<std::uint64_t>(
                      plane.servers[i].enforceableCapAc))
            << "period " << period << " server " << i;
        EXPECT_EQ(std::bit_cast<std::uint64_t>(
                      mono.servers[i].strandedBeforeSpo),
                  std::bit_cast<std::uint64_t>(
                      plane.servers[i].strandedBeforeSpo))
            << "period " << period << " server " << i;
    }
    EXPECT_EQ(mono.passes, plane.passes) << "period " << period;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(mono.strandedReclaimed),
              std::bit_cast<std::uint64_t>(plane.strandedReclaimed))
        << "period " << period;
}

/**
 * Run the scenario twice — monolithic and lossless message plane —
 * and assert per-supply budget bit-equivalence every control period.
 * Returns true when the SPO second round actually ran at least once
 * (so callers can assert the scenario exercised it).
 */
bool
runScenarioEquivalence(const char *rel_path)
{
    auto mono_scenario = config::loadScenarioFile(configPath(rel_path));
    auto plane_scenario = config::loadScenarioFile(configPath(rel_path));
    config::applyTransportJson(plane_scenario.service,
                               util::parseJson("{\"dropRate\": 0}"));

    auto mono_sim = config::makeSimulation(std::move(mono_scenario), 1);
    auto plane_sim = config::makeSimulation(std::move(plane_scenario), 1);

    bool spo_ran = false;
    for (int period = 0; period < 20; ++period) {
        mono_sim.run(8);
        plane_sim.run(8);
        const auto &mono = mono_sim.service().lastStats().allocation;
        const auto &plane = plane_sim.service().lastStats().allocation;
        expectBudgetsBitIdentical(mono, plane, period);

        // Lossless: every attempted tree commits and nothing degrades.
        const auto &msgs = plane_sim.service().lastStats().messages;
        EXPECT_EQ(msgs.spoTreesAttempted,
                  msgs.spoCommittedTrees + msgs.spoFallbackTrees);
        EXPECT_EQ(msgs.spoFallbackTrees, 0u);
        EXPECT_TRUE(msgs.degraded.empty());
        if (msgs.spoRounds > 0) {
            spo_ran = true;
            EXPECT_GT(msgs.spoSummaryMessages, 0u);
            EXPECT_GT(msgs.spoBudgetMessages, 0u);
            EXPECT_GT(msgs.spoBytesOnWire, 0u);
            EXPECT_GE(msgs.bytesOnWire, msgs.spoBytesOnWire);
        }
    }
    return spo_ran;
}

/** Fleet inputs for the scenario's servers at one demand fraction. */
std::vector<ctrl::ServerAllocInput>
inputsFrom(const config::LoadedScenario &scenario, double demand_frac)
{
    std::vector<ctrl::ServerAllocInput> inputs;
    inputs.reserve(scenario.servers.size());
    for (const auto &server : scenario.servers) {
        const auto &spec = server.spec;
        ctrl::ServerAllocInput in;
        in.priority = spec.priority;
        in.capMin = spec.capMin;
        in.capMax = spec.capMax;
        in.demand =
            spec.capMin + demand_frac * (spec.capMax - spec.capMin);
        in.supplies.resize(spec.supplies.size());
        for (std::size_t s = 0; s < spec.supplies.size(); ++s)
            in.supplies[s].share = spec.supplies[s].loadShare;
        inputs.push_back(std::move(in));
    }
    return inputs;
}

/**
 * Drive a DistributedControlPlane through one control period with SPO
 * rounds, mirroring CapMaestroService::runPlanePeriod: first-pass
 * iterate, then detect-stranded / iterateSpo / re-derive until the
 * pass budget is spent. Returns the resulting allocation.
 */
ctrl::FleetAllocation
runPlaneWithSpo(core::DistributedControlPlane &plane,
                const topo::PowerSystem &system,
                const std::vector<ctrl::ServerAllocInput> &inputs,
                const std::vector<Watts> &root_budgets, int spo_passes,
                core::MessageStats &stats)
{
    std::vector<std::vector<Fraction>> shares(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        shares[i] = ctrl::effectiveSupplyShares(
            system, inputs[i], static_cast<std::int32_t>(i));
    }
    for (const auto &tree : system.trees()) {
        for (const auto &ref : tree->suppliesUnder(tree->root())) {
            const auto sid = static_cast<std::size_t>(ref.server);
            const auto sup = static_cast<std::size_t>(ref.supply);
            const Fraction r =
                sup < shares[sid].size() ? shares[sid][sup] : 0.0;
            plane.setLeafInput(ref,
                               ctrl::scaledLeafInput(inputs[sid], r));
        }
    }

    stats = plane.iterate(root_budgets);

    ctrl::FleetAllocation alloc;
    const auto derive = [&] {
        ctrl::deriveServerCapsFrom(
            system, inputs, shares,
            [&](std::size_t, const topo::ServerSupplyRef &ref) {
                return plane.leafBudget(ref);
            },
            alloc);
    };
    derive();

    std::vector<Watts> stranded_first(inputs.size(), 0.0);
    while (alloc.passes < spo_passes) {
        const auto pins = ctrl::detectStrandedSupplies(
            system, inputs, shares, alloc, 1.0);
        if (alloc.passes == 1) {
            for (const auto &pin : pins) {
                stranded_first[static_cast<std::size_t>(
                    pin.ref.server)] += pin.stranded;
            }
        }
        if (pins.empty())
            break;
        const auto committed =
            plane.iterateSpo(root_budgets, pins, stats);
        for (const auto &pin : pins) {
            if (committed.count(pin.tree))
                alloc.strandedReclaimed += pin.stranded;
        }
        ++alloc.passes;
        derive();
        if (committed.empty())
            break;
    }
    for (std::size_t i = 0; i < inputs.size(); ++i)
        alloc.servers[i].strandedBeforeSpo = stranded_first[i];
    return alloc;
}

} // namespace

TEST(SpoEquivalence, DualFeedLoadSplitScenarioLosslessPlane)
{
    // Figure 7a: dual-corded servers with intrinsic share mismatches —
    // the canonical stranded-power testbed. SPO must actually fire.
    EXPECT_TRUE(runScenarioEquivalence("configs/dual_feed_spo.json"));
}

TEST(SpoEquivalence, ThreePhaseScenarioLosslessPlane)
{
    // Multi-supply (three-phase) server with uneven phase loading.
    // Whether or not SPO triggers each period, budgets must agree.
    runScenarioEquivalence("configs/three_phase.json");
}

TEST(SpoEquivalence, Fig2ScenarioLosslessPlane)
{
    // Single-supply servers, SPO disabled in the scenario: guards the
    // no-pin path (equivalence with zero SPO rounds).
    EXPECT_FALSE(runScenarioEquivalence("configs/fig2_testbed.json"));
}

TEST(SpoEquivalence, PlaneMatchesAllocatorAtEveryLeaf)
{
    // Plane-level check on the dual-feed topology: monolithic
    // FleetAllocator vs direct plane vs lossless transport plane, every
    // supply leaf bit-identical after the SPO second pass.
    auto scenario =
        config::loadScenarioFile(configPath("configs/dual_feed_spo.json"));
    const topo::PowerSystem &system = *scenario.system;
    const auto policy = policy::treePolicy(scenario.service.policy);
    const auto inputs = inputsFrom(scenario, 0.8);
    const auto &root_budgets = scenario.rootBudgets;

    ctrl::FleetAllocator allocator(system, policy);
    const auto mono =
        allocator.allocate(inputs, root_budgets, true, 1.0, 2);
    ASSERT_GT(mono.strandedReclaimed, 0.0)
        << "scenario no longer strands power; the test lost its teeth";

    core::DistributedControlPlane direct(system, policy);
    core::MessageStats direct_stats;
    const auto direct_alloc = runPlaneWithSpo(
        direct, system, inputs, root_budgets, 2, direct_stats);

    net::SimTransport lossless{net::TransportConfig{}};
    core::DistributedControlPlane transport(system, policy, lossless);
    core::MessageStats transport_stats;
    const auto transport_alloc = runPlaneWithSpo(
        transport, system, inputs, root_budgets, 2, transport_stats);

    for (std::size_t t = 0; t < system.trees().size(); ++t) {
        const auto &tree = system.tree(t);
        for (const auto &ref : tree.suppliesUnder(tree.root())) {
            const auto expected = std::bit_cast<std::uint64_t>(
                allocator.tree(t).leafBudget(ref));
            EXPECT_EQ(expected, std::bit_cast<std::uint64_t>(
                                    direct.leafBudget(ref)))
                << "direct plane, tree " << t << " server " << ref.server
                << " supply " << ref.supply;
            EXPECT_EQ(expected, std::bit_cast<std::uint64_t>(
                                    transport.leafBudget(ref)))
                << "transport plane, tree " << t << " server "
                << ref.server << " supply " << ref.supply;
        }
    }
    expectBudgetsBitIdentical(mono, direct_alloc, -1);
    expectBudgetsBitIdentical(mono, transport_alloc, -1);

    // Counter semantics for a clean round.
    for (const auto *stats : {&direct_stats, &transport_stats}) {
        EXPECT_EQ(stats->spoRounds, 1u);
        EXPECT_GT(stats->spoTreesAttempted, 0u);
        EXPECT_EQ(stats->spoTreesAttempted, stats->spoCommittedTrees);
        EXPECT_EQ(stats->spoFallbackTrees, 0u);
        EXPECT_GT(stats->spoSummaryMessages, 0u);
        EXPECT_GT(stats->spoBudgetMessages, 0u);
    }
    EXPECT_EQ(direct_stats.spoBytesOnWire, 0u);
    EXPECT_GT(transport_stats.spoBytesOnWire, 0u);
    EXPECT_EQ(transport_stats.spoRetries, 0u);
}

TEST(SpoEquivalence, MultiRoundSpoStaysEquivalent)
{
    // spoPasses > 2 iterates until no new stranded power appears; the
    // plane's lastTreeMetrics bookkeeping must track every committed
    // round for the overlay to stay exact.
    auto scenario =
        config::loadScenarioFile(configPath("configs/dual_feed_spo.json"));
    const topo::PowerSystem &system = *scenario.system;
    const auto policy = policy::treePolicy(scenario.service.policy);
    const auto &root_budgets = scenario.rootBudgets;

    for (const double frac : {0.55, 0.7, 0.85, 1.0}) {
        const auto inputs = inputsFrom(scenario, frac);
        ctrl::FleetAllocator allocator(system, policy);
        const auto mono =
            allocator.allocate(inputs, root_budgets, true, 1.0, 4);

        net::SimTransport lossless{net::TransportConfig{}};
        core::DistributedControlPlane plane(system, policy, lossless);
        core::MessageStats stats;
        const auto plane_alloc = runPlaneWithSpo(
            plane, system, inputs, root_budgets, 4, stats);

        expectBudgetsBitIdentical(mono, plane_alloc,
                                  static_cast<int>(frac * 100));
        EXPECT_EQ(stats.spoTreesAttempted,
                  stats.spoCommittedTrees + stats.spoFallbackTrees);
        EXPECT_EQ(stats.spoFallbackTrees, 0u);
    }
}
