/**
 * @file
 * Virtual-partition tests (§7 extension): priority-first capacity
 * division among a server's VMs, conservation, derived server priority,
 * and end-to-end behavior on a capped server.
 */

#include <gtest/gtest.h>

#include "device/server.hh"
#include "device/vm.hh"
#include "util/random.hh"

using namespace capmaestro;
using dev::VmPartitioner;
using dev::VmSpec;

namespace {

std::vector<VmSpec>
mixedTenancy()
{
    return {
        {"web-prod", 2, 0.30},
        {"batch-a", 0, 0.30},
        {"batch-b", 0, 0.25},
        {"analytics", 1, 0.15},
    };
}

} // namespace

TEST(VmPartitioner, UnthrottledEveryoneWhole)
{
    VmPartitioner part(mixedTenancy());
    const auto alloc = part.allocate(1.0);
    for (const auto &a : alloc)
        EXPECT_DOUBLE_EQ(a.normalizedThroughput, 1.0);
}

TEST(VmPartitioner, ThrottleHitsLowPriorityFirst)
{
    VmPartitioner part(mixedTenancy());
    // 60 % capacity: web-prod (0.30) and analytics (0.15) fit fully;
    // the batch tier shares the remaining 0.15 of its 0.55 demand.
    const auto alloc = part.allocate(0.60);
    EXPECT_DOUBLE_EQ(alloc[0].normalizedThroughput, 1.0); // web-prod
    EXPECT_DOUBLE_EQ(alloc[3].normalizedThroughput, 1.0); // analytics
    EXPECT_NEAR(alloc[1].normalizedThroughput, 0.15 / 0.55, 1e-9);
    EXPECT_NEAR(alloc[2].normalizedThroughput, 0.15 / 0.55, 1e-9);
}

TEST(VmPartitioner, DeepThrottleReachesMidTier)
{
    VmPartitioner part(mixedTenancy());
    // 35 % capacity: web-prod whole, analytics gets 0.05 of 0.15,
    // batch gets nothing.
    const auto alloc = part.allocate(0.35);
    EXPECT_DOUBLE_EQ(alloc[0].normalizedThroughput, 1.0);
    EXPECT_NEAR(alloc[3].normalizedThroughput, 0.05 / 0.15, 1e-9);
    EXPECT_DOUBLE_EQ(alloc[1].normalizedThroughput, 0.0);
    EXPECT_DOUBLE_EQ(alloc[2].normalizedThroughput, 0.0);
}

TEST(VmPartitioner, ConservationProperty)
{
    util::Rng rng(66);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<VmSpec> vms;
        double total = 0.0;
        const int n = 1 + static_cast<int>(rng.uniformInt(0, 5));
        for (int i = 0; i < n; ++i) {
            const double share =
                std::min(1.0 - total, rng.uniform(0.0, 0.4));
            vms.push_back({"vm" + std::to_string(i),
                           static_cast<Priority>(rng.uniformInt(0, 3)),
                           share});
            total += share;
        }
        VmPartitioner part(vms);
        const double phi = rng.uniform(0.0, 1.0);
        const auto alloc = part.allocate(phi);
        double granted = 0.0;
        for (std::size_t i = 0; i < vms.size(); ++i) {
            granted += alloc[i].granted;
            EXPECT_LE(alloc[i].granted, vms[i].cpuShare + 1e-9);
            EXPECT_GE(alloc[i].granted, -1e-12);
        }
        EXPECT_LE(granted, phi + 1e-9);
        EXPECT_NEAR(granted, std::min(phi, part.totalShare()), 1e-9);
    }
}

TEST(VmPartitioner, PriorityDominanceProperty)
{
    util::Rng rng(67);
    for (int trial = 0; trial < 200; ++trial) {
        auto vms = mixedTenancy();
        VmPartitioner part(vms);
        const auto alloc = part.allocate(rng.uniform(0.0, 1.0));
        // If any VM is throttled, every strictly lower-priority VM must
        // be throttled at least as hard.
        for (std::size_t i = 0; i < vms.size(); ++i) {
            for (std::size_t j = 0; j < vms.size(); ++j) {
                if (vms[i].priority > vms[j].priority) {
                    EXPECT_GE(alloc[i].normalizedThroughput,
                              alloc[j].normalizedThroughput - 1e-9);
                }
            }
        }
    }
}

TEST(VmPartitioner, DerivedServerPriority)
{
    // Top tenant holds 30 % < 50 %: the server should not claim the top
    // badge; priority 0 VMs push cumulative coverage past 50 %.
    VmPartitioner mixed(mixedTenancy());
    EXPECT_EQ(mixed.derivedServerPriority(0.5), 0);

    // A mostly-premium server claims the premium badge.
    VmPartitioner premium({{"p1", 2, 0.5}, {"p2", 2, 0.2},
                           {"b", 0, 0.2}});
    EXPECT_EQ(premium.derivedServerPriority(0.5), 2);

    // A stricter protection threshold demands more coverage.
    EXPECT_EQ(premium.derivedServerPriority(0.9), 0);
}

TEST(VmPartitioner, EmptyAndEdgeCases)
{
    VmPartitioner none({});
    EXPECT_TRUE(none.allocate(0.5).empty());
    EXPECT_EQ(none.derivedServerPriority(), 0);

    VmPartitioner zero_share({{"idle", 1, 0.0}});
    const auto alloc = zero_share.allocate(0.5);
    EXPECT_DOUBLE_EQ(alloc[0].normalizedThroughput, 1.0);
}

TEST(VmPartitionerDeath, OversubscriptionRejected)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(VmPartitioner({{"a", 0, 0.7}, {"b", 0, 0.7}}),
                testing::ExitedWithCode(1), "shares sum");
}

TEST(VmPartitioner, EndToEndWithCappedServer)
{
    // A capped server at performance phi: the partition turns the
    // server-level throttle into per-tenant outcomes.
    dev::ServerSpec spec;
    spec.name = "host";
    spec.idle = 160.0;
    spec.capMin = 270.0;
    spec.capMax = 490.0;
    dev::ServerModel server(spec);
    server.setUtilization(1.0);
    server.setEnforcedCapAc(330.0); // phi ~ 0.76

    VmPartitioner part(mixedTenancy());
    const auto alloc = part.allocate(server.performance());
    // Premium tenants whole; batch tier absorbs the entire cut.
    EXPECT_DOUBLE_EQ(alloc[0].normalizedThroughput, 1.0);
    EXPECT_DOUBLE_EQ(alloc[3].normalizedThroughput, 1.0);
    EXPECT_LT(alloc[1].normalizedThroughput, 0.65);
}
