/**
 * @file
 * Unit tests for the versioned membership table (membership/table):
 * the state machine's legal and illegal transitions, generation
 * accounting, the never-deployed vs drained distinction, and the
 * full-snapshot replica semantics that make one lost broadcast
 * harmless.
 */

#include <gtest/gtest.h>

#include "membership/table.hh"

using namespace capmaestro;
using membership::MembershipTable;
using membership::UnitState;

TEST(MembershipTable, StaticTableIsAllLiveAtGenerationOne)
{
    const auto table = MembershipTable::allLive(3);
    EXPECT_EQ(table.generation(), 1u);
    for (std::uint16_t ep = 0; ep < 3; ++ep) {
        EXPECT_TRUE(table.isLive(ep)) << ep;
        EXPECT_EQ(table.sinceGeneration(ep), 1u) << ep;
    }
    EXPECT_EQ(table.countOf(UnitState::Live), 3u);
    EXPECT_FALSE(table.transitionsPending());
    // Endpoints outside the table were never members.
    EXPECT_EQ(table.state(7), UnitState::Left);
    EXPECT_EQ(table.sinceGeneration(7), 0u);
}

TEST(MembershipTable, JoinLifecycleBumpsGenerationTwice)
{
    auto table = MembershipTable::allLive(2);
    table.markAbsent(2); // never deployed; no bump
    EXPECT_EQ(table.generation(), 1u);
    EXPECT_EQ(table.state(2), UnitState::Left);
    EXPECT_EQ(table.sinceGeneration(2), 0u);

    ASSERT_TRUE(table.beginJoin(2)); // announce
    EXPECT_EQ(table.generation(), 2u);
    EXPECT_EQ(table.state(2), UnitState::Joining);
    EXPECT_EQ(table.sinceGeneration(2), 2u);
    EXPECT_TRUE(table.transitionsPending());

    ASSERT_TRUE(table.commit(2)); // adopt
    EXPECT_EQ(table.generation(), 3u);
    EXPECT_TRUE(table.isLive(2));
    EXPECT_EQ(table.sinceGeneration(2), 3u);
    EXPECT_FALSE(table.transitionsPending());
}

TEST(MembershipTable, DrainLifecycleEndsLeftWithPositiveGeneration)
{
    auto table = MembershipTable::allLive(2);
    ASSERT_TRUE(table.beginDrain(1));
    EXPECT_EQ(table.state(1), UnitState::Draining);
    EXPECT_EQ(table.generation(), 2u);
    ASSERT_TRUE(table.commit(1));
    EXPECT_EQ(table.state(1), UnitState::Left);
    EXPECT_EQ(table.generation(), 3u);
    // A drained unit is Left *since a real generation* — the marker
    // that distinguishes it from a never-deployed slot (floor release
    // waits on the Left ack; an absent slot never reserved one).
    EXPECT_EQ(table.sinceGeneration(1), 3u);
}

TEST(MembershipTable, IllegalTransitionsAreRejectedWithoutABump)
{
    auto table = MembershipTable::allLive(2);
    EXPECT_FALSE(table.beginJoin(0));  // already Live
    EXPECT_FALSE(table.commit(0));     // nothing pending
    table.markAbsent(2);
    EXPECT_FALSE(table.beginDrain(2)); // not Live
    EXPECT_EQ(table.generation(), 1u);

    ASSERT_TRUE(table.beginJoin(2));
    EXPECT_FALSE(table.beginJoin(2));  // announce is not idempotent-
    EXPECT_EQ(table.generation(), 2u); // bumping
    EXPECT_FALSE(table.beginDrain(2)); // Joining cannot drain
    ASSERT_TRUE(table.commit(2));
    EXPECT_FALSE(table.commit(2));     // second commit is a no-op
    EXPECT_EQ(table.generation(), 3u);
}

TEST(MembershipTable, ReplicaAdoptsForwardSnapshotsRejectsStale)
{
    auto root = MembershipTable::allLive(3);
    auto replica = MembershipTable::allLive(3);

    // Two root-side transitions without a broadcast in between: the
    // replica jumps straight to the latest snapshot.
    ASSERT_TRUE(root.beginDrain(2));
    ASSERT_TRUE(root.commit(2));
    const auto latest = root.toDelta();
    EXPECT_EQ(latest.generation, 3u);
    ASSERT_TRUE(replica.applyDelta(latest));
    EXPECT_EQ(replica.generation(), 3u);
    EXPECT_EQ(replica.state(2), UnitState::Left);

    // An equal-generation re-broadcast is an idempotent accept; an
    // older snapshot is stale and must not roll the replica back.
    EXPECT_TRUE(replica.applyDelta(latest));
    net::MembershipDeltaMsg stale = latest;
    stale.generation = 2;
    EXPECT_FALSE(replica.applyDelta(stale));
    EXPECT_EQ(replica.generation(), 3u);
    EXPECT_EQ(replica.state(2), UnitState::Left);
}

TEST(MembershipTable, SnapshotRoundTripPreservesEveryRow)
{
    auto table = MembershipTable::allLive(4);
    table.markAbsent(4);
    ASSERT_TRUE(table.beginJoin(4));
    ASSERT_TRUE(table.beginDrain(1));

    MembershipTable replica;
    ASSERT_TRUE(replica.applyDelta(table.toDelta()));
    EXPECT_EQ(replica.generation(), table.generation());
    ASSERT_EQ(replica.entries().size(), table.entries().size());
    for (const auto &[ep, entry] : table.entries()) {
        EXPECT_EQ(replica.state(ep), entry.state) << ep;
        EXPECT_EQ(replica.sinceGeneration(ep), entry.sinceGeneration)
            << ep;
    }
    EXPECT_TRUE(replica.transitionsPending());
    EXPECT_EQ(replica.countOf(UnitState::Joining), 1u);
    EXPECT_EQ(replica.countOf(UnitState::Draining), 1u);
}

TEST(MembershipTable, StateNamesMatchTheDocs)
{
    EXPECT_STREQ(membership::unitStateName(UnitState::Joining),
                 "joining");
    EXPECT_STREQ(membership::unitStateName(UnitState::Live), "live");
    EXPECT_STREQ(membership::unitStateName(UnitState::Draining),
                 "draining");
    EXPECT_STREQ(membership::unitStateName(UnitState::Left), "left");
}
