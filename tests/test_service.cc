/**
 * @file
 * CapMaestroService tests: attach/budget plumbing, the N+N root-budget
 * refresh rule, per-period stats, and feed-failure response end to end.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/service.hh"
#include "sim/scenario.hh"

using namespace capmaestro;
using namespace capmaestro::sim;

TEST(Service, RefreshRootBudgetsSplitsOverLiveFeeds)
{
    auto sys = fig7aSystem();
    core::CapMaestroService service(*sys);
    service.refreshRootBudgets(1400.0);
    EXPECT_DOUBLE_EQ(service.rootBudgets()[0], 700.0);
    EXPECT_DOUBLE_EQ(service.rootBudgets()[1], 700.0);

    sys->failFeed(0);
    service.refreshRootBudgets(1400.0);
    EXPECT_DOUBLE_EQ(service.rootBudgets()[0], 0.0);
    EXPECT_DOUBLE_EQ(service.rootBudgets()[1], 1400.0);
}

TEST(ServiceDeath, RootBudgetSizeMismatch)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto sys = fig7aSystem();
    core::CapMaestroService service(*sys);
    EXPECT_EXIT(service.setRootBudgets({1.0}),
                testing::ExitedWithCode(1), "budgets for");
}

TEST(Service, PeriodStatsTrackBudgetsAndDemand)
{
    auto rig = makeFig6Rig(policy::PolicyKind::GlobalPriority);
    rig.run(80);
    const auto &stats = rig.service().lastStats();
    EXPECT_GT(stats.periodsRun, 5u);
    // Total estimated demand ~ 420+413+417+423 = 1673 W. The linear
    // extrapolation of the gamma power curve underestimates by up to
    // ~5 % while servers are throttled (the margin the paper reserves).
    EXPECT_NEAR(stats.totalDemandEstimate, 1673.0, 0.06 * 1673.0);
    ASSERT_EQ(stats.budgetByTree.size(), 1u);
    EXPECT_LE(stats.budgetByTree[0], 1240.0 + 1e-6);
    EXPECT_GT(stats.budgetByTree[0], 1200.0);
}

TEST(Service, FeedFailureEndToEnd)
{
    // Dual-feed rig under light budgets; at t=60 feed X dies. The
    // service reroutes the full phase budget to Y and keeps the fleet
    // safe: Y-side budgets never exceed 1400 W.
    auto rig = makeFig7Rig(/*enable_spo=*/false);
    rig.failFeedAt(60, /*feed=*/0, /*total_per_phase=*/1400.0);
    rig.run(160);

    EXPECT_TRUE(rig.system().feedFailed(0));
    const auto &stats = rig.service().lastStats();
    EXPECT_LE(stats.budgetByTree[1], 1400.0 + 1e-6);
    EXPECT_DOUBLE_EQ(stats.budgetByTree[0], 0.0);

    // SA lost its only live supply (it was X-only): it reads dark.
    EXPECT_DOUBLE_EQ(
        stats.allocation.servers[0].enforceableCapAc, 0.0);
    // SB..SD survive on Y.
    for (std::size_t i : {1u, 2u, 3u})
        EXPECT_GT(stats.allocation.servers[i].enforceableCapAc, 260.0);
    EXPECT_FALSE(rig.anyBreakerTripped());
}

TEST(Service, ControllerAccessor)
{
    auto rig = makeFig6Rig(policy::PolicyKind::GlobalPriority);
    rig.run(20);
    auto &controller = rig.service().controller(0);
    EXPECT_EQ(controller.spec().priority, 1);
}

TEST(Service, SpoDisabledMeansOnePass)
{
    auto rig = makeFig7Rig(/*enable_spo=*/false);
    rig.run(40);
    EXPECT_EQ(rig.service().lastStats().allocation.passes, 1);
}

TEST(Service, SpoEnabledRunsSecondPass)
{
    auto rig = makeFig7Rig(/*enable_spo=*/true);
    rig.run(60);
    EXPECT_EQ(rig.service().lastStats().allocation.passes, 2);
    EXPECT_GT(rig.service().lastStats().allocation.strandedReclaimed,
              10.0);
}
