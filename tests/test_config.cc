/**
 * @file
 * Configuration-loader tests: topology/server/service mapping, budget
 * resolution, validation errors, and end-to-end simulation from the
 * bundled sample configs.
 */

#include <gtest/gtest.h>

#include "config/loader.hh"
#include "sim/closed_loop.hh"

using namespace capmaestro;
using config::loadScenario;
using capmaestro::util::parseJson;

namespace {

const char *kMinimalConfig = R"({
    "feeds": 1,
    "trees": [
        { "feed": 0,
          "root": { "kind": "breaker", "name": "cb", "rating": 1000,
                    "children": [
                        { "kind": "supply", "server": 0 } ] } }
    ],
    "servers": [
        { "name": "S0", "priority": 1,
          "supplies": [ { "share": 1.0 } ],
          "workload": { "type": "constant", "utilization": 1.0 } }
    ],
    "budgets": { "perTree": [ 800 ] }
})";

} // namespace

TEST(ConfigLoader, MinimalScenario)
{
    auto scenario = loadScenario(parseJson(kMinimalConfig));
    ASSERT_EQ(scenario.system->trees().size(), 1u);
    EXPECT_EQ(scenario.system->tree(0).validate(), 1u);
    ASSERT_EQ(scenario.servers.size(), 1u);
    EXPECT_EQ(scenario.servers[0].spec.name, "S0");
    EXPECT_EQ(scenario.servers[0].spec.priority, 1);
    ASSERT_EQ(scenario.rootBudgets.size(), 1u);
    EXPECT_DOUBLE_EQ(scenario.rootBudgets[0], 800.0);
}

TEST(ConfigLoader, DefaultsApplied)
{
    auto scenario = loadScenario(parseJson(kMinimalConfig));
    const auto &spec = scenario.servers[0].spec;
    EXPECT_DOUBLE_EQ(spec.idle, 160.0);
    EXPECT_DOUBLE_EQ(spec.capMin, 270.0);
    EXPECT_DOUBLE_EQ(spec.capMax, 490.0);
    EXPECT_DOUBLE_EQ(spec.gamma, 2.7);
    EXPECT_EQ(scenario.service.policy,
              policy::PolicyKind::GlobalPriority);
    EXPECT_EQ(scenario.service.controlPeriod, 8);
}

TEST(ConfigLoader, UnlimitedAndDeratedRatings)
{
    auto scenario = loadScenario(parseJson(R"({
        "feeds": 1,
        "trees": [
            { "feed": 0,
              "root": { "kind": "contractual", "rating": "unlimited",
                        "children": [
                            { "kind": "cdu", "rating": 6900,
                              "derate": 0.8,
                              "children": [
                                { "kind": "supply", "server": 0 } ] }
                        ] } }
        ],
        "servers": [ { "supplies": [ { "share": 1.0 } ] } ]
    })"));
    const auto &tree = scenario.system->tree(0);
    EXPECT_EQ(tree.node(tree.root()).limit(), topo::kUnlimited);
    const auto cdu = tree.node(tree.root()).children[0];
    EXPECT_DOUBLE_EQ(tree.node(cdu).limit(), 6900.0 * 0.8);
}

TEST(ConfigLoader, TotalPerPhaseBudgetSplit)
{
    auto scenario = loadScenario(parseJson(R"({
        "feeds": 2,
        "trees": [
            { "feed": 0,
              "root": { "kind": "breaker", "rating": 1000, "children": [
                  { "kind": "supply", "server": 0, "supply": 0 } ] } },
            { "feed": 1,
              "root": { "kind": "breaker", "rating": 1000, "children": [
                  { "kind": "supply", "server": 0, "supply": 1 } ] } }
        ],
        "servers": [ { "supplies": [ {}, {} ] } ],
        "budgets": { "totalPerPhase": 1400 }
    })"));
    ASSERT_EQ(scenario.rootBudgets.size(), 2u);
    EXPECT_DOUBLE_EQ(scenario.rootBudgets[0], 700.0);
    EXPECT_DOUBLE_EQ(scenario.rootBudgets[1], 700.0);
    ASSERT_TRUE(scenario.totalPerPhase.has_value());
    EXPECT_DOUBLE_EQ(*scenario.totalPerPhase, 1400.0);
}

TEST(ConfigLoader, WorkloadTypes)
{
    auto scenario = loadScenario(parseJson(R"({
        "feeds": 1,
        "trees": [
            { "feed": 0,
              "root": { "kind": "breaker", "rating": 5000, "children": [
                  { "kind": "supply", "server": 0 },
                  { "kind": "supply", "server": 1 },
                  { "kind": "supply", "server": 2 },
                  { "kind": "supply", "server": 3 } ] } }
        ],
        "servers": [
            { "supplies": [ { "share": 1.0 } ],
              "workload": { "type": "constant", "utilization": 0.25 } },
            { "supplies": [ { "share": 1.0 } ],
              "workload": { "type": "steps",
                            "steps": [[0, 0.1], [50, 0.9]] } },
            { "supplies": [ { "share": 1.0 } ],
              "workload": { "type": "sine", "mean": 0.5,
                            "amplitude": 0.3, "period": 100 } },
            { "supplies": [ { "share": 1.0 } ],
              "workload": { "type": "randomwalk", "start": 0.4,
                            "step": 0.02, "seed": 9 } }
        ]
    })"));
    EXPECT_DOUBLE_EQ(scenario.servers[0].workload->utilizationAt(10),
                     0.25);
    EXPECT_DOUBLE_EQ(scenario.servers[1].workload->utilizationAt(10),
                     0.1);
    EXPECT_DOUBLE_EQ(scenario.servers[1].workload->utilizationAt(60),
                     0.9);
    const double sine = scenario.servers[2].workload->utilizationAt(25);
    EXPECT_NEAR(sine, 0.8, 1e-9); // peak of the sine at period/4
    const double walk = scenario.servers[3].workload->utilizationAt(5);
    EXPECT_GE(walk, 0.0);
    EXPECT_LE(walk, 1.0);
}

TEST(ConfigLoaderDeath, ValidationErrors)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    // Topology references an undeclared server.
    EXPECT_EXIT(loadScenario(parseJson(R"({
        "feeds": 1,
        "trees": [ { "feed": 0,
            "root": { "kind": "breaker", "rating": 100, "children": [
                { "kind": "supply", "server": 5 } ] } } ],
        "servers": [ {} ]
    })")),
                testing::ExitedWithCode(1), "references server 5");

    // Unknown node kind.
    EXPECT_EXIT(loadScenario(parseJson(R"({
        "feeds": 1,
        "trees": [ { "feed": 0,
            "root": { "kind": "flux-capacitor", "rating": 100 } } ],
        "servers": []
    })")),
                testing::ExitedWithCode(1), "unknown node kind");

    // Unknown policy.
    EXPECT_EXIT(loadScenario(parseJson(R"({
        "feeds": 1,
        "trees": [ { "feed": 0,
            "root": { "kind": "breaker", "rating": 100, "children": [] } } ],
        "servers": [],
        "service": { "policy": "psychic" }
    })")),
                testing::ExitedWithCode(1), "unknown policy");

    // Budget count mismatch.
    EXPECT_EXIT(loadScenario(parseJson(R"({
        "feeds": 1,
        "trees": [ { "feed": 0,
            "root": { "kind": "breaker", "rating": 100, "children": [] } } ],
        "servers": [],
        "budgets": { "perTree": [1, 2] }
    })")),
                testing::ExitedWithCode(1), "entries for 1 trees");
}

TEST(ConfigLoader, EndToEndSimulationFromConfig)
{
    auto scenario = loadScenario(parseJson(kMinimalConfig));
    auto simulation = config::makeSimulation(std::move(scenario));
    simulation.run(80);
    // Demand 490 W, budget 800 W: uncapped, full throughput.
    EXPECT_GT(simulation.recorder().mean(
                  sim::ClosedLoopSim::serverSeries(0, "throughput"), 40,
                  79),
              0.99);
    EXPECT_FALSE(simulation.anyBreakerTripped());
}

TEST(ConfigLoader, PowerTreeRoundTrip)
{
    // Build a tree, serialize to the config schema, reload, and compare
    // structure, names, ratings, derates, and supply refs node by node.
    topo::PowerTree original(0, 2, "rt");
    const auto root = original.makeRoot(topo::NodeKind::Contractual,
                                        "contract", topo::kUnlimited);
    const auto cdu = original.addChild(root, topo::NodeKind::Cdu, "cdu0",
                                       6900.0, 0.8);
    original.addSupplyPort(cdu, "outlet3", {3, 1});
    original.addSupplyPort(cdu, "outlet4", {4, 0});

    const auto json = config::powerTreeToJson(original);
    const auto reloaded = config::loadPowerTree(json);

    ASSERT_EQ(reloaded->size(), original.size());
    EXPECT_EQ(reloaded->feed(), 0);
    EXPECT_EQ(reloaded->phase(), 2);
    EXPECT_EQ(reloaded->name(), "rt");
    for (topo::NodeId id = 0;
         id < static_cast<topo::NodeId>(original.size()); ++id) {
        const auto &a = original.node(id);
        const auto &b = reloaded->node(id);
        EXPECT_EQ(a.kind, b.kind) << "node " << id;
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.rating, b.rating);
        EXPECT_DOUBLE_EQ(a.derate, b.derate);
        EXPECT_EQ(a.children, b.children);
        EXPECT_EQ(a.supplyRef.has_value(), b.supplyRef.has_value());
        if (a.supplyRef) {
            EXPECT_EQ(*a.supplyRef, *b.supplyRef);
        }
    }
}

TEST(ConfigLoader, SerializeParseRoundTripJson)
{
    const auto doc = parseJson(
        R"({"a": [1, 2.5, true, null], "b": {"c": "x\ny"}})");
    const auto text = util::serializeJson(doc, 2);
    const auto again = parseJson(text);
    EXPECT_DOUBLE_EQ(again.at("a").asArray()[1].asNumber(), 2.5);
    EXPECT_TRUE(again.at("a").asArray()[2].asBool());
    EXPECT_TRUE(again.at("a").asArray()[3].isNull());
    EXPECT_EQ(again.at("b").at("c").asString(), "x\ny");
    // Compact form parses too.
    EXPECT_DOUBLE_EQ(parseJson(util::serializeJson(doc, 0))
                         .at("a")
                         .asArray()[0]
                         .asNumber(),
                     1.0);
}

TEST(ConfigLoader, BundledSampleConfigsLoadAndRun)
{
    for (const char *path : {"configs/fig2_testbed.json",
                             "configs/dual_feed_spo.json",
                             "configs/three_phase.json"}) {
        auto scenario = config::loadScenarioFile(
            std::string(CAPMAESTRO_SOURCE_DIR) + "/" + path);
        const auto servers = scenario.servers.size();
        auto simulation = config::makeSimulation(std::move(scenario));
        simulation.run(60);
        EXPECT_GE(servers, 4u) << path;
        EXPECT_FALSE(simulation.anyBreakerTripped()) << path;
    }
}

TEST(ConfigLoader, PeerTableMembershipBlockRoundTrips)
{
    // The elasticity directives ride the shared peer table; they must
    // parse, survive a serialize/parse round trip, and stay absent
    // from the document when the deployment is static.
    const char *doc = R"({
        "periodMs": 500,
        "originMs": 1754380000000,
        "peers": [
            { "endpoint": 0, "host": "127.0.0.1", "port": 9810 },
            { "endpoint": 1, "host": "127.0.0.1", "port": 9811 },
            { "endpoint": 2, "host": "127.0.0.1", "port": 9812 },
            { "endpoint": 3, "host": "127.0.0.1", "port": 9813 },
            { "endpoint": 4, "host": "127.0.0.1", "port": 9814 }
        ],
        "membership": { "absent": [3], "join": [2], "drain": [1] }
    })";
    const auto peers = config::loadWorkerPeers(parseJson(doc));
    ASSERT_EQ(peers.membership.absent, std::vector<std::uint32_t>{3});
    ASSERT_EQ(peers.membership.join, std::vector<std::uint32_t>{2});
    ASSERT_EQ(peers.membership.drain, std::vector<std::uint32_t>{1});
    EXPECT_FALSE(peers.membership.empty());

    const auto again =
        config::loadWorkerPeers(config::workerPeersToJson(peers));
    EXPECT_EQ(again.membership.absent, peers.membership.absent);
    EXPECT_EQ(again.membership.join, peers.membership.join);
    EXPECT_EQ(again.membership.drain, peers.membership.drain);

    // Static deployments keep their document membership-free.
    auto static_peers = peers;
    static_peers.membership = {};
    EXPECT_TRUE(static_peers.membership.empty());
    const auto serialized = config::workerPeersToJson(static_peers);
    EXPECT_FALSE(serialized.asObject().count("membership"));

    // An endpoint outside the peer table is a config error, caught at
    // load time rather than at the root's first broadcast.
    const char *hostile = R"({
        "periodMs": 500, "originMs": 1,
        "peers": [ { "endpoint": 0, "host": "h", "port": 1 },
                   { "endpoint": 1, "host": "h", "port": 2 },
                   { "endpoint": 2, "host": "h", "port": 3 } ],
        "membership": { "drain": [7] }
    })";
    EXPECT_DEATH(config::loadWorkerPeers(parseJson(hostile)),
                 "membership");
}
