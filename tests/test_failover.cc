/**
 * @file
 * Deterministic chaos tests for the rt failover story (checkpoint,
 * restart detection, re-homing), driven through the rt/chaos lockstep
 * harness. A seeded ChaosScheduler kills, restarts, and partitions
 * workers at scripted control periods while the harness audits the
 * §4.5 safety claim after every epoch: no applied edge budget may
 * exceed a device limit, and no tree's applied total may exceed its
 * root budget — ever, including while racks are dead, re-homing, or
 * partitioned.
 *
 * The same scripts run over both Transport backends:
 *   - SimTransport: virtual clock, fully deterministic — the per-epoch
 *     log (applied budgets as raw IEEE-754 bit patterns) must be
 *     bit-identical across same-seed runs;
 *   - UdpTransport: one shared loopback socket set — behavior-level
 *     assertions only (the kernel schedules delivery), skipped under
 *     CAPMAESTRO_NO_NET=1.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/events.hh"
#include "net/transport.hh"
#include "rt/chaos.hh"

using namespace capmaestro;

namespace {

#define SKIP_WITHOUT_NET()                                            \
    do {                                                              \
        if (std::getenv("CAPMAESTRO_NO_NET") != nullptr)              \
            GTEST_SKIP() << "CAPMAESTRO_NO_NET is set";               \
    } while (0)

/** Same dual-feed two-rack testbed the worker-runtime tests use. */
const char *kScenario = R"({
  "feeds": 2,
  "trees": [
    {
      "feed": 0, "phase": 0, "name": "X",
      "root": {
        "kind": "breaker", "name": "topCB", "rating": 1400,
        "children": [
          { "kind": "breaker", "name": "leftCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 0, "supply": 0 },
              { "kind": "supply", "server": 2, "supply": 0 } ] },
          { "kind": "breaker", "name": "rightCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 1, "supply": 0 },
              { "kind": "supply", "server": 3, "supply": 0 } ] }
        ]
      }
    },
    {
      "feed": 1, "phase": 0, "name": "Y",
      "root": {
        "kind": "breaker", "name": "topCB", "rating": 1400,
        "children": [
          { "kind": "breaker", "name": "leftCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 0, "supply": 1 },
              { "kind": "supply", "server": 2, "supply": 1 } ] },
          { "kind": "breaker", "name": "rightCB", "rating": 750,
            "children": [
              { "kind": "supply", "server": 1, "supply": 1 },
              { "kind": "supply", "server": 3, "supply": 1 } ] }
        ]
      }
    }
  ],
  "servers": [
    { "name": "SA", "priority": 1,
      "supplies": [ { "share": 0.5 }, { "share": 0.5 } ],
      "workload": { "type": "constant", "utilization": 0.684 } },
    { "name": "SB",
      "supplies": [ { "share": 0.5 }, { "share": 0.5 } ],
      "workload": { "type": "constant", "utilization": 0.686 } },
    { "name": "SC",
      "supplies": [ { "share": 0.53 }, { "share": 0.47 } ],
      "workload": { "type": "constant", "utilization": 0.722 } },
    { "name": "SD",
      "supplies": [ { "share": 0.46 }, { "share": 0.54 } ],
      "workload": { "type": "constant", "utilization": 0.734 } }
  ],
  "service": { "policy": "global", "spo": false },
  "budgets": { "totalPerPhase": 1400 }
})";

/** The fixed chaos script both backends run: a kill long enough to be
 *  declared dead, a room-side partition, and a second kill — every
 *  §4.5 state transition fires at a known epoch. */
void
scriptStandardChaos(rt::ChaosScheduler &chaos, std::size_t racks)
{
    ASSERT_EQ(racks, 2u);
    chaos.at(5, rt::ChaosEvent::Kind::Kill, 0);
    chaos.at(9, rt::ChaosEvent::Kind::Restart, 0);
    chaos.at(14, rt::ChaosEvent::Kind::Partition, 1, 2); // rack1 | room
    chaos.at(18, rt::ChaosEvent::Kind::Heal);
    chaos.at(23, rt::ChaosEvent::Kind::Kill, 1);
    chaos.at(27, rt::ChaosEvent::Kind::Restart, 1);
}

} // namespace

TEST(Failover, ChaosScheduleIsDeterministic)
{
    rt::ChaosScheduler a(99);
    rt::ChaosScheduler b(99);
    a.randomKillRestarts(2, 5, 100, 10, 3);
    b.randomKillRestarts(2, 5, 100, 10, 3);
    ASSERT_EQ(a.events().size(), b.events().size());
    ASSERT_EQ(a.events().size(), 20u); // kill + restart per cycle
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].epoch, b.events()[i].epoch);
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        EXPECT_EQ(a.events()[i].a, b.events()[i].a);
    }

    rt::ChaosScheduler c(100); // different seed, different script
    c.randomKillRestarts(2, 5, 100, 10, 3);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        any_diff |= a.events()[i].epoch != c.events()[i].epoch
                    || a.events()[i].a != c.events()[i].a;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Failover, SimChaosNeverViolatesBudgetsAndRehomesEveryRestart)
{
    rt::LockstepDeployment dep(kScenario, rt::ChaosBackend::Sim,
                               net::TransportConfig{}, /*seed=*/11);
    scriptStandardChaos(dep.chaos(), dep.rackCount());
    const auto report = dep.run(35);

    EXPECT_EQ(report.epochsRun, 35u);
    // The headline §4.5 claim: zero budget violations under chaos.
    EXPECT_EQ(report.violations, 0u) << report.firstViolation;
    // Both kill/restart cycles completed a re-homing handshake.
    EXPECT_EQ(report.recoveries, 2u);
    EXPECT_EQ(report.unrecovered, 0u);
    EXPECT_GE(report.maxRecoveryPeriods, 1u);
    EXPECT_LE(report.maxRecoveryPeriods, 5u);

    const auto &room = dep.room().stats();
    // Kill at 5 (down 4 > heartbeatFailAfter) and kill at 23 were both
    // declared dead; the partition (4 epochs of silence) adds a third.
    EXPECT_EQ(room.failovers, 3u);
    // Every reappearance — two restarts plus the partition heal — went
    // through re-homing, and each handshake completed.
    EXPECT_EQ(room.restartsDetected, 3u);
    EXPECT_EQ(room.rehomed, 3u);
    EXPECT_GE(room.rehomesSent, 3u);
    EXPECT_GT(room.checkpointsStored, 0u);
    EXPECT_EQ(
        dep.room().eventLog().ofKind(core::EventKind::WorkerRehomed)
            .size(),
        3u);

    // The genuinely restarted instances replayed their checkpoints;
    // the partitioned rack survived with newer local state and must
    // have *declined* its replay (its plant never died).
    ASSERT_NE(dep.rack(0), nullptr);
    ASSERT_NE(dep.rack(1), nullptr);
    EXPECT_EQ(dep.rack(0)->stats().rehomesApplied, 1u);
    EXPECT_EQ(dep.rack(1)->stats().rehomesApplied, 1u);
    EXPECT_EQ(dep.rack(1)->stats().rehomesDeclined, 0u); // fresh instance
    // The decline happened before rack 1's kill, in the pre-restart
    // instance — visible in the room's ledger, not the final instance's.
    EXPECT_EQ(
        dep.room().eventLog().ofKind(core::EventKind::WorkerFailover)
            .size(),
        3u);
}

TEST(Failover, PartitionHealDeclinesReplayAndKeepsLocalState)
{
    // A partition (not a crash) means the rack's local state is newer
    // than the room's checkpoint: after the heal the room offers a
    // replay, and the rack must decline it instead of rolling back —
    // while the handshake still completes and budgets resume.
    rt::LockstepDeployment dep(kScenario, rt::ChaosBackend::Sim,
                               net::TransportConfig{}, /*seed=*/23);
    dep.chaos().at(6, rt::ChaosEvent::Kind::Partition, 0, 2);
    dep.chaos().at(11, rt::ChaosEvent::Kind::Heal);
    const auto report = dep.run(16);

    EXPECT_EQ(report.violations, 0u) << report.firstViolation;
    const auto &room = dep.room().stats();
    EXPECT_EQ(room.failovers, 1u);
    EXPECT_EQ(room.rehomed, 1u);

    ASSERT_NE(dep.rack(0), nullptr);
    const auto &rack0 = dep.rack(0)->stats();
    EXPECT_EQ(rack0.rehomesDeclined, 1u);
    EXPECT_EQ(rack0.rehomesApplied, 0u);
    EXPECT_TRUE(dep.rack(0)
                    ->eventLog()
                    .ofKind(core::EventKind::CheckpointReplayed)
                    .empty());
    EXPECT_EQ(dep.rack(0)
                  ->eventLog()
                  .ofKind(core::EventKind::RehomeDeclined)
                  .size(),
              1u);
    // Once Live again, budgets flow: the last epochs ran undegraded.
    EXPECT_GT(rack0.budgetsApplied, 0u);
}

TEST(Failover, SimSameSeedRunsAreBitReproducible)
{
    // The acceptance bar: two same-seed Sim runs produce bit-identical
    // epoch-by-epoch traces, applied budgets compared as raw IEEE-754
    // patterns (the log lines embed them as hex).
    auto run_once = [] {
        rt::LockstepDeployment dep(kScenario, rt::ChaosBackend::Sim,
                                   net::TransportConfig{}, /*seed=*/77);
        dep.chaos().randomKillRestarts(dep.rackCount(), 4, 40, 4, 4);
        return dep.run(60);
    };
    const auto first = run_once();
    const auto second = run_once();

    EXPECT_EQ(first.violations, 0u) << first.firstViolation;
    EXPECT_EQ(first.recoveries, 4u);
    EXPECT_EQ(first.unrecovered, 0u);
    ASSERT_EQ(first.log.size(), second.log.size());
    for (std::size_t i = 0; i < first.log.size(); ++i)
        ASSERT_EQ(first.log[i], second.log[i]) << "epoch line " << i;
    EXPECT_EQ(first.recoveries, second.recoveries);
    EXPECT_EQ(first.maxRecoveryPeriods, second.maxRecoveryPeriods);
}

TEST(Failover, UdpChaosNeverViolatesBudgetsAndRehomesEveryRestart)
{
    SKIP_WITHOUT_NET();
    // The same script over real loopback sockets: one shared socket
    // set for the whole deployment, a restarted runtime reusing its
    // role's port. The kernel owns delivery timing, so assertions are
    // behavior-level (states and counters), not bit-level.
    rt::LockstepDeployment dep(kScenario, rt::ChaosBackend::Udp,
                               net::TransportConfig{}, /*seed=*/11);
    scriptStandardChaos(dep.chaos(), dep.rackCount());
    const auto report = dep.run(35);

    EXPECT_EQ(report.violations, 0u) << report.firstViolation;
    EXPECT_EQ(report.recoveries, 2u);
    EXPECT_EQ(report.unrecovered, 0u);
    EXPECT_LE(report.maxRecoveryPeriods, 8u);

    const auto &room = dep.room().stats();
    EXPECT_GE(room.failovers, 3u);
    EXPECT_GE(room.rehomed, 3u);
    ASSERT_NE(dep.rack(0), nullptr);
    ASSERT_NE(dep.rack(1), nullptr);
    EXPECT_EQ(dep.rack(0)->stats().rehomesApplied, 1u);
    EXPECT_EQ(dep.rack(1)->stats().rehomesApplied, 1u);
}

TEST(Failover, SimLossyTransportStillRehomes)
{
    // Chaos on top of an already-lossy message plane: drops, dups, and
    // reorders while racks die and return. Slightly looser recovery
    // bound (lost Rehome frames cost a period each), same hard safety
    // bar.
    net::TransportConfig faults;
    faults.dropRate = 0.15;
    faults.dupRate = 0.05;
    faults.reorderRate = 0.1;
    faults.seed = 555;
    rt::LockstepDeployment dep(kScenario, rt::ChaosBackend::Sim, faults,
                               /*seed=*/31);
    scriptStandardChaos(dep.chaos(), dep.rackCount());
    const auto report = dep.run(45);

    EXPECT_EQ(report.violations, 0u) << report.firstViolation;
    EXPECT_EQ(report.recoveries, 2u);
    EXPECT_EQ(report.unrecovered, 0u);
    EXPECT_LE(report.maxRecoveryPeriods, 10u);
    EXPECT_GE(dep.room().stats().rehomed, 3u);
}

// --------------------------------------------- deep trees (TreePlan)

namespace {

/**
 * Depth-3 dual-feed scenario for agg_levels = {1}: per tree,
 * root -> 2 row breakers -> 2 rack breakers each -> 2 supplies each
 * (8 servers, structurally parallel across both feeds). The worker
 * plan is 4 leaf workers (endpoints 0-3), 2 row aggregators (4-5),
 * and the root (6).
 */
std::string
deepScenario()
{
    std::string trees;
    for (int feed = 0; feed < 2; ++feed) {
        std::string rows;
        for (int row = 0; row < 2; ++row) {
            std::string racks;
            for (int rack = 0; rack < 2; ++rack) {
                const int base = row * 4 + rack * 2;
                racks += std::string(rack ? "," : "")
                         + R"({ "kind": "breaker", "name": "rack)"
                         + std::to_string(row) + std::to_string(rack)
                         + R"(", "rating": 900, "children": [)"
                         + R"({ "kind": "supply", "server": )"
                         + std::to_string(base) + R"(, "supply": )"
                         + std::to_string(feed) + "},"
                         + R"({ "kind": "supply", "server": )"
                         + std::to_string(base + 1) + R"(, "supply": )"
                         + std::to_string(feed) + "}]}";
            }
            rows += std::string(row ? "," : "")
                    + R"({ "kind": "breaker", "name": "row)"
                    + std::to_string(row) + R"(", "rating": 1700, )"
                    + R"("children": [)" + racks + "]}";
        }
        trees += std::string(feed ? "," : "") + R"({ "feed": )"
                 + std::to_string(feed) + R"(, "phase": 0, "name": ")"
                 + (feed == 0 ? "X" : "Y") + R"(", "root": { "kind": )"
                 + R"("breaker", "name": "top", "rating": 3200, )"
                 + R"("children": [)" + rows + "]}}";
    }
    std::string servers;
    for (int s = 0; s < 8; ++s) {
        servers += std::string(s ? "," : "") + R"({ "name": "S)"
                   + std::to_string(s) + R"(", "priority": )"
                   + std::to_string(s % 2) + R"(, "supplies": [)"
                   + R"({ "share": 0.5 }, { "share": 0.5 }], )"
                   + R"("workload": { "type": "constant", )"
                   + R"("utilization": 0.7)" + std::to_string(s)
                   + "1 }}";
    }
    return R"({ "feeds": 2, "trees": [)" + trees + R"(], "servers": [)"
           + servers + R"(], "service": { "policy": "global", )"
           + R"("spo": false }, "budgets": { "totalPerPhase": 3200 }})";
}

} // namespace

TEST(DeepChaos, MidTierAggregatorKillStaysSafeOnSim)
{
    // Kill a row aggregator (endpoint 4) mid-run: its parent rides the
    // stale summary then reserves the subtree's floors; the orphaned
    // leaves fall back to Pcap_min defaults. Every degraded period
    // must stay inside all device limits and root budgets, and none
    // of the 2-level failover machinery may fire.
    rt::LockstepDeployment dep(deepScenario(), rt::ChaosBackend::Sim,
                               net::TransportConfig{}, /*seed=*/311,
                               /*agg_levels=*/{1});
    ASSERT_EQ(dep.rackCount(), 4u);
    ASSERT_EQ(dep.plan().tiers(), 3u);
    ASSERT_EQ(dep.plan().workers.size(), 7u);

    dep.chaos().at(6, rt::ChaosEvent::Kind::Kill, 4);
    dep.chaos().at(12, rt::ChaosEvent::Kind::Restart, 4);
    const auto report = dep.run(20);

    EXPECT_EQ(report.epochsRun, 20u);
    // The headline claim: zero budget violations across the outage.
    EXPECT_EQ(report.violations, 0u) << report.firstViolation;

    // The root rode the stale cache before excluding the station.
    EXPECT_GE(dep.room().stats().staleReuses, 1u);
    // Orphaned leaves applied conservative defaults while their
    // aggregator was down.
    std::size_t defaults = 0;
    for (std::size_t r = 0; r < dep.rackCount(); ++r)
        defaults += dep.rack(r)->stats().defaultBudgets;
    EXPECT_GT(defaults, 0u);
    // Budgets resumed for everyone after the restart.
    for (std::size_t r = 0; r < dep.rackCount(); ++r)
        EXPECT_GT(dep.rack(r)->stats().budgetsApplied, 0u) << r;
    ASSERT_NE(dep.aggregator(4), nullptr);
    EXPECT_GT(dep.aggregator(4)->stats().summariesSent, 0u);

    // Deep plans run no re-homing: aggregators are stateless.
    EXPECT_EQ(dep.room().stats().failovers, 0u);
    EXPECT_EQ(dep.room().stats().rehomed, 0u);
    EXPECT_EQ(report.recoveries, 0u);
}

TEST(DeepChaos, SimSameSeedDeepRunsAreBitReproducible)
{
    // Depth-3 chaos must replay bit-for-bit on the Sim backend, same
    // as the 2-level harness: per-epoch applied-budget bit patterns
    // identical across same-seed runs.
    auto run_once = [] {
        rt::LockstepDeployment dep(deepScenario(),
                                   rt::ChaosBackend::Sim,
                                   net::TransportConfig{},
                                   /*seed=*/271, /*agg_levels=*/{1});
        dep.chaos().at(4, rt::ChaosEvent::Kind::Kill, 5);
        dep.chaos().at(8, rt::ChaosEvent::Kind::Restart, 5);
        dep.chaos().at(11, rt::ChaosEvent::Kind::Kill, 1);
        dep.chaos().at(14, rt::ChaosEvent::Kind::Restart, 1);
        return dep.run(24);
    };
    const auto first = run_once();
    const auto second = run_once();

    EXPECT_EQ(first.violations, 0u) << first.firstViolation;
    ASSERT_EQ(first.log.size(), second.log.size());
    for (std::size_t i = 0; i < first.log.size(); ++i)
        ASSERT_EQ(first.log[i], second.log[i]) << "epoch line " << i;
}

TEST(DeepChaos, MidTierAggregatorKillStaysSafeOnUdp)
{
    SKIP_WITHOUT_NET();
    // The same aggregator outage over real loopback sockets:
    // behavior-level assertions only.
    rt::LockstepDeployment dep(deepScenario(), rt::ChaosBackend::Udp,
                               net::TransportConfig{}, /*seed=*/311,
                               /*agg_levels=*/{1});
    dep.chaos().at(5, rt::ChaosEvent::Kind::Kill, 4);
    dep.chaos().at(11, rt::ChaosEvent::Kind::Restart, 4);
    const auto report = dep.run(18);

    EXPECT_EQ(report.violations, 0u) << report.firstViolation;
    std::size_t defaults = 0;
    for (std::size_t r = 0; r < dep.rackCount(); ++r)
        defaults += dep.rack(r)->stats().defaultBudgets;
    EXPECT_GT(defaults, 0u);
    for (std::size_t r = 0; r < dep.rackCount(); ++r)
        EXPECT_GT(dep.rack(r)->stats().budgetsApplied, 0u) << r;
    EXPECT_EQ(dep.room().stats().failovers, 0u);
}

TEST(DeepChaos, LossyDeepTransportStaysSafe)
{
    // Frame loss on every hop of a depth-3 tree plus an aggregator
    // outage: per-hop stale fallback upstream, conservative defaults
    // downstream, and the safety audit must still never fire.
    net::TransportConfig faults;
    faults.dropRate = 0.12;
    faults.dupRate = 0.04;
    faults.reorderRate = 0.08;
    faults.seed = 777;
    rt::LockstepDeployment dep(deepScenario(), rt::ChaosBackend::Sim,
                               faults, /*seed=*/47,
                               /*agg_levels=*/{1});
    dep.chaos().at(7, rt::ChaosEvent::Kind::Kill, 5);
    dep.chaos().at(13, rt::ChaosEvent::Kind::Restart, 5);
    const auto report = dep.run(30);

    EXPECT_EQ(report.epochsRun, 30u);
    EXPECT_EQ(report.violations, 0u) << report.firstViolation;
}

// ------------------------------------------ elasticity (membership)

namespace {

/**
 * The acceptance script for the membership plane, over the depth-3
 * deployment (racks 0-3, row aggregators 4-5, root 6): every worker
 * starts on the compat wire version (a fleet one release behind), the
 * fleet is rolling-upgraded root-first one worker per epoch, then
 * racks 2 and 3 — scripted absent at boot — join online, and rack 1
 * drains. Joins are scheduled after the upgrade wave because a compat
 * root cannot originate membership frames (upgrade-then-join is the
 * supported order).
 */
void
scriptElasticUpgrade(rt::LockstepDeployment &dep)
{
    for (std::uint32_t role = 0; role < 7; ++role)
        dep.setWorkerWireVersion(role, net::kWireCompatVersion);
    dep.scriptJoiner(2);
    dep.scriptJoiner(3);
    auto &chaos = dep.chaos();
    // Root first, then aggregators, then racks (and the still-absent
    // joiner slots, whose scripted version flips before they start).
    const std::uint32_t order[] = {6, 4, 5, 0, 1, 2, 3};
    std::uint32_t epoch = 3;
    for (const std::uint32_t role : order)
        chaos.at(epoch++, rt::ChaosEvent::Kind::Upgrade, role);
    chaos.at(14, rt::ChaosEvent::Kind::Join, 2);
    chaos.at(20, rt::ChaosEvent::Kind::Join, 3);
    chaos.at(30, rt::ChaosEvent::Kind::Drain, 1);
}

} // namespace

TEST(Elasticity, SimJoinDrainRollingUpgradeStaysSafeAndBitReproducible)
{
    // The full elasticity acceptance run on the Sim backend: version
    // skew, two online joins, and a drain in one 50-epoch script, with
    // the §4.5 audit on every period — and the whole thing must be
    // bit-reproducible across same-seed runs (membership traffic is
    // part of the deterministic trace, not outside it).
    auto run_once = [](rt::ChaosRunReport &report,
                       std::uint32_t &generation) {
        rt::LockstepDeployment dep(deepScenario(),
                                   rt::ChaosBackend::Sim,
                                   net::TransportConfig{}, /*seed=*/88,
                                   /*agg_levels=*/{1});
        scriptElasticUpgrade(dep);
        report = dep.run(50);
        generation = dep.room().membershipGeneration();

        EXPECT_EQ(report.violations, 0u) << report.firstViolation;
        EXPECT_EQ(report.drained, 1u);
        const auto &table = dep.room().membership();
        EXPECT_EQ(table.state(2), membership::UnitState::Live);
        EXPECT_EQ(table.state(3), membership::UnitState::Live);
        EXPECT_EQ(table.state(1), membership::UnitState::Left);
        EXPECT_EQ(table.transitionsPending(), 0u);
        ASSERT_NE(dep.rack(2), nullptr);
        ASSERT_NE(dep.rack(3), nullptr);
        EXPECT_EQ(dep.rack(1), nullptr);
        // The joiners shadowed before committing, and the survivors
        // were budgeted while the fleet was half-upgraded.
        EXPECT_GT(dep.rack(2)->stats().shadowPeriods, 0u);
        EXPECT_GT(dep.rack(0)->stats().budgetsApplied, 40u);
    };

    rt::ChaosRunReport first, second;
    std::uint32_t gen_first = 0, gen_second = 0;
    run_once(first, gen_first);
    run_once(second, gen_second);

    // 2 marks-absent (no bump) + (announce + commit) x 3.
    EXPECT_EQ(gen_first, 7u);
    EXPECT_EQ(gen_second, gen_first);
    ASSERT_EQ(first.log.size(), second.log.size());
    for (std::size_t i = 0; i < first.log.size(); ++i)
        ASSERT_EQ(first.log[i], second.log[i]) << "epoch line " << i;
}

TEST(Elasticity, UdpJoinDrainRollingUpgradeStaysSafe)
{
    SKIP_WITHOUT_NET();
    // The same acceptance script over real loopback sockets: the
    // kernel owns delivery, so assertions are behavior-level — but
    // the safety audit and the end-state membership table are the
    // same hard bar.
    rt::LockstepDeployment dep(deepScenario(), rt::ChaosBackend::Udp,
                               net::TransportConfig{}, /*seed=*/88,
                               /*agg_levels=*/{1});
    scriptElasticUpgrade(dep);
    const auto report = dep.run(50);

    EXPECT_EQ(report.violations, 0u) << report.firstViolation;
    EXPECT_EQ(report.drained, 1u);
    const auto &table = dep.room().membership();
    EXPECT_EQ(table.state(2), membership::UnitState::Live);
    EXPECT_EQ(table.state(3), membership::UnitState::Live);
    EXPECT_EQ(table.state(1), membership::UnitState::Left);
    EXPECT_EQ(table.transitionsPending(), 0u);
    EXPECT_EQ(dep.rack(1), nullptr);
    ASSERT_NE(dep.rack(2), nullptr);
    EXPECT_TRUE(dep.rack(2)->membership().isLive(2));
}

TEST(Elasticity, StaticMembershipLeavesTheTraceFormatUntouched)
{
    // The compatibility bar for the whole membership plane: a
    // deployment that never scripts elasticity must behave — and log —
    // exactly as it did before the plane existed. No membership frame
    // may be sent, the generation must stay at its boot value, and no
    // log line may carry the elasticity markers (the 'J'/'G'/'X'
    // states or the " g=" suffix) that would perturb bit-comparison
    // against pre-elasticity traces.
    rt::LockstepDeployment dep(kScenario, rt::ChaosBackend::Sim,
                               net::TransportConfig{}, /*seed=*/77);
    dep.chaos().randomKillRestarts(dep.rackCount(), 4, 40, 4, 4);
    const auto report = dep.run(60);

    EXPECT_EQ(report.violations, 0u) << report.firstViolation;
    EXPECT_EQ(dep.room().membershipGeneration(), 1u);
    EXPECT_EQ(dep.room().stats().membershipDeltasSent, 0u);
    EXPECT_EQ(dep.room().stats().membershipCommits, 0u);
    for (const auto &line : report.log) {
        EXPECT_EQ(line.find(" g="), std::string::npos) << line;
        // The state column must only ever show the pre-elasticity
        // liveness alphabet (L/D/R/K), never J/G/X.
        const std::size_t st = line.find("st=") + 3;
        for (std::size_t i = st; i < line.size() && line[i] != ' '; ++i)
            EXPECT_EQ(std::string("JGX").find(line[i]),
                      std::string::npos)
                << line;
    }
}
