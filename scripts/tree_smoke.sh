#!/bin/sh
# Deep-tree host smoke test: run the depth-3 scenario
# (configs/tree_depth3.json, room -> 2 rows -> 4 racks -> 8 servers)
# as three event-loop host processes on loopback UDP, SIGKILL the
# process hosting the rowB aggregator mid-run, and assert that
# (a) the survivors keep running and exit cleanly on SIGTERM,
# (b) the root degrades the dead subtree through the stale -> lost
#     ladder rather than stalling,
# (c) the orphaned leaf under the dead aggregator falls back to its
#     Pcap_min default budget, and
# (d) the intact rowA subtree never defaults.
#
# Usage: scripts/tree_smoke.sh [build-dir]     (default: build)
# Exit:  0 pass, 77 skipped (CAPMAESTRO_NO_NET=1), 1 fail.

set -u
cd "$(dirname "$0")/.."

if [ -n "${CAPMAESTRO_NO_NET:-}" ]; then
    echo "tree_smoke: skipped (CAPMAESTRO_NO_NET is set)"
    exit 77
fi

BUILD="${1:-build}"
WORKER="$BUILD/tools/capmaestro_worker"
CONFIG=configs/tree_depth3.json
if [ ! -x "$WORKER" ]; then
    echo "tree_smoke: $WORKER not built" >&2
    exit 1
fi

DIR="$(mktemp -d "${TMPDIR:-/tmp}/capmaestro_tree.XXXXXX")"
trap 'rm -rf "$DIR"' EXIT

# Cut the tree at height 1 over three host processes. The template's
# placement puts the rowA subtree and the root in process 0, the rowB
# aggregator plus its first rack in process 1, and the remaining rowB
# rack in process 2 — so killing process 1 orphans process 2's leaf.
"$WORKER" "$CONFIG" --print-peers-template \
    --agg-levels=1 --processes=3 --port-base=0 --period-ms=300 \
    > "$DIR/peers.json" 2> /dev/null || exit 1

# Hosts free-run on completeness, so no --periods: let them run until
# we stop them, which keeps the kill timing race-free.
for P in 0 1 2; do
    "$WORKER" "$CONFIG" --peers="$DIR/peers.json" --process=$P \
        > "$DIR/proc$P.out" 2> "$DIR/proc$P.err" &
    eval "PID$P=\$!"
done

# Warm up lossless, then kill the mid-tier aggregator's process.
sleep 1.0
kill -KILL "$PID1" 2> /dev/null
# Let the survivors ride the degraded deadline cascade for a few
# periods (each degraded period costs the tier-staggered deadlines,
# roughly half a second), then stop them cleanly.
sleep 4.0
kill -TERM "$PID0" "$PID2" 2> /dev/null
wait "$PID0" || {
    echo "tree_smoke: process 0 (rowA + root) exited nonzero" >&2
    cat "$DIR/proc0.err"
    exit 1
}
wait "$PID2" || {
    echo "tree_smoke: process 2 (orphaned leaf) exited nonzero" >&2
    cat "$DIR/proc2.err"
    exit 1
}
wait "$PID1" 2> /dev/null

echo "--- host summaries"
grep 'host process' "$DIR"/proc0.err "$DIR"/proc2.err

DONE0="$(grep 'host process 0 done:' "$DIR/proc0.err")"
DONE2="$(grep 'host process 2 done:' "$DIR/proc2.err")"
if [ -z "$DONE0" ] || [ -z "$DONE2" ]; then
    echo "tree_smoke: missing host exit summary" >&2
    exit 1
fi

# The root must have degraded the dead rowB subtree (stale reuse and
# then metrics-lost), not sailed through as if nothing happened...
case "$DONE0" in
*" 0 stale, 0 lost,"*)
    echo "tree_smoke: root never degraded the killed subtree" >&2
    exit 1 ;;
esac
# ...while its own rowA subtree stayed on real budgets throughout...
case "$DONE0" in
*" 0 defaults,"*) : ;;
*)
    echo "tree_smoke: intact rowA subtree fell back to defaults" >&2
    exit 1 ;;
esac
# ...and the leaf orphaned under the dead aggregator must have applied
# its conservative Pcap_min default at least once.
case "$DONE2" in
*" 0 defaults,"*)
    echo "tree_smoke: orphaned leaf never applied a default budget" >&2
    exit 1 ;;
esac
# Both survivors must have applied real budgets before the kill.
for LINE in "$DONE0" "$DONE2"; do
    APPLIED="$(printf '%s\n' "$LINE" \
        | sed -n 's/.*periods, \([0-9]*\) budgets applied.*/\1/p')"
    if [ -z "$APPLIED" ] || [ "$APPLIED" -eq 0 ]; then
        echo "tree_smoke: a survivor never applied a real budget" >&2
        exit 1
    fi
done

echo "tree_smoke: PASS (aggregator kill degraded, survivors clean)"
exit 0
