#!/bin/sh
# Live observability smoke test: run the depth-3 scenario
# (configs/tree_depth3.json) as three event-loop host processes on
# loopback UDP with the scrape plane enabled (observability block in
# the peer table), then assert from the outside that
# (a) every process serves /healthz with "ok": true,
# (b) every process's /metrics passes a Prometheus text-exposition
#     grammar check (HELP/TYPE comments, sample syntax, every sample
#     name typed),
# (c) the wire-v5 hop-latency histograms and the root's fleet health
#     gauges are present in the scrapes, and
# (d) capmaestro_top renders one plain snapshot over the same
#     endpoints and reports the safety auditor clean.
#
# Usage: scripts/obs_smoke.sh [build-dir]     (default: build)
# Exit:  0 pass, 77 skipped (CAPMAESTRO_NO_NET=1), 1 fail.

set -u
cd "$(dirname "$0")/.."

if [ -n "${CAPMAESTRO_NO_NET:-}" ]; then
    echo "obs_smoke: skipped (CAPMAESTRO_NO_NET is set)"
    exit 77
fi

BUILD="${1:-build}"
WORKER="$BUILD/tools/capmaestro_worker"
TOP="$BUILD/tools/capmaestro_top"
CONFIG=configs/tree_depth3.json
for BIN in "$WORKER" "$TOP"; do
    if [ ! -x "$BIN" ]; then
        echo "obs_smoke: $BIN not built" >&2
        exit 1
    fi
done

DIR="$(mktemp -d "${TMPDIR:-/tmp}/capmaestro_obs.XXXXXX")"
trap 'rm -rf "$DIR"' EXIT

# Scrape ports must be fixed up front (the peer table carries the
# base); derive them from the PID so parallel runs rarely collide.
HTTP_BASE=$(( 20000 + $$ % 20000 ))

"$WORKER" "$CONFIG" --print-peers-template \
    --agg-levels=1 --processes=3 --port-base=0 --period-ms=300 \
    --http-port-base="$HTTP_BASE" \
    > "$DIR/peers.json" 2> /dev/null || exit 1
grep -q '"httpPortBase"' "$DIR/peers.json" || {
    echo "obs_smoke: template lacks the observability block" >&2
    exit 1
}

for P in 0 1 2; do
    "$WORKER" "$CONFIG" --peers="$DIR/peers.json" --process=$P \
        > "$DIR/proc$P.out" 2> "$DIR/proc$P.err" &
    eval "PID$P=\$!"
done
stop_all() {
    kill -TERM "$PID0" "$PID1" "$PID2" 2> /dev/null
    wait 2> /dev/null
}

# Let a few control periods complete so hops, traces, and audits have
# all happened at every tier.
sleep 1.5

fail() {
    echo "obs_smoke: $1" >&2
    for P in 0 1 2; do cat "$DIR/proc$P.err"; done >&2
    stop_all
    exit 1
}

# Prometheus text-exposition grammar check (version 0.0.4): every
# line is a HELP/TYPE comment or a sample, and every sample's metric
# name (histogram suffixes stripped) carries a TYPE.
check_grammar() {
    awk '
    function barf(why) {
        printf "line %d: %s: %s\n", NR, why, $0 > "/dev/stderr"
        exit 1
    }
    /^$/ { next }
    /^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* / { next }
    /^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$/ {
        type[$3] = $4; next
    }
    /^#/ { barf("malformed comment") }
    {
        if ($0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN)$/)
            barf("malformed sample")
        name = $0; sub(/[{ ].*/, "", name)
        base = name
        sub(/_(bucket|sum|count)$/, "", base)
        if (!(name in type) && !(base in type))
            barf("sample without a TYPE")
        samples++
    }
    END {
        if (samples == 0) { print "no samples" > "/dev/stderr"; exit 1 }
    }'
}

PORTS=""
P=0
while [ $P -lt 3 ]; do
    PORT=$(( HTTP_BASE + P ))
    PORTS="$PORTS${PORTS:+,}$PORT"

    curl -sf "http://127.0.0.1:$PORT/healthz" > "$DIR/healthz$P.json" \
        || fail "process $P: /healthz unreachable on port $PORT"
    grep -q '"ok": true' "$DIR/healthz$P.json" \
        || fail "process $P: /healthz not ok"

    curl -sf "http://127.0.0.1:$PORT/metrics" > "$DIR/metrics$P.prom" \
        || fail "process $P: /metrics unreachable on port $PORT"
    check_grammar < "$DIR/metrics$P.prom" \
        || fail "process $P: /metrics failed the exposition grammar"

    curl -sf "http://127.0.0.1:$PORT/tracez" > "$DIR/tracez$P.json" \
        || fail "process $P: /tracez unreachable on port $PORT"
    case "$(head -c 1 "$DIR/tracez$P.json")" in
    "[") : ;;
    *) fail "process $P: /tracez is not a JSON array" ;;
    esac

    P=$(( P + 1 ))
done

# The wire-v5 trace contexts produced hop-latency histograms...
cat "$DIR"/metrics?.prom | grep -q '^capmaestro_hop_latency_ms_bucket' \
    || fail "no hop latency histogram in any scrape"
# ...the safety auditor ran and stayed clean fleet-wide...
grep -h '^capmaestro_safety_audits_total' "$DIR"/metrics?.prom \
    | grep -qv ' 0$' || fail "safety auditor never audited"
cat "$DIR"/metrics?.prom | grep '^capmaestro_safety_violations_total' \
    | grep -qv ' 0$' && fail "safety auditor flagged a violation"
# ...and the aggregating processes exported the fleet health rollup.
cat "$DIR"/metrics?.prom | grep -q '^capmaestro_fleet_units' \
    || fail "no fleet health gauges in any scrape"

# capmaestro_top renders one snapshot over the live endpoints.
"$TOP" --ports="$PORTS" --iterations=1 --plain > "$DIR/top.out" 2>&1 \
    || fail "capmaestro_top exited nonzero"
grep -q 'safety: clean' "$DIR/top.out" \
    || fail "capmaestro_top did not report the auditor clean"
grep -q 'DOWN' "$DIR/top.out" \
    && fail "capmaestro_top saw a DOWN endpoint"

stop_all

echo "--- capmaestro_top snapshot"
cat "$DIR/top.out"
echo "obs_smoke: PASS (endpoints live, exposition valid, auditor clean)"
exit 0
