#!/bin/sh
# Multi-process loopback smoke test for the UDP control plane: launch
# one room + two rack capmaestro_worker processes on 127.0.0.1, let
# them exchange real datagrams for a few periods, then kill one rack
# and assert the room's §4.5 heartbeat failover fires while the
# survivor keeps receiving budgets (zero Pcap_min defaults).
#
# Usage: scripts/udp_smoke.sh [build-dir]     (default: build)
# Exit:  0 pass, 77 skipped (CAPMAESTRO_NO_NET=1), 1 fail.

set -u
cd "$(dirname "$0")/.."

if [ -n "${CAPMAESTRO_NO_NET:-}" ]; then
    echo "udp_smoke: skipped (CAPMAESTRO_NO_NET is set)"
    exit 77
fi

BUILD="${1:-build}"
WORKER="$BUILD/tools/capmaestro_worker"
CONFIG=configs/dual_feed_spo.json
if [ ! -x "$WORKER" ]; then
    echo "udp_smoke: $WORKER not built" >&2
    exit 1
fi

DIR="$(mktemp -d "${TMPDIR:-/tmp}/capmaestro_udp_smoke.XXXXXX")"
trap 'rm -rf "$DIR"' EXIT

# --port-base=0 probes a free ephemeral port per endpoint, so parallel
# smoke runs (or anything else on this host) cannot collide with us.
"$WORKER" "$CONFIG" --print-peers-template \
    --port-base=0 --period-ms=300 \
    > "$DIR/peers.json" 2> /dev/null || exit 1

"$WORKER" "$CONFIG" --peers="$DIR/peers.json" --role=0 --periods=10 \
    > "$DIR/rack0.jsonl" 2> "$DIR/rack0.log" &
RACK0=$!
"$WORKER" "$CONFIG" --peers="$DIR/peers.json" --role=1 --periods=10 \
    > "$DIR/rack1.jsonl" 2> "$DIR/rack1.log" &
RACK1=$!
"$WORKER" "$CONFIG" --peers="$DIR/peers.json" --role=2 --periods=10 \
    --telemetry-out="$DIR/room_telemetry" \
    > "$DIR/room.jsonl" 2> "$DIR/room.log" &
ROOM=$!

# Let ~4 healthy periods pass, then kill rack 1 mid-deployment.
sleep 1.4
kill -TERM "$RACK1" 2> /dev/null
wait "$RACK0" || { echo "udp_smoke: rack 0 failed"; cat "$DIR/rack0.log"; exit 1; }
wait "$ROOM" || { echo "udp_smoke: room failed"; cat "$DIR/room.log"; exit 1; }
wait "$RACK1" 2> /dev/null

echo "--- room events"
cat "$DIR/room.jsonl"

# The room must have declared rack 1 dead (heartbeat silence)...
grep -q '"kind": "worker-failover"' "$DIR/room.jsonl" || {
    echo "udp_smoke: no worker-failover event in room output" >&2
    exit 1
}
# ...and the event must be mirrored into the telemetry export.
grep -q 'worker-failover' "$DIR/room_telemetry/events.jsonl" || {
    echo "udp_smoke: failover missing from room events.jsonl" >&2
    exit 1
}
# The survivor ran all its periods on real budgets: no defaults, and
# no degraded event of its own.
grep -q '10 periods' "$DIR/rack0.log" || {
    echo "udp_smoke: rack 0 did not run 10 periods" >&2
    cat "$DIR/rack0.log"
    exit 1
}
grep -q ' 0 defaults' "$DIR/rack0.log" || {
    echo "udp_smoke: rack 0 fell back to default budgets" >&2
    cat "$DIR/rack0.log"
    exit 1
}
# Transport counters made it into the per-process telemetry.
grep -q '^capmaestro_transport_frames_delivered_total ' \
    "$DIR/room_telemetry/metrics.prom" || {
    echo "udp_smoke: transport counters missing from metrics.prom" >&2
    exit 1
}

echo "udp_smoke: PASS (failover detected, survivor unaffected)"
exit 0
