#!/bin/sh
# Online-elasticity smoke test: run a 3-slot deployment (2 racks +
# room) under capmaestro_supervisor on loopback UDP with rack 1
# scripted absent, then drive the full membership lifecycle from the
# outside exactly as an operator would — one file edit plus one SIGHUP
# per step (docs/distributed.md, "Online elasticity"):
#
#   1. live join: peers.json membership -> { "join": [1] }, SIGHUP;
#      the supervisor spawns the worker shadowed and forwards the
#      signal to the root, which announces and commits the adopt
#      (watched live through /healthz generations);
#   2. live drain: membership -> { "drain": [1] }, SIGHUP; the root
#      commits Left, the worker exits cleanly on its own, and the
#      supervisor retires (never respawns) it;
#   3. rolling restart: SIGKILL the surviving rack and then the room;
#      the supervisor must respawn both and the deployment must keep
#      making control progress.
#
# Along the way capmaestro_top must render the absent slot as an
# explicit DOWN row (the fleet gap an operator watches during a join)
# and show the converged generation once the join commits.
#
# Usage: scripts/membership_smoke.sh [build-dir]     (default: build)
# Exit:  0 pass, 77 skipped (CAPMAESTRO_NO_NET=1), 1 fail.

set -u
cd "$(dirname "$0")/.."

if [ -n "${CAPMAESTRO_NO_NET:-}" ]; then
    echo "membership_smoke: skipped (CAPMAESTRO_NO_NET is set)"
    exit 77
fi

BUILD="${1:-build}"
WORKER="$BUILD/tools/capmaestro_worker"
SUPERVISOR="$BUILD/tools/capmaestro_supervisor"
TOP="$BUILD/tools/capmaestro_top"
CONFIG=configs/dual_feed_spo.json
for bin in "$WORKER" "$SUPERVISOR" "$TOP"; do
    if [ ! -x "$bin" ]; then
        echo "membership_smoke: $bin not built" >&2
        exit 1
    fi
done

DIR="$(mktemp -d "${TMPDIR:-/tmp}/capmaestro_member.XXXXXX")"
SUP=""
cleanup() {
    [ -n "$SUP" ] && kill -TERM "$SUP" 2> /dev/null
    [ -n "$SUP" ] && wait "$SUP" 2> /dev/null
    rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
    echo "membership_smoke: $1" >&2
    echo "--- supervisor log" >&2
    cat "$DIR/supervisor.log" >&2 2> /dev/null
    echo "--- root stderr" >&2
    cat "$DIR/logs/role2.err" >&2 2> /dev/null
    exit 1
}

# Poll until a command succeeds (the deployment runs on 300 ms
# periods; every step below lands well inside a few seconds).
wait_until() { # deadline_s what cmd...
    _deadline="$1"; _what="$2"; shift 2
    _i=0
    while ! "$@" 2> /dev/null; do
        [ "$_i" -ge "$(( _deadline * 10 ))" ] \
            && fail "timed out waiting for $_what"
        sleep 0.1
        _i=$(( _i + 1 ))
    done
}

# The root's /healthz generation: the membership plane's clock.
root_gen_at_least() { # n
    GEN="$(curl -sf \
        "http://127.0.0.1:$(( HTTP_BASE + 2 ))/healthz" 2> /dev/null \
        | sed -n 's/.*"generation": \([0-9]*\),.*/\1/p' | head -n 1)"
    [ -n "$GEN" ] && [ "$GEN" -ge "$1" ]
}

grep_file() { grep -q "$2" "$1"; }

# Scrape ports must be fixed up front (the peer table carries the
# base); derive them from the PID so parallel runs rarely collide.
HTTP_BASE=$(( 20000 + $$ % 20000 ))

# --port-base=0 probes free ephemeral UDP ports per endpoint; rack 1
# is scripted absent, so the supervisor boots a 2-process fleet with a
# hole where the third slot will join.
"$WORKER" "$CONFIG" --print-peers-template \
    --port-base=0 --period-ms=300 --http-port-base="$HTTP_BASE" \
    > "$DIR/peers_base.json" 2> /dev/null || exit 1
sed '1s/{/{ "membership": { "absent": [1] },/' \
    "$DIR/peers_base.json" > "$DIR/peers.json"

"$SUPERVISOR" "$CONFIG" --peers="$DIR/peers.json" \
    --log-dir="$DIR/logs" 2> "$DIR/supervisor.log" &
SUP=$!

wait_until 10 "room spawn" \
    grep_file "$DIR/supervisor.log" '^spawn role=2 '
wait_until 10 "root /healthz" root_gen_at_least 1
sleep 1.0
if grep -q '^spawn role=1 ' "$DIR/supervisor.log"; then
    fail "absent slot 1 was spawned at boot"
fi

# The absent slot must show as an explicit DOWN row, not vanish.
PORTS="$HTTP_BASE,$(( HTTP_BASE + 1 )),$(( HTTP_BASE + 2 ))"
"$TOP" --ports="$PORTS" --iterations=1 --plain \
    > "$DIR/top_before.out" 2>&1 \
    || fail "capmaestro_top (pre-join) exited nonzero"
grep -q 'DOWN' "$DIR/top_before.out" \
    || fail "capmaestro_top hid the absent slot instead of DOWN"

# ---- step 1: live join. Edit the membership block and signal.
sed '1s/"absent": \[1\]/"join": [1]/' "$DIR/peers.json" \
    > "$DIR/peers.tmp" && mv "$DIR/peers.tmp" "$DIR/peers.json"
kill -HUP "$SUP"
wait_until 10 "shadowed spawn of the joiner" \
    grep_file "$DIR/supervisor.log" '^spawn role=1 .* shadow$'
# Announce bumps the root to generation 2; the commit (ack + shadow
# window) to 3.
wait_until 15 "join commit (generation 3)" root_gen_at_least 3

# The committed fleet: no DOWN rows, and the joiner reports itself
# live at the root's generation.
"$TOP" --ports="$PORTS" --iterations=1 --plain \
    > "$DIR/top_after.out" 2>&1 \
    || fail "capmaestro_top (post-join) exited nonzero"
grep -q 'DOWN' "$DIR/top_after.out" \
    && fail "DOWN row survived the join commit"
wait_until 10 "joiner adopting the commit" sh -c \
    "curl -sf http://127.0.0.1:$(( HTTP_BASE + 1 ))/healthz \
        | grep -q '\"self\": \"live\"'"

# ---- step 2: live drain of the unit that just joined.
sed '1s/"join": \[1\]/"drain": [1]/' "$DIR/peers.json" \
    > "$DIR/peers.tmp" && mv "$DIR/peers.tmp" "$DIR/peers.json"
kill -HUP "$SUP"
wait_until 10 "retire mark" \
    grep_file "$DIR/supervisor.log" 'role 1 retiring'
# Drain announce -> 4, commit Left -> 5; the drained worker then
# exits its loop on its own and the supervisor must retire it.
wait_until 15 "drain commit (generation 5)" root_gen_at_least 5
wait_until 20 "clean self-exit of the drained worker" \
    grep_file "$DIR/supervisor.log" 'role 1 drained (status 0)'

# ---- step 3: supervisor-driven rolling restart of the survivors.
# Roll the rack with SIGKILL (crash path) and the root with SIGTERM
# (graceful path — the root flushes its event log, which the final
# lifecycle assertions below read back from the O_APPEND child log).
for ROLL in "0 KILL" "2 TERM"; do
    ROLE="${ROLL% *}"
    SIG="${ROLL#* }"
    PID="$(sed -n "s/^spawn role=$ROLE pid=\([0-9]*\).*/\1/p" \
        "$DIR/supervisor.log" | tail -n 1)"
    [ -n "$PID" ] || fail "no spawn line for role $ROLE"
    BEFORE="$(grep -c "^spawn role=$ROLE " "$DIR/supervisor.log")"
    kill -"$SIG" "$PID" 2> /dev/null
    _i=0
    while [ "$(grep -c "^spawn role=$ROLE " "$DIR/supervisor.log")" \
            -le "$BEFORE" ]; do
        [ "$_i" -ge 100 ] && fail "role $ROLE was never respawned"
        sleep 0.1
        _i=$(( _i + 1 ))
    done
done
# A drained slot must stay retired through the rolling restart.
if [ "$(grep -c '^spawn role=1 ' "$DIR/supervisor.log")" -ne 1 ]; then
    fail "drained role 1 was respawned"
fi
# ...and the rolled deployment must come back and make progress (the
# restarted root re-serves /healthz once its period loop runs again).
wait_until 20 "control progress after the roll" root_gen_at_least 1

kill -TERM "$SUP"
wait "$SUP" || fail "supervisor exited nonzero"
SUP=""

# The root's event log (flushed at exit) must record the lifecycle.
grep -q '"kind": "membership-join"' "$DIR/logs/role2.out" \
    || fail "no membership-join event in the root log"
grep -q '"kind": "membership-committed"' "$DIR/logs/role2.out" \
    || fail "no membership-committed event in the root log"
grep -q '"kind": "membership-drain"' "$DIR/logs/role2.out" \
    || fail "no membership-drain event in the root log"

echo "--- supervisor log"
cat "$DIR/supervisor.log"
echo "membership_smoke: PASS (join, drain, rolling restart clean)"
exit 0
