#!/usr/bin/env bash
# Repo verification: the tier-1 build + test line from ROADMAP.md, plus
# an ASan+UBSan build of the net-layer tests (wire codec, transport,
# message-plane protocol) to catch memory and UB bugs in the frame
# parsing paths that handle untrusted bytes.
#
# Usage: scripts/check.sh [--tier1-only]

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: full build + test suite =="
cmake -B build -S . > /dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "${1:-}" == "--tier1-only" ]]; then
    exit 0
fi

echo
echo "== udp tier: multi-process loopback smoke (capmaestro_worker) =="
# One room + two rack daemons over real 127.0.0.1 sockets, one rack
# killed mid-run; asserts the §4.5 heartbeat failover from outside the
# processes. Skips itself (exit 77) when CAPMAESTRO_NO_NET=1.
smoke_rc=0
sh scripts/udp_smoke.sh build || smoke_rc=$?
if [ "$smoke_rc" -eq 77 ]; then
    echo "udp smoke: skipped"
elif [ "$smoke_rc" -ne 0 ]; then
    exit "$smoke_rc"
fi

echo
echo "== failover tier: supervisor restart + checkpoint re-home =="
# capmaestro_supervisor forks the full deployment, one rack worker is
# SIGKILLed, and the script asserts the respawn, the §4.5 failover,
# and the checkpoint replay from the daemons' logs. Skips itself
# (exit 77) when CAPMAESTRO_NO_NET=1.
failover_rc=0
sh scripts/failover_smoke.sh build || failover_rc=$?
if [ "$failover_rc" -eq 77 ]; then
    echo "failover smoke: skipped"
elif [ "$failover_rc" -ne 0 ]; then
    exit "$failover_rc"
fi

echo
echo "== tree tier: multi-process depth-3 aggregator-kill smoke =="
# Three event-loop host processes run the depth-3 scenario
# (configs/tree_depth3.json); the process hosting a mid-tier
# aggregator is SIGKILLed and the script asserts the survivors
# degrade (stale -> lost upstream, Pcap_min defaults on the orphaned
# subtree) and exit cleanly. Skips itself (exit 77) when
# CAPMAESTRO_NO_NET=1.
tree_rc=0
sh scripts/tree_smoke.sh build || tree_rc=$?
if [ "$tree_rc" -eq 77 ]; then
    echo "tree smoke: skipped"
elif [ "$tree_rc" -ne 0 ]; then
    exit "$tree_rc"
fi

echo
echo "== observability tier: scrape endpoints + capmaestro_top smoke =="
# Three depth-3 host processes with the HTTP scrape plane on: every
# /metrics must pass the Prometheus exposition grammar check, every
# /healthz must be ok, the hop-latency histograms and fleet gauges
# must be present, and capmaestro_top must render a clean snapshot.
# Skips itself (exit 77) when CAPMAESTRO_NO_NET=1.
obs_rc=0
sh scripts/obs_smoke.sh build || obs_rc=$?
if [ "$obs_rc" -eq 77 ]; then
    echo "obs smoke: skipped"
elif [ "$obs_rc" -ne 0 ]; then
    exit "$obs_rc"
fi

echo
echo "== membership tier: live join/drain/rolling-restart smoke =="
# capmaestro_supervisor boots the deployment with one slot scripted
# absent, then the script joins it (peers.json edit + SIGHUP, two-
# phase shadow adopt watched through /healthz generations), drains it
# (clean self-exit, supervisor retires the slot), and rolls the
# survivors. capmaestro_top must show the absent slot as a DOWN row
# before the join and none after. Skips itself (exit 77) when
# CAPMAESTRO_NO_NET=1.
membership_rc=0
sh scripts/membership_smoke.sh build || membership_rc=$?
if [ "$membership_rc" -eq 77 ]; then
    echo "membership smoke: skipped"
elif [ "$membership_rc" -ne 0 ]; then
    exit "$membership_rc"
fi

echo
echo "== sanitizers: ASan+UBSan run of the net + udp + tree tiers =="
# The message-plane tier is labeled "net" in tests/CMakeLists.txt: wire
# codec fuzzers, transport fault model, distributed protocol, closed
# loop, and the SPO equivalence suite. The "udp" tier adds the
# real-socket backend and the worker runtime, the "failover" tier the
# checkpoint/re-homing chaos suite plus the supervisor smoke, the
# "tree" tier the deep-control-tree equivalence property test, and the
# "membership" tier the elasticity table unit suite plus the live
# join/drain smoke (the socket-bound members skip via
# CAPMAESTRO_NO_NET=1). All are fast enough to run under sanitizers on
# every check.
cmake -B build-asan -S . -DCAPMAESTRO_SANITIZE=ON > /dev/null
cmake --build build-asan -j --target \
    test_wire test_transport test_distributed test_net_closed_loop \
    test_spo_equivalence test_udp_transport test_udp_closed_loop \
    test_worker_runtime test_failover test_tree_depth test_membership \
    capmaestro_run capmaestro_worker capmaestro_supervisor \
    capmaestro_top
(cd build-asan && \
    ctest -L 'net|udp|failover|tree|membership' --output-on-failure -j)

echo
echo "== sanitizers: ASan+UBSan run of the telemetry tier =="
# The observability tier (label "telemetry"): registry/tracer units,
# the closed-loop trace contract, and the export tools end to end.
cmake --build build-asan -j --target \
    test_telemetry capmaestro_run capmaestro_trace capmaestro_audit
(cd build-asan && ctest -L telemetry --output-on-failure -j)
build-asan/tools/capmaestro_run configs/dual_feed_spo.json \
    --duration=32 --drop-rate=0.1 \
    --telemetry-out=build-asan/telemetry_smoke > /dev/null
build-asan/tools/capmaestro_trace \
    build-asan/telemetry_smoke/trace.jsonl --summary > /dev/null

echo
echo "== sanitizers: ASan+UBSan run of the workload tier =="
# The workload tier (label "workload"): the job/tenant traffic layer,
# placement policies, SLO accounting, the closed-loop priority path,
# and the bench_workload smoke sweep. Its Sim/UDP equivalence test
# skips itself under CAPMAESTRO_NO_NET=1 like the socket tiers.
cmake --build build-asan -j --target test_workload bench_workload
(cd build-asan && ctest -L workload --output-on-failure -j)

echo
echo "All checks passed."
