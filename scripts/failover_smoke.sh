#!/bin/sh
# Supervisor + checkpoint/re-home smoke test: run the whole deployment
# under capmaestro_supervisor on loopback UDP, SIGKILL one rack worker
# mid-run, and assert (a) the supervisor restarts it, (b) the room
# detects the restart and re-homes the new instance from its latest
# checkpoint, and (c) the survivor rack never falls back to Pcap_min
# defaults.
#
# Usage: scripts/failover_smoke.sh [build-dir]     (default: build)
# Exit:  0 pass, 77 skipped (CAPMAESTRO_NO_NET=1), 1 fail.

set -u
cd "$(dirname "$0")/.."

if [ -n "${CAPMAESTRO_NO_NET:-}" ]; then
    echo "failover_smoke: skipped (CAPMAESTRO_NO_NET is set)"
    exit 77
fi

BUILD="${1:-build}"
WORKER="$BUILD/tools/capmaestro_worker"
SUPERVISOR="$BUILD/tools/capmaestro_supervisor"
CONFIG=configs/dual_feed_spo.json
for bin in "$WORKER" "$SUPERVISOR"; do
    if [ ! -x "$bin" ]; then
        echo "failover_smoke: $bin not built" >&2
        exit 1
    fi
done

DIR="$(mktemp -d "${TMPDIR:-/tmp}/capmaestro_failover.XXXXXX")"
trap 'rm -rf "$DIR"' EXIT

"$WORKER" "$CONFIG" --print-peers-template \
    --port-base=0 --period-ms=300 \
    > "$DIR/peers.json" 2> /dev/null || exit 1

# Pick a restart backoff longer than the room's heartbeat-fail window
# (3 x 300 ms) so the kill is observed as a real failover, but short
# enough that the rack re-homes well inside the 20-period run. The
# template already carries a supervisor block with the defaults;
# rewrite the two backoff knobs in place.
sed -e 's/"backoffInitialMs": [0-9.]*/"backoffInitialMs": 1500/' \
    -e 's/"backoffMaxMs": [0-9.]*/"backoffMaxMs": 1500/' \
    "$DIR/peers.json" > "$DIR/peers_sup.json"

"$SUPERVISOR" "$CONFIG" --peers="$DIR/peers_sup.json" --periods=20 \
    --log-dir="$DIR/logs" 2> "$DIR/supervisor.log" &
SUP=$!

# Find rack 1's pid from the supervisor spawn log, then SIGKILL it
# after a few healthy periods so the checkpoint store is warm.
sleep 2.0
RACK1_PID="$(sed -n 's/^spawn role=1 pid=\([0-9]*\).*/\1/p' \
    "$DIR/supervisor.log" | head -n 1)"
if [ -z "$RACK1_PID" ]; then
    echo "failover_smoke: no spawn line for role 1" >&2
    cat "$DIR/supervisor.log"
    exit 1
fi
kill -KILL "$RACK1_PID" 2> /dev/null

wait "$SUP" || {
    echo "failover_smoke: supervisor failed" >&2
    cat "$DIR/supervisor.log"
    exit 1
}

echo "--- supervisor log"
cat "$DIR/supervisor.log"

# The supervisor must have restarted role 1 (a second spawn line)...
RESPAWNS="$(grep -c '^spawn role=1 ' "$DIR/supervisor.log")"
if [ "$RESPAWNS" -lt 2 ]; then
    echo "failover_smoke: rack 1 was never restarted" >&2
    exit 1
fi
# ...the room must have detected the dead rack and re-homed the new
# instance from a checkpoint...
grep -q 'worker-failover' "$DIR/logs/role2.out" || {
    echo "failover_smoke: no worker-failover event in room output" >&2
    cat "$DIR/logs/role2.out"
    exit 1
}
grep -q 'worker-rehomed' "$DIR/logs/role2.out" || {
    echo "failover_smoke: room never re-homed the restarted rack" >&2
    cat "$DIR/logs/role2.out"
    exit 1
}
# ...the restarted rack must have replayed the checkpoint...
grep -q 'checkpoint-replayed' "$DIR/logs/role1.out" || {
    echo "failover_smoke: restarted rack never replayed a checkpoint" >&2
    cat "$DIR/logs/role1.out"
    exit 1
}
# ...and the survivor rack stayed on real budgets throughout.
grep -q ' 0 defaults' "$DIR/logs/role0.err" || {
    echo "failover_smoke: rack 0 fell back to default budgets" >&2
    cat "$DIR/logs/role0.err"
    exit 1
}

echo "failover_smoke: PASS (restart + checkpoint re-home verified)"
exit 0
