file(REMOVE_RECURSE
  "CMakeFiles/capmaestro_run.dir/capmaestro_run.cc.o"
  "CMakeFiles/capmaestro_run.dir/capmaestro_run.cc.o.d"
  "capmaestro_run"
  "capmaestro_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capmaestro_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
