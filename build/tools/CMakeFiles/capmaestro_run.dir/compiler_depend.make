# Empty compiler generated dependencies file for capmaestro_run.
# This may be replaced when dependencies are built.
