# Empty compiler generated dependencies file for capmaestro_gen.
# This may be replaced when dependencies are built.
