file(REMOVE_RECURSE
  "CMakeFiles/capmaestro_gen.dir/capmaestro_gen.cc.o"
  "CMakeFiles/capmaestro_gen.dir/capmaestro_gen.cc.o.d"
  "capmaestro_gen"
  "capmaestro_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capmaestro_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
