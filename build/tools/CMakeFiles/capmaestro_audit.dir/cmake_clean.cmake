file(REMOVE_RECURSE
  "CMakeFiles/capmaestro_audit.dir/capmaestro_audit.cc.o"
  "CMakeFiles/capmaestro_audit.dir/capmaestro_audit.cc.o.d"
  "capmaestro_audit"
  "capmaestro_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capmaestro_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
