# Empty dependencies file for capmaestro_audit.
# This may be replaced when dependencies are built.
