file(REMOVE_RECURSE
  "CMakeFiles/capmaestro_capacity.dir/capmaestro_capacity.cc.o"
  "CMakeFiles/capmaestro_capacity.dir/capmaestro_capacity.cc.o.d"
  "capmaestro_capacity"
  "capmaestro_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capmaestro_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
