# Empty dependencies file for capmaestro_capacity.
# This may be replaced when dependencies are built.
