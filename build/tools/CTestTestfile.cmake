# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_run_fig2 "/root/repo/build/tools/capmaestro_run" "/root/repo/configs/fig2_testbed.json" "--duration=40")
set_tests_properties(tool_run_fig2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_run_spo_failover "/root/repo/build/tools/capmaestro_run" "/root/repo/configs/dual_feed_spo.json" "--duration=60" "--fail-feed=0@30")
set_tests_properties(tool_run_spo_failover PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_run_csv "/root/repo/build/tools/capmaestro_run" "/root/repo/configs/fig2_testbed.json" "--duration=20" "--csv")
set_tests_properties(tool_run_csv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_run_three_phase "/root/repo/build/tools/capmaestro_run" "/root/repo/configs/three_phase.json" "--duration=40")
set_tests_properties(tool_run_three_phase PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_capacity_smoke "/root/repo/build/tools/capmaestro_capacity" "--policy=global" "--worst" "--trials=2" "--sweep=8:12" "--max")
set_tests_properties(tool_capacity_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_audit_example "/root/repo/build/tools/capmaestro_audit" "/root/repo/configs/audit_example.json")
set_tests_properties(tool_audit_example PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;27;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_gen_run_pipeline "sh" "-c" "/root/repo/build/tools/capmaestro_gen --per-phase=2 --seed=5 > gen_dc.json      && /root/repo/build/tools/capmaestro_run gen_dc.json --duration=24")
set_tests_properties(tool_gen_run_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
