
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/analysis.cc" "src/topology/CMakeFiles/cap_topology.dir/analysis.cc.o" "gcc" "src/topology/CMakeFiles/cap_topology.dir/analysis.cc.o.d"
  "/root/repo/src/topology/audit.cc" "src/topology/CMakeFiles/cap_topology.dir/audit.cc.o" "gcc" "src/topology/CMakeFiles/cap_topology.dir/audit.cc.o.d"
  "/root/repo/src/topology/breaker.cc" "src/topology/CMakeFiles/cap_topology.dir/breaker.cc.o" "gcc" "src/topology/CMakeFiles/cap_topology.dir/breaker.cc.o.d"
  "/root/repo/src/topology/power_system.cc" "src/topology/CMakeFiles/cap_topology.dir/power_system.cc.o" "gcc" "src/topology/CMakeFiles/cap_topology.dir/power_system.cc.o.d"
  "/root/repo/src/topology/power_tree.cc" "src/topology/CMakeFiles/cap_topology.dir/power_tree.cc.o" "gcc" "src/topology/CMakeFiles/cap_topology.dir/power_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
