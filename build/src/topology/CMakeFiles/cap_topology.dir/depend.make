# Empty dependencies file for cap_topology.
# This may be replaced when dependencies are built.
