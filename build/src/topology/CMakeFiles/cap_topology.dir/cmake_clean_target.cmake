file(REMOVE_RECURSE
  "libcap_topology.a"
)
