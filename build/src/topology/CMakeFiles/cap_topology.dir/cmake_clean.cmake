file(REMOVE_RECURSE
  "CMakeFiles/cap_topology.dir/analysis.cc.o"
  "CMakeFiles/cap_topology.dir/analysis.cc.o.d"
  "CMakeFiles/cap_topology.dir/audit.cc.o"
  "CMakeFiles/cap_topology.dir/audit.cc.o.d"
  "CMakeFiles/cap_topology.dir/breaker.cc.o"
  "CMakeFiles/cap_topology.dir/breaker.cc.o.d"
  "CMakeFiles/cap_topology.dir/power_system.cc.o"
  "CMakeFiles/cap_topology.dir/power_system.cc.o.d"
  "CMakeFiles/cap_topology.dir/power_tree.cc.o"
  "CMakeFiles/cap_topology.dir/power_tree.cc.o.d"
  "libcap_topology.a"
  "libcap_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cap_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
