file(REMOVE_RECURSE
  "libcap_stats.a"
)
