# Empty compiler generated dependencies file for cap_stats.
# This may be replaced when dependencies are built.
