file(REMOVE_RECURSE
  "CMakeFiles/cap_stats.dir/accumulator.cc.o"
  "CMakeFiles/cap_stats.dir/accumulator.cc.o.d"
  "CMakeFiles/cap_stats.dir/histogram.cc.o"
  "CMakeFiles/cap_stats.dir/histogram.cc.o.d"
  "CMakeFiles/cap_stats.dir/quantile.cc.o"
  "CMakeFiles/cap_stats.dir/quantile.cc.o.d"
  "CMakeFiles/cap_stats.dir/timeseries.cc.o"
  "CMakeFiles/cap_stats.dir/timeseries.cc.o.d"
  "libcap_stats.a"
  "libcap_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cap_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
