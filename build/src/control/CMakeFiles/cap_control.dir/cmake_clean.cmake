file(REMOVE_RECURSE
  "CMakeFiles/cap_control.dir/allocator.cc.o"
  "CMakeFiles/cap_control.dir/allocator.cc.o.d"
  "CMakeFiles/cap_control.dir/capping_controller.cc.o"
  "CMakeFiles/cap_control.dir/capping_controller.cc.o.d"
  "CMakeFiles/cap_control.dir/control_tree.cc.o"
  "CMakeFiles/cap_control.dir/control_tree.cc.o.d"
  "CMakeFiles/cap_control.dir/demand_estimator.cc.o"
  "CMakeFiles/cap_control.dir/demand_estimator.cc.o.d"
  "CMakeFiles/cap_control.dir/metrics.cc.o"
  "CMakeFiles/cap_control.dir/metrics.cc.o.d"
  "CMakeFiles/cap_control.dir/shifting.cc.o"
  "CMakeFiles/cap_control.dir/shifting.cc.o.d"
  "libcap_control.a"
  "libcap_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cap_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
