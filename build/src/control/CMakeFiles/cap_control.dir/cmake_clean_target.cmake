file(REMOVE_RECURSE
  "libcap_control.a"
)
