# Empty compiler generated dependencies file for cap_control.
# This may be replaced when dependencies are built.
