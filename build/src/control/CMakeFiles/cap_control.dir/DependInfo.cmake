
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/allocator.cc" "src/control/CMakeFiles/cap_control.dir/allocator.cc.o" "gcc" "src/control/CMakeFiles/cap_control.dir/allocator.cc.o.d"
  "/root/repo/src/control/capping_controller.cc" "src/control/CMakeFiles/cap_control.dir/capping_controller.cc.o" "gcc" "src/control/CMakeFiles/cap_control.dir/capping_controller.cc.o.d"
  "/root/repo/src/control/control_tree.cc" "src/control/CMakeFiles/cap_control.dir/control_tree.cc.o" "gcc" "src/control/CMakeFiles/cap_control.dir/control_tree.cc.o.d"
  "/root/repo/src/control/demand_estimator.cc" "src/control/CMakeFiles/cap_control.dir/demand_estimator.cc.o" "gcc" "src/control/CMakeFiles/cap_control.dir/demand_estimator.cc.o.d"
  "/root/repo/src/control/metrics.cc" "src/control/CMakeFiles/cap_control.dir/metrics.cc.o" "gcc" "src/control/CMakeFiles/cap_control.dir/metrics.cc.o.d"
  "/root/repo/src/control/shifting.cc" "src/control/CMakeFiles/cap_control.dir/shifting.cc.o" "gcc" "src/control/CMakeFiles/cap_control.dir/shifting.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cap_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cap_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/cap_device.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cap_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
