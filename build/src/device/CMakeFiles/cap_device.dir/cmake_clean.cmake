file(REMOVE_RECURSE
  "CMakeFiles/cap_device.dir/node_manager.cc.o"
  "CMakeFiles/cap_device.dir/node_manager.cc.o.d"
  "CMakeFiles/cap_device.dir/sensor.cc.o"
  "CMakeFiles/cap_device.dir/sensor.cc.o.d"
  "CMakeFiles/cap_device.dir/server.cc.o"
  "CMakeFiles/cap_device.dir/server.cc.o.d"
  "CMakeFiles/cap_device.dir/vm.cc.o"
  "CMakeFiles/cap_device.dir/vm.cc.o.d"
  "CMakeFiles/cap_device.dir/workload.cc.o"
  "CMakeFiles/cap_device.dir/workload.cc.o.d"
  "libcap_device.a"
  "libcap_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cap_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
