# Empty dependencies file for cap_device.
# This may be replaced when dependencies are built.
