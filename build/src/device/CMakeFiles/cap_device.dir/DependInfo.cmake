
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/node_manager.cc" "src/device/CMakeFiles/cap_device.dir/node_manager.cc.o" "gcc" "src/device/CMakeFiles/cap_device.dir/node_manager.cc.o.d"
  "/root/repo/src/device/sensor.cc" "src/device/CMakeFiles/cap_device.dir/sensor.cc.o" "gcc" "src/device/CMakeFiles/cap_device.dir/sensor.cc.o.d"
  "/root/repo/src/device/server.cc" "src/device/CMakeFiles/cap_device.dir/server.cc.o" "gcc" "src/device/CMakeFiles/cap_device.dir/server.cc.o.d"
  "/root/repo/src/device/vm.cc" "src/device/CMakeFiles/cap_device.dir/vm.cc.o" "gcc" "src/device/CMakeFiles/cap_device.dir/vm.cc.o.d"
  "/root/repo/src/device/workload.cc" "src/device/CMakeFiles/cap_device.dir/workload.cc.o" "gcc" "src/device/CMakeFiles/cap_device.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cap_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cap_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
