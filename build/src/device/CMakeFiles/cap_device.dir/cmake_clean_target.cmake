file(REMOVE_RECURSE
  "libcap_device.a"
)
