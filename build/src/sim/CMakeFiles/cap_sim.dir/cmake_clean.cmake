file(REMOVE_RECURSE
  "CMakeFiles/cap_sim.dir/capacity.cc.o"
  "CMakeFiles/cap_sim.dir/capacity.cc.o.d"
  "CMakeFiles/cap_sim.dir/closed_loop.cc.o"
  "CMakeFiles/cap_sim.dir/closed_loop.cc.o.d"
  "CMakeFiles/cap_sim.dir/datacenter.cc.o"
  "CMakeFiles/cap_sim.dir/datacenter.cc.o.d"
  "CMakeFiles/cap_sim.dir/placement.cc.o"
  "CMakeFiles/cap_sim.dir/placement.cc.o.d"
  "CMakeFiles/cap_sim.dir/scenario.cc.o"
  "CMakeFiles/cap_sim.dir/scenario.cc.o.d"
  "CMakeFiles/cap_sim.dir/utilization.cc.o"
  "CMakeFiles/cap_sim.dir/utilization.cc.o.d"
  "libcap_sim.a"
  "libcap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
