file(REMOVE_RECURSE
  "libcap_sim.a"
)
