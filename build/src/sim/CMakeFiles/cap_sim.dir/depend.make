# Empty dependencies file for cap_sim.
# This may be replaced when dependencies are built.
