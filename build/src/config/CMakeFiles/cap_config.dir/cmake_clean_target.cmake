file(REMOVE_RECURSE
  "libcap_config.a"
)
