file(REMOVE_RECURSE
  "CMakeFiles/cap_config.dir/loader.cc.o"
  "CMakeFiles/cap_config.dir/loader.cc.o.d"
  "libcap_config.a"
  "libcap_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cap_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
