# Empty compiler generated dependencies file for cap_config.
# This may be replaced when dependencies are built.
