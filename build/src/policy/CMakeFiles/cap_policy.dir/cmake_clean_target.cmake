file(REMOVE_RECURSE
  "libcap_policy.a"
)
