file(REMOVE_RECURSE
  "CMakeFiles/cap_policy.dir/policy.cc.o"
  "CMakeFiles/cap_policy.dir/policy.cc.o.d"
  "libcap_policy.a"
  "libcap_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cap_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
