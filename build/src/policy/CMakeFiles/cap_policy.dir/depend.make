# Empty dependencies file for cap_policy.
# This may be replaced when dependencies are built.
