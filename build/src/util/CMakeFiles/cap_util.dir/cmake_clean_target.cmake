file(REMOVE_RECURSE
  "libcap_util.a"
)
