file(REMOVE_RECURSE
  "CMakeFiles/cap_util.dir/json.cc.o"
  "CMakeFiles/cap_util.dir/json.cc.o.d"
  "CMakeFiles/cap_util.dir/logging.cc.o"
  "CMakeFiles/cap_util.dir/logging.cc.o.d"
  "CMakeFiles/cap_util.dir/random.cc.o"
  "CMakeFiles/cap_util.dir/random.cc.o.d"
  "CMakeFiles/cap_util.dir/regression.cc.o"
  "CMakeFiles/cap_util.dir/regression.cc.o.d"
  "CMakeFiles/cap_util.dir/table.cc.o"
  "CMakeFiles/cap_util.dir/table.cc.o.d"
  "libcap_util.a"
  "libcap_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cap_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
