# Empty compiler generated dependencies file for cap_util.
# This may be replaced when dependencies are built.
