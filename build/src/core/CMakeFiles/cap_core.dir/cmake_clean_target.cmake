file(REMOVE_RECURSE
  "libcap_core.a"
)
