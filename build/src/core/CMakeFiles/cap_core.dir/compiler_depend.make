# Empty compiler generated dependencies file for cap_core.
# This may be replaced when dependencies are built.
