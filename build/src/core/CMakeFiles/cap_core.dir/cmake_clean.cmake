file(REMOVE_RECURSE
  "CMakeFiles/cap_core.dir/distributed.cc.o"
  "CMakeFiles/cap_core.dir/distributed.cc.o.d"
  "CMakeFiles/cap_core.dir/events.cc.o"
  "CMakeFiles/cap_core.dir/events.cc.o.d"
  "CMakeFiles/cap_core.dir/service.cc.o"
  "CMakeFiles/cap_core.dir/service.cc.o.d"
  "CMakeFiles/cap_core.dir/worker.cc.o"
  "CMakeFiles/cap_core.dir/worker.cc.o.d"
  "libcap_core.a"
  "libcap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
