# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_table1 "/root/repo/build/bench/bench_table1_local_vs_global")
set_tests_properties(bench_smoke_table1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig5 "/root/repo/build/bench/bench_fig5_cap_enforcement")
set_tests_properties(bench_smoke_fig5 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;28;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig6 "/root/repo/build/bench/bench_table2_fig6_policies")
set_tests_properties(bench_smoke_fig6 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;29;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig7 "/root/repo/build/bench/bench_table3_fig7_spo")
set_tests_properties(bench_smoke_fig7 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig8 "/root/repo/build/bench/bench_fig8_load_profile" "--samples=2000")
set_tests_properties(bench_smoke_fig8 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig9 "/root/repo/build/bench/bench_fig9_capacity" "--trials=3" "--typical-trials=10")
set_tests_properties(bench_smoke_fig9 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig10 "/root/repo/build/bench/bench_fig10_cap_ratio" "--trials=2")
set_tests_properties(bench_smoke_fig10 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;35;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_sensitivity "/root/repo/build/bench/bench_sensitivity" "--trials=2")
set_tests_properties(bench_smoke_sensitivity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation "/root/repo/build/bench/bench_ablation" "--trials=2")
set_tests_properties(bench_smoke_ablation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_scalability "/root/repo/build/bench/bench_scalability" "--benchmark_min_time=0.01")
set_tests_properties(bench_smoke_scalability PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
