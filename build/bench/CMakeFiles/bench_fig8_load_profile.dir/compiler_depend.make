# Empty compiler generated dependencies file for bench_fig8_load_profile.
# This may be replaced when dependencies are built.
