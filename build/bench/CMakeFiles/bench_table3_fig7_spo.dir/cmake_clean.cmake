file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_fig7_spo.dir/bench_table3_fig7_spo.cc.o"
  "CMakeFiles/bench_table3_fig7_spo.dir/bench_table3_fig7_spo.cc.o.d"
  "bench_table3_fig7_spo"
  "bench_table3_fig7_spo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_fig7_spo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
