# Empty dependencies file for bench_table3_fig7_spo.
# This may be replaced when dependencies are built.
