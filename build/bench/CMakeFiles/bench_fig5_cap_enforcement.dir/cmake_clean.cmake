file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cap_enforcement.dir/bench_fig5_cap_enforcement.cc.o"
  "CMakeFiles/bench_fig5_cap_enforcement.dir/bench_fig5_cap_enforcement.cc.o.d"
  "bench_fig5_cap_enforcement"
  "bench_fig5_cap_enforcement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cap_enforcement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
