# Empty dependencies file for bench_fig5_cap_enforcement.
# This may be replaced when dependencies are built.
