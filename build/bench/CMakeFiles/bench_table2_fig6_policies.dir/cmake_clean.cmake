file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_fig6_policies.dir/bench_table2_fig6_policies.cc.o"
  "CMakeFiles/bench_table2_fig6_policies.dir/bench_table2_fig6_policies.cc.o.d"
  "bench_table2_fig6_policies"
  "bench_table2_fig6_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_fig6_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
