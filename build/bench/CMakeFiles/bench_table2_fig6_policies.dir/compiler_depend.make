# Empty compiler generated dependencies file for bench_table2_fig6_policies.
# This may be replaced when dependencies are built.
