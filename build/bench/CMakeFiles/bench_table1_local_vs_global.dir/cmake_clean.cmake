file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_local_vs_global.dir/bench_table1_local_vs_global.cc.o"
  "CMakeFiles/bench_table1_local_vs_global.dir/bench_table1_local_vs_global.cc.o.d"
  "bench_table1_local_vs_global"
  "bench_table1_local_vs_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_local_vs_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
