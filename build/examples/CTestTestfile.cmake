# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_datacenter_emergency "/root/repo/build/examples/datacenter_emergency")
set_tests_properties(example_datacenter_emergency PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stranded_power "/root/repo/build/examples/stranded_power")
set_tests_properties(example_stranded_power PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planning "/root/repo/build/examples/capacity_planning")
set_tests_properties(example_capacity_planning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_topology_audit "/root/repo/build/examples/topology_audit")
set_tests_properties(example_topology_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_tenant "/root/repo/build/examples/multi_tenant")
set_tests_properties(example_multi_tenant PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
