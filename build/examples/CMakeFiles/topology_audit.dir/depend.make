# Empty dependencies file for topology_audit.
# This may be replaced when dependencies are built.
