file(REMOVE_RECURSE
  "CMakeFiles/topology_audit.dir/topology_audit.cpp.o"
  "CMakeFiles/topology_audit.dir/topology_audit.cpp.o.d"
  "topology_audit"
  "topology_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
