# Empty dependencies file for datacenter_emergency.
# This may be replaced when dependencies are built.
