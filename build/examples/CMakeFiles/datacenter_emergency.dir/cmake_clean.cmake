file(REMOVE_RECURSE
  "CMakeFiles/datacenter_emergency.dir/datacenter_emergency.cpp.o"
  "CMakeFiles/datacenter_emergency.dir/datacenter_emergency.cpp.o.d"
  "datacenter_emergency"
  "datacenter_emergency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_emergency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
