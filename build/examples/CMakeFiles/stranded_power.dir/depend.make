# Empty dependencies file for stranded_power.
# This may be replaced when dependencies are built.
