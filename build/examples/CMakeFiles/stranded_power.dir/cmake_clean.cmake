file(REMOVE_RECURSE
  "CMakeFiles/stranded_power.dir/stranded_power.cpp.o"
  "CMakeFiles/stranded_power.dir/stranded_power.cpp.o.d"
  "stranded_power"
  "stranded_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stranded_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
