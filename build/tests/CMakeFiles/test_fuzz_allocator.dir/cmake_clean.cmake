file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_allocator.dir/test_fuzz_allocator.cc.o"
  "CMakeFiles/test_fuzz_allocator.dir/test_fuzz_allocator.cc.o.d"
  "test_fuzz_allocator"
  "test_fuzz_allocator.pdb"
  "test_fuzz_allocator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
