# Empty dependencies file for test_fuzz_allocator.
# This may be replaced when dependencies are built.
