file(REMOVE_RECURSE
  "CMakeFiles/test_multiphase.dir/test_multiphase.cc.o"
  "CMakeFiles/test_multiphase.dir/test_multiphase.cc.o.d"
  "test_multiphase"
  "test_multiphase.pdb"
  "test_multiphase[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiphase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
