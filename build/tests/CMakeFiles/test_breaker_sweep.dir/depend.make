# Empty dependencies file for test_breaker_sweep.
# This may be replaced when dependencies are built.
