file(REMOVE_RECURSE
  "CMakeFiles/test_breaker_sweep.dir/test_breaker_sweep.cc.o"
  "CMakeFiles/test_breaker_sweep.dir/test_breaker_sweep.cc.o.d"
  "test_breaker_sweep"
  "test_breaker_sweep.pdb"
  "test_breaker_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_breaker_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
