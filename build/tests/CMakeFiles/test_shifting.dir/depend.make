# Empty dependencies file for test_shifting.
# This may be replaced when dependencies are built.
