file(REMOVE_RECURSE
  "CMakeFiles/test_shifting.dir/test_shifting.cc.o"
  "CMakeFiles/test_shifting.dir/test_shifting.cc.o.d"
  "test_shifting"
  "test_shifting.pdb"
  "test_shifting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shifting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
