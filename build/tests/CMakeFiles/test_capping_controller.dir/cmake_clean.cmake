file(REMOVE_RECURSE
  "CMakeFiles/test_capping_controller.dir/test_capping_controller.cc.o"
  "CMakeFiles/test_capping_controller.dir/test_capping_controller.cc.o.d"
  "test_capping_controller"
  "test_capping_controller.pdb"
  "test_capping_controller[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_capping_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
