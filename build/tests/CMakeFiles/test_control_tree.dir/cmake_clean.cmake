file(REMOVE_RECURSE
  "CMakeFiles/test_control_tree.dir/test_control_tree.cc.o"
  "CMakeFiles/test_control_tree.dir/test_control_tree.cc.o.d"
  "test_control_tree"
  "test_control_tree.pdb"
  "test_control_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_control_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
