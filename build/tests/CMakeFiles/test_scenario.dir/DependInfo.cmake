
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_scenario.cc" "tests/CMakeFiles/test_scenario.dir/test_scenario.cc.o" "gcc" "tests/CMakeFiles/test_scenario.dir/test_scenario.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/config/CMakeFiles/cap_config.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/cap_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/cap_control.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cap_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/cap_device.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cap_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
