# Empty compiler generated dependencies file for test_demand_estimator.
# This may be replaced when dependencies are built.
