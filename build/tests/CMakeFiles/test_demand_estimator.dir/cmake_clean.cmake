file(REMOVE_RECURSE
  "CMakeFiles/test_demand_estimator.dir/test_demand_estimator.cc.o"
  "CMakeFiles/test_demand_estimator.dir/test_demand_estimator.cc.o.d"
  "test_demand_estimator"
  "test_demand_estimator.pdb"
  "test_demand_estimator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_demand_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
