#include "telemetry/registry.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "util/json.hh"
#include "util/logging.hh"

namespace capmaestro::telemetry {

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:   return "counter";
      case MetricKind::Gauge:     return "gauge";
      case MetricKind::Histogram: return "histogram";
    }
    return "unknown";
}

namespace {

bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    const auto head = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) || c == '_'
               || c == ':';
    };
    const auto tail = [&head](char c) {
        return head(c) || std::isdigit(static_cast<unsigned char>(c));
    };
    if (!head(name[0]))
        return false;
    return std::all_of(name.begin() + 1, name.end(), tail);
}

bool
validLabelName(const std::string &name)
{
    if (name.empty())
        return false;
    const auto head = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
    };
    if (!head(name[0]))
        return false;
    return std::all_of(name.begin() + 1, name.end(), [&head](char c) {
        return head(c) || std::isdigit(static_cast<unsigned char>(c));
    });
}

/** Canonical series key: labels sorted by name, values escaped. */
std::string
labelKey(const Labels &labels)
{
    std::string key;
    for (const auto &[name, value] : labels) {
        key += name;
        key += '\x1f';
        key += value;
        key += '\x1e';
    }
    return key;
}

std::string
escapeLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"':  out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default:   out += c;
        }
    }
    return out;
}

std::string
formatNumber(double v)
{
    char buf[48];
    if (v == static_cast<double>(static_cast<long long>(v))
        && std::abs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.10g", v);
    }
    return buf;
}

std::string
renderLabels(const Labels &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i > 0)
            out += ',';
        out += labels[i].first;
        out += "=\"";
        out += escapeLabelValue(labels[i].second);
        out += '"';
    }
    out += '}';
    return out;
}

/** Labels plus one extra pair (for histogram `le` buckets). */
std::string
renderLabelsPlus(const Labels &labels, const std::string &extra_name,
                 const std::string &extra_value)
{
    Labels all = labels;
    all.emplace_back(extra_name, extra_value);
    return renderLabels(all);
}

HistogramSnapshot
snapshotHistogram(const detail::HistogramSlot &slot)
{
    HistogramSnapshot snap;
    const stats::Histogram &h = slot.hist;
    snap.lo = h.lo();
    snap.hi = h.hi();
    snap.counts.resize(h.bins());
    for (std::size_t i = 0; i < h.bins(); ++i)
        snap.counts[i] = h.binCount(i);
    snap.sum = slot.sum;
    snap.count = h.count();
    snap.p50 = slot.p50.value();
    snap.p95 = slot.p95.value();
    snap.p99 = slot.p99.value();
    return snap;
}

} // namespace

double
HistogramSnapshot::upperEdge(std::size_t i) const
{
    const double width = (hi - lo) / static_cast<double>(counts.size());
    return lo + static_cast<double>(i + 1) * width;
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0 || counts.empty())
        return 0.0;
    if (!(q > 0.0) || !(q < 1.0))
        util::fatal("HistogramSnapshot: quantile %.3f not in (0, 1)", q);
    const double target = q * static_cast<double>(count);
    const double width = (hi - lo) / static_cast<double>(counts.size());
    double seen = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const double next = seen + static_cast<double>(counts[i]);
        if (next >= target) {
            // Interpolate linearly within the containing bin.
            const double frac =
                counts[i] > 0 ? (target - seen)
                                    / static_cast<double>(counts[i])
                              : 0.0;
            return lo + (static_cast<double>(i) + frac) * width;
        }
        seen = next;
    }
    return hi;
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    if (counts.size() != other.counts.size() || lo != other.lo
        || hi != other.hi) {
        util::fatal("HistogramSnapshot: merging incompatible ranges "
                    "([%g, %g) x%zu vs [%g, %g) x%zu)",
                    lo, hi, counts.size(), other.lo, other.hi,
                    other.counts.size());
    }
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    sum += other.sum;
    count += other.count;
    // Streaming markers cannot be merged; fall back to bin estimates.
    p50 = quantile(0.50);
    p95 = quantile(0.95);
    p99 = quantile(0.99);
}

detail::Slot *
Registry::resolve(const std::string &name, Labels labels,
                  const std::string &help, MetricKind kind, double lo,
                  double hi, std::size_t bins)
{
    if (!validMetricName(name))
        util::fatal("telemetry: invalid metric name '%s'", name.c_str());
    for (const auto &[label, value] : labels) {
        if (!validLabelName(label)) {
            util::fatal("telemetry: invalid label name '%s' on metric "
                        "'%s'", label.c_str(), name.c_str());
        }
    }
    std::sort(labels.begin(), labels.end());
    for (std::size_t i = 1; i < labels.size(); ++i) {
        if (labels[i].first == labels[i - 1].first) {
            util::fatal("telemetry: duplicate label '%s' on metric '%s'",
                        labels[i].first.c_str(), name.c_str());
        }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = families_.try_emplace(name);
    Family &family = it->second;
    if (inserted) {
        family.kind = kind;
        family.help = help;
        family.lo = lo;
        family.hi = hi;
        family.bins = bins;
    } else {
        if (family.kind != kind) {
            util::fatal("telemetry: metric '%s' registered as %s, "
                        "requested as %s", name.c_str(),
                        metricKindName(family.kind),
                        metricKindName(kind));
        }
        if (kind == MetricKind::Histogram
            && (family.lo != lo || family.hi != hi
                || family.bins != bins)) {
            util::fatal("telemetry: histogram '%s' re-registered with "
                        "different bounds", name.c_str());
        }
    }

    const std::string key = labelKey(labels);
    auto series = family.series.find(key);
    if (series == family.series.end()) {
        auto slot = std::make_unique<detail::Slot>();
        if (kind == MetricKind::Histogram) {
            slot->histogram =
                std::make_unique<detail::HistogramSlot>(lo, hi, bins);
        }
        series = family.series
                     .emplace(key, std::make_pair(std::move(labels),
                                                  std::move(slot)))
                     .first;
    }
    return series->second.second.get();
}

Counter
Registry::counter(const std::string &name, Labels labels,
                  const std::string &help)
{
    return Counter(resolve(name, std::move(labels), help,
                           MetricKind::Counter, 0, 0, 0));
}

Gauge
Registry::gauge(const std::string &name, Labels labels,
                const std::string &help)
{
    return Gauge(resolve(name, std::move(labels), help, MetricKind::Gauge,
                         0, 0, 0));
}

HistogramMetric
Registry::histogram(const std::string &name, double lo, double hi,
                    std::size_t bins, Labels labels,
                    const std::string &help)
{
    if (!(hi > lo) || bins == 0) {
        util::fatal("telemetry: histogram '%s' needs hi > lo and >= 1 "
                    "bin", name.c_str());
    }
    return HistogramMetric(resolve(name, std::move(labels), help,
                                   MetricKind::Histogram, lo, hi, bins));
}

std::size_t
Registry::seriesCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto &[name, family] : families_)
        n += family.series.size();
    return n;
}

std::vector<SeriesSnapshot>
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SeriesSnapshot> out;
    for (const auto &[name, family] : families_) {
        for (const auto &[key, entry] : family.series) {
            SeriesSnapshot snap;
            snap.name = name;
            snap.labels = entry.first;
            snap.kind = family.kind;
            snap.help = family.help;
            if (family.kind == MetricKind::Histogram)
                snap.histogram = snapshotHistogram(*entry.second->histogram);
            else
                snap.value = entry.second->value;
            out.push_back(std::move(snap));
        }
    }
    return out;
}

std::string
Registry::renderPrometheus() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    for (const auto &[name, family] : families_) {
        if (!family.help.empty()) {
            out += "# HELP " + name + " " + family.help + "\n";
        }
        out += "# TYPE " + name + " ";
        out += metricKindName(family.kind);
        out += '\n';
        for (const auto &[key, entry] : family.series) {
            const Labels &labels = entry.first;
            const detail::Slot &slot = *entry.second;
            if (family.kind != MetricKind::Histogram) {
                out += name + renderLabels(labels) + " "
                       + formatNumber(slot.value) + "\n";
                continue;
            }
            const auto snap = snapshotHistogram(*slot.histogram);
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i < snap.counts.size(); ++i) {
                cumulative += snap.counts[i];
                out += name + "_bucket"
                       + renderLabelsPlus(labels, "le",
                                          formatNumber(snap.upperEdge(i)))
                       + " " + formatNumber(
                           static_cast<double>(cumulative))
                       + "\n";
            }
            out += name + "_bucket"
                   + renderLabelsPlus(labels, "le", "+Inf") + " "
                   + formatNumber(static_cast<double>(snap.count)) + "\n";
            out += name + "_sum" + renderLabels(labels) + " "
                   + formatNumber(snap.sum) + "\n";
            out += name + "_count" + renderLabels(labels) + " "
                   + formatNumber(static_cast<double>(snap.count)) + "\n";
        }
    }
    return out;
}

void
Registry::writeJsonl(std::ostream &os) const
{
    for (const SeriesSnapshot &snap : snapshot()) {
        util::Json::Object obj;
        obj.emplace("name", util::Json(snap.name));
        obj.emplace("kind",
                    util::Json(std::string(metricKindName(snap.kind))));
        util::Json::Object labels;
        for (const auto &[label, value] : snap.labels)
            labels.emplace(label, util::Json(value));
        obj.emplace("labels", util::Json(std::move(labels)));
        if (snap.histogram) {
            const HistogramSnapshot &h = *snap.histogram;
            util::Json::Object hist;
            hist.emplace("lo", util::Json(h.lo));
            hist.emplace("hi", util::Json(h.hi));
            util::Json::Array counts;
            counts.reserve(h.counts.size());
            for (const std::uint64_t c : h.counts)
                counts.emplace_back(util::Json(static_cast<double>(c)));
            hist.emplace("counts", util::Json(std::move(counts)));
            hist.emplace("sum", util::Json(h.sum));
            hist.emplace("count",
                         util::Json(static_cast<double>(h.count)));
            hist.emplace("p50", util::Json(h.p50));
            hist.emplace("p95", util::Json(h.p95));
            hist.emplace("p99", util::Json(h.p99));
            obj.emplace("histogram", util::Json(std::move(hist)));
        } else {
            obj.emplace("value", util::Json(snap.value));
        }
        os << util::serializeJson(util::Json(std::move(obj)), 0) << '\n';
    }
    os.flush();
}

} // namespace capmaestro::telemetry
