#include "telemetry/trace.hh"

#include <algorithm>

namespace capmaestro::telemetry {

double
TraceSpan::num(const std::string &key) const
{
    for (const auto &[k, v] : nums) {
        if (k == key)
            return v;
    }
    return 0.0;
}

bool
TraceSpan::hasNum(const std::string &key) const
{
    return std::any_of(nums.begin(), nums.end(),
                       [&key](const auto &kv) { return kv.first == key; });
}

std::string
TraceSpan::str(const std::string &key) const
{
    for (const auto &[k, v] : strs) {
        if (k == key)
            return v;
    }
    return "";
}

double
PeriodTrace::num(const std::string &key) const
{
    for (const auto &[k, v] : nums) {
        if (k == key)
            return v;
    }
    return 0.0;
}

std::string
PeriodTrace::str(const std::string &key) const
{
    for (const auto &[k, v] : strs) {
        if (k == key)
            return v;
    }
    return "";
}

std::vector<const TraceSpan *>
PeriodTrace::named(const std::string &name) const
{
    std::vector<const TraceSpan *> out;
    for (const TraceSpan &span : spans) {
        if (span.name == name)
            out.push_back(&span);
    }
    return out;
}

double
PeriodTracer::usSinceStart() const
{
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::micro>(elapsed).count();
}

void
PeriodTracer::beginPeriod(std::uint64_t index)
{
    if (open_)
        endPeriod();
    current_ = PeriodTrace{};
    current_.period = index;
    current_.simTime = pendingSimTime_;
    pendingSimTime_ = -1.0;
    start_ = std::chrono::steady_clock::now();
    open_ = true;
}

void
PeriodTracer::endPeriod()
{
    if (!open_)
        return;
    const double end_us = usSinceStart();
    current_.wallMs = end_us / 1000.0;
    for (TraceSpan &span : current_.spans) {
        if (span.endUs < 0.0)
            span.endUs = end_us;
    }
    periods_.push_back(std::move(current_));
    if (keep_ > 0 && periods_.size() > keep_) {
        periods_.erase(periods_.begin(),
                       periods_.begin()
                           + static_cast<std::ptrdiff_t>(periods_.size()
                                                         - keep_));
    }
    current_ = PeriodTrace{};
    open_ = false;
}

void
PeriodTracer::setKeep(std::size_t keep)
{
    keep_ = keep;
    if (keep_ > 0 && periods_.size() > keep_) {
        periods_.erase(periods_.begin(),
                       periods_.begin()
                           + static_cast<std::ptrdiff_t>(periods_.size()
                                                         - keep_));
    }
}

util::Json
PeriodTracer::lastJson(std::size_t n) const
{
    const std::size_t count =
        n == 0 ? periods_.size() : std::min(n, periods_.size());
    util::Json::Array out;
    out.reserve(count);
    for (std::size_t i = periods_.size() - count; i < periods_.size();
         ++i)
        out.push_back(toJson(periods_[i]));
    return util::Json(std::move(out));
}

PeriodTracer::SpanId
PeriodTracer::begin(const std::string &name, SpanId parent)
{
    if (!open_)
        return kNoSpan;
    TraceSpan span;
    span.name = name;
    span.parent = parent < current_.spans.size() ? parent
                                                 : TraceSpan::kNoParent;
    span.beginUs = usSinceStart();
    current_.spans.push_back(std::move(span));
    return current_.spans.size() - 1;
}

void
PeriodTracer::end(SpanId span)
{
    if (!open_ || span >= current_.spans.size())
        return;
    current_.spans[span].endUs = usSinceStart();
}

void
PeriodTracer::num(SpanId span, const std::string &key, double value)
{
    if (!open_ || span >= current_.spans.size())
        return;
    current_.spans[span].nums.emplace_back(key, value);
}

void
PeriodTracer::str(SpanId span, const std::string &key, std::string value)
{
    if (!open_ || span >= current_.spans.size())
        return;
    current_.spans[span].strs.emplace_back(key, std::move(value));
}

void
PeriodTracer::periodNum(const std::string &key, double value)
{
    if (!open_)
        return;
    current_.nums.emplace_back(key, value);
}

void
PeriodTracer::periodStr(const std::string &key, std::string value)
{
    if (!open_)
        return;
    current_.strs.emplace_back(key, std::move(value));
}

util::Json
PeriodTracer::toJson(const PeriodTrace &trace)
{
    util::Json::Object obj;
    obj.emplace("period",
                util::Json(static_cast<double>(trace.period)));
    if (trace.simTime >= 0.0)
        obj.emplace("simTime", util::Json(trace.simTime));
    obj.emplace("wallMs", util::Json(trace.wallMs));
    util::Json::Object attrs;
    for (const auto &[key, value] : trace.nums)
        attrs.emplace(key, util::Json(value));
    for (const auto &[key, value] : trace.strs)
        attrs.emplace(key, util::Json(value));
    if (!attrs.empty())
        obj.emplace("attrs", util::Json(std::move(attrs)));

    util::Json::Array spans;
    spans.reserve(trace.spans.size());
    for (std::size_t i = 0; i < trace.spans.size(); ++i) {
        const TraceSpan &span = trace.spans[i];
        util::Json::Object js;
        js.emplace("id", util::Json(static_cast<double>(i)));
        if (span.parent != TraceSpan::kNoParent) {
            js.emplace("parent",
                       util::Json(static_cast<double>(span.parent)));
        }
        js.emplace("name", util::Json(span.name));
        js.emplace("t0us", util::Json(span.beginUs));
        js.emplace("t1us", util::Json(span.endUs));
        util::Json::Object span_attrs;
        for (const auto &[key, value] : span.nums)
            span_attrs.emplace(key, util::Json(value));
        for (const auto &[key, value] : span.strs)
            span_attrs.emplace(key, util::Json(value));
        if (!span_attrs.empty())
            js.emplace("attrs", util::Json(std::move(span_attrs)));
        spans.emplace_back(util::Json(std::move(js)));
    }
    obj.emplace("spans", util::Json(std::move(spans)));
    return util::Json(std::move(obj));
}

void
PeriodTracer::writeJsonl(std::ostream &os) const
{
    for (const PeriodTrace &trace : periods_)
        os << util::serializeJson(toJson(trace), 0) << '\n';
    os.flush();
}

} // namespace capmaestro::telemetry
