/**
 * @file
 * Metrics registry for the CapMaestro control plane.
 *
 * A Registry holds labeled time-series metrics — Counter, Gauge, and
 * Histogram — keyed by (name, label set), in the Prometheus data
 * model. Components register their series once (registration takes a
 * mutex and may allocate) and receive a lightweight handle whose
 * update operations are plain slot writes: no lock, no lookup, no
 * allocation on the control-period hot path. Histograms reuse
 * stats::Histogram for the fixed-bin distribution and stats::P2Quantile
 * for streaming p50/p95/p99 estimates.
 *
 * Telemetry is strictly optional: every instrumented component holds a
 * `Registry *` that defaults to nullptr, and all instrumentation is
 * guarded on it, so a disabled run performs no telemetry work (and no
 * allocations) at all. Handles themselves are null-safe: operations on
 * a default-constructed handle are no-ops.
 *
 * Exports: renderPrometheus() emits the Prometheus text exposition
 * format (version 0.0.4); writeJsonl() emits one JSON object per
 * series. See docs/observability.md for the metric catalog and label
 * conventions.
 */

#ifndef CAPMAESTRO_TELEMETRY_REGISTRY_HH
#define CAPMAESTRO_TELEMETRY_REGISTRY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "stats/histogram.hh"
#include "stats/quantile.hh"

namespace capmaestro::telemetry {

/** Label set: (name, value) pairs; order-insensitive identity. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Metric families come in the three classic flavors. */
enum class MetricKind { Counter, Gauge, Histogram };

/** Name of a MetricKind (exports, diagnostics). */
const char *metricKindName(MetricKind kind);

namespace detail {

/** Histogram series state: fixed bins + streaming quantile markers. */
struct HistogramSlot
{
    HistogramSlot(double lo, double hi, std::size_t bins)
        : hist(lo, hi, bins), p50(0.50), p95(0.95), p99(0.99)
    {
    }

    stats::Histogram hist;
    double sum = 0.0;
    stats::P2Quantile p50;
    stats::P2Quantile p95;
    stats::P2Quantile p99;

    void observe(double x)
    {
        hist.add(x);
        sum += x;
        p50.add(x);
        p95.add(x);
        p99.add(x);
    }
};

/** One registered series: a scalar slot or a histogram slot. */
struct Slot
{
    double value = 0.0;
    std::unique_ptr<HistogramSlot> histogram;
};

} // namespace detail

/** Monotonically increasing counter handle. */
class Counter
{
  public:
    Counter() = default;

    /** Add @p delta (must be >= 0); no-op on a null handle. */
    void inc(double delta = 1.0)
    {
        if (slot_ && delta > 0.0)
            slot_->value += delta;
    }

    /** Current total (0 on a null handle). */
    double value() const { return slot_ ? slot_->value : 0.0; }

    /** True when bound to a registry series. */
    bool valid() const { return slot_ != nullptr; }

  private:
    friend class Registry;
    explicit Counter(detail::Slot *slot) : slot_(slot) {}
    detail::Slot *slot_ = nullptr;
};

/** Last-value gauge handle. */
class Gauge
{
  public:
    Gauge() = default;

    /** Set the current value; no-op on a null handle. */
    void set(double value)
    {
        if (slot_)
            slot_->value = value;
    }

    /** Adjust the current value by @p delta; no-op on a null handle. */
    void add(double delta)
    {
        if (slot_)
            slot_->value += delta;
    }

    /** Current value (0 on a null handle). */
    double value() const { return slot_ ? slot_->value : 0.0; }

    /** True when bound to a registry series. */
    bool valid() const { return slot_ != nullptr; }

  private:
    friend class Registry;
    explicit Gauge(detail::Slot *slot) : slot_(slot) {}
    detail::Slot *slot_ = nullptr;
};

/** Distribution handle (fixed bins + p50/p95/p99 estimates). */
class HistogramMetric
{
  public:
    HistogramMetric() = default;

    /** Record one sample; no-op on a null handle. */
    void observe(double x)
    {
        if (slot_)
            slot_->histogram->observe(x);
    }

    /** Number of samples observed (0 on a null handle). */
    std::size_t count() const
    {
        return slot_ ? slot_->histogram->hist.count() : 0;
    }

    /** True when bound to a registry series. */
    bool valid() const { return slot_ != nullptr; }

  private:
    friend class Registry;
    explicit HistogramMetric(detail::Slot *slot) : slot_(slot) {}
    detail::Slot *slot_ = nullptr;
};

/**
 * Point-in-time copy of one histogram series. Snapshots can be merged
 * (bin-wise; the ranges must match) and queried for quantiles; after a
 * merge the p50/p95/p99 fields are re-derived from the merged bins by
 * linear interpolation, so they are bin-resolution approximations
 * rather than streaming P-squared estimates.
 */
struct HistogramSnapshot
{
    double lo = 0.0;
    double hi = 1.0;
    std::vector<std::uint64_t> counts;
    double sum = 0.0;
    std::uint64_t count = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;

    /** Upper edge of bin @p i (the Prometheus `le` boundary). */
    double upperEdge(std::size_t i) const;

    /**
     * Quantile @p q in (0, 1) estimated from the bins by linear
     * interpolation within the containing bin; 0 when empty.
     */
    double quantile(double q) const;

    /**
     * Fold @p other into this snapshot. The bin ranges and counts must
     * match (fatal otherwise); quantile fields are recomputed from the
     * merged bins.
     */
    void merge(const HistogramSnapshot &other);
};

/** Point-in-time copy of one registered series. */
struct SeriesSnapshot
{
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::Gauge;
    std::string help;
    /** Counter/gauge value (unused for histograms). */
    double value = 0.0;
    /** Histogram state (present only for histograms). */
    std::optional<HistogramSnapshot> histogram;
};

/** Labeled metrics registry (see file comment for the contract). */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /**
     * Register (or re-fetch) a counter series. The same (name, labels)
     * pair always returns a handle to the same slot; re-registering a
     * name with a different kind is fatal. Names must match
     * [a-zA-Z_:][a-zA-Z0-9_:]* and label names [a-zA-Z_][a-zA-Z0-9_]*.
     */
    Counter counter(const std::string &name, Labels labels = {},
                    const std::string &help = "");

    /** Register (or re-fetch) a gauge series (rules as counter()). */
    Gauge gauge(const std::string &name, Labels labels = {},
                const std::string &help = "");

    /**
     * Register (or re-fetch) a histogram series over [lo, hi) with
     * @p bins equal-width buckets (samples outside the range clamp
     * into the edge buckets). Re-registering a histogram name with
     * different bounds or bin count is fatal.
     */
    HistogramMetric histogram(const std::string &name, double lo,
                              double hi, std::size_t bins,
                              Labels labels = {},
                              const std::string &help = "");

    /** Number of registered series across all families. */
    std::size_t seriesCount() const;

    /** Copy out every series, families sorted by name. */
    std::vector<SeriesSnapshot> snapshot() const;

    /** Render the Prometheus text exposition format (version 0.0.4). */
    std::string renderPrometheus() const;

    /** Write one compact JSON object per series. */
    void writeJsonl(std::ostream &os) const;

  private:
    struct Family
    {
        MetricKind kind = MetricKind::Gauge;
        std::string help;
        double lo = 0.0;
        double hi = 1.0;
        std::size_t bins = 0;
        /** Canonical label key -> (labels, slot). */
        std::map<std::string, std::pair<Labels, std::unique_ptr<detail::Slot>>>
            series;
    };

    detail::Slot *resolve(const std::string &name, Labels labels,
                          const std::string &help, MetricKind kind,
                          double lo, double hi, std::size_t bins);

    mutable std::mutex mutex_;
    std::map<std::string, Family> families_;
};

} // namespace capmaestro::telemetry

#endif // CAPMAESTRO_TELEMETRY_REGISTRY_HH
