#include "telemetry/health.hh"

#include <algorithm>
#include <cmath>

namespace capmaestro::telemetry {

const char *
unitHealthName(UnitHealth health)
{
    switch (health) {
    case UnitHealth::Live:
        return "live";
    case UnitHealth::Stale:
        return "stale";
    case UnitHealth::Lost:
        return "lost";
    case UnitHealth::Rehoming:
        return "rehoming";
    }
    return "unknown";
}

void
FleetHealthRegistry::report(const std::string &name, UnitHealth health,
                            std::uint32_t epoch)
{
    Unit &unit = units_[name];
    unit.health = health;
    unit.lastEpoch = epoch;
    if (health == UnitHealth::Live)
        unit.lastLiveEpoch = epoch;
    else
        ++unit.degradedPeriods;
    publish();
}

std::size_t
FleetHealthRegistry::countOf(UnitHealth health) const
{
    return static_cast<std::size_t>(std::count_if(
        units_.begin(), units_.end(), [health](const auto &kv) {
            return kv.second.health == health;
        }));
}

double
FleetHealthRegistry::degradedFraction() const
{
    if (units_.empty())
        return 0.0;
    return 1.0
           - static_cast<double>(countOf(UnitHealth::Live))
                 / static_cast<double>(units_.size());
}

void
FleetHealthRegistry::setTelemetry(Registry *registry,
                                  const Labels &labels)
{
    if (!registry)
        return;
    auto labeled = [&labels](const char *state) {
        Labels ls = labels;
        ls.emplace_back("state", state);
        return ls;
    };
    const std::string help =
        "Observed units per fleet health state";
    liveGauge_ =
        registry->gauge("capmaestro_fleet_units", labeled("live"), help);
    staleGauge_ = registry->gauge("capmaestro_fleet_units",
                                  labeled("stale"), help);
    lostGauge_ =
        registry->gauge("capmaestro_fleet_units", labeled("lost"), help);
    rehomingGauge_ = registry->gauge("capmaestro_fleet_units",
                                     labeled("rehoming"), help);
    degradedGauge_ = registry->gauge(
        "capmaestro_fleet_degraded_fraction", labels,
        "Fraction of observed units not in the live state");
    publish();
}

void
FleetHealthRegistry::publish()
{
    if (!degradedGauge_.valid())
        return;
    liveGauge_.set(static_cast<double>(countOf(UnitHealth::Live)));
    staleGauge_.set(static_cast<double>(countOf(UnitHealth::Stale)));
    lostGauge_.set(static_cast<double>(countOf(UnitHealth::Lost)));
    rehomingGauge_.set(
        static_cast<double>(countOf(UnitHealth::Rehoming)));
    degradedGauge_.set(degradedFraction());
}

util::Json
FleetHealthRegistry::toJson() const
{
    util::Json::Object counts;
    counts.emplace("live", util::Json(static_cast<double>(
                               countOf(UnitHealth::Live))));
    counts.emplace("stale", util::Json(static_cast<double>(
                                countOf(UnitHealth::Stale))));
    counts.emplace("lost", util::Json(static_cast<double>(
                               countOf(UnitHealth::Lost))));
    counts.emplace("rehoming", util::Json(static_cast<double>(
                                   countOf(UnitHealth::Rehoming))));

    util::Json::Object units;
    for (const auto &[name, unit] : units_) {
        util::Json::Object u;
        u.emplace("state",
                  util::Json(std::string(unitHealthName(unit.health))));
        u.emplace("lastEpoch", util::Json(static_cast<double>(
                                   unit.lastEpoch)));
        u.emplace("lastLiveEpoch", util::Json(static_cast<double>(
                                       unit.lastLiveEpoch)));
        u.emplace("degradedPeriods",
                  util::Json(static_cast<double>(unit.degradedPeriods)));
        units.emplace(name, util::Json(std::move(u)));
    }

    util::Json::Object out;
    out.emplace("unitCount",
                util::Json(static_cast<double>(units_.size())));
    out.emplace("counts", util::Json(std::move(counts)));
    out.emplace("degradedFraction", util::Json(degradedFraction()));
    out.emplace("units", util::Json(std::move(units)));
    return util::Json(std::move(out));
}

void
SafetyAuditor::setTelemetry(Registry *registry, const Labels &labels)
{
    if (!registry)
        return;
    auditsCounter_ = registry->counter(
        "capmaestro_safety_audits_total", labels,
        "Per-period budget-conservation checks performed");
    violationsCounter_ = registry->counter(
        "capmaestro_safety_violations_total", labels,
        "Periods where committed budgets plus reserved floors "
        "exceeded the fragment's grant");
}

bool
SafetyAuditor::audit(std::uint32_t epoch, const std::string &subject,
                     double granted, double committed, double reserved)
{
    ++auditCount_;
    auditsCounter_.inc();
    const double limit =
        granted + tolerance_ * std::max(1.0, std::fabs(granted));
    const double total = committed + reserved;
    if (total <= limit)
        return true;
    ++violationCount_;
    violationsCounter_.inc();
    const double overdraw = total - granted;
    if (overdraw > worstOverdraw_) {
        worstOverdraw_ = overdraw;
        worstSubject_ =
            subject + "@epoch" + std::to_string(epoch);
    }
    return false;
}

util::Json
SafetyAuditor::toJson() const
{
    util::Json::Object out;
    out.emplace("audits",
                util::Json(static_cast<double>(auditCount_)));
    out.emplace("violations",
                util::Json(static_cast<double>(violationCount_)));
    out.emplace("worstOverdrawWatts", util::Json(worstOverdraw_));
    out.emplace("shadowUnits",
                util::Json(static_cast<double>(shadowUnits_)));
    if (!worstSubject_.empty())
        out.emplace("worstSubject", util::Json(worstSubject_));
    return util::Json(std::move(out));
}

} // namespace capmaestro::telemetry
