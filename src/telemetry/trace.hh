/**
 * @file
 * Span-structured tracing of control periods.
 *
 * A PeriodTracer records one trace per control period. Each trace is a
 * flat arena of spans (name, wall-clock begin/end in microseconds
 * relative to the period start, numeric and string attributes, parent
 * span index), which lets the control plane narrate its §4.3 phase
 * structure — gather, allocate, budget, the §4.4 SPO round — with
 * deadlines, retry counts, and §4.5 degraded-mode outcomes attached
 * where they happened.
 *
 * The tracer is harness-agnostic and failure-tolerant by design:
 *
 *   - span operations outside an open period are silently dropped, so
 *     components can stay instrumented when driven directly by tests;
 *   - operations through a null tracer pointer are simply not made
 *     (components guard on their `PeriodTracer *`), keeping disabled
 *     runs free of telemetry work;
 *   - spans left open when the period ends are closed at the period's
 *     end time.
 *
 * Export is JSONL: one compact JSON object per period, schema
 * documented in docs/observability.md. The bundled `capmaestro_trace`
 * tool filters and pretty-prints these files.
 */

#ifndef CAPMAESTRO_TELEMETRY_TRACE_HH
#define CAPMAESTRO_TELEMETRY_TRACE_HH

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hh"

namespace capmaestro::telemetry {

/** One span of a period trace (see file comment for the model). */
struct TraceSpan
{
    static constexpr std::size_t kNoParent =
        static_cast<std::size_t>(-1);

    std::string name;
    /** Index of the parent span in the trace, or kNoParent. */
    std::size_t parent = kNoParent;
    /** Wall-clock bounds, microseconds since period start. */
    double beginUs = 0.0;
    double endUs = -1.0;
    std::vector<std::pair<std::string, double>> nums;
    std::vector<std::pair<std::string, std::string>> strs;

    /** Numeric attribute by key (0 when absent). */
    double num(const std::string &key) const;
    /** True when the numeric attribute @p key is present. */
    bool hasNum(const std::string &key) const;
    /** String attribute by key ("" when absent). */
    std::string str(const std::string &key) const;
};

/** One control period's trace. */
struct PeriodTrace
{
    /** Period index (the service's periodsRun at period start). */
    std::uint64_t period = 0;
    /** Simulated time at period start (-1 when not provided). */
    double simTime = -1.0;
    /** Total wall-clock cost of the period in milliseconds. */
    double wallMs = 0.0;
    /** Period-level numeric attributes (feasibility, totals, ...). */
    std::vector<std::pair<std::string, double>> nums;
    /** Period-level string attributes (role, rack state, ...). */
    std::vector<std::pair<std::string, std::string>> strs;
    std::vector<TraceSpan> spans;

    /** Period-level numeric attribute by key (0 when absent). */
    double num(const std::string &key) const;
    /** Period-level string attribute by key ("" when absent). */
    std::string str(const std::string &key) const;
    /** Spans named @p name (top level and nested). */
    std::vector<const TraceSpan *> named(const std::string &name) const;
};

/** Records one span-structured trace per control period. */
class PeriodTracer
{
  public:
    using SpanId = std::size_t;
    static constexpr SpanId kNoSpan = static_cast<std::size_t>(-1);

    /**
     * Stamp the simulated time carried by the *next* beginPeriod().
     * The control-plane service has no notion of simulated time, so
     * the driver (e.g. ClosedLoopSim) provides it just before running
     * the period.
     */
    void noteSimTime(double sim_time) { pendingSimTime_ = sim_time; }

    /** Open the trace for period @p index (closes a leftover period). */
    void beginPeriod(std::uint64_t index);

    /** Close the current period; no-op when none is open. */
    void endPeriod();

    /** True while a period trace is open. */
    bool inPeriod() const { return open_; }

    /**
     * Open a span. Returns kNoSpan (and records nothing) when no
     * period is open, so instrumented components need no guards beyond
     * their tracer pointer.
     */
    SpanId begin(const std::string &name, SpanId parent = kNoSpan);

    /** Close a span (no-op for kNoSpan). */
    void end(SpanId span);

    /** Attach a numeric attribute to a span (no-op for kNoSpan). */
    void num(SpanId span, const std::string &key, double value);

    /** Attach a string attribute to a span (no-op for kNoSpan). */
    void str(SpanId span, const std::string &key, std::string value);

    /** Attach a numeric attribute to the open period itself. */
    void periodNum(const std::string &key, double value);

    /** Attach a string attribute to the open period itself (e.g. the
     *  worker role or a failover state-machine label). */
    void periodStr(const std::string &key, std::string value);

    /** All completed period traces, in order. */
    const std::vector<PeriodTrace> &periods() const { return periods_; }

    /** Drop all completed traces (the open period survives). */
    void clear() { periods_.clear(); }

    /**
     * Bound the number of completed traces retained (0 = unlimited,
     * the default). When bounded, endPeriod() drops the oldest
     * completed trace past the cap — the memory contract that lets an
     * endless daemon run keep a live /tracez window without growing
     * without bound.
     */
    void setKeep(std::size_t keep);

    /** Retention cap (0 = unlimited). */
    std::size_t keep() const { return keep_; }

    /**
     * JSON array of the most recent @p n completed period traces
     * (all retained traces when @p n is 0), oldest first — the
     * /tracez endpoint payload.
     */
    util::Json lastJson(std::size_t n = 0) const;

    /** One compact JSON object per completed period. */
    void writeJsonl(std::ostream &os) const;

    /** JSON form of one period trace (the JSONL line schema). */
    static util::Json toJson(const PeriodTrace &trace);

  private:
    double usSinceStart() const;

    std::vector<PeriodTrace> periods_;
    PeriodTrace current_;
    std::size_t keep_ = 0;
    bool open_ = false;
    double pendingSimTime_ = -1.0;
    std::chrono::steady_clock::time_point start_{};
};

} // namespace capmaestro::telemetry

#endif // CAPMAESTRO_TELEMETRY_TRACE_HH
