/**
 * @file
 * Root-side fleet health rollup and online safety auditing.
 *
 * FleetHealthRegistry folds the per-period signals the root (or any
 * aggregator) already produces — fresh metrics, stale-cache reuse,
 * exclusion with floor reservation, re-homing — into one health state
 * per observed unit (a child worker, or a leaf station): the §4.5
 * degradation ladder made operational as live/stale/lost/rehoming.
 * The rollup is exported three ways: gauges on a telemetry Registry
 * (one per state, plus the degraded fraction), a JSON document for the
 * /healthz endpoint, and plain accessors for tests and capmaestro_top.
 *
 * SafetyAuditor re-checks, every period, the invariant the whole paper
 * rests on: the budgets a fragment commits downstream plus the floors
 * it reserved for excluded subtrees must never exceed what the
 * fragment itself was granted. The control plane is *believed* to
 * enforce this by construction; the auditor verifies it online, after
 * the fact, from the committed numbers — so a regression anywhere in
 * the allocator or the degraded-mode bookkeeping surfaces as a
 * monotonically increasing `capmaestro_safety_violations_total`
 * rather than a silent overdraw of a breaker. A small relative
 * tolerance absorbs floating-point accumulation across the split.
 *
 * Both classes are passive data holders driven by the runtime layer;
 * neither takes locks nor allocates on the per-period path beyond the
 * first sighting of a unit.
 */

#ifndef CAPMAESTRO_TELEMETRY_HEALTH_HH
#define CAPMAESTRO_TELEMETRY_HEALTH_HH

#include <cstdint>
#include <map>
#include <string>

#include "telemetry/registry.hh"
#include "util/json.hh"

namespace capmaestro::telemetry {

/** §4.5 degradation ladder as an operational health state. */
enum class UnitHealth : std::uint8_t
{
    /** Fresh data flowed this period. */
    Live,
    /** Riding the stale-metrics cache. */
    Stale,
    /** Excluded: floor reserved, subtree on its own defaults. */
    Lost,
    /** The 2-level room is re-homing this unit's plant state. */
    Rehoming,
};

/** Lower-case state name ("live", "stale", "lost", "rehoming"). */
const char *unitHealthName(UnitHealth health);

/** Per-unit fleet health rollup (see file comment). */
class FleetHealthRegistry
{
  public:
    struct Unit
    {
        UnitHealth health = UnitHealth::Live;
        /** Epoch of the most recent report in any state. */
        std::uint32_t lastEpoch = 0;
        /** Epoch of the most recent Live report (0 before one). */
        std::uint32_t lastLiveEpoch = 0;
        /** Reports that were not Live. */
        std::uint64_t degradedPeriods = 0;
    };

    /**
     * Record unit @p name in state @p health for epoch @p epoch.
     * First sighting registers the unit; later reports update it.
     */
    void report(const std::string &name, UnitHealth health,
                std::uint32_t epoch);

    /** Number of units ever reported. */
    std::size_t unitCount() const { return units_.size(); }

    /** Units currently in state @p health. */
    std::size_t countOf(UnitHealth health) const;

    /** Fraction of units not Live (0 when no units). */
    double degradedFraction() const;

    /** The unit map (name -> state), for tests and renderers. */
    const std::map<std::string, Unit> &units() const { return units_; }

    /**
     * Publish the rollup as gauges on @p registry with @p labels:
     * capmaestro_fleet_units{state=...} per state and
     * capmaestro_fleet_degraded_fraction. Call once; report() keeps
     * the gauges current afterwards.
     */
    void setTelemetry(Registry *registry, const Labels &labels);

    /**
     * JSON rollup for /healthz: counts per state, degraded fraction,
     * and the per-unit map with last-seen epochs.
     */
    util::Json toJson() const;

  private:
    void publish();

    std::map<std::string, Unit> units_;
    Gauge liveGauge_;
    Gauge staleGauge_;
    Gauge lostGauge_;
    Gauge rehomingGauge_;
    Gauge degradedGauge_;
};

/** Online re-check of the budget-conservation invariant. */
class SafetyAuditor
{
  public:
    /** @p relative_tolerance absorbs float accumulation (of grant). */
    explicit SafetyAuditor(double relative_tolerance = 1e-9)
        : tolerance_(relative_tolerance)
    {
    }

    /**
     * Register counters capmaestro_safety_audits_total and
     * capmaestro_safety_violations_total on @p registry.
     */
    void setTelemetry(Registry *registry, const Labels &labels);

    /**
     * Audit one fragment/tree for one period: @p committed (budgets
     * sent downstream) plus @p reserved (floors held back for excluded
     * subtrees) must not exceed @p granted. Returns true when the
     * invariant holds; false records a violation (counter + the
     * worst-overdraw bookkeeping, subject retained for /healthz).
     */
    bool audit(std::uint32_t epoch, const std::string &subject,
               double granted, double committed, double reserved);

    std::uint64_t audits() const { return auditCount_; }
    std::uint64_t violations() const { return violationCount_; }

    /**
     * Record how many units the current period's reserved floors cover
     * because of membership shadowing (Joining/Draining, or Left but
     * not yet acked) rather than degradation — so a reader of /healthz
     * can tell an elasticity floor from a failure floor. Purely
     * contextual; audit() math is unchanged.
     */
    void noteShadowUnits(std::uint64_t count) { shadowUnits_ = count; }

    /** Units currently floor-reserved for membership reasons. */
    std::uint64_t shadowUnits() const { return shadowUnits_; }

    /** Largest overdraw seen, watts (0 when clean). */
    double worstOverdrawWatts() const { return worstOverdraw_; }

    /** Subject + epoch of the worst overdraw ("" when clean). */
    const std::string &worstSubject() const { return worstSubject_; }

    /** JSON summary for /healthz. */
    util::Json toJson() const;

  private:
    double tolerance_;
    std::uint64_t auditCount_ = 0;
    std::uint64_t violationCount_ = 0;
    double worstOverdraw_ = 0.0;
    std::string worstSubject_;
    std::uint64_t shadowUnits_ = 0;
    Counter auditsCounter_;
    Counter violationsCounter_;
};

} // namespace capmaestro::telemetry

#endif // CAPMAESTRO_TELEMETRY_HEALTH_HH
