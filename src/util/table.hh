/**
 * @file
 * Plain-text table and CSV emission for bench/experiment output.
 *
 * Every experiment binary prints the rows/series the paper reports; this
 * helper keeps their formatting uniform and makes CSV capture trivial.
 */

#ifndef CAPMAESTRO_UTIL_TABLE_HH
#define CAPMAESTRO_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace capmaestro::util {

/** A column-aligned text table with an optional title. */
class TextTable
{
  public:
    /** @param title heading printed above the table (may be empty) */
    explicit TextTable(std::string title = "");

    /** Set the column headers; resets column count. */
    void setHeader(std::vector<std::string> header);

    /** Append a row of pre-formatted cells. */
    void addRow(std::vector<std::string> row);

    /** Append a row where numeric cells are formatted to @p precision. */
    void addNumericRow(const std::string &label,
                       const std::vector<double> &values, int precision = 1);

    /** Render the table, column-aligned, to @p os. */
    void print(std::ostream &os) const;

    /** Render as CSV (header then rows) to @p os. */
    void printCsv(std::ostream &os) const;

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision (helper for table cells). */
std::string formatFixed(double v, int precision = 1);

} // namespace capmaestro::util

#endif // CAPMAESTRO_UTIL_TABLE_HH
