#include "util/regression.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace capmaestro::util {

SlidingRegression::SlidingRegression(std::size_t capacity)
    : capacity_(capacity)
{
    if (capacity_ < 2)
        fatal("SlidingRegression window must hold at least 2 samples");
}

void
SlidingRegression::add(double x, double y)
{
    if (samples_.size() == capacity_)
        samples_.pop_front();
    samples_.emplace_back(x, y);
}

void
SlidingRegression::clear()
{
    samples_.clear();
}

std::optional<LinearFit>
SlidingRegression::fit() const
{
    const std::size_t n = samples_.size();
    if (n < 2)
        return std::nullopt;

    double sx = 0.0, sy = 0.0;
    for (const auto &[x, y] : samples_) {
        sx += x;
        sy += y;
    }
    const double mx = sx / static_cast<double>(n);
    const double my = sy / static_cast<double>(n);

    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (const auto &[x, y] : samples_) {
        const double dx = x - mx;
        const double dy = y - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }

    LinearFit result;
    result.n = n;
    if (sxx < 1e-12) {
        // Degenerate: no spread in x. Return the mean as a constant fit.
        result.slope = 0.0;
        result.intercept = my;
        result.r2 = 0.0;
        return result;
    }

    result.slope = sxy / sxx;
    result.intercept = my - result.slope * mx;
    result.r2 = (syy < 1e-12) ? 1.0 : (sxy * sxy) / (sxx * syy);
    return result;
}

double
SlidingRegression::meanX() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &[x, y] : samples_)
        sum += x;
    return sum / static_cast<double>(samples_.size());
}

double
SlidingRegression::meanY() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &[x, y] : samples_)
        sum += y;
    return sum / static_cast<double>(samples_.size());
}

double
SlidingRegression::stddevX() const
{
    if (samples_.size() < 2)
        return 0.0;
    const double mx = meanX();
    double sxx = 0.0;
    for (const auto &[x, y] : samples_)
        sxx += (x - mx) * (x - mx);
    return std::sqrt(sxx / static_cast<double>(samples_.size()));
}

double
SlidingRegression::maxY() const
{
    if (samples_.empty())
        return 0.0;
    double best = samples_.front().second;
    for (const auto &[x, y] : samples_)
        best = std::max(best, y);
    return best;
}

} // namespace capmaestro::util
