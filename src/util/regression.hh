/**
 * @file
 * Ordinary least-squares linear regression over a sliding window.
 *
 * Used by the capping controller's power-demand estimator (paper §5): the
 * controller regresses observed server power against the observed power-cap
 * throttling level over the last 16 one-second samples, and extrapolates to
 * 0 % throttling to recover the uncapped demand.
 */

#ifndef CAPMAESTRO_UTIL_REGRESSION_HH
#define CAPMAESTRO_UTIL_REGRESSION_HH

#include <cstddef>
#include <deque>
#include <optional>

namespace capmaestro::util {

/** Result of a univariate linear fit y = intercept + slope * x. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination in [0, 1]. */
    double r2 = 0.0;
    /** Number of points the fit used. */
    std::size_t n = 0;

    /** Evaluate the fitted line at @p x. */
    double at(double x) const { return intercept + slope * x; }
};

/**
 * Fixed-capacity sliding window of (x, y) samples with OLS fitting.
 *
 * When all x values are (nearly) identical the fit is degenerate; fit()
 * then returns a horizontal line through the mean y with r2 = 0.
 */
class SlidingRegression
{
  public:
    /** @param capacity maximum number of retained samples (window length) */
    explicit SlidingRegression(std::size_t capacity);

    /** Append a sample, evicting the oldest when at capacity. */
    void add(double x, double y);

    /** Drop all samples. */
    void clear();

    /** Number of samples currently held. */
    std::size_t size() const { return samples_.size(); }

    /** Window capacity. */
    std::size_t capacity() const { return capacity_; }

    /**
     * Fit y = a + b x over the window.
     * @return std::nullopt when fewer than two samples are held.
     */
    std::optional<LinearFit> fit() const;

    /** Mean of the x values (0 when empty). */
    double meanX() const;

    /** Mean of the y values (0 when empty). */
    double meanY() const;

    /** Population standard deviation of the x values (0 when empty). */
    double stddevX() const;

    /** Largest y value in the window (0 when empty). */
    double maxY() const;

  private:
    std::size_t capacity_;
    std::deque<std::pair<double, double>> samples_;
};

} // namespace capmaestro::util

#endif // CAPMAESTRO_UTIL_REGRESSION_HH
