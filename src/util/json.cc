#include "util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace capmaestro::util {

// ------------------------------------------------------------ Json accessors

const char *
Json::typeName() const
{
    switch (value_.index()) {
      case 0: return "null";
      case 1: return "bool";
      case 2: return "number";
      case 3: return "string";
      case 4: return "array";
      case 5: return "object";
    }
    return "unknown";
}

bool
Json::asBool() const
{
    if (!isBool())
        fatal("json: expected bool, got %s", typeName());
    return std::get<bool>(value_);
}

double
Json::asNumber() const
{
    if (!isNumber())
        fatal("json: expected number, got %s", typeName());
    return std::get<double>(value_);
}

const std::string &
Json::asString() const
{
    if (!isString())
        fatal("json: expected string, got %s", typeName());
    return std::get<std::string>(value_);
}

const Json::Array &
Json::asArray() const
{
    if (!isArray())
        fatal("json: expected array, got %s", typeName());
    return std::get<Array>(value_);
}

const Json::Object &
Json::asObject() const
{
    if (!isObject())
        fatal("json: expected object, got %s", typeName());
    return std::get<Object>(value_);
}

const Json &
Json::at(const std::string &key) const
{
    const Json *found = find(key);
    if (!found)
        fatal("json: missing required key \"%s\"", key.c_str());
    return *found;
}

const Json *
Json::find(const std::string &key) const
{
    if (!isObject())
        fatal("json: expected object while looking up \"%s\", got %s",
              key.c_str(), typeName());
    const auto &obj = std::get<Object>(value_);
    const auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
}

double
Json::numberOr(const std::string &key, double fallback) const
{
    const Json *v = find(key);
    return v ? v->asNumber() : fallback;
}

bool
Json::boolOr(const std::string &key, bool fallback) const
{
    const Json *v = find(key);
    return v ? v->asBool() : fallback;
}

std::string
Json::stringOr(const std::string &key, const std::string &fallback) const
{
    const Json *v = find(key);
    return v ? v->asString() : fallback;
}

// ----------------------------------------------------------------- parser

namespace {

class Parser
{
  public:
    Parser(const std::string &text, const std::string &context)
        : text_(text), context_(context)
    {
    }

    Json
    parseDocument()
    {
        skipWhitespace();
        Json value = parseValue();
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing content after document");
        return value;
    }

  private:
    const std::string &text_;
    const std::string &context_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int column_ = 1;

    [[noreturn]] void
    fail(const std::string &message) const
    {
        fatal("%s:%d:%d: %s", context_.c_str(), line_, column_,
              message.c_str());
    }

    bool atEnd() const { return pos_ >= text_.size(); }

    char peek() const { return atEnd() ? '\0' : text_[pos_]; }

    char
    advance()
    {
        if (atEnd())
            fail("unexpected end of input");
        const char c = text_[pos_++];
        if (c == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        return c;
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek()
                 + "'");
        advance();
    }

    void
    skipWhitespace()
    {
        while (!atEnd()) {
            const char c = peek();
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                advance();
            } else if (c == '/' && pos_ + 1 < text_.size()
                       && text_[pos_ + 1] == '/') {
                while (!atEnd() && peek() != '\n')
                    advance();
            } else {
                break;
            }
        }
    }

    Json
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Json(parseString());
          case 't':
          case 'f': return parseBool();
          case 'n': parseLiteral("null"); return Json();
          default:  return parseNumber();
        }
    }

    void
    parseLiteral(const std::string &word)
    {
        for (const char c : word) {
            if (peek() != c)
                fail("malformed literal (expected \"" + word + "\")");
            advance();
        }
    }

    Json
    parseBool()
    {
        if (peek() == 't') {
            parseLiteral("true");
            return Json(true);
        }
        parseLiteral("false");
        return Json(false);
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            advance();
        while (!atEnd()
               && (std::isdigit(static_cast<unsigned char>(peek()))
                   || peek() == '.' || peek() == 'e' || peek() == 'E'
                   || peek() == '+' || peek() == '-')) {
            advance();
        }
        if (pos_ == start)
            fail("expected a value");
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            fail("malformed number \"" + token + "\"");
        return Json(v);
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (atEnd())
                fail("unterminated string");
            const char c = advance();
            if (c == '"')
                break;
            if (c == '\\') {
                const char esc = advance();
                switch (esc) {
                  case '"':  out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/':  out += '/'; break;
                  case 'b':  out += '\b'; break;
                  case 'f':  out += '\f'; break;
                  case 'n':  out += '\n'; break;
                  case 'r':  out += '\r'; break;
                  case 't':  out += '\t'; break;
                  case 'u': {
                      // Basic-multilingual-plane escapes only; encode
                      // the code point as UTF-8.
                      unsigned code = 0;
                      for (int i = 0; i < 4; ++i) {
                          const char h = advance();
                          code <<= 4;
                          if (h >= '0' && h <= '9')
                              code += static_cast<unsigned>(h - '0');
                          else if (h >= 'a' && h <= 'f')
                              code += static_cast<unsigned>(h - 'a' + 10);
                          else if (h >= 'A' && h <= 'F')
                              code += static_cast<unsigned>(h - 'A' + 10);
                          else
                              fail("malformed \\u escape");
                      }
                      if (code < 0x80) {
                          out += static_cast<char>(code);
                      } else if (code < 0x800) {
                          out += static_cast<char>(0xC0 | (code >> 6));
                          out += static_cast<char>(0x80 | (code & 0x3F));
                      } else {
                          out += static_cast<char>(0xE0 | (code >> 12));
                          out += static_cast<char>(
                              0x80 | ((code >> 6) & 0x3F));
                          out += static_cast<char>(0x80 | (code & 0x3F));
                      }
                      break;
                  }
                  default: fail("unknown escape sequence");
                }
            } else {
                out += c;
            }
        }
        return out;
    }

    Json
    parseArray()
    {
        expect('[');
        Json::Array items;
        skipWhitespace();
        while (peek() != ']') {
            items.push_back(parseValue());
            skipWhitespace();
            if (peek() == ',') {
                advance();
                skipWhitespace();
            } else if (peek() != ']') {
                fail("expected ',' or ']' in array");
            }
        }
        advance(); // ']'
        return Json(std::move(items));
    }

    Json
    parseObject()
    {
        expect('{');
        Json::Object members;
        skipWhitespace();
        while (peek() != '}') {
            if (peek() != '"')
                fail("expected a quoted key");
            const std::string key = parseString();
            skipWhitespace();
            expect(':');
            skipWhitespace();
            if (!members.emplace(key, parseValue()).second)
                fail("duplicate key \"" + key + "\"");
            skipWhitespace();
            if (peek() == ',') {
                advance();
                skipWhitespace();
            } else if (peek() != '}') {
                fail("expected ',' or '}' in object");
            }
        }
        advance(); // '}'
        return Json(std::move(members));
    }
};

} // namespace

Json
parseJson(const std::string &text, const std::string &context)
{
    Parser parser(text, context);
    return parser.parseDocument();
}

namespace {

void
serializeInto(const Json &value, int indent, int depth, std::string &out)
{
    const std::string pad(static_cast<std::size_t>(indent * depth), ' ');
    const std::string pad_in(
        static_cast<std::size_t>(indent * (depth + 1)), ' ');
    const char *nl = indent > 0 ? "\n" : "";

    if (value.isNull()) {
        out += "null";
    } else if (value.isBool()) {
        out += value.asBool() ? "true" : "false";
    } else if (value.isNumber()) {
        const double v = value.asNumber();
        char buf[48];
        if (v == static_cast<double>(static_cast<long long>(v))
            && std::abs(v) < 1e15) {
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(v));
        } else {
            std::snprintf(buf, sizeof(buf), "%.10g", v);
        }
        out += buf;
    } else if (value.isString()) {
        out += '"';
        for (const char c : value.asString()) {
            switch (c) {
              case '"':  out += "\\\""; break;
              case '\\': out += "\\\\"; break;
              case '\n': out += "\\n"; break;
              case '\t': out += "\\t"; break;
              case '\r': out += "\\r"; break;
              default:   out += c;
            }
        }
        out += '"';
    } else if (value.isArray()) {
        const auto &items = value.asArray();
        if (items.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        out += nl;
        for (std::size_t i = 0; i < items.size(); ++i) {
            out += pad_in;
            serializeInto(items[i], indent, depth + 1, out);
            if (i + 1 < items.size())
                out += ',';
            out += nl;
        }
        out += pad;
        out += ']';
    } else {
        const auto &members = value.asObject();
        if (members.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        out += nl;
        std::size_t i = 0;
        for (const auto &[key, member] : members) {
            out += pad_in;
            out += '"';
            out += key;
            out += "\": ";
            serializeInto(member, indent, depth + 1, out);
            if (++i < members.size())
                out += ',';
            out += nl;
        }
        out += pad;
        out += '}';
    }
}

} // namespace

std::string
serializeJson(const Json &value, int indent)
{
    std::string out;
    serializeInto(value, indent, 0, out);
    return out;
}

Json
parseJsonFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file %s", path.c_str());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseJson(buffer.str(), path);
}

} // namespace capmaestro::util
