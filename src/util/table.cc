#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace capmaestro::util {

std::string
formatFixed(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
TextTable::addNumericRow(const std::string &label,
                         const std::vector<double> &values, int precision)
{
    std::vector<std::string> row;
    row.reserve(values.size() + 1);
    row.push_back(label);
    for (double v : values)
        row.push_back(formatFixed(v, precision));
    rows_.push_back(std::move(row));
}

void
TextTable::print(std::ostream &os) const
{
    // Compute per-column widths across header and all rows.
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << cells[i];
        }
        os << '\n';
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit(row);
    os.flush();
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&os](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ',';
            os << cells[i];
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    os.flush();
}

} // namespace capmaestro::util
