#include "util/random.hh"

#include <algorithm>

namespace capmaestro::util {

Rng::Rng(std::uint64_t seed) : engine_(seed) {}

double
Rng::uniform(double lo, double hi)
{
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
}

double
Rng::normal(double mean, double stddev)
{
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
}

double
Rng::normalClamped(double mean, double stddev, double lo, double hi)
{
    for (int attempt = 0; attempt < 16; ++attempt) {
        const double v = normal(mean, stddev);
        if (v >= lo && v <= hi)
            return v;
    }
    return std::clamp(mean, lo, hi);
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

Rng
Rng::fork()
{
    // Derive a fork seed by mixing two raw draws; splitmix-style avalanche
    // keeps forks decorrelated even for adjacent parent states.
    std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= engine_();
    return Rng(z ^ (z >> 31));
}

} // namespace capmaestro::util
