/**
 * @file
 * Status/error reporting helpers in the gem5 tradition.
 *
 * fatal()  — the run cannot continue due to a user/configuration error;
 *            exits with status 1.
 * panic()  — an internal invariant was violated (a library bug); aborts.
 * warn()   — something is suspicious but the run continues.
 * inform() — normal operational status.
 */

#ifndef CAPMAESTRO_UTIL_LOGGING_HH
#define CAPMAESTRO_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace capmaestro::util {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/** Set the global log verbosity. Default is Warn (quiet benches/tests). */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

/** Print an informational message (shown at Info verbosity and above). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a debug message (shown at Debug verbosity only). */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning (shown at Warn verbosity and above). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user/configuration error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal invariant violation and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace capmaestro::util

#endif // CAPMAESTRO_UTIL_LOGGING_HH
