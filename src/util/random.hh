/**
 * @file
 * Deterministic random number generation for reproducible simulations.
 *
 * Every stochastic component takes an explicit Rng (or a seed) so that
 * simulation runs are bit-reproducible. Rng instances can be forked to give
 * independent substreams to parallel or per-trial consumers.
 */

#ifndef CAPMAESTRO_UTIL_RANDOM_HH
#define CAPMAESTRO_UTIL_RANDOM_HH

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace capmaestro::util {

/** Deterministic pseudo-random stream (mt19937_64 with convenience draws). */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x5eedcafeULL);

    /** Uniform real in [lo, hi). */
    double uniform(double lo = 0.0, double hi = 1.0);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Normal draw with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Normal draw truncated (by redrawing, then clamping) to [lo, hi].
     * Redraws a bounded number of times before clamping so it terminates
     * even for intervals far from the mean.
     */
    double normalClamped(double mean, double stddev, double lo, double hi);

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p);

    /**
     * Fork an independent substream. The fork's seed is derived from this
     * stream's state, so forks taken in a fixed order are reproducible.
     */
    Rng fork();

    /** Shuffle a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        std::shuffle(v.begin(), v.end(), engine_);
    }

    /** Access the raw engine (for std distributions). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace capmaestro::util

#endif // CAPMAESTRO_UTIL_RANDOM_HH
