/**
 * @file
 * Small numeric helpers shared by control and simulation code.
 */

#ifndef CAPMAESTRO_UTIL_NUMERIC_HH
#define CAPMAESTRO_UTIL_NUMERIC_HH

#include <algorithm>
#include <cmath>

namespace capmaestro::util {

/** Absolute-difference approximate equality. */
inline bool
approxEqual(double a, double b, double tol = 1e-6)
{
    return std::fabs(a - b) <= tol;
}

/** Relative approximate equality against the larger magnitude. */
inline bool
approxEqualRel(double a, double b, double rel_tol = 1e-6)
{
    const double scale = std::max(std::fabs(a), std::fabs(b));
    return std::fabs(a - b) <= rel_tol * std::max(scale, 1e-12);
}

/** Clamp @p v into [lo, hi]; tolerates lo > hi by returning lo. */
inline double
clamp(double v, double lo, double hi)
{
    if (hi < lo)
        return lo;
    return std::min(std::max(v, lo), hi);
}

/** True when @p v is within [lo - tol, hi + tol]. */
inline bool
within(double v, double lo, double hi, double tol = 1e-9)
{
    return v >= lo - tol && v <= hi + tol;
}

/** Snap tiny negative round-off to exactly zero. */
inline double
snapNonNegative(double v, double tol = 1e-9)
{
    return (v < 0.0 && v > -tol) ? 0.0 : v;
}

} // namespace capmaestro::util

#endif // CAPMAESTRO_UTIL_NUMERIC_HH
