/**
 * @file
 * Unit aliases and conversion helpers used throughout CapMaestro.
 *
 * Power values are carried as plain doubles in watts (AC or DC domain is
 * documented at each interface). The aliases exist to make signatures
 * self-describing without imposing arithmetic friction on control-law code.
 */

#ifndef CAPMAESTRO_UTIL_UNITS_HH
#define CAPMAESTRO_UTIL_UNITS_HH

#include <cstdint>

namespace capmaestro {

/** Power in watts. */
using Watts = double;

/** Energy in joules (watt-seconds). */
using Joules = double;

/** Simulation time in whole seconds. */
using Seconds = std::int64_t;

/** A dimensionless fraction, nominally in [0, 1]. */
using Fraction = double;

/**
 * Workload priority level. Higher values are more important and are
 * throttled later. The paper expects on the order of 10 levels per center.
 */
using Priority = int;

/** Convert kilowatts to watts. */
constexpr Watts
kw(double kilowatts)
{
    return kilowatts * 1000.0;
}

/** Convert amperes at a line voltage to watts (single phase). */
constexpr Watts
ampsToWatts(double amps, double volts)
{
    return amps * volts;
}

/** Nominal line (phase-to-neutral) voltage used by the modeled centers. */
constexpr double kLineVoltage = 230.0;

} // namespace capmaestro

#endif // CAPMAESTRO_UTIL_UNITS_HH
