/**
 * @file
 * A minimal, dependency-free JSON reader used by the configuration
 * loader. Supports the full JSON value grammar (objects, arrays,
 * strings with escapes, numbers, booleans, null) plus two conveniences
 * for hand-written configs: // line comments and trailing commas.
 *
 * The parser is strict about everything else and reports 1-based
 * line/column positions in error messages.
 */

#ifndef CAPMAESTRO_UTIL_JSON_HH
#define CAPMAESTRO_UTIL_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace capmaestro::util {

/** A parsed JSON value. */
class Json
{
  public:
    using Array = std::vector<Json>;
    using Object = std::map<std::string, Json>;

    /** Construct null. */
    Json() = default;
    /** Construct from primitives / containers. */
    explicit Json(bool b) : value_(b) {}
    explicit Json(double d) : value_(d) {}
    explicit Json(std::string s) : value_(std::move(s)) {}
    explicit Json(Array a) : value_(std::move(a)) {}
    explicit Json(Object o) : value_(std::move(o)) {}

    bool isNull() const
    {
        return std::holds_alternative<std::monostate>(value_);
    }
    bool isBool() const { return std::holds_alternative<bool>(value_); }
    bool isNumber() const
    {
        return std::holds_alternative<double>(value_);
    }
    bool isString() const
    {
        return std::holds_alternative<std::string>(value_);
    }
    bool isArray() const { return std::holds_alternative<Array>(value_); }
    bool isObject() const
    {
        return std::holds_alternative<Object>(value_);
    }

    /** Checked accessors; fatal() on type mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Object member; fatal() when absent or not an object. */
    const Json &at(const std::string &key) const;

    /** Object member or nullptr when absent. */
    const Json *find(const std::string &key) const;

    /** Object member with a default when absent. */
    double numberOr(const std::string &key, double fallback) const;
    bool boolOr(const std::string &key, bool fallback) const;
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

    /** Human-readable type name (diagnostics). */
    const char *typeName() const;

  private:
    std::variant<std::monostate, bool, double, std::string, Array,
                 Object>
        value_;
};

/**
 * Parse a JSON document.
 * @param text      the document
 * @param context   label used in error messages (e.g., the file name)
 * @returns the root value; calls fatal() on malformed input
 */
Json parseJson(const std::string &text,
               const std::string &context = "<json>");

/** Parse the JSON file at @p path; fatal() if unreadable or malformed. */
Json parseJsonFile(const std::string &path);

/**
 * Serialize a value back to JSON text. @p indent spaces per level;
 * pass 0 for compact single-line output. Numbers that hold integral
 * values print without a decimal point.
 */
std::string serializeJson(const Json &value, int indent = 2);

} // namespace capmaestro::util

#endif // CAPMAESTRO_UTIL_JSON_HH
