/**
 * @file
 * Declarative scenario configuration: JSON in, a runnable CapMaestro
 * deployment out. This is the adoption surface for operators: describe
 * the power topology, the server fleet and its workloads, and the
 * control-plane settings in one file, then run it with the bundled
 * `capmaestro_run` tool or embed the loader in your own harness.
 *
 * Schema (see configs/ for complete examples):
 *
 * {
 *   "feeds": 2,
 *   "trees": [
 *     { "feed": 0, "phase": 0, "name": "X",
 *       "root": { "kind": "breaker", "name": "top", "rating": 1400,
 *                 "children": [
 *                   { "kind": "supply", "server": 0, "supply": 0 } ] } }
 *   ],
 *   "servers": [
 *     { "name": "S0", "idle": 160, "capMin": 270, "capMax": 490,
 *       "priority": 1,
 *       "supplies": [ { "share": 0.5 }, { "share": 0.5 } ],
 *       "workload": { "type": "constant", "utilization": 0.9 } }
 *   ],
 *   "service": { "policy": "global", "controlPeriodSeconds": 8,
 *                "spo": true },
 *   "budgets": { "totalPerPhase": 1400 }   // or "perTree": [700, 700]
 * }
 *
 * Node kinds: contractual, ats, transformer, ups, rpp, cdu, breaker,
 * supply. A rating of "unlimited" (or an omitted rating) means the node
 * imposes no limit. Workload types: constant, steps, sine, randomwalk.
 *
 * An optional top-level "workload" block enables the job/tenant traffic
 * layer (src/workload, docs/workload.md). All keys optional except
 * "enabled":
 *
 *   "workload": {
 *     "enabled": true,
 *     "seed": 42, "arrivalRate": 0.5,
 *     "diurnalPeriodSeconds": 86400, "diurnalAmplitude": 0.3,
 *     "flash": { "startChance": 0.001, "durationSeconds": 30,
 *                "multiplier": 4 },
 *     "placement": "loadBalanced",   // firstFit/loadBalanced/
 *                                    // phaseAware/powerHeadroom
 *     "priorityMode": "max",         // off/max/weighted
 *     "queueTimeoutSeconds": 120,
 *     "backgroundUtilization": -1,   // < 0: sample the Barroso profile
 *     "backgroundJitter": 0.05, "phaseCount": 0,
 *     "tenants": [ { "name": "batch", "priority": 0, "weight": 1,
 *                    "cpuDemand": 0.25, "meanDurationSeconds": 60,
 *                    "durationSpread": 0.5, "sloSlowdown": 2 } ]
 *   }
 */

#ifndef CAPMAESTRO_CONFIG_LOADER_HH
#define CAPMAESTRO_CONFIG_LOADER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/service.hh"
#include "sim/closed_loop.hh"
#include "topology/power_system.hh"
#include "util/json.hh"
#include "workload/engine.hh"

namespace capmaestro::config {

/** Everything needed to instantiate a deployment or simulation. */
struct LoadedScenario
{
    std::unique_ptr<topo::PowerSystem> system;
    std::vector<sim::ServerSetup> servers;
    core::ServiceConfig service;
    /** Root budget per tree (resolved from either budgets form). */
    std::vector<Watts> rootBudgets;
    /** Present when the config used the totalPerPhase form. */
    std::optional<Watts> totalPerPhase;
    /** Present when the config enabled the workload traffic layer. */
    std::optional<workload::Params> workload;
};

/** Build a scenario from a parsed JSON document. */
LoadedScenario loadScenario(const util::Json &doc);

/**
 * Parse a single power tree from its JSON spec (the element format of
 * the top-level "trees" array). Used by tools that work on topologies
 * without a full scenario (e.g., capmaestro_audit).
 */
std::unique_ptr<topo::PowerTree> loadPowerTree(const util::Json &spec);

/**
 * Serialize a power tree back to the config schema (the inverse of
 * loadPowerTree). Round-trips structure, names, ratings, derates, and
 * supply references.
 */
util::Json powerTreeToJson(const topo::PowerTree &tree);

/**
 * Apply a "transport" JSON block to a service config: enables the
 * message plane (unless "enabled": false) and sets the SimTransport
 * fault model plus the §4.5 protocol tunables. Keys (all optional):
 * enabled, backend ("sim" or "udp"), dropRate, dupRate, latencyMs,
 * jitterMs, reorderRate, reorderExtraMs, seed, gatherDeadlineMs,
 * budgetDeadlineMs, spoGatherDeadlineMs, spoBudgetDeadlineMs,
 * retryTimeoutMs, maxAttempts, staleAgeCap, heartbeatFailAfter. The
 * fault-model keys apply to the sim backend only — the udp backend's
 * faults are the real network's.
 * Also the element format of the top-level "transport" scenario block.
 */
void applyTransportJson(core::ServiceConfig &service,
                        const util::Json &spec);

/**
 * Parse a "workload" block (see the schema in the file comment) into
 * workload-layer parameters. Ignores the "enabled" key — the caller
 * decides whether the layer is attached.
 */
workload::Params workloadParamsFromJson(const util::Json &spec);

/**
 * Serialize workload parameters back to the config schema (with
 * "enabled": true). Round-trips through workloadParamsFromJson.
 */
util::Json workloadParamsToJson(const workload::Params &params);

/**
 * The multi-process deployment's shared peer table (docs/distributed.md
 * quickstart). One file is distributed to every worker process:
 *
 * {
 *   "periodMs": 1000,             // wall-clock control period
 *   "originMs": 1754380000000,    // shared epoch origin, unix ms
 *   "peers": [
 *     { "endpoint": 0, "host": "127.0.0.1", "port": 9810 },  // rack 0
 *     { "endpoint": 1, "host": "127.0.0.1", "port": 9811 },  // rack 1
 *     { "endpoint": 2, "host": "127.0.0.1", "port": 9812 }   // room
 *   ]
 * }
 *
 * Endpoints are rack indices under the partitioning rule; the room is
 * endpoint rackWorkerCount. originMs anchors the control-period epoch
 * all processes must agree on: epoch = (now - originMs) / periodMs.
 *
 * An optional "aggLevels" array (ascending heights above the edge
 * level, see core/tree_plan) makes the deployment a deep control tree:
 * endpoints then follow the TreePlan numbering — leaf workers first,
 * aggregator tiers bottom-up, the root worker last — and every process
 * must be given the same levels. An optional per-peer "process" key
 * assigns the endpoint to a host process (capmaestro_worker
 * --process=K runs every endpoint assigned to K in one event loop);
 * endpoints without the key belong to process 0.
 *
 * An optional "supervisor" object tunes capmaestro_supervisor (all
 * fields optional):
 *
 *   "supervisor": {
 *     "backoffInitialMs": 250,    // first restart delay
 *     "backoffMaxMs": 5000,       // exponential backoff ceiling
 *     "backoffResetAfterMs": 10000, // uptime that resets the backoff
 *     "maxRestarts": 0,           // per child; 0 = unlimited
 *     "stateDir": ""              // room checkpoint directory
 *   }
 *
 * An optional "observability" object turns on the live scrape plane
 * (all fields optional; see docs/observability.md):
 *
 *   "observability": {
 *     "httpPortBase": 19970,   // 0 = no endpoints; role/process i
 *                              // serves 127.0.0.1:base+i
 *     "tracezKeep": 32         // period traces kept for /tracez
 *   }
 *
 * An optional "membership" object scripts the elasticity plane (see
 * docs/distributed.md, "Online elasticity"). The peer table always
 * lists every slot the deployment may ever hold; membership says which
 * slots are in play right now:
 *
 *   "membership": {
 *     "absent": [3],           // not yet deployed: root reserves no
 *                              // floor, supervisor spawns no process
 *     "join": [2],             // announce Joining (two-phase adopt)
 *     "drain": [1]             // announce Draining
 *   }
 *
 * The root worker applies join/drain on boot and again on every
 * SIGHUP-triggered reload of the file; capmaestro_supervisor reloads
 * the same file on SIGHUP, spawns workers for newly joining slots,
 * stops reaping retired ones, and forwards the SIGHUP to the root.
 */
struct SupervisorConfig
{
    /** Delay before the first restart of a crashed child, ms. */
    double backoffInitialMs = 250.0;
    /** Ceiling of the exponential restart backoff, ms. */
    double backoffMaxMs = 5000.0;
    /** A child alive this long gets its backoff reset, ms. */
    double backoffResetAfterMs = 10000.0;
    /** Restarts allowed per child before giving up; 0 = unlimited. */
    int maxRestarts = 0;
    /** Where the room worker persists checkpoints ("" = disabled). */
    std::string stateDir;
};

/** Elasticity directives for the root worker and the supervisor. */
struct MembershipConfig
{
    /** Endpoints not yet deployed: the root marks them absent pre-run
     *  (no floor reservation, no broadcast) and the supervisor spawns
     *  no process for them. */
    std::vector<std::uint32_t> absent;
    /** Endpoints the root announces Joining when (re)loading. */
    std::vector<std::uint32_t> join;
    /** Endpoints the root announces Draining when (re)loading. */
    std::vector<std::uint32_t> drain;

    /** True when every list is empty (static deployment). */
    bool empty() const
    {
        return absent.empty() && join.empty() && drain.empty();
    }
};

/** Live scrape-plane tunables (see docs/observability.md). */
struct ObservabilityConfig
{
    /**
     * First HTTP scrape port: worker role N (or host process K)
     * serves /metrics, /healthz, and /tracez on 127.0.0.1:base+N
     * (base+K). 0 disables the endpoints entirely.
     */
    std::uint16_t httpPortBase = 0;
    /** Completed period traces retained for /tracez. */
    std::size_t tracezKeep = 32;
};

struct WorkerPeers
{
    std::map<net::Transport::Endpoint, net::UdpPeer> peers;
    /** Wall-clock control period in milliseconds. */
    double periodMs = 1000.0;
    /** Epoch origin in unix milliseconds (realtime clock). */
    std::uint64_t originMs = 0;
    /**
     * Aggregation levels of the deployment's tree plan (empty = the
     * classic 2-level rack/room layout). Must match the endpoint
     * numbering of core::TreePlan::build on the scenario's topology.
     */
    std::vector<std::uint32_t> aggLevels;
    /**
     * Endpoint -> host process index (endpoints absent from the map
     * belong to process 0). Purely a deployment grouping hint for
     * capmaestro_worker --process=K; the protocol ignores it.
     */
    std::map<net::Transport::Endpoint, std::uint32_t> processOf;
    /** capmaestro_supervisor tunables (defaults when absent). */
    SupervisorConfig supervisor;
    /** Scrape-plane tunables (endpoints off when absent). */
    ObservabilityConfig observability;
    /** Elasticity directives (static deployment when empty). */
    MembershipConfig membership;

    /** Host processes implied by processOf (>= 1). */
    std::uint32_t processCount() const;
    /** Endpoints assigned to host process @p process, ascending. */
    std::vector<net::Transport::Endpoint>
    endpointsOf(std::uint32_t process) const;
};

/** Parse a peer-table document (the format above). */
WorkerPeers loadWorkerPeers(const util::Json &doc);

/** Serialize a peer table back to its document format. */
util::Json workerPeersToJson(const WorkerPeers &peers);

/** Convenience: parse @p path and build the scenario. */
LoadedScenario loadScenarioFile(const std::string &path);

/** Instantiate a ClosedLoopSim from a loaded scenario. */
sim::ClosedLoopSim makeSimulation(LoadedScenario scenario,
                                  std::uint64_t seed = 1);

} // namespace capmaestro::config

#endif // CAPMAESTRO_CONFIG_LOADER_HH
