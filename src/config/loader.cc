#include "config/loader.hh"

#include <map>

#include "device/workload.hh"
#include "topology/analysis.hh"
#include "util/logging.hh"

namespace capmaestro::config {

namespace {

topo::NodeKind
nodeKindFromString(const std::string &kind)
{
    static const std::map<std::string, topo::NodeKind> kKinds{
        {"contractual", topo::NodeKind::Contractual},
        {"ats", topo::NodeKind::Ats},
        {"transformer", topo::NodeKind::Transformer},
        {"ups", topo::NodeKind::Ups},
        {"rpp", topo::NodeKind::Rpp},
        {"cdu", topo::NodeKind::Cdu},
        {"breaker", topo::NodeKind::Breaker},
    };
    const auto it = kKinds.find(kind);
    if (it == kKinds.end())
        util::fatal("config: unknown node kind \"%s\"", kind.c_str());
    return it->second;
}

Watts
ratingOf(const util::Json &node)
{
    const util::Json *rating = node.find("rating");
    if (!rating || (rating->isString()
                    && rating->asString() == "unlimited")) {
        return topo::kUnlimited;
    }
    return rating->asNumber();
}

/** Recursively add @p node (and children) under @p parent. */
void
addNode(topo::PowerTree &tree, topo::NodeId parent,
        const util::Json &node)
{
    const std::string kind = node.at("kind").asString();
    if (kind == "supply") {
        const auto server =
            static_cast<std::int32_t>(node.at("server").asNumber());
        const auto supply = static_cast<std::int32_t>(
            node.numberOr("supply", 0.0));
        const std::string name = node.stringOr(
            "name",
            "s" + std::to_string(server) + "." + std::to_string(supply));
        tree.addSupplyPort(parent, name, {server, supply}, ratingOf(node),
                           node.numberOr("derate", 1.0));
        return;
    }

    const topo::NodeId id = tree.addChild(
        parent, nodeKindFromString(kind),
        node.stringOr("name", kind), ratingOf(node),
        node.numberOr("derate", 1.0));
    if (const util::Json *children = node.find("children")) {
        for (const auto &child : children->asArray())
            addNode(tree, id, child);
    }
}

} // namespace

std::unique_ptr<topo::PowerTree>
loadPowerTree(const util::Json &spec)
{
    const int feed = static_cast<int>(spec.at("feed").asNumber());
    const int phase = static_cast<int>(spec.numberOr("phase", 0.0));
    const std::string name = spec.stringOr(
        "name", "feed" + std::to_string(feed) + ".phase"
                    + std::to_string(phase));
    auto tree = std::make_unique<topo::PowerTree>(feed, phase, name);

    const util::Json &root = spec.at("root");
    const std::string kind = root.at("kind").asString();
    if (kind == "supply")
        util::fatal("config: tree root cannot be a supply port");
    tree->makeRoot(nodeKindFromString(kind),
                   root.stringOr("name", name + ".root"), ratingOf(root),
                   root.numberOr("derate", 1.0));
    if (const util::Json *children = root.find("children")) {
        for (const auto &child : children->asArray())
            addNode(*tree, tree->root(), child);
    }
    return tree;
}

namespace {

util::Json
nodeToJson(const topo::PowerTree &tree, topo::NodeId id)
{
    const auto &n = tree.node(id);
    util::Json::Object obj;
    if (n.kind == topo::NodeKind::SupplyPort) {
        obj.emplace("kind", util::Json(std::string("supply")));
        obj.emplace("name", util::Json(n.name));
        obj.emplace("server",
                    util::Json(static_cast<double>(n.supplyRef->server)));
        obj.emplace("supply",
                    util::Json(static_cast<double>(n.supplyRef->supply)));
    } else {
        obj.emplace("kind",
                    util::Json(std::string(topo::nodeKindName(n.kind))));
        obj.emplace("name", util::Json(n.name));
    }
    if (n.rating == topo::kUnlimited)
        obj.emplace("rating", util::Json(std::string("unlimited")));
    else
        obj.emplace("rating", util::Json(n.rating));
    if (n.derate != 1.0)
        obj.emplace("derate", util::Json(n.derate));
    if (!n.children.empty()) {
        util::Json::Array children;
        children.reserve(n.children.size());
        for (const auto c : n.children)
            children.push_back(nodeToJson(tree, c));
        obj.emplace("children", util::Json(std::move(children)));
    }
    return util::Json(std::move(obj));
}

} // namespace

util::Json
powerTreeToJson(const topo::PowerTree &tree)
{
    util::Json::Object obj;
    obj.emplace("feed", util::Json(static_cast<double>(tree.feed())));
    obj.emplace("phase", util::Json(static_cast<double>(tree.phase())));
    obj.emplace("name", util::Json(tree.name()));
    obj.emplace("root", nodeToJson(tree, tree.root()));
    return util::Json(std::move(obj));
}

namespace {

std::unique_ptr<dev::Workload>
loadWorkload(const util::Json &spec)
{
    const std::string type = spec.stringOr("type", "constant");
    if (type == "constant") {
        return std::make_unique<dev::ConstantWorkload>(
            spec.numberOr("utilization", 0.5));
    }
    if (type == "steps") {
        std::vector<std::pair<Seconds, Fraction>> steps;
        for (const auto &step : spec.at("steps").asArray()) {
            const auto &pair = step.asArray();
            if (pair.size() != 2)
                util::fatal("config: workload step must be [time, u]");
            steps.emplace_back(
                static_cast<Seconds>(pair[0].asNumber()),
                pair[1].asNumber());
        }
        return std::make_unique<dev::StepWorkload>(std::move(steps));
    }
    if (type == "sine") {
        return std::make_unique<dev::SineWorkload>(
            spec.numberOr("mean", 0.5), spec.numberOr("amplitude", 0.2),
            static_cast<Seconds>(spec.numberOr("period", 3600.0)));
    }
    if (type == "trace") {
        const auto period = static_cast<Seconds>(
            spec.numberOr("samplePeriod", 60.0));
        if (const util::Json *file = spec.find("file")) {
            return std::make_unique<dev::TraceWorkload>(
                dev::TraceWorkload::loadTraceFile(file->asString()),
                period);
        }
        std::vector<Fraction> samples;
        for (const auto &v : spec.at("samples").asArray())
            samples.push_back(v.asNumber());
        return std::make_unique<dev::TraceWorkload>(std::move(samples),
                                                    period);
    }
    if (type == "randomwalk") {
        return std::make_unique<dev::RandomWalkWorkload>(
            spec.numberOr("start", 0.5), spec.numberOr("step", 0.02),
            util::Rng(static_cast<std::uint64_t>(
                spec.numberOr("seed", 1.0))));
    }
    util::fatal("config: unknown workload type \"%s\"", type.c_str());
}

sim::ServerSetup
loadServer(const util::Json &spec, std::size_t index)
{
    sim::ServerSetup setup;
    dev::ServerSpec &s = setup.spec;
    s.name = spec.stringOr("name", "server" + std::to_string(index));
    s.idle = spec.numberOr("idle", 160.0);
    s.capMin = spec.numberOr("capMin", 270.0);
    s.capMax = spec.numberOr("capMax", 490.0);
    s.priority = static_cast<Priority>(spec.numberOr("priority", 0.0));
    s.gamma = spec.numberOr("gamma", 2.7);
    s.hotSpareEnabled = spec.boolOr("hotSpare", false);
    s.standbyThreshold = spec.numberOr("standbyThreshold", 0.0);

    if (const util::Json *supplies = spec.find("supplies")) {
        s.supplies.clear();
        for (const auto &sup : supplies->asArray()) {
            dev::SupplySpec ss;
            ss.loadShare = sup.numberOr("share", 0.5);
            ss.efficiency = sup.numberOr("efficiency", 0.94);
            // Optional 80 Plus-style curve (see SupplySpec).
            ss.ratedPower = sup.numberOr("ratedPower", 0.0);
            ss.efficiencyAt20 = sup.numberOr("efficiencyAt20", 0.90);
            ss.efficiencyAt50 = sup.numberOr("efficiencyAt50", 0.94);
            ss.efficiencyAt100 = sup.numberOr("efficiencyAt100", 0.91);
            s.supplies.push_back(ss);
        }
    }

    if (const util::Json *workload = spec.find("workload"))
        setup.workload = loadWorkload(*workload);
    else
        setup.workload = std::make_unique<dev::ConstantWorkload>(0.5);
    return setup;
}

policy::PolicyKind
policyFromString(const std::string &name)
{
    if (name == "global")
        return policy::PolicyKind::GlobalPriority;
    if (name == "local")
        return policy::PolicyKind::LocalPriority;
    if (name == "none" || name == "noPriority")
        return policy::PolicyKind::NoPriority;
    util::fatal("config: unknown policy \"%s\" (use global/local/none)",
                name.c_str());
}

} // namespace

LoadedScenario
loadScenario(const util::Json &doc)
{
    LoadedScenario scenario;

    const int feeds = static_cast<int>(doc.numberOr("feeds", 1.0));
    scenario.system = std::make_unique<topo::PowerSystem>(feeds);
    for (const auto &tree_spec : doc.at("trees").asArray())
        scenario.system->addTree(loadPowerTree(tree_spec));
    scenario.system->validate();

    // Advisory: flag breaker-coordination problems in the declared
    // topology (a downstream breaker rated at or above its parent
    // cannot be guaranteed to trip first).
    for (const auto &tree : scenario.system->trees()) {
        for (const auto &v : topo::checkSelectivity(*tree)) {
            util::warn("config: %s: child breaker %s is rated at %.0f%% "
                       "of its parent %s (selectivity violation)",
                       tree->name().c_str(),
                       tree->node(v.child).name.c_str(), 100.0 * v.ratio,
                       tree->node(v.parent).name.c_str());
        }
    }

    const auto &servers = doc.at("servers").asArray();
    scenario.servers.reserve(servers.size());
    for (std::size_t i = 0; i < servers.size(); ++i)
        scenario.servers.push_back(loadServer(servers[i], i));

    if (const util::Json *service = doc.find("service")) {
        scenario.service.policy =
            policyFromString(service->stringOr("policy", "global"));
        scenario.service.controlPeriod = static_cast<Seconds>(
            service->numberOr("controlPeriodSeconds", 8.0));
        scenario.service.enableSpo = service->boolOr("spo", true);
        scenario.service.spoThreshold =
            service->numberOr("spoThreshold", 1.0);
        scenario.service.spoPasses =
            static_cast<int>(service->numberOr("spoPasses", 2.0));
        scenario.service.adaptiveFeedBalance =
            service->boolOr("adaptiveFeedBalance", false);
        scenario.service.totalPerPhaseBudget =
            service->numberOr("totalPerPhaseBudget", 0.0);
        scenario.service.capping.gain =
            service->numberOr("gain", 1.0);
        scenario.service.emergencyFastPath =
            service->boolOr("emergencyFastPath", false);
    }

    if (const util::Json *transport = doc.find("transport"))
        applyTransportJson(scenario.service, *transport);

    if (const util::Json *workload = doc.find("workload")) {
        if (workload->boolOr("enabled", true))
            scenario.workload = workloadParamsFromJson(*workload);
    }

    scenario.rootBudgets.assign(scenario.system->trees().size(), 0.0);
    if (const util::Json *budgets = doc.find("budgets")) {
        if (const util::Json *per_tree = budgets->find("perTree")) {
            const auto &values = per_tree->asArray();
            if (values.size() != scenario.rootBudgets.size()) {
                util::fatal("config: budgets.perTree has %zu entries for "
                            "%zu trees", values.size(),
                            scenario.rootBudgets.size());
            }
            for (std::size_t t = 0; t < values.size(); ++t)
                scenario.rootBudgets[t] = values[t].asNumber();
        } else if (const util::Json *total =
                       budgets->find("totalPerPhase")) {
            scenario.totalPerPhase = total->asNumber();
            const int live = scenario.system->liveFeeds();
            for (std::size_t t = 0;
                 t < scenario.system->trees().size(); ++t) {
                scenario.rootBudgets[t] =
                    *scenario.totalPerPhase / live;
            }
            if (scenario.service.adaptiveFeedBalance
                && scenario.service.totalPerPhaseBudget == 0.0) {
                scenario.service.totalPerPhaseBudget =
                    *scenario.totalPerPhase;
            }
        } else {
            util::fatal("config: budgets needs perTree or totalPerPhase");
        }
    }

    // Cross-check: every supply referenced by the topology must belong
    // to a declared server/supply.
    for (const auto &tree : scenario.system->trees()) {
        for (const auto &ref : tree->suppliesUnder(tree->root())) {
            const auto sid = static_cast<std::size_t>(ref.server);
            if (sid >= scenario.servers.size()) {
                util::fatal("config: topology references server %d but "
                            "only %zu servers are declared", ref.server,
                            scenario.servers.size());
            }
            const auto sup = static_cast<std::size_t>(ref.supply);
            if (sup >= scenario.servers[sid].spec.supplies.size()) {
                util::fatal("config: topology references supply %d.%d "
                            "but server %d has %zu supplies", ref.server,
                            ref.supply, ref.server,
                            scenario.servers[sid].spec.supplies.size());
            }
        }
    }
    return scenario;
}

void
applyTransportJson(core::ServiceConfig &service, const util::Json &spec)
{
    service.useMessagePlane = spec.boolOr("enabled", true);
    const std::string backend = spec.stringOr("backend", "sim");
    if (backend == "sim") {
        service.transportBackend =
            core::ServiceConfig::TransportBackend::Sim;
    } else if (backend == "udp") {
        service.transportBackend =
            core::ServiceConfig::TransportBackend::Udp;
    } else {
        util::fatal("config: transport.backend '%s' is not 'sim' or "
                    "'udp'", backend.c_str());
    }
    service.transport.dropRate = spec.numberOr("dropRate", 0.0);
    service.transport.dupRate = spec.numberOr("dupRate", 0.0);
    service.transport.latencyMeanMs = spec.numberOr("latencyMs", 0.0);
    service.transport.latencyJitterMs = spec.numberOr("jitterMs", 0.0);
    service.transport.reorderRate = spec.numberOr("reorderRate", 0.0);
    service.transport.reorderExtraMs =
        spec.numberOr("reorderExtraMs", 10.0);
    service.transport.seed = static_cast<std::uint64_t>(
        spec.numberOr("seed",
                      static_cast<double>(service.transport.seed)));
    service.protocol.gatherDeadlineMs =
        spec.numberOr("gatherDeadlineMs", 100.0);
    service.protocol.budgetDeadlineMs =
        spec.numberOr("budgetDeadlineMs", 100.0);
    service.protocol.spoGatherDeadlineMs =
        spec.numberOr("spoGatherDeadlineMs", 100.0);
    service.protocol.spoBudgetDeadlineMs =
        spec.numberOr("spoBudgetDeadlineMs", 100.0);
    service.protocol.retryTimeoutMs =
        spec.numberOr("retryTimeoutMs", 25.0);
    service.protocol.maxAttempts =
        static_cast<int>(spec.numberOr("maxAttempts", 4.0));
    service.protocol.staleAgeCapPeriods =
        static_cast<int>(spec.numberOr("staleAgeCap", 2.0));
    service.protocol.heartbeatFailAfter =
        static_cast<int>(spec.numberOr("heartbeatFailAfter", 3.0));

    if (service.transport.dropRate < 0.0
        || service.transport.dropRate >= 1.0) {
        util::fatal("config: transport.dropRate %.3f outside [0, 1)",
                    service.transport.dropRate);
    }
    if (service.protocol.maxAttempts < 1)
        util::fatal("config: transport.maxAttempts must be >= 1");
}

workload::Params
workloadParamsFromJson(const util::Json &spec)
{
    workload::Params params;
    params.seed = static_cast<std::uint64_t>(
        spec.numberOr("seed", static_cast<double>(params.seed)));
    params.arrivalRate = spec.numberOr("arrivalRate", params.arrivalRate);
    params.diurnalPeriod = static_cast<Seconds>(
        spec.numberOr("diurnalPeriodSeconds",
                      static_cast<double>(params.diurnalPeriod)));
    params.diurnalAmplitude =
        spec.numberOr("diurnalAmplitude", params.diurnalAmplitude);
    if (const util::Json *flash = spec.find("flash")) {
        params.flash.startChance =
            flash->numberOr("startChance", params.flash.startChance);
        params.flash.duration = static_cast<Seconds>(
            flash->numberOr("durationSeconds",
                            static_cast<double>(params.flash.duration)));
        params.flash.multiplier =
            flash->numberOr("multiplier", params.flash.multiplier);
    }
    params.policy = workload::placementPolicyFromString(
        spec.stringOr("placement",
                      workload::placementPolicyName(params.policy)));
    params.priorityMode = workload::priorityModeFromString(
        spec.stringOr("priorityMode",
                      workload::priorityModeName(params.priorityMode)));
    params.queueTimeout = static_cast<Seconds>(
        spec.numberOr("queueTimeoutSeconds",
                      static_cast<double>(params.queueTimeout)));
    params.backgroundUtilization = spec.numberOr(
        "backgroundUtilization", params.backgroundUtilization);
    params.backgroundJitter =
        spec.numberOr("backgroundJitter", params.backgroundJitter);
    params.phaseCount = static_cast<int>(
        spec.numberOr("phaseCount",
                      static_cast<double>(params.phaseCount)));
    if (const util::Json *tenants = spec.find("tenants")) {
        for (const auto &row : tenants->asArray()) {
            workload::TenantSpec tenant;
            tenant.name = row.stringOr("name", tenant.name);
            tenant.priority = static_cast<Priority>(
                row.numberOr("priority",
                             static_cast<double>(tenant.priority)));
            tenant.weight = row.numberOr("weight", tenant.weight);
            tenant.cpuDemand = row.numberOr("cpuDemand", tenant.cpuDemand);
            tenant.meanDuration = static_cast<Seconds>(
                row.numberOr("meanDurationSeconds",
                             static_cast<double>(tenant.meanDuration)));
            tenant.durationSpread =
                row.numberOr("durationSpread", tenant.durationSpread);
            tenant.sloSlowdown =
                row.numberOr("sloSlowdown", tenant.sloSlowdown);
            params.tenants.push_back(std::move(tenant));
        }
    }
    return params;
}

util::Json
workloadParamsToJson(const workload::Params &params)
{
    util::Json::Object obj;
    obj.emplace("enabled", util::Json(true));
    obj.emplace("seed",
                util::Json(static_cast<double>(params.seed)));
    obj.emplace("arrivalRate", util::Json(params.arrivalRate));
    obj.emplace("diurnalPeriodSeconds",
                util::Json(static_cast<double>(params.diurnalPeriod)));
    obj.emplace("diurnalAmplitude", util::Json(params.diurnalAmplitude));
    if (params.flash.startChance > 0.0) {
        util::Json::Object flash;
        flash.emplace("startChance", util::Json(params.flash.startChance));
        flash.emplace("durationSeconds",
                      util::Json(static_cast<double>(
                          params.flash.duration)));
        flash.emplace("multiplier", util::Json(params.flash.multiplier));
        obj.emplace("flash", util::Json(std::move(flash)));
    }
    obj.emplace("placement",
                util::Json(std::string(
                    workload::placementPolicyName(params.policy))));
    obj.emplace("priorityMode",
                util::Json(std::string(
                    workload::priorityModeName(params.priorityMode))));
    obj.emplace("queueTimeoutSeconds",
                util::Json(static_cast<double>(params.queueTimeout)));
    obj.emplace("backgroundUtilization",
                util::Json(params.backgroundUtilization));
    obj.emplace("backgroundJitter", util::Json(params.backgroundJitter));
    if (params.phaseCount > 0) {
        obj.emplace("phaseCount",
                    util::Json(static_cast<double>(params.phaseCount)));
    }
    util::Json::Array tenants;
    for (const auto &tenant : params.tenants) {
        util::Json::Object row;
        row.emplace("name", util::Json(tenant.name));
        row.emplace("priority",
                    util::Json(static_cast<double>(tenant.priority)));
        row.emplace("weight", util::Json(tenant.weight));
        row.emplace("cpuDemand", util::Json(tenant.cpuDemand));
        row.emplace("meanDurationSeconds",
                    util::Json(static_cast<double>(tenant.meanDuration)));
        row.emplace("durationSpread", util::Json(tenant.durationSpread));
        row.emplace("sloSlowdown", util::Json(tenant.sloSlowdown));
        tenants.push_back(util::Json(std::move(row)));
    }
    if (!tenants.empty())
        obj.emplace("tenants", util::Json(std::move(tenants)));
    return util::Json(std::move(obj));
}

std::uint32_t
WorkerPeers::processCount() const
{
    std::uint32_t count = 1;
    for (const auto &[ep, process] : processOf)
        count = std::max(count, process + 1);
    return count;
}

std::vector<net::Transport::Endpoint>
WorkerPeers::endpointsOf(std::uint32_t process) const
{
    std::vector<net::Transport::Endpoint> out;
    for (const auto &[ep, peer] : peers) {
        const auto assigned = processOf.find(ep);
        const std::uint32_t mine =
            assigned == processOf.end() ? 0 : assigned->second;
        if (mine == process)
            out.push_back(ep);
    }
    return out;
}

WorkerPeers
loadWorkerPeers(const util::Json &doc)
{
    WorkerPeers out;
    out.periodMs = doc.numberOr("periodMs", 1000.0);
    if (out.periodMs <= 0.0)
        util::fatal("peers: periodMs must be positive");
    out.originMs =
        static_cast<std::uint64_t>(doc.numberOr("originMs", 0.0));
    const util::Json *peers = doc.find("peers");
    if (peers == nullptr || !peers->isArray() ||
        peers->asArray().empty()) {
        util::fatal("peers: a non-empty 'peers' array is required");
    }
    for (const util::Json &row : peers->asArray()) {
        const auto ep = static_cast<net::Transport::Endpoint>(
            row.at("endpoint").asNumber());
        if (out.peers.count(ep))
            util::fatal("peers: endpoint %u listed twice", ep);
        net::UdpPeer peer;
        peer.host = row.stringOr("host", "127.0.0.1");
        const double port = row.at("port").asNumber();
        if (port < 1.0 || port > 65535.0)
            util::fatal("peers: endpoint %u port %.0f out of range", ep,
                        port);
        peer.port = static_cast<std::uint16_t>(port);
        out.peers[ep] = peer;
        const double process = row.numberOr("process", 0.0);
        if (process < 0.0)
            util::fatal("peers: endpoint %u process must be >= 0", ep);
        if (process > 0.0)
            out.processOf[ep] = static_cast<std::uint32_t>(process);
    }
    if (const util::Json *levels = doc.find("aggLevels")) {
        if (!levels->isArray())
            util::fatal("peers: aggLevels must be an array");
        for (const util::Json &level : levels->asArray()) {
            const double v = level.asNumber();
            if (v < 1.0)
                util::fatal("peers: aggLevels entries must be >= 1");
            out.aggLevels.push_back(static_cast<std::uint32_t>(v));
        }
    }
    // The table must be dense 0..n-1 so the room endpoint (n-1) and the
    // rack count are unambiguous.
    for (std::size_t ep = 0; ep < out.peers.size(); ++ep) {
        if (!out.peers.count(static_cast<net::Transport::Endpoint>(ep)))
            util::fatal("peers: endpoints must be dense 0..n-1; %zu "
                        "missing", ep);
    }
    if (const util::Json *sup = doc.find("supervisor")) {
        out.supervisor.backoffInitialMs =
            sup->numberOr("backoffInitialMs", 250.0);
        out.supervisor.backoffMaxMs = sup->numberOr("backoffMaxMs", 5000.0);
        out.supervisor.backoffResetAfterMs =
            sup->numberOr("backoffResetAfterMs", 10000.0);
        out.supervisor.maxRestarts =
            static_cast<int>(sup->numberOr("maxRestarts", 0.0));
        out.supervisor.stateDir = sup->stringOr("stateDir", "");
        if (out.supervisor.backoffInitialMs <= 0.0
            || out.supervisor.backoffMaxMs
                   < out.supervisor.backoffInitialMs) {
            util::fatal("peers: supervisor backoff must satisfy "
                        "0 < backoffInitialMs <= backoffMaxMs");
        }
        if (out.supervisor.maxRestarts < 0)
            util::fatal("peers: supervisor.maxRestarts must be >= 0");
    }
    if (const util::Json *obs = doc.find("observability")) {
        const double base = obs->numberOr("httpPortBase", 0.0);
        if (base < 0.0 || base > 65535.0)
            util::fatal("peers: observability.httpPortBase %.0f out "
                        "of range", base);
        out.observability.httpPortBase =
            static_cast<std::uint16_t>(base);
        const double keep = obs->numberOr("tracezKeep", 32.0);
        if (keep < 1.0)
            util::fatal("peers: observability.tracezKeep must be >= 1");
        out.observability.tracezKeep = static_cast<std::size_t>(keep);
    }
    if (const util::Json *member = doc.find("membership")) {
        const auto endpoint_list =
            [&](const char *key) -> std::vector<std::uint32_t> {
            std::vector<std::uint32_t> list;
            const util::Json *arr = member->find(key);
            if (arr == nullptr)
                return list;
            if (!arr->isArray())
                util::fatal("peers: membership.%s must be an array",
                            key);
            for (const util::Json &entry : arr->asArray()) {
                const double v = entry.asNumber();
                if (v < 0.0
                    || v >= static_cast<double>(out.peers.size())) {
                    util::fatal("peers: membership.%s endpoint %.0f "
                                "outside the peer table", key, v);
                }
                list.push_back(static_cast<std::uint32_t>(v));
            }
            return list;
        };
        out.membership.absent = endpoint_list("absent");
        out.membership.join = endpoint_list("join");
        out.membership.drain = endpoint_list("drain");
    }
    return out;
}

util::Json
workerPeersToJson(const WorkerPeers &peers)
{
    util::Json::Array rows;
    for (const auto &[ep, peer] : peers.peers) {
        util::Json::Object row;
        row["endpoint"] = util::Json(static_cast<double>(ep));
        row["host"] = util::Json(peer.host);
        row["port"] = util::Json(static_cast<double>(peer.port));
        const auto process = peers.processOf.find(ep);
        if (process != peers.processOf.end() && process->second > 0) {
            row["process"] =
                util::Json(static_cast<double>(process->second));
        }
        rows.emplace_back(std::move(row));
    }
    util::Json::Object doc;
    doc["periodMs"] = util::Json(peers.periodMs);
    doc["originMs"] = util::Json(static_cast<double>(peers.originMs));
    if (!peers.aggLevels.empty()) {
        util::Json::Array levels;
        for (const std::uint32_t level : peers.aggLevels)
            levels.emplace_back(util::Json(static_cast<double>(level)));
        doc["aggLevels"] = util::Json(std::move(levels));
    }
    doc["peers"] = util::Json(std::move(rows));
    util::Json::Object sup;
    sup["backoffInitialMs"] = util::Json(peers.supervisor.backoffInitialMs);
    sup["backoffMaxMs"] = util::Json(peers.supervisor.backoffMaxMs);
    sup["backoffResetAfterMs"] =
        util::Json(peers.supervisor.backoffResetAfterMs);
    sup["maxRestarts"] =
        util::Json(static_cast<double>(peers.supervisor.maxRestarts));
    if (!peers.supervisor.stateDir.empty())
        sup["stateDir"] = util::Json(peers.supervisor.stateDir);
    doc["supervisor"] = util::Json(std::move(sup));
    if (peers.observability.httpPortBase != 0) {
        util::Json::Object obs;
        obs["httpPortBase"] = util::Json(
            static_cast<double>(peers.observability.httpPortBase));
        obs["tracezKeep"] = util::Json(
            static_cast<double>(peers.observability.tracezKeep));
        doc["observability"] = util::Json(std::move(obs));
    }
    if (!peers.membership.empty()) {
        const auto endpoint_array =
            [](const std::vector<std::uint32_t> &list) {
            util::Json::Array arr;
            for (const std::uint32_t ep : list)
                arr.emplace_back(util::Json(static_cast<double>(ep)));
            return arr;
        };
        util::Json::Object member;
        if (!peers.membership.absent.empty()) {
            member["absent"] = util::Json(
                endpoint_array(peers.membership.absent));
        }
        if (!peers.membership.join.empty()) {
            member["join"] = util::Json(
                endpoint_array(peers.membership.join));
        }
        if (!peers.membership.drain.empty()) {
            member["drain"] = util::Json(
                endpoint_array(peers.membership.drain));
        }
        doc["membership"] = util::Json(std::move(member));
    }
    return util::Json(std::move(doc));
}

LoadedScenario
loadScenarioFile(const std::string &path)
{
    return loadScenario(util::parseJsonFile(path));
}

sim::ClosedLoopSim
makeSimulation(LoadedScenario scenario, std::uint64_t seed)
{
    const std::size_t server_count = scenario.servers.size();
    sim::ClosedLoopSim simulation(std::move(scenario.system),
                                  std::move(scenario.servers),
                                  scenario.service, seed);
    simulation.setRootBudgets(scenario.rootBudgets);

    // A declared supply with no outlet in the topology is physically
    // unconnected: mark it failed so the model never draws through it
    // (e.g., the single-corded servers of the Figure 7a testbed).
    for (std::size_t i = 0; i < server_count; ++i) {
        auto &server = simulation.server(i);
        const auto ports = simulation.system().livePortsOf(
            static_cast<std::int32_t>(i));
        for (std::size_t s = 0; s < server.supplyCount(); ++s) {
            if (!ports.count(static_cast<std::int32_t>(s)))
                server.setSupplyState(s, dev::SupplyState::Failed);
        }
    }

    if (scenario.workload) {
        simulation.attachTraffic(
            std::make_unique<workload::WorkloadEngine>(*scenario.workload));
    }
    return simulation;
}

} // namespace capmaestro::config
