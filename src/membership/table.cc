#include "membership/table.hh"

namespace capmaestro::membership {

const char *unitStateName(UnitState state)
{
    switch (state) {
    case UnitState::Joining: return "joining";
    case UnitState::Live: return "live";
    case UnitState::Draining: return "draining";
    case UnitState::Left: return "left";
    }
    return "?";
}

MembershipTable MembershipTable::allLive(std::size_t count)
{
    MembershipTable table;
    for (std::size_t ep = 0; ep < count; ++ep)
        table.entries_[static_cast<std::uint16_t>(ep)] = UnitEntry{};
    return table;
}

UnitState MembershipTable::state(std::uint16_t endpoint) const
{
    const auto it = entries_.find(endpoint);
    return it == entries_.end() ? UnitState::Left : it->second.state;
}

std::uint32_t MembershipTable::sinceGeneration(std::uint16_t endpoint) const
{
    const auto it = entries_.find(endpoint);
    return it == entries_.end() ? 0 : it->second.sinceGeneration;
}

std::size_t MembershipTable::countOf(UnitState state) const
{
    std::size_t n = 0;
    for (const auto &[ep, entry] : entries_)
        if (entry.state == state)
            ++n;
    return n;
}

bool MembershipTable::transitionsPending() const
{
    for (const auto &[ep, entry] : entries_)
        if (entry.state == UnitState::Joining ||
            entry.state == UnitState::Draining)
            return true;
    return false;
}

bool MembershipTable::beginJoin(std::uint16_t endpoint)
{
    const UnitState current = state(endpoint);
    if (current != UnitState::Left)
        return false; // already a member (possibly mid-transition)
    ++generation_;
    entries_[endpoint] = UnitEntry{UnitState::Joining, generation_};
    return true;
}

bool MembershipTable::beginDrain(std::uint16_t endpoint)
{
    if (state(endpoint) != UnitState::Live)
        return false;
    ++generation_;
    entries_[endpoint] = UnitEntry{UnitState::Draining, generation_};
    return true;
}

bool MembershipTable::commit(std::uint16_t endpoint)
{
    const auto it = entries_.find(endpoint);
    if (it == entries_.end())
        return false;
    UnitState next;
    switch (it->second.state) {
    case UnitState::Joining: next = UnitState::Live; break;
    case UnitState::Draining: next = UnitState::Left; break;
    default: return false;
    }
    ++generation_;
    it->second = UnitEntry{next, generation_};
    return true;
}

void MembershipTable::markAbsent(std::uint16_t endpoint)
{
    entries_[endpoint] = UnitEntry{UnitState::Left, 0};
}

bool MembershipTable::applyDelta(const net::MembershipDeltaMsg &msg)
{
    if (msg.generation < generation_)
        return false;
    generation_ = msg.generation;
    entries_.clear();
    for (const auto &row : msg.entries)
        entries_[row.endpoint] =
            UnitEntry{static_cast<UnitState>(row.state), row.sinceGeneration};
    return true;
}

net::MembershipDeltaMsg MembershipTable::toDelta() const
{
    net::MembershipDeltaMsg msg;
    msg.generation = generation_;
    msg.entries.reserve(entries_.size());
    for (const auto &[ep, entry] : entries_) // std::map: ascending endpoints
        msg.entries.push_back(net::MembershipEntry{
            ep, static_cast<net::WireUnitState>(entry.state),
            entry.sinceGeneration});
    return msg;
}

} // namespace capmaestro::membership
