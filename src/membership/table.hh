/**
 * @file
 * Versioned fleet membership: topology as a runtime-mutable, checked
 * contract instead of a boot-time constant.
 *
 * The paper's §5 scalability argument assumes a fixed control tree;
 * production fleets are never fixed. This module owns the one piece of
 * state that makes elasticity safe: a membership table mapping every
 * endpoint of the shared peer table to a lifecycle state, stamped with
 * a generation number that rises by one per committed transition:
 *
 *       joining ──(shadowed + acked)──> live
 *       live ──(drain requested)──> draining ──(acked)──> left
 *
 * The root owns the table and is the only writer. Every other unit
 * holds a replica, updated by MembershipDelta frames (full-table
 * snapshots — applying any delta at or ahead of the local generation
 * yields a consistent view, so one lost broadcast is repaired by the
 * next) and acknowledged by MembershipAck frames carrying the adopted
 * generation. The root's ack book is the commit gate of the two-phase
 * adopt protocol:
 *
 *   join:  the unit runs shadow periods — metrics flow up, its grants
 *          ride the Pcap_min clamp, and the root reserves its nominal
 *          floor out of the tree budget exactly as it does for a dead
 *          rack. Only after the unit acked the Joining announcement
 *          and a minimum shadow window has passed does the root commit
 *          the generation bump that makes it Live. At no period is the
 *          unit double-counted (it never receives a real grant while
 *          the floor is reserved) or uncounted (the floor reservation
 *          covers its unilateral clamp).
 *   drain: the reverse handshake. A Draining unit keeps running but is
 *          excluded from allocation (floor reserved, clamped locally);
 *          once it acked the drain the root commits Left. The nominal
 *          floor stays reserved until the unit acks the *Left*
 *          generation — the ack is the unit's promise that it applied
 *          zero watts from that period on — so a lost broadcast can
 *          never leave the unit drawing a floor the root has already
 *          re-granted.
 *
 * Generation skew: data-plane frames (Metrics/Budget/...) carry no
 * generation, so a unit lagging one broadcast interoperates untouched;
 * the root tolerates acks one generation behind (they prove liveness
 * of the replica plane) but commits only on current-generation acks.
 */

#ifndef CAPMAESTRO_MEMBERSHIP_TABLE_HH
#define CAPMAESTRO_MEMBERSHIP_TABLE_HH

#include <cstdint>
#include <map>

#include "net/wire.hh"

namespace capmaestro::membership {

/** Lifecycle state of one unit (worker endpoint) in the deployment. */
enum class UnitState : std::uint8_t
{
    /** Announced but not yet committed: shadow periods (metrics up,
     *  grants clamped to the Pcap_min floor, floor reserved). */
    Joining = 0,
    /** Full participant of the control plane. */
    Live = 1,
    /** Leaving: still running, excluded from allocation, clamped. */
    Draining = 2,
    /** Gone. The floor reservation is released once the unit acked
     *  this state (or never existed in the deployment's history). */
    Left = 3,
};

/** Lower-case state name ("joining", "live", "draining", "left"). */
const char *unitStateName(UnitState state);

/** One unit's membership row. */
struct UnitEntry
{
    UnitState state = UnitState::Live;
    /** Generation at which the unit entered this state. */
    std::uint32_t sinceGeneration = 1;
};

/**
 * The versioned membership table (see file comment). Held by every
 * role: the root mutates and broadcasts, replicas apply snapshots.
 * A table in which every unit is Live at generation 1 is the static
 * deployment — the state every pre-elasticity run is in, with the
 * machinery idle (no frames, no behavioral difference).
 */
class MembershipTable
{
  public:
    /** Static deployment: endpoints [0, count) Live at generation 1. */
    static MembershipTable allLive(std::size_t count);

    /** Table generation (1 for the static table). */
    std::uint32_t generation() const { return generation_; }

    /** State of @p endpoint (Left when the endpoint has no row — an
     *  endpoint outside the table was never a member). */
    UnitState state(std::uint16_t endpoint) const;

    /** Generation at which @p endpoint entered its current state. */
    std::uint32_t sinceGeneration(std::uint16_t endpoint) const;

    /** True when @p endpoint is a full participant. */
    bool isLive(std::uint16_t endpoint) const
    {
        return state(endpoint) == UnitState::Live;
    }

    /** Units currently in @p state. */
    std::size_t countOf(UnitState state) const;

    /** True when any unit is Joining or Draining (a two-phase adopt
     *  is in flight and the root must keep broadcasting). */
    bool transitionsPending() const;

    /** The row map (endpoint -> entry), for renderers and tests. */
    const std::map<std::uint16_t, UnitEntry> &entries() const
    {
        return entries_;
    }

    // ---- root-side mutations. Each bumps the generation so every
    // broadcast snapshot is distinguishable from its predecessor.

    /**
     * Announce @p endpoint as Joining (phase one of the adopt). A unit
     * already Live is left untouched (idempotent re-announce returns
     * false); a Left or unknown unit gets a fresh Joining row.
     * Returns true when the table changed (generation bumped).
     */
    bool beginJoin(std::uint16_t endpoint);

    /** Announce @p endpoint as Draining (phase one of the drain).
     *  Only a Live unit can drain; returns true when it did. */
    bool beginDrain(std::uint16_t endpoint);

    /** Commit @p endpoint's pending transition (phase two): Joining ->
     *  Live, Draining -> Left. Returns true when a transition was
     *  committed (generation bumped). */
    bool commit(std::uint16_t endpoint);

    /**
     * Pre-deployment configuration: mark @p endpoint as not (yet)
     * deployed — Left since generation 0, no generation bump. Distinct
     * from a drained unit (sinceGeneration > 0): a never-deployed slot
     * reserves no floor and receives no broadcast. beginJoin() brings
     * the slot in later.
     */
    void markAbsent(std::uint16_t endpoint);

    // ---- replica-side application.

    /**
     * Adopt a broadcast snapshot. Full-snapshot semantics: accepted
     * whenever @p msg.generation >= the local generation (a forward
     * jump of any size is consistent); an older snapshot is stale and
     * rejected. Returns true when adopted (including the equal-
     * generation re-broadcast, which is idempotent).
     */
    bool applyDelta(const net::MembershipDeltaMsg &msg);

    /** Render the table as a broadcast snapshot. */
    net::MembershipDeltaMsg toDelta() const;

  private:
    std::uint32_t generation_ = 1;
    std::map<std::uint16_t, UnitEntry> entries_;
};

} // namespace capmaestro::membership

#endif // CAPMAESTRO_MEMBERSHIP_TABLE_HH
