/**
 * @file
 * Phase-balancing placement advisor.
 *
 * Paper §4.1 replicates the control tree per phase "since loading on
 * each phase is not always uniform" — but operators still choose which
 * phase each server plugs into. A skewed assignment wastes capacity:
 * the heaviest phase caps first while the others idle. This advisor
 * computes balanced phase assignments (longest-processing-time
 * greedy, a classic 4/3-approximation for makespan) and quantifies the
 * imbalance of any assignment, so capacity planners can see how much
 * headroom a re-plug would recover.
 */

#ifndef CAPMAESTRO_SIM_PLACEMENT_HH
#define CAPMAESTRO_SIM_PLACEMENT_HH

#include <vector>

#include "util/units.hh"

namespace capmaestro::sim {

/**
 * Assign each server (with expected demand) to one of @p phases,
 * balancing per-phase total demand with the LPT greedy rule.
 *
 * @return assignment[i] = phase of server i.
 */
std::vector<int> balancePhases(const std::vector<Watts> &demands,
                               int phases);

/** Round-robin assignment (the naive baseline). */
std::vector<int> roundRobinPhases(std::size_t servers, int phases);

/** Per-phase total demand for an assignment. */
std::vector<Watts> phaseLoads(const std::vector<Watts> &demands,
                              const std::vector<int> &assignment,
                              int phases);

/**
 * Imbalance metric: max phase load / mean phase load - 1.
 * 0 means perfectly balanced.
 */
double phaseImbalance(const std::vector<Watts> &demands,
                      const std::vector<int> &assignment, int phases);

} // namespace capmaestro::sim

#endif // CAPMAESTRO_SIM_PLACEMENT_HH
