/**
 * @file
 * Closed-loop testbed simulator for the real-system experiments
 * (paper §6.1-6.3, Figures 5-7).
 *
 * The simulator owns the physical plant (server models, node managers,
 * sensors, workloads) and a CapMaestroService control plane, and advances
 * them on the paper's cadences: 1 Hz sensing/actuation, 8 s control
 * periods. Budgets come either from the full allocation stack or — for
 * the per-supply enforcement experiment of Figure 5 — from manually
 * scheduled per-supply budgets.
 *
 * Every tick records time series (per-server power, throughput, budgets;
 * per-breaker load) and advances UL 489 trip integrators on every rated
 * node, so experiments can assert that no breaker ever trips.
 */

#ifndef CAPMAESTRO_SIM_CLOSED_LOOP_HH
#define CAPMAESTRO_SIM_CLOSED_LOOP_HH

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/events.hh"
#include "core/service.hh"
#include "device/node_manager.hh"
#include "device/sensor.hh"
#include "device/server.hh"
#include "device/workload.hh"
#include "stats/timeseries.hh"
#include "topology/breaker.hh"
#include "topology/power_system.hh"

namespace capmaestro::sim {

/** One server of the testbed: spec plus its workload. */
struct ServerSetup
{
    dev::ServerSpec spec;
    std::unique_ptr<dev::Workload> workload;
};

class ClosedLoopSim;

/**
 * Hook for a job-level traffic layer driving the simulation (see
 * src/workload). The simulator calls the three hooks on its fixed
 * cadence; a driver places jobs, rewrites per-server utilization, and
 * (when it manages priorities) refreshes server priorities right before
 * the control plane reads them. No driver attached means the historical
 * behavior, bit for bit: per-server dev::Workload traces drive demand
 * and static spec priorities stand.
 */
class TrafficDriver
{
  public:
    virtual ~TrafficDriver() = default;

    /**
     * Called once per simulated second before sensing. @p utilization
     * arrives preloaded with each server's dev::Workload level for
     * second @p t; the driver may overwrite any entry and the result
     * is applied to the server models.
     */
    virtual void beginTick(ClosedLoopSim &sim, Seconds t,
                           std::vector<Fraction> &utilization) = 0;

    /**
     * Called at every control-period boundary (scheduled and
     * emergency), before the control plane allocates — the moment to
     * push job-derived server priorities so the allocator sees them.
     */
    virtual void controlPeriodBoundary(ClosedLoopSim &sim, Seconds t) = 0;

    /** Called after actuation each second (job progress accrual). */
    virtual void endTick(ClosedLoopSim &sim, Seconds t) = 0;
};

/** Closed-loop simulation of a small testbed. */
class ClosedLoopSim
{
  public:
    /**
     * @param system   power system (ownership transferred)
     * @param servers  server specs + workloads; ids follow vector order
     * @param config   control-plane configuration
     * @param seed     sensor-noise seed
     * @param sensors  sensor noise configuration
     */
    ClosedLoopSim(std::unique_ptr<topo::PowerSystem> system,
                  std::vector<ServerSetup> servers,
                  core::ServiceConfig config = {},
                  std::uint64_t seed = 1,
                  dev::SensorConfig sensors = {});

    /**
     * Manual-budget mode: skip the allocator and apply fixed per-supply
     * budgets each control period (Figure 5's experiment).
     */
    void setManualMode(bool manual) { manualMode_ = manual; }

    /** Set the manual per-supply budgets for one server. */
    void setManualBudgets(std::size_t server_id,
                          std::vector<Watts> budgets);

    /** Set root budgets on the service (allocator mode). */
    void setRootBudgets(std::vector<Watts> budgets);

    /** Schedule a callback at simulated time @p t (>= now). */
    void at(Seconds t, std::function<void()> event);

    /** Schedule a feed failure; root budgets are re-derived from
     *  @p total_per_phase at that moment. */
    void failFeedAt(Seconds t, int feed, Watts total_per_phase);

    /** Schedule a single power-supply failure on one server. */
    void failSupplyAt(Seconds t, std::size_t server_id,
                      std::size_t supply);

    /**
     * Schedule a runtime priority change for one server (the §7
     * scheduler-integration hook): takes effect at the next control
     * period after @p t.
     */
    void setPriorityAt(Seconds t, std::size_t server_id,
                       Priority priority);

    /**
     * Schedule a utility-side disturbance on @p feed lasting
     * @p duration seconds. The feed's UPS bank bridges outages up to
     * @p ups_holdup seconds (the ATS transfer window of §2.1):
     * disturbances within the holdup never reach the servers; longer
     * ones turn into a real feed failure after the holdup expires and
     * the feed (plus its supplies) recovers when the disturbance ends.
     * Budgets are re-derived from @p total_per_phase at each change.
     */
    void utilityBlipAt(Seconds t, int feed, Seconds duration,
                       Seconds ups_holdup, Watts total_per_phase);

    /** Advance the simulation by @p duration seconds. */
    void run(Seconds duration);

    /** Current simulated time. */
    Seconds now() const { return now_; }

    /** Recorded time series. */
    const stats::TimeSeriesRecorder &recorder() const { return recorder_; }

    /** Physical server model access. */
    dev::ServerModel &server(std::size_t id);

    /** Control-plane access. */
    core::CapMaestroService &service() { return *service_; }

    /** The power system. */
    topo::PowerSystem &system() { return *system_; }

    /** True when any breaker tripped during the run. */
    bool anyBreakerTripped() const { return anyTrip_; }

    /** Structured event log (failures, overloads, SPO, infeasibility). */
    const core::EventLog &eventLog() const { return events_log_; }

    /**
     * Enable telemetry on the whole control plane (see
     * CapMaestroService::enableTelemetry). The simulator additionally
     * stamps each period trace with the simulated time of its control
     * period.
     */
    void enableTelemetry(telemetry::Registry *registry,
                         telemetry::PeriodTracer *tracer);

    /**
     * Attach a traffic layer (ownership transferred; nullptr detaches).
     * Attach before run() — the driver's hooks fire from the next tick.
     */
    void attachTraffic(std::unique_ptr<TrafficDriver> driver);

    /** The attached traffic layer, nullptr when none. */
    TrafficDriver *traffic() const { return traffic_.get(); }

    /** Number of servers in the plant. */
    std::size_t serverCount() const { return plants_.size(); }

    /** Series name for a per-server signal, e.g. "S0.throughput". */
    static std::string serverSeries(std::size_t id, const char *what);

    /** Series name for a supply. */
    static std::string supplySeries(std::size_t id, std::size_t supply,
                                    const char *what);

  private:
    struct Plant
    {
        std::unique_ptr<dev::ServerModel> server;
        std::unique_ptr<dev::NodeManager> nm;
        std::unique_ptr<dev::SensorEmulator> sensors;
        std::unique_ptr<dev::Workload> workload;
    };

    /** Trip integrators for every rated interior node, per tree. */
    struct BreakerWatch
    {
        std::size_t tree;
        topo::NodeId node;
        topo::TripIntegrator integrator;
        bool overloaded = false;
    };

    std::unique_ptr<topo::PowerSystem> system_;
    std::vector<Plant> plants_;
    std::unique_ptr<core::CapMaestroService> service_;
    stats::TimeSeriesRecorder recorder_;
    std::multimap<Seconds, std::function<void()>> events_;
    core::EventLog events_log_;
    std::vector<BreakerWatch> breakers_;
    std::map<std::size_t, std::vector<Watts>> manualBudgets_;
    bool manualMode_ = false;
    Seconds now_ = 0;
    Seconds lastControlPeriod_ = 0;
    bool anyTrip_ = false;
    telemetry::PeriodTracer *tracer_ = nullptr;
    std::unique_ptr<TrafficDriver> traffic_;
    /** Scratch utilization vector for the traffic-driver path. */
    std::vector<Fraction> trafficUtil_;

    void tick();
    void controlPeriodTick();
    void recordState();
    Watts nodeLoad(std::size_t tree, topo::NodeId node) const;
};

} // namespace capmaestro::sim

#endif // CAPMAESTRO_SIM_CLOSED_LOOP_HH
