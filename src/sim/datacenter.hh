/**
 * @file
 * Builder for the paper's simulated production data center (Table 4):
 * two three-phase feeds, 2 transformers per feed, 9 RPPs per transformer,
 * 9 CDUs per RPP (162 racks; one CDU per feed per rack), and a
 * configurable number of servers per rack spread across the phases.
 *
 * All Table 4 ratings are per-phase values; breakers and transformers are
 * loaded to 80 % (NEC derating) and the contractual budget to 95 %
 * (§6.4's error margin).
 *
 * Phases are electrically independent and statistically identical, so
 * capacity studies may simulate a single phase (params.phases = 1) and
 * scale counts by 3; set phases = 3 for the full center.
 */

#ifndef CAPMAESTRO_SIM_DATACENTER_HH
#define CAPMAESTRO_SIM_DATACENTER_HH

#include <memory>
#include <vector>

#include "topology/power_system.hh"
#include "util/random.hh"
#include "util/units.hh"

namespace capmaestro::sim {

/** Table 4 parameters (per-phase ratings). */
struct DataCenterParams
{
    int feeds = 2;
    /** Phases to instantiate (3 physical; 1 suffices by symmetry). */
    int phases = 1;
    /** Physical phases (for whole-center server counts). */
    int physicalPhases = 3;
    int transformersPerFeed = 2;
    int rppsPerTransformer = 9;
    int cdusPerRpp = 9;
    /** Servers per rack on each phase (paper: rack totals 6..45). */
    int serversPerRackPerPhase = 13;

    Watts contractualPerPhase = 700e3;
    /** Fraction of the contractual budget used (5 % error margin). */
    double contractualMargin = 0.95;
    Watts transformerRating = 420e3;
    Watts rppRating = 52e3;
    Watts cduRating = 6.9e3;
    /** NEC continuous-load derating for breakers and transformers. */
    double derate = 0.8;

    /** Server population (paper Table 4). */
    Watts serverIdle = 160.0;
    Watts serverCapMin = 270.0;
    Watts serverCapMax = 490.0;
    /** Fraction of servers designated high priority (§6.4: 30 %). */
    double highPriorityFraction = 0.3;
    /**
     * Intrinsic supply load-split mismatch: each server's feed-0 share is
     * drawn from 0.5 +/- mismatch (§3.1 reports up to 15 %).
     */
    double supplyMismatch = 0.0;

    /** Racks per feed (= CDUs per feed). */
    int racks() const
    {
        return transformersPerFeed * rppsPerTransformer * cdusPerRpp;
    }

    /** Usable per-phase budget after the margin. */
    Watts usableBudgetPerPhase() const
    {
        return contractualPerPhase * contractualMargin;
    }

    /** Whole-center server count this configuration represents. */
    std::size_t totalServersFullCenter() const
    {
        return static_cast<std::size_t>(racks())
               * static_cast<std::size_t>(physicalPhases)
               * static_cast<std::size_t>(serversPerRackPerPhase);
    }
};

/** Static placement of one simulated server. */
struct ServerPlacement
{
    int rack = 0;
    int phase = 0;
    int slot = 0;
};

/** A built data center: topology plus server placement. */
struct DataCenter
{
    DataCenterParams params;
    std::unique_ptr<topo::PowerSystem> system;
    std::vector<ServerPlacement> servers;

    /** Tree index for (feed, phase). */
    std::size_t
    treeIndex(int feed, int phase) const
    {
        return static_cast<std::size_t>(feed)
               * static_cast<std::size_t>(params.phases)
               + static_cast<std::size_t>(phase);
    }
};

/**
 * Build the Table 4 power system. Server ids are assigned densely:
 * id = (rack * phases + phase) * serversPerRackPerPhase + slot, and each
 * server has supply 0 on feed 0 and supply 1 on feed 1 (same phase).
 */
DataCenter buildDataCenter(const DataCenterParams &params);

} // namespace capmaestro::sim

#endif // CAPMAESTRO_SIM_DATACENTER_HH
