#include "sim/capacity.hh"

#include <algorithm>

#include "control/allocator.hh"
#include "device/server.hh"
#include "sim/utilization.hh"
#include "stats/accumulator.hh"
#include "stats/quantile.hh"
#include "util/logging.hh"

namespace capmaestro::sim {

CapacityPoint
evaluateCapacity(const CapacityConfig &config,
                 int servers_per_rack_per_phase)
{
    DataCenterParams params = config.dc;
    params.serversPerRackPerPhase = servers_per_rack_per_phase;

    DataCenter dc = buildDataCenter(params);
    if (config.worstCase)
        dc.system->failFeed(1);

    ctrl::FleetAllocator allocator(*dc.system,
                                   policy::treePolicy(config.policy));

    // Root budgets: the per-phase contractual budget splits over live
    // feeds; a failed feed's share moves to the survivor (§2.1).
    const int live_feeds = dc.system->liveFeeds();
    std::vector<Watts> root_budgets(dc.system->trees().size(), 0.0);
    for (std::size_t t = 0; t < dc.system->trees().size(); ++t) {
        const auto &tree = dc.system->tree(t);
        root_budgets[t] = dc.system->feedFailed(tree.feed())
                              ? 0.0
                              : params.usableBudgetPerPhase() / live_feeds;
    }

    util::Rng rng(config.seed
                  + static_cast<std::uint64_t>(
                      servers_per_rack_per_phase) * 7919);

    CapacityPoint point;
    point.serversPerRackPerPhase = servers_per_rack_per_phase;
    point.totalServers = params.totalServersFullCenter();

    // Priority mix: explicit multi-level fractions, or the two-level
    // default derived from the data-center parameters.
    std::vector<double> fractions = config.priorityFractions;
    if (fractions.empty()) {
        fractions = {1.0 - params.highPriorityFraction,
                     params.highPriorityFraction};
    }
    auto sample_priority = [&fractions](util::Rng &r) -> Priority {
        double roll = r.uniform();
        for (std::size_t level = 0; level < fractions.size(); ++level) {
            if (roll < fractions[level])
                return static_cast<Priority>(level);
            roll -= fractions[level];
        }
        return static_cast<Priority>(fractions.size() - 1);
    };

    stats::Accumulator ratio_all, stranded;
    stats::P2Quantile ratio_p99(0.99);
    std::vector<stats::Accumulator> ratio_by_priority(fractions.size());
    std::size_t feasible_trials = 0;

    std::vector<ctrl::ServerAllocInput> fleet(dc.servers.size());
    for (int trial = 0; trial < config.trials; ++trial) {
        const Fraction fleet_avg =
            config.worstCase ? 1.0 : GoogleUtilizationProfile::sample(rng);

        for (std::size_t i = 0; i < fleet.size(); ++i) {
            auto &in = fleet[i];
            in.priority = sample_priority(rng);
            in.capMin = params.serverCapMin;
            in.capMax = params.serverCapMax;
            if (config.worstCase) {
                in.demand = params.serverCapMax;
            } else {
                const Fraction u = GoogleUtilizationProfile::perServer(
                    rng, fleet_avg, config.perServerUtilStddev);
                in.demand = dev::fanPower(params.serverIdle,
                                          params.serverCapMax, u);
            }
            const double mismatch =
                params.supplyMismatch > 0.0
                    ? rng.uniform(-params.supplyMismatch,
                                  params.supplyMismatch)
                    : 0.0;
            in.supplies = {{0.5 + mismatch, true},
                           {0.5 - mismatch, true}};
        }

        const auto result = allocator.allocate(
            fleet, root_budgets, config.enableSpo, 1.0,
            config.spoPasses);
        if (result.feasible)
            ++feasible_trials;
        stranded.add(result.strandedReclaimed);

        for (std::size_t i = 0; i < fleet.size(); ++i) {
            const double ratio = policy::capRatio(
                fleet[i].demand, result.servers[i].enforceableCapAc,
                params.serverIdle);
            ratio_all.add(ratio);
            ratio_p99.add(ratio);
            ratio_by_priority[static_cast<std::size_t>(
                                  fleet[i].priority)]
                .add(ratio);
        }
    }

    point.avgCapRatioAll = ratio_all.mean();
    point.p99CapRatioAll = ratio_p99.value();
    point.avgCapRatioByPriority.resize(ratio_by_priority.size());
    for (std::size_t level = 0; level < ratio_by_priority.size(); ++level)
        point.avgCapRatioByPriority[level] =
            ratio_by_priority[level].mean();
    // "High" is the topmost priority level with any samples.
    for (std::size_t level = ratio_by_priority.size(); level-- > 0;) {
        if (ratio_by_priority[level].count() > 0) {
            point.avgCapRatioHigh = ratio_by_priority[level].mean();
            break;
        }
    }
    point.feasibleFraction =
        config.trials > 0
            ? static_cast<double>(feasible_trials) / config.trials
            : 1.0;
    point.meanStrandedReclaimed = stranded.mean();
    return point;
}

std::vector<CapacityPoint>
sweepCapacity(const CapacityConfig &config, int lo, int hi)
{
    std::vector<CapacityPoint> points;
    for (int n = lo; n <= hi; ++n)
        points.push_back(evaluateCapacity(config, n));
    return points;
}

CapacityPoint
findMaxDeployable(const CapacityConfig &config, int lo, int hi)
{
    CapacityPoint best;
    for (int n = lo; n <= hi; ++n) {
        const CapacityPoint point = evaluateCapacity(config, n);
        const double criterion = config.worstCase ? point.avgCapRatioHigh
                                                  : point.avgCapRatioAll;
        const bool ok = criterion <= config.capRatioThreshold
                        && point.feasibleFraction >= 1.0;
        if (ok) {
            best = point;
        } else {
            break; // cap ratio grows monotonically with density
        }
    }
    return best;
}

} // namespace capmaestro::sim
