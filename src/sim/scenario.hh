/**
 * @file
 * Canonical experiment scenarios shared by tests, benches, and examples:
 * the Figure 2 four-server single-feed tree, the Figure 5 single-server
 * dual-supply rig, and the Figure 7a dual-feed stranded-power testbed.
 */

#ifndef CAPMAESTRO_SIM_SCENARIO_HH
#define CAPMAESTRO_SIM_SCENARIO_HH

#include <memory>

#include "device/server.hh"
#include "sim/closed_loop.hh"
#include "topology/power_system.hh"

namespace capmaestro::sim {

/** The paper's testbed server spec (idle 160 W, 270-490 W cap range). */
dev::ServerSpec testbedServerSpec(const std::string &name,
                                  Priority priority = 0,
                                  Fraction share0 = 0.5,
                                  std::size_t supplies = 2);

/** Utilization at which the testbed server demands @p target watts. */
Fraction utilizationForDemand(Watts idle, Watts cap_max, Watts target);

/**
 * Figure 2 power system: one feed, top CB 1400 W over left/right CBs
 * 750 W; servers 0,1 under left and 2,3 under right (single supply 0).
 */
std::unique_ptr<topo::PowerSystem> fig2System();

/**
 * Figure 7a power system: feeds X=0 and Y=1, each 1400 W top CB over two
 * 750 W CBs. Server 0 (SA) is X-only, server 1 (SB) Y-only, servers 2,3
 * (SC, SD) dual-corded. Supply index == feed index.
 */
std::unique_ptr<topo::PowerSystem> fig7aSystem();

/**
 * Closed-loop rig for Figure 5: one dual-supply server under generous
 * per-feed breakers, in manual-budget mode, running at full load.
 */
ClosedLoopSim makeFig5Rig(std::uint64_t seed = 1);

/**
 * Closed-loop rig for the Figure 2 / Table 2 policy experiments: four
 * servers on the Figure 2 tree, server 0 high priority, all running
 * near-420 W steady Apache-like demands; root budget 1240 W.
 */
ClosedLoopSim makeFig6Rig(policy::PolicyKind policy,
                          std::uint64_t seed = 1);

/**
 * Closed-loop rig for the Figure 7 stranded-power experiments: the
 * Figure 7a system with Table 3 demands and split mismatches; 700 W
 * budget per feed.
 */
ClosedLoopSim makeFig7Rig(bool enable_spo, std::uint64_t seed = 1,
                          policy::PolicyKind policy =
                              policy::PolicyKind::GlobalPriority);

/**
 * Power system for workload-contention experiments: one feed, a single
 * top breaker rated at 490 W per server (never the binding constraint —
 * the root budget is), with @p servers single-supply ports under it.
 */
std::unique_ptr<topo::PowerSystem> contentionSystem(std::size_t servers);

/**
 * Closed-loop rig for job-traffic experiments: one testbed server per
 * entry of @p priorities (its static spec priority), on the contention
 * system, global-priority policy, root budget @p root_budget. The
 * background dev::Workload idles at 10 % utilization — a traffic layer
 * attached via attachTraffic() overwrites it with job-driven demand.
 */
ClosedLoopSim makeContentionRig(const std::vector<Priority> &priorities,
                                Watts root_budget, std::uint64_t seed = 1);

} // namespace capmaestro::sim

#endif // CAPMAESTRO_SIM_SCENARIO_HH
