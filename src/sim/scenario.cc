#include "sim/scenario.hh"

#include <utility>
#include <vector>

#include "device/workload.hh"

namespace capmaestro::sim {

dev::ServerSpec
testbedServerSpec(const std::string &name, Priority priority,
                  Fraction share0, std::size_t supplies)
{
    dev::ServerSpec spec;
    spec.name = name;
    spec.idle = 160.0;
    spec.capMin = 270.0;
    spec.capMax = 490.0;
    spec.priority = priority;
    spec.gamma = 2.7;
    if (supplies == 1) {
        spec.supplies = {{1.0, 0.94}};
    } else {
        spec.supplies = {{share0, 0.94}, {1.0 - share0, 0.94}};
    }
    return spec;
}

Fraction
utilizationForDemand(Watts idle, Watts cap_max, Watts target)
{
    double lo = 0.0, hi = 1.0;
    for (int i = 0; i < 60; ++i) {
        const double mid = 0.5 * (lo + hi);
        (dev::fanPower(idle, cap_max, mid) < target ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
}

std::unique_ptr<topo::PowerSystem>
fig2System()
{
    auto sys = std::make_unique<topo::PowerSystem>(1);
    auto tree = std::make_unique<topo::PowerTree>(0, 0, "feed");
    const auto top =
        tree->makeRoot(topo::NodeKind::Breaker, "topCB", 1400.0);
    const auto left =
        tree->addChild(top, topo::NodeKind::Breaker, "leftCB", 750.0);
    const auto right =
        tree->addChild(top, topo::NodeKind::Breaker, "rightCB", 750.0);
    tree->addSupplyPort(left, "SA.0", {0, 0});
    tree->addSupplyPort(left, "SB.0", {1, 0});
    tree->addSupplyPort(right, "SC.0", {2, 0});
    tree->addSupplyPort(right, "SD.0", {3, 0});
    sys->addTree(std::move(tree));
    return sys;
}

std::unique_ptr<topo::PowerSystem>
fig7aSystem()
{
    auto sys = std::make_unique<topo::PowerSystem>(2);
    for (int feed = 0; feed < 2; ++feed) {
        auto tree = std::make_unique<topo::PowerTree>(
            feed, 0, feed == 0 ? "X" : "Y");
        const auto top =
            tree->makeRoot(topo::NodeKind::Breaker, "topCB", 1400.0);
        const auto left =
            tree->addChild(top, topo::NodeKind::Breaker, "leftCB", 750.0);
        const auto right =
            tree->addChild(top, topo::NodeKind::Breaker, "rightCB",
                           750.0);
        if (feed == 0) {
            tree->addSupplyPort(left, "SA.X", {0, 0});
            tree->addSupplyPort(left, "SC.X", {2, 0});
            tree->addSupplyPort(right, "SD.X", {3, 0});
        } else {
            tree->addSupplyPort(left, "SB.Y", {1, 1});
            tree->addSupplyPort(left, "SC.Y", {2, 1});
            tree->addSupplyPort(right, "SD.Y", {3, 1});
        }
        sys->addTree(std::move(tree));
    }
    return sys;
}

ClosedLoopSim
makeFig5Rig(std::uint64_t seed)
{
    // Two feeds, one generous breaker each, one dual-supply server.
    auto sys = std::make_unique<topo::PowerSystem>(2);
    for (int feed = 0; feed < 2; ++feed) {
        auto tree = std::make_unique<topo::PowerTree>(
            feed, 0, feed == 0 ? "X" : "Y");
        const auto root =
            tree->makeRoot(topo::NodeKind::Breaker, "cb", 1000.0);
        tree->addSupplyPort(root, "S0." + std::to_string(feed),
                            {0, feed});
        sys->addTree(std::move(tree));
    }

    std::vector<ServerSetup> servers;
    ServerSetup s;
    s.spec = testbedServerSpec("S0");
    s.workload = std::make_unique<dev::ConstantWorkload>(1.0);
    servers.push_back(std::move(s));

    ClosedLoopSim rig(std::move(sys), std::move(servers), {}, seed);
    rig.setManualMode(true);
    return rig;
}

ClosedLoopSim
makeFig6Rig(policy::PolicyKind policy, std::uint64_t seed)
{
    // Table 2 demands: 420/413/417/423 W; SA high priority.
    const Watts demands[4] = {420.0, 413.0, 417.0, 423.0};
    std::vector<ServerSetup> servers;
    for (int i = 0; i < 4; ++i) {
        ServerSetup s;
        s.spec = testbedServerSpec("S" + std::to_string(i),
                                   i == 0 ? 1 : 0, 1.0, 1);
        s.workload = std::make_unique<dev::ConstantWorkload>(
            utilizationForDemand(160.0, 490.0, demands[i]));
        servers.push_back(std::move(s));
    }

    core::ServiceConfig config;
    config.policy = policy;
    config.enableSpo = false; // single-corded servers: nothing to strand

    ClosedLoopSim rig(fig2System(), std::move(servers), config, seed);
    rig.setRootBudgets({1240.0});
    return rig;
}

ClosedLoopSim
makeFig7Rig(bool enable_spo, std::uint64_t seed,
            policy::PolicyKind policy)
{
    // Table 3 demands: SA 414, SB 415, SC 433, SD 439 W; SA high
    // priority; SC/SD with intrinsic split mismatch.
    std::vector<ServerSetup> servers;
    const Watts demands[4] = {414.0, 415.0, 433.0, 439.0};
    const Fraction share_x[4] = {1.0, 0.0, 0.53, 0.46};
    for (int i = 0; i < 4; ++i) {
        ServerSetup s;
        if (i == 0) {
            s.spec = testbedServerSpec("SA", 1);
        } else {
            s.spec = testbedServerSpec(
                i == 1 ? "SB" : (i == 2 ? "SC" : "SD"), 0,
                i == 1 ? 0.5 : share_x[i]);
        }
        s.workload = std::make_unique<dev::ConstantWorkload>(
            utilizationForDemand(160.0, 490.0, demands[i]));
        servers.push_back(std::move(s));
    }

    core::ServiceConfig config;
    config.enableSpo = enable_spo;
    config.policy = policy;

    ClosedLoopSim rig(fig7aSystem(), std::move(servers), config, seed);
    // SA's Y supply and SB's X supply are disconnected (paper setup).
    rig.server(0).setSupplyState(1, dev::SupplyState::Failed);
    rig.server(1).setSupplyState(0, dev::SupplyState::Failed);
    rig.setRootBudgets({700.0, 700.0});
    return rig;
}

std::unique_ptr<topo::PowerSystem>
contentionSystem(std::size_t servers)
{
    auto sys = std::make_unique<topo::PowerSystem>(1);
    auto tree = std::make_unique<topo::PowerTree>(0, 0, "feed");
    const auto top = tree->makeRoot(topo::NodeKind::Breaker, "topCB",
                                    490.0 * static_cast<double>(servers));
    for (std::size_t i = 0; i < servers; ++i) {
        tree->addSupplyPort(top, "S" + std::to_string(i) + ".0",
                            {static_cast<std::int32_t>(i), 0});
    }
    sys->addTree(std::move(tree));
    return sys;
}

ClosedLoopSim
makeContentionRig(const std::vector<Priority> &priorities,
                  Watts root_budget, std::uint64_t seed)
{
    std::vector<ServerSetup> servers;
    for (std::size_t i = 0; i < priorities.size(); ++i) {
        ServerSetup s;
        s.spec = testbedServerSpec("S" + std::to_string(i),
                                   priorities[i], 1.0, 1);
        s.workload = std::make_unique<dev::ConstantWorkload>(0.1);
        servers.push_back(std::move(s));
    }

    core::ServiceConfig config;
    config.policy = policy::PolicyKind::GlobalPriority;
    config.enableSpo = false; // single-corded servers: nothing to strand

    ClosedLoopSim rig(contentionSystem(priorities.size()),
                      std::move(servers), config, seed);
    rig.setRootBudgets({root_budget});
    return rig;
}

} // namespace capmaestro::sim
