/**
 * @file
 * The shared-data-center CPU utilization profile used for typical-case
 * load (paper Figure 8, after Barroso et al. [27]).
 *
 * SUBSTITUTION NOTE (see DESIGN.md): the paper samples a load profile
 * released by Google; we digitize its published shape — average
 * utilization concentrated in the 10-35 % band with a thin high tail —
 * into ten 10 %-wide bins. Each Monte-Carlo trial draws a fleet-wide
 * average utilization from this distribution (bin frequency, uniform
 * within the bin), then jitters individual servers around it, exactly as
 * §6.4 describes.
 */

#ifndef CAPMAESTRO_SIM_UTILIZATION_HH
#define CAPMAESTRO_SIM_UTILIZATION_HH

#include <array>

#include "stats/histogram.hh"
#include "util/random.hh"
#include "util/units.hh"

namespace capmaestro::sim {

/** Digitized Figure 8 distribution of average CPU utilization. */
class GoogleUtilizationProfile
{
  public:
    /** Number of 10 %-wide bins. */
    static constexpr std::size_t kBins = 10;

    /** Bin probabilities (index i covers [i/10, (i+1)/10)). */
    static const std::array<double, kBins> &binWeights();

    /** Draw one fleet-wide average utilization. */
    static Fraction sample(util::Rng &rng);

    /** Mean of the distribution. */
    static double mean();

    /** Build a histogram of @p samples draws (for the Fig. 8 bench). */
    static stats::Histogram histogram(util::Rng &rng, std::size_t samples);

    /**
     * Per-server utilization around the fleet average (normal jitter,
     * clamped to [0, 1]) — §6.4's "vary the CPU utilization of each
     * server randomly around the average value".
     */
    static Fraction perServer(util::Rng &rng, Fraction fleet_average,
                              double stddev = 0.05);
};

} // namespace capmaestro::sim

#endif // CAPMAESTRO_SIM_UTILIZATION_HH
