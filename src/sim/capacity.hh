/**
 * @file
 * Large-scale Monte-Carlo capacity study (paper §6.4, Figures 9 and 10).
 *
 * For a given server density the study runs repeated trials: each trial
 * draws per-server priorities (30 % high by default), supply splits, and
 * — in the typical case — a fleet-wide average utilization from the
 * Figure 8 profile with per-server jitter; in the worst case every server
 * demands Pcap_max and one entire feed is failed. The fleet allocator
 * assigns budgets under the chosen policy, and the study reports the
 * average cap ratio over all servers and over high-priority servers.
 *
 * The deployable-capacity question (Figure 9) is answered by sweeping the
 * density and finding the largest one whose average cap ratio stays under
 * 1 % (all servers in the typical case; high-priority servers in the
 * worst case).
 */

#ifndef CAPMAESTRO_SIM_CAPACITY_HH
#define CAPMAESTRO_SIM_CAPACITY_HH

#include <vector>

#include "policy/policy.hh"
#include "sim/datacenter.hh"
#include "util/random.hh"

namespace capmaestro::sim {

/** Configuration of a capacity study. */
struct CapacityConfig
{
    DataCenterParams dc;
    policy::PolicyKind policy = policy::PolicyKind::GlobalPriority;
    /**
     * Worst case: every server at 100 % utilization and feed B failed
     * (the surviving feed receives the full per-phase budget).
     */
    bool worstCase = false;
    /** Monte-Carlo trials per density point. */
    int trials = 100;
    std::uint64_t seed = 1;
    /** Per-server utilization jitter around the fleet average. */
    double perServerUtilStddev = 0.05;
    /** Run the stranded-power optimization inside each allocation. */
    bool enableSpo = false;
    /** Total allocation passes for SPO (2 = paper; more = fixpoint). */
    int spoPasses = 2;
    /** The "negligible impact" criterion (paper: 1 %). */
    double capRatioThreshold = 0.01;
    /**
     * Optional multi-level priority mix: entry i is the fraction of
     * servers at priority level i (must sum to ~1). When empty, the
     * two-level mix {1 - highPriorityFraction, highPriorityFraction}
     * from the data-center parameters is used. The paper's algorithm
     * supports on the order of 10 levels (§4.1).
     */
    std::vector<double> priorityFractions;
};

/** Result for one density point. */
struct CapacityPoint
{
    int serversPerRackPerPhase = 0;
    /** Whole-center server count (all physical phases). */
    std::size_t totalServers = 0;
    double avgCapRatioAll = 0.0;
    /** Tail of the per-server cap-ratio distribution (P-squared). */
    double p99CapRatioAll = 0.0;
    /** Cap ratio of the highest priority level present. */
    double avgCapRatioHigh = 0.0;
    /** Cap ratio per priority level (index = level). */
    std::vector<double> avgCapRatioByPriority;
    /** Fraction of trials whose floors were coverable. */
    double feasibleFraction = 1.0;
    /** Mean stranded power reclaimed per trial (W). */
    double meanStrandedReclaimed = 0.0;
};

/** Evaluate one density point. */
CapacityPoint evaluateCapacity(const CapacityConfig &config,
                               int servers_per_rack_per_phase);

/** Sweep densities [lo, hi] (servers per rack per phase). */
std::vector<CapacityPoint> sweepCapacity(const CapacityConfig &config,
                                         int lo, int hi);

/**
 * Largest whole-center server count whose criterion cap ratio (all
 * servers in the typical case, high-priority servers in the worst case)
 * stays at or below the threshold. Returns the matching point; density 0
 * when even the smallest density fails.
 */
CapacityPoint findMaxDeployable(const CapacityConfig &config, int lo,
                                int hi);

} // namespace capmaestro::sim

#endif // CAPMAESTRO_SIM_CAPACITY_HH
