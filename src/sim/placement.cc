#include "sim/placement.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"

namespace capmaestro::sim {

std::vector<int>
balancePhases(const std::vector<Watts> &demands, int phases)
{
    if (phases < 1)
        util::fatal("balancePhases: need at least one phase");

    // LPT: place servers in descending demand order onto the currently
    // lightest phase.
    std::vector<std::size_t> order(demands.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&demands](std::size_t a, std::size_t b) {
                  if (demands[a] != demands[b])
                      return demands[a] > demands[b];
                  return a < b; // deterministic tie-break
              });

    std::vector<Watts> load(static_cast<std::size_t>(phases), 0.0);
    std::vector<int> assignment(demands.size(), 0);
    for (const std::size_t i : order) {
        const auto lightest =
            std::min_element(load.begin(), load.end()) - load.begin();
        assignment[i] = static_cast<int>(lightest);
        load[static_cast<std::size_t>(lightest)] += demands[i];
    }
    return assignment;
}

std::vector<int>
roundRobinPhases(std::size_t servers, int phases)
{
    if (phases < 1)
        util::fatal("roundRobinPhases: need at least one phase");
    std::vector<int> assignment(servers);
    for (std::size_t i = 0; i < servers; ++i)
        assignment[i] = static_cast<int>(i % phases);
    return assignment;
}

std::vector<Watts>
phaseLoads(const std::vector<Watts> &demands,
           const std::vector<int> &assignment, int phases)
{
    if (assignment.size() != demands.size())
        util::panic("phaseLoads: assignment/demand size mismatch");
    std::vector<Watts> load(static_cast<std::size_t>(phases), 0.0);
    for (std::size_t i = 0; i < demands.size(); ++i) {
        const auto p = static_cast<std::size_t>(assignment[i]);
        if (p >= load.size())
            util::panic("phaseLoads: phase %d out of range",
                        assignment[i]);
        load[p] += demands[i];
    }
    return load;
}

double
phaseImbalance(const std::vector<Watts> &demands,
               const std::vector<int> &assignment, int phases)
{
    const auto load = phaseLoads(demands, assignment, phases);
    const double total =
        std::accumulate(load.begin(), load.end(), 0.0);
    if (total <= 0.0)
        return 0.0;
    const double mean = total / static_cast<double>(phases);
    const double peak = *std::max_element(load.begin(), load.end());
    return peak / mean - 1.0;
}

} // namespace capmaestro::sim
