#include "sim/datacenter.hh"

#include <string>

#include "util/logging.hh"

namespace capmaestro::sim {

DataCenter
buildDataCenter(const DataCenterParams &params)
{
    if (params.feeds < 1 || params.phases < 1
        || params.serversPerRackPerPhase < 1) {
        util::fatal("buildDataCenter: bad shape (%d feeds, %d phases, "
                    "%d servers/rack/phase)", params.feeds, params.phases,
                    params.serversPerRackPerPhase);
    }

    DataCenter dc;
    dc.params = params;
    dc.system = std::make_unique<topo::PowerSystem>(params.feeds);

    const int racks = params.racks();
    const int per_phase = params.serversPerRackPerPhase;

    // Server ids must be identical across feeds, so precompute placement.
    dc.servers.resize(static_cast<std::size_t>(racks)
                      * static_cast<std::size_t>(params.phases)
                      * static_cast<std::size_t>(per_phase));
    for (int rack = 0; rack < racks; ++rack) {
        for (int phase = 0; phase < params.phases; ++phase) {
            for (int slot = 0; slot < per_phase; ++slot) {
                const auto id = static_cast<std::size_t>(
                    (rack * params.phases + phase) * per_phase + slot);
                dc.servers[id] = {rack, phase, slot};
            }
        }
    }

    for (int feed = 0; feed < params.feeds; ++feed) {
        for (int phase = 0; phase < params.phases; ++phase) {
            const std::string feed_tag =
                std::string("feed") + static_cast<char>('A' + feed);
            const std::string tree_name =
                feed_tag + ".phase" + std::to_string(phase);
            auto tree = std::make_unique<topo::PowerTree>(feed, phase,
                                                          tree_name);
            const auto root = tree->makeRoot(
                topo::NodeKind::Contractual, tree_name + ".contract",
                topo::kUnlimited);

            int rack = 0;
            for (int x = 0; x < params.transformersPerFeed; ++x) {
                const auto xfmr = tree->addChild(
                    root, topo::NodeKind::Transformer,
                    tree_name + ".xfmr" + std::to_string(x),
                    params.transformerRating, params.derate);
                for (int r = 0; r < params.rppsPerTransformer; ++r) {
                    const auto rpp = tree->addChild(
                        xfmr, topo::NodeKind::Rpp,
                        tree_name + ".rpp" + std::to_string(x) + "."
                            + std::to_string(r),
                        params.rppRating, params.derate);
                    for (int c = 0; c < params.cdusPerRpp; ++c, ++rack) {
                        const auto cdu = tree->addChild(
                            rpp, topo::NodeKind::Cdu,
                            tree_name + ".cdu" + std::to_string(rack),
                            params.cduRating, params.derate);
                        for (int slot = 0; slot < per_phase; ++slot) {
                            const auto id = static_cast<std::int32_t>(
                                (rack * params.phases + phase) * per_phase
                                + slot);
                            tree->addSupplyPort(
                                cdu,
                                "s" + std::to_string(id) + "."
                                    + std::to_string(feed),
                                {id, static_cast<std::int32_t>(feed)});
                        }
                    }
                }
            }
            dc.system->addTree(std::move(tree));
        }
    }

    dc.system->validate();
    return dc;
}

} // namespace capmaestro::sim
