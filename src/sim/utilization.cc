#include "sim/utilization.hh"

namespace capmaestro::sim {

const std::array<double, GoogleUtilizationProfile::kBins> &
GoogleUtilizationProfile::binWeights()
{
    // Digitized Figure 8: mode in the 20-30 % bin, ~96 % of mass below
    // 40 %, thin tail above 50 %. See the substitution note in the header.
    static const std::array<double, kBins> weights{
        0.1050, // [0.0, 0.1)
        0.3400, // [0.1, 0.2)
        0.4120, // [0.2, 0.3)
        0.1200, // [0.3, 0.4)
        0.0160, // [0.4, 0.5)
        0.0050, // [0.5, 0.6)
        0.0015, // [0.6, 0.7)
        0.0005, // [0.7, 0.8)
        0.0000, // [0.8, 0.9)
        0.0000, // [0.9, 1.0)
    };
    return weights;
}

Fraction
GoogleUtilizationProfile::sample(util::Rng &rng)
{
    const auto &weights = binWeights();
    double r = rng.uniform();
    for (std::size_t i = 0; i < kBins; ++i) {
        if (r < weights[i]) {
            // Uniform within the bin.
            const double lo = static_cast<double>(i) / kBins;
            return lo + rng.uniform(0.0, 1.0 / kBins);
        }
        r -= weights[i];
    }
    return 0.95; // numeric tail (weights sum to 1)
}

double
GoogleUtilizationProfile::mean()
{
    const auto &weights = binWeights();
    double m = 0.0;
    for (std::size_t i = 0; i < kBins; ++i)
        m += weights[i] * (static_cast<double>(i) + 0.5) / kBins;
    return m;
}

stats::Histogram
GoogleUtilizationProfile::histogram(util::Rng &rng, std::size_t samples)
{
    stats::Histogram h(0.0, 1.0, kBins);
    for (std::size_t i = 0; i < samples; ++i)
        h.add(sample(rng));
    return h;
}

Fraction
GoogleUtilizationProfile::perServer(util::Rng &rng, Fraction fleet_average,
                                    double stddev)
{
    return rng.normalClamped(fleet_average, stddev, 0.0, 1.0);
}

} // namespace capmaestro::sim
